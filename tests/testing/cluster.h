// Test fixtures: ready-made AFS deployments.
//
//   FastCluster — one FileServer over an in-process InMemoryBlockStore. No RPC between the
//     file service and storage; used by unit tests of the core algorithms.
//   FullCluster — the paper's deployment: two companion BlockServers on two MemDisks
//     (stable storage, §4), a StableStore client, and N FileServers sharing the store.
//     Used by integration, fail-over, and crash tests.

#ifndef TESTS_TESTING_CLUSTER_H_
#define TESTS_TESTING_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/core/file_server.h"
#include "src/disk/mem_disk.h"
#include "src/rpc/network.h"

namespace afs {

class FastCluster {
 public:
  explicit FastCluster(FileServerOptions options = {}) : net_(1), store_(4068, 1 << 20) {
    server_ = std::make_unique<FileServer>(&net_, "fs0", &store_, options);
    server_->Start();
    Status st = server_->AttachStore();
    if (!st.ok()) {
      std::abort();
    }
  }

  Network& net() { return net_; }
  InMemoryBlockStore& store() { return store_; }
  FileServer& fs() { return *server_; }

 private:
  Network net_;
  InMemoryBlockStore store_;
  std::unique_ptr<FileServer> server_;
};

class FullCluster {
 public:
  // `net_seed` drives every random event in the deployment (latency, fault injection,
  // backoff jitter), so a chaos schedule is reproducible from the seed alone.
  explicit FullCluster(int num_file_servers = 1, uint32_t num_blocks = 1 << 14,
                       FileServerOptions options = {}, uint64_t net_seed = 7)
      : net_(net_seed),
        disk_a_(kDefaultBlockSize, num_blocks),
        disk_b_(kDefaultBlockSize, num_blocks) {
    // The members of a stable pair share the account-signing secret (same seed), so a
    // capability minted by either member verifies at both — clients fail over freely.
    bs_a_ = std::make_unique<BlockServer>(&net_, "block-a", &disk_a_, 101);
    bs_b_ = std::make_unique<BlockServer>(&net_, "block-b", &disk_b_, 101);
    bs_a_->Start();
    bs_b_->Start();
    bs_a_->SetCompanion(bs_b_->port());
    bs_b_->SetCompanion(bs_a_->port());
    account_ = bs_a_->CreateAccountDirect();
    store_ = MakeStableStore();
    for (int i = 0; i < num_file_servers; ++i) {
      auto client_store = MakeStableStore();
      auto fs = std::make_unique<FileServer>(&net_, "fs" + std::to_string(i),
                                             client_store.get(), options);
      fs->Start();
      client_stores_.push_back(std::move(client_store));
      file_servers_.push_back(std::move(fs));
    }
    Status st = file_servers_[0]->AttachStore();
    for (auto& fs : file_servers_) {
      if (st.ok() && fs.get() != file_servers_[0].get()) {
        st = fs->AttachStore();
      }
    }
    if (!st.ok()) {
      std::abort();
    }
  }

  std::unique_ptr<StableStore> MakeStableStore() {
    auto ca = std::make_unique<BlockClient>(&net_, bs_a_->port(), account_,
                                            kDefaultBlockSize - kBlockHeaderBytes);
    auto cb = std::make_unique<BlockClient>(&net_, bs_b_->port(), account_,
                                            kDefaultBlockSize - kBlockHeaderBytes);
    return std::make_unique<StableStore>(std::move(ca), std::move(cb), 99);
  }

  Network& net() { return net_; }
  MemDisk& disk_a() { return disk_a_; }
  MemDisk& disk_b() { return disk_b_; }
  BlockServer& block_a() { return *bs_a_; }
  BlockServer& block_b() { return *bs_b_; }
  StableStore& store() { return *store_; }
  FileServer& fs(int i = 0) { return *file_servers_[i]; }
  int num_file_servers() const { return static_cast<int>(file_servers_.size()); }
  std::vector<Port> FileServerPorts() const {
    std::vector<Port> ports;
    for (const auto& fs : file_servers_) {
      ports.push_back(fs->port());
    }
    return ports;
  }
  const Capability& account() const { return account_; }

 private:
  Network net_;
  MemDisk disk_a_;
  MemDisk disk_b_;
  std::unique_ptr<BlockServer> bs_a_;
  std::unique_ptr<BlockServer> bs_b_;
  Capability account_;
  std::unique_ptr<StableStore> store_;
  std::vector<std::unique_ptr<StableStore>> client_stores_;
  std::vector<std::unique_ptr<FileServer>> file_servers_;
};

}  // namespace afs

#endif  // TESTS_TESTING_CLUSTER_H_
