// ShardCluster: an N-shard AFS deployment on one simulated Network — N independent
// single-server shards (own InMemoryBlockStore each), a ShardRouter over the shared
// network, a MemoryDecisionLog, and a ShardCoordinator served through every shard's RPC
// surface, wired the way examples/afs_server wires a multi-process deployment. Used by the
// cross-shard commit and chaos tests.

#ifndef TESTS_TESTING_SHARD_CLUSTER_H_
#define TESTS_TESTING_SHARD_CLUSTER_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/block/block_store.h"
#include "src/core/file_server.h"
#include "src/rpc/network.h"
#include "src/shard/coordinator.h"
#include "src/shard/decision_log.h"
#include "src/shard/router.h"

namespace afs {

class ShardCluster {
 public:
  explicit ShardCluster(uint32_t num_shards, uint64_t net_seed = 7) : net_(net_seed) {
    for (uint32_t k = 0; k < num_shards; ++k) {
      auto store = std::make_unique<InMemoryBlockStore>(4068, 1 << 20);
      FileServerOptions options;
      options.shard_id = k;
      options.num_shards = num_shards;
      auto fs = std::make_unique<FileServer>(&net_, "fs-shard" + std::to_string(k),
                                             store.get(), options);
      fs->Start();
      if (!fs->AttachStore().ok()) {
        std::abort();
      }
      stores_.push_back(std::move(store));
      servers_.push_back(std::move(fs));
    }
    ShardMap map;
    map.epoch = 1;
    for (uint32_t k = 0; k < num_shards; ++k) {
      ShardEntry entry;
      entry.shard_id = k;
      entry.name = "shard" + std::to_string(k);
      entry.file_servers = {servers_[k]->port()};
      map.shards.push_back(std::move(entry));
    }
    auto router = ShardRouter::Make(std::move(map), &net_);
    if (!router.ok()) {
      std::abort();
    }
    router_ = std::move(*router);
    log_ = std::make_unique<MemoryDecisionLog>();
    // The cluster's coordinator serves shard 0 (it owns the txn ids it mints), and its
    // instruments live in shard 0's registry, as in examples/afs_server, so tests (and
    // remote scrapes) read shard.cross_* counters off fs(0).
    coord_ = std::make_unique<ShardCoordinator>(/*self_shard=*/0, router_.get(),
                                                log_.get(), servers_[0]->metrics());
    for (auto& fs : servers_) {
      coord_->Serve(fs.get());
    }
  }

  // A shard-server process restart: in-memory state (uncommitted versions, the prepared_
  // table) is lost, AttachStore re-discovers in-doubt prepares from their disk markers.
  void RestartShard(uint32_t k) {
    servers_[k]->Crash();
    servers_[k]->Restart();
  }

  std::vector<FileServer*> Servers() {
    std::vector<FileServer*> out;
    for (auto& fs : servers_) {
      out.push_back(fs.get());
    }
    return out;
  }

  Network& net() { return net_; }
  uint32_t num_shards() const { return static_cast<uint32_t>(servers_.size()); }
  FileServer& fs(uint32_t k) { return *servers_[k]; }
  InMemoryBlockStore& store(uint32_t k) { return *stores_[k]; }
  ShardRouter& router() { return *router_; }
  MemoryDecisionLog& log() { return *log_; }
  ShardCoordinator& coord() { return *coord_; }

 private:
  Network net_;
  std::vector<std::unique_ptr<InMemoryBlockStore>> stores_;
  std::vector<std::unique_ptr<FileServer>> servers_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<MemoryDecisionLog> log_;
  std::unique_ptr<ShardCoordinator> coord_;
};

}  // namespace afs

#endif  // TESTS_TESTING_SHARD_CLUSTER_H_
