// Tests of the disk substrate: atomic block semantics, fault injection, write-once media.

#include <gtest/gtest.h>

#include "src/disk/mem_disk.h"
#include "src/disk/write_once_disk.h"

namespace afs {
namespace {

TEST(MemDiskTest, WriteReadRoundTrip) {
  MemDisk disk(512, 16);
  std::vector<uint8_t> data(512, 0xaa);
  ASSERT_TRUE(disk.Write(3, data).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(disk.Read(3, out).ok());
  EXPECT_EQ(out, data);
}

TEST(MemDiskTest, GeometryReported) {
  MemDisk disk(4096, 100);
  EXPECT_EQ(disk.geometry().block_size, 4096u);
  EXPECT_EQ(disk.geometry().num_blocks, 100u);
}

TEST(MemDiskTest, OutOfRangeRejected) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> buf(512);
  EXPECT_FALSE(disk.Read(4, buf).ok());
  EXPECT_FALSE(disk.Write(4, buf).ok());
}

TEST(MemDiskTest, WrongBufferSizeRejected) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> buf(511);
  EXPECT_EQ(disk.Read(0, buf).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(disk.Write(0, buf).code(), ErrorCode::kInvalidArgument);
}

TEST(MemDiskTest, OfflineFailsAllOps) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> buf(512);
  disk.SetOffline(true);
  EXPECT_EQ(disk.Read(0, buf).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(disk.Write(0, buf).code(), ErrorCode::kUnavailable);
  disk.SetOffline(false);
  EXPECT_TRUE(disk.Write(0, buf).ok());
}

TEST(MemDiskTest, CorruptionChangesStoredBytes) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> data(512, 0x11);
  ASSERT_TRUE(disk.Write(0, data).ok());
  disk.CorruptBlock(0);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(disk.Read(0, out).ok());
  EXPECT_NE(out, data);  // integrity is the block server's job; the disk just returns bytes
}

TEST(MemDiskTest, CountsOps) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> buf(512);
  EXPECT_TRUE(disk.Write(0, buf).ok());
  EXPECT_TRUE(disk.Read(0, buf).ok());
  EXPECT_TRUE(disk.Read(0, buf).ok());
  EXPECT_EQ(disk.writes(), 1u);
  EXPECT_EQ(disk.reads(), 2u);
}

TEST(MemDiskTest, WipeCleanErases) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> data(512, 0x22);
  ASSERT_TRUE(disk.Write(1, data).ok());
  disk.WipeClean();
  std::vector<uint8_t> out(512, 0xff);
  ASSERT_TRUE(disk.Read(1, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));
}

TEST(WriteOnceDiskTest, SecondWriteRejected) {
  // "files cannot be overwritten on a write-once device" (§6).
  WriteOnceDisk disk(512, 8);
  std::vector<uint8_t> data(512, 0x33);
  ASSERT_TRUE(disk.Write(2, data).ok());
  EXPECT_TRUE(disk.IsBurned(2));
  EXPECT_EQ(disk.Write(2, data).code(), ErrorCode::kReadOnly);
}

TEST(WriteOnceDiskTest, DistinctBlocksIndependent) {
  WriteOnceDisk disk(512, 8);
  std::vector<uint8_t> data(512, 0x44);
  ASSERT_TRUE(disk.Write(0, data).ok());
  EXPECT_FALSE(disk.IsBurned(1));
  ASSERT_TRUE(disk.Write(1, data).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(disk.Read(0, out).ok());
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace afs
