// Tests of the disk substrate: atomic block semantics, fault injection, write-once media.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/disk/mem_disk.h"
#include "src/disk/write_once_disk.h"
#include "src/store/file_disk.h"

namespace afs {
namespace {

TEST(MemDiskTest, WriteReadRoundTrip) {
  MemDisk disk(512, 16);
  std::vector<uint8_t> data(512, 0xaa);
  ASSERT_TRUE(disk.Write(3, data).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(disk.Read(3, out).ok());
  EXPECT_EQ(out, data);
}

TEST(MemDiskTest, GeometryReported) {
  MemDisk disk(4096, 100);
  EXPECT_EQ(disk.geometry().block_size, 4096u);
  EXPECT_EQ(disk.geometry().num_blocks, 100u);
}

TEST(MemDiskTest, OutOfRangeRejected) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> buf(512);
  EXPECT_FALSE(disk.Read(4, buf).ok());
  EXPECT_FALSE(disk.Write(4, buf).ok());
}

TEST(MemDiskTest, WrongBufferSizeRejected) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> buf(511);
  EXPECT_EQ(disk.Read(0, buf).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(disk.Write(0, buf).code(), ErrorCode::kInvalidArgument);
}

TEST(MemDiskTest, OfflineFailsAllOps) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> buf(512);
  disk.SetOffline(true);
  EXPECT_EQ(disk.Read(0, buf).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(disk.Write(0, buf).code(), ErrorCode::kUnavailable);
  disk.SetOffline(false);
  EXPECT_TRUE(disk.Write(0, buf).ok());
}

TEST(MemDiskTest, CorruptionChangesStoredBytes) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> data(512, 0x11);
  ASSERT_TRUE(disk.Write(0, data).ok());
  disk.CorruptBlock(0);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(disk.Read(0, out).ok());
  EXPECT_NE(out, data);  // integrity is the block server's job; the disk just returns bytes
}

TEST(MemDiskTest, CountsOps) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> buf(512);
  EXPECT_TRUE(disk.Write(0, buf).ok());
  EXPECT_TRUE(disk.Read(0, buf).ok());
  EXPECT_TRUE(disk.Read(0, buf).ok());
  EXPECT_EQ(disk.writes(), 1u);
  EXPECT_EQ(disk.reads(), 2u);
}

TEST(MemDiskTest, WipeCleanErases) {
  MemDisk disk(512, 4);
  std::vector<uint8_t> data(512, 0x22);
  ASSERT_TRUE(disk.Write(1, data).ok());
  disk.WipeClean();
  std::vector<uint8_t> out(512, 0xff);
  ASSERT_TRUE(disk.Read(1, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));
}

TEST(WriteOnceDiskTest, SecondWriteRejected) {
  // "files cannot be overwritten on a write-once device" (§6).
  WriteOnceDisk disk(512, 8);
  std::vector<uint8_t> data(512, 0x33);
  ASSERT_TRUE(disk.Write(2, data).ok());
  EXPECT_TRUE(disk.IsBurned(2));
  EXPECT_EQ(disk.Write(2, data).code(), ErrorCode::kReadOnly);
}

TEST(WriteOnceDiskTest, DistinctBlocksIndependent) {
  WriteOnceDisk disk(512, 8);
  std::vector<uint8_t> data(512, 0x44);
  ASSERT_TRUE(disk.Write(0, data).ok());
  EXPECT_FALSE(disk.IsBurned(1));
  ASSERT_TRUE(disk.Write(1, data).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(disk.Read(0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(WriteOnceDiskTest, BurnedBitmapSurvivesRewrap) {
  // The bitmap lives in reserved blocks at the front of the inner device; a fresh wrapper
  // over the same device must reload it — the write-once contract outlives any process.
  MemDisk inner(512, 64);
  std::vector<uint8_t> data(512, 0x55);
  {
    WriteOnceDisk disk(&inner);
    ASSERT_GE(disk.reserved_blocks(), 1u);
    ASSERT_TRUE(disk.Write(5, data).ok());
    ASSERT_TRUE(disk.Write(6, data).ok());
    EXPECT_EQ(disk.burned_count(), 2u);
  }
  WriteOnceDisk again(&inner);
  EXPECT_TRUE(again.IsBurned(5));
  EXPECT_TRUE(again.IsBurned(6));
  EXPECT_FALSE(again.IsBurned(7));
  EXPECT_EQ(again.burned_count(), 2u);
  EXPECT_EQ(again.Write(5, data).code(), ErrorCode::kReadOnly);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(again.Read(5, out).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(again.Write(7, data).ok());
}

TEST(WriteOnceDiskTest, WrappedGeometryExcludesBitmapDirectory) {
  MemDisk inner(512, 64);
  WriteOnceDisk disk(&inner);
  EXPECT_EQ(disk.geometry().block_size, 512u);
  EXPECT_EQ(disk.geometry().num_blocks + disk.reserved_blocks(), 64u);
  // Usable block numbers address past the directory on the inner device.
  EXPECT_EQ(disk.RawBlockFor(0), disk.reserved_blocks());
  // The last usable block is addressable, one past it is not.
  std::vector<uint8_t> data(512, 0x66);
  ASSERT_TRUE(disk.Write(disk.geometry().num_blocks - 1, data).ok());
  EXPECT_FALSE(disk.Write(disk.geometry().num_blocks, data).ok());
}

TEST(WriteOnceDiskTest, BurnsSurviveFileDiskReopen) {
  // Wrapping a durable FileDisk yields an archive whose burned state survives a real
  // process restart: close the file, reopen it, and the burns are still rejected.
  std::string path = ::testing::TempDir() + "/write_once_archive.afsdisk";
  std::remove(path.c_str());
  FileDiskOptions options;
  options.block_size = 512;
  options.num_blocks = 64;
  std::vector<uint8_t> data(512, 0x77);
  {
    auto fdisk = FileDisk::Open(path, options);
    ASSERT_TRUE(fdisk.ok()) << fdisk.status();
    WriteOnceDisk disk(fdisk->get());
    ASSERT_TRUE(disk.Write(3, data).ok());
    EXPECT_EQ(disk.Write(3, data).code(), ErrorCode::kReadOnly);
  }
  auto fdisk = FileDisk::Open(path, options);
  ASSERT_TRUE(fdisk.ok()) << fdisk.status();
  WriteOnceDisk disk(fdisk->get());
  EXPECT_TRUE(disk.IsBurned(3));
  EXPECT_EQ(disk.Write(3, data).code(), ErrorCode::kReadOnly);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(disk.Read(3, out).ok());
  EXPECT_EQ(out, data);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace afs
