// Tests of the RPC substrate: transactions, crash semantics ("the outstanding transactions
// with the server crash as well"), port liveness for locks-made-of-ports, fault injection.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/rpc/client.h"
#include "src/rpc/network.h"
#include "src/rpc/service.h"

namespace afs {
namespace {

// Echo service: opcode 1 echoes payload; opcode 2 blocks until released; opcode 3 errors.
class EchoService : public Service {
 public:
  EchoService(Network* net, std::string name) : Service(net, std::move(name)) {}

  std::atomic<bool> release{false};
  std::atomic<int> handled{0};

 protected:
  Result<Message> Handle(const Message& request) override {
    ++handled;
    switch (request.opcode) {
      case 1:
        return Message(1, request.payload);
      case 2:
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return Message(2, {});
      case 3:
        return ConflictError("handler says no");
      default:
        return InvalidArgumentError("bad opcode");
    }
  }
};

TEST(RpcTest, EchoRoundTrip) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  auto reply = net.Call(echo.port(), Message(1, {1, 2, 3}));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(RpcTest, HandlerErrorPropagatesToCaller) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  auto reply = net.Call(echo.port(), Message(3, {}));
  EXPECT_EQ(reply.status().code(), ErrorCode::kConflict);
}

TEST(RpcTest, UnknownPortIsNotFound) {
  Network net(1);
  EXPECT_EQ(net.Call(12345, Message(1, {})).status().code(), ErrorCode::kNotFound);
}

TEST(RpcTest, CallToCrashedServiceFails) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  echo.Crash();
  EXPECT_EQ(net.Call(echo.port(), Message(1, {})).status().code(), ErrorCode::kCrashed);
}

TEST(RpcTest, CrashFailsOutstandingTransactions) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  std::atomic<bool> got_crash{false};
  std::thread caller([&] {
    CallOptions opts;
    opts.timeout = std::chrono::milliseconds(5000);
    auto reply = net.Call(echo.port(), Message(2, {}), opts);
    got_crash = reply.status().code() == ErrorCode::kCrashed;
  });
  // Wait until the handler is running, then crash underneath it.
  while (echo.handled.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  echo.Crash();
  caller.join();
  echo.release = true;  // let the worker thread finish
  EXPECT_TRUE(got_crash.load());
}

TEST(RpcTest, ShutdownFailsOutstandingWithUnavailable) {
  // Crash() and Shutdown() differ only in the status pending callers see: a crash reports
  // kCrashed, a graceful stop kUnavailable (so clients can tell "redo your update" from
  // "this server is being retired").
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  std::atomic<bool> got_unavailable{false};
  std::thread caller([&] {
    CallOptions opts;
    opts.timeout = std::chrono::milliseconds(5000);
    auto reply = net.Call(echo.port(), Message(2, {}), opts);
    got_unavailable = reply.status().code() == ErrorCode::kUnavailable;
  });
  while (echo.handled.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  echo.Shutdown();
  caller.join();
  echo.release = true;
  EXPECT_TRUE(got_unavailable.load());
}

TEST(RpcTest, CrashAndShutdownStatusesDiffer) {
  Network net(1);
  EchoService crashed(&net, "crashed");
  crashed.Start();
  crashed.Crash();
  EXPECT_EQ(net.Call(crashed.port(), Message(1, {})).status().code(), ErrorCode::kCrashed);

  EchoService stopped(&net, "stopped");
  stopped.Start();
  stopped.Shutdown();
  // A call that never reached the queue reports kCrashed (the port is simply dead); the
  // kUnavailable distinction applies to transactions the server had already accepted.
  EXPECT_EQ(net.Call(stopped.port(), Message(1, {})).status().code(), ErrorCode::kCrashed);
}

TEST(RpcTest, RestartReusesPortAndServes) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  Port port = echo.port();
  echo.Crash();
  EXPECT_FALSE(net.IsPortAlive(port));
  echo.release = true;
  echo.Restart();
  EXPECT_EQ(echo.port(), port);
  EXPECT_TRUE(net.IsPortAlive(port));
  EXPECT_TRUE(net.Call(port, Message(1, {9})).ok());
}

TEST(RpcTest, TransactionPortsTrackLiveness) {
  Network net(1);
  Port p = net.AllocatePort();
  EXPECT_TRUE(net.IsPortAlive(p));
  net.ClosePort(p);
  EXPECT_FALSE(net.IsPortAlive(p));
}

TEST(RpcTest, OversizedMessageRejected) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  Message big(1, std::vector<uint8_t>(kMaxMessageBytes + 1, 0));
  EXPECT_EQ(net.Call(echo.port(), std::move(big)).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(RpcTest, MaxSizeMessageAccepted) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  Message big(1, std::vector<uint8_t>(kMaxMessageBytes, 7));
  EXPECT_TRUE(net.Call(echo.port(), std::move(big)).ok());
}

TEST(RpcTest, PartitionMakesServiceUnavailable) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  net.SetPartitioned(echo.port(), true);
  EXPECT_EQ(net.Call(echo.port(), Message(1, {})).status().code(), ErrorCode::kUnavailable);
  net.SetPartitioned(echo.port(), false);
  EXPECT_TRUE(net.Call(echo.port(), Message(1, {})).ok());
}

TEST(RpcTest, DropProbabilitySurfacesAsTimeout) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  net.set_fault_injection(FaultInjection{.drop_request = 1.0});
  EXPECT_EQ(net.Call(echo.port(), Message(1, {})).status().code(), ErrorCode::kTimeout);
  net.set_fault_injection(FaultInjection{});
  EXPECT_GT(net.dropped_calls(), 0u);
}

TEST(RpcTest, ConcurrentCallsAllServed) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 50; ++j) {
        if (net.Call(echo.port(), Message(1, {static_cast<uint8_t>(j)})).ok()) {
          ++ok_count;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ok_count.load(), 16 * 50);
}

// --- At-most-once: retransmission + reply cache ------------------------------

TEST(AtMostOnceTest, RetransmissionMasksRequestDrops) {
  // Half of all requests are lost before the server sees them. Retransmission under the
  // same (client, txn) identity makes every logical call succeed, and each executes the
  // handler exactly once (a dropped request never reached the handler at all).
  Network net(42);
  EchoService echo(&net, "echo");
  echo.Start();
  FaultInjection faults;
  faults.drop_request = 0.5;
  net.set_fault_injection(faults);
  for (int i = 0; i < 100; ++i) {
    auto reply = net.Call(echo.port(), Message(1, {static_cast<uint8_t>(i)}));
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    EXPECT_EQ(reply->payload, (std::vector<uint8_t>{static_cast<uint8_t>(i)}));
  }
  EXPECT_EQ(echo.handled.load(), 100);
  EXPECT_GT(net.retransmits(), 0u);
}

TEST(AtMostOnceTest, RetransmissionMasksReplyDropsWithoutReExecution) {
  // Half of all replies are lost AFTER the handler ran. The retransmission must be
  // answered from the server's reply cache, not by running the handler again — this is
  // what makes retrying non-idempotent ops (Alloc, commit test-and-set) safe.
  Network net(43);
  EchoService echo(&net, "echo");
  echo.Start();
  FaultInjection faults;
  faults.drop_reply = 0.5;
  net.set_fault_injection(faults);
  for (int i = 0; i < 100; ++i) {
    auto reply = net.Call(echo.port(), Message(1, {static_cast<uint8_t>(i)}));
    ASSERT_TRUE(reply.ok()) << reply.status().message();
    EXPECT_EQ(reply->payload, (std::vector<uint8_t>{static_cast<uint8_t>(i)}));
  }
  EXPECT_EQ(echo.handled.load(), 100) << "a retransmission re-executed the handler";
  EXPECT_GT(net.dropped_replies(), 0u);
  EXPECT_GT(echo.metrics()->counter("rpc.dup_replayed")->value(), 0u);
}

TEST(AtMostOnceTest, DuplicateDeliveryIsSuppressed) {
  // Every request is delivered twice. The reply cache (or in-flight coalescing) must make
  // the second delivery invisible: one handler execution per logical call.
  Network net(44);
  EchoService echo(&net, "echo");
  echo.Start();
  FaultInjection faults;
  faults.duplicate_request = 1.0;
  net.set_fault_injection(faults);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.Call(echo.port(), Message(1, {static_cast<uint8_t>(i)})).ok());
  }
  EXPECT_EQ(echo.handled.load(), 50);
  EXPECT_EQ(net.duplicate_deliveries(), 50u);
  EXPECT_EQ(echo.metrics()->counter("rpc.dup_replayed")->value() +
                echo.metrics()->counter("rpc.dup_coalesced")->value(),
            50u);
}

TEST(AtMostOnceTest, LateReplyFeedsReplyCache) {
  // Regression for the late-handler hazard: Submit used to return kTimeout and discard the
  // worker's eventual reply, so a retry re-executed the handler. Now the late reply lands
  // in the reply cache (rpc.late_replies) and the retransmission replays it.
  Network net(45);
  EchoService echo(&net, "echo");
  echo.Start();
  Message request(2, {});
  request.client_id = 9999;  // pre-stamped: the retry below reuses the same identity
  request.txn_id = 1;
  CallOptions opts;
  opts.timeout = std::chrono::milliseconds(50);
  opts.max_retransmits = 0;  // surface the first timeout; we retry manually
  auto first = net.Call(echo.port(), Message(request), opts);
  EXPECT_EQ(first.status().code(), ErrorCode::kTimeout);

  echo.release = true;  // let the still-running handler finish late
  auto* late = echo.metrics()->counter("rpc.late_replies");
  while (late->value() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(echo.handled.load(), 1);

  opts.timeout = std::chrono::milliseconds(1000);
  auto retry = net.Call(echo.port(), Message(request), opts);
  ASSERT_TRUE(retry.ok()) << retry.status().message();
  EXPECT_EQ(echo.handled.load(), 1) << "the retry re-executed instead of replaying";
  EXPECT_EQ(echo.metrics()->counter("rpc.dup_replayed")->value(), 1u);
}

TEST(AtMostOnceTest, RetransmitCoalescesWithSlowInFlightHandler) {
  // A retransmission that arrives while the original delivery is still executing must
  // attach to it, not enqueue a second execution.
  Network net(46);
  EchoService echo(&net, "echo");
  echo.Start();
  Message request(2, {});
  request.client_id = 7777;
  request.txn_id = 1;
  CallOptions opts;
  opts.timeout = std::chrono::milliseconds(5000);
  std::thread original([&] { (void)net.Call(echo.port(), Message(request), opts); });
  while (echo.handled.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread duplicate([&] {
    auto reply = net.Call(echo.port(), Message(request), opts);
    EXPECT_TRUE(reply.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  echo.release = true;
  original.join();
  duplicate.join();
  EXPECT_EQ(echo.handled.load(), 1);
  EXPECT_EQ(echo.metrics()->counter("rpc.dup_coalesced")->value(), 1u);
}

TEST(AtMostOnceTest, CrashClearsReplyCache) {
  // The reply cache is server RAM: after a crash + restart, a retry of an old identity is
  // a cache miss and re-executes. Clients were warned by kCrashed in between (§5.3), so
  // this is the documented limit of the at-most-once guarantee, not a bug.
  Network net(47);
  EchoService echo(&net, "echo");
  echo.Start();
  Message request(1, {5});
  request.client_id = 8888;
  request.txn_id = 1;
  ASSERT_TRUE(net.Call(echo.port(), Message(request)).ok());
  EXPECT_EQ(echo.handled.load(), 1);
  // Before the crash a duplicate is replayed from the cache...
  ASSERT_TRUE(net.Call(echo.port(), Message(request)).ok());
  EXPECT_EQ(echo.handled.load(), 1);
  echo.Crash();
  echo.Restart();
  // ...after the crash the same identity re-executes.
  ASSERT_TRUE(net.Call(echo.port(), Message(request)).ok());
  EXPECT_EQ(echo.handled.load(), 2);
}

TEST(AtMostOnceTest, UnstampedCallsAreNeverRetransmitted) {
  Network net(48);
  EchoService echo(&net, "echo");
  echo.Start();
  net.set_fault_injection(FaultInjection{.drop_request = 1.0});
  CallOptions opts;
  opts.at_most_once = false;
  const uint64_t sends_before = net.total_calls();
  EXPECT_EQ(net.Call(echo.port(), Message(1, {}), opts).status().code(),
            ErrorCode::kTimeout);
  EXPECT_EQ(net.total_calls() - sends_before, 1u);
  EXPECT_EQ(net.retransmits(), 0u);
}

TEST(AtMostOnceTest, CrashedIsNeverRetransmitted) {
  // kCrashed is a definite answer (the §5.3 automatic warning) — the stub must surface it
  // immediately, not burn retransmission attempts against a dead port.
  Network net(49);
  EchoService echo(&net, "echo");
  echo.Start();
  echo.Crash();
  const uint64_t sends_before = net.total_calls();
  EXPECT_EQ(net.Call(echo.port(), Message(1, {})).status().code(), ErrorCode::kCrashed);
  EXPECT_EQ(net.total_calls() - sends_before, 1u);
}

TEST(RpcTest, ReplyHelpersRoundTrip) {
  // OkReply/ErrorReply + CallAndCheck against a trivial service.
  class StatusService : public Service {
   public:
    StatusService(Network* net) : Service(net, "status") {}

   protected:
    Result<Message> Handle(const Message& request) override {
      if (request.opcode == 1) {
        WireEncoder payload;
        payload.PutU32(77);
        return OkReply(1, std::move(payload));
      }
      return ErrorReply(request.opcode, LockedError("busy"));
    }
  };
  Network net(1);
  StatusService svc(&net);
  svc.Start();
  auto ok = CallAndCheck(&net, svc.port(), 1, WireEncoder());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok->GetU32(), 77u);
  auto err = CallAndCheck(&net, svc.port(), 2, WireEncoder());
  EXPECT_EQ(err.status().code(), ErrorCode::kLocked);
  EXPECT_EQ(err.status().message(), "busy");
}

}  // namespace
}  // namespace afs
