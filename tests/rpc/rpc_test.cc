// Tests of the RPC substrate: transactions, crash semantics ("the outstanding transactions
// with the server crash as well"), port liveness for locks-made-of-ports, fault injection.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/rpc/client.h"
#include "src/rpc/network.h"
#include "src/rpc/service.h"

namespace afs {
namespace {

// Echo service: opcode 1 echoes payload; opcode 2 blocks until released; opcode 3 errors.
class EchoService : public Service {
 public:
  EchoService(Network* net, std::string name) : Service(net, std::move(name)) {}

  std::atomic<bool> release{false};
  std::atomic<int> handled{0};

 protected:
  Result<Message> Handle(const Message& request) override {
    ++handled;
    switch (request.opcode) {
      case 1:
        return Message(1, request.payload);
      case 2:
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return Message(2, {});
      case 3:
        return ConflictError("handler says no");
      default:
        return InvalidArgumentError("bad opcode");
    }
  }
};

TEST(RpcTest, EchoRoundTrip) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  auto reply = net.Call(echo.port(), Message(1, {1, 2, 3}));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(RpcTest, HandlerErrorPropagatesToCaller) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  auto reply = net.Call(echo.port(), Message(3, {}));
  EXPECT_EQ(reply.status().code(), ErrorCode::kConflict);
}

TEST(RpcTest, UnknownPortIsNotFound) {
  Network net(1);
  EXPECT_EQ(net.Call(12345, Message(1, {})).status().code(), ErrorCode::kNotFound);
}

TEST(RpcTest, CallToCrashedServiceFails) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  echo.Crash();
  EXPECT_EQ(net.Call(echo.port(), Message(1, {})).status().code(), ErrorCode::kCrashed);
}

TEST(RpcTest, CrashFailsOutstandingTransactions) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  std::atomic<bool> got_crash{false};
  std::thread caller([&] {
    CallOptions opts;
    opts.timeout = std::chrono::milliseconds(5000);
    auto reply = net.Call(echo.port(), Message(2, {}), opts);
    got_crash = reply.status().code() == ErrorCode::kCrashed;
  });
  // Wait until the handler is running, then crash underneath it.
  while (echo.handled.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  echo.Crash();
  caller.join();
  echo.release = true;  // let the worker thread finish
  EXPECT_TRUE(got_crash.load());
}

TEST(RpcTest, ShutdownFailsOutstandingWithUnavailable) {
  // Crash() and Shutdown() differ only in the status pending callers see: a crash reports
  // kCrashed, a graceful stop kUnavailable (so clients can tell "redo your update" from
  // "this server is being retired").
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  std::atomic<bool> got_unavailable{false};
  std::thread caller([&] {
    CallOptions opts;
    opts.timeout = std::chrono::milliseconds(5000);
    auto reply = net.Call(echo.port(), Message(2, {}), opts);
    got_unavailable = reply.status().code() == ErrorCode::kUnavailable;
  });
  while (echo.handled.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  echo.Shutdown();
  caller.join();
  echo.release = true;
  EXPECT_TRUE(got_unavailable.load());
}

TEST(RpcTest, CrashAndShutdownStatusesDiffer) {
  Network net(1);
  EchoService crashed(&net, "crashed");
  crashed.Start();
  crashed.Crash();
  EXPECT_EQ(net.Call(crashed.port(), Message(1, {})).status().code(), ErrorCode::kCrashed);

  EchoService stopped(&net, "stopped");
  stopped.Start();
  stopped.Shutdown();
  // A call that never reached the queue reports kCrashed (the port is simply dead); the
  // kUnavailable distinction applies to transactions the server had already accepted.
  EXPECT_EQ(net.Call(stopped.port(), Message(1, {})).status().code(), ErrorCode::kCrashed);
}

TEST(RpcTest, RestartReusesPortAndServes) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  Port port = echo.port();
  echo.Crash();
  EXPECT_FALSE(net.IsPortAlive(port));
  echo.release = true;
  echo.Restart();
  EXPECT_EQ(echo.port(), port);
  EXPECT_TRUE(net.IsPortAlive(port));
  EXPECT_TRUE(net.Call(port, Message(1, {9})).ok());
}

TEST(RpcTest, TransactionPortsTrackLiveness) {
  Network net(1);
  Port p = net.AllocatePort();
  EXPECT_TRUE(net.IsPortAlive(p));
  net.ClosePort(p);
  EXPECT_FALSE(net.IsPortAlive(p));
}

TEST(RpcTest, OversizedMessageRejected) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  Message big(1, std::vector<uint8_t>(kMaxMessageBytes + 1, 0));
  EXPECT_EQ(net.Call(echo.port(), std::move(big)).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST(RpcTest, MaxSizeMessageAccepted) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  Message big(1, std::vector<uint8_t>(kMaxMessageBytes, 7));
  EXPECT_TRUE(net.Call(echo.port(), std::move(big)).ok());
}

TEST(RpcTest, PartitionMakesServiceUnavailable) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  net.SetPartitioned(echo.port(), true);
  EXPECT_EQ(net.Call(echo.port(), Message(1, {})).status().code(), ErrorCode::kUnavailable);
  net.SetPartitioned(echo.port(), false);
  EXPECT_TRUE(net.Call(echo.port(), Message(1, {})).ok());
}

TEST(RpcTest, DropProbabilitySurfacesAsTimeout) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  net.set_drop_probability(1.0);
  EXPECT_EQ(net.Call(echo.port(), Message(1, {})).status().code(), ErrorCode::kTimeout);
  net.set_drop_probability(0.0);
  EXPECT_GT(net.dropped_calls(), 0u);
}

TEST(RpcTest, ConcurrentCallsAllServed) {
  Network net(1);
  EchoService echo(&net, "echo");
  echo.Start();
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 50; ++j) {
        if (net.Call(echo.port(), Message(1, {static_cast<uint8_t>(j)})).ok()) {
          ++ok_count;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ok_count.load(), 16 * 50);
}

TEST(RpcTest, ReplyHelpersRoundTrip) {
  // OkReply/ErrorReply + CallAndCheck against a trivial service.
  class StatusService : public Service {
   public:
    StatusService(Network* net) : Service(net, "status") {}

   protected:
    Result<Message> Handle(const Message& request) override {
      if (request.opcode == 1) {
        WireEncoder payload;
        payload.PutU32(77);
        return OkReply(1, std::move(payload));
      }
      return ErrorReply(request.opcode, LockedError("busy"));
    }
  };
  Network net(1);
  StatusService svc(&net);
  svc.Start();
  auto ok = CallAndCheck(&net, svc.port(), 1, WireEncoder());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok->GetU32(), 77u);
  auto err = CallAndCheck(&net, svc.port(), 2, WireEncoder());
  EXPECT_EQ(err.status().code(), ErrorCode::kLocked);
  EXPECT_EQ(err.status().message(), "busy");
}

}  // namespace
}  // namespace afs
