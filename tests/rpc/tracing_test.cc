// End-to-end tracing tests: trace-context propagation across the RPC boundary, the
// at-most-once replay guarantee (a replayed reply increments ONLY rpc.dup_replayed — the
// per-op instruments and the handle span stay at one per logical call), the kGetSpans
// scrape, and span-tree completeness under chunked vectored I/O, chaos fault injection,
// and the --no_batch degraded mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/block/protocol.h"
#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/obs/span.h"
#include "src/rpc/client.h"
#include "src/rpc/network.h"
#include "src/rpc/service.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::SpanEnabled();
    obs::SetSpanEnabled(true);
    obs::ClearSpans();
  }
  void TearDown() override {
    obs::ClearSpans();
    obs::SetSpanEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

class PingService : public Service {
 public:
  PingService(Network* net) : Service(net, "ping") {}

 protected:
  Result<Message> Handle(const Message& request) override {
    return Message(request.opcode, request.payload);
  }
};

// Walk a trace and check that every span's parent is another span of the same trace (or
// 0 for the root). Returns the number of roots.
int CountRootsAndCheckLinkage(const std::vector<obs::Span>& spans) {
  std::set<uint64_t> ids;
  for (const obs::Span& s : spans) {
    ids.insert(s.span_id);
  }
  int roots = 0;
  for (const obs::Span& s : spans) {
    if (s.parent_span_id == 0) {
      ++roots;
    } else {
      EXPECT_TRUE(ids.count(s.parent_span_id) > 0)
          << s.name << " has dangling parent " << s.parent_span_id;
    }
  }
  return roots;
}

TEST_F(TracingTest, ContextCrossesTheWire) {
  Network net(3);
  PingService ping(&net);
  ping.Start();
  auto reply = net.Call(ping.port(), Message(1, {42}));
  ASSERT_TRUE(reply.ok());

  // One client span (rpc.call:1) and one server span (handle:1), same trace, linked.
  std::vector<obs::Span> spans = obs::SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  const obs::Span* call = nullptr;
  const obs::Span* handle = nullptr;
  for (const obs::Span& s : spans) {
    if (std::string(s.name).rfind("rpc.call", 0) == 0) call = &s;
    if (std::string(s.name).rfind("handle", 0) == 0) handle = &s;
  }
  ASSERT_NE(call, nullptr);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(call->trace_id, handle->trace_id);
  EXPECT_EQ(handle->parent_span_id, call->span_id);
  EXPECT_EQ(call->parent_span_id, 0u);
  EXPECT_EQ(call->kind, obs::SpanKind::kClient);
  EXPECT_EQ(handle->kind, obs::SpanKind::kServer);
}

TEST_F(TracingTest, ReplayedReplyCountsOnlyDupReplay) {
  // Reply drops force retransmission; the original executed, so the retransmission is
  // answered from the reply cache. The op's primary instruments must not double-count.
  Network net(17);
  PingService ping(&net);
  ping.Start();

  constexpr int kCalls = 60;
  FaultInjection faults;
  faults.drop_reply = 0.4;
  net.set_fault_injection(faults);
  for (int i = 0; i < kCalls; ++i) {
    auto reply = net.Call(ping.port(), Message(1, {static_cast<uint8_t>(i)}));
    ASSERT_TRUE(reply.ok()) << i;
  }
  net.set_fault_injection(FaultInjection{});

  const uint64_t replays = ping.metrics()->counter("rpc.dup_replayed")->value();
  const uint64_t op_count = ping.metrics()->counter("rpc.op.1.count")->value();
  const uint64_t op_latency_samples =
      ping.metrics()->histogram("rpc.op.1.handle_ns")->count();
  ASSERT_GT(net.retransmits(), 0u) << "fault injection produced no retransmissions";
  EXPECT_GT(replays, 0u);
  // The guarantee under test: exactly one primary count + latency sample per LOGICAL
  // call, however many deliveries each needed.
  EXPECT_EQ(op_count, static_cast<uint64_t>(kCalls));
  EXPECT_EQ(op_latency_samples, static_cast<uint64_t>(kCalls));

  // And exactly one handle span per logical call — replays fabricate no duplicates.
  int handle_spans = 0;
  for (const obs::Span& s : obs::SnapshotSpans()) {
    if (std::string(s.name) == "handle:1") {
      ++handle_spans;
    }
  }
  EXPECT_EQ(handle_spans, kCalls);
}

TEST_F(TracingTest, DuplicateDeliveryFabricatesNoSpans) {
  Network net(23);
  PingService ping(&net);
  ping.Start();

  constexpr int kCalls = 40;
  FaultInjection faults;
  faults.duplicate_request = 0.5;
  net.set_fault_injection(faults);
  for (int i = 0; i < kCalls; ++i) {
    ASSERT_TRUE(net.Call(ping.port(), Message(1, {1})).ok());
  }
  net.set_fault_injection(FaultInjection{});
  ASSERT_GT(net.duplicate_deliveries(), 0u);

  EXPECT_EQ(ping.metrics()->counter("rpc.op.1.count")->value(),
            static_cast<uint64_t>(kCalls));
  int handle_spans = 0;
  for (const obs::Span& s : obs::SnapshotSpans()) {
    if (std::string(s.name) == "handle:1") {
      ++handle_spans;
    }
  }
  EXPECT_EQ(handle_spans, kCalls);
}

TEST_F(TracingTest, GetSpansScrape) {
  Network net(5);
  PingService ping(&net);
  ping.Start();
  ASSERT_TRUE(net.Call(ping.port(), Message(1, {9})).ok());

  auto text = ScrapeSpans(&net, ping.port(), 100, /*chrome_json=*/false);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("handle:1"), std::string::npos);

  auto chrome = ScrapeSpans(&net, ping.port(), 100, /*chrome_json=*/true);
  ASSERT_TRUE(chrome.ok()) << chrome.status();
  EXPECT_NE(chrome->find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(chrome->front(), '{');
}

TEST_F(TracingTest, ChunkedMultiBlockWriteIsOneTrace) {
  // A WritePages big enough to split into several kWritePageMulti chunks: every chunk's
  // RPC (and the nested block I/O) must still land in ONE connected trace under the
  // client.write_pages span.
  FullCluster cluster(1);
  FileClient client(&cluster.net(), cluster.FileServerPorts());
  auto file = client.CreateFile();
  ASSERT_TRUE(file.ok());
  auto v = client.CreateVersion(*file);
  ASSERT_TRUE(v.ok());
  std::vector<FileClient::PageWrite> writes;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.InsertRef(*v, PagePath::Root(), i).ok());
    writes.push_back(FileClient::PageWrite{PagePath({static_cast<uint32_t>(i)}),
                                           std::vector<uint8_t>(20 * 1024, 7)});
  }

  obs::ClearSpans();
  ASSERT_TRUE(client.WritePages(*v, writes).ok());

  uint64_t trace = 0;
  int write_chunks = 0;
  for (const obs::Span& s : obs::SnapshotSpans()) {
    if (std::string(s.name) == "client.write_pages") {
      trace = s.trace_id;
    }
    if (std::string(s.name) == "rpc.call:" + std::to_string(static_cast<uint32_t>(
                                                 FileOp::kWritePageMulti))) {
      ++write_chunks;
    }
  }
  ASSERT_NE(trace, 0u);
  EXPECT_GT(write_chunks, 1) << "160K of writes should not fit one 32K message";

  std::vector<obs::Span> tree = obs::SpansForTrace(trace);
  EXPECT_GT(tree.size(), static_cast<size_t>(write_chunks))
      << "server-side spans missing from the trace";
  EXPECT_EQ(CountRootsAndCheckLinkage(tree), 1);
  ASSERT_TRUE(client.Commit(*v).ok());
}

TEST_F(TracingTest, NoBatchFallbackStillOneTrace) {
  SetBatchingEnabled(false);
  FullCluster cluster(1);
  FileClient client(&cluster.net(), cluster.FileServerPorts());
  auto file = client.CreateFile();
  ASSERT_TRUE(file.ok());
  auto v = client.CreateVersion(*file);
  ASSERT_TRUE(v.ok());
  std::vector<FileClient::PageWrite> writes;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.InsertRef(*v, PagePath::Root(), i).ok());
    writes.push_back(FileClient::PageWrite{PagePath({static_cast<uint32_t>(i)}),
                                           std::vector<uint8_t>(512, 3)});
  }

  obs::ClearSpans();
  ASSERT_TRUE(client.WritePages(*v, writes).ok());
  SetBatchingEnabled(true);

  uint64_t trace = 0;
  for (const obs::Span& s : obs::SnapshotSpans()) {
    if (std::string(s.name) == "client.write_pages") {
      trace = s.trace_id;
    }
  }
  ASSERT_NE(trace, 0u);
  std::vector<obs::Span> tree = obs::SpansForTrace(trace);
  // Degraded mode: one plain kWritePage RPC per page, all under the same root. Filter on
  // the destination port too: BlockOp::kRead shares the numeric opcode, and the file
  // server's own block reads would otherwise inflate the count.
  int per_page_calls = 0;
  for (const obs::Span& s : tree) {
    if (std::string(s.name) ==
            "rpc.call:" + std::to_string(static_cast<uint32_t>(FileOp::kWritePage)) &&
        s.a == cluster.FileServerPorts()[0]) {
      ++per_page_calls;
    }
  }
  EXPECT_EQ(per_page_calls, 4);
  EXPECT_EQ(CountRootsAndCheckLinkage(tree), 1);
}

TEST_F(TracingTest, ChaosTransactionsKeepConnectedTrees) {
  // Drops, duplicates and reorders on every message: each RunTransaction must still
  // produce exactly one connected span tree (retransmissions reuse the original context,
  // replays fabricate nothing).
  for (uint64_t seed : {11ull, 29ull, 47ull}) {
    FullCluster cluster(1, 1 << 14, {}, seed);
    FileClient client(&cluster.net(), cluster.FileServerPorts());
    auto file = client.CreateFile();
    ASSERT_TRUE(file.ok());

    FaultInjection faults;
    faults.drop_request = 0.05;
    faults.drop_reply = 0.05;
    faults.duplicate_request = 0.1;
    faults.reorder_delay = 0.1;
    cluster.net().set_fault_injection(faults);

    obs::ClearSpans();
    TransactionOptions options;
    options.backoff_seed = seed;
    auto stats = RunTransaction(
        &client, *file,
        [](FileClient& c, const Capability& v) {
          return c.WriteString(v, PagePath::Root(), "chaos payload");
        },
        options);
    cluster.net().set_fault_injection(FaultInjection{});
    ASSERT_TRUE(stats.ok()) << "seed " << seed << ": " << stats.status();

    // Find the txn root, check its tree is connected and has exactly one root.
    std::vector<obs::Span> spans = obs::SnapshotSpans();
    uint64_t txn_trace = 0;
    for (const obs::Span& s : spans) {
      if (std::string(s.name) == "client.txn") {
        txn_trace = s.trace_id;
      }
    }
    ASSERT_NE(txn_trace, 0u) << "seed " << seed;
    std::vector<obs::Span> tree = obs::SpansForTrace(txn_trace);
    EXPECT_EQ(CountRootsAndCheckLinkage(tree), 1) << "seed " << seed;
    // The tree reaches all the way down: client txn -> rpc -> handle -> commit.
    std::set<std::string> names;
    for (const obs::Span& s : tree) {
      names.insert(s.name);
    }
    EXPECT_TRUE(names.count("commit") > 0) << "seed " << seed;
    EXPECT_TRUE(names.count("client.commit") > 0) << "seed " << seed;
  }
}

TEST_F(TracingTest, ContendedCommitPhasesSumToCommit) {
  // The acceptance bar: a contended commit's phase spans are siblings under "commit" and
  // account for >= 90% of the commit span (which brackets the same interval as the
  // commit.latency_ns histogram sample).
  FullCluster cluster(1);
  FileClient client(&cluster.net(), cluster.FileServerPorts());
  auto file = client.CreateFile();
  ASSERT_TRUE(file.ok());
  {
    auto v = client.CreateVersion(*file);
    ASSERT_TRUE(v.ok());
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(client.InsertRef(*v, PagePath::Root(), i).ok());
      ASSERT_TRUE(
          client.WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                           std::vector<uint8_t>(256, 1))
              .ok());
    }
    ASSERT_TRUE(client.Commit(*v).ok());
  }
  auto loser = client.CreateVersion(*file);
  auto winner = client.CreateVersion(*file);
  ASSERT_TRUE(loser.ok());
  ASSERT_TRUE(winner.ok());
  ASSERT_TRUE(
      client.WritePage(*winner, PagePath({0}), std::vector<uint8_t>(256, 2)).ok());
  ASSERT_TRUE(client.Commit(*winner).ok());
  ASSERT_TRUE(
      client.WritePage(*loser, PagePath({1}), std::vector<uint8_t>(256, 3)).ok());

  obs::ClearSpans();
  ASSERT_TRUE(client.Commit(*loser).ok());

  obs::PhaseBreakdown b = obs::AnalyzePhases(obs::SnapshotSpans(), "commit");
  ASSERT_TRUE(b.found);
  ASSERT_GT(b.total_ns, 0u);
  std::set<std::string> phase_names;
  for (const obs::PhaseStat& p : b.phases) {
    phase_names.insert(p.name);
  }
  // The contended path ran the full machinery.
  EXPECT_TRUE(phase_names.count("commit.flip") > 0);
  EXPECT_TRUE(phase_names.count("commit.validate") > 0);
  EXPECT_TRUE(phase_names.count("commit.merge") > 0);
  EXPECT_TRUE(phase_names.count("commit.finish") > 0);
  const double ratio =
      static_cast<double>(b.attributed_ns) / static_cast<double>(b.total_ns);
  EXPECT_GE(ratio, 0.9) << obs::FormatBreakdown(b);
  EXPECT_LE(ratio, 1.0 + 1e-9) << obs::FormatBreakdown(b);
}

}  // namespace
}  // namespace afs
