// Robustness tests: servers must survive malformed, truncated, and adversarial messages —
// every decode path fails cleanly with an error reply, never a crash. (A block server on
// an open network receives arbitrary bytes; the §4 protection model assumes it shrugs
// them off.)

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/protocol.h"
#include "src/block/protocol.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

TEST(RobustnessTest, BlockServerSurvivesGarbagePayloads) {
  FullCluster cluster(1);
  Rng rng(1234);
  for (uint32_t opcode = 1; opcode <= 23; ++opcode) {
    for (int len : {0, 1, 7, 28, 64, 300}) {
      std::vector<uint8_t> garbage(len);
      for (auto& byte : garbage) {
        byte = static_cast<uint8_t>(rng.NextU64());
      }
      auto reply = cluster.net().Call(cluster.block_a().port(), Message(opcode, garbage));
      // Any outcome but a crash is acceptable; the server must still be alive.
      (void)reply;
    }
  }
  EXPECT_TRUE(cluster.block_a().running());
  // And still functional.
  auto bno = cluster.store().AllocWrite(std::vector<uint8_t>(10, 1));
  EXPECT_TRUE(bno.ok());
}

TEST(RobustnessTest, FileServerSurvivesGarbagePayloads) {
  FullCluster cluster(1);
  Rng rng(77);
  for (uint32_t opcode = 1; opcode <= 16; ++opcode) {
    for (int len : {0, 3, 28, 56, 100, 500}) {
      std::vector<uint8_t> garbage(len);
      for (auto& byte : garbage) {
        byte = static_cast<uint8_t>(rng.NextU64());
      }
      (void)cluster.net().Call(cluster.fs(0).port(), Message(opcode, garbage));
    }
  }
  EXPECT_TRUE(cluster.fs(0).running());
  EXPECT_TRUE(cluster.fs(0).CreateFile().ok());
}

TEST(RobustnessTest, UnknownOpcodesRejected) {
  FullCluster cluster(1);
  auto reply = cluster.net().Call(cluster.fs(0).port(), Message(9999, {}));
  EXPECT_EQ(reply.status().code(), ErrorCode::kInvalidArgument);
  reply = cluster.net().Call(cluster.block_a().port(), Message(9999, {}));
  EXPECT_EQ(reply.status().code(), ErrorCode::kInvalidArgument);
}

TEST(RobustnessTest, FuzzedCapabilitiesNeverAuthenticate) {
  FullCluster cluster(1);
  auto file = cluster.fs(0).CreateFile();
  ASSERT_TRUE(file.ok());
  Rng rng(42);
  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    Capability forged;
    forged.port = cluster.fs(0).port();
    forged.object = rng.NextBool(0.5) ? file->object : rng.NextU64();
    forged.rights = static_cast<uint32_t>(rng.NextU64());
    forged.check = rng.NextU64();
    if (cluster.fs(0).GetCurrentVersion(forged).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 0);
}

TEST(RobustnessTest, CorruptStoredPageSurfacesAsCorrupt) {
  // Flip bytes in a committed page's block: reads report corruption (single server, no
  // companion to repair from) instead of returning garbage.
  Network net(5);
  MemDisk disk(kDefaultBlockSize, 256);
  BlockServer bs(&net, "solo", &disk, 9);
  bs.Start();
  Capability account = bs.CreateAccountDirect();
  BlockClient store(&net, bs.port(), account, bs.payload_capacity());
  FileServer fs(&net, "fs", &store);
  fs.Start();
  ASSERT_TRUE(fs.AttachStore().ok());
  auto file = fs.CreateFile();
  auto v = fs.CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(fs.WritePage(*v, PagePath::Root(), std::vector<uint8_t>(100, 7)).ok());
  auto head = fs.Commit(*v);
  ASSERT_TRUE(head.ok());
  disk.CorruptBlock(*head);
  auto current = fs.GetCurrentVersion(*file);
  if (current.ok()) {
    auto read = fs.ReadPage(*current, PagePath::Root(), false);
    EXPECT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), ErrorCode::kCorrupt);
  } else {
    // The chain walk hits the damaged version page: surfaced as corrupt or, after the
    // fall-back re-walk, as the chain being unreadable — never as garbage data.
    EXPECT_TRUE(current.status().code() == ErrorCode::kCorrupt ||
                current.status().code() == ErrorCode::kNotFound)
        << current.status();
  }
}

}  // namespace
}  // namespace afs
