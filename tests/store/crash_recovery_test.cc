// Crash-point recovery suite: for every CrashPoint, drive FileDisk until the simulated
// power cut fires, then remount the post-crash image and assert the §4 durability
// contract — every acknowledged write is readable with a valid checksum, and no torn
// journal tail is ever replayed. The expected fate of the *unacknowledged* write differs
// per point and is spelled out in docs/STORAGE.md's crash-point catalogue.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/core/file_server.h"
#include "src/core/fsck.h"
#include "src/rpc/network.h"
#include "src/store/crash_point.h"
#include "src/store/file_disk.h"

namespace afs {
namespace {

constexpr uint32_t kBlockSize = 512;
constexpr uint32_t kAckedBlocks = 10;  // blocks 0..9 are written and acknowledged
constexpr uint32_t kVictimBlock = 10;  // the write that triggers a journal-path cut

std::string ScratchPath(const std::string& name) {
  std::filesystem::path dir = std::filesystem::path("store_scratch") / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return (dir / "disk.afsdisk").string();
}

std::vector<uint8_t> Pattern(uint32_t bno) {
  std::vector<uint8_t> data(kBlockSize);
  for (uint32_t i = 0; i < kBlockSize; ++i) {
    data[i] = static_cast<uint8_t>(bno * 31 + i * 7 + 1);
  }
  return data;
}

FileDiskOptions Options() {
  FileDiskOptions options;
  options.block_size = kBlockSize;
  options.num_blocks = 64;
  return options;
}

// Journal-path points fire inside a Write(); checkpoint-path points inside Checkpoint().
bool IsJournalPoint(CrashPoint point) {
  switch (point) {
    case CrashPoint::kMidJournalAppend:
    case CrashPoint::kAfterJournalAppend:
    case CrashPoint::kBeforeJournalFsync:
    case CrashPoint::kAfterJournalFsync:
      return true;
    default:
      return false;
  }
}

// Whether the victim record's bytes were across the durability boundary when the power
// went out. kBeforeJournalFsync keeps the staged bytes (the platter got them; only the
// acknowledgement was lost), kAfterJournalFsync fires after the fdatasync returned.
bool VictimSurvives(CrashPoint point) {
  return point == CrashPoint::kBeforeJournalFsync || point == CrashPoint::kAfterJournalFsync;
}

class CrashRecoveryTest : public ::testing::TestWithParam<CrashPoint> {};

TEST_P(CrashRecoveryTest, AcknowledgedWritesSurviveRemount) {
  const CrashPoint point = GetParam();
  const std::string path = ScratchPath(std::string("crash_") + CrashPointName(point));
  CrashPointInjector injector;
  {
    auto disk = FileDisk::Open(path, Options(), &injector);
    ASSERT_TRUE(disk.ok()) << disk.status().message();
    for (uint32_t bno = 0; bno < kAckedBlocks; ++bno) {
      ASSERT_TRUE((*disk)->Write(bno, Pattern(bno)).ok()) << "block " << bno;
    }
    injector.Arm(point);
    if (IsJournalPoint(point)) {
      // The power goes out at `point` while this write is in flight; the acknowledgement
      // must never arrive, whatever the bytes' fate.
      EXPECT_FALSE((*disk)->Write(kVictimBlock, Pattern(kVictimBlock)).ok());
    } else {
      EXPECT_FALSE((*disk)->Checkpoint().ok());
    }
    ASSERT_TRUE(injector.fired()) << "crash point never reached: " << CrashPointName(point);
    EXPECT_TRUE((*disk)->crashed());
    // The dead device refuses all further I/O, like a machine whose power is off.
    std::vector<uint8_t> buf(kBlockSize);
    EXPECT_EQ((*disk)->Write(0, buf).code(), ErrorCode::kUnavailable);
    EXPECT_EQ((*disk)->Read(0, buf).code(), ErrorCode::kUnavailable);
  }

  // "Reboot": mount the post-crash image with the real recovery code.
  auto disk = FileDisk::Open(path, Options());
  ASSERT_TRUE(disk.ok()) << disk.status().message();

  // Invariant 1: every acknowledged write is intact (CRC-verified by ReadSector).
  std::vector<uint8_t> out(kBlockSize);
  for (uint32_t bno = 0; bno < kAckedBlocks; ++bno) {
    ASSERT_TRUE((*disk)->Read(bno, out).ok()) << "block " << bno;
    EXPECT_EQ(out, Pattern(bno)) << "block " << bno;
  }

  // Invariant 2: the unacknowledged write is all-or-nothing — either the full pattern
  // (its record was durable) or virgin zeros (its record was torn/lost) — never garbage.
  ASSERT_TRUE((*disk)->Read(kVictimBlock, out).ok());
  if (IsJournalPoint(point) && VictimSurvives(point)) {
    EXPECT_EQ(out, Pattern(kVictimBlock));
  } else {
    EXPECT_EQ(out, std::vector<uint8_t>(kBlockSize, 0));
  }

  // Per-point recovery forensics.
  if (point == CrashPoint::kMidJournalAppend) {
    EXPECT_GT((*disk)->torn_bytes_discarded(), 0u);  // the half-written record
  }
  if (!IsJournalPoint(point)) {
    // Every checkpoint-path point precedes the journal truncation, so the full journal
    // (all ten acknowledged records) replays on mount regardless of how far the
    // checkpoint got.
    EXPECT_EQ((*disk)->recovered_records(), static_cast<uint64_t>(kAckedBlocks));
  }
}

INSTANTIATE_TEST_SUITE_P(AllCrashPoints, CrashRecoveryTest,
                         ::testing::ValuesIn(kAllCrashPoints),
                         [](const ::testing::TestParamInfo<CrashPoint>& info) {
                           return CrashPointName(info.param);
                         });

// A second cut at the same disk: after recovering from a torn tail, the disk must keep
// working — and a later clean mount must see both generations of writes.
TEST(CrashRecoveryTest, TornTailNeverResurfacesAcrossGenerations) {
  const std::string path = ScratchPath("double_crash");
  CrashPointInjector injector;
  {
    auto disk = FileDisk::Open(path, Options(), &injector);
    ASSERT_TRUE(disk.ok());
    for (uint32_t bno = 0; bno < 4; ++bno) {
      ASSERT_TRUE((*disk)->Write(bno, Pattern(bno)).ok());
    }
    injector.Arm(CrashPoint::kMidJournalAppend);
    EXPECT_FALSE((*disk)->Write(4, Pattern(4)).ok());
    ASSERT_TRUE(injector.fired());
  }
  {
    // Generation 2: recover, write more, crash again mid-append.
    auto disk = FileDisk::Open(path, Options(), &injector);
    ASSERT_TRUE(disk.ok());
    EXPECT_GT((*disk)->torn_bytes_discarded(), 0u);
    for (uint32_t bno = 8; bno < 12; ++bno) {
      ASSERT_TRUE((*disk)->Write(bno, Pattern(bno)).ok());
    }
    injector.Arm(CrashPoint::kMidJournalAppend);
    EXPECT_FALSE((*disk)->Write(12, Pattern(12)).ok());
    ASSERT_TRUE(injector.fired());
  }
  auto disk = FileDisk::Open(path, Options());
  ASSERT_TRUE(disk.ok());
  std::vector<uint8_t> out(kBlockSize);
  for (uint32_t bno : {0u, 1u, 2u, 3u, 8u, 9u, 10u, 11u}) {
    ASSERT_TRUE((*disk)->Read(bno, out).ok()) << "block " << bno;
    EXPECT_EQ(out, Pattern(bno)) << "block " << bno;
  }
  // Both torn victims are gone without a trace.
  for (uint32_t bno : {4u, 12u}) {
    ASSERT_TRUE((*disk)->Read(bno, out).ok());
    EXPECT_EQ(out, std::vector<uint8_t>(kBlockSize, 0)) << "block " << bno;
  }
}

// The whole file service over every crash point: a FileServer commits through a
// BlockServer backed by one crash-injected FileDisk, the power goes out at the
// parameterised point (inside a doomed update for journal points, inside a checkpoint
// otherwise), and after remount + recovery the re-attached server must (a) serve the
// acknowledged commit and (b) pass fsck I1–I7 — including I7, which cross-checks the
// version index RebuildVersionIndex re-seeded from the recovered chains.
class FileServiceCrashPointTest : public ::testing::TestWithParam<CrashPoint> {};

TEST_P(FileServiceCrashPointTest, RecoveredStorePassesFsckWithVersionIndex) {
  const CrashPoint point = GetParam();
  const std::string path = ScratchPath(std::string("fs_crash_") + CrashPointName(point));
  FileDiskOptions options;
  options.block_size = 4096;
  options.num_blocks = 1 << 12;
  CrashPointInjector injector;
  Capability file_cap;
  const std::vector<uint8_t> payload = Pattern(3);
  {
    auto disk = FileDisk::Open(path, options, &injector);
    ASSERT_TRUE(disk.ok()) << disk.status().message();
    Network net(7);
    BlockServer bs(&net, "bs", disk->get(), 101);
    bs.Start();
    Capability account = bs.CreateAccountDirect();
    BlockClient client(&net, bs.port(), account, bs.payload_capacity());
    FileServer fs(&net, "fs0", &client);
    fs.Start();
    ASSERT_TRUE(fs.AttachStore().ok());
    auto file = fs.CreateFile();
    ASSERT_TRUE(file.ok());
    file_cap = *file;
    auto v = fs.CreateVersion(file_cap, kNullPort, false);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(fs.WritePage(*v, PagePath::Root(), payload).ok());
    ASSERT_TRUE(fs.Commit(*v).ok());

    injector.Arm(point);
    if (IsJournalPoint(point)) {
      // The cut fires inside this doomed second update, well before its flip could
      // execute — so whatever block writes leak to disk are unreachable garbage.
      auto doomed = fs.CreateVersion(file_cap, kNullPort, false);
      bool survived = doomed.ok() &&
                      fs.WritePage(*doomed, PagePath::Root(), Pattern(9)).ok() &&
                      fs.Commit(*doomed).ok();
      EXPECT_FALSE(survived);
    } else {
      EXPECT_FALSE((*disk)->Checkpoint().ok());
    }
    ASSERT_TRUE(injector.fired()) << "crash point never reached: " << CrashPointName(point);
  }

  // Reboot: remount the post-crash image, recover, re-attach the file service.
  auto disk = FileDisk::Open(path, options);
  ASSERT_TRUE(disk.ok()) << disk.status().message();
  Network net(7);
  BlockServer bs(&net, "bs", disk->get(), 101);
  bs.Start();
  bs.RecoverFromDisk();
  Capability account = bs.CreateAccountDirect();
  BlockClient client(&net, bs.port(), account, bs.payload_capacity());
  FileServer fs(&net, "fs0", &client);
  fs.Start();
  ASSERT_TRUE(fs.AttachStore().ok());

  auto current = fs.GetCurrentVersion(file_cap);
  ASSERT_TRUE(current.ok()) << current.status().message();
  auto read = fs.ReadPage(*current, PagePath::Root(), false);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(read->data, payload);

  // I1–I7 on the recovered store; the doomed update's leaked blocks are garbage, which
  // stays a warning. index_records > 0 proves I7 checked the re-seeded index.
  FsckReport report = RunFsck(&fs);
  EXPECT_TRUE(report.clean) << report.ToString();
  EXPECT_GT(report.index_records, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllCrashPoints, FileServiceCrashPointTest,
                         ::testing::ValuesIn(kAllCrashPoints),
                         [](const ::testing::TestParamInfo<CrashPoint>& info) {
                           return CrashPointName(info.param);
                         });

// Crash during an *automatic* checkpoint (triggered by the journal-size threshold from
// inside a Write) must preserve every previously acknowledged write too.
TEST(CrashRecoveryTest, CrashDuringAutoCheckpoint) {
  const std::string path = ScratchPath("auto_checkpoint_crash");
  FileDiskOptions options = Options();
  options.checkpoint_threshold_bytes = 2048;  // a few records
  CrashPointInjector injector;
  uint32_t acked = 0;
  {
    auto disk = FileDisk::Open(path, options, &injector);
    ASSERT_TRUE(disk.ok());
    injector.Arm(CrashPoint::kMidCheckpointApply);
    // Keep writing until the threshold fires the auto-checkpoint and the cut hits. The
    // triggering write itself was already durable and acknowledged before the checkpoint
    // began, so `acked` counts it.
    for (uint32_t bno = 0; bno < 32 && !injector.fired(); ++bno) {
      if ((*disk)->Write(bno, Pattern(bno)).ok()) {
        ++acked;
      }
    }
    ASSERT_TRUE(injector.fired()) << "auto-checkpoint never triggered";
    ASSERT_GT(acked, 0u);
  }
  auto disk = FileDisk::Open(path, options);
  ASSERT_TRUE(disk.ok());
  std::vector<uint8_t> out(kBlockSize);
  for (uint32_t bno = 0; bno < acked; ++bno) {
    ASSERT_TRUE((*disk)->Read(bno, out).ok()) << "block " << bno;
    EXPECT_EQ(out, Pattern(bno)) << "block " << bno;
  }
}

}  // namespace
}  // namespace afs
