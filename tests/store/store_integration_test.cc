// Integration of the durable store with the upper layers: a stable pair of BlockServers
// over two FileDisks (paper §4's two-server stable storage, now on media that survive
// process exit), and a FileServer whose files round-trip across a simulated process
// restart — the property the `afs_shell --store` flag is built on.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/core/file_server.h"
#include "src/rpc/network.h"
#include "src/store/file_disk.h"

namespace afs {
namespace {

std::string ScratchDir(const std::string& name) {
  std::filesystem::path dir = std::filesystem::path("store_scratch") / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

FileDiskOptions PairGeometry() {
  FileDiskOptions options;
  options.block_size = 1024;
  options.num_blocks = 256;
  return options;
}

// One "process run" of a stable pair over two FileDisks. Deterministic seeds everywhere
// (network, signer) so a second run reconstructs the same capability universe — which is
// exactly what a restarted server binary does.
struct PairRun {
  explicit PairRun(const std::string& dir, const FileDiskOptions& options = PairGeometry())
      : net(7) {
    auto da = FileDisk::Open(dir + "/a.afsdisk", options);
    auto db = FileDisk::Open(dir + "/b.afsdisk", options);
    if (!da.ok() || !db.ok()) {
      std::abort();
    }
    disk_a = std::move(da).value();
    disk_b = std::move(db).value();
    bs_a = std::make_unique<BlockServer>(&net, "block-a", disk_a.get(), 101);
    bs_b = std::make_unique<BlockServer>(&net, "block-b", disk_b.get(), 101);
    bs_a->Start();
    bs_b->Start();
    bs_a->SetCompanion(bs_b->port());
    bs_b->SetCompanion(bs_a->port());
    // Adopt whatever a previous run left on the disks (no-op on fresh media).
    bs_a->RecoverFromDisk();
    bs_b->RecoverFromDisk();
    account = bs_a->CreateAccountDirect();
    const uint32_t capacity = options.block_size - kBlockHeaderBytes;
    store = std::make_unique<StableStore>(
        std::make_unique<BlockClient>(&net, bs_a->port(), account, capacity),
        std::make_unique<BlockClient>(&net, bs_b->port(), account, capacity), 99);
  }

  Network net;
  std::unique_ptr<FileDisk> disk_a;
  std::unique_ptr<FileDisk> disk_b;
  std::unique_ptr<BlockServer> bs_a;
  std::unique_ptr<BlockServer> bs_b;
  Capability account;
  std::unique_ptr<StableStore> store;
};

TEST(StoreIntegrationTest, StablePairRoundTripsOverFileDisks) {
  const std::string dir = ScratchDir("pair_round_trip");
  PairRun run(dir);
  auto payload = Bytes("stable storage on durable media");
  auto bno = run.store->AllocWrite(payload);
  ASSERT_TRUE(bno.ok()) << bno.status().message();
  auto read = run.store->Read(*bno);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
  // The companion-first discipline: both FileDisks saw the write.
  EXPECT_GE(run.disk_a->writes(), 1u);
  EXPECT_GE(run.disk_b->writes(), 1u);
}

TEST(StoreIntegrationTest, CorruptSectorRepairedFromCompanion) {
  const std::string dir = ScratchDir("pair_repair");
  PairRun run(dir);
  auto payload = Bytes("repair me from the companion");
  auto bno = run.store->AllocWrite(payload);
  ASSERT_TRUE(bno.ok());
  // Damage the primary's stored copy. FileDisk detects the bad sector CRC itself and
  // returns kCorrupt; the BlockServer must then fetch the companion's copy and repair.
  run.disk_a->CorruptBlock(*bno);
  auto read = run.store->Read(*bno);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(*read, payload);
  // The repair rewrote the local sector: a direct device read is clean again.
  std::vector<uint8_t> raw(PairGeometry().block_size);
  EXPECT_TRUE(run.disk_a->Read(*bno, raw).ok());
}

TEST(StoreIntegrationTest, BlocksSurviveProcessRestart) {
  const std::string dir = ScratchDir("pair_restart");
  auto payload = Bytes("written by process one");
  BlockNo bno = 0;
  {
    PairRun run(dir);
    auto res = run.store->AllocWrite(payload);
    ASSERT_TRUE(res.ok());
    bno = *res;
  }  // orderly shutdown: FileDisk destructors checkpoint and close
  PairRun run(dir);
  // Same secret seed -> the account capability from run one verifies in run two; the
  // allocation scan adopted the on-disk blocks, so reads and fresh allocations both work.
  auto read = run.store->Read(bno);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(*read, payload);
  auto fresh = run.store->AllocWrite(Bytes("written by process two"));
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, bno) << "allocation map must have adopted the old block";
}

TEST(StoreIntegrationTest, FileServiceSurvivesProcessRestart) {
  const std::string dir = ScratchDir("fs_restart");
  FileDiskOptions options;
  options.block_size = 4096;
  options.num_blocks = 1 << 12;
  auto payload = Bytes("a file that outlives its process");
  Capability file_cap;  // the shell persists this in its meta file; tests keep it in memory
  {
    PairRun run(dir, options);
    FileServer fs(&run.net, "fs0", run.store.get());
    fs.Start();
    ASSERT_TRUE(fs.AttachStore().ok());
    auto file = fs.CreateFile();
    ASSERT_TRUE(file.ok());
    file_cap = *file;
    auto version = fs.CreateVersion(file_cap, kNullPort, false);
    ASSERT_TRUE(version.ok());
    ASSERT_TRUE(fs.WritePage(*version, PagePath::Root(), payload).ok());
    ASSERT_TRUE(fs.Commit(*version).ok());
  }
  // "Process two": fresh network, fresh servers, same disks, same seeds.
  PairRun run(dir, options);
  FileServer fs(&run.net, "fs0", run.store.get());
  fs.Start();
  // AttachStore's scan finds the existing file table page instead of creating a new one.
  ASSERT_TRUE(fs.AttachStore().ok());
  auto current = fs.GetCurrentVersion(file_cap);
  ASSERT_TRUE(current.ok()) << current.status().message();
  auto read = fs.ReadPage(*current, PagePath::Root(), false);
  ASSERT_TRUE(read.ok()) << read.status().message();
  EXPECT_EQ(read->data, payload);
  // And the service is fully writable: a second-generation update commits cleanly.
  auto version = fs.CreateVersion(file_cap, kNullPort, false);
  ASSERT_TRUE(version.ok());
  ASSERT_TRUE(fs.WritePage(*version, PagePath::Root(), Bytes("updated in process two")).ok());
  ASSERT_TRUE(fs.Commit(*version).ok());
}

}  // namespace
}  // namespace afs
