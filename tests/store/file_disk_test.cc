// Tests of FileDisk: the durable file-backed BlockDevice with its group-commit journal.
//
// Scratch files live under the test binary's working directory (the build tree when run
// via ctest) and are wiped per test, so repeated runs start from a fresh disk.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/store/file_disk.h"
#include "src/store/journal.h"
#include "src/store/stable_file.h"

namespace afs {
namespace {

std::string ScratchPath(const std::string& name) {
  std::filesystem::path dir = std::filesystem::path("store_scratch") / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return (dir / "disk.afsdisk").string();
}

std::vector<uint8_t> Pattern(uint32_t bno, uint32_t size) {
  std::vector<uint8_t> data(size);
  for (uint32_t i = 0; i < size; ++i) {
    data[i] = static_cast<uint8_t>(bno * 31 + i * 7 + 1);
  }
  return data;
}

FileDiskOptions SmallGeometry() {
  FileDiskOptions options;
  options.block_size = 512;
  options.num_blocks = 64;
  return options;
}

TEST(FileDiskTest, WriteReadRoundTrip) {
  const std::string path = ScratchPath("round_trip");
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok()) << disk.status().message();
  auto data = Pattern(3, 512);
  ASSERT_TRUE((*disk)->Write(3, data).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE((*disk)->Read(3, out).ok());
  EXPECT_EQ(out, data);
}

TEST(FileDiskTest, VirginBlocksReadZero) {
  const std::string path = ScratchPath("virgin");
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  std::vector<uint8_t> out(512, 0xff);
  ASSERT_TRUE((*disk)->Read(7, out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));
}

TEST(FileDiskTest, OutOfRangeAndWrongBufferRejected) {
  const std::string path = ScratchPath("bounds");
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  std::vector<uint8_t> buf(512);
  EXPECT_FALSE((*disk)->Read(64, buf).ok());
  EXPECT_FALSE((*disk)->Write(64, buf).ok());
  std::vector<uint8_t> short_buf(511);
  EXPECT_EQ((*disk)->Read(0, short_buf).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ((*disk)->Write(0, short_buf).code(), ErrorCode::kInvalidArgument);
}

TEST(FileDiskTest, CountsOps) {
  const std::string path = ScratchPath("counters");
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  std::vector<uint8_t> buf(512);
  EXPECT_TRUE((*disk)->Write(0, buf).ok());
  EXPECT_TRUE((*disk)->Read(0, buf).ok());
  EXPECT_TRUE((*disk)->Read(0, buf).ok());
  EXPECT_EQ((*disk)->writes(), 1u);
  EXPECT_EQ((*disk)->reads(), 2u);
}

TEST(FileDiskTest, PersistsAcrossCleanReopen) {
  const std::string path = ScratchPath("reopen");
  {
    auto disk = FileDisk::Open(path, SmallGeometry());
    ASSERT_TRUE(disk.ok());
    for (uint32_t bno = 0; bno < 8; ++bno) {
      ASSERT_TRUE((*disk)->Write(bno, Pattern(bno, 512)).ok());
    }
    ASSERT_TRUE((*disk)->Close().ok());
  }
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  // A clean close checkpointed everything: the journal replays no records on mount.
  EXPECT_EQ((*disk)->recovered_records(), 0u);
  EXPECT_EQ((*disk)->journal_bytes(), 0u);
  std::vector<uint8_t> out(512);
  for (uint32_t bno = 0; bno < 8; ++bno) {
    ASSERT_TRUE((*disk)->Read(bno, out).ok()) << "block " << bno;
    EXPECT_EQ(out, Pattern(bno, 512)) << "block " << bno;
  }
}

TEST(FileDiskTest, GeometryAdoptedFromSuperblock) {
  const std::string path = ScratchPath("geometry");
  {
    auto disk = FileDisk::Open(path, SmallGeometry());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->Write(1, Pattern(1, 512)).ok());
  }
  // Reopen with different requested geometry: the superblock's wins.
  FileDiskOptions other;
  other.block_size = 4096;
  other.num_blocks = 8;
  auto disk = FileDisk::Open(path, other);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->geometry().block_size, 512u);
  EXPECT_EQ((*disk)->geometry().num_blocks, 64u);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE((*disk)->Read(1, out).ok());
  EXPECT_EQ(out, Pattern(1, 512));
}

TEST(FileDiskTest, EpochBumpsEveryMount) {
  const std::string path = ScratchPath("epoch");
  uint64_t first_epoch = 0;
  {
    auto disk = FileDisk::Open(path, SmallGeometry());
    ASSERT_TRUE(disk.ok());
    first_epoch = (*disk)->epoch();
  }
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->epoch(), first_epoch + 1);
}

TEST(FileDiskTest, CorruptJournalCopyDetectedOnRead) {
  const std::string path = ScratchPath("corrupt_journal");
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->Write(5, Pattern(5, 512)).ok());
  (*disk)->CorruptBlock(5);  // newest copy lives in the journal
  std::vector<uint8_t> out(512);
  EXPECT_EQ((*disk)->Read(5, out).code(), ErrorCode::kCorrupt);
}

TEST(FileDiskTest, CorruptCheckpointedSectorDetectedOnRead) {
  const std::string path = ScratchPath("corrupt_sector");
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->Write(5, Pattern(5, 512)).ok());
  ASSERT_TRUE((*disk)->Checkpoint().ok());
  (*disk)->CorruptBlock(5);  // newest copy now lives in the block area
  std::vector<uint8_t> out(512);
  EXPECT_EQ((*disk)->Read(5, out).code(), ErrorCode::kCorrupt);
}

TEST(FileDiskTest, MisdirectedWriteDetected) {
  const std::string path = ScratchPath("misdirect");
  {
    auto disk = FileDisk::Open(path, SmallGeometry());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->Write(2, Pattern(2, 512)).ok());
    ASSERT_TRUE((*disk)->Write(3, Pattern(3, 512)).ok());
    ASSERT_TRUE((*disk)->Close().ok());
  }
  // Simulate the firmware writing block 2's sector to block 3's address: the payload CRC
  // is intact but the embedded block number disagrees, which Read must flag as corrupt.
  {
    auto file = StableFile::Open(path);
    ASSERT_TRUE(file.ok());
    const uint64_t sector = kSectorHeaderBytes + 512ull;
    std::vector<uint8_t> sector2(sector);
    ASSERT_TRUE((*file)->ReadAt(kBlockAreaOffset + 2 * sector, sector2).ok());
    ASSERT_TRUE((*file)->RawWriteAt(kBlockAreaOffset + 3 * sector, sector2).ok());
  }
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE((*disk)->Read(2, out).ok());
  EXPECT_EQ(out, Pattern(2, 512));
  EXPECT_EQ((*disk)->Read(3, out).code(), ErrorCode::kCorrupt);
}

TEST(FileDiskTest, JournalShadowsStaleSector) {
  const std::string path = ScratchPath("shadow");
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->Write(4, Pattern(4, 512)).ok());
  ASSERT_TRUE((*disk)->Checkpoint().ok());
  auto v2 = Pattern(44, 512);
  ASSERT_TRUE((*disk)->Write(4, v2).ok());  // newer copy in the journal only
  std::vector<uint8_t> out(512);
  ASSERT_TRUE((*disk)->Read(4, out).ok());
  EXPECT_EQ(out, v2);
  ASSERT_TRUE((*disk)->Checkpoint().ok());
  ASSERT_TRUE((*disk)->Read(4, out).ok());
  EXPECT_EQ(out, v2);
}

TEST(FileDiskTest, AutoCheckpointTriggersAtThreshold) {
  const std::string path = ScratchPath("auto_checkpoint");
  FileDiskOptions options = SmallGeometry();
  options.checkpoint_threshold_bytes = 4096;  // a handful of 512-byte records
  auto disk = FileDisk::Open(path, options);
  ASSERT_TRUE(disk.ok());
  for (uint32_t i = 0; i < 32; ++i) {
    ASSERT_TRUE((*disk)->Write(i % 16, Pattern(i, 512)).ok());
  }
  EXPECT_GE((*disk)->checkpoints(), 1u);
  EXPECT_LT((*disk)->journal_bytes(), 32ull * (kJournalRecordHeaderBytes + 512));
}

TEST(FileDiskTest, GroupCommitBatchesConcurrentWriters) {
  const std::string path = ScratchPath("group_commit");
  FileDiskOptions options = SmallGeometry();
  options.group_commit_window = std::chrono::microseconds(500);
  constexpr int kThreads = 8;
  constexpr int kWritesPerThread = 20;
  {
    auto disk_or = FileDisk::Open(path, options);
    ASSERT_TRUE(disk_or.ok());
    FileDisk* disk = disk_or->get();
    std::vector<std::thread> writers;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([disk, t, &failures] {
        for (int i = 0; i < kWritesPerThread; ++i) {
          uint32_t bno = static_cast<uint32_t>(t * kWritesPerThread + i) % 64;
          if (!disk->Write(bno, Pattern(bno, 512)).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& w : writers) {
      w.join();
    }
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(disk->journal_appends(), static_cast<uint64_t>(kThreads * kWritesPerThread));
    // The point of group commit: far fewer fsyncs than appends.
    EXPECT_LT(disk->fsync_batches(), disk->journal_appends());
    ASSERT_TRUE(disk_or.value()->Close().ok());
  }
  auto disk = FileDisk::Open(path, options);
  ASSERT_TRUE(disk.ok());
  std::vector<uint8_t> out(512);
  for (uint32_t bno = 0; bno < 64; ++bno) {
    ASSERT_TRUE((*disk)->Read(bno, out).ok()) << "block " << bno;
    EXPECT_EQ(out, Pattern(bno, 512)) << "block " << bno;
  }
}

TEST(FileDiskTest, JournalQueueDepthAndBatchSizeInstruments) {
  // The journal exports journal.queue_depth (staged-but-not-durable records; its max is
  // the worst backlog seen) and journal.flush.batch_size (records per fsync). Drive a
  // Journal directly over a private registry so the assertions see only this journal.
  const std::string path = ScratchPath("journal_metrics");
  auto file = StableFile::Open(path + ".journal");
  ASSERT_TRUE(file.ok());
  obs::MetricRegistry metrics("journal_test", /*register_global=*/false);
  JournalOptions options;
  options.group_commit_window = std::chrono::microseconds(300);
  Journal journal(file->get(), options, &metrics, nullptr);
  uint64_t torn = 0;
  ASSERT_TRUE(journal.Recover(512, &torn).ok());
  journal.Start();

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 25;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&journal, t, &failures] {
      for (int i = 0; i < kWritesPerThread; ++i) {
        auto payload = Pattern(static_cast<uint32_t>(t * 100 + i), 256);
        if (!journal.Append(static_cast<BlockNo>(i), payload).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  journal.Stop();
  ASSERT_EQ(failures.load(), 0);

  constexpr uint64_t kTotal = static_cast<uint64_t>(kThreads) * kWritesPerThread;
  obs::Gauge* depth = metrics.gauge("journal.queue_depth");
  obs::Histogram* batch = metrics.histogram("journal.flush.batch_size");
  // Every acked append was flushed, so the queue drained to empty...
  EXPECT_EQ(depth->value(), 0);
  // ...and with a 300us window and 4 concurrent writers, some batch held > 1 record.
  EXPECT_GE(depth->max(), 1);
  // The batch-size samples partition the appends exactly: one sample per fsync, values
  // (stored in the histogram's sum) adding up to the total record count.
  EXPECT_EQ(batch->count(), journal.fsync_batches());
  EXPECT_EQ(batch->sum_ns(), kTotal);
  EXPECT_GT(batch->count(), 0u);
  EXPECT_LE(batch->count(), kTotal);
}

TEST(FileDiskTest, CloseIsIdempotent) {
  const std::string path = ScratchPath("close_twice");
  auto disk = FileDisk::Open(path, SmallGeometry());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->Write(0, Pattern(0, 512)).ok());
  EXPECT_TRUE((*disk)->Close().ok());
  EXPECT_TRUE((*disk)->Close().ok());
}

}  // namespace
}  // namespace afs
