// Block server tests (paper §4): allocate/read/write/free, account protection, the locking
// facility, the recovery operation, and corruption detection.

#include <gtest/gtest.h>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/disk/mem_disk.h"

namespace afs {
namespace {

class BlockServerTest : public ::testing::Test {
 protected:
  BlockServerTest() : net_(3), disk_(kDefaultBlockSize, 256) {
    server_ = std::make_unique<BlockServer>(&net_, "bs", &disk_, 5);
    server_->Start();
    account_ = server_->CreateAccountDirect();
    client_ = std::make_unique<BlockClient>(&net_, server_->port(), account_,
                                            server_->payload_capacity());
  }

  std::vector<uint8_t> Payload(uint8_t fill, size_t n = 100) {
    return std::vector<uint8_t>(n, fill);
  }

  Network net_;
  MemDisk disk_;
  std::unique_ptr<BlockServer> server_;
  Capability account_;
  std::unique_ptr<BlockClient> client_;
};

TEST_F(BlockServerTest, AllocWriteReadRoundTrip) {
  auto bno = client_->AllocWrite(Payload(0xaa));
  ASSERT_TRUE(bno.ok());
  auto data = client_->Read(*bno);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Payload(0xaa));
}

TEST_F(BlockServerTest, OverwriteInPlace) {
  auto bno = client_->AllocWrite(Payload(0x01));
  ASSERT_TRUE(bno.ok());
  ASSERT_TRUE(client_->Write(*bno, Payload(0x02, 50)).ok());
  EXPECT_EQ(*client_->Read(*bno), Payload(0x02, 50));
}

TEST_F(BlockServerTest, DistinctBlocksForDistinctAllocs) {
  auto a = client_->AllocWrite(Payload(1));
  auto b = client_->AllocWrite(Payload(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
}

TEST_F(BlockServerTest, FreeMakesBlockUnreadable) {
  auto bno = client_->AllocWrite(Payload(7));
  ASSERT_TRUE(bno.ok());
  ASSERT_TRUE(client_->Free(*bno).ok());
  EXPECT_FALSE(client_->Read(*bno).ok());
}

TEST_F(BlockServerTest, FreedBlockIsReused) {
  std::vector<BlockNo> first;
  for (int i = 0; i < 250; ++i) {
    auto bno = client_->AllocWrite(Payload(1));
    ASSERT_TRUE(bno.ok());
    first.push_back(*bno);
  }
  for (BlockNo bno : first) {
    ASSERT_TRUE(client_->Free(bno).ok());
  }
  // The disk has 256 blocks; a second sweep must reuse freed ones.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(client_->AllocWrite(Payload(2)).ok());
  }
}

TEST_F(BlockServerTest, DiskFullReported) {
  for (;;) {
    auto bno = client_->AllocWrite(Payload(1));
    if (!bno.ok()) {
      EXPECT_EQ(bno.status().code(), ErrorCode::kNoSpace);
      break;
    }
  }
}

TEST_F(BlockServerTest, ProtectionAgainstOtherAccounts) {
  // "a block, allocated by user A cannot be accessed by user B without A's permission."
  auto bno = client_->AllocWrite(Payload(9));
  ASSERT_TRUE(bno.ok());
  Capability intruder = server_->CreateAccountDirect();
  BlockClient other(&net_, server_->port(), intruder, server_->payload_capacity());
  EXPECT_EQ(other.Read(*bno).status().code(), ErrorCode::kBadCapability);
  EXPECT_EQ(other.Write(*bno, Payload(1)).code(), ErrorCode::kBadCapability);
}

TEST_F(BlockServerTest, ForgedAccountRejected) {
  Capability forged = account_;
  forged.check ^= 0x1;
  BlockClient bad(&net_, server_->port(), forged, server_->payload_capacity());
  EXPECT_EQ(bad.AllocWrite(Payload(1)).status().code(), ErrorCode::kBadCapability);
}

TEST_F(BlockServerTest, OversizedPayloadRejected) {
  std::vector<uint8_t> big(server_->payload_capacity() + 1, 0);
  EXPECT_FALSE(client_->AllocWrite(big).ok());
}

TEST_F(BlockServerTest, MaxPayloadAccepted) {
  std::vector<uint8_t> max(server_->payload_capacity(), 0x5a);
  auto bno = client_->AllocWrite(max);
  ASSERT_TRUE(bno.ok());
  EXPECT_EQ(client_->Read(*bno)->size(), max.size());
}

TEST_F(BlockServerTest, RecoverListsOwnedBlocks) {
  // "Block servers can support a recovery operation, which given an account number,
  // returns a list of block numbers owned by that account."
  std::set<BlockNo> mine;
  for (int i = 0; i < 5; ++i) {
    auto bno = client_->AllocWrite(Payload(static_cast<uint8_t>(i)));
    ASSERT_TRUE(bno.ok());
    mine.insert(*bno);
  }
  auto listed = client_->ListBlocks();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(std::set<BlockNo>(listed->begin(), listed->end()), mine);
}

TEST_F(BlockServerTest, LockExcludesOtherOwners) {
  auto bno = client_->AllocWrite(Payload(1));
  ASSERT_TRUE(bno.ok());
  Port owner1 = net_.AllocatePort();
  Port owner2 = net_.AllocatePort();
  ASSERT_TRUE(client_->Lock(*bno, owner1).ok());
  EXPECT_EQ(client_->Lock(*bno, owner2).code(), ErrorCode::kLocked);
  ASSERT_TRUE(client_->Unlock(*bno, owner1).ok());
  EXPECT_TRUE(client_->Lock(*bno, owner2).ok());
}

TEST_F(BlockServerTest, LockIsReentrantForSameOwner) {
  auto bno = client_->AllocWrite(Payload(1));
  Port owner = net_.AllocatePort();
  ASSERT_TRUE(client_->Lock(*bno, owner).ok());
  EXPECT_TRUE(client_->Lock(*bno, owner).ok());
}

TEST_F(BlockServerTest, DeadOwnersLockIsStolen) {
  // Locks are made of ports (§5.3): a lock whose holder's port died is stealable.
  auto bno = client_->AllocWrite(Payload(1));
  Port dead = net_.AllocatePort();
  ASSERT_TRUE(client_->Lock(*bno, dead).ok());
  net_.ClosePort(dead);
  Port live = net_.AllocatePort();
  EXPECT_TRUE(client_->Lock(*bno, live).ok());
}

TEST_F(BlockServerTest, UnlockByNonHolderRejected) {
  auto bno = client_->AllocWrite(Payload(1));
  Port owner = net_.AllocatePort();
  Port other = net_.AllocatePort();
  ASSERT_TRUE(client_->Lock(*bno, owner).ok());
  EXPECT_FALSE(client_->Unlock(*bno, other).ok());
}

TEST_F(BlockServerTest, RestartRebuildsAllocationFromDisk) {
  auto a = client_->AllocWrite(Payload(0x61));
  auto b = client_->AllocWrite(Payload(0x62));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  server_->Crash();
  server_->Restart();
  // Data survives, ownership survives, and new allocations avoid live blocks.
  EXPECT_EQ(*client_->Read(*a), Payload(0x61));
  auto fresh = client_->AllocWrite(Payload(0x63));
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(*fresh, *a);
  EXPECT_NE(*fresh, *b);
}

}  // namespace
}  // namespace afs
