// Vectored block I/O tests: multi-block RPC round trips, chunking under the 32K message
// limit, the oversized-payload guard, per-chunk atomicity when a server crashes mid-batch,
// and stable-pair consistency for pipelined batched replication.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/disk/mem_disk.h"
#include "src/rpc/message.h"

namespace afs {
namespace {

// Restores the global batching flag on scope exit so one test cannot poison the rest.
struct BatchingFlagGuard {
  ~BatchingFlagGuard() { SetBatchingEnabled(true); }
};

class BatchIoTest : public ::testing::Test {
 protected:
  BatchIoTest() : net_(21), disk_(kDefaultBlockSize, 256) {
    server_ = std::make_unique<BlockServer>(&net_, "bs", &disk_, 5);
    server_->Start();
    account_ = server_->CreateAccountDirect();
    client_ = std::make_unique<BlockClient>(&net_, server_->port(), account_,
                                            server_->payload_capacity());
  }

  std::vector<uint8_t> Payload(uint8_t fill, size_t n = 4000) {
    return std::vector<uint8_t>(n, fill);
  }

  // Allocates `n` blocks with distinct payloads and returns their numbers.
  std::vector<BlockNo> AllocBlocks(size_t n, size_t payload_len = 4000) {
    std::vector<BlockNo> bnos;
    for (size_t i = 0; i < n; ++i) {
      auto bno = client_->AllocWrite(Payload(static_cast<uint8_t>(i), payload_len));
      EXPECT_TRUE(bno.ok());
      bnos.push_back(*bno);
    }
    return bnos;
  }

  Network net_;
  MemDisk disk_;
  std::unique_ptr<BlockServer> server_;
  Capability account_;
  std::unique_ptr<BlockClient> client_;
  BatchingFlagGuard flag_guard_;
};

TEST_F(BatchIoTest, ReadMultiRoundTrip) {
  std::vector<BlockNo> bnos = AllocBlocks(20);
  uint64_t calls_before = net_.total_calls();
  auto results = client_->ReadMulti(bnos);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), bnos.size());
  for (size_t i = 0; i < bnos.size(); ++i) {
    ASSERT_TRUE((*results)[i].status.ok()) << i;
    EXPECT_EQ((*results)[i].data, Payload(static_cast<uint8_t>(i)));
  }
  // 20 blocks of ~4K payload cannot fit one 32K reply, but must take far fewer than 20
  // round trips (8 entries per reply -> 3 chunks).
  uint64_t calls = net_.total_calls() - calls_before;
  EXPECT_GT(calls, 1u);
  EXPECT_LE(calls, 4u);
}

TEST_F(BatchIoTest, ReadMultiReportsPerBlockErrors) {
  std::vector<BlockNo> bnos = AllocBlocks(3, 64);
  ASSERT_TRUE(client_->Free(bnos[1]).ok());
  auto results = client_->ReadMulti(bnos);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE((*results)[0].status.ok());
  EXPECT_FALSE((*results)[1].status.ok());
  EXPECT_TRUE((*results)[2].status.ok());
}

TEST_F(BatchIoTest, WriteBatchChunksUnderMessageLimit) {
  std::vector<BlockNo> bnos = AllocBlocks(20);
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < bnos.size(); ++i) {
    writes.push_back({bnos[i], Payload(static_cast<uint8_t>(0x80 + i))});
  }
  uint64_t calls_before = net_.total_calls();
  ASSERT_TRUE(client_->WriteBatch(writes).ok());
  // ~80K of writes: more than one message, far fewer than one per block.
  uint64_t calls = net_.total_calls() - calls_before;
  EXPECT_GT(calls, 1u);
  EXPECT_LE(calls, 4u);
  for (size_t i = 0; i < bnos.size(); ++i) {
    EXPECT_EQ(*client_->Read(bnos[i]), Payload(static_cast<uint8_t>(0x80 + i)));
  }
}

TEST_F(BatchIoTest, OversizedSingleWriteFailsCleanly) {
  // A client stub configured for a (hypothetical) huge block size: one payload that cannot
  // fit any transaction message must fail with kInvalidArgument before anything is sent.
  BlockClient big_client(&net_, server_->port(), account_, 64 * 1024);
  auto bnos = AllocBlocks(1, 64);
  std::vector<BlockWrite> writes;
  writes.push_back({bnos[0], std::vector<uint8_t>(kMaxMessageBytes + 10, 1)});
  uint64_t calls_before = net_.total_calls();
  Status st = big_client.WriteBatch(writes);
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(net_.total_calls(), calls_before);
  // The original small payload is untouched.
  EXPECT_EQ(*client_->Read(bnos[0]), Payload(0, 64));
}

TEST_F(BatchIoTest, FreeMultiAndAllocMultiRoundTrip) {
  auto fresh = client_->AllocMulti(10);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->size(), 10u);
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < fresh->size(); ++i) {
    writes.push_back({(*fresh)[i], Payload(static_cast<uint8_t>(i), 100)});
  }
  ASSERT_TRUE(client_->WriteBatch(writes).ok());
  for (size_t i = 0; i < fresh->size(); ++i) {
    EXPECT_EQ(*client_->Read((*fresh)[i]), Payload(static_cast<uint8_t>(i), 100));
  }
  ASSERT_TRUE(client_->FreeMulti(*fresh).ok());
  for (BlockNo bno : *fresh) {
    EXPECT_FALSE(client_->Read(bno).ok());
  }
  // FreeMulti is idempotent, like Free.
  EXPECT_TRUE(client_->FreeMulti(*fresh).ok());
}

TEST_F(BatchIoTest, DisabledBatchingFallsBackToSingleOps) {
  SetBatchingEnabled(false);
  std::vector<BlockNo> bnos = AllocBlocks(5, 64);
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < bnos.size(); ++i) {
    writes.push_back({bnos[i], Payload(static_cast<uint8_t>(0x40 + i), 64)});
  }
  uint64_t calls_before = net_.total_calls();
  ASSERT_TRUE(client_->WriteBatch(writes).ok());
  EXPECT_EQ(net_.total_calls() - calls_before, bnos.size());  // one RPC per block
  auto results = client_->ReadMulti(bnos);
  ASSERT_TRUE(results.ok());
  for (size_t i = 0; i < bnos.size(); ++i) {
    EXPECT_EQ((*results)[i].data, Payload(static_cast<uint8_t>(0x40 + i), 64));
  }
  SetBatchingEnabled(true);
}

TEST_F(BatchIoTest, CrashMidBatchKeepsAckedChunksOnly) {
  // 20 writes of ~4K chunk into [8, 8, 4]. Crash the server after the first chunk is
  // acked: per-chunk atomicity requires exactly the acked chunk's blocks to carry the new
  // data — durable across restart — and every later block to keep its old contents.
  std::vector<BlockNo> bnos = AllocBlocks(20);
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < bnos.size(); ++i) {
    writes.push_back({bnos[i], Payload(static_cast<uint8_t>(0xc0 + i))});
  }
  client_->set_between_chunks_hook_for_test([this](size_t completed_chunks) {
    if (completed_chunks == 1) {
      server_->Crash();
    }
  });
  Status st = client_->WriteBatch(writes);
  EXPECT_FALSE(st.ok());
  client_->set_between_chunks_hook_for_test(nullptr);

  server_->Restart();  // rebuilds the allocation map from disk before serving

  auto results = client_->ReadMulti(bnos);
  ASSERT_TRUE(results.ok());
  // First chunk: 8 entries of 8+4000 bytes each fit the 32K request budget.
  constexpr size_t kFirstChunk = 8;
  for (size_t i = 0; i < bnos.size(); ++i) {
    ASSERT_TRUE((*results)[i].status.ok()) << i;
    if (i < kFirstChunk) {
      EXPECT_EQ((*results)[i].data, Payload(static_cast<uint8_t>(0xc0 + i))) << i;
    } else {
      EXPECT_EQ((*results)[i].data, Payload(static_cast<uint8_t>(i))) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Stable pair + batches
// ---------------------------------------------------------------------------

class BatchPairTest : public ::testing::Test {
 protected:
  BatchPairTest()
      : net_(22), disk_a_(kDefaultBlockSize, 256), disk_b_(kDefaultBlockSize, 256) {
    a_ = std::make_unique<BlockServer>(&net_, "A", &disk_a_, 77);
    b_ = std::make_unique<BlockServer>(&net_, "B", &disk_b_, 77);
    a_->Start();
    b_->Start();
    a_->SetCompanion(b_->port());
    b_->SetCompanion(a_->port());
    account_ = a_->CreateAccountDirect();
    store_ = std::make_unique<StableStore>(MakeClient(a_.get()), MakeClient(b_.get()), 5);
  }

  std::unique_ptr<BlockClient> MakeClient(BlockServer* server) {
    return std::make_unique<BlockClient>(&net_, server->port(), account_,
                                         server->payload_capacity());
  }

  std::vector<uint8_t> Payload(uint8_t fill, size_t n = 4000) {
    return std::vector<uint8_t>(n, fill);
  }

  Network net_;
  MemDisk disk_a_;
  MemDisk disk_b_;
  std::unique_ptr<BlockServer> a_;
  std::unique_ptr<BlockServer> b_;
  Capability account_;
  std::unique_ptr<StableStore> store_;
  BatchingFlagGuard flag_guard_;
};

TEST_F(BatchPairTest, BatchedWritesLandOnBothDisks) {
  // A multi-chunk batch through the pipelined replication path must leave every block
  // readable from BOTH members — replication must not lag the ack.
  auto fresh = store_->AllocMulti(16);
  ASSERT_TRUE(fresh.ok());
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < fresh->size(); ++i) {
    writes.push_back({(*fresh)[i], Payload(static_cast<uint8_t>(i))});
  }
  ASSERT_TRUE(store_->WriteBatch(writes).ok());
  BlockClient direct_a(&net_, a_->port(), account_, a_->payload_capacity());
  BlockClient direct_b(&net_, b_->port(), account_, b_->payload_capacity());
  for (size_t i = 0; i < fresh->size(); ++i) {
    EXPECT_EQ(*direct_a.Read((*fresh)[i]), Payload(static_cast<uint8_t>(i))) << i;
    EXPECT_EQ(*direct_b.Read((*fresh)[i]), Payload(static_cast<uint8_t>(i))) << i;
  }
}

TEST_F(BatchPairTest, CompanionDownDegradesBatchAndRecordsIntentions) {
  auto fresh = store_->AllocMulti(12);
  ASSERT_TRUE(fresh.ok());
  b_->Crash();
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < fresh->size(); ++i) {
    writes.push_back({(*fresh)[i], Payload(static_cast<uint8_t>(0x50 + i))});
  }
  // The batch still succeeds, written locally at A with intentions recorded.
  ASSERT_TRUE(store_->WriteBatch(writes).ok());
  EXPECT_GT(a_->degraded_writes(), 0u);

  // When B returns it compares notes with A and replays the missed writes.
  b_->Restart();
  BlockClient direct_b(&net_, b_->port(), account_, b_->payload_capacity());
  for (size_t i = 0; i < fresh->size(); ++i) {
    EXPECT_EQ(*direct_b.Read((*fresh)[i]), Payload(static_cast<uint8_t>(0x50 + i))) << i;
  }
}

TEST_F(BatchPairTest, PartitionHealedMidBatchRepairedByCompareNotes) {
  // Partition the COMPANION between chunks of a kWriteMulti, heal it one chunk later, and
  // verify compare-notes recovery repairs exactly the chunk it missed. Chunks are [8, 8, 4]:
  // chunk 1 lands on both members, chunk 2 is written degraded at A (B partitioned, one
  // intention per block), chunk 3 lands on both again after the heal.
  auto fresh = store_->AllocMulti(20);
  ASSERT_TRUE(fresh.ok());
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < fresh->size(); ++i) {
    writes.push_back({(*fresh)[i], Payload(static_cast<uint8_t>(0x60 + i))});
  }
  const uint64_t degraded_before = a_->degraded_writes();
  auto direct_a = MakeClient(a_.get());
  direct_a->set_between_chunks_hook_for_test([this](size_t completed_chunks) {
    if (completed_chunks == 1) {
      net_.SetPartitioned(b_->port(), true);
    } else if (completed_chunks == 2) {
      net_.SetPartitioned(b_->port(), false);
    }
  });
  // The batch as a whole succeeds: A degrades to single-member operation for chunk 2.
  ASSERT_TRUE(direct_a->WriteBatch(writes).ok());
  direct_a->set_between_chunks_hook_for_test(nullptr);

  // Exactly the missed chunk (blocks 8..15) was written degraded.
  constexpr size_t kChunk = 8;
  EXPECT_EQ(a_->degraded_writes() - degraded_before, kChunk);

  // Before recovery, B is stale for precisely that chunk.
  BlockClient check_b(&net_, b_->port(), account_, b_->payload_capacity());
  for (size_t i = kChunk; i < 2 * kChunk; ++i) {
    EXPECT_NE(*check_b.Read((*fresh)[i]), Payload(static_cast<uint8_t>(0x60 + i))) << i;
  }

  // Heal is complete once B compares notes with A: the replayed intentions cover the
  // missed chunk and nothing else needs to change.
  b_->Crash();
  b_->Restart();
  for (size_t i = 0; i < fresh->size(); ++i) {
    EXPECT_EQ(*check_b.Read((*fresh)[i]), Payload(static_cast<uint8_t>(0x60 + i))) << i;
  }
}

TEST_F(BatchPairTest, PrimaryCrashMidBatchLeavesPairConsistent) {
  // Write the batch directly to member A (plain BlockClient, no fail-over) and crash A
  // between chunks. Companion-first order means every acked chunk is on BOTH disks; the
  // unacked chunks must be on NEITHER. After A compares notes on restart the pair must
  // agree block for block.
  auto fresh = store_->AllocMulti(20);
  ASSERT_TRUE(fresh.ok());
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < fresh->size(); ++i) {
    writes.push_back({(*fresh)[i], Payload(static_cast<uint8_t>(0xa0 + i))});
  }
  auto direct_a = MakeClient(a_.get());
  direct_a->set_between_chunks_hook_for_test([this](size_t completed_chunks) {
    if (completed_chunks == 1) {
      a_->Crash();
    }
  });
  Status st = direct_a->WriteBatch(writes);
  EXPECT_FALSE(st.ok());
  direct_a->set_between_chunks_hook_for_test(nullptr);

  a_->Restart();  // compare notes with B before serving

  BlockClient check_a(&net_, a_->port(), account_, a_->payload_capacity());
  BlockClient check_b(&net_, b_->port(), account_, b_->payload_capacity());
  constexpr size_t kFirstChunk = 8;
  for (size_t i = 0; i < fresh->size(); ++i) {
    auto from_a = check_a.Read((*fresh)[i]);
    auto from_b = check_b.Read((*fresh)[i]);
    ASSERT_TRUE(from_a.ok()) << i;
    ASSERT_TRUE(from_b.ok()) << i;
    EXPECT_EQ(*from_a, *from_b) << "pair diverged at block " << i;
    if (i < kFirstChunk) {
      EXPECT_EQ(*from_a, Payload(static_cast<uint8_t>(0xa0 + i))) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// InMemoryBlockStore sharding
// ---------------------------------------------------------------------------

TEST(InMemoryBatchTest, ShardCountRoundsUpToPowerOfTwo) {
  InMemoryBlockStore store(4068, 1024, 3);
  EXPECT_EQ(store.num_shards(), 4u);
}

TEST(InMemoryBatchTest, BatchOpsRoundTrip) {
  InMemoryBlockStore store(4068, 1024, 8);
  auto fresh = store.AllocMulti(50);
  ASSERT_TRUE(fresh.ok());
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < fresh->size(); ++i) {
    writes.push_back({(*fresh)[i], std::vector<uint8_t>(32, static_cast<uint8_t>(i))});
  }
  ASSERT_TRUE(store.WriteBatch(writes).ok());
  auto results = store.ReadMulti(*fresh);
  ASSERT_TRUE(results.ok());
  for (size_t i = 0; i < fresh->size(); ++i) {
    ASSERT_TRUE((*results)[i].status.ok()) << i;
    EXPECT_EQ((*results)[i].data, std::vector<uint8_t>(32, static_cast<uint8_t>(i)));
  }
  ASSERT_TRUE(store.FreeMulti(*fresh).ok());
  EXPECT_EQ(store.allocated_blocks(), 0u);
}

}  // namespace
}  // namespace afs
