// Stable-pair tests (paper §4): companion-first writes, fail-over, corruption repair from
// the companion, intentions-list recovery, and collision detection.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/disk/mem_disk.h"

namespace afs {
namespace {

class StablePairTest : public ::testing::Test {
 protected:
  StablePairTest()
      : net_(11),
        disk_a_(kDefaultBlockSize, 128),
        disk_b_(kDefaultBlockSize, 128) {
    a_ = std::make_unique<BlockServer>(&net_, "A", &disk_a_, 77);
    b_ = std::make_unique<BlockServer>(&net_, "B", &disk_b_, 77);  // shared account secret
    a_->Start();
    b_->Start();
    a_->SetCompanion(b_->port());
    b_->SetCompanion(a_->port());
    account_ = a_->CreateAccountDirect();
    store_ = std::make_unique<StableStore>(MakeClient(a_.get()), MakeClient(b_.get()), 5);
  }

  std::unique_ptr<BlockClient> MakeClient(BlockServer* server) {
    return std::make_unique<BlockClient>(&net_, server->port(), account_,
                                         server->payload_capacity());
  }

  std::vector<uint8_t> Payload(uint8_t fill, size_t n = 64) {
    return std::vector<uint8_t>(n, fill);
  }

  Network net_;
  MemDisk disk_a_;
  MemDisk disk_b_;
  std::unique_ptr<BlockServer> a_;
  std::unique_ptr<BlockServer> b_;
  Capability account_;
  std::unique_ptr<StableStore> store_;
};

TEST_F(StablePairTest, WriteLandsOnBothDisks) {
  // "each block is stored by two servers on two different disk drives."
  auto bno = store_->AllocWrite(Payload(0x42));
  ASSERT_TRUE(bno.ok());
  BlockClient direct_b(&net_, b_->port(), account_, b_->payload_capacity());
  EXPECT_EQ(*direct_b.Read(*bno), Payload(0x42));
  BlockClient direct_a(&net_, a_->port(), account_, a_->payload_capacity());
  EXPECT_EQ(*direct_a.Read(*bno), Payload(0x42));
}

TEST_F(StablePairTest, CompanionWrittenFirst) {
  // The companion's disk must see the write before the primary's own disk does.
  uint64_t b_writes_before = disk_b_.writes();
  uint64_t a_writes_before = disk_a_.writes();
  ASSERT_TRUE(store_->AllocWrite(Payload(1)).ok());
  EXPECT_GT(disk_b_.writes(), b_writes_before);
  EXPECT_GT(disk_a_.writes(), a_writes_before);
}

TEST_F(StablePairTest, ReadsAreLocalOnly) {
  // "For reads, the block server need not consult its companion."
  auto bno = store_->AllocWrite(Payload(3));
  ASSERT_TRUE(bno.ok());
  uint64_t b_reads = disk_b_.reads();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_->Read(*bno).ok());
  }
  EXPECT_EQ(disk_b_.reads(), b_reads);
}

TEST_F(StablePairTest, CorruptBlockRepairedFromCompanion) {
  // "...except when the block on its disk is corrupted."
  auto bno = store_->AllocWrite(Payload(0x77));
  ASSERT_TRUE(bno.ok());
  disk_a_.CorruptBlock(*bno);
  auto data = store_->Read(*bno);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, Payload(0x77));
  // And the local copy was repaired: corruption gone on a direct re-read.
  BlockClient direct_a(&net_, a_->port(), account_, a_->payload_capacity());
  EXPECT_EQ(*direct_a.Read(*bno), Payload(0x77));
}

TEST_F(StablePairTest, FailoverToSurvivorOnCrash) {
  // "Clients send requests to the alternative block server if the primary fails to
  // respond."
  auto bno = store_->AllocWrite(Payload(0x10));
  ASSERT_TRUE(bno.ok());
  a_->Crash();
  EXPECT_EQ(*store_->Read(*bno), Payload(0x10));
  EXPECT_TRUE(store_->Write(*bno, Payload(0x11)).ok());
  EXPECT_EQ(*store_->Read(*bno), Payload(0x11));
}

TEST_F(StablePairTest, FailoverIsObservable) {
  // Chaos runs assert on these: the failover counter ticks when the preferred member is
  // abandoned on a connectivity error, the degraded gauge is raised while the pair runs
  // through one member, and it clears once the preferred member answers first-try again.
  auto bno = store_->AllocWrite(Payload(0x40));
  ASSERT_TRUE(bno.ok());
  EXPECT_EQ(store_->failovers(), 0u);
  EXPECT_FALSE(store_->degraded());

  a_->Crash();
  EXPECT_EQ(*store_->Read(*bno), Payload(0x40));
  EXPECT_GE(store_->failovers(), 1u);
  EXPECT_TRUE(store_->degraded());
  // The max() watermark on the gauge records "ever degraded" even after recovery.
  EXPECT_GE(store_->metrics()->gauge("stable.degraded")->max(), 1);

  a_->Restart();
  EXPECT_EQ(*store_->Read(*bno), Payload(0x40));  // preferred (now B) answers first try
  EXPECT_FALSE(store_->degraded());
}

TEST_F(StablePairTest, DegradedWritesAreRememberedAndReplayed) {
  auto bno = store_->AllocWrite(Payload(0x20));
  ASSERT_TRUE(bno.ok());
  a_->Crash();
  // B serves alone and keeps an intentions list for A.
  ASSERT_TRUE(store_->Write(*bno, Payload(0x21)).ok());
  auto fresh = store_->AllocWrite(Payload(0x22));
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(b_->degraded_writes(), 0u);
  // "After a crash, the block server compares notes with its companion, and restores its
  // disk before accepting any requests."
  a_->Restart();
  BlockClient direct_a(&net_, a_->port(), account_, a_->payload_capacity());
  EXPECT_EQ(*direct_a.Read(*bno), Payload(0x21));
  EXPECT_EQ(*direct_a.Read(*fresh), Payload(0x22));
}

TEST_F(StablePairTest, TotalDiskLossRebuiltFromCompanion) {
  auto bno = store_->AllocWrite(Payload(0x30));
  ASSERT_TRUE(bno.ok());
  a_->Crash();
  ASSERT_TRUE(store_->Write(*bno, Payload(0x31)).ok());
  disk_a_.WipeClean();  // the medium itself is destroyed and replaced
  a_->Restart();
  // The replayed intentions restore what changed while A was down; blocks A missed
  // entirely are still served by B (reads fail over), so no data is lost.
  EXPECT_EQ(*store_->Read(*bno), Payload(0x31));
}

TEST_F(StablePairTest, SimultaneousWritesToSameBlockDetected) {
  // "write collisions may occur when two clients write the same block via different block
  // servers. These collisions are detected ... before any damage is done."
  auto bno = store_->AllocWrite(Payload(0));
  ASSERT_TRUE(bno.ok());
  BlockClient via_a(&net_, a_->port(), account_, a_->payload_capacity());
  BlockClient via_b(&net_, b_->port(), account_, b_->payload_capacity());
  std::atomic<int> conflicts{0};
  std::atomic<int> successes{0};
  auto writer = [&](BlockClient* client, uint8_t fill) {
    for (int i = 0; i < 200; ++i) {
      Status st = client->Write(*bno, Payload(fill));
      if (st.ok()) {
        ++successes;
      } else if (st.code() == ErrorCode::kConflict) {
        ++conflicts;
      }
    }
  };
  std::thread t1(writer, &via_a, 0xa1);
  std::thread t2(writer, &via_b, 0xb2);
  t1.join();
  t2.join();
  EXPECT_GT(successes.load(), 0);
  // Whatever happened, both replicas must agree in the end.
  auto from_a = via_a.Read(*bno);
  auto from_b = via_b.Read(*bno);
  ASSERT_TRUE(from_a.ok());
  ASSERT_TRUE(from_b.ok());
  EXPECT_EQ(*from_a, *from_b);
}

TEST_F(StablePairTest, StableStoreRetriesCollisionsTransparently) {
  // Through the StableStore wrapper, collisions surface as retries, not client errors.
  auto bno = store_->AllocWrite(Payload(0));
  ASSERT_TRUE(bno.ok());
  auto store2 = std::make_unique<StableStore>(MakeClient(b_.get()), MakeClient(a_.get()), 6);
  std::atomic<int> failures{0};
  auto writer = [&](BlockStore* store, uint8_t fill) {
    for (int i = 0; i < 100; ++i) {
      if (!store->Write(*bno, Payload(fill)).ok()) {
        ++failures;
      }
    }
  };
  std::thread t1(writer, store_.get(), 1);
  std::thread t2(writer, store2.get(), 2);
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace afs
