// Unit tests for the observability layer (src/obs): lock-free counters and histograms,
// registry text exposition, the retired aggregate, and the per-thread trace ring.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rpc/network.h"
#include "src/rpc/service.h"

namespace afs {
namespace obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  MetricRegistry registry("test", /*register_global=*/false);
  Counter* counter = registry.counter("ops");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, IncByDelta) {
  MetricRegistry registry("test", /*register_global=*/false);
  Counter* counter = registry.counter("ops");
  counter->Inc(5);
  counter->Inc();
  EXPECT_EQ(counter->value(), 6u);
}

TEST(GaugeTest, TracksValueAndHighWatermark) {
  MetricRegistry registry("test", /*register_global=*/false);
  Gauge* gauge = registry.gauge("depth");
  gauge->Add(3);
  gauge->Add(4);
  gauge->Add(-5);
  EXPECT_EQ(gauge->value(), 2);
  EXPECT_EQ(gauge->max(), 7);
  gauge->Set(0);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(gauge->max(), 7);
}

TEST(HistogramTest, ConcurrentRecordsSumExactly) {
  MetricRegistry registry("test", /*register_global=*/false);
  Histogram* histogram = registry.histogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Record(10);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(histogram->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->sum_ns(), static_cast<uint64_t>(kThreads) * kPerThread * 10);
  uint64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += histogram->bucket(i);
  }
  EXPECT_EQ(bucket_total, histogram->count());
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 is [0, 2); bucket i is [2^i, 2^(i+1)); the last bucket absorbs the tail.
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 0);
  EXPECT_EQ(Histogram::BucketIndex(2), 1);
  EXPECT_EQ(Histogram::BucketIndex(3), 1);
  EXPECT_EQ(Histogram::BucketIndex(4), 2);
  EXPECT_EQ(Histogram::BucketIndex(7), 2);
  EXPECT_EQ(Histogram::BucketIndex(8), 3);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(10), 1024u);

  MetricRegistry registry("test", /*register_global=*/false);
  Histogram* histogram = registry.histogram("lat");
  histogram->Record(1);
  histogram->Record(2);
  histogram->Record(3);
  histogram->Record(4);
  histogram->Record(1ull << 62);
  EXPECT_EQ(histogram->bucket(0), 1u);
  EXPECT_EQ(histogram->bucket(1), 2u);
  EXPECT_EQ(histogram->bucket(2), 1u);
  EXPECT_EQ(histogram->bucket(Histogram::kNumBuckets - 1), 1u);
}

TEST(HistogramTest, ApproxPercentile) {
  MetricRegistry registry("test", /*register_global=*/false);
  Histogram* histogram = registry.histogram("lat");
  EXPECT_EQ(histogram->ApproxPercentileNs(0.5), 0u);
  for (int i = 0; i < 99; ++i) {
    histogram->Record(10);  // bucket 3: [8, 16)
  }
  histogram->Record(1000000);  // bucket 19
  EXPECT_EQ(histogram->ApproxPercentileNs(0.5), 15u);           // upper bound of bucket 3
  EXPECT_GE(histogram->ApproxPercentileNs(1.0), 1000000u);      // tail lands past the slow sample
}

TEST(RegistryTest, DumpTextGolden) {
  MetricRegistry registry("golden", /*register_global=*/false);
  registry.counter("b.count")->Inc(3);
  registry.counter("a.count")->Inc(1);
  registry.gauge("depth")->Add(2);
  registry.histogram("lat")->Record(5);

  std::string text;
  registry.DumpText(&text);
  std::string expected =
      "# registry golden\n"
      "counter a.count 1\n"
      "counter b.count 3\n"
      "gauge depth 2 max 2\n"
      "histogram lat count 1 sum_ns 5 p50_ns 7 p99_ns 7 buckets 2:1\n";
  EXPECT_EQ(text, expected);
}

TEST(RegistryTest, MetricPointersAreStable) {
  MetricRegistry registry("test", /*register_global=*/false);
  Counter* first = registry.counter("ops");
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler" + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("ops"), first);
}

TEST(RegistryTest, RetiredAggregateSurvivesDestruction) {
  ResetRetired();
  {
    MetricRegistry registry("ephemeral");
    registry.counter("died.with.me")->Inc(42);
    registry.histogram("died.lat")->Record(100);
  }
  std::string all = DumpAllText();
  EXPECT_NE(all.find("ephemeral/died.with.me 42"), std::string::npos) << all;
  EXPECT_NE(all.find("ephemeral/died.lat"), std::string::npos) << all;

  std::string json = DumpAllJson();
  EXPECT_NE(json.find("\"retired\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ephemeral/died.with.me\":42"), std::string::npos) << json;
  ResetRetired();
}

TEST(RegistryTest, RetiredAggregateAccumulatesAcrossInstances) {
  ResetRetired();
  for (int i = 0; i < 3; ++i) {
    MetricRegistry registry("repeat");
    registry.counter("total")->Inc(10);
  }
  std::string all = DumpAllText();
  EXPECT_NE(all.find("repeat/total 30"), std::string::npos) << all;
  ResetRetired();
}

TEST(TraceTest, RecordsAndDumps) {
  ClearTrace();
  Trace(TraceEvent::kCommitBegin, 7);
  Trace(TraceEvent::kCommitFastPath, 7);
  std::string dump = DumpTrace(16);
  EXPECT_NE(dump.find("commit.begin a=7"), std::string::npos) << dump;
  EXPECT_NE(dump.find("commit.fast_path a=7"), std::string::npos) << dump;
  ClearTrace();
}

TEST(TraceTest, RingWrapsKeepingMostRecent) {
  ClearTrace();
  const size_t total = kTraceRingCapacity + 100;
  for (size_t i = 0; i < total; ++i) {
    Trace(TraceEvent::kDiskRead, i);
  }
  // Ask for more than the ring holds: only the most recent kTraceRingCapacity survive.
  std::string dump = DumpTrace(2 * kTraceRingCapacity);
  EXPECT_EQ(dump.find("disk.read a=0 "), std::string::npos) << "oldest event survived";
  EXPECT_NE(dump.find("disk.read a=" + std::to_string(total - 1)), std::string::npos) << dump;
  EXPECT_NE(dump.find("disk.read a=" + std::to_string(total - kTraceRingCapacity)),
            std::string::npos)
      << dump;

  // Events come out oldest-first in sequence order.
  size_t first = dump.find("disk.read a=" + std::to_string(total - kTraceRingCapacity));
  size_t last = dump.find("disk.read a=" + std::to_string(total - 1));
  EXPECT_LT(first, last);
  ClearTrace();
}

TEST(TraceTest, DumpHonoursLimit) {
  ClearTrace();
  for (int i = 0; i < 50; ++i) {
    Trace(TraceEvent::kCacheHit, i);
  }
  std::string dump = DumpTrace(10);
  int lines = 0;
  for (char c : dump) {
    if (c == '\n') {
      ++lines;
    }
  }
  EXPECT_EQ(lines, 10);
  // The 10 most recent events are 40..49.
  EXPECT_NE(dump.find("cache.hit a=40"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("cache.hit a=39"), std::string::npos) << dump;
  ClearTrace();
}

TEST(TraceTest, DisableStopsRecording) {
  ClearTrace();
  SetTraceEnabled(false);
  Trace(TraceEvent::kCacheMiss, 123456789);
  SetTraceEnabled(true);
  std::string dump = DumpTrace(16);
  EXPECT_EQ(dump.find("123456789"), std::string::npos) << dump;
  ClearTrace();
}

// A single-worker service whose handler blocks until released, so requests pile up in the
// queue and the rpc.queue_depth gauge has something to measure.
class StallService : public Service {
 public:
  explicit StallService(Network* net) : Service(net, "stall", /*num_workers=*/1) {}
  std::atomic<bool> release{false};

 protected:
  Result<Message> Handle(const Message& request) override {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Message(request.opcode, {});
  }
};

TEST(ServiceMetricsTest, QueueDepthGaugeTracksBacklog) {
  Network net(9);
  StallService svc(&net);
  svc.Start();
  Gauge* depth = svc.metrics()->gauge("rpc.queue_depth");
  EXPECT_EQ(depth->value(), 0);

  // One call occupies the lone worker; the rest sit in the queue.
  constexpr int kCalls = 5;
  std::vector<std::thread> callers;
  for (int i = 0; i < kCalls; ++i) {
    callers.emplace_back([&net, &svc] {
      CallOptions opts;
      opts.timeout = std::chrono::milliseconds(10000);
      (void)net.Call(svc.port(), Message(1, {}), opts);
    });
  }
  // The gauge is published under the queue mutex, so once it reads N the queue really
  // held N entries at that instant.
  while (depth->max() < kCalls - 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  svc.release = true;
  for (auto& t : callers) {
    t.join();
  }
  EXPECT_EQ(depth->value(), 0);
  EXPECT_GE(depth->max(), kCalls - 1);
}

TEST(TraceTest, RetiredThreadEventsSurvive) {
  ClearTrace();
  std::thread worker([] { Trace(TraceEvent::kCommitMerge, 31337); });
  worker.join();
  std::string dump = DumpTrace(16);
  EXPECT_NE(dump.find("commit.merge a=31337"), std::string::npos) << dump;
  ClearTrace();
}

}  // namespace
}  // namespace obs
}  // namespace afs
