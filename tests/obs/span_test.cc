// Tests of the causal-tracing core (src/obs/span.h) and SLO accounting (src/obs/slo.h):
// context propagation, the lock-free ring, exports, the critical-path analyzer, the
// slow-transaction log, and the pass/fail verdict semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/slo.h"
#include "src/obs/span.h"

namespace afs {
namespace obs {
namespace {

// Every test runs with a clean ring and spans enabled; the previous global state is
// restored afterwards so the suite composes with tests that expect tracing off.
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = SpanEnabled();
    prev_threshold_ = SlowTraceThresholdNs();
    SetSpanEnabled(true);
    SetSlowTraceThresholdNs(0);
    ClearSpans();
  }
  void TearDown() override {
    ClearSpans();
    SetSlowTraceThresholdNs(prev_threshold_);
    SetSpanEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
  uint64_t prev_threshold_ = 0;
};

TEST_F(SpanTest, DisabledRecordsNothing) {
  SetSpanEnabled(false);
  {
    ScopedSpan span("noop", SpanKind::kInternal);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.trace_id(), 0u);
  }
  EXPECT_TRUE(SnapshotSpans().empty());
  SetSpanEnabled(true);
}

TEST_F(SpanTest, RootSpanGetsFreshTrace) {
  uint64_t trace = 0;
  {
    ScopedSpan span("root", SpanKind::kClient, 7, 9);
    ASSERT_TRUE(span.active());
    trace = span.trace_id();
    EXPECT_NE(trace, 0u);
    EXPECT_EQ(span.parent_span_id(), 0u);
  }
  std::vector<Span> spans = SpansForTrace(trace);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].a, 7u);
  EXPECT_EQ(spans[0].b, 9u);
  EXPECT_EQ(spans[0].kind, SpanKind::kClient);
}

TEST_F(SpanTest, NestingBuildsParentChain) {
  uint64_t trace = 0;
  {
    ScopedSpan outer("outer");
    trace = outer.trace_id();
    {
      ScopedSpan inner("inner");
      EXPECT_EQ(inner.trace_id(), trace);
      EXPECT_EQ(inner.parent_span_id(), outer.span_id());
    }
  }
  std::vector<Span> spans = SpansForTrace(trace);
  ASSERT_EQ(spans.size(), 2u);  // sorted by start: outer first
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_span_id, spans[0].span_id);
}

TEST_F(SpanTest, EndMakesSiblingsNotChildren) {
  // The commit path uses End() so validate and merge are siblings under commit even
  // though they execute sequentially in the same scope.
  uint64_t trace = 0;
  {
    ScopedSpan root("op");
    trace = root.trace_id();
    ScopedSpan first("phase.one");
    first.End();
    ScopedSpan second("phase.two");
    EXPECT_EQ(second.parent_span_id(), root.span_id());
  }
  std::vector<Span> spans = SpansForTrace(trace);
  ASSERT_EQ(spans.size(), 3u);
  uint64_t root_id = 0;
  for (const Span& s : spans) {
    if (std::string(s.name) == "op") root_id = s.span_id;
  }
  for (const Span& s : spans) {
    if (std::string(s.name) != "op") {
      EXPECT_EQ(s.parent_span_id, root_id) << s.name;
    }
  }
}

TEST_F(SpanTest, EndIsIdempotent) {
  ScopedSpan span("once");
  uint64_t trace = span.trace_id();
  span.End();
  span.End();
  EXPECT_EQ(SpansForTrace(trace).size(), 1u);
}

TEST_F(SpanTest, ContextScopeAdoptsRemoteParent) {
  // The server side of an RPC: adopt the request's (trace_id, span_id) so the handle
  // span joins the caller's tree.
  const uint64_t remote_trace = NewTraceId();
  const uint64_t remote_span = 424242;
  {
    SpanContextScope scope(remote_trace, remote_span);
    ScopedSpan handle("handle");
    EXPECT_EQ(handle.trace_id(), remote_trace);
    EXPECT_EQ(handle.parent_span_id(), remote_span);
  }
  // Context restored: a new span after the scope starts a fresh trace.
  ScopedSpan after("after");
  EXPECT_NE(after.trace_id(), remote_trace);
}

TEST_F(SpanTest, RingOverwritesOldestWhenFull) {
  for (size_t i = 0; i < kSpanRingCapacity + 100; ++i) {
    ScopedSpan span("fill");
  }
  std::vector<Span> spans = SnapshotSpans();
  EXPECT_LE(spans.size(), kSpanRingCapacity);
  EXPECT_GE(spans.size(), kSpanRingCapacity - 2);  // racy reader may skip a torn slot
}

TEST_F(SpanTest, ConcurrentWritersProduceValidSpans) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span("stress", SpanKind::kInternal, static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Every decoded span must be internally consistent — no torn half-written entries.
  for (const Span& s : SnapshotSpans()) {
    EXPECT_NE(s.trace_id, 0u);
    EXPECT_STREQ(s.name, "stress");
    EXPECT_GE(s.end_ns, s.start_ns);
  }
}

TEST_F(SpanTest, LongNamesTruncatedWithNulTerminator) {
  uint64_t trace = 0;
  {
    ScopedSpan span("this.name.is.much.longer.than.the.fixed.slot");
    trace = span.trace_id();
  }
  std::vector<Span> spans = SpansForTrace(trace);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_LT(std::string(spans[0].name).size(), kSpanNameBytes);
}

TEST_F(SpanTest, ChromeJsonExportShape) {
  {
    ScopedSpan root("parent");
    ScopedSpan child("child");
  }
  std::string json = DumpSpansChromeJson(100);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
  EXPECT_NE(json.find("\"child\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
}

TEST_F(SpanTest, TextDumpOneLinePerSpan) {
  {
    ScopedSpan a("alpha");
  }
  {
    ScopedSpan b("beta");
  }
  std::string text = DumpSpansText(10);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_EQ(static_cast<size_t>(std::count(text.begin(), text.end(), '\n')), 2u);
}

TEST_F(SpanTest, FormatSpanTreeIndentsChildren) {
  uint64_t trace = 0;
  {
    ScopedSpan root("txn");
    trace = root.trace_id();
    ScopedSpan child("commit");
  }
  std::string tree = FormatSpanTree(trace);
  EXPECT_NE(tree.find("txn"), std::string::npos);
  EXPECT_NE(tree.find("  "), std::string::npos);  // the child is indented
  EXPECT_NE(tree.find("commit"), std::string::npos);
}

TEST_F(SpanTest, AnalyzePhasesAttributesDirectChildren) {
  // Synthetic tree: root (100us) with direct phases A (40us), B (30us, two spans), and a
  // grandchild under A that must NOT be double-counted.
  const uint64_t trace = NewTraceId();
  auto mk = [&](const char* name, uint64_t id, uint64_t parent, uint64_t start_us,
                uint64_t dur_us) {
    Span s;
    s.trace_id = trace;
    s.span_id = id;
    s.parent_span_id = parent;
    s.start_ns = start_us * 1000;
    s.end_ns = (start_us + dur_us) * 1000;
    std::snprintf(s.name, sizeof(s.name), "%s", name);
    RecordSpan(s);
  };
  mk("commit", 1, 0, 0, 100);
  mk("commit.validate", 2, 1, 5, 40);
  mk("commit.merge", 3, 1, 50, 20);
  mk("commit.merge", 4, 1, 75, 10);
  mk("nested.read", 5, 2, 10, 35);  // child of validate, not of commit

  PhaseBreakdown b = AnalyzePhases(trace, "commit");
  ASSERT_TRUE(b.found);
  EXPECT_EQ(b.total_ns, 100'000u);
  EXPECT_EQ(b.attributed_ns, 70'000u);
  ASSERT_EQ(b.phases.size(), 2u);
  EXPECT_EQ(b.phases[0].name, "commit.validate");  // largest first
  EXPECT_EQ(b.phases[0].total_ns, 40'000u);
  EXPECT_EQ(b.phases[1].name, "commit.merge");
  EXPECT_EQ(b.phases[1].total_ns, 30'000u);
  EXPECT_EQ(b.phases[1].count, 2u);

  std::string text = FormatBreakdown(b);
  EXPECT_NE(text.find("commit.validate"), std::string::npos);
}

TEST_F(SpanTest, AnalyzePhasesMissingRoot) {
  PhaseBreakdown b = AnalyzePhases(NewTraceId(), "no.such.op");
  EXPECT_FALSE(b.found);
}

TEST_F(SpanTest, SlowTraceLogCapturesRootTrees) {
  SetSlowTraceThresholdNs(1);  // everything is slow
  ClearSlowTraces();
  {
    ScopedSpan root("slow.txn");
    ScopedSpan child("slow.phase");
  }
  std::vector<std::string> dumps = SlowTraceDumps(10);
  ASSERT_FALSE(dumps.empty());
  EXPECT_NE(dumps[0].find("slow.txn"), std::string::npos);
  EXPECT_NE(dumps[0].find("slow.phase"), std::string::npos);
}

TEST_F(SpanTest, NonRootSpansNeverTriggerSlowDump) {
  SetSlowTraceThresholdNs(1);
  ClearSlowTraces();
  {
    ScopedSpan root("quiet.root");
    {
      ScopedSpan child("noisy.child");
      // child ends slow, but it has a parent -> not a root -> no dump yet
    }
    EXPECT_TRUE(SlowTraceDumps(10).empty());
    SetSlowTraceThresholdNs(0);  // root ends below threshold -> still no dump
  }
  EXPECT_TRUE(SlowTraceDumps(10).empty());
}

TEST(SloTrackerTest, VerdictSemantics) {
  SloTracker tracker;
  // Class without a target: reported, never fails.
  tracker.Record("untargeted", 50'000'000);
  EXPECT_TRUE(tracker.AllPass());

  // Target met.
  tracker.DeclareTarget("fast", {1'000'000, 10'000'000, 0});
  for (int i = 0; i < 100; ++i) {
    tracker.Record("fast", 1000);
  }
  EXPECT_TRUE(tracker.AllPass());

  // Target missed at p99.
  tracker.DeclareTarget("slow", {0, 1000, 0});
  for (int i = 0; i < 100; ++i) {
    tracker.Record("slow", 1'000'000);
  }
  EXPECT_FALSE(tracker.AllPass());
}

TEST(SloTrackerTest, UnmeasuredTargetFails) {
  SloTracker tracker;
  tracker.DeclareTarget("never.measured", {1'000'000, 0, 0});
  EXPECT_FALSE(tracker.AllPass()) << "an unmeasured SLO is not a met SLO";
  tracker.Record("never.measured", 10);
  EXPECT_TRUE(tracker.AllPass());
}

TEST(SloTrackerTest, JsonShapeAndReset) {
  SloTracker tracker;
  tracker.DeclareTarget("commit", {0, 2'000'000'000, 0});
  tracker.Record("commit", 5'000'000);
  std::string json = tracker.DumpJson();
  EXPECT_NE(json.find("\"classes\""), std::string::npos);
  EXPECT_NE(json.find("\"commit\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"pass\""), std::string::npos);

  std::string text = tracker.DumpText();
  EXPECT_NE(text.find("commit"), std::string::npos);

  tracker.Reset();
  EXPECT_EQ(tracker.DumpJson().find("\"commit\""), std::string::npos);
}

TEST(SloTrackerTest, TimerRecordsIntoHistogram) {
  SloTracker tracker;
  Histogram* hist = tracker.ClassHistogram("timed");
  {
    SloTimer timer(hist);
  }
  EXPECT_EQ(hist->count(), 1u);
  {
    SloTimer null_timer(nullptr);  // no-op, must not crash
  }
}

}  // namespace
}  // namespace obs
}  // namespace afs
