// B-tree-on-page-trees tests (§5's claim that "objects ranging from linear files to
// B-trees can easily be represented"): ordered map semantics, node splits across levels,
// range scans, structural validation, concurrency via the optimistic machinery, and a
// randomised cross-check against std::map.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "src/base/rng.h"
#include "src/btree/btree.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest()
      : cluster_(1),
        client_(&cluster_.net(), cluster_.FileServerPorts()),
        btree_(&client_) {}

  std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%06d", i);
    return buf;
  }

  FullCluster cluster_;
  FileClient client_;
  BTreeClient btree_;
};

TEST_F(BTreeTest, EmptyTree) {
  auto tree = btree_.Create();
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(*btree_.Size(*tree), 0u);
  auto missing = btree_.Get(*tree, "nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
  EXPECT_EQ(*btree_.Validate(*tree), 1);  // a single empty leaf
}

TEST_F(BTreeTest, PutGetRoundTrip) {
  auto tree = btree_.Create();
  ASSERT_TRUE(btree_.Put(*tree, "alpha", "1").ok());
  ASSERT_TRUE(btree_.Put(*tree, "beta", "2").ok());
  EXPECT_EQ(**btree_.Get(*tree, "alpha"), "1");
  EXPECT_EQ(**btree_.Get(*tree, "beta"), "2");
  EXPECT_FALSE(btree_.Get(*tree, "gamma")->has_value());
}

TEST_F(BTreeTest, OverwriteReplacesValue) {
  auto tree = btree_.Create();
  ASSERT_TRUE(btree_.Put(*tree, "key", "old").ok());
  ASSERT_TRUE(btree_.Put(*tree, "key", "new").ok());
  EXPECT_EQ(**btree_.Get(*tree, "key"), "new");
  EXPECT_EQ(*btree_.Size(*tree), 1u);
}

TEST_F(BTreeTest, SplitsGrowTheTree) {
  auto tree = btree_.Create();
  const int n = 200;  // forces multiple levels at 16 entries/leaf
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(btree_.Put(*tree, Key(i), "v" + std::to_string(i)).ok()) << i;
  }
  auto depth = btree_.Validate(*tree);
  ASSERT_TRUE(depth.ok()) << depth.status();
  EXPECT_GE(*depth, 2);
  EXPECT_EQ(*btree_.Size(*tree), static_cast<size_t>(n));
  for (int i = 0; i < n; i += 17) {
    EXPECT_EQ(**btree_.Get(*tree, Key(i)), "v" + std::to_string(i)) << i;
  }
}

TEST_F(BTreeTest, ReverseAndShuffledInsertionOrders) {
  for (int order = 0; order < 2; ++order) {
    auto tree = btree_.Create();
    std::vector<int> ids;
    for (int i = 0; i < 120; ++i) {
      ids.push_back(i);
    }
    if (order == 0) {
      std::reverse(ids.begin(), ids.end());
    } else {
      Rng rng(7);
      for (size_t i = ids.size(); i > 1; --i) {
        std::swap(ids[i - 1], ids[rng.NextBelow(i)]);
      }
    }
    for (int id : ids) {
      ASSERT_TRUE(btree_.Put(*tree, Key(id), std::to_string(id)).ok());
    }
    ASSERT_TRUE(btree_.Validate(*tree).ok());
    auto all = btree_.Scan(*tree, Key(0), Key(999));
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), 120u);
    for (int i = 0; i < 120; ++i) {
      EXPECT_EQ((*all)[i].first, Key(i));  // in order
    }
  }
}

TEST_F(BTreeTest, RangeScan) {
  auto tree = btree_.Create();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(btree_.Put(*tree, Key(i), std::to_string(i)).ok());
  }
  auto range = btree_.Scan(*tree, Key(20), Key(29));
  ASSERT_TRUE(range.ok());
  ASSERT_EQ(range->size(), 10u);
  EXPECT_EQ(range->front().first, Key(20));
  EXPECT_EQ(range->back().first, Key(29));
}

TEST_F(BTreeTest, DeleteRemovesKeys) {
  auto tree = btree_.Create();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(btree_.Put(*tree, Key(i), "x").ok());
  }
  for (int i = 0; i < 60; i += 2) {
    ASSERT_TRUE(btree_.Delete(*tree, Key(i)).ok());
  }
  EXPECT_EQ(btree_.Delete(*tree, Key(0)).code(), ErrorCode::kNotFound);
  EXPECT_EQ(*btree_.Size(*tree), 30u);
  EXPECT_FALSE(btree_.Get(*tree, Key(10))->has_value());
  EXPECT_TRUE(btree_.Get(*tree, Key(11))->has_value());
  ASSERT_TRUE(btree_.Validate(*tree).ok());
}

TEST_F(BTreeTest, VersionedSnapshotsOfTheWholeIndex) {
  // The version mechanism gives the B-tree MVCC snapshots for free.
  auto tree = btree_.Create();
  ASSERT_TRUE(btree_.Put(*tree, "k", "before").ok());
  auto snapshot = client_.GetCurrentVersion(*tree);
  ASSERT_TRUE(snapshot.ok());
  ASSERT_TRUE(btree_.Put(*tree, "k", "after").ok());
  EXPECT_EQ(**btree_.Get(*tree, "k"), "after");
  // The old snapshot still reads the old value through the committed version.
  auto page = client_.ReadPage(*snapshot, PagePath::Root(), true);
  ASSERT_TRUE(page.ok());  // (decoding via the btree would need a version-based Get; the
                           // snapshot's immutability is the point being verified)
}

TEST_F(BTreeTest, ConcurrentWritersNeverLoseKeys) {
  auto tree = btree_.Create();
  constexpr int kThreads = 3;
  constexpr int kKeysPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      FileClient local(&cluster_.net(), cluster_.FileServerPorts());
      BTreeClient local_tree(&local);
      for (int i = 0; i < kKeysPerThread; ++i) {
        std::string key = "t" + std::to_string(t) + "-" + Key(i);
        if (!local_tree.Put(*tree, key, std::to_string(t * 1000 + i)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(*btree_.Size(*tree), static_cast<size_t>(kThreads * kKeysPerThread));
  ASSERT_TRUE(btree_.Validate(*tree).ok());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysPerThread; ++i) {
      std::string key = "t" + std::to_string(t) + "-" + Key(i);
      auto value = btree_.Get(*tree, key);
      ASSERT_TRUE(value.ok());
      ASSERT_TRUE(value->has_value()) << key;
      EXPECT_EQ(**value, std::to_string(t * 1000 + i));
    }
  }
}

TEST_F(BTreeTest, RandomOpsMatchStdMap) {
  auto tree = btree_.Create();
  std::map<std::string, std::string> model;
  Rng rng(90125);
  for (int step = 0; step < 250; ++step) {
    int action = static_cast<int>(rng.NextBelow(10));
    std::string key = Key(static_cast<int>(rng.NextBelow(80)));
    if (action < 6) {
      std::string value = "s" + std::to_string(step);
      ASSERT_TRUE(btree_.Put(*tree, key, value).ok());
      model[key] = value;
    } else if (action < 8) {
      Status st = btree_.Delete(*tree, key);
      if (model.erase(key) > 0) {
        EXPECT_TRUE(st.ok());
      } else {
        EXPECT_EQ(st.code(), ErrorCode::kNotFound);
      }
    } else {
      auto value = btree_.Get(*tree, key);
      ASSERT_TRUE(value.ok());
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(value->has_value()) << key;
      } else {
        ASSERT_TRUE(value->has_value()) << key;
        EXPECT_EQ(**value, it->second);
      }
    }
  }
  ASSERT_TRUE(btree_.Validate(*tree).ok());
  auto all = btree_.Scan(*tree, Key(0), Key(99999));
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), model.size());
  auto expected = model.begin();
  for (const auto& [key, value] : *all) {
    EXPECT_EQ(key, expected->first);
    EXPECT_EQ(value, expected->second);
    ++expected;
  }
}

}  // namespace
}  // namespace afs
