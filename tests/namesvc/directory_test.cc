// Directory service tests: the Figure 1 hierarchy — a name service implemented as a
// *client* of the file service, inheriting its atomicity and crash properties.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/namesvc/directory_server.h"
#include "src/rpc/client.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest() : cluster_(2) {
    dir_ = std::make_unique<DirectoryServer>(&cluster_.net(), "dir",
                                             cluster_.FileServerPorts());
    dir_->Start();
    Status st = dir_->Init();
    EXPECT_TRUE(st.ok()) << st;
  }

  Capability SomeCap(uint64_t n) { return Capability{n, n * 2, 3, n * 7}; }

  FullCluster cluster_;
  std::unique_ptr<DirectoryServer> dir_;
};

TEST_F(DirectoryTest, EnterLookupRoundTrip) {
  ASSERT_TRUE(dir_->Enter("readme.txt", SomeCap(1)).ok());
  auto cap = dir_->Lookup("readme.txt");
  ASSERT_TRUE(cap.ok());
  EXPECT_EQ(*cap, SomeCap(1));
}

TEST_F(DirectoryTest, LookupMissingFails) {
  EXPECT_EQ(dir_->Lookup("ghost").status().code(), ErrorCode::kNotFound);
}

TEST_F(DirectoryTest, DuplicateEnterRejected) {
  ASSERT_TRUE(dir_->Enter("name", SomeCap(1)).ok());
  EXPECT_EQ(dir_->Enter("name", SomeCap(2)).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(*dir_->Lookup("name"), SomeCap(1));
}

TEST_F(DirectoryTest, RemoveDeletesEntry) {
  ASSERT_TRUE(dir_->Enter("tmp", SomeCap(3)).ok());
  ASSERT_TRUE(dir_->Remove("tmp").ok());
  EXPECT_EQ(dir_->Lookup("tmp").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(dir_->Remove("tmp").code(), ErrorCode::kNotFound);
}

TEST_F(DirectoryTest, ListSortedNames) {
  ASSERT_TRUE(dir_->Enter("b", SomeCap(2)).ok());
  ASSERT_TRUE(dir_->Enter("a", SomeCap(1)).ok());
  ASSERT_TRUE(dir_->Enter("c", SomeCap(3)).ok());
  auto names = dir_->List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(DirectoryTest, RenameIsAtomic) {
  ASSERT_TRUE(dir_->Enter("old", SomeCap(9)).ok());
  ASSERT_TRUE(dir_->Rename("old", "new").ok());
  EXPECT_EQ(dir_->Lookup("old").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(*dir_->Lookup("new"), SomeCap(9));
  EXPECT_EQ(dir_->Rename("old", "newer").code(), ErrorCode::kNotFound);
}

TEST_F(DirectoryTest, RenameOntoExistingRejected) {
  ASSERT_TRUE(dir_->Enter("a", SomeCap(1)).ok());
  ASSERT_TRUE(dir_->Enter("b", SomeCap(2)).ok());
  EXPECT_EQ(dir_->Rename("a", "b").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(*dir_->Lookup("a"), SomeCap(1));
  EXPECT_EQ(*dir_->Lookup("b"), SomeCap(2));
}

TEST_F(DirectoryTest, ConcurrentEntersAllSurvive) {
  // Directory updates are AFS transactions: OCC serialises them without any locks in the
  // directory layer itself.
  constexpr int kThreads = 4;
  constexpr int kEntries = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEntries; ++i) {
        std::string name = "t" + std::to_string(t) + "-e" + std::to_string(i);
        if (!dir_->Enter(name, SomeCap(t * 100 + i)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  auto names = dir_->List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), static_cast<size_t>(kThreads * kEntries));
}

TEST_F(DirectoryTest, SecondDirectoryServerAdoptsSameDirectory) {
  ASSERT_TRUE(dir_->Enter("shared", SomeCap(5)).ok());
  DirectoryServer second(&cluster_.net(), "dir2", cluster_.FileServerPorts());
  second.Start();
  ASSERT_TRUE(second.Adopt(dir_->directory_file()).ok());
  EXPECT_EQ(*second.Lookup("shared"), SomeCap(5));
  ASSERT_TRUE(second.Enter("from-second", SomeCap(6)).ok());
  EXPECT_EQ(*dir_->Lookup("from-second"), SomeCap(6));
}

TEST_F(DirectoryTest, RpcSurfaceWorks) {
  WireEncoder enter;
  enter.PutString("rpc-name");
  enter.PutCapability(SomeCap(11));
  ASSERT_TRUE(CallAndCheck(&cluster_.net(), dir_->port(),
                           static_cast<uint32_t>(DirOp::kEnter), std::move(enter))
                  .ok());
  WireEncoder lookup;
  lookup.PutString("rpc-name");
  auto reply = CallAndCheck(&cluster_.net(), dir_->port(),
                            static_cast<uint32_t>(DirOp::kLookup), std::move(lookup));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply->GetCapability(), SomeCap(11));
}

TEST_F(DirectoryTest, FileServiceCrashMidEnterToleratedViaRedo) {
  // The directory layer inherits crash resilience from the file service: crash one file
  // server; Enter still succeeds via the other.
  cluster_.fs(0).Crash();
  EXPECT_TRUE(dir_->Enter("resilient", SomeCap(12)).ok());
  EXPECT_EQ(*dir_->Lookup("resilient"), SomeCap(12));
}

}  // namespace
}  // namespace afs
