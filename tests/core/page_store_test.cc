// PageStore tests: chained atomic pages over fixed-size blocks (§5.1 footnote).

#include <gtest/gtest.h>

#include "src/block/block_store.h"
#include "src/core/page_store.h"

namespace afs {
namespace {

class PageStoreTest : public ::testing::Test {
 protected:
  PageStoreTest() : blocks_(4068, 1 << 16), store_(&blocks_) {}

  Page MakePage(size_t dsize, uint8_t fill = 0x5a) {
    Page page;
    page.data.assign(dsize, fill);
    return page;
  }

  InMemoryBlockStore blocks_;
  PageStore store_;
};

TEST_F(PageStoreTest, SmallPageSingleBlock) {
  auto head = store_.WritePage(MakePage(100));
  ASSERT_TRUE(head.ok());
  auto chain = store_.ChainBlocks(*head);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->size(), 1u);
  EXPECT_EQ(store_.ReadPage(*head)->data, MakePage(100).data);
}

TEST_F(PageStoreTest, LargePageChainsBlocks) {
  // A 20000-byte page cannot fit one 4068-byte block; the footnote's linked list kicks in.
  auto head = store_.WritePage(MakePage(20000, 0x11));
  ASSERT_TRUE(head.ok());
  auto chain = store_.ChainBlocks(*head);
  ASSERT_TRUE(chain.ok());
  EXPECT_GE(chain->size(), 5u);
  auto back = store_.ReadPage(*head);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->data, MakePage(20000, 0x11).data);
}

TEST_F(PageStoreTest, MaxSizePageRoundTrips) {
  auto head = store_.WritePage(MakePage(kMaxPageBytes - 100, 0x22));
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(store_.ReadPage(*head)->data.size(), kMaxPageBytes - 100);
}

TEST_F(PageStoreTest, OverwriteKeepsHeadBlock) {
  // "the head block is (over)written last" — the page identity (head) is stable.
  auto head = store_.WritePage(MakePage(100, 1));
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(store_.OverwritePage(*head, MakePage(200, 2)).ok());
  EXPECT_EQ(store_.ReadPage(*head)->data, MakePage(200, 2).data);
}

TEST_F(PageStoreTest, OverwriteShrinkGrowFreesOldTails) {
  auto head = store_.WritePage(MakePage(20000, 1));
  ASSERT_TRUE(head.ok());
  size_t after_large = blocks_.allocated_blocks();
  ASSERT_TRUE(store_.OverwritePage(*head, MakePage(10, 2)).ok());
  EXPECT_LT(blocks_.allocated_blocks(), after_large);  // old tail blocks freed
  ASSERT_TRUE(store_.OverwritePage(*head, MakePage(25000, 3)).ok());
  EXPECT_EQ(store_.ReadPage(*head)->data, MakePage(25000, 3).data);
}

TEST_F(PageStoreTest, FreePageReleasesWholeChain) {
  size_t before = blocks_.allocated_blocks();
  auto head = store_.WritePage(MakePage(20000));
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(store_.FreePage(*head).ok());
  EXPECT_EQ(blocks_.allocated_blocks(), before);
}

TEST_F(PageStoreTest, ReadAfterFreeFails) {
  auto head = store_.WritePage(MakePage(10));
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(store_.FreePage(*head).ok());
  EXPECT_FALSE(store_.ReadPage(*head).ok());
}

TEST_F(PageStoreTest, PageWithRefsRoundTrips) {
  Page page;
  page.kind = PageKind::kVersion;
  page.version_cap = Capability{1, 2, 3, 4};
  page.root_flags = RefFlag::kCopied;
  for (uint32_t i = 0; i < 100; ++i) {
    page.refs.push_back({i + 1000, static_cast<uint8_t>(i % 2 ? RefFlag::kCopied : 0)});
  }
  page.data.assign(5000, 0x7e);
  auto head = store_.WritePage(page);
  ASSERT_TRUE(head.ok());
  auto back = store_.ReadPage(*head);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->refs, page.refs);
  EXPECT_EQ(back->data, page.data);
  EXPECT_EQ(back->version_cap, page.version_cap);
}

TEST_F(PageStoreTest, AllocationEpochRecordsBirths) {
  store_.BeginAllocationEpoch();
  auto head = store_.WritePage(MakePage(20000));
  ASSERT_TRUE(head.ok());
  auto born = store_.EndAllocationEpoch();
  auto chain = store_.ChainBlocks(*head);
  ASSERT_TRUE(chain.ok());
  for (BlockNo bno : *chain) {
    EXPECT_TRUE(born.count(bno) > 0) << "block " << bno << " not recorded in epoch";
  }
}

TEST_F(PageStoreTest, EpochClosedDoesNotRecord) {
  store_.BeginAllocationEpoch();
  (void)store_.EndAllocationEpoch();
  auto head = store_.WritePage(MakePage(10));
  ASSERT_TRUE(head.ok());
  EXPECT_TRUE(store_.EndAllocationEpoch().empty());
}

}  // namespace
}  // namespace afs
