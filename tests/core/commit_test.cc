// Optimistic commit tests (paper §5.2, Figures 5 and 6): serial commits always succeed;
// concurrent disjoint updates merge; overlapping read/write updates conflict; the loser is
// removed and the update can be redone.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class CommitTest : public ::testing::Test {
 protected:
  // Build a file with `n` child pages under the root.
  Capability MakeFile(int n) {
    auto file = cluster_.fs().CreateFile();
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < n; ++i) {
      (void)cluster_.fs().InsertRef(*v, PagePath::Root(), i);
      (void)cluster_.fs().WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                                    Bytes("init" + std::to_string(i)));
    }
    (void)cluster_.fs().Commit(*v);
    return *file;
  }

  std::string ReadCurrent(const Capability& file, const PagePath& path) {
    auto current = cluster_.fs().GetCurrentVersion(file);
    auto read = cluster_.fs().ReadPage(*current, path, false);
    if (!read.ok()) {
      return "<error: " + read.status().ToString() + ">";
    }
    return std::string(read->data.begin(), read->data.end());
  }

  FastCluster cluster_;
};

TEST_F(CommitTest, Figure5_CommitOfVersionBasedOnCurrentSucceeds) {
  // "When a client requests to commit a version that is based on the current version,
  // condition (1) obviously holds ... Therefore, Amoeba File Service allows all commits of
  // versions based on the current version."
  Capability file = MakeFile(2);
  auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("updated")).ok());
  uint64_t tests_before = cluster_.fs().serialise_tests_run();
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  // No serialisability test was needed (fast path).
  EXPECT_EQ(cluster_.fs().serialise_tests_run(), tests_before);
  EXPECT_EQ(ReadCurrent(file, PagePath({0})), "updated");
}

TEST_F(CommitTest, Figure6_ConcurrentDisjointUpdatesBothCommit) {
  // The airline example (§6): updates to different pages of the same file do not conflict.
  Capability file = MakeFile(4);
  auto vb = cluster_.fs().CreateVersion(file, kNullPort, false);
  auto vc = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*vc, PagePath({2}), Bytes("SF-LA")).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*vb, PagePath({1}), Bytes("AMS-LON")).ok());
  // V.c commits first and becomes current; V.b's base is then superseded.
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  uint64_t tests_before = cluster_.fs().serialise_tests_run();
  ASSERT_TRUE(cluster_.fs().Commit(*vb).ok());
  EXPECT_GT(cluster_.fs().serialise_tests_run(), tests_before);  // condition (2) was tested
  // The merged current version carries BOTH updates.
  EXPECT_EQ(ReadCurrent(file, PagePath({1})), "AMS-LON");
  EXPECT_EQ(ReadCurrent(file, PagePath({2})), "SF-LA");
  EXPECT_EQ(ReadCurrent(file, PagePath({0})), "init0");
}

TEST_F(CommitTest, ReadWriteOverlapConflicts) {
  // V.b read page 1; V.c wrote page 1 and committed first: condition (2) fails.
  Capability file = MakeFile(3);
  auto vb = cluster_.fs().CreateVersion(file, kNullPort, false);
  auto vc = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().ReadPage(*vb, PagePath({1}), false).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*vb, PagePath({0}), Bytes("derived")).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*vc, PagePath({1}), Bytes("changed")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  auto result = cluster_.fs().Commit(*vb);
  EXPECT_EQ(result.status().code(), ErrorCode::kConflict);
  // "V.b is removed": further operations on it fail.
  EXPECT_EQ(cluster_.fs().WritePage(*vb, PagePath({0}), Bytes("x")).code(),
            ErrorCode::kReadOnly);
  // The current version holds V.c's update only.
  EXPECT_EQ(ReadCurrent(file, PagePath({1})), "changed");
  EXPECT_EQ(ReadCurrent(file, PagePath({0})), "init0");
}

TEST_F(CommitTest, BlindWriteWriteOverlapMerges) {
  // Write/write without reads is serialisable: the later committer's data wins.
  Capability file = MakeFile(2);
  auto vb = cluster_.fs().CreateVersion(file, kNullPort, false);
  auto vc = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*vc, PagePath({0}), Bytes("first")).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*vb, PagePath({0}), Bytes("second")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vb).ok());
  EXPECT_EQ(ReadCurrent(file, PagePath({0})), "second");  // serial order: vc then vb
}

TEST_F(CommitTest, ChainOfConcurrentCommitsRepeatsTest) {
  // "the serialisability test is repeated for V.c's successor. This repeats until either
  // the set commit reference command succeeds or serialise returns FALSE."
  Capability file = MakeFile(6);
  auto vb = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*vb, PagePath({5}), Bytes("slow update")).ok());
  // Three other updates commit while vb is in progress.
  for (int i = 0; i < 3; ++i) {
    auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
    ASSERT_TRUE(cluster_.fs()
                    .WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                               Bytes("fast" + std::to_string(i)))
                    .ok());
    ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  }
  ASSERT_TRUE(cluster_.fs().Commit(*vb).ok());
  // All four updates are visible in the final current version.
  EXPECT_EQ(ReadCurrent(file, PagePath({5})), "slow update");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ReadCurrent(file, PagePath({static_cast<uint32_t>(i)})),
              "fast" + std::to_string(i));
  }
}

TEST_F(CommitTest, StructureVsStructureConflicts) {
  // Both updates restructure the same page's reference table: not mergeable.
  Capability file = MakeFile(3);
  auto vb = cluster_.fs().CreateVersion(file, kNullPort, false);
  auto vc = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().RemoveRef(*vc, PagePath::Root(), 0).ok());
  ASSERT_TRUE(cluster_.fs().InsertRef(*vb, PagePath::Root(), 1).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  EXPECT_EQ(cluster_.fs().Commit(*vb).status().code(), ErrorCode::kConflict);
}

TEST_F(CommitTest, StructureChangeVsDataWriteMerges) {
  // V.c rewrote the root's data; V.b restructured the root's references. Data and
  // structure are independent: both survive.
  Capability file = MakeFile(3);
  auto vb = cluster_.fs().CreateVersion(file, kNullPort, false);
  auto vc = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*vc, PagePath::Root(), Bytes("root data")).ok());
  ASSERT_TRUE(cluster_.fs().InsertRef(*vb, PagePath::Root(), 3).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*vb, PagePath({3}), Bytes("new child")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vb).ok());
  EXPECT_EQ(ReadCurrent(file, PagePath::Root()), "root data");
  EXPECT_EQ(ReadCurrent(file, PagePath({3})), "new child");
}

TEST_F(CommitTest, DeepDisjointSubtreesMerge) {
  // Concurrent updates to different subtrees of a deep tree.
  auto file = cluster_.fs().CreateFile();
  {
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    for (uint32_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath::Root(), i).ok());
      ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({i}), Bytes("mid")).ok());
      for (uint32_t j = 0; j < 2; ++j) {
        ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath({i}), j).ok());
        ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({i, j}), Bytes("leaf")).ok());
      }
    }
    ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  }
  auto vb = cluster_.fs().CreateVersion(*file, kNullPort, false);
  auto vc = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*vc, PagePath({0, 1}), Bytes("c-leaf")).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*vb, PagePath({1, 0}), Bytes("b-leaf")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vb).ok());
  auto current = cluster_.fs().GetCurrentVersion(*file);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0, 1}), false)->data, Bytes("c-leaf"));
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({1, 0}), false)->data, Bytes("b-leaf"));
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0, 0}), false)->data, Bytes("leaf"));
}

TEST_F(CommitTest, SameSubtreeDeepConflict) {
  auto file = cluster_.fs().CreateFile();
  {
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath::Root(), 0).ok());
    ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("mid")).ok());
    ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath({0}), 0).ok());
    ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0, 0}), Bytes("leaf")).ok());
    ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  }
  auto vb = cluster_.fs().CreateVersion(*file, kNullPort, false);
  auto vc = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().ReadPage(*vb, PagePath({0, 0}), false).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*vb, PagePath::Root(), Bytes("b")).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*vc, PagePath({0, 0}), Bytes("c")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  EXPECT_EQ(cluster_.fs().Commit(*vb).status().code(), ErrorCode::kConflict);
}

TEST_F(CommitTest, ManyThreadsDisjointPagesAllCommitEventually) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 10;
  Capability file = MakeFile(kThreads);
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int attempt = 0; attempt < 100; ++attempt) {
          auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
          if (!v.ok()) {
            continue;
          }
          std::string value = "t" + std::to_string(t) + "r" + std::to_string(round);
          if (!cluster_.fs()
                   .WritePage(*v, PagePath({static_cast<uint32_t>(t)}), Bytes(value))
                   .ok()) {
            (void)cluster_.fs().Abort(*v);
            continue;
          }
          auto result = cluster_.fs().Commit(*v);
          if (result.ok()) {
            ++committed;
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(committed.load(), kThreads * kRounds);
  // Every thread's final value must be present: no lost updates.
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ReadCurrent(file, PagePath({static_cast<uint32_t>(t)})),
              "t" + std::to_string(t) + "r" + std::to_string(kRounds - 1));
  }
}

TEST_F(CommitTest, LostUpdateAnomalyPrevented) {
  // Classic counter race: both read, both increment, both try to commit. One must lose.
  Capability file = MakeFile(1);
  auto v1 = cluster_.fs().CreateVersion(file, kNullPort, false);
  auto v2 = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().ReadPage(*v1, PagePath({0}), false).ok());
  ASSERT_TRUE(cluster_.fs().ReadPage(*v2, PagePath({0}), false).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v1, PagePath({0}), Bytes("count=1a")).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v2, PagePath({0}), Bytes("count=1b")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v1).ok());
  EXPECT_EQ(cluster_.fs().Commit(*v2).status().code(), ErrorCode::kConflict);
}

TEST_F(CommitTest, MergedVersionConflictsWithLaterReaders) {
  // After a merge, V.c's writes must remain visible to later serialisability tests
  // (the W-flag union in the merged tree).
  Capability file = MakeFile(3);
  // vd reads page 0 under the ORIGINAL base.
  auto vd = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().ReadPage(*vd, PagePath({0}), false).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*vd, PagePath({2}), Bytes("d")).ok());
  // vc writes page 0 and commits.
  auto vc = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*vc, PagePath({0}), Bytes("c")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  // vb writes page 1 (disjoint) and merges past vc: merged tree carries vc's W on page 0.
  auto vb = cluster_.fs().CreateVersion(file, kNullPort, false);
  // NOTE: vb was created after vc committed, so its base is vc's merged... create order
  // matters: recreate vb against the post-vc current; the point is vd's test runs against
  // the chain containing vc's write either way.
  ASSERT_TRUE(cluster_.fs().WritePage(*vb, PagePath({1}), Bytes("b")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vb).ok());
  // vd read page 0, which vc (now in vd's successor chain) wrote: must conflict.
  EXPECT_EQ(cluster_.fs().Commit(*vd).status().code(), ErrorCode::kConflict);
}

}  // namespace
}  // namespace afs
