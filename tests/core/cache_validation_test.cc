// Cache validation tests (paper §5.4, claim C4): the serialisability test between a cache
// entry and the current version returns exactly the invalid paths; a null operation for
// unshared files; no unsolicited messages anywhere.

#include <gtest/gtest.h>

#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class CacheValidationTest : public ::testing::Test {
 protected:
  Capability MakeFile(int n) {
    auto file = cluster_.fs().CreateFile();
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < n; ++i) {
      (void)cluster_.fs().InsertRef(*v, PagePath::Root(), i);
      (void)cluster_.fs().WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                                    Bytes("page" + std::to_string(i)));
    }
    (void)cluster_.fs().Commit(*v);
    return *file;
  }

  BlockNo CurrentHead(const Capability& file) {
    return static_cast<BlockNo>(cluster_.fs().GetCurrentVersion(file)->object);
  }

  void CommitWrite(const Capability& file, const PagePath& path, std::string_view value) {
    auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
    ASSERT_TRUE(cluster_.fs().WritePage(*v, path, Bytes(value)).ok());
    ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  }

  FastCluster cluster_;
};

TEST_F(CacheValidationTest, NullOperationForUnsharedFile) {
  // "the cache entry will always be the most recent version of a file, so the
  // serialisability test is a null operation, and all pages in the cache will always be
  // valid."
  Capability file = MakeFile(3);
  BlockNo cached = CurrentHead(file);
  auto check = cluster_.fs().ValidateCache(file, cached, {PagePath({0}), PagePath({1})});
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->invalid.empty());
  EXPECT_EQ(static_cast<BlockNo>(check->current_version.object), cached);
}

TEST_F(CacheValidationTest, OnlyWrittenPathsInvalidated) {
  Capability file = MakeFile(4);
  BlockNo cached = CurrentHead(file);
  CommitWrite(file, PagePath({2}), "modified");
  std::vector<PagePath> paths = {PagePath({0}), PagePath({1}), PagePath({2}), PagePath({3})};
  auto check = cluster_.fs().ValidateCache(file, cached, paths);
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->invalid.size(), 1u);
  EXPECT_EQ(check->invalid[0], PagePath({2}));
}

TEST_F(CacheValidationTest, MultipleInterveningVersionsUnioned) {
  // Invalidation is against the union of the write sets of every version since the cached
  // one.
  Capability file = MakeFile(4);
  BlockNo cached = CurrentHead(file);
  CommitWrite(file, PagePath({0}), "a");
  CommitWrite(file, PagePath({3}), "b");
  auto check = cluster_.fs().ValidateCache(
      file, cached, {PagePath({0}), PagePath({1}), PagePath({2}), PagePath({3})});
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->invalid.size(), 2u);
}

TEST_F(CacheValidationTest, RootWriteInvalidatesRootOnly) {
  Capability file = MakeFile(2);
  BlockNo cached = CurrentHead(file);
  CommitWrite(file, PagePath::Root(), "root data");
  auto check = cluster_.fs().ValidateCache(file, cached,
                                           {PagePath::Root(), PagePath({0}), PagePath({1})});
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->invalid.size(), 1u);
  EXPECT_EQ(check->invalid[0], PagePath::Root());
}

TEST_F(CacheValidationTest, StructuralChangeInvalidatesDescendants) {
  // An ancestor whose references were modified may have moved the page: conservative
  // invalidation.
  Capability file = MakeFile(3);
  BlockNo cached = CurrentHead(file);
  auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().RemoveRef(*v, PagePath::Root(), 0).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  auto check =
      cluster_.fs().ValidateCache(file, cached, {PagePath({0}), PagePath({1}), PagePath({2})});
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->invalid.size(), 3u);  // all paths under the modified root
}

TEST_F(CacheValidationTest, DeepPathsValidatedPrecisely) {
  auto file = cluster_.fs().CreateFile();
  {
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    for (uint32_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath::Root(), i).ok());
      ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({i}), Bytes("mid")).ok());
      ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath({i}), 0).ok());
      ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({i, 0}), Bytes("leaf")).ok());
    }
    ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  }
  BlockNo cached = CurrentHead(*file);
  CommitWrite(*file, PagePath({0, 0}), "deep write");
  auto check = cluster_.fs().ValidateCache(
      *file, cached, {PagePath({0, 0}), PagePath({1, 0}), PagePath({0}), PagePath({1})});
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->invalid.size(), 1u);
  EXPECT_EQ(check->invalid[0], PagePath({0, 0}));
}

TEST_F(CacheValidationTest, UnknownCachedVersionDiscardsEverything) {
  Capability file = MakeFile(2);
  std::vector<PagePath> paths = {PagePath({0}), PagePath({1})};
  auto check = cluster_.fs().ValidateCache(file, /*cached_head=*/0x0ffffff, paths);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->invalid.size(), paths.size());
}

TEST_F(CacheValidationTest, WrongFilesVersionDiscardsEverything) {
  Capability file_a = MakeFile(1);
  Capability file_b = MakeFile(1);
  BlockNo cached_b = CurrentHead(file_b);
  auto check = cluster_.fs().ValidateCache(file_a, cached_b, {PagePath({0})});
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->invalid.size(), 1u);
}

}  // namespace
}  // namespace afs
