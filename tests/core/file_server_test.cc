// FileServer basics: file lifecycle, version creation (the paper's "behaves as if it were
// a copy"), page reads/writes through the COW machinery, structural operations, holes,
// and read-only access to committed snapshots.

#include <gtest/gtest.h>

#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class FileServerTest : public ::testing::Test {
 protected:
  FastCluster cluster_;
};

TEST_F(FileServerTest, CreateFileHasOneCommittedEmptyVersion) {
  auto file = cluster_.fs().CreateFile();
  ASSERT_TRUE(file.ok());
  auto stat = cluster_.fs().FileStat(*file);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->committed_versions, 1u);
  EXPECT_FALSE(stat->is_super);
  auto current = cluster_.fs().GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  auto read = cluster_.fs().ReadPage(*current, PagePath::Root(), false);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->data.empty());
  EXPECT_EQ(read->nrefs, 0u);
}

TEST_F(FileServerTest, WriteCommitRead) {
  auto file = cluster_.fs().CreateFile();
  ASSERT_TRUE(file.ok());
  auto version = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(version.ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*version, PagePath::Root(), Bytes("hello")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*version).ok());

  auto current = cluster_.fs().GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  auto read = cluster_.fs().ReadPage(*current, PagePath::Root(), false);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->data, Bytes("hello"));
}

TEST_F(FileServerTest, UncommittedVersionInvisibleToReaders) {
  auto file = cluster_.fs().CreateFile();
  auto version = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(version.ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*version, PagePath::Root(), Bytes("draft")).ok());
  // The current version still shows the old (empty) state.
  auto current = cluster_.fs().GetCurrentVersion(*file);
  auto read = cluster_.fs().ReadPage(*current, PagePath::Root(), false);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->data.empty());
}

TEST_F(FileServerTest, VersionBehavesAsCopyOfCurrent) {
  // Build v1 with content, then check a new version reads it back before any write.
  auto file = cluster_.fs().CreateFile();
  auto v1 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*v1, PagePath::Root(), Bytes("base")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v1).ok());

  auto v2 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(v2.ok());
  auto read = cluster_.fs().ReadPage(*v2, PagePath::Root(), false);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->data, Bytes("base"));
}

TEST_F(FileServerTest, AbortDiscardsChangesAndFreesPages) {
  auto file = cluster_.fs().CreateFile();
  size_t blocks_before = cluster_.store().allocated_blocks();
  auto version = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(version.ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*version, PagePath::Root(), Bytes("gone")).ok());
  ASSERT_TRUE(cluster_.fs().Abort(*version).ok());
  EXPECT_EQ(cluster_.store().allocated_blocks(), blocks_before);
  auto current = cluster_.fs().GetCurrentVersion(*file);
  EXPECT_TRUE(cluster_.fs().ReadPage(*current, PagePath::Root(), false)->data.empty());
}

TEST_F(FileServerTest, TreeConstructionWithInsertAndHoles) {
  auto file = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(v.ok());
  // Insert two holes under the root, write through them (materialising pages).
  ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath::Root(), 0).ok());
  ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath::Root(), 1).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("left")).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({1}), Bytes("right")).ok());
  // A hole that was never written reads as NotFound.
  ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath::Root(), 2).ok());
  EXPECT_EQ(cluster_.fs().ReadPage(*v, PagePath({2}), false).status().code(),
            ErrorCode::kNotFound);
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());

  auto current = cluster_.fs().GetCurrentVersion(*file);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0}), false)->data, Bytes("left"));
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({1}), false)->data, Bytes("right"));
}

TEST_F(FileServerTest, DeepTreePaths) {
  auto file = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
  // Build a depth-4 path /0/0/0/0 by inserting a hole at each level then writing.
  PagePath path = PagePath::Root();
  for (int depth = 0; depth < 4; ++depth) {
    ASSERT_TRUE(cluster_.fs().InsertRef(*v, path, 0).ok());
    path = path.Child(0);
    ASSERT_TRUE(cluster_.fs()
                    .WritePage(*v, path, Bytes("level" + std::to_string(depth)))
                    .ok());
  }
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  auto current = cluster_.fs().GetCurrentVersion(*file);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0, 0, 0, 0}), false)->data,
            Bytes("level3"));
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0, 0}), false)->data, Bytes("level1"));
}

TEST_F(FileServerTest, RemoveRefDetachesSubtree) {
  auto file = cluster_.fs().CreateFile();
  auto v1 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().InsertRef(*v1, PagePath::Root(), 0).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v1, PagePath({0}), Bytes("child")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v1).ok());

  auto v2 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().RemoveRef(*v2, PagePath::Root(), 0).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v2).ok());

  auto current = cluster_.fs().GetCurrentVersion(*file);
  auto read = cluster_.fs().ReadPage(*current, PagePath({0}), false);
  EXPECT_FALSE(read.ok());
  // The old version still has it (differential history).
  EXPECT_EQ(cluster_.fs().ReadPage(*v1, PagePath({0}), false)->data, Bytes("child"));
}

TEST_F(FileServerTest, MoveSubtreeRelocatesPages) {
  auto file = cluster_.fs().CreateFile();
  auto v1 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().InsertRef(*v1, PagePath::Root(), 0).ok());
  ASSERT_TRUE(cluster_.fs().InsertRef(*v1, PagePath::Root(), 1).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v1, PagePath({0}), Bytes("movable")).ok());
  ASSERT_TRUE(cluster_.fs().InsertRef(*v1, PagePath({0}), 0).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v1, PagePath({0, 0}), Bytes("nested")).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v1, PagePath({1}), Bytes("target-parent")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v1).ok());

  auto v2 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().MoveSubtree(*v2, PagePath({0}), PagePath({1}), 0).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v2).ok());

  auto current = cluster_.fs().GetCurrentVersion(*file);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0, 0}), false)->data, Bytes("movable"));
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0, 0, 0}), false)->data,
            Bytes("nested"));
}

TEST_F(FileServerTest, MoveIntoOwnSubtreeRejected) {
  auto file = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().InsertRef(*v, PagePath::Root(), 0).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("x")).ok());
  EXPECT_EQ(cluster_.fs().MoveSubtree(*v, PagePath({0}), PagePath({0}), 0).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(FileServerTest, WriteToCommittedVersionRejected) {
  auto file = cluster_.fs().CreateFile();
  auto current = cluster_.fs().GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(cluster_.fs().WritePage(*current, PagePath::Root(), Bytes("nope")).code(),
            ErrorCode::kReadOnly);
}

TEST_F(FileServerTest, CommitTwiceRejected) {
  auto file = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  EXPECT_EQ(cluster_.fs().Commit(*v).status().code(), ErrorCode::kAborted);
}

TEST_F(FileServerTest, ForgedCapsRejected) {
  auto file = cluster_.fs().CreateFile();
  Capability forged = *file;
  forged.check ^= 0x40;
  EXPECT_EQ(cluster_.fs().GetCurrentVersion(forged).status().code(),
            ErrorCode::kBadCapability);
  EXPECT_EQ(cluster_.fs().CreateVersion(forged, kNullPort, false).status().code(),
            ErrorCode::kBadCapability);
}

TEST_F(FileServerTest, DeleteFileRemovesIt) {
  auto file = cluster_.fs().CreateFile();
  ASSERT_TRUE(cluster_.fs().DeleteFile(*file).ok());
  EXPECT_EQ(cluster_.fs().GetCurrentVersion(*file).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(cluster_.fs().DeleteFile(*file).code(), ErrorCode::kNotFound);
}

TEST_F(FileServerTest, VersionChainGrowsWithCommits) {
  auto file = cluster_.fs().CreateFile();
  for (int i = 0; i < 5; ++i) {
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(
        cluster_.fs().WritePage(*v, PagePath::Root(), Bytes("v" + std::to_string(i))).ok());
    ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  }
  auto stat = cluster_.fs().FileStat(*file);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->committed_versions, 6u);  // initial + 5
}

TEST_F(FileServerTest, HistoricalVersionsRemainReadable) {
  // Figure 4: committed versions represent past states of the file.
  auto file = cluster_.fs().CreateFile();
  std::vector<Capability> history;
  for (int i = 0; i < 3; ++i) {
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(
        cluster_.fs().WritePage(*v, PagePath::Root(), Bytes("gen" + std::to_string(i))).ok());
    ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
    history.push_back(*v);
  }
  for (int i = 0; i < 3; ++i) {
    auto read = cluster_.fs().ReadPage(history[i], PagePath::Root(), false);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->data, Bytes("gen" + std::to_string(i)));
  }
}

TEST_F(FileServerTest, LargePagesViaChaining) {
  auto file = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
  std::vector<uint8_t> big(30000, 0xd1);
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath::Root(), big).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  auto current = cluster_.fs().GetCurrentVersion(*file);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath::Root(), false)->data, big);
}

TEST_F(FileServerTest, PageSizeLimitEnforced) {
  auto file = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
  std::vector<uint8_t> too_big(kMaxPageBytes + 1, 0);
  EXPECT_EQ(cluster_.fs().WritePage(*v, PagePath::Root(), too_big).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(FileServerTest, SharedUnwrittenPagesAreNotCopied) {
  // Differential files: a version copies only what it touches.
  auto file = cluster_.fs().CreateFile();
  auto v1 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster_.fs().InsertRef(*v1, PagePath::Root(), i).ok());
    ASSERT_TRUE(cluster_.fs()
                    .WritePage(*v1, PagePath({static_cast<uint32_t>(i)}),
                               std::vector<uint8_t>(3000, static_cast<uint8_t>(i)))
                    .ok());
  }
  ASSERT_TRUE(cluster_.fs().Commit(*v1).ok());

  size_t before = cluster_.store().allocated_blocks();
  auto v2 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*v2, PagePath({0}), Bytes("touched")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v2).ok());
  size_t after = cluster_.store().allocated_blocks();
  // Touching one of eight pages must cost far less than re-materialising the file: the new
  // version page + one copied page, not eight.
  EXPECT_LE(after - before, 4u);
}

}  // namespace
}  // namespace afs
