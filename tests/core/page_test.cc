// Page layout tests (paper Figure 3): field-for-field serialization round-trips for plain
// and version pages, the 32K limit, and corruption rejection. Reproduces experiment F3.

#include <gtest/gtest.h>

#include "src/base/wire.h"
#include "src/core/page.h"
#include "src/core/path.h"

namespace afs {
namespace {

Page MakeVersionPage() {
  Page page;
  page.kind = PageKind::kVersion;
  page.file_cap = Capability{1, 2, 3, 4};
  page.version_cap = Capability{5, 6, 7, 8};
  page.commit_ref = 1234;
  page.top_lock = 111;
  page.inner_lock = 222;
  page.parent_ref = 5678;
  page.root_flags = RefFlag::kCopied | RefFlag::kWritten;
  page.base_ref = 91011;
  page.refs.push_back({42, static_cast<uint8_t>(RefFlag::kCopied | RefFlag::kRead)});
  page.refs.push_back({kNilRef, 0});
  page.data = {'h', 'i'};
  return page;
}

TEST(PageTest, VersionPageRoundTripsEveryField) {
  Page page = MakeVersionPage();
  auto bytes = page.Serialize();
  ASSERT_TRUE(bytes.ok());
  auto back = Page::Deserialize(*bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, PageKind::kVersion);
  EXPECT_EQ(back->file_cap, page.file_cap);
  EXPECT_EQ(back->version_cap, page.version_cap);
  EXPECT_EQ(back->commit_ref, page.commit_ref);
  EXPECT_EQ(back->top_lock, page.top_lock);
  EXPECT_EQ(back->inner_lock, page.inner_lock);
  EXPECT_EQ(back->parent_ref, page.parent_ref);
  EXPECT_EQ(back->root_flags, page.root_flags);
  EXPECT_EQ(back->base_ref, page.base_ref);
  ASSERT_EQ(back->refs.size(), page.refs.size());
  EXPECT_EQ(back->refs[0], page.refs[0]);
  EXPECT_EQ(back->refs[1], page.refs[1]);
  EXPECT_EQ(back->data, page.data);
}

TEST(PageTest, DeserializesPreShardingVersionPages) {
  // A store written before version pages carried prepare_txn encodes the kind byte as 2
  // and an 81-byte version header. Upgrading must not brick it: the old image decodes
  // field for field, with no in-doubt marker.
  Page page = MakeVersionPage();
  WireEncoder enc;
  enc.PutU8(2);  // pre-sharding wire tag
  enc.PutCapability(page.file_cap);
  enc.PutCapability(page.version_cap);
  enc.PutU32(page.commit_ref);
  enc.PutU64(page.top_lock);
  enc.PutU64(page.inner_lock);
  enc.PutU32(page.parent_ref);
  enc.PutU8(page.root_flags);
  // no prepare_txn field in the old format
  enc.PutU32(page.base_ref);
  enc.PutU16(0);
  enc.PutU32(static_cast<uint32_t>(page.data.size()));
  enc.PutRaw(page.data);
  auto back = Page::Deserialize(std::move(enc).Take());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->kind, PageKind::kVersion);
  EXPECT_EQ(back->file_cap, page.file_cap);
  EXPECT_EQ(back->version_cap, page.version_cap);
  EXPECT_EQ(back->commit_ref, page.commit_ref);
  EXPECT_EQ(back->root_flags, page.root_flags);
  EXPECT_EQ(back->base_ref, page.base_ref);
  EXPECT_EQ(back->data, page.data);
  EXPECT_EQ(back->prepare_txn, 0u);
  // Re-serializing writes the current format, which round-trips.
  auto rewritten = back->Serialize();
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)[0], 3);  // current wire tag
  EXPECT_TRUE(Page::Deserialize(*rewritten).ok());
}

TEST(PageTest, PlainPageOmitsVersionHeader) {
  Page page;
  page.kind = PageKind::kPlain;
  page.base_ref = 7;
  page.data = {1, 2, 3};
  auto bytes = page.Serialize();
  ASSERT_TRUE(bytes.ok());
  // kind(1) + base(4) + nrefs(2) + dsize(4) + data(3)
  EXPECT_EQ(bytes->size(), 14u);
  auto back = Page::Deserialize(*bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, PageKind::kPlain);
  EXPECT_EQ(back->base_ref, 7u);
  EXPECT_EQ(back->data, page.data);
}

TEST(PageTest, EmptyPageRoundTrips) {
  Page page;
  auto bytes = page.Serialize();
  ASSERT_TRUE(bytes.ok());
  auto back = Page::Deserialize(*bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->refs.empty());
  EXPECT_TRUE(back->data.empty());
}

TEST(PageTest, VariableDataSizePerPage) {
  // "The number of data bytes in a page is variable (per page) up to the maximum size."
  for (size_t dsize : std::vector<size_t>{0, 1, 100, 10000}) {
    Page page;
    page.data.assign(dsize, 0x5a);
    auto bytes = page.Serialize();
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(Page::Deserialize(*bytes)->data.size(), dsize);
  }
}

TEST(PageTest, ThirtyTwoKLimitEnforced) {
  Page page;
  page.data.assign(kMaxPageBytes + 1, 0);
  EXPECT_FALSE(page.Serialize().ok());
  page.data.assign(kMaxPageBytes - 11, 0);  // exactly at the limit with the plain header
  EXPECT_TRUE(page.Serialize().ok());
}

TEST(PageTest, MixedDataAndRefs) {
  // "A page may contain both data and references to pages further down in the tree."
  Page page;
  page.data.assign(1000, 0xcd);
  for (uint32_t i = 0; i < 50; ++i) {
    page.refs.push_back({i, static_cast<uint8_t>(i % 2 == 0 ? 0 : RefFlag::kCopied)});
  }
  auto bytes = page.Serialize();
  ASSERT_TRUE(bytes.ok());
  auto back = Page::Deserialize(*bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->refs.size(), 50u);
  EXPECT_EQ(back->data.size(), 1000u);
}

TEST(PageTest, DeserializeRejectsBadKind) {
  std::vector<uint8_t> bytes = {99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(Page::Deserialize(bytes).status().code(), ErrorCode::kCorrupt);
}

TEST(PageTest, DeserializeRejectsTruncation) {
  Page page = MakeVersionPage();
  auto bytes = page.Serialize();
  ASSERT_TRUE(bytes.ok());
  for (size_t cut : std::vector<size_t>{1, 10, 40, bytes->size() - 1}) {
    std::vector<uint8_t> truncated(bytes->begin(), bytes->begin() + cut);
    EXPECT_FALSE(Page::Deserialize(truncated).ok()) << "cut at " << cut;
  }
}

TEST(PageTest, DeserializeRejectsTrailingGarbage) {
  Page page;
  auto bytes = page.Serialize();
  ASSERT_TRUE(bytes.ok());
  bytes->push_back(0xff);
  EXPECT_EQ(Page::Deserialize(*bytes).status().code(), ErrorCode::kCorrupt);
}

TEST(PageTest, DeserializeRejectsInvalidFlagCode) {
  Page page;
  page.refs.push_back({1, RefFlag::kCopied});
  auto bytes = page.Serialize();
  ASSERT_TRUE(bytes.ok());
  // The packed ref is the last 4 bytes before (empty) data; force flag code 15.
  (*bytes)[bytes->size() - 1] |= 0xf0;
  EXPECT_EQ(Page::Deserialize(*bytes).status().code(), ErrorCode::kCorrupt);
}

TEST(PageTest, RefAtBoundsChecked) {
  Page page;
  page.refs.push_back({5, 0});
  EXPECT_TRUE(page.RefAt(0).ok());
  EXPECT_FALSE(page.RefAt(1).ok());
  EXPECT_FALSE(page.SetRef(1, PageRef{}).ok());
}

// --- PagePath (client-visible path names, §5) ---

TEST(PathTest, RootIsEmpty) {
  PagePath root = PagePath::Root();
  EXPECT_TRUE(root.IsRoot());
  EXPECT_EQ(root.ToString(), "/");
}

TEST(PathTest, ChildAndParent) {
  PagePath p = PagePath::Root().Child(3).Child(0).Child(7);
  EXPECT_EQ(p.ToString(), "/3/0/7");
  EXPECT_EQ(p.depth(), 3u);
  EXPECT_EQ(p.Parent().ToString(), "/3/0");
  EXPECT_EQ(p.LastIndex(), 7u);
}

TEST(PathTest, ParseRoundTrip) {
  for (const std::string& text : {"/", "/0", "/3/0/7", "/4294967295"}) {
    auto path = PagePath::Parse(text);
    ASSERT_TRUE(path.ok()) << text;
    EXPECT_EQ(path->ToString(), text);
  }
}

TEST(PathTest, ParseRejectsMalformed) {
  for (const std::string& text : {"", "3/0", "/a", "//", "/1//2", "/4294967296"}) {
    EXPECT_FALSE(PagePath::Parse(text).ok()) << text;
  }
}

TEST(PathTest, PrefixRelation) {
  PagePath a({1, 2});
  PagePath b({1, 2, 3});
  EXPECT_TRUE(a.IsPrefixOf(b));
  EXPECT_TRUE(a.IsPrefixOf(a));
  EXPECT_FALSE(b.IsPrefixOf(a));
  EXPECT_TRUE(PagePath::Root().IsPrefixOf(a));
  EXPECT_FALSE(PagePath({2}).IsPrefixOf(b));
}

TEST(PathTest, WireRoundTrip) {
  PagePath p({9, 8, 7, 6});
  WireEncoder enc;
  p.Encode(&enc);
  WireDecoder dec(enc.buffer());
  auto back = PagePath::Decode(&dec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(PathTest, Ordering) {
  EXPECT_LT(PagePath({1}), PagePath({1, 0}));
  EXPECT_LT(PagePath({1, 0}), PagePath({2}));
}

}  // namespace
}  // namespace afs
