// Parameterised conflict matrix (paper §5.2): every pairing of concurrent operations has a
// defined outcome — both commit (with a correct merge) or the later committer is refused.
// The fixture builds root → {0,1} interior pages → two leaves each; operation B commits
// second and is the one subjected to the serialisability test.

#include <gtest/gtest.h>

#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

enum class Op {
  kWriteLeaf,      // blind write of a leaf's data
  kReadLeaf,       // read a leaf's data
  kReadWriteLeaf,  // read-modify-write of a leaf
  kInsertChild,    // insert a reference under an interior page (M)
  kRemoveChild,    // remove a reference under an interior page (M)
  kReadRefs,       // search an interior page's references (S)
  kWriteInterior,  // write an interior page's own data
};

struct ConflictCase {
  const char* name;
  Op op_b;
  PagePath target_b;
  Op op_c;
  PagePath target_c;
  bool expect_both_commit;
};

// For readability: leaves are {i, j}; interior pages are {i}.
const ConflictCase kCases[] = {
    // --- data/data on the same leaf ---
    {"WriteWrite_SameLeaf_BothCommit", Op::kWriteLeaf, {0, 0}, Op::kWriteLeaf, {0, 0}, true},
    {"ReadWrite_SameLeaf_Conflict", Op::kReadLeaf, {0, 0}, Op::kWriteLeaf, {0, 0}, false},
    {"WriteRead_SameLeaf_BothCommit", Op::kWriteLeaf, {0, 0}, Op::kReadLeaf, {0, 0}, true},
    {"ReadRead_SameLeaf_BothCommit", Op::kReadLeaf, {0, 0}, Op::kReadLeaf, {0, 0}, true},
    {"RmwRmw_SameLeaf_Conflict", Op::kReadWriteLeaf, {0, 0}, Op::kReadWriteLeaf, {0, 0},
     false},
    {"RmwWrite_SameLeaf_Conflict", Op::kReadWriteLeaf, {0, 0}, Op::kWriteLeaf, {0, 0}, false},
    {"WriteRmw_SameLeaf_BothCommit", Op::kWriteLeaf, {0, 0}, Op::kReadWriteLeaf, {0, 0},
     true},

    // --- data/data on different leaves ---
    {"WriteWrite_SiblingLeaves_BothCommit", Op::kWriteLeaf, {0, 0}, Op::kWriteLeaf, {0, 1},
     true},
    {"WriteWrite_DistantLeaves_BothCommit", Op::kWriteLeaf, {0, 0}, Op::kWriteLeaf, {1, 1},
     true},
    {"RmwRmw_SiblingLeaves_BothCommit", Op::kReadWriteLeaf, {0, 0}, Op::kReadWriteLeaf,
     {0, 1}, true},
    {"ReadWrite_DifferentSubtrees_BothCommit", Op::kReadLeaf, {0, 0}, Op::kWriteLeaf, {1, 0},
     true},

    // --- structure vs structure ---
    {"InsertInsert_SameParent_Conflict", Op::kInsertChild, {0}, Op::kInsertChild, {0}, false},
    {"InsertRemove_SameParent_Conflict", Op::kInsertChild, {0}, Op::kRemoveChild, {0}, false},
    {"InsertInsert_DifferentParents_BothCommit", Op::kInsertChild, {0}, Op::kInsertChild, {1},
     true},
    {"RemoveRemove_DifferentParents_BothCommit", Op::kRemoveChild, {0}, Op::kRemoveChild, {1},
     true},

    // --- structure vs search ---
    {"ReadRefsVsInsert_SameParent_Conflict", Op::kReadRefs, {0}, Op::kInsertChild, {0},
     false},
    // The mirror image is asymmetric: the committed side only SEARCHED the page, its clean
    // copy was reshared away at commit (§5.1), and c-searched/b-modified is serialisable
    // in the order c-then-b — so the restructuring latecomer commits.
    {"InsertVsReadRefs_SameParent_BothCommit", Op::kInsertChild, {0}, Op::kReadRefs, {0},
     true},
    {"ReadRefsVsInsert_DifferentParents_BothCommit", Op::kReadRefs, {0}, Op::kInsertChild,
     {1}, true},

    // --- structure vs deeper access through the restructured page ---
    // B restructures {0}; C's leaf access under {0} searched {0}'s references: index
    // alignment below a restructured page is lost, so this conflicts (conservatively).
    {"InsertVsLeafWriteBelow_Conflict", Op::kInsertChild, {0}, Op::kWriteLeaf, {0, 0}, false},
    {"LeafWriteVsInsertAbove_Conflict", Op::kWriteLeaf, {0, 0}, Op::kInsertChild, {0}, false},
    // ...but accesses under the OTHER interior page are untouched by the restructure.
    {"InsertVsLeafWriteElsewhere_BothCommit", Op::kInsertChild, {0}, Op::kWriteLeaf, {1, 0},
     true},
    {"LeafReadVsRemoveElsewhere_BothCommit", Op::kReadLeaf, {0, 0}, Op::kRemoveChild, {1},
     true},

    // --- interior data vs structure of the same page ---
    // Writing a page's DATA and modifying its REFERENCES are independent (§5.1: the flags
    // "operate independent of one another").
    {"InteriorDataVsInsert_SamePage_BothCommit", Op::kWriteInterior, {0}, Op::kInsertChild,
     {0}, true},
    {"InsertVsInteriorData_SamePage_BothCommit", Op::kInsertChild, {0}, Op::kWriteInterior,
     {0}, true},
};

class ConflictMatrixTest : public ::testing::TestWithParam<ConflictCase> {
 protected:
  ConflictMatrixTest() {
    auto file = cluster_.fs().CreateFile();
    file_ = *file;
    auto v = cluster_.fs().CreateVersion(file_, kNullPort, false);
    for (uint32_t i = 0; i < 2; ++i) {
      (void)cluster_.fs().InsertRef(*v, PagePath::Root(), i);
      (void)cluster_.fs().WritePage(*v, PagePath({i}), Bytes("interior"));
      for (uint32_t j = 0; j < 2; ++j) {
        (void)cluster_.fs().InsertRef(*v, PagePath({i}), j);
        (void)cluster_.fs().WritePage(*v, PagePath({i, j}), Bytes("leaf"));
      }
    }
    EXPECT_TRUE(cluster_.fs().Commit(*v).ok());
  }

  Status Apply(const Capability& version, Op op, const PagePath& target) {
    FileServer& fs = cluster_.fs();
    switch (op) {
      case Op::kWriteLeaf:
      case Op::kWriteInterior:
        return fs.WritePage(version, target, Bytes("updated"));
      case Op::kReadLeaf:
        return fs.ReadPage(version, target, false).status();
      case Op::kReadWriteLeaf: {
        RETURN_IF_ERROR(fs.ReadPage(version, target, false).status());
        return fs.WritePage(version, target, Bytes("rmw"));
      }
      case Op::kInsertChild:
        return fs.InsertRef(version, target, 0);
      case Op::kRemoveChild:
        return fs.RemoveRef(version, target, 1);
      case Op::kReadRefs:
        return fs.ReadRefs(version, target).status();
    }
    return InternalError("unhandled op");
  }

  FastCluster cluster_;
  Capability file_;
};

TEST_P(ConflictMatrixTest, OutcomeMatchesSpecification) {
  const ConflictCase& test_case = GetParam();
  auto vb = cluster_.fs().CreateVersion(file_, kNullPort, false);
  auto vc = cluster_.fs().CreateVersion(file_, kNullPort, false);
  ASSERT_TRUE(vb.ok());
  ASSERT_TRUE(vc.ok());
  ASSERT_TRUE(Apply(*vb, test_case.op_b, test_case.target_b).ok());
  ASSERT_TRUE(Apply(*vc, test_case.op_c, test_case.target_c).ok());
  // C commits first (and always succeeds: based on current). B is serialisability-tested.
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  auto result = cluster_.fs().Commit(*vb);
  if (test_case.expect_both_commit) {
    EXPECT_TRUE(result.ok()) << result.status();
  } else {
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), ErrorCode::kConflict);
  }
  // Whatever happened, the store must remain structurally sound (note: inserts shift leaf
  // indices, so the sanity read targets the root, which always exists).
  auto current = cluster_.fs().GetCurrentVersion(file_);
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(cluster_.fs().ReadPage(*current, PagePath::Root(), true).ok());
}

INSTANTIATE_TEST_SUITE_P(Matrix, ConflictMatrixTest, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<ConflictCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace afs
