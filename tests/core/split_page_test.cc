// SplitPage tests (§5: "commands to manipulate the shape of a version's page tree (split
// pages into two, ...)").

#include <gtest/gtest.h>

#include "src/client/file_client.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class SplitPageTest : public ::testing::Test {
 protected:
  // A file whose page {0} holds "abcdefgh" and two children.
  Capability MakeFile() {
    auto file = cluster_.fs().CreateFile();
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    (void)cluster_.fs().InsertRef(*v, PagePath::Root(), 0);
    (void)cluster_.fs().WritePage(*v, PagePath({0}), Bytes("abcdefgh"));
    (void)cluster_.fs().InsertRef(*v, PagePath({0}), 0);
    (void)cluster_.fs().WritePage(*v, PagePath({0, 0}), Bytes("child0"));
    (void)cluster_.fs().InsertRef(*v, PagePath({0}), 1);
    (void)cluster_.fs().WritePage(*v, PagePath({0, 1}), Bytes("child1"));
    EXPECT_TRUE(cluster_.fs().Commit(*v).ok());
    return *file;
  }

  FastCluster cluster_;
};

TEST_F(SplitPageTest, SplitsDataAndRefsAtGivenPoints) {
  Capability file = MakeFile();
  auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().SplitPage(*v, PagePath({0}), 3, 1).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());

  auto current = cluster_.fs().GetCurrentVersion(file);
  // Original keeps the prefix and child 0.
  auto left = cluster_.fs().ReadPage(*current, PagePath({0}), true);
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->data, Bytes("abc"));
  EXPECT_EQ(left->nrefs, 1u);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0, 0}), false)->data, Bytes("child0"));
  // The sibling receives the tail and child 1 (now at {1, 0}).
  auto right = cluster_.fs().ReadPage(*current, PagePath({1}), true);
  ASSERT_TRUE(right.ok());
  EXPECT_EQ(right->data, Bytes("defgh"));
  EXPECT_EQ(right->nrefs, 1u);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({1, 0}), false)->data, Bytes("child1"));
}

TEST_F(SplitPageTest, SplitAtBoundaries) {
  Capability file = MakeFile();
  auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
  // Everything stays left; the sibling is empty.
  ASSERT_TRUE(cluster_.fs().SplitPage(*v, PagePath({0}), 8, 2).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  auto current = cluster_.fs().GetCurrentVersion(file);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0}), false)->data, Bytes("abcdefgh"));
  auto sibling = cluster_.fs().ReadPage(*current, PagePath({1}), true);
  ASSERT_TRUE(sibling.ok());
  EXPECT_TRUE(sibling->data.empty());
  EXPECT_EQ(sibling->nrefs, 0u);
}

TEST_F(SplitPageTest, OutOfRangeSplitPointsRejected) {
  Capability file = MakeFile();
  auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
  EXPECT_EQ(cluster_.fs().SplitPage(*v, PagePath({0}), 9, 0).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(cluster_.fs().SplitPage(*v, PagePath({0}), 0, 3).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(SplitPageTest, RootCannotBeSplit) {
  Capability file = MakeFile();
  auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
  EXPECT_EQ(cluster_.fs().SplitPage(*v, PagePath::Root(), 0, 0).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(SplitPageTest, SplitIsStructuralForConcurrencyControl) {
  // A split counts as modifying the parent's references: a concurrent update that searched
  // them conflicts; one that never looked at this subtree merges.
  Capability file = MakeFile();
  auto vb = cluster_.fs().CreateVersion(file, kNullPort, false);
  auto vc = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().ReadRefs(*vb, PagePath::Root()).ok());  // b searched the root
  ASSERT_TRUE(cluster_.fs().WritePage(*vb, PagePath({0, 0}), Bytes("b")).ok());
  ASSERT_TRUE(cluster_.fs().SplitPage(*vc, PagePath({0}), 3, 1).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*vc).ok());
  EXPECT_EQ(cluster_.fs().Commit(*vb).status().code(), ErrorCode::kConflict);
}

TEST_F(SplitPageTest, SplitSurvivesAbort) {
  Capability file = MakeFile();
  size_t before = cluster_.store().allocated_blocks();
  auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().SplitPage(*v, PagePath({0}), 3, 1).ok());
  ASSERT_TRUE(cluster_.fs().Abort(*v).ok());
  EXPECT_EQ(cluster_.store().allocated_blocks(), before);
  auto current = cluster_.fs().GetCurrentVersion(file);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0}), false)->data, Bytes("abcdefgh"));
}

TEST_F(SplitPageTest, WorksOverRpc) {
  FullCluster cluster(1);
  FileClient client(&cluster.net(), cluster.FileServerPorts());
  auto file = client.CreateFile();
  auto v = client.CreateVersion(*file);
  ASSERT_TRUE(client.InsertRef(*v, PagePath::Root(), 0).ok());
  ASSERT_TRUE(client.WriteString(*v, PagePath({0}), "splitme").ok());
  ASSERT_TRUE(client.SplitPage(*v, PagePath({0}), 5, 0).ok());
  ASSERT_TRUE(client.Commit(*v).ok());
  auto current = client.GetCurrentVersion(*file);
  EXPECT_EQ(*client.ReadString(*current, PagePath({0})), "split");
  EXPECT_EQ(*client.ReadString(*current, PagePath({1})), "me");
}

}  // namespace
}  // namespace afs
