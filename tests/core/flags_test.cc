// Tests of the C/R/W/S/M flag algebra and the 4-bit packed encoding (paper §5.1):
// exactly 13 valid combinations, 28-bit block numbers, conflict predicate.

#include <gtest/gtest.h>

#include "src/core/flags.h"
#include "src/core/serialise.h"

namespace afs {
namespace {

TEST(FlagsTest, ExactlyThirteenValidCombinations) {
  int valid = 0;
  for (int flags = 0; flags < 32; ++flags) {
    if (FlagsValid(static_cast<uint8_t>(flags))) {
      ++valid;
    }
  }
  EXPECT_EQ(valid, kNumValidFlagCombos);
  EXPECT_EQ(valid, 13);  // the paper's count
}

TEST(FlagsTest, ImplicationRules) {
  // R, W, S, M each imply C.
  EXPECT_FALSE(FlagsValid(RefFlag::kRead));
  EXPECT_FALSE(FlagsValid(RefFlag::kWritten));
  EXPECT_FALSE(FlagsValid(RefFlag::kSearched));
  // M implies S (and C).
  EXPECT_FALSE(FlagsValid(RefFlag::kCopied | RefFlag::kModified));
  EXPECT_TRUE(FlagsValid(RefFlag::kCopied | RefFlag::kSearched | RefFlag::kModified));
  // The empty (shared) state and bare C are valid.
  EXPECT_TRUE(FlagsValid(0));
  EXPECT_TRUE(FlagsValid(RefFlag::kCopied));
}

TEST(FlagsTest, EncodeDecodeBijectiveOverValidCombos) {
  for (int flags = 0; flags < 32; ++flags) {
    auto code = EncodeFlags(static_cast<uint8_t>(flags));
    if (!FlagsValid(static_cast<uint8_t>(flags))) {
      EXPECT_FALSE(code.ok()) << FlagsToString(static_cast<uint8_t>(flags));
      continue;
    }
    ASSERT_TRUE(code.ok());
    EXPECT_LT(*code, 13);  // fits in 4 bits with room to detect corruption
    auto back = DecodeFlags(*code);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, flags);
  }
}

TEST(FlagsTest, DecodeRejectsOutOfRangeCodes) {
  for (uint8_t code = 13; code < 16; ++code) {
    EXPECT_EQ(DecodeFlags(code).status().code(), ErrorCode::kCorrupt);
  }
}

TEST(FlagsTest, NormalizeSetsImpliedBits) {
  EXPECT_EQ(NormalizeFlags(RefFlag::kRead), RefFlag::kRead | RefFlag::kCopied);
  EXPECT_EQ(NormalizeFlags(RefFlag::kModified),
            RefFlag::kModified | RefFlag::kSearched | RefFlag::kCopied);
  EXPECT_TRUE(FlagsValid(NormalizeFlags(0x1f)));
}

TEST(FlagsTest, NormalizeIsIdempotent) {
  for (int flags = 0; flags < 32; ++flags) {
    uint8_t once = NormalizeFlags(static_cast<uint8_t>(flags));
    EXPECT_EQ(once, NormalizeFlags(once));
    EXPECT_TRUE(FlagsValid(once));
  }
}

TEST(FlagsTest, ToStringFormatsAllPositions) {
  EXPECT_EQ(FlagsToString(0), "-----");
  EXPECT_EQ(FlagsToString(RefFlag::kAllFlags), "CRWSM");
  EXPECT_EQ(FlagsToString(RefFlag::kCopied | RefFlag::kWritten), "C-W--");
}

TEST(PackRefTest, RoundTripPreservesBlockAndFlags) {
  PageRef ref;
  ref.block = 0x0abcdef;
  ref.flags = RefFlag::kCopied | RefFlag::kRead;
  auto raw = PackRef(ref);
  ASSERT_TRUE(raw.ok());
  auto back = UnpackRef(*raw);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, ref);
}

TEST(PackRefTest, TwentyEightBitLimit) {
  PageRef ref;
  ref.block = kMaxBlockNo;
  ref.flags = 0;
  EXPECT_TRUE(PackRef(ref).ok());
  ref.block = kMaxBlockNo + 1;
  EXPECT_FALSE(PackRef(ref).ok());
}

TEST(PackRefTest, PackedFormUses28Plus4Bits) {
  PageRef ref;
  ref.block = 1;
  ref.flags = RefFlag::kCopied;  // encodes as code 1
  auto raw = PackRef(ref);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw & kMaxBlockNo, 1u);
  EXPECT_EQ(*raw >> 28, 1u);
}

TEST(PackRefTest, NilRefRoundTrips) {
  PageRef nil;  // default: kNilRef, no flags
  auto raw = PackRef(nil);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(UnpackRef(*raw)->block, kNilRef);
}

// --- Conflict predicate (§5.2 via serialise.h) ---

TEST(FlagsConflictTest, ReadVsWriteConflicts) {
  EXPECT_TRUE(FlagsConflict(NormalizeFlags(RefFlag::kRead), NormalizeFlags(RefFlag::kWritten)));
}

TEST(FlagsConflictTest, WriteVsWriteDoesNotConflict) {
  // Blind writes serialise; V.b's data wins.
  EXPECT_FALSE(
      FlagsConflict(NormalizeFlags(RefFlag::kWritten), NormalizeFlags(RefFlag::kWritten)));
}

TEST(FlagsConflictTest, SearchVsModifyConflicts) {
  EXPECT_TRUE(
      FlagsConflict(NormalizeFlags(RefFlag::kSearched), NormalizeFlags(RefFlag::kModified)));
  EXPECT_TRUE(
      FlagsConflict(NormalizeFlags(RefFlag::kModified), NormalizeFlags(RefFlag::kSearched)));
}

TEST(FlagsConflictTest, ReadVsModifyDoesNotConflict) {
  // Data reads do not depend on sibling structure.
  EXPECT_FALSE(
      FlagsConflict(NormalizeFlags(RefFlag::kRead), NormalizeFlags(RefFlag::kModified)));
}

TEST(FlagsConflictTest, WriteVsSearchDoesNotConflict) {
  EXPECT_FALSE(
      FlagsConflict(NormalizeFlags(RefFlag::kWritten), NormalizeFlags(RefFlag::kSearched)));
}

TEST(FlagsConflictTest, UntouchedNeverConflicts) {
  for (int fc = 0; fc < 32; ++fc) {
    EXPECT_FALSE(FlagsConflict(0, NormalizeFlags(static_cast<uint8_t>(fc))));
  }
}

}  // namespace
}  // namespace afs
