// Consistency-checker tests: fsck passes on healthy stores through every lifecycle stage,
// flags injected corruption, and accounts for garbage precisely.

#include <gtest/gtest.h>

#include "src/core/fsck.h"
#include "src/core/gc.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class FsckTest : public ::testing::Test {
 protected:
  FastCluster cluster_;

  Capability MakeBusyFile() {
    auto file = cluster_.fs().CreateFile();
    for (int i = 0; i < 3; ++i) {
      auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
      (void)cluster_.fs().InsertRef(*v, PagePath::Root(), 0);
      (void)cluster_.fs().WritePage(*v, PagePath({0}), Bytes("gen" + std::to_string(i)));
      (void)cluster_.fs().Commit(*v);
    }
    return *file;
  }
};

TEST_F(FsckTest, FreshStoreIsClean) {
  FsckReport report = RunFsck(&cluster_.fs());
  EXPECT_TRUE(report.clean) << report.ToString();
  EXPECT_EQ(report.files, 0u);
}

TEST_F(FsckTest, BusyStoreIsClean) {
  MakeBusyFile();
  MakeBusyFile();
  FsckReport report = RunFsck(&cluster_.fs());
  EXPECT_TRUE(report.clean) << report.ToString();
  EXPECT_EQ(report.files, 2u);
  EXPECT_EQ(report.committed_versions, 8u);  // (initial + 3) x 2
  EXPECT_GT(report.pages_checked, 0u);
}

TEST_F(FsckTest, UncommittedVersionsAccountedFor) {
  Capability file = MakeBusyFile();
  auto open_version = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(open_version.ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*open_version, PagePath({0}), Bytes("open")).ok());
  FsckReport report = RunFsck(&cluster_.fs(), FsckOptions{.fail_on_garbage = true});
  EXPECT_TRUE(report.clean) << report.ToString();
  EXPECT_EQ(report.blocks_garbage, 0u);
}

TEST_F(FsckTest, QuiescentCollectedStoreHasNoGarbage) {
  MakeBusyFile();
  GarbageCollector gc({&cluster_.fs()}, GcOptions{.keep_versions = 2});
  ASSERT_TRUE(gc.RunCycle().ok());
  FsckReport report = RunFsck(&cluster_.fs(), FsckOptions{.fail_on_garbage = true});
  EXPECT_TRUE(report.clean) << report.ToString();
}

TEST_F(FsckTest, CrashedServersVersionsShowAsGarbageUntilCollected) {
  Capability file = MakeBusyFile();
  auto orphan = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*orphan, PagePath({0}), Bytes("lost")).ok());
  cluster_.fs().Crash();
  cluster_.fs().Restart();
  FsckReport before = RunFsck(&cluster_.fs());
  EXPECT_TRUE(before.clean) << before.ToString();  // garbage is a warning, not corruption
  EXPECT_GT(before.blocks_garbage, 0u);
  GarbageCollector gc({&cluster_.fs()}, GcOptions{.keep_versions = 100});
  ASSERT_TRUE(gc.RunCycle().ok());
  FsckReport after = RunFsck(&cluster_.fs(), FsckOptions{.fail_on_garbage = true});
  EXPECT_TRUE(after.clean) << after.ToString();
}

TEST_F(FsckTest, DetectsSeveredChainLink) {
  Capability file = MakeBusyFile();
  auto chain = cluster_.fs().CommittedChain(file.object);
  ASSERT_TRUE(chain.ok());
  ASSERT_GE(chain->size(), 3u);
  // Corrupt the middle version's base reference.
  PageStore* pages = cluster_.fs().page_store();
  auto page = pages->ReadPage((*chain)[1]);
  ASSERT_TRUE(page.ok());
  page->base_ref = 0x0abcde;  // dangling
  ASSERT_TRUE(pages->OverwritePage((*chain)[1], *page).ok());
  FsckReport report = RunFsck(&cluster_.fs());
  EXPECT_FALSE(report.clean);
}

TEST_F(FsckTest, DetectsDestroyedPage) {
  Capability file = MakeBusyFile();
  auto current = cluster_.fs().GetCurrentVersion(file);
  ASSERT_TRUE(current.ok());
  auto page = cluster_.fs().page_store()->ReadPage(static_cast<BlockNo>(current->object));
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page->refs.empty());
  // Free a page out from under the committed tree (simulated software bug / bad sector on
  // a single-copy deployment).
  ASSERT_TRUE(cluster_.store().Free(page->refs[0].block).ok());
  FsckReport report = RunFsck(&cluster_.fs());
  EXPECT_FALSE(report.clean);
  EXPECT_FALSE(report.errors.empty());
}

TEST_F(FsckTest, VersionIndexAgreesWithDiskChains) {
  MakeBusyFile();
  MakeBusyFile();
  FsckReport report = RunFsck(&cluster_.fs());
  EXPECT_TRUE(report.clean) << report.ToString();
  EXPECT_GT(report.index_records, 0u);  // I7 actually cross-checked records

  // With the check switched off no records are visited.
  FsckReport off = RunFsck(&cluster_.fs(), FsckOptions{.verify_version_index = false});
  EXPECT_TRUE(off.clean) << off.ToString();
  EXPECT_EQ(off.index_records, 0u);
}

TEST_F(FsckTest, VersionIndexSurvivesRestartAndPruning) {
  MakeBusyFile();
  cluster_.fs().Crash();
  cluster_.fs().Restart();  // index rebuilt heads-only from the on-disk chains
  FsckReport rebuilt = RunFsck(&cluster_.fs());
  EXPECT_TRUE(rebuilt.clean) << rebuilt.ToString();
  EXPECT_GT(rebuilt.index_records, 0u);

  GarbageCollector gc({&cluster_.fs()}, GcOptions{.keep_versions = 2});
  ASSERT_TRUE(gc.RunCycle().ok());  // pruning must drop the pruned records from the index
  FsckReport pruned = RunFsck(&cluster_.fs(), FsckOptions{.fail_on_garbage = true});
  EXPECT_TRUE(pruned.clean) << pruned.ToString();
}

TEST_F(FsckTest, DetectsIndexDisagreeingWithDisk) {
  // Disable the commit-time reshare pass so commits cache root snapshots in the index,
  // then corrupt the persisted current version page out from under it (a lost write /
  // software bug). The chain structure stays valid — only I7 can see the divergence.
  FastCluster cluster(FileServerOptions{.reshare_on_commit = false});
  auto file = cluster.fs().CreateFile();
  auto v = cluster.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster.fs().InsertRef(*v, PagePath::Root(), 0).ok());
  ASSERT_TRUE(cluster.fs().WritePage(*v, PagePath({0}), Bytes("snapshotted")).ok());
  ASSERT_TRUE(cluster.fs().Commit(*v).ok());

  auto current = cluster.fs().GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  BlockNo head = static_cast<BlockNo>(current->object);
  PageStore* pages = cluster.fs().page_store();
  auto page = pages->ReadPage(head);
  ASSERT_TRUE(page.ok());
  page->data = Bytes("tampered");
  ASSERT_TRUE(pages->OverwritePage(head, *page).ok());

  FsckReport report = RunFsck(&cluster.fs());
  EXPECT_FALSE(report.clean);
  bool found = false;
  for (const std::string& error : report.errors) {
    found = found || error.find("version index root snapshot") != std::string::npos;
  }
  EXPECT_TRUE(found) << report.ToString();

  // The same store passes once the index check is off: the corruption is invisible to
  // I1-I6, which is exactly why I7 exists.
  FsckReport off = RunFsck(&cluster.fs(), FsckOptions{.verify_version_index = false});
  EXPECT_TRUE(off.clean) << off.ToString();
}

TEST_F(FsckTest, ReportFormatsHumanReadably) {
  MakeBusyFile();
  FsckReport report = RunFsck(&cluster_.fs());
  std::string text = report.ToString();
  EXPECT_NE(text.find("CLEAN"), std::string::npos);
  EXPECT_NE(text.find("file(s)"), std::string::npos);
}

}  // namespace
}  // namespace afs
