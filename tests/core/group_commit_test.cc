// Deterministic serialiser-equivalence tests for the commit-path mechanisms (docs/PERF.md
// §5): transaction group commit, the in-memory version index, and parallel validation must
// be pure performance — never visible in outcomes.
//
// The core scheme: K overlapping transactions (each reads page 0 and then writes it, so
// any two of them violate Kung–Robinson condition (2)) and M disjoint transactions (each
// writes its own page) all branch from the same committed base. Submitted concurrently
// through the group-commit combiner, EXACTLY K-1 must abort with kConflict and every
// disjoint one must commit, and the resulting store must be byte-identical to committing
// the same updates one at a time with group commit and parallel validation switched off
// (the classic serial §5.2 path). A seeded shuffle varies the arrival order across rounds,
// so a scheduling-order dependence would show up as a flaky diff, not a lucky pass.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/core/commit_tuning.h"
#include "src/core/fsck.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// Every test in this binary mutates the process-global commit tuning switches; restore
// the defaults no matter how the test exits.
struct TuningGuard {
  ~TuningGuard() {
    SetGroupCommitEnabled(true);
    SetVersionIndexEnabled(true);
    SetParallelValidateEnabled(true);
  }
};

constexpr int kOverlapping = 4;  // read-then-write page 0: mutually conflicting
constexpr int kDisjoint = 6;     // transaction j writes page 1+j: conflict-free
constexpr int kPages = 1 + kDisjoint;

Capability MakeFile(FileServer& fs) {
  auto file = fs.CreateFile();
  EXPECT_TRUE(file.ok());
  auto v = fs.CreateVersion(*file, kNullPort, false);
  EXPECT_TRUE(v.ok());
  for (int i = 0; i < kPages; ++i) {
    EXPECT_TRUE(fs.InsertRef(*v, PagePath::Root(), i).ok());
    EXPECT_TRUE(fs.WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                             Bytes("init" + std::to_string(i)))
                    .ok());
  }
  EXPECT_TRUE(fs.Commit(*v).ok());
  return *file;
}

// Build the K+M transactions off the SAME committed base (all versions are created before
// any of them commits) and return their handles in a seed-shuffled submission order. All
// overlapping transactions write identical bytes, so the final state does not depend on
// WHICH of them wins — only on exactly one winning.
std::vector<Capability> PrepareTxns(FileServer& fs, const Capability& file, uint32_t seed) {
  std::vector<Capability> txns;
  for (int k = 0; k < kOverlapping; ++k) {
    auto v = fs.CreateVersion(file, kNullPort, false);
    EXPECT_TRUE(v.ok());
    EXPECT_TRUE(fs.ReadPage(*v, PagePath({0}), false).ok());
    EXPECT_TRUE(fs.WritePage(*v, PagePath({0}), Bytes("contended")).ok());
    txns.push_back(*v);
  }
  for (int j = 0; j < kDisjoint; ++j) {
    auto v = fs.CreateVersion(file, kNullPort, false);
    EXPECT_TRUE(v.ok());
    EXPECT_TRUE(fs.WritePage(*v, PagePath({static_cast<uint32_t>(1 + j)}),
                             Bytes("disjoint" + std::to_string(j)))
                    .ok());
    txns.push_back(*v);
  }
  std::mt19937 rng(seed);
  std::shuffle(txns.begin(), txns.end(), rng);
  return txns;
}

std::string ReadCurrent(FileServer& fs, const Capability& file, uint32_t page) {
  auto current = fs.GetCurrentVersion(file);
  EXPECT_TRUE(current.ok());
  auto read = fs.ReadPage(*current, PagePath({page}), false);
  if (!read.ok()) {
    return "<error: " + read.status().ToString() + ">";
  }
  return std::string(read->data.begin(), read->data.end());
}

struct RunOutcome {
  int committed = 0;
  int conflicts = 0;
  std::vector<std::string> pages;  // final content of every page, in index order
  size_t chain_length = 0;
};

RunOutcome FinalState(FileServer& fs, const Capability& file, int committed, int conflicts) {
  RunOutcome out;
  out.committed = committed;
  out.conflicts = conflicts;
  for (uint32_t p = 0; p < kPages; ++p) {
    out.pages.push_back(ReadCurrent(fs, file, p));
  }
  auto chain = fs.CommittedChain(file.object);
  EXPECT_TRUE(chain.ok());
  out.chain_length = chain.ok() ? chain->size() : 0;
  return out;
}

// Submit every transaction's Commit from its own thread, released together.
RunOutcome RunConcurrent(FileServer& fs, const Capability& file, uint32_t seed) {
  std::vector<Capability> txns = PrepareTxns(fs, file, seed);
  std::atomic<int> committed{0};
  std::atomic<int> conflicts{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (const Capability& v : txns) {
    workers.emplace_back([&, v] {
      while (!go.load()) {
        std::this_thread::yield();
      }
      auto result = fs.Commit(v);
      if (result.ok()) {
        committed.fetch_add(1);
      } else {
        EXPECT_EQ(result.status().code(), ErrorCode::kConflict) << result.status().ToString();
        conflicts.fetch_add(1);
      }
    });
  }
  go.store(true);
  for (auto& w : workers) {
    w.join();
  }
  return FinalState(fs, file, committed.load(), conflicts.load());
}

// The reference execution: the same transaction set, committed one at a time in the same
// shuffled order over the serial validation path.
RunOutcome RunSerial(FileServer& fs, const Capability& file, uint32_t seed) {
  std::vector<Capability> txns = PrepareTxns(fs, file, seed);
  int committed = 0;
  int conflicts = 0;
  for (const Capability& v : txns) {
    auto result = fs.Commit(v);
    if (result.ok()) {
      ++committed;
    } else {
      EXPECT_EQ(result.status().code(), ErrorCode::kConflict) << result.status().ToString();
      ++conflicts;
    }
  }
  return FinalState(fs, file, committed, conflicts);
}

TEST(GroupCommitTest, ConcurrentOutcomeIsByteIdenticalToSerialExecution) {
  TuningGuard guard;
  for (uint32_t seed : {1u, 7u, 42u, 1985u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));

    SetGroupCommitEnabled(true);
    SetVersionIndexEnabled(true);
    SetParallelValidateEnabled(true);
    FastCluster grouped;
    Capability grouped_file = MakeFile(grouped.fs());
    RunOutcome concurrent = RunConcurrent(grouped.fs(), grouped_file, seed);

    SetGroupCommitEnabled(false);
    SetParallelValidateEnabled(false);
    FastCluster serial;
    Capability serial_file = MakeFile(serial.fs());
    RunOutcome reference = RunSerial(serial.fs(), serial_file, seed);

    // Exactly K-1 of the overlapping transactions abort; everything else commits.
    EXPECT_EQ(concurrent.conflicts, kOverlapping - 1);
    EXPECT_EQ(concurrent.committed, 1 + kDisjoint);
    EXPECT_EQ(reference.conflicts, kOverlapping - 1);
    EXPECT_EQ(reference.committed, 1 + kDisjoint);

    // Byte-identical final state, version for version.
    EXPECT_EQ(concurrent.pages, reference.pages);
    EXPECT_EQ(concurrent.chain_length, reference.chain_length);
    EXPECT_EQ(concurrent.pages[0], "contended");
    for (int j = 0; j < kDisjoint; ++j) {
      EXPECT_EQ(concurrent.pages[1 + j], "disjoint" + std::to_string(j));
    }

    // The grouped run's store and version index come out of the storm consistent (fsck
    // I1-I7; the aborted losers' pages are tolerated garbage awaiting GC).
    FsckReport report = RunFsck(&grouped.fs());
    EXPECT_TRUE(report.clean) << report.ToString();
    EXPECT_GT(report.index_records, 0u);
  }
}

TEST(GroupCommitTest, KillSwitchedCommitPathMatchesToo) {
  // The same storm with group commit ON but the version index OFF (and vice versa) — the
  // mechanisms must compose: any subset of switches yields the same outcome.
  TuningGuard guard;
  const uint32_t seed = 7;
  struct Config {
    bool group;
    bool index;
    bool parallel;
  };
  RunOutcome reference;
  bool have_reference = false;
  for (const Config& config : {Config{true, false, true}, Config{false, true, false},
                               Config{true, true, false}, Config{false, false, false}}) {
    SCOPED_TRACE("group=" + std::to_string(config.group) +
                 " index=" + std::to_string(config.index) +
                 " parallel=" + std::to_string(config.parallel));
    SetGroupCommitEnabled(config.group);
    SetVersionIndexEnabled(config.index);
    SetParallelValidateEnabled(config.parallel);
    FastCluster cluster;
    Capability file = MakeFile(cluster.fs());
    RunOutcome outcome = RunConcurrent(cluster.fs(), file, seed);
    EXPECT_EQ(outcome.conflicts, kOverlapping - 1);
    EXPECT_EQ(outcome.committed, 1 + kDisjoint);
    if (have_reference) {
      EXPECT_EQ(outcome.pages, reference.pages);
      EXPECT_EQ(outcome.chain_length, reference.chain_length);
    } else {
      reference = outcome;
      have_reference = true;
    }
  }
}

TEST(GroupCommitTest, StaleIndexTipDoesNotAbortValidCommit) {
  // Regression: toggle the version-index kill switch off across one commit, so the
  // index's current-tip hint lags the real chain tip, then commit an update based on the
  // REAL tip through the group path. The combiner must never re-base the request onto the
  // stale hint — an ANCESTOR of its own base — which used to make the flip-loss fallback
  // validate the transaction against its own base and abort it as a spurious conflict.
  TuningGuard guard;
  SetGroupCommitEnabled(true);
  SetVersionIndexEnabled(true);
  SetParallelValidateEnabled(true);
  FastCluster cluster;
  FileServer& fs = cluster.fs();
  Capability file = MakeFile(fs);

  SetVersionIndexEnabled(false);  // the index misses this commit...
  auto v2 = fs.CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(fs.ReadPage(*v2, PagePath({0}), false).ok());
  ASSERT_TRUE(fs.WritePage(*v2, PagePath({0}), Bytes("second")).ok());
  ASSERT_TRUE(fs.Commit(*v2).ok());
  SetVersionIndexEnabled(true);  // ...so its tip hint now lags the chain

  // Based on the true current version, and touching exactly the page v2 wrote: testing it
  // against v2 (its own base) would report a conflict that does not exist.
  auto v3 = fs.CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(v3.ok());
  ASSERT_TRUE(fs.ReadPage(*v3, PagePath({0}), false).ok());
  ASSERT_TRUE(fs.WritePage(*v3, PagePath({0}), Bytes("third")).ok());
  auto committed = fs.Commit(*v3);
  EXPECT_TRUE(committed.ok()) << committed.status();
  EXPECT_EQ(ReadCurrent(fs, file, 0), "third");

  FsckReport report = RunFsck(&fs);
  EXPECT_TRUE(report.clean) << report.ToString();
}

TEST(GroupCommitTest, SuperFileSubCommitKeepsIndexTipFresh) {
  // Regression: FinishSuperCommit advances a sub-file's chain without going through the
  // grouped commit path. The version index must record that commit too — a sub-file tip
  // hint left behind its chain would otherwise send every later grouped commit of the
  // sub-file into the stale-tip scenario above — and fsck I7 must stay clean.
  TuningGuard guard;
  SetGroupCommitEnabled(true);
  SetVersionIndexEnabled(true);
  SetParallelValidateEnabled(true);
  FastCluster cluster;
  FileServer& fs = cluster.fs();

  auto super = fs.CreateFile();
  ASSERT_TRUE(super.ok());
  auto v = fs.CreateVersion(*super, kNullPort, false);
  ASSERT_TRUE(v.ok());
  auto sub = fs.CreateSubFile(*v, PagePath::Root(), 0);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(fs.Commit(*v).ok());
  auto sv = fs.CreateVersion(*sub, kNullPort, false);
  ASSERT_TRUE(sv.ok());
  ASSERT_TRUE(fs.WritePage(*sv, PagePath::Root(), Bytes("own")).ok());
  ASSERT_TRUE(fs.Commit(*sv).ok());

  // A super-file update writes through the sub-file; FinishSuperCommit commits the copy.
  auto sup2 = fs.CreateVersion(*super, kNullPort, false);
  ASSERT_TRUE(sup2.ok());
  ASSERT_TRUE(fs.WritePage(*sup2, PagePath({0}), Bytes("via super")).ok());
  ASSERT_TRUE(fs.Commit(*sup2).ok());

  // The index's tip hint for the sub-file tracks the FinishSuperCommit-advanced chain.
  auto stat = fs.FileStat(*sub);
  ASSERT_TRUE(stat.ok());
  auto hint = fs.version_index().CurrentHint(sub->object);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, stat->current_head);

  // And a grouped read-modify-write of the sub-file commits cleanly on top of it.
  auto sv2 = fs.CreateVersion(*sub, kNullPort, false);
  ASSERT_TRUE(sv2.ok());
  ASSERT_TRUE(fs.ReadPage(*sv2, PagePath::Root(), false).ok());
  ASSERT_TRUE(fs.WritePage(*sv2, PagePath::Root(), Bytes("after")).ok());
  auto committed = fs.Commit(*sv2);
  EXPECT_TRUE(committed.ok()) << committed.status();

  FsckReport report = RunFsck(&fs);
  EXPECT_TRUE(report.clean) << report.ToString();
}

TEST(GroupCommitTest, GroupedCommitsAreObservable) {
  // Sanity that the concurrent storm actually exercises the new machinery: the version
  // index serves hits, and the signature fast path or serialiser tests ran.
  TuningGuard guard;
  SetGroupCommitEnabled(true);
  SetVersionIndexEnabled(true);
  SetParallelValidateEnabled(true);
  FastCluster cluster;
  Capability file = MakeFile(cluster.fs());
  (void)RunConcurrent(cluster.fs(), file, 3);
  EXPECT_GT(cluster.fs().index_hits(), 0u);
}

}  // namespace
}  // namespace afs
