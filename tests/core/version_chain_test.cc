// Version family tree tests (paper §5.1, Figure 4): committed versions form a doubly
// linked list via base and commit references; uncommitted versions hang off committed ones;
// the current version's commit reference and the oldest version's base reference are nil.

#include <gtest/gtest.h>

#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class VersionChainTest : public ::testing::Test {
 protected:
  FastCluster cluster_;

  uint64_t FileId(const Capability& file) { return file.object; }

  Result<Page> Load(BlockNo head) { return cluster_.fs().page_store()->ReadPage(head); }
};

TEST_F(VersionChainTest, Figure4_CommittedChainDoublyLinked) {
  auto file = cluster_.fs().CreateFile();
  for (int i = 0; i < 4; ++i) {
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath::Root(), Bytes("x")).ok());
    ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  }
  auto chain = cluster_.fs().CommittedChain(FileId(*file));
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 5u);

  // "Each committed version's base reference points to the version it was based on (its
  // predecessor) and its commit reference points to the next committed version."
  for (size_t i = 0; i < chain->size(); ++i) {
    auto page = Load((*chain)[i]);
    ASSERT_TRUE(page.ok());
    if (i == 0) {
      EXPECT_EQ(page->base_ref, kNilRef);  // "the oldest version's base reference [is] nil"
    } else {
      EXPECT_EQ(page->base_ref, (*chain)[i - 1]);
    }
    if (i + 1 == chain->size()) {
      EXPECT_EQ(page->commit_ref, kNilRef);  // "The current version's commit reference is nil"
    } else {
      EXPECT_EQ(page->commit_ref, (*chain)[i + 1]);
    }
  }
}

TEST_F(VersionChainTest, UncommittedVersionsAttachViaBaseReference) {
  auto file = cluster_.fs().CreateFile();
  auto v1 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  auto v2 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  auto chain = cluster_.fs().CommittedChain(FileId(*file));
  ASSERT_TRUE(chain.ok());
  BlockNo current = chain->back();
  // "note that this is always a committed version."
  for (const auto& v : {*v1, *v2}) {
    auto page = Load(static_cast<BlockNo>(v.object));
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->base_ref, current);
    EXPECT_EQ(page->commit_ref, kNilRef);
  }
  // Uncommitted versions are not part of the committed chain.
  EXPECT_EQ(cluster_.fs().CommittedChain(FileId(*file))->size(), 1u);
}

TEST_F(VersionChainTest, VersionPageCarriesFileAndVersionCaps) {
  auto file = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(v.ok());
  auto page = Load(static_cast<BlockNo>(v->object));
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(page->IsVersionPage());
  EXPECT_EQ(page->file_cap.object, file->object);
  EXPECT_EQ(page->version_cap.object, v->object);
}

TEST_F(VersionChainTest, CurrentFoundByFollowingCommitRefs) {
  auto file = cluster_.fs().CreateFile();
  Capability last;
  for (int i = 0; i < 3; ++i) {
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath::Root(), Bytes("gen")).ok());
    ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
    last = *v;
  }
  auto current = cluster_.fs().GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->object, last.object);
}

TEST_F(VersionChainTest, ListUncommittedTracksLiveVersions) {
  auto file = cluster_.fs().CreateFile();
  EXPECT_TRUE(cluster_.fs().ListUncommitted().empty());
  auto v1 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  auto v2 = cluster_.fs().CreateVersion(*file, kNullPort, false);
  EXPECT_EQ(cluster_.fs().ListUncommitted().size(), 2u);
  ASSERT_TRUE(cluster_.fs().Commit(*v1).ok());
  EXPECT_EQ(cluster_.fs().ListUncommitted().size(), 1u);
  ASSERT_TRUE(cluster_.fs().Abort(*v2).ok());
  EXPECT_TRUE(cluster_.fs().ListUncommitted().empty());
}

TEST_F(VersionChainTest, AbortedVersionLeavesChainIntact) {
  auto file = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath::Root(), Bytes("doomed")).ok());
  ASSERT_TRUE(cluster_.fs().Abort(*v).ok());
  auto chain = cluster_.fs().CommittedChain(FileId(*file));
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->size(), 1u);
  auto page = Load(chain->front());
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->commit_ref, kNilRef);
}

}  // namespace
}  // namespace afs
