// Garbage collector tests: exact reclamation, pruning with Figure 4 invariant
// maintenance, pinning by uncommitted versions, crashed-server garbage, concurrency, and
// the reshare-on-commit rule (§5.1).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/core/gc.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class GcTest : public ::testing::Test {
 protected:
  GcTest() : gc_({&cluster_.fs()}, GcOptions{.keep_versions = 1}) {}

  Capability MakeFile(int pages) {
    auto file = cluster_.fs().CreateFile();
    auto v = cluster_.fs().CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < pages; ++i) {
      (void)cluster_.fs().InsertRef(*v, PagePath::Root(), i);
      (void)cluster_.fs().WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                                    std::vector<uint8_t>(2000, static_cast<uint8_t>(i)));
    }
    (void)cluster_.fs().Commit(*v);
    return *file;
  }

  void CommitWrite(const Capability& file, uint32_t page, std::string_view value) {
    auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
    ASSERT_TRUE(v.ok()) << v.status();
    Status write = cluster_.fs().WritePage(*v, PagePath({page}), Bytes(value));
    ASSERT_TRUE(write.ok()) << write;
    auto commit = cluster_.fs().Commit(*v);
    ASSERT_TRUE(commit.ok()) << commit.status();
  }

  FastCluster cluster_;
  GarbageCollector gc_;
};

TEST_F(GcTest, IdleCycleFreesNothingLive) {
  // A non-pruning collector must not touch anything in a quiescent system.
  GarbageCollector keeper({&cluster_.fs()}, GcOptions{.keep_versions = 100});
  Capability file = MakeFile(4);
  size_t before = cluster_.store().allocated_blocks();
  ASSERT_TRUE(keeper.RunCycle().ok());
  EXPECT_EQ(cluster_.store().allocated_blocks(), before);
  // The file remains fully readable.
  auto current = cluster_.fs().GetCurrentVersion(file);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(cluster_.fs().ReadPage(*current, PagePath({i}), false).ok());
  }
}

TEST_F(GcTest, OldVersionsPrunedAndChainInvariantKept) {
  Capability file = MakeFile(2);
  for (int i = 0; i < 5; ++i) {
    CommitWrite(file, 0, "gen" + std::to_string(i));
  }
  EXPECT_EQ(cluster_.fs().FileStat(file)->committed_versions, 7u);  // initial + makefile + 5
  ASSERT_TRUE(gc_.RunCycle().ok());
  EXPECT_GT(gc_.stats().versions_pruned, 0u);
  auto stat = cluster_.fs().FileStat(file);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->committed_versions, 1u);
  // Figure 4 invariant after pruning: the (new) oldest version's base reference is nil.
  auto chain = cluster_.fs().CommittedChain(file.object);
  ASSERT_TRUE(chain.ok());
  auto oldest = cluster_.fs().page_store()->ReadPage(chain->front());
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ(oldest->base_ref, kNilRef);
  // Current data intact.
  auto current = cluster_.fs().GetCurrentVersion(file);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0}), false)->data, Bytes("gen4"));
  EXPECT_FALSE(cluster_.fs().ReadPage(*current, PagePath({1}), false)->data.empty());
}

TEST_F(GcTest, SpaceReclaimedAfterPruning) {
  Capability file = MakeFile(2);
  size_t baseline = cluster_.store().allocated_blocks();
  for (int i = 0; i < 10; ++i) {
    CommitWrite(file, 0, std::string(2000, 'x'));
  }
  size_t grown = cluster_.store().allocated_blocks();
  ASSERT_GT(grown, baseline);
  ASSERT_TRUE(gc_.RunCycle().ok());
  EXPECT_GT(gc_.stats().blocks_swept, 0u);
  // Near-baseline occupancy: the 10 historical root pages + their copied pages are gone.
  EXPECT_LT(cluster_.store().allocated_blocks(), baseline + 4);
}

TEST_F(GcTest, AbortedVersionsLeaveNoGarbage) {
  Capability file = MakeFile(2);
  size_t before = cluster_.store().allocated_blocks();
  for (int i = 0; i < 5; ++i) {
    auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
    ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("temp")).ok());
    ASSERT_TRUE(cluster_.fs().Abort(*v).ok());
  }
  EXPECT_EQ(cluster_.store().allocated_blocks(), before);  // abort frees eagerly
  GarbageCollector keeper({&cluster_.fs()}, GcOptions{.keep_versions = 100});
  ASSERT_TRUE(keeper.RunCycle().ok());
  EXPECT_EQ(cluster_.store().allocated_blocks(), before);  // and the GC finds no more
}

TEST_F(GcTest, UncommittedVersionsPinTheirBase) {
  Capability file = MakeFile(1);
  auto open_version = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(open_version.ok());
  // Several newer versions commit meanwhile.
  for (int i = 0; i < 4; ++i) {
    CommitWrite(file, 0, "newer" + std::to_string(i));
  }
  ASSERT_TRUE(gc_.RunCycle().ok());
  // The open version's pages survive, and the commit still works (its serialisability
  // tests walk the retained chain).
  ASSERT_TRUE(cluster_.fs().WritePage(*open_version, PagePath({0}), Bytes("late")).ok());
  auto commit = cluster_.fs().Commit(*open_version);
  EXPECT_TRUE(commit.ok()) << commit.status();
  auto current = cluster_.fs().GetCurrentVersion(file);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath({0}), false)->data, Bytes("late"));
}

TEST_F(GcTest, CrashedServersUncommittedVersionsAreCollected) {
  // "Uncommitted versions need not be salvaged in a server crash."
  Capability file = MakeFile(2);
  auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("doomed")).ok());
  size_t with_version = cluster_.store().allocated_blocks();
  cluster_.fs().Crash();
  cluster_.fs().Restart();
  ASSERT_TRUE(gc_.RunCycle().ok());
  EXPECT_LT(cluster_.store().allocated_blocks(), with_version);
  // The file itself is unharmed.
  auto current = cluster_.fs().GetCurrentVersion(file);
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(cluster_.fs().ReadPage(*current, PagePath({0}), false).ok());
}

TEST_F(GcTest, DeletedFilesFullyReclaimed) {
  size_t before = cluster_.store().allocated_blocks();
  Capability file = MakeFile(8);
  ASSERT_TRUE(cluster_.fs().DeleteFile(file).ok());
  ASSERT_TRUE(gc_.RunCycle().ok());
  // Only the (rewritten) file table may differ in block count.
  EXPECT_LE(cluster_.store().allocated_blocks(), before + 1);
}

TEST_F(GcTest, KeepVersionsRespected) {
  GarbageCollector keeper({&cluster_.fs()}, GcOptions{.keep_versions = 3});
  Capability file = MakeFile(1);
  for (int i = 0; i < 6; ++i) {
    CommitWrite(file, 0, "g" + std::to_string(i));
  }
  ASSERT_TRUE(keeper.RunCycle().ok());
  EXPECT_EQ(cluster_.fs().FileStat(file)->committed_versions, 3u);
}

TEST_F(GcTest, RunsInParallelWithUpdates) {
  // Abstract: "A garbage collector that runs independent of, and in parallel with, the
  // operation of the system."
  Capability file = MakeFile(4);
  std::atomic<bool> stop{false};
  std::atomic<int> commits{0};
  std::thread mutator([&] {
    int i = 0;
    while (!stop.load()) {
      auto v = cluster_.fs().CreateVersion(file, kNullPort, false);
      if (!v.ok()) {
        continue;
      }
      if (cluster_.fs()
              .WritePage(*v, PagePath({static_cast<uint32_t>(i % 4)}), Bytes("data"))
              .ok() &&
          cluster_.fs().Commit(*v).ok()) {
        ++commits;
      }
      ++i;
    }
  });
  int cycles = 0;
  while (commits.load() < 10 && cycles < 2000) {
    Status st = gc_.RunCycle();
    ++cycles;
    // Aborted cycles (racing mutations) are fine; failed invariants are not.
    if (!st.ok()) {
      EXPECT_NE(st.code(), ErrorCode::kInternal) << st;
    }
  }
  stop = true;
  mutator.join();
  EXPECT_GT(commits.load(), 0);
  // Final state consistent: everything readable.
  auto current = cluster_.fs().GetCurrentVersion(file);
  ASSERT_TRUE(current.ok()) << current.status();
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(cluster_.fs().ReadPage(*current, PagePath({i}), false).ok());
  }
  // And a quiescent cycle still reclaims all remaining garbage.
  ASSERT_TRUE(gc_.RunCycle().ok());
}

TEST_F(GcTest, BackgroundModeStartsAndStops) {
  Capability file = MakeFile(1);
  gc_.Start(std::chrono::milliseconds(5));
  for (int i = 0; i < 10; ++i) {
    CommitWrite(file, 0, "bg" + std::to_string(i));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gc_.Stop();
  EXPECT_GT(gc_.stats().cycles, 0u);
}

// --- Reshare-on-commit (ablation A2, §5.1's "copied but not written" rule) ---

TEST(ReshareTest, CopiedButUnwrittenPagesResharedWithBase) {
  FileServerOptions with;
  with.reshare_on_commit = true;
  FileServerOptions without;
  without.reshare_on_commit = false;

  auto measure = [](FileServerOptions options) -> size_t {
    FastCluster cluster(options);
    auto file = cluster.fs().CreateFile();
    auto v0 = cluster.fs().CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < 8; ++i) {
      (void)cluster.fs().InsertRef(*v0, PagePath::Root(), i);
      (void)cluster.fs().WritePage(*v0, PagePath({static_cast<uint32_t>(i)}),
                                   std::vector<uint8_t>(2000, 1));
    }
    (void)cluster.fs().Commit(*v0);
    // The update READS seven pages and writes one: the seven read-copies are clean.
    auto v1 = cluster.fs().CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < 7; ++i) {
      (void)cluster.fs().ReadPage(*v1, PagePath({static_cast<uint32_t>(i)}), false);
    }
    (void)cluster.fs().WritePage(*v1, PagePath({7}), std::vector<uint8_t>(2000, 2));
    (void)cluster.fs().Commit(*v1);
    // Resharing redirects references; the dropped copies become unreachable and are
    // reclaimed by the collector (both versions retained, so pruning plays no part).
    GarbageCollector gc({&cluster.fs()}, GcOptions{.keep_versions = 100});
    (void)gc.RunCycle();
    return cluster.store().allocated_blocks();
  };

  // With resharing, the clean read-copies are dropped from the committed tree; the
  // space difference is the point of the §5.1 rule.
  EXPECT_LT(measure(with), measure(without));
}

TEST(ReshareTest, ReshareKeepsContentIdentical) {
  FileServerOptions options;
  options.reshare_on_commit = true;
  FastCluster cluster(options);
  auto file = cluster.fs().CreateFile();
  auto v0 = cluster.fs().CreateVersion(*file, kNullPort, false);
  for (int i = 0; i < 4; ++i) {
    (void)cluster.fs().InsertRef(*v0, PagePath::Root(), i);
    (void)cluster.fs().WritePage(*v0, PagePath({static_cast<uint32_t>(i)}),
                                 Bytes("original" + std::to_string(i)));
  }
  (void)cluster.fs().Commit(*v0);
  auto v1 = cluster.fs().CreateVersion(*file, kNullPort, false);
  for (int i = 0; i < 3; ++i) {
    (void)cluster.fs().ReadPage(*v1, PagePath({static_cast<uint32_t>(i)}), false);
  }
  ASSERT_TRUE(cluster.fs().WritePage(*v1, PagePath({3}), Bytes("rewritten")).ok());
  ASSERT_TRUE(cluster.fs().Commit(*v1).ok());
  auto current = cluster.fs().GetCurrentVersion(*file);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.fs().ReadPage(*current, PagePath({static_cast<uint32_t>(i)}), false)->data,
              Bytes("original" + std::to_string(i)));
  }
  EXPECT_EQ(cluster.fs().ReadPage(*current, PagePath({3}), false)->data, Bytes("rewritten"));
}

}  // namespace
}  // namespace afs
