// White-box tests of the Serialiser (§5.2): hand-built page trees exercising each rule of
// the test-and-merge matrix — grafts, keeps, data adoption, reference-table adoption,
// conflicts, flag unions, and recursion depth.

#include <gtest/gtest.h>

#include "src/block/block_store.h"
#include "src/core/page_store.h"
#include "src/core/serialise.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class SerialiserTest : public ::testing::Test {
 protected:
  SerialiserTest() : blocks_(4068, 1 << 16), pages_(&blocks_) {}

  BlockNo Put(const Page& page) {
    auto head = pages_.WritePage(page);
    EXPECT_TRUE(head.ok());
    return *head;
  }

  Page Leaf(std::string_view data, BlockNo base = kNilRef) {
    Page page;
    page.kind = PageKind::kPlain;
    page.base_ref = base;
    page.data = Bytes(data);
    return page;
  }

  // A version page (root) whose refs are given.
  Page Root(std::vector<PageRef> refs, uint8_t root_flags, std::string_view data = "") {
    Page page;
    page.kind = PageKind::kVersion;
    page.root_flags = NormalizeFlags(root_flags);
    page.refs = std::move(refs);
    page.data = Bytes(data);
    return page;
  }

  Serialiser MakeSerialiser() {
    return Serialiser(&pages_, [this](BlockNo bno) { return pages_.ReadPage(bno); });
  }

  // Runs TestAndMerge with persisted b root; returns (ok, merged root).
  std::pair<Result<bool>, Page> Run(Page b_root, const Page& c_root) {
    BlockNo b_head = Put(b_root);
    BlockNo c_head = Put(c_root);
    Serialiser serialiser = MakeSerialiser();
    auto verdict = serialiser.TestAndMerge(b_head, &b_root, c_head);
    return {std::move(verdict), b_root};
  }

  InMemoryBlockStore blocks_;
  PageStore pages_;
};

constexpr uint8_t kC = RefFlag::kCopied;
constexpr uint8_t kR = RefFlag::kCopied | RefFlag::kRead;
constexpr uint8_t kW = RefFlag::kCopied | RefFlag::kWritten;
constexpr uint8_t kS = RefFlag::kCopied | RefFlag::kSearched;
constexpr uint8_t kM = RefFlag::kCopied | RefFlag::kSearched | RefFlag::kModified;

TEST_F(SerialiserTest, DisjointWritesGraftCommittedSide) {
  BlockNo shared0 = Put(Leaf("old0"));
  BlockNo shared1 = Put(Leaf("old1"));
  // V.b wrote a copy of leaf 1; V.c wrote a copy of leaf 0.
  BlockNo b1 = Put(Leaf("b-new1", shared1));
  BlockNo c0 = Put(Leaf("c-new0", shared0));
  Page b = Root({{shared0, 0}, {b1, kW}}, kC | RefFlag::kSearched);
  Page c = Root({{c0, kW}, {shared1, 0}}, kC | RefFlag::kSearched);
  auto [ok, merged] = Run(b, c);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  // Merged tree: c's written leaf grafted at 0 (as shared content — the graft's flags are
  // cleared because those writes are V.c's, recorded in V.c's own tree), b's kept at 1.
  EXPECT_EQ(merged.refs[0].block, c0);
  EXPECT_EQ(merged.refs[0].flags, 0);
  EXPECT_EQ(merged.refs[1].block, b1);
  EXPECT_TRUE(merged.refs[1].written());
}

TEST_F(SerialiserTest, ReadVsWriteConflictDetected) {
  BlockNo shared = Put(Leaf("v"));
  BlockNo b_copy = Put(Leaf("v", shared));  // b only read it (copy for flag init)
  BlockNo c_copy = Put(Leaf("c!", shared));
  Page b = Root({{b_copy, kR}}, kS);
  Page c = Root({{c_copy, kW}}, kS);
  auto [ok, merged] = Run(b, c);
  (void)merged;
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

TEST_F(SerialiserTest, BlindWriteWriteMergesToCommitterData) {
  BlockNo shared = Put(Leaf("orig"));
  BlockNo b_copy = Put(Leaf("b-data", shared));
  BlockNo c_copy = Put(Leaf("c-data", shared));
  Page b = Root({{b_copy, kW}}, kS);
  Page c = Root({{c_copy, kW}}, kS);
  auto [ok, merged] = Run(b, c);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  // V.b serialises after V.c: b's blind write wins, b's page stays.
  EXPECT_EQ(merged.refs[0].block, b_copy);
  EXPECT_EQ(pages_.ReadPage(b_copy)->data, Bytes("b-data"));
}

TEST_F(SerialiserTest, RootDataAdoptedWhenOnlyCommittedWroteIt) {
  Page b = Root({}, kC, "b-did-not-touch");
  b.data = Bytes("base data");
  Page c = Root({}, kC | RefFlag::kWritten, "c wrote this");
  auto [ok, merged] = Run(b, c);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  EXPECT_EQ(merged.data, Bytes("c wrote this"));
}

TEST_F(SerialiserTest, RootReadVsRootWriteConflicts) {
  Page b = Root({}, kC | RefFlag::kRead);
  Page c = Root({}, kC | RefFlag::kWritten, "new");
  auto [ok, merged] = Run(b, c);
  (void)merged;
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

TEST_F(SerialiserTest, CommittedRestructureAdoptedWhenUncommittedNeverSearched) {
  BlockNo c_child = Put(Leaf("inserted"));
  Page b = Root({}, kC | RefFlag::kWritten, "b data");  // b only wrote root data
  Page c = Root({{c_child, kW}}, kC | RefFlag::kSearched | RefFlag::kModified);
  auto [ok, merged] = Run(b, c);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  // c's new reference table adopted wholesale; b's data kept.
  ASSERT_EQ(merged.refs.size(), 1u);
  EXPECT_EQ(merged.refs[0].block, c_child);
  EXPECT_EQ(merged.data, Bytes("b data"));
}

TEST_F(SerialiserTest, SearchVsModifyConflicts) {
  BlockNo b_child = Put(Leaf("x"));
  BlockNo c_child = Put(Leaf("y"));
  Page b = Root({{b_child, kR}}, kS);                       // b searched the root's refs
  Page c = Root({{c_child, kW}, {c_child, 0}}, kM);         // c restructured them
  auto [ok, merged] = Run(b, c);
  (void)merged;
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

TEST_F(SerialiserTest, BothModifyConflicts) {
  Page b = Root({}, kM);
  Page c = Root({}, kM);
  auto [ok, merged] = Run(b, c);
  (void)merged;
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

TEST_F(SerialiserTest, UncommittedRestructureKeptWhenCommittedOnlyWroteData) {
  BlockNo b_child = Put(Leaf("b inserted"));
  Page b = Root({{b_child, kW}}, kM);
  Page c = Root({}, kC | RefFlag::kWritten, "c data");
  auto [ok, merged] = Run(b, c);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  ASSERT_EQ(merged.refs.size(), 1u);
  EXPECT_EQ(merged.refs[0].block, b_child);
  EXPECT_EQ(merged.data, Bytes("c data"));  // adopted: b never touched root data
}

TEST_F(SerialiserTest, DeepConflictFoundThroughSharedInterior) {
  // Both sides copied the same interior page; the conflict is one level down.
  BlockNo leaf = Put(Leaf("deep"));
  BlockNo b_leaf_copy = Put(Leaf("deep", leaf));
  BlockNo c_leaf_copy = Put(Leaf("changed", leaf));
  Page b_mid;
  b_mid.refs = {{b_leaf_copy, kR}};
  Page c_mid;
  c_mid.refs = {{c_leaf_copy, kW}};
  BlockNo b_mid_head = Put(b_mid);
  BlockNo c_mid_head = Put(c_mid);
  Page b = Root({{b_mid_head, kS}}, kS);
  Page c = Root({{c_mid_head, kS}}, kS);
  auto [ok, merged] = Run(b, c);
  (void)merged;
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
}

TEST_F(SerialiserTest, DeepDisjointMergeRewritesInteriorInPlace) {
  BlockNo b_leaf = Put(Leaf("b-wrote"));
  BlockNo c_leaf = Put(Leaf("c-wrote"));
  Page b_mid;
  b_mid.refs = {{b_leaf, kW}, {kNilRef, 0}};
  Page c_mid;
  c_mid.refs = {{kNilRef, 0}, {c_leaf, kW}};
  // Align the two mid pages: both are copies of the same base mid page.
  BlockNo b_mid_head = Put(b_mid);
  BlockNo c_mid_head = Put(c_mid);
  Page b = Root({{b_mid_head, kS}}, kS);
  Page c = Root({{c_mid_head, kS}}, kS);
  auto [ok, merged] = Run(b, c);
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(*ok);
  // b's interior page was merged in place: slot 1 now grafts c's leaf.
  auto merged_mid = pages_.ReadPage(merged.refs[0].block);
  ASSERT_TRUE(merged_mid.ok());
  EXPECT_EQ(merged_mid->refs[0].block, b_leaf);
  EXPECT_EQ(merged_mid->refs[1].block, c_leaf);
}

TEST_F(SerialiserTest, MergedTreeKeepsOnlyOwnFlags) {
  BlockNo b_leaf = Put(Leaf("b"));
  BlockNo c_leaf = Put(Leaf("c"));
  Page b_mid;
  b_mid.refs = {{b_leaf, kW}};
  Page c_mid;
  c_mid.refs = {{c_leaf, 0}};
  c_mid.data = Bytes("c mid data");
  BlockNo b_mid_head = Put(b_mid);
  BlockNo c_mid_head = Put(c_mid);
  Page b = Root({{b_mid_head, kS}}, kS);
  Page c = Root({{c_mid_head, static_cast<uint8_t>(kS | RefFlag::kWritten)}}, kS);
  auto [ok, merged] = Run(b, c);
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(*ok);
  // The merged reference keeps V.b's own flags (S, from its descent); V.c's W is NOT
  // inherited — later committers test against V.c's own tree on their chain walk.
  EXPECT_TRUE(merged.refs[0].searched());
  EXPECT_FALSE(merged.refs[0].written());
  EXPECT_TRUE(FlagsValid(merged.refs[0].flags));
  // And c's mid-page data was adopted (b never wrote that page's data).
  EXPECT_EQ(pages_.ReadPage(merged.refs[0].block)->data, Bytes("c mid data"));
}

TEST_F(SerialiserTest, UntouchedSidesNeverVisited) {
  // A wide root where only one slot was accessed on each side: visits must stay small.
  std::vector<PageRef> b_refs(100), c_refs(100);
  for (int i = 0; i < 100; ++i) {
    BlockNo shared = Put(Leaf("s" + std::to_string(i)));
    b_refs[i] = {shared, 0};
    c_refs[i] = {shared, 0};
  }
  b_refs[7] = {Put(Leaf("b")), kW};
  c_refs[63] = {Put(Leaf("c")), kW};
  Page b = Root(b_refs, kS);
  Page c = Root(c_refs, kS);
  BlockNo b_head = Put(b);
  BlockNo c_head = Put(c);
  Serialiser serialiser = MakeSerialiser();
  auto ok = serialiser.TestAndMerge(b_head, &b, c_head);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  // Only the two roots were visited; no leaf was loaded.
  EXPECT_EQ(serialiser.pages_visited(), 1u);
}

TEST_F(SerialiserTest, MismatchedTablesWithoutModifyFlagIsCorruption) {
  Page b = Root({{Put(Leaf("x")), kW}}, kS);
  Page c = Root({}, kS);
  auto [ok, merged] = Run(b, c);
  (void)merged;
  EXPECT_FALSE(ok.ok());
  EXPECT_EQ(ok.status().code(), ErrorCode::kCorrupt);
}

}  // namespace
}  // namespace afs
