// Super-file tests (paper §5.3, Figure 2): sub-files nested in super-files, top/inner
// locks, exclusive super-file updates, undisturbed small-file concurrency, soft locks, and
// the relaxed-locking option.

#include <gtest/gtest.h>

#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class SuperFileTest : public ::testing::Test {
 protected:
  // Creates super-file with `n` sub-files at root indices 0..n-1, each holding "subN".
  Capability MakeSuper(int n, std::vector<Capability>* subs) {
    auto super = cluster_.fs().CreateFile();
    auto v = cluster_.fs().CreateVersion(*super, kNullPort, false);
    for (int i = 0; i < n; ++i) {
      auto sub = cluster_.fs().CreateSubFile(*v, PagePath::Root(), i);
      EXPECT_TRUE(sub.ok()) << sub.status();
      subs->push_back(*sub);
    }
    EXPECT_TRUE(cluster_.fs().Commit(*v).ok());
    // Give each sub-file initial content through its own small-file update.
    for (int i = 0; i < n; ++i) {
      auto sv = cluster_.fs().CreateVersion((*subs)[i], kNullPort, false);
      EXPECT_TRUE(sv.ok()) << sv.status();
      EXPECT_TRUE(
          cluster_.fs().WritePage(*sv, PagePath::Root(), Bytes("sub" + std::to_string(i)))
              .ok());
      EXPECT_TRUE(cluster_.fs().Commit(*sv).ok());
    }
    return *super;
  }

  FastCluster cluster_;
};

TEST_F(SuperFileTest, CreateSubFileMarksSuper) {
  auto super = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*super, kNullPort, false);
  auto sub = cluster_.fs().CreateSubFile(*v, PagePath::Root(), 0);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  auto stat = cluster_.fs().FileStat(*super);
  ASSERT_TRUE(stat.ok());
  EXPECT_TRUE(stat->is_super);
  auto sub_stat = cluster_.fs().FileStat(*sub);
  ASSERT_TRUE(sub_stat.ok());
  EXPECT_FALSE(sub_stat->is_super);
}

TEST_F(SuperFileTest, SubFileUpdatableAsSmallFile) {
  auto super = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*super, kNullPort, false);
  auto sub = cluster_.fs().CreateSubFile(*v, PagePath::Root(), 0);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());

  auto sv = cluster_.fs().CreateVersion(*sub, kNullPort, false);
  ASSERT_TRUE(sv.ok()) << sv.status();
  ASSERT_TRUE(cluster_.fs().WritePage(*sv, PagePath::Root(), Bytes("hello sub")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*sv).ok());
  auto current = cluster_.fs().GetCurrentVersion(*sub);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath::Root(), false)->data,
            Bytes("hello sub"));
}

TEST_F(SuperFileTest, SubFileLockedDuringEnclosingUpdate) {
  // A freshly created sub-file is inner-locked until the super-file update commits.
  auto super = cluster_.fs().CreateFile();
  auto v = cluster_.fs().CreateVersion(*super, kNullPort, false);
  auto sub = cluster_.fs().CreateSubFile(*v, PagePath::Root(), 0);
  ASSERT_TRUE(sub.ok());
  // Updating the sub-file while the super-file update is open must block (kLocked).
  auto sv = cluster_.fs().CreateVersion(*sub, kNullPort, false);
  EXPECT_EQ(sv.status().code(), ErrorCode::kLocked);
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  // After the commit the inner lock is cleared.
  auto sv2 = cluster_.fs().CreateVersion(*sub, kNullPort, false);
  EXPECT_TRUE(sv2.ok()) << sv2.status();
}

TEST_F(SuperFileTest, SuperUpdateThroughSubFilePages) {
  // A super-file update descends THROUGH sub-file version pages (inner-locking them),
  // and after commit the sub-files' own chains advance.
  std::vector<Capability> subs;
  Capability super = MakeSuper(2, &subs);

  auto v = cluster_.fs().CreateVersion(super, kNullPort, false);
  ASSERT_TRUE(v.ok()) << v.status();
  // Path /0 is sub 0's version page; write its root data through the super-file update.
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("via super")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());

  // The sub-file's CURRENT version must now show the super-file's write.
  auto current = cluster_.fs().GetCurrentVersion(subs[0]);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath::Root(), false)->data,
            Bytes("via super"));
  // Sub 1 was not touched.
  auto current1 = cluster_.fs().GetCurrentVersion(subs[1]);
  EXPECT_EQ(cluster_.fs().ReadPage(*current1, PagePath::Root(), false)->data, Bytes("sub1"));
  // And the sub-file's committed chain grew (its commit reference was set by
  // FinishSuperCommit).
  EXPECT_EQ(cluster_.fs().FileStat(subs[0])->committed_versions, 3u);
  EXPECT_EQ(cluster_.fs().FileStat(subs[1])->committed_versions, 2u);
}

TEST_F(SuperFileTest, ExclusiveSuperFileUpdates) {
  // "Before a version may be created, the version block for the current version must be
  // locked" — a second super-file update waits (kLocked).
  std::vector<Capability> subs;
  Capability super = MakeSuper(1, &subs);
  Port owner1 = cluster_.net().AllocatePort();
  Port owner2 = cluster_.net().AllocatePort();
  auto v1 = cluster_.fs().CreateVersion(super, owner1, false);
  ASSERT_TRUE(v1.ok()) << v1.status();
  auto v2 = cluster_.fs().CreateVersion(super, owner2, false);
  EXPECT_EQ(v2.status().code(), ErrorCode::kLocked);
  ASSERT_TRUE(cluster_.fs().Commit(*v1).ok());
  auto v3 = cluster_.fs().CreateVersion(super, owner2, false);
  EXPECT_TRUE(v3.ok()) << v3.status();
}

TEST_F(SuperFileTest, SmallFileConcurrencyUnaffectedBySuperSiblings) {
  // "Full concurrent update remains possible on small files" — two sub-files update in
  // parallel while no super-file update is in progress.
  std::vector<Capability> subs;
  Capability super = MakeSuper(2, &subs);
  auto sv0 = cluster_.fs().CreateVersion(subs[0], kNullPort, false);
  auto sv1 = cluster_.fs().CreateVersion(subs[1], kNullPort, false);
  ASSERT_TRUE(sv0.ok());
  ASSERT_TRUE(sv1.ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*sv0, PagePath::Root(), Bytes("p")).ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*sv1, PagePath::Root(), Bytes("q")).ok());
  EXPECT_TRUE(cluster_.fs().Commit(*sv0).ok());
  EXPECT_TRUE(cluster_.fs().Commit(*sv1).ok());
}

TEST_F(SuperFileTest, SuperUpdateWaitsOnSubFileTopLock) {
  // "If an update, while descending the page tree, discovers a top lock, it must wait."
  std::vector<Capability> subs;
  Capability super = MakeSuper(1, &subs);
  Port sub_owner = cluster_.net().AllocatePort();
  auto sub_update = cluster_.fs().CreateVersion(subs[0], sub_owner, false);
  ASSERT_TRUE(sub_update.ok());
  // The super update tries to descend into the sub-file whose top lock is set.
  Port super_owner = cluster_.net().AllocatePort();
  auto v = cluster_.fs().CreateVersion(super, super_owner, false);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("blocked")).code(),
            ErrorCode::kLocked);
  // Once the small-file update commits, the super-file update can proceed.
  ASSERT_TRUE(cluster_.fs().Commit(*sub_update).ok());
  EXPECT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("through")).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  auto current = cluster_.fs().GetCurrentVersion(subs[0]);
  EXPECT_EQ(cluster_.fs().ReadPage(*current, PagePath::Root(), false)->data, Bytes("through"));
}

TEST_F(SuperFileTest, InnerLockBlocksSmallFileUpdate) {
  // While a super-file update has visited (inner-locked) a sub-file, small-file updates of
  // that sub-file wait; unvisited sub-files stay updatable.
  std::vector<Capability> subs;
  Capability super = MakeSuper(2, &subs);
  Port owner = cluster_.net().AllocatePort();
  auto v = cluster_.fs().CreateVersion(super, owner, false);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("locking sub0")).ok());
  // Sub 0 is inner-locked.
  EXPECT_EQ(cluster_.fs().CreateVersion(subs[0], kNullPort, false).status().code(),
            ErrorCode::kLocked);
  // "sub-files, not accessed by an update, are not locked and therefore accessible."
  auto sv1 = cluster_.fs().CreateVersion(subs[1], kNullPort, false);
  ASSERT_TRUE(sv1.ok()) << sv1.status();
  ASSERT_TRUE(cluster_.fs().WritePage(*sv1, PagePath::Root(), Bytes("free")).ok());
  EXPECT_TRUE(cluster_.fs().Commit(*sv1).ok());
  ASSERT_TRUE(cluster_.fs().Commit(*v).ok());
  // After the super commit, sub 0 is updatable again.
  EXPECT_TRUE(cluster_.fs().CreateVersion(subs[0], kNullPort, false).ok());
}

TEST_F(SuperFileTest, AbortClearsAllLocks) {
  std::vector<Capability> subs;
  Capability super = MakeSuper(1, &subs);
  Port owner = cluster_.net().AllocatePort();
  auto v = cluster_.fs().CreateVersion(super, owner, false);
  ASSERT_TRUE(cluster_.fs().WritePage(*v, PagePath({0}), Bytes("nope")).ok());
  ASSERT_TRUE(cluster_.fs().Abort(*v).ok());
  // Sub-file and super-file both updatable again.
  EXPECT_TRUE(cluster_.fs().CreateVersion(subs[0], kNullPort, false).ok());
  Port owner2 = cluster_.net().AllocatePort();
  EXPECT_TRUE(cluster_.fs().CreateVersion(super, owner2, false).ok());
}

TEST_F(SuperFileTest, SoftLockDefersCooperatingUpdate) {
  // §5.3: "it is possible to use top locks on small files as hints."
  auto file = cluster_.fs().CreateFile();
  Port owner = cluster_.net().AllocatePort();
  auto v1 = cluster_.fs().CreateVersion(*file, owner, false);
  ASSERT_TRUE(v1.ok());
  // A respectful update defers; an ordinary one barges ahead (optimistically).
  EXPECT_EQ(cluster_.fs().CreateVersion(*file, kNullPort, true).status().code(),
            ErrorCode::kLocked);
  EXPECT_TRUE(cluster_.fs().CreateVersion(*file, kNullPort, false).ok());
}

TEST_F(SuperFileTest, RelaxedSuperfileLockingAllowsConcurrentVersions) {
  // §5.3: "The rules for creating a version may be relaxed... The optimistic concurrency
  // control which still lurks underneath this locking mechanism will see to it that no
  // harm is done."
  FileServerOptions options;
  options.relaxed_superfile_locking = true;
  FastCluster relaxed(options);
  auto super = relaxed.fs().CreateFile();
  auto v0 = relaxed.fs().CreateVersion(*super, kNullPort, false);
  auto sub = relaxed.fs().CreateSubFile(*v0, PagePath::Root(), 0);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(relaxed.fs().Commit(*v0).ok());

  Port o1 = relaxed.net().AllocatePort();
  Port o2 = relaxed.net().AllocatePort();
  auto v1 = relaxed.fs().CreateVersion(*super, o1, false);
  ASSERT_TRUE(v1.ok());
  auto v2 = relaxed.fs().CreateVersion(*super, o2, false);
  ASSERT_TRUE(v2.ok()) << v2.status();  // would be kLocked under strict rules
  // Disjoint root-data updates: first committer wins; second merges or conflicts, but
  // never corrupts.
  ASSERT_TRUE(relaxed.fs().WritePage(*v1, PagePath::Root(), Bytes("one")).ok());
  ASSERT_TRUE(relaxed.fs().Commit(*v1).ok());
  auto second = relaxed.fs().Commit(*v2);
  if (second.ok()) {
    SUCCEED();
  } else {
    EXPECT_EQ(second.status().code(), ErrorCode::kConflict);
  }
}

}  // namespace
}  // namespace afs
