// Unit tests for src/base: Status/Result, capabilities, CRC32C, RNG, wire format.

#include <gtest/gtest.h>

#include "src/base/capability.h"
#include "src/base/crc32.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/wire.h"

namespace afs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ConflictError("version superseded");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kConflict);
  EXPECT_EQ(s.ToString(), "CONFLICT: version superseded");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (uint32_t code = 0; code <= 14; ++code) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, OkStatusIntoResultIsInternalError) {
  Result<int> r = OkStatus();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInternal);
}

Result<int> Doubler(Result<int> in) {
  ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(TimeoutError("late")).status().code(), ErrorCode::kTimeout);
}

TEST(CapabilityTest, SignVerifyRoundTrip) {
  CapabilitySigner signer(7, 0xdeadbeef);
  Capability cap = signer.Sign(123, Rights::kRead | Rights::kWrite);
  EXPECT_TRUE(signer.Verify(cap, Rights::kRead).ok());
  EXPECT_TRUE(signer.Verify(cap, Rights::kRead | Rights::kWrite).ok());
}

TEST(CapabilityTest, MissingRightsRejected) {
  CapabilitySigner signer(7, 0xdeadbeef);
  Capability cap = signer.Sign(123, Rights::kRead);
  EXPECT_EQ(signer.Verify(cap, Rights::kWrite).code(), ErrorCode::kBadCapability);
}

TEST(CapabilityTest, ForgedCheckRejected) {
  CapabilitySigner signer(7, 0xdeadbeef);
  Capability cap = signer.Sign(123, Rights::kRead);
  cap.check ^= 1;
  EXPECT_EQ(signer.Verify(cap, Rights::kRead).code(), ErrorCode::kBadCapability);
}

TEST(CapabilityTest, RightsAmplificationRejected) {
  CapabilitySigner signer(7, 0xdeadbeef);
  Capability cap = signer.Sign(123, Rights::kRead);
  cap.rights = Rights::kAll;  // forged amplification: check no longer matches
  EXPECT_EQ(signer.Verify(cap, Rights::kRead).code(), ErrorCode::kBadCapability);
}

TEST(CapabilityTest, RestrictProducesVerifiableSubset) {
  CapabilitySigner signer(7, 0xdeadbeef);
  Capability cap = signer.Sign(123, Rights::kAll);
  auto restricted = signer.Restrict(cap, Rights::kRead);
  ASSERT_TRUE(restricted.ok());
  EXPECT_TRUE(signer.Verify(*restricted, Rights::kRead).ok());
  EXPECT_EQ(signer.Verify(*restricted, Rights::kWrite).code(), ErrorCode::kBadCapability);
}

TEST(CapabilityTest, RestrictCannotAmplify) {
  CapabilitySigner signer(7, 0xdeadbeef);
  Capability cap = signer.Sign(123, Rights::kRead);
  EXPECT_FALSE(signer.Restrict(cap, Rights::kAll).ok());
}

TEST(CapabilityTest, VerifyObjectIgnoresPortField) {
  CapabilitySigner signer(0, 0xdeadbeef);
  Capability cap = signer.Sign(5, Rights::kRead);
  cap.port = 9999;  // routing hint, not signed
  EXPECT_TRUE(signer.VerifyObject(cap, Rights::kRead).ok());
  EXPECT_FALSE(signer.Verify(cap, Rights::kRead).ok());
}

TEST(CapabilityTest, DifferentSecretsRejectEachOther) {
  CapabilitySigner a(7, 1);
  CapabilitySigner b(7, 2);
  Capability cap = a.Sign(123, Rights::kRead);
  EXPECT_FALSE(b.Verify(cap, Rights::kRead).ok());
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283.
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(s, 9), 0xE3069283u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(512, 0xab);
  uint32_t before = Crc32c(data.data(), data.size());
  data[100] ^= 0x01;
  EXPECT_NE(before, Crc32c(data.data(), data.size()));
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(Crc32c(nullptr, 0), 0u); }

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(WireTest, ScalarRoundTrip) {
  WireEncoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0xbeef);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefull);
  WireDecoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU8(), 0xab);
  EXPECT_EQ(*dec.GetU16(), 0xbeef);
  EXPECT_EQ(*dec.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789abcdefull);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(WireTest, BytesAndStringRoundTrip) {
  WireEncoder enc;
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  enc.PutBytes(payload);
  enc.PutString("hello");
  WireDecoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetBytes(), payload);
  EXPECT_EQ(*dec.GetString(), "hello");
}

TEST(WireTest, CapabilityRoundTrip) {
  Capability cap{12, 34, 56, 78};
  WireEncoder enc;
  enc.PutCapability(cap);
  EXPECT_EQ(enc.size(), 28u);  // the fixed wire size page headers rely on
  WireDecoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetCapability(), cap);
}

TEST(WireTest, TruncatedReadFailsCleanly) {
  WireEncoder enc;
  enc.PutU16(7);
  WireDecoder dec(enc.buffer());
  EXPECT_FALSE(dec.GetU32().ok());
}

TEST(WireTest, TruncatedBytesLengthFailsCleanly) {
  WireEncoder enc;
  enc.PutU32(1000);  // claims 1000 bytes, provides none
  WireDecoder dec(enc.buffer());
  EXPECT_EQ(dec.GetBytes().status().code(), ErrorCode::kCorrupt);
}

TEST(WireTest, OwningDecoderSurvivesMove) {
  WireEncoder enc;
  enc.PutString("payload");
  WireDecoder dec(std::move(enc).Take());
  WireDecoder moved = std::move(dec);
  EXPECT_EQ(*moved.GetString(), "payload");
}

TEST(Mix64Test, InjectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    seen.insert(Mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace afs
