// Baseline comparator tests: the locking file server (two-phase file locks, undo-log
// rollback recovery) and the timestamp server (basic timestamp ordering).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/baseline/locking_server.h"
#include "src/baseline/timestamp_server.h"
#include "src/block/block_store.h"
#include "src/rpc/network.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class LockingTest : public ::testing::Test {
 protected:
  LockingTest() : net_(21), blocks_(4068, 1 << 16), server_(&net_, "locking", &blocks_) {
    server_.Start();
  }

  Network net_;
  InMemoryBlockStore blocks_;
  LockingFileServer server_;
};

TEST_F(LockingTest, WriteCommitRead) {
  auto file = server_.CreateFile(4);
  ASSERT_TRUE(file.ok());
  auto tx = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE(server_.OpenFile(*tx, *file, true).ok());
  ASSERT_TRUE(server_.Write(*tx, *file, 0, Bytes("locked write")).ok());
  ASSERT_TRUE(server_.Commit(*tx).ok());

  auto tx2 = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*tx2, *file, false).ok());
  EXPECT_EQ(*server_.Read(*tx2, *file, 0), Bytes("locked write"));
  ASSERT_TRUE(server_.Commit(*tx2).ok());
}

TEST_F(LockingTest, WriterExcludesWriter) {
  auto file = server_.CreateFile(1);
  auto tx1 = server_.Begin(net_.AllocatePort());
  auto tx2 = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*tx1, *file, true).ok());
  EXPECT_EQ(server_.OpenFile(*tx2, *file, true).code(), ErrorCode::kLocked);
  ASSERT_TRUE(server_.Commit(*tx1).ok());
  EXPECT_TRUE(server_.OpenFile(*tx2, *file, true).ok());
}

TEST_F(LockingTest, ReadersShareWritersExclude) {
  auto file = server_.CreateFile(1);
  auto r1 = server_.Begin(net_.AllocatePort());
  auto r2 = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*r1, *file, false).ok());
  ASSERT_TRUE(server_.OpenFile(*r2, *file, false).ok());
  auto w = server_.Begin(net_.AllocatePort());
  EXPECT_EQ(server_.OpenFile(*w, *file, true).code(), ErrorCode::kLocked);
  ASSERT_TRUE(server_.Commit(*r1).ok());
  ASSERT_TRUE(server_.Commit(*r2).ok());
  EXPECT_TRUE(server_.OpenFile(*w, *file, true).ok());
}

TEST_F(LockingTest, UnopenedAccessRejected) {
  auto file = server_.CreateFile(1);
  auto tx = server_.Begin(net_.AllocatePort());
  EXPECT_EQ(server_.Read(*tx, *file, 0).status().code(), ErrorCode::kLocked);
  EXPECT_EQ(server_.Write(*tx, *file, 0, Bytes("x")).code(), ErrorCode::kLocked);
}

TEST_F(LockingTest, AbortRollsBackInPlaceWrites) {
  auto file = server_.CreateFile(1);
  {
    auto tx = server_.Begin(net_.AllocatePort());
    ASSERT_TRUE(server_.OpenFile(*tx, *file, true).ok());
    ASSERT_TRUE(server_.Write(*tx, *file, 0, Bytes("committed")).ok());
    ASSERT_TRUE(server_.Commit(*tx).ok());
  }
  auto tx = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*tx, *file, true).ok());
  ASSERT_TRUE(server_.Write(*tx, *file, 0, Bytes("scratched")).ok());
  ASSERT_TRUE(server_.Abort(*tx).ok());
  auto reader = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*reader, *file, false).ok());
  EXPECT_EQ(*server_.Read(*reader, *file, 0), Bytes("committed"));
}

TEST_F(LockingTest, CrashRecoveryRollsBackUncommitted) {
  // The §3.1 contrast: the locking server must roll back before serving again, and the
  // rollback work grows with the crashed update.
  auto file = server_.CreateFile(8);
  {
    auto tx = server_.Begin(net_.AllocatePort());
    ASSERT_TRUE(server_.OpenFile(*tx, *file, true).ok());
    for (uint32_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(server_.Write(*tx, *file, i, Bytes("durable")).ok());
    }
    ASSERT_TRUE(server_.Commit(*tx).ok());
  }
  auto tx = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*tx, *file, true).ok());
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(server_.Write(*tx, *file, i, Bytes("torn!!!")).ok());
  }
  server_.Crash();
  server_.Restart();
  EXPECT_EQ(server_.last_recovery_rollbacks(), 8u);  // work proportional to the update
  auto reader = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*reader, *file, false).ok());
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(*server_.Read(*reader, *file, i), Bytes("durable"));
  }
}

TEST_F(LockingTest, CommittedDataSurvivesCrash) {
  auto file = server_.CreateFile(1);
  auto tx = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*tx, *file, true).ok());
  ASSERT_TRUE(server_.Write(*tx, *file, 0, Bytes("safe")).ok());
  ASSERT_TRUE(server_.Commit(*tx).ok());
  server_.Crash();
  server_.Restart();
  EXPECT_EQ(server_.last_recovery_rollbacks(), 0u);
  auto reader = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*reader, *file, false).ok());
  EXPECT_EQ(*server_.Read(*reader, *file, 0), Bytes("safe"));
}

TEST_F(LockingTest, DisjointPagesOfSameFileStillSerialize) {
  // The cost the paper's design avoids: page-disjoint updates of one file serialize
  // behind the file-level lock.
  auto file = server_.CreateFile(2);
  auto tx1 = server_.Begin(net_.AllocatePort());
  auto tx2 = server_.Begin(net_.AllocatePort());
  ASSERT_TRUE(server_.OpenFile(*tx1, *file, true).ok());
  EXPECT_EQ(server_.OpenFile(*tx2, *file, true).code(), ErrorCode::kLocked);
  EXPECT_GT(server_.lock_waits(), 0u);
  ASSERT_TRUE(server_.Commit(*tx1).ok());
}

class TimestampTest : public ::testing::Test {
 protected:
  TimestampTest() : net_(22), blocks_(4068, 1 << 16), server_(&net_, "ts", &blocks_) {
    server_.Start();
  }

  Network net_;
  InMemoryBlockStore blocks_;
  TimestampFileServer server_;
};

TEST_F(TimestampTest, WriteCommitRead) {
  auto file = server_.CreateFile(2);
  auto tx = server_.Begin();
  ASSERT_TRUE(server_.Write(*tx, *file, 0, Bytes("stamped")).ok());
  ASSERT_TRUE(server_.Commit(*tx).ok());
  auto tx2 = server_.Begin();
  EXPECT_EQ(*server_.Read(*tx2, *file, 0), Bytes("stamped"));
}

TEST_F(TimestampTest, ReadYourOwnBufferedWrites) {
  auto file = server_.CreateFile(1);
  auto tx = server_.Begin();
  ASSERT_TRUE(server_.Write(*tx, *file, 0, Bytes("mine")).ok());
  EXPECT_EQ(*server_.Read(*tx, *file, 0), Bytes("mine"));
}

TEST_F(TimestampTest, LateWriteAfterNewerReadAborts) {
  auto file = server_.CreateFile(1);
  auto old_tx = server_.Begin();
  auto new_tx = server_.Begin();
  ASSERT_TRUE(server_.Read(*new_tx, *file, 0).ok());  // read_ts = ts(new)
  EXPECT_EQ(server_.Write(*old_tx, *file, 0, Bytes("late")).code(), ErrorCode::kConflict);
  EXPECT_GT(server_.timestamp_aborts(), 0u);
}

TEST_F(TimestampTest, LateReadAfterNewerWriteAborts) {
  auto file = server_.CreateFile(1);
  auto old_tx = server_.Begin();
  auto new_tx = server_.Begin();
  ASSERT_TRUE(server_.Write(*new_tx, *file, 0, Bytes("newer")).ok());
  ASSERT_TRUE(server_.Commit(*new_tx).ok());
  EXPECT_EQ(server_.Read(*old_tx, *file, 0).status().code(), ErrorCode::kConflict);
}

TEST_F(TimestampTest, NonConflictingTransactionsBothCommit) {
  auto file = server_.CreateFile(2);
  auto t1 = server_.Begin();
  auto t2 = server_.Begin();
  ASSERT_TRUE(server_.Write(*t1, *file, 0, Bytes("a")).ok());
  ASSERT_TRUE(server_.Write(*t2, *file, 1, Bytes("b")).ok());
  EXPECT_TRUE(server_.Commit(*t1).ok());
  EXPECT_TRUE(server_.Commit(*t2).ok());
}

TEST_F(TimestampTest, AbortedTransactionCannotCommit) {
  auto file = server_.CreateFile(1);
  auto tx = server_.Begin();
  ASSERT_TRUE(server_.Write(*tx, *file, 0, Bytes("x")).ok());
  ASSERT_TRUE(server_.Abort(*tx).ok());
  EXPECT_FALSE(server_.Commit(*tx).ok());
  auto reader = server_.Begin();
  EXPECT_TRUE(server_.Read(*reader, *file, 0)->empty());
}

}  // namespace
}  // namespace afs
