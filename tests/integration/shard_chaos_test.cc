// Cross-shard atomicity chaos: seeded fault schedules against a 2-shard deployment
// driving 2-of-2-shard transactions, asserting the all-or-nothing invariant the two-phase
// commit exists for — two counters updated only together can NEVER read differently, no
// matter what the network drops, duplicates, or delays, and no matter which participant
// process bounces mid-run. Every schedule is reproducible from its seed alone (the network
// seed drives all random events).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/client/file_client.h"
#include "src/core/fsck.h"
#include "src/shard/router.h"
#include "src/shard/shard_fsck.h"
#include "tests/testing/shard_cluster.h"

namespace afs {
namespace {

Status CommitText(ShardCluster& cluster, const Capability& file, const std::string& text) {
  auto client = cluster.router().ClientForFile(file);
  RETURN_IF_ERROR(client.status());
  ASSIGN_OR_RETURN(Capability v, (*client)->CreateVersion(file));
  RETURN_IF_ERROR((*client)->WriteString(v, PagePath::Root(), text));
  return (*client)->Commit(v).status();
}

Result<int> ReadCounter(ShardCluster& cluster, const Capability& file) {
  auto client = cluster.router().ClientForFile(file);
  RETURN_IF_ERROR(client.status());
  ASSIGN_OR_RETURN(Capability current, (*client)->GetCurrentVersion(file));
  ASSIGN_OR_RETURN(std::string text, (*client)->ReadString(current, PagePath::Root()));
  return std::stoi(text);
}

// One 2-of-2-shard increment attempt: read both counters inside the transaction's private
// versions, write both +1, commit atomically. kConflict means redo (§6 discipline).
Status IncrementBoth(ShardCluster& cluster, const Capability& a, const Capability& b) {
  CrossTransaction xt(&cluster.router());
  ASSIGN_OR_RETURN(Capability va, xt.CreateVersion(a));
  ASSIGN_OR_RETURN(Capability vb, xt.CreateVersion(b));
  ASSIGN_OR_RETURN(auto ca, xt.Client(a));
  ASSIGN_OR_RETURN(auto cb, xt.Client(b));
  ASSIGN_OR_RETURN(std::string ta, ca->ReadString(va, PagePath::Root()));
  ASSIGN_OR_RETURN(std::string tb, cb->ReadString(vb, PagePath::Root()));
  RETURN_IF_ERROR(ca->WriteString(va, PagePath::Root(), std::to_string(std::stoi(ta) + 1)));
  RETURN_IF_ERROR(cb->WriteString(vb, PagePath::Root(), std::to_string(std::stoi(tb) + 1)));
  Result<std::vector<BlockNo>> heads = xt.Commit();
  if (!heads.ok()) {
    (void)xt.Abort();  // best effort; staged state is the coordinator's to clean up
    return heads.status();
  }
  return OkStatus();
}

// Runs `per_thread` cross-shard increments on each of `threads` workers, redoing each
// logical update until it commits. Returns the number that never committed (expected 0).
int RunCrossIncrementBatch(ShardCluster& cluster, const Capability& a, const Capability& b,
                           int threads, int per_thread, uint64_t seed) {
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        bool committed = false;
        for (int attempt = 0; attempt < 300 && !committed; ++attempt) {
          committed = IncrementBoth(cluster, a, b).ok();
          if (!committed) {
            // Seeded jittered backoff, so contending workers desynchronise.
            uint64_t jitter = (seed * 1315423911u + t * 2654435761u + attempt) % 97;
            std::this_thread::sleep_for(std::chrono::microseconds(50 + jitter * 10));
          }
        }
        if (!committed) {
          ++failures;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  return failures.load();
}

void ExpectAllOrNothing(ShardCluster& cluster, const Capability& a, const Capability& b,
                        int expected) {
  auto ca = ReadCounter(cluster, a);
  auto cb = ReadCounter(cluster, b);
  ASSERT_TRUE(ca.ok()) << ca.status();
  ASSERT_TRUE(cb.ok()) << cb.status();
  // The invariant under test: the counters move only together. A mismatch is a
  // half-committed cross-shard transaction — the exact failure 2PC must exclude.
  EXPECT_EQ(*ca, *cb) << "half-commit: shard0=" << *ca << " shard1=" << *cb;
  EXPECT_EQ(*ca, expected);
}

// The 20-seed fault bank: drops, duplicates, and reorder delays live under every prepare,
// decide, and data RPC while 2-of-2-shard transactions hammer both shards.
TEST(ShardChaosTest, FaultsNeverSplitACrossShardCommit) {
  for (uint64_t seed : {1,  2,  3,  4,  5,  6,  7,  8,  9,  10,
                        11, 12, 13, 14, 15, 16, 17, 18, 19, 20}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ShardCluster cluster(2, seed);
    auto a = cluster.router().CreateFileOn(0);
    auto b = cluster.router().CreateFileOn(1);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(CommitText(cluster, *a, "0").ok());
    ASSERT_TRUE(CommitText(cluster, *b, "0").ok());

    FaultInjection faults;
    faults.drop_request = 0.08;
    faults.drop_reply = 0.08;
    faults.duplicate_request = 0.04;
    faults.reorder_delay = 0.04;
    cluster.net().set_fault_injection(faults);

    constexpr int kThreads = 2;
    constexpr int kPerThread = 3;
    EXPECT_EQ(RunCrossIncrementBatch(cluster, *a, *b, kThreads, kPerThread, seed), 0);

    cluster.net().set_fault_injection(FaultInjection{});
    ExpectAllOrNothing(cluster, *a, *b, kThreads * kPerThread);

    // Every decision reached both shards: nothing is left staged, fsck is clean on each
    // shard even with the strict in-doubt gate.
    auto servers = cluster.Servers();
    ShardFsckReport report =
        RunShardFsck(servers, &cluster.log(), {.fail_on_in_doubt = true});
    EXPECT_TRUE(report.clean) << report.ToString();
    EXPECT_EQ(report.in_doubt, 0u);
  }
}

// Participant restarts between batches, layered over message faults: a bounced shard
// rejoins (re-discovering any in-doubt tips from disk) and the invariant holds across
// every round. In-doubt leftovers from transactions caught mid-flight by the bounce are
// resolved by the coordinator's recovery sweep, after which strict fsck must pass.
TEST(ShardChaosTest, ParticipantBouncesNeverSplitACrossShardCommit) {
  for (uint64_t seed : {31, 32, 33, 34, 35, 36}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ShardCluster cluster(2, seed);
    auto a = cluster.router().CreateFileOn(0);
    auto b = cluster.router().CreateFileOn(1);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(CommitText(cluster, *a, "0").ok());
    ASSERT_TRUE(CommitText(cluster, *b, "0").ok());

    FaultInjection faults;
    faults.drop_request = 0.05;
    faults.drop_reply = 0.05;
    cluster.net().set_fault_injection(faults);

    int committed = 0;
    for (int round = 0; round < 3; ++round) {
      EXPECT_EQ(RunCrossIncrementBatch(cluster, *a, *b, 2, 2, seed * 31 + round), 0);
      committed += 4;
      cluster.RestartShard(round % 2 == 0 ? 1 : 0);
      // Finish anything the bounce left in doubt before the next round's traffic.
      auto recovered = cluster.coord().RecoverInDoubt();
      ASSERT_TRUE(recovered.ok()) << recovered.status();
    }

    cluster.net().set_fault_injection(FaultInjection{});
    ExpectAllOrNothing(cluster, *a, *b, committed);
    auto servers = cluster.Servers();
    ShardFsckReport report =
        RunShardFsck(servers, &cluster.log(), {.fail_on_in_doubt = true});
    EXPECT_TRUE(report.clean) << report.ToString();
  }
}

}  // namespace
}  // namespace afs
