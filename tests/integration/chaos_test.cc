// Chaos harness: seeded randomized fault schedules against a full AFS deployment,
// asserting the exactly-once invariants the OCC design leans on (§2, §5.2):
//
//   * zero spurious client-visible failures — with at-most-once retransmission, injected
//     drops/duplicates must be invisible to callers (genuine crashes excepted),
//   * no committed update lost — a counter incremented N times reads back N,
//   * no double execution — non-idempotent ops (Alloc, commit test-and-set, lock acquire)
//     run exactly once per logical call: no leaked blocks, no stuck locks, no extra commits,
//   * the stable pair converges — after partitions/crashes heal and compare-notes runs,
//     either member alone serves every committed update.
//
// Every schedule is reproducible: the network seed drives all random events, and each
// failure message carries a one-line repro (see Repro()). Run a specific schedule with
//   ./tests/afs_chaos_tests --chaos_seed=<seed> [--gtest_filter=...]
// which appends <seed> to every test's seed bank.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/block/block_store.h"
#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/net/tcp_server.h"
#include "src/net/tcp_transport.h"
#include "src/rpc/network.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

// Set by --chaos_seed=<n> on the command line (satellite: reproducible chaos runs).
bool g_extra_seed_set = false;
uint64_t g_extra_seed = 0;

std::vector<uint64_t> SeedBank(std::initializer_list<uint64_t> fixed) {
  std::vector<uint64_t> seeds(fixed);
  if (g_extra_seed_set) {
    seeds.push_back(g_extra_seed);
  }
  return seeds;
}

std::string Describe(const FaultInjection& f) {
  return "drop_request=" + std::to_string(f.drop_request) +
         " drop_reply=" + std::to_string(f.drop_reply) +
         " duplicate=" + std::to_string(f.duplicate_request) +
         " reorder=" + std::to_string(f.reorder_delay);
}

// One-line repro printed with any failure under this scope.
std::string Repro(const char* test, uint64_t seed, const FaultInjection& faults,
                  const std::string& schedule) {
  return "chaos schedule [" + schedule + "; " + Describe(faults) +
         "] — reproduce with: ./tests/afs_chaos_tests --gtest_filter=ChaosTest." + test +
         " --chaos_seed=" + std::to_string(seed);
}

// Increment-a-counter transaction: the canonical lost/duplicated-update detector. The
// final counter value equals the number of successful transactions iff every logical
// update executed exactly once.
Status IncrementCounter(FileClient& c, const Capability& v) {
  ASSIGN_OR_RETURN(std::string text, c.ReadString(v, PagePath::Root()));
  return c.WriteString(v, PagePath::Root(), std::to_string(std::stoi(text) + 1));
}

// Runs `per_thread` increment transactions on each of `threads` client threads.
// Returns the number of failed transactions (expected: zero).
int RunIncrementBatch(FullCluster& cluster, const Capability& file, int threads,
                      int per_thread, uint64_t seed) {
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<Port> ports = cluster.FileServerPorts();
      std::rotate(ports.begin(), ports.begin() + (t % ports.size()), ports.end());
      FileClient local(&cluster.net(), ports);
      for (int i = 0; i < per_thread; ++i) {
        TransactionOptions options;
        options.max_attempts = 200;
        options.backoff_seed = seed * 131 + t * 31 + i;
        if (!RunTransaction(&local, file, IncrementCounter, options).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  return failures.load();
}

std::string ReadCounter(FullCluster& cluster, const Capability& file) {
  FileClient client(&cluster.net(), cluster.FileServerPorts());
  auto current = client.GetCurrentVersion(file);
  if (!current.ok()) {
    return "<GetCurrentVersion failed: " + current.status().message() + ">";
  }
  auto text = client.ReadString(*current, PagePath::Root());
  if (!text.ok()) {
    return "<ReadString failed: " + text.status().message() + ">";
  }
  return *text;
}

// The acceptance-criteria schedule: 10% independent request drops + 10% reply drops,
// plus duplicates and reorder delays, against a workload of non-idempotent operations.
TEST(ChaosTest, DropsAndDuplicatesAreInvisible) {
  for (uint64_t seed : SeedBank({1,  2,  3,  4,  5,  6,  7,  8,  9,  10,
                                 11, 12, 13, 14, 15, 16, 17, 18, 19, 20})) {
    FaultInjection faults;
    faults.drop_request = 0.10;
    faults.drop_reply = 0.10;
    faults.duplicate_request = 0.05;
    faults.reorder_delay = 0.05;
    SCOPED_TRACE(Repro("DropsAndDuplicatesAreInvisible", seed, faults,
                       "2 clients x 5 txns + alloc/lock storm"));

    FullCluster cluster(2, 1 << 12, {}, seed);
    FileClient client(&cluster.net(), cluster.FileServerPorts());
    auto file = client.CreateFile();
    ASSERT_TRUE(file.ok());
    cluster.net().set_fault_injection(faults);

    // Faults are live from here on; every operation below must still succeed.
    TransactionOptions options;
    options.backoff_seed = seed;
    ASSERT_TRUE(RunTransaction(
                    &client, *file,
                    [](FileClient& c, const Capability& v) {
                      return c.WriteString(v, PagePath::Root(), "0");
                    },
                    options)
                    .ok());

    constexpr int kThreads = 2;
    constexpr int kPerThread = 5;
    EXPECT_EQ(RunIncrementBatch(cluster, *file, kThreads, kPerThread, seed), 0);
    // Exactly-once: every committed increment counted, none lost, none applied twice.
    EXPECT_EQ(ReadCounter(cluster, *file), std::to_string(kThreads * kPerThread));

    // Alloc / write / lock / free storm straight at the stable pair — the ops the paper
    // calls out as unsafe to blindly retry. Faults stay on.
    auto before = cluster.store().ListBlocks();
    ASSERT_TRUE(before.ok());
    auto fresh = cluster.store().AllocMulti(16);
    ASSERT_TRUE(fresh.ok());
    // No double-allocation: 16 distinct fresh blocks, disjoint from the snapshot.
    std::vector<BlockNo> sorted_fresh = *fresh;
    std::sort(sorted_fresh.begin(), sorted_fresh.end());
    EXPECT_EQ(std::unique(sorted_fresh.begin(), sorted_fresh.end()), sorted_fresh.end());
    for (BlockNo bno : *fresh) {
      EXPECT_EQ(std::find(before->begin(), before->end(), bno), before->end()) << bno;
    }

    std::vector<BlockWrite> writes;
    for (size_t i = 0; i < fresh->size(); ++i) {
      writes.push_back({(*fresh)[i], std::vector<uint8_t>(100, static_cast<uint8_t>(i))});
    }
    ASSERT_TRUE(cluster.store().WriteBatch(writes).ok());
    auto readback = cluster.store().ReadMulti(*fresh);
    ASSERT_TRUE(readback.ok());
    for (size_t i = 0; i < fresh->size(); ++i) {
      ASSERT_TRUE((*readback)[i].status.ok()) << i;
      EXPECT_EQ((*readback)[i].data,
                std::vector<uint8_t>(100, static_cast<uint8_t>(i)));
    }

    // Lock acquire/release cycles: a duplicated acquire must not wedge the lock.
    Port owner = cluster.net().AllocatePort();
    for (BlockNo bno : *fresh) {
      EXPECT_TRUE(cluster.store().Lock(bno, owner).ok()) << bno;
      EXPECT_TRUE(cluster.store().Unlock(bno, owner).ok()) << bno;
    }
    // Every lock is free again: a fresh owner can take and release each one.
    Port other = cluster.net().AllocatePort();
    for (BlockNo bno : *fresh) {
      EXPECT_TRUE(cluster.store().Lock(bno, other).ok()) << bno;
      EXPECT_TRUE(cluster.store().Unlock(bno, other).ok()) << bno;
    }

    ASSERT_TRUE(cluster.store().FreeMulti(*fresh).ok());
    // No leaked blocks: a retransmitted Alloc that re-executed would still be allocated.
    auto after = cluster.store().ListBlocks();
    ASSERT_TRUE(after.ok());
    std::sort(before->begin(), before->end());
    std::sort(after->begin(), after->end());
    EXPECT_EQ(*before, *after) << "block leak: a non-idempotent op ran twice";

    // The machinery was actually exercised on this schedule.
    EXPECT_GT(cluster.net().retransmits(), 0u);
    cluster.net().set_fault_injection(FaultInjection{});
  }
}

// Partitions of one stable-pair member at a time, layered over message-level faults. The
// pair must fail over (observably), and after each heal + compare-notes bounce the
// workload continues with zero client-visible failures.
TEST(ChaosTest, PartitionsAreMaskedByFailover) {
  for (uint64_t seed : SeedBank({101, 102, 103, 104, 105, 106, 107, 108})) {
    FaultInjection faults;
    faults.drop_request = 0.05;
    faults.drop_reply = 0.05;
    faults.duplicate_request = 0.02;
    SCOPED_TRACE(Repro("PartitionsAreMaskedByFailover", seed, faults,
                       "4 rounds: partition one member -> txns -> heal -> bounce"));

    FullCluster cluster(2, 1 << 12, {}, seed);
    FileClient client(&cluster.net(), cluster.FileServerPorts());
    auto file = client.CreateFile();
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(RunTransaction(&client, *file, [](FileClient& c, const Capability& v) {
                  return c.WriteString(v, PagePath::Root(), "0");
                }).ok());
    cluster.net().set_fault_injection(faults);

    int total_txns = 0;
    for (int round = 0; round < 4; ++round) {
      BlockServer& victim = (round % 2 == 0) ? cluster.block_a() : cluster.block_b();
      cluster.net().SetPartitioned(victim.port(), true);
      // Direct traffic through the shared store exercises the failover path even if the
      // file servers' own stores already prefer the healthy member.
      EXPECT_TRUE(cluster.store().AllocWrite(std::vector<uint8_t>(8, 0xee)).ok());
      EXPECT_EQ(RunIncrementBatch(cluster, *file, 2, 2, seed * 17 + round), 0);
      total_txns += 4;
      cluster.net().SetPartitioned(victim.port(), false);
      // A healed member that missed writes serves stale data until it compares notes
      // with its companion — bounce it, as an operator would (docs/FAULTS.md).
      victim.Crash();
      victim.Restart();
    }

    EXPECT_EQ(ReadCounter(cluster, *file), std::to_string(total_txns));
    // The pair demonstrably failed over at some point in the run.
    EXPECT_GT(cluster.store().failovers(), 0u);
    EXPECT_GE(cluster.store().metrics()->gauge("stable.degraded")->max(), 1);
    cluster.net().set_fault_injection(FaultInjection{});
  }
}

// Crash one stable-pair member mid-workload, restart it (compare-notes), then lose the
// OTHER member for good: every committed update must be readable from the recovered
// member alone — the pair converged.
TEST(ChaosTest, StablePairConvergesAfterCrashRecovery) {
  for (uint64_t seed : SeedBank({201, 202, 203, 204, 205, 206, 207, 208})) {
    FaultInjection faults;
    faults.drop_request = 0.05;
    faults.drop_reply = 0.05;
    faults.duplicate_request = 0.02;
    SCOPED_TRACE(Repro("StablePairConvergesAfterCrashRecovery", seed, faults,
                       "txns -> crash B -> txns (degraded) -> restart B -> txns -> "
                       "crash A -> read through B alone"));

    FullCluster cluster(2, 1 << 12, {}, seed);
    FileClient client(&cluster.net(), cluster.FileServerPorts());
    auto file = client.CreateFile();
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(RunTransaction(&client, *file, [](FileClient& c, const Capability& v) {
                  return c.WriteString(v, PagePath::Root(), "0");
                }).ok());
    cluster.net().set_fault_injection(faults);

    EXPECT_EQ(RunIncrementBatch(cluster, *file, 2, 2, seed + 1), 0);

    const uint64_t degraded_before = cluster.block_a().degraded_writes();
    cluster.block_b().Crash();
    // A alone carries the load, recording intentions for B on every write.
    EXPECT_EQ(RunIncrementBatch(cluster, *file, 2, 2, seed + 2), 0);
    EXPECT_GT(cluster.block_a().degraded_writes(), degraded_before);

    cluster.block_b().Restart();  // compare notes with A, replay missed writes
    EXPECT_EQ(RunIncrementBatch(cluster, *file, 2, 2, seed + 3), 0);

    // Convergence: with A gone, B alone must serve every committed increment.
    cluster.block_a().Crash();
    EXPECT_EQ(ReadCounter(cluster, *file), "12");
    cluster.net().set_fault_injection(FaultInjection{});
  }
}

// ---------------------------------------------------------------------------
// The same harness over REAL sockets: a TcpServer in front of the cluster, faults
// injected by the TcpTransport's socket-path shim instead of the simulated network.
// Same seed banks, same invariants — the wire must not change the story (ISSUE 7).
// ---------------------------------------------------------------------------

// TCP flavour of RunIncrementBatch: each thread drives its own FileClient over the shared
// transport (client identities are per (transport, thread), so this also soaks the
// at-most-once stamping under concurrency).
int RunTcpIncrementBatch(Transport* transport, const std::vector<Port>& server_ports,
                         const Capability& file, int threads, int per_thread,
                         uint64_t seed) {
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<Port> ports = server_ports;
      std::rotate(ports.begin(), ports.begin() + (t % ports.size()), ports.end());
      FileClient local(transport, ports);
      for (int i = 0; i < per_thread; ++i) {
        TransactionOptions options;
        options.max_attempts = 200;
        options.backoff_seed = seed * 131 + t * 31 + i;
        if (!RunTransaction(&local, file, IncrementCounter, options).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  return failures.load();
}

TEST(ChaosTest, TcpShimDropsAndDuplicatesAreInvisible) {
  for (uint64_t seed : SeedBank({1,  2,  3,  4,  5,  6,  7,  8,  9,  10,
                                 11, 12, 13, 14, 15, 16, 17, 18, 19, 20})) {
    FaultInjection faults;
    faults.drop_request = 0.10;
    faults.drop_reply = 0.10;
    faults.duplicate_request = 0.05;
    faults.reorder_delay = 0.05;
    SCOPED_TRACE(Repro("TcpShimDropsAndDuplicatesAreInvisible", seed, faults,
                       "2 clients x 5 txns over TCP, faults on the socket shim"));

    // The inner network stays clean: every injected fault below happens at the socket
    // boundary, so what's being proven is the SHIM + at-most-once over real frames.
    FullCluster cluster(2, 1 << 12, {}, seed);
    net::TcpServer server(&cluster.net());
    for (int i = 0; i < cluster.num_file_servers(); ++i) {
      server.Expose(&cluster.fs(i), "fs" + std::to_string(i),
                    net::ServiceKind::kFileServer);
    }
    ASSERT_TRUE(server.Start().ok());
    net::TcpTransport::Options topt;
    topt.seed = seed;
    net::TcpTransport transport("127.0.0.1", server.port(), topt);

    FileClient client(&transport, cluster.FileServerPorts());
    auto file = client.CreateFile();
    ASSERT_TRUE(file.ok()) << file.status();
    transport.set_fault_injection(faults);

    TransactionOptions options;
    options.backoff_seed = seed;
    ASSERT_TRUE(RunTransaction(
                    &client, *file,
                    [](FileClient& c, const Capability& v) {
                      return c.WriteString(v, PagePath::Root(), "0");
                    },
                    options)
                    .ok());

    constexpr int kThreads = 2;
    constexpr int kPerThread = 5;
    EXPECT_EQ(RunTcpIncrementBatch(&transport, cluster.FileServerPorts(), *file, kThreads,
                                   kPerThread, seed),
              0);
    // Exactly-once across the wire: every increment committed once, despite the shim
    // dropping and duplicating real frames.
    transport.set_fault_injection(FaultInjection{});
    FileClient reader(&transport, cluster.FileServerPorts());
    auto current = reader.GetCurrentVersion(*file);
    ASSERT_TRUE(current.ok()) << current.status();
    auto text = reader.ReadString(*current, PagePath::Root());
    ASSERT_TRUE(text.ok()) << text.status();
    EXPECT_EQ(*text, std::to_string(kThreads * kPerThread));

    // The shim demonstrably fired on this schedule.
    EXPECT_GT(transport.retransmits(), 0u);
    EXPECT_GT(transport.dropped_calls() + transport.dropped_replies(), 0u);
  }
}

// Shim partitions: while a file server's port is partitioned at the socket boundary the
// client sees kUnavailable (never a retransmission storm); after healing, the workload
// resumes with nothing lost.
TEST(ChaosTest, TcpShimPartitionHealsCleanly) {
  for (uint64_t seed : SeedBank({301, 302, 303, 304})) {
    FaultInjection faults;
    faults.drop_request = 0.05;
    faults.drop_reply = 0.05;
    SCOPED_TRACE(Repro("TcpShimPartitionHealsCleanly", seed, faults,
                       "txns -> partition fs0 at the shim -> heal -> txns over TCP"));

    FullCluster cluster(2, 1 << 12, {}, seed);
    net::TcpServer server(&cluster.net());
    for (int i = 0; i < cluster.num_file_servers(); ++i) {
      server.Expose(&cluster.fs(i), "fs" + std::to_string(i),
                    net::ServiceKind::kFileServer);
    }
    ASSERT_TRUE(server.Start().ok());
    net::TcpTransport::Options topt;
    topt.seed = seed;
    net::TcpTransport transport("127.0.0.1", server.port(), topt);

    FileClient client(&transport, cluster.FileServerPorts());
    auto file = client.CreateFile();
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE(RunTransaction(&client, *file, [](FileClient& c, const Capability& v) {
                  return c.WriteString(v, PagePath::Root(), "0");
                }).ok());

    transport.set_fault_injection(faults);
    EXPECT_EQ(RunTcpIncrementBatch(&transport, cluster.FileServerPorts(), *file, 2, 2,
                                   seed + 1),
              0);

    // Partition fs0 at the shim: a DIRECT call to it is kUnavailable, immediately.
    Port fs0 = cluster.fs(0).port();
    transport.SetPartitioned(fs0, true);
    uint64_t retransmits_before = transport.retransmits();
    auto cut_off = FileClient(&transport, {fs0}).GetCurrentVersion(*file);
    EXPECT_EQ(cut_off.status().code(), ErrorCode::kUnavailable);
    EXPECT_EQ(transport.retransmits(), retransmits_before);
    // The multi-server client fails over to the other file server and carries on.
    EXPECT_EQ(RunTcpIncrementBatch(&transport, cluster.FileServerPorts(), *file, 2, 2,
                                   seed + 2),
              0);

    transport.SetPartitioned(fs0, false);
    EXPECT_EQ(RunTcpIncrementBatch(&transport, cluster.FileServerPorts(), *file, 2, 2,
                                   seed + 3),
              0);

    transport.set_fault_injection(FaultInjection{});
    FileClient reader(&transport, cluster.FileServerPorts());
    auto current = reader.GetCurrentVersion(*file);
    ASSERT_TRUE(current.ok()) << current.status();
    auto text = reader.ReadString(*current, PagePath::Root());
    ASSERT_TRUE(text.ok()) << text.status();
    EXPECT_EQ(*text, "12");
  }
}

}  // namespace
}  // namespace afs

// Custom main: gtest init plus the --chaos_seed flag (appended to every seed bank).
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--chaos_seed=";
    if (arg.rfind(prefix, 0) == 0) {
      afs::g_extra_seed = std::strtoull(arg.substr(prefix.size()).c_str(), nullptr, 10);
      afs::g_extra_seed_set = true;
      std::printf("chaos: extra seed %llu appended to every seed bank\n",
                  static_cast<unsigned long long>(afs::g_extra_seed));
    }
  }
  return RUN_ALL_TESTS();
}
