// Multi-process integration: launch the real afs_server binary (path in AFS_SERVER_BIN,
// set by CMake), talk to it over genuine TCP from this process, and exercise the full
// §5.3 story across a process boundary — optimistic writes and commits, at-most-once
// retransmission through the socket fault shim, cross-process trace propagation,
// kill -9 mid-transaction with the immediate crash warning, and restart from --store.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/namesvc/directory_client.h"
#include "src/net/tcp_server.h"
#include "src/net/tcp_transport.h"
#include "src/obs/span.h"
#include "src/rpc/client.h"

namespace afs {
namespace {

// One afs_server child process. Stdout is piped so we can parse "LISTENING <port>";
// stdin is piped so Quit() can ask for a clean exit (KillHard never does).
class ServerProcess {
 public:
  ServerProcess(const std::string& store_dir, std::vector<std::string> extra_args = {}) {
    Launch(store_dir, std::move(extra_args));  // ASSERTs live in a void helper
  }

  ~ServerProcess() { KillHard(); }

  void Launch(const std::string& store_dir, std::vector<std::string> extra_args) {
    const char* bin = std::getenv("AFS_SERVER_BIN");
    if (bin == nullptr) {
      ADD_FAILURE() << "AFS_SERVER_BIN not set (run via ctest)";
      return;
    }
    int out_pipe[2];
    int in_pipe[2];
    ASSERT_EQ(pipe(out_pipe), 0);
    ASSERT_EQ(pipe(in_pipe), 0);
    pid_ = fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      dup2(out_pipe[1], STDOUT_FILENO);
      dup2(in_pipe[0], STDIN_FILENO);
      close(out_pipe[0]);
      close(out_pipe[1]);
      close(in_pipe[0]);
      close(in_pipe[1]);
      std::vector<std::string> args = {bin, "--port", "0"};
      if (!store_dir.empty()) {
        args.push_back("--store");
        args.push_back(store_dir);
      }
      for (const auto& a : extra_args) {
        args.push_back(a);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) {
        argv.push_back(a.data());
      }
      argv.push_back(nullptr);
      execv(bin, argv.data());
      _exit(127);
    }
    close(out_pipe[1]);
    close(in_pipe[0]);
    out_fd_ = out_pipe[0];
    in_fd_ = in_pipe[1];
    port_ = ParseListeningPort();
  }

  uint16_t port() const { return port_; }
  bool running() const { return pid_ > 0; }

  // The crash under test: SIGKILL, no cleanup, exactly what §5.3's "server crashes while
  // clients hold uncommitted versions" means across processes.
  void KillHard() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    CloseFds();
  }

  void Quit() {
    if (pid_ > 0 && in_fd_ >= 0) {
      (void)!write(in_fd_, "quit\n", 5);
      close(in_fd_);
      in_fd_ = -1;
      waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    CloseFds();
  }

 private:
  uint16_t ParseListeningPort() {
    std::string text;
    char buf[256];
    for (int spin = 0; spin < 200; ++spin) {  // up to 20 s for a slow sanitizer build
      struct pollfd pfd = {out_fd_, POLLIN, 0};
      int ready = poll(&pfd, 1, 100);
      if (ready <= 0) {
        continue;
      }
      ssize_t n = read(out_fd_, buf, sizeof(buf));
      if (n <= 0) {
        break;  // child died before listening
      }
      text.append(buf, static_cast<size_t>(n));
      unsigned port = 0;
      if (std::sscanf(text.c_str(), "LISTENING %u", &port) == 1 && port != 0) {
        return static_cast<uint16_t>(port);
      }
    }
    ADD_FAILURE() << "afs_server never reported LISTENING; output: " << text;
    return 0;
  }

  void CloseFds() {
    if (out_fd_ >= 0) {
      close(out_fd_);
      out_fd_ = -1;
    }
    if (in_fd_ >= 0) {
      close(in_fd_);
      in_fd_ = -1;
    }
  }

  pid_t pid_ = -1;
  int out_fd_ = -1;
  int in_fd_ = -1;
  uint16_t port_ = 0;
};

// The client half of a session: transport, manifest, file + directory clients.
struct RemoteClient {
  explicit RemoteClient(uint16_t port, uint64_t seed = 1) { Connect(port, seed); }

  void Connect(uint16_t port, uint64_t seed) {
    net::TcpTransport::Options topt;
    topt.seed = seed;
    transport = std::make_unique<net::TcpTransport>("127.0.0.1", port, topt);
    auto hello = transport->SayHello();
    ASSERT_TRUE(hello.ok()) << hello.status();
    for (const auto& entry : hello->services) {
      if (entry.kind == static_cast<uint8_t>(net::ServiceKind::kFileServer)) {
        file_servers.push_back(entry.port);
      } else if (entry.kind == static_cast<uint8_t>(net::ServiceKind::kDirectoryServer)) {
        dir_port = entry.port;
      }
    }
    ASSERT_FALSE(file_servers.empty());
    ASSERT_NE(dir_port, kNullPort);
    files = std::make_unique<FileClient>(transport.get(), file_servers);
    dir = std::make_unique<DirectoryClient>(transport.get(), dir_port);
  }

  std::unique_ptr<net::TcpTransport> transport;
  std::vector<Port> file_servers;
  Port dir_port = kNullPort;
  std::unique_ptr<FileClient> files;
  std::unique_ptr<DirectoryClient> dir;
};

std::string MakeScratchDir() {
  char tmpl[] = "/tmp/afs_process_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

Status WriteText(RemoteClient& c, const Capability& file, const std::string& text) {
  auto path = PagePath::Parse("/");
  EXPECT_TRUE(path.ok());
  auto stats = RunTransaction(c.files.get(), file, [&](FileClient& fc, const Capability& v) {
    return fc.WriteString(v, *path, text);
  });
  return stats.status();
}

Result<std::string> ReadText(RemoteClient& c, const Capability& file) {
  auto path = PagePath::Parse("/");
  EXPECT_TRUE(path.ok());
  ASSIGN_OR_RETURN(Capability current, c.files->GetCurrentVersion(file));
  return c.files->ReadString(current, *path);
}

// The acceptance session of ISSUE 7: create, write, commit, read back — every byte of it
// over a real socket to a separate server process.
TEST(ProcessTest, FullSessionAgainstSeparateServerProcess) {
  ServerProcess server(/*store_dir=*/"");
  ASSERT_NE(server.port(), 0);
  RemoteClient client(server.port());

  auto file = client.files->CreateFile();
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE(client.dir->Enter("notes", *file).ok());

  ASSERT_TRUE(WriteText(client, *file, "hello across processes").ok());
  auto text = ReadText(client, *file);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(*text, "hello across processes");

  auto names = client.dir->List();
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "notes");

  auto looked_up = client.dir->Lookup("notes");
  ASSERT_TRUE(looked_up.ok());
  EXPECT_EQ(looked_up->object, file->object);

  server.Quit();
}

// At-most-once over the wire: with the socket fault shim dropping replies, every commit
// retransmission must be answered from the server's reply cache — the committed version
// count stays exactly one per logical write, never one per delivery.
TEST(ProcessTest, RetransmissionOverFaultShimExecutesEachCommitOnce) {
  ServerProcess server(/*store_dir=*/"");
  ASSERT_NE(server.port(), 0);
  RemoteClient client(server.port(), /*seed=*/42);

  auto file = client.files->CreateFile();
  ASSERT_TRUE(file.ok()) << file.status();

  client.transport->set_fault_injection(FaultInjection{.drop_reply = 0.4});
  const int kWrites = 8;
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(WriteText(client, *file, "draft " + std::to_string(i)).ok());
  }
  client.transport->set_fault_injection(FaultInjection{});

  EXPECT_GT(client.transport->retransmits(), 0u)
      << "shim dropped no replies; the test proved nothing";
  auto stat = client.files->FileStat(*file);
  ASSERT_TRUE(stat.ok()) << stat.status();
  // CreateFile commits the initial empty version, then exactly one version per logical
  // write — a re-executed (rather than replayed) retransmission would add extras.
  EXPECT_EQ(stat->committed_versions, static_cast<uint32_t>(kWrites) + 1);
  auto text = ReadText(client, *file);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "draft " + std::to_string(kWrites - 1));

  server.Quit();
}

// Trace context rides the frame: a client-side root span's trace id must appear in the
// SERVER process's span collector, scraped back over the same wire.
TEST(ProcessTest, TraceIdIsSharedAcrossProcessBoundary) {
  ServerProcess server(/*store_dir=*/"");
  ASSERT_NE(server.port(), 0);
  RemoteClient client(server.port());

  obs::SetSpanEnabled(true);
  uint64_t trace_id = 0;
  {
    obs::ScopedSpan root("test.session", obs::SpanKind::kClient);
    trace_id = root.trace_id();
    auto file = client.files->CreateFile();
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE(WriteText(client, *file, "traced write").ok());
  }
  ASSERT_NE(trace_id, 0u);

  char needle[64];
  std::snprintf(needle, sizeof(needle), "trace=%llu", (unsigned long long)trace_id);
  std::string remote_spans;
  for (Port fs : client.file_servers) {
    auto scraped = ScrapeSpans(client.transport.get(), fs, 4096, /*chrome_json=*/false);
    ASSERT_TRUE(scraped.ok()) << scraped.status();
    remote_spans += *scraped;
  }
  EXPECT_NE(remote_spans.find(needle), std::string::npos)
      << "server-side spans never joined client trace " << trace_id;
  obs::SetSpanEnabled(false);

  server.Quit();
}

// kill -9 mid-transaction: the client holds an uncommitted version when the server dies.
// The next call must surface the §5.3 crash warning (kCrashed, immediately — no
// retransmission storm), and a restart from the same --store must recover all committed
// state while the orphaned uncommitted version is simply gone.
TEST(ProcessTest, KillNineMidTransactionThenRecoverFromStore) {
  std::string store = MakeScratchDir();
  ASSERT_FALSE(store.empty());

  Capability file_cap;
  {
    ServerProcess server(store);
    ASSERT_NE(server.port(), 0);
    RemoteClient client(server.port());

    auto file = client.files->CreateFile();
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE(client.dir->Enter("ledger", *file).ok());
    ASSERT_TRUE(WriteText(client, *file, "committed before crash").ok());
    file_cap = *file;

    // Open a transaction: a private uncommitted version with a dirty page.
    auto version = client.files->CreateVersion(*file);
    ASSERT_TRUE(version.ok()) << version.status();
    auto path = PagePath::Parse("/");
    ASSERT_TRUE(path.ok());
    ASSERT_TRUE(client.files->WriteString(*version, *path, "doomed uncommitted data").ok());

    server.KillHard();

    // §5.3 crash warning, across a real process boundary: immediate kCrashed, no retries.
    uint64_t retransmits_before = client.transport->retransmits();
    auto commit = client.files->Commit(*version);
    EXPECT_EQ(commit.status().code(), ErrorCode::kCrashed) << commit.status();
    EXPECT_EQ(client.transport->retransmits(), retransmits_before);
  }

  // Restart from the same store: committed state survives, the orphan version does not.
  {
    ServerProcess server(store);
    ASSERT_NE(server.port(), 0);
    RemoteClient client(server.port());

    auto looked_up = client.dir->Lookup("ledger");
    ASSERT_TRUE(looked_up.ok()) << looked_up.status();
    EXPECT_EQ(looked_up->object, file_cap.object);
    auto text = ReadText(client, *looked_up);
    ASSERT_TRUE(text.ok()) << text.status();
    EXPECT_EQ(*text, "committed before crash");

    auto stat = client.files->FileStat(*looked_up);
    ASSERT_TRUE(stat.ok());
    // Initial version + the one committed write; the doomed uncommitted version left no
    // trace.
    EXPECT_EQ(stat->committed_versions, 2u);

    server.Quit();
  }
}

// Two client processes' worth of transports against one server: a second connection sees
// the first one's directory entries (shared namespace, not per-connection state).
TEST(ProcessTest, TwoClientsShareOneNamespace) {
  ServerProcess server(/*store_dir=*/"");
  ASSERT_NE(server.port(), 0);

  RemoteClient alice(server.port(), /*seed=*/1);
  RemoteClient bob(server.port(), /*seed=*/2);

  auto file = alice.files->CreateFile();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(alice.dir->Enter("shared", *file).ok());
  ASSERT_TRUE(WriteText(alice, *file, "from alice").ok());

  auto found = bob.dir->Lookup("shared");
  ASSERT_TRUE(found.ok()) << found.status();
  auto text = ReadText(bob, *found);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(*text, "from alice");

  server.Quit();
}

}  // namespace
}  // namespace afs
