// Crash recovery tests (paper §3.1, §5.3, §5.4.1): "the file system is always in a
// consistent state ... there is no rollback, clients need only redo the update"; waiters
// recover locks of dead holders; a super-file commit interrupted between the commit point
// and the sub-file commits is finished by the next waiter.

#include <gtest/gtest.h>

#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(CrashTest, ServerCrashMidUpdateLeavesFileSystemConsistent) {
  FullCluster cluster(2);
  auto file = cluster.fs(0).CreateFile();
  ASSERT_TRUE(file.ok());
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("stable")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  // An update is in progress on server 0 when it crashes.
  auto doomed = cluster.fs(0).CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(cluster.fs(0).WritePage(*doomed, PagePath::Root(), Bytes("half-done")).ok());
  cluster.fs(0).Crash();

  // "Clients do not have to wait until the server is restored, because they can use
  // another server": server 1 reads the committed state — no rollback, no repair.
  auto current = cluster.fs(1).GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  auto read = cluster.fs(1).ReadPage(*current, PagePath::Root(), false);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->data, Bytes("stable"));

  // And the client redoes the update through server 1.
  auto redo = cluster.fs(1).CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(redo.ok());
  ASSERT_TRUE(cluster.fs(1).WritePage(*redo, PagePath::Root(), Bytes("redone")).ok());
  ASSERT_TRUE(cluster.fs(1).Commit(*redo).ok());
}

TEST(CrashTest, RestartedServerServesImmediately) {
  // Claim C5: an AFS server restart needs no rollback, no lock clearing, no intentions.
  FullCluster cluster(1);
  auto file = cluster.fs(0).CreateFile();
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("before crash")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  cluster.fs(0).Crash();
  cluster.fs(0).Restart();
  auto current = cluster.fs(0).GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(cluster.fs(0).ReadPage(*current, PagePath::Root(), false)->data,
            Bytes("before crash"));
  // New updates work right away.
  auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("after restart")).ok());
  EXPECT_TRUE(cluster.fs(0).Commit(*v).ok());
}

TEST(CrashTest, DeadClientsTopLockIsRecoveredByWaiter) {
  // §5.3: "A server, waiting on a top lock proceeds as follows: If the commit reference is
  // [unset], the lock can be cleared without further ado."
  FullCluster cluster(1);
  auto super = cluster.fs(0).CreateFile();
  {
    auto v = cluster.fs(0).CreateVersion(*super, kNullPort, false);
    auto sub = cluster.fs(0).CreateSubFile(*v, PagePath::Root(), 0);
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  // A client starts a super-file update and dies (its transaction port closes).
  Port dead_client = cluster.net().AllocatePort();
  auto orphan = cluster.fs(0).CreateVersion(*super, dead_client, false);
  ASSERT_TRUE(orphan.ok());
  cluster.net().ClosePort(dead_client);

  // A second update finds the dead top lock and clears it itself.
  Port live_client = cluster.net().AllocatePort();
  auto v2 = cluster.fs(0).CreateVersion(*super, live_client, false);
  EXPECT_TRUE(v2.ok()) << v2.status();
  EXPECT_TRUE(cluster.fs(0).Commit(*v2).ok());
}

TEST(CrashTest, DeadInnerLockHolderRecovered) {
  FullCluster cluster(1);
  auto super = cluster.fs(0).CreateFile();
  Capability sub;
  {
    auto v = cluster.fs(0).CreateVersion(*super, kNullPort, false);
    auto created = cluster.fs(0).CreateSubFile(*v, PagePath::Root(), 0);
    ASSERT_TRUE(created.ok());
    sub = *created;
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  // A super-file update inner-locks the sub-file, then its client dies.
  Port dead_client = cluster.net().AllocatePort();
  auto orphan = cluster.fs(0).CreateVersion(*super, dead_client, false);
  ASSERT_TRUE(orphan.ok());
  ASSERT_TRUE(cluster.fs(0).WritePage(*orphan, PagePath({0}), Bytes("locks sub")).ok());
  cluster.net().ClosePort(dead_client);

  // A small-file update of the sub-file finds the dead inner lock and proceeds.
  auto sv = cluster.fs(0).CreateVersion(sub, kNullPort, false);
  EXPECT_TRUE(sv.ok()) << sv.status();
  ASSERT_TRUE(cluster.fs(0).WritePage(*sv, PagePath::Root(), Bytes("recovered")).ok());
  EXPECT_TRUE(cluster.fs(0).Commit(*sv).ok());
}

TEST(CrashTest, InterruptedSuperCommitFinishedByWaiter) {
  // §5.3: "If the commit reference is set, the version it refers to is current. The
  // version with the lock, and the current version are traversed simultaneously, and the
  // commit references of the sub-files are set, finishing the work of the crashed server."
  //
  // We reproduce the torn state directly on the store: a super-file version V.b whose
  // commit reference IS set on its base, but whose sub-file commit was never performed and
  // whose top lock is still held by a dead port.
  FullCluster cluster(1);
  FileServer& fs = cluster.fs(0);
  auto super = fs.CreateFile();
  Capability sub;
  {
    auto v = fs.CreateVersion(*super, kNullPort, false);
    auto created = fs.CreateSubFile(*v, PagePath::Root(), 0);
    ASSERT_TRUE(created.ok());
    sub = *created;
    ASSERT_TRUE(fs.Commit(*v).ok());
    auto sv = fs.CreateVersion(sub, kNullPort, false);
    ASSERT_TRUE(fs.WritePage(*sv, PagePath::Root(), Bytes("old sub state")).ok());
    ASSERT_TRUE(fs.Commit(*sv).ok());
  }

  // Build the torn commit by hand through the page store.
  PageStore* pages = fs.page_store();
  Port dead = cluster.net().AllocatePort();
  auto chain = fs.CommittedChain(super->object);
  ASSERT_TRUE(chain.ok());
  BlockNo base_head = chain->back();
  auto base = pages->ReadPage(base_head);
  ASSERT_TRUE(base.ok());

  // V.b: a copy of the super's current version page whose sub-file reference was copied
  // (the crashed update wrote through the sub-file).
  auto sub_chain = fs.CommittedChain(sub.object);
  ASSERT_TRUE(sub_chain.ok());
  BlockNo sub_current = sub_chain->back();
  auto sub_page = pages->ReadPage(sub_current);
  ASSERT_TRUE(sub_page.ok());

  Page new_sub = *sub_page;
  new_sub.base_ref = sub_current;
  new_sub.commit_ref = kNilRef;
  new_sub.inner_lock = kNullPort;
  new_sub.data = Bytes("new sub state");
  auto new_sub_head = pages->WritePage(new_sub);
  ASSERT_TRUE(new_sub_head.ok());

  Page vb = *base;
  vb.base_ref = base_head;
  vb.commit_ref = kNilRef;
  vb.top_lock = kNullPort;
  for (PageRef& ref : vb.refs) {
    ref.flags = 0;
  }
  vb.refs[0] = PageRef{*new_sub_head,
                       NormalizeFlags(RefFlag::kCopied | RefFlag::kWritten)};
  auto vb_head = pages->WritePage(vb);
  ASSERT_TRUE(vb_head.ok());

  // The crash point: base's commit ref set to V.b, base's top lock held by the dead port,
  // sub-file commit NOT yet done, inner lock still set on the sub's current version page.
  base->commit_ref = *vb_head;
  base->top_lock = dead;
  ASSERT_TRUE(pages->OverwritePage(base_head, *base).ok());
  sub_page->inner_lock = dead;
  ASSERT_TRUE(pages->OverwritePage(sub_current, *sub_page).ok());
  cluster.net().ClosePort(dead);

  // The next reader of the super-file walks the chain, finds the dead top lock on a
  // superseded version page, and finishes the crashed server's work.
  auto current = fs.GetCurrentVersion(*super);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(static_cast<BlockNo>(current->object), *vb_head);

  // The sub-file's commit was finished for the crashed server: its current version is the
  // new state and its inner lock is clear.
  auto sub_now = fs.GetCurrentVersion(sub);
  ASSERT_TRUE(sub_now.ok());
  EXPECT_EQ(static_cast<BlockNo>(sub_now->object), *new_sub_head);
  auto read = fs.ReadPage(*sub_now, PagePath::Root(), false);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->data, Bytes("new sub state"));
  auto sv = fs.CreateVersion(sub, kNullPort, false);
  EXPECT_TRUE(sv.ok()) << sv.status();  // inner lock cleared
}

TEST(CrashTest, BlockServerCrashToleratedByFileService) {
  // §5.4.1: stable storage keeps every committed page accessible while one member of the
  // pair is down.
  FullCluster cluster(1);
  auto file = cluster.fs(0).CreateFile();
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("replicated")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  cluster.block_a().Crash();
  auto current = cluster.fs(0).GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(cluster.fs(0).ReadPage(*current, PagePath::Root(), false)->data,
            Bytes("replicated"));
  // Updates also proceed (degraded writes recorded for the crashed companion).
  auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("degraded")).ok());
  ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  // The crashed member returns and catches up.
  cluster.block_a().Restart();
  auto v2 = cluster.fs(0).CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(cluster.fs(0).ReadPage(*v2, PagePath::Root(), false)->data, Bytes("degraded"));
}

TEST(CrashTest, TransactionHelperRedoesThroughSecondServer) {
  FullCluster cluster(2);
  FileClient client(&cluster.net(), cluster.FileServerPorts());
  auto file = client.CreateFile();
  ASSERT_TRUE(file.ok());

  // Crash server 0 (the one that minted the file cap); the transaction helper must route
  // the redo to server 1.
  cluster.fs(0).Crash();
  auto stats = RunTransaction(&client, *file, [](FileClient& c, const Capability& v) {
    return c.WriteString(v, PagePath::Root(), "via failover");
  });
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto current = client.GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*client.ReadString(*current, PagePath::Root()), "via failover");
}

}  // namespace
}  // namespace afs
