// Multi-server tests: several file servers of one service group share the block store
// (§5.4.1's replicated server processes). Files created at one server are served by
// another; concurrent commits from different servers serialise through the shared
// test-and-set; the GC accounts for every live server's uncommitted versions.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/core/gc.h"
#include "src/rpc/client.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// Parse "counter <name> <value>" from a kGetStats text exposition.
uint64_t CounterValue(const std::string& text, const std::string& name) {
  std::string needle = "counter " + name + " ";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return ~0ull;
  }
  return std::stoull(text.substr(pos + needle.size()));
}

// Parse the sample count of "histogram <name> count <n> ...".
uint64_t HistogramCount(const std::string& text, const std::string& name) {
  std::string needle = "histogram " + name + " count ";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return ~0ull;
  }
  return std::stoull(text.substr(pos + needle.size()));
}

TEST(MultiServerTest, FileVisibleAcrossServers) {
  FullCluster cluster(3);
  auto file = cluster.fs(0).CreateFile();
  ASSERT_TRUE(file.ok());
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("from fs0")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  // Servers 1 and 2 serve the file without ever having seen its creation.
  for (int i = 1; i < 3; ++i) {
    auto current = cluster.fs(i).GetCurrentVersion(*file);
    ASSERT_TRUE(current.ok()) << "server " << i;
    EXPECT_EQ(cluster.fs(i).ReadPage(*current, PagePath::Root(), false)->data,
              Bytes("from fs0"));
  }
}

TEST(MultiServerTest, UpdatesAlternateAcrossServers) {
  FullCluster cluster(2);
  auto file = cluster.fs(0).CreateFile();
  for (int round = 0; round < 6; ++round) {
    FileServer& fs = cluster.fs(round % 2);
    auto v = fs.CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(v.ok()) << "round " << round;
    ASSERT_TRUE(
        fs.WritePage(*v, PagePath::Root(), Bytes("round " + std::to_string(round))).ok());
    ASSERT_TRUE(fs.Commit(*v).ok());
  }
  auto stat = cluster.fs(1).FileStat(*file);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->committed_versions, 7u);
}

TEST(MultiServerTest, ConcurrentCommitsFromDifferentServersSerialise) {
  FullCluster cluster(2);
  auto file = cluster.fs(0).CreateFile();
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(cluster.fs(0).InsertRef(*v, PagePath::Root(), i).ok());
      ASSERT_TRUE(cluster.fs(0)
                      .WritePage(*v, PagePath({static_cast<uint32_t>(i)}), Bytes("0"))
                      .ok());
    }
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  std::atomic<int> committed{0};
  auto worker = [&](int server, uint32_t page) {
    for (int i = 0; i < 5; ++i) {
      for (int attempt = 0; attempt < 100; ++attempt) {
        FileServer& fs = cluster.fs(server);
        auto v = fs.CreateVersion(*file, kNullPort, false);
        if (!v.ok()) {
          continue;
        }
        if (!fs.WritePage(*v, PagePath({page}),
                          Bytes("s" + std::to_string(server) + "i" + std::to_string(i)))
                 .ok()) {
          (void)fs.Abort(*v);
          continue;
        }
        if (fs.Commit(*v).ok()) {
          ++committed;
          break;
        }
      }
    }
  };
  std::thread t0(worker, 0, 0);
  std::thread t1(worker, 1, 2);
  t0.join();
  t1.join();
  EXPECT_EQ(committed.load(), 10);
  // Both servers agree on the final state.
  for (int server = 0; server < 2; ++server) {
    auto current = cluster.fs(server).GetCurrentVersion(*file);
    ASSERT_TRUE(current.ok());
    EXPECT_EQ(cluster.fs(server).ReadPage(*current, PagePath({0}), false)->data,
              Bytes("s0i4"));
    EXPECT_EQ(cluster.fs(server).ReadPage(*current, PagePath({2}), false)->data,
              Bytes("s1i4"));
  }
}

TEST(MultiServerTest, GcHonoursAllServersUncommittedVersions) {
  FullCluster cluster(2);
  auto file = cluster.fs(0).CreateFile();
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("base")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  // Server 1 holds an open update while server 0's GC runs.
  auto open_version = cluster.fs(1).CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(open_version.ok());
  ASSERT_TRUE(cluster.fs(1).WritePage(*open_version, PagePath::Root(), Bytes("open")).ok());
  for (int i = 0; i < 3; ++i) {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("churn")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  GarbageCollector gc({&cluster.fs(0), &cluster.fs(1)}, GcOptions{.keep_versions = 1});
  ASSERT_TRUE(gc.RunCycle().ok());
  // Server 1's open update still commits (its pages and base chain were roots).
  auto commit = cluster.fs(1).Commit(*open_version);
  EXPECT_TRUE(commit.ok()) << commit.status();
}

TEST(MultiServerTest, ClientTransactionsSpreadAcrossGroup) {
  FullCluster cluster(3);
  FileClient client(&cluster.net(), cluster.FileServerPorts());
  auto file = client.CreateFile();
  ASSERT_TRUE(RunTransaction(&client, *file, [](FileClient& c, const Capability& v) {
                return c.WriteString(v, PagePath::Root(), "0");
              }).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      // Each worker prefers a different server of the group.
      std::vector<Port> ports = cluster.FileServerPorts();
      std::rotate(ports.begin(), ports.begin() + t, ports.end());
      FileClient local(&cluster.net(), ports);
      for (int i = 0; i < 4; ++i) {
        TransactionOptions options;
        options.backoff_seed = t * 31 + i;
        options.max_attempts = 200;
        auto stats = RunTransaction(
            &local, *file,
            [](FileClient& c, const Capability& v) -> Status {
              ASSIGN_OR_RETURN(std::string text, c.ReadString(v, PagePath::Root()));
              return c.WriteString(v, PagePath::Root(), std::to_string(std::stoi(text) + 1));
            },
            options);
        if (!stats.ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  auto current = client.GetCurrentVersion(*file);
  EXPECT_EQ(*client.ReadString(*current, PagePath::Root()), "12");
}

TEST(MultiServerTest, ScrapedStatsMatchWorkload) {
  FullCluster cluster(1);
  FileServer& fs = cluster.fs(0);
  FileClient client(&cluster.net(), cluster.FileServerPorts());
  auto file = client.CreateFile();
  ASSERT_TRUE(file.ok());

  // The first committed version creates a plain data page under the root.
  {
    auto v = client.CreateVersion(*file);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(client.InsertRef(*v, PagePath::Root(), 0).ok());
    ASSERT_TRUE(client.WriteString(*v, PagePath({0}), "v0").ok());
    ASSERT_TRUE(client.Commit(*v).ok());
  }
  // More uncontended updates over RPC: each commits on the fast path.
  constexpr int kExtraCommits = 4;
  for (int i = 0; i < kExtraCommits; ++i) {
    auto v = client.CreateVersion(*file);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(client.WriteString(*v, PagePath({0}), "v" + std::to_string(i + 1)).ok());
    ASSERT_TRUE(client.Commit(*v).ok());
  }
  // Repeated committed reads of the same plain page hit the server's committed-page cache.
  auto current = client.GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  for (int i = 0; i < 4; ++i) {
    auto text = client.ReadString(*current, PagePath({0}));
    ASSERT_TRUE(text.ok());
    EXPECT_EQ(*text, "v4");
  }
  // Deterministic conflict: both versions are based on the same current version; the
  // loser READS the page the winner writes (a blind write-write would merge — only a
  // write-set/read-set intersection violates Kung–Robinson condition (2)).
  auto winner = client.CreateVersion(*file);
  auto loser = client.CreateVersion(*file);
  ASSERT_TRUE(winner.ok());
  ASSERT_TRUE(loser.ok());
  ASSERT_TRUE(client.WriteString(*winner, PagePath({0}), "winner").ok());
  ASSERT_TRUE(client.ReadString(*loser, PagePath({0})).ok());
  ASSERT_TRUE(client.WriteString(*loser, PagePath({0}), "loser").ok());
  ASSERT_TRUE(client.Commit(*winner).ok());
  auto conflict = client.Commit(*loser);
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), ErrorCode::kConflict);

  // Scrape the live server's metrics over RPC and cross-check against the workload.
  auto stats = ScrapeStats(&cluster.net(), fs.port());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(CounterValue(*stats, "commit.fast_path"), fs.commits_fast_path());
  EXPECT_EQ(CounterValue(*stats, "commit.fast_path"), 1u + kExtraCommits + 1u) << *stats;
  EXPECT_EQ(CounterValue(*stats, "commit.conflict_aborted"), 1u) << *stats;
  EXPECT_EQ(CounterValue(*stats, "commit.serialise_tests"), fs.serialise_tests_run());
  EXPECT_GE(CounterValue(*stats, "commit.serialise_tests"), 1u) << *stats;
  EXPECT_GT(CounterValue(*stats, "cache.hit"), 0u) << *stats;
  EXPECT_GT(HistogramCount(*stats, "rpc.handle_ns"), 0u) << *stats;
  EXPECT_GT(HistogramCount(*stats, "commit.latency_ns"), 0u) << *stats;
}

TEST(MultiServerTest, LateAttachingServerSeesExistingFiles) {
  FullCluster cluster(1);
  auto file = cluster.fs(0).CreateFile();
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("pre-existing")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  // A brand-new server attaches to the shared store (recovery scan finds the file table).
  auto store = cluster.MakeStableStore();
  FileServer late(&cluster.net(), "late", store.get());
  late.Start();
  ASSERT_TRUE(late.AttachStore().ok());
  auto current = late.GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(late.ReadPage(*current, PagePath::Root(), false)->data, Bytes("pre-existing"));
}

}  // namespace
}  // namespace afs
