// Multi-server tests: several file servers of one service group share the block store
// (§5.4.1's replicated server processes). Files created at one server are served by
// another; concurrent commits from different servers serialise through the shared
// test-and-set; the GC accounts for every live server's uncommitted versions.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/core/gc.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(MultiServerTest, FileVisibleAcrossServers) {
  FullCluster cluster(3);
  auto file = cluster.fs(0).CreateFile();
  ASSERT_TRUE(file.ok());
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("from fs0")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  // Servers 1 and 2 serve the file without ever having seen its creation.
  for (int i = 1; i < 3; ++i) {
    auto current = cluster.fs(i).GetCurrentVersion(*file);
    ASSERT_TRUE(current.ok()) << "server " << i;
    EXPECT_EQ(cluster.fs(i).ReadPage(*current, PagePath::Root(), false)->data,
              Bytes("from fs0"));
  }
}

TEST(MultiServerTest, UpdatesAlternateAcrossServers) {
  FullCluster cluster(2);
  auto file = cluster.fs(0).CreateFile();
  for (int round = 0; round < 6; ++round) {
    FileServer& fs = cluster.fs(round % 2);
    auto v = fs.CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(v.ok()) << "round " << round;
    ASSERT_TRUE(
        fs.WritePage(*v, PagePath::Root(), Bytes("round " + std::to_string(round))).ok());
    ASSERT_TRUE(fs.Commit(*v).ok());
  }
  auto stat = cluster.fs(1).FileStat(*file);
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->committed_versions, 7u);
}

TEST(MultiServerTest, ConcurrentCommitsFromDifferentServersSerialise) {
  FullCluster cluster(2);
  auto file = cluster.fs(0).CreateFile();
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(cluster.fs(0).InsertRef(*v, PagePath::Root(), i).ok());
      ASSERT_TRUE(cluster.fs(0)
                      .WritePage(*v, PagePath({static_cast<uint32_t>(i)}), Bytes("0"))
                      .ok());
    }
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  std::atomic<int> committed{0};
  auto worker = [&](int server, uint32_t page) {
    for (int i = 0; i < 5; ++i) {
      for (int attempt = 0; attempt < 100; ++attempt) {
        FileServer& fs = cluster.fs(server);
        auto v = fs.CreateVersion(*file, kNullPort, false);
        if (!v.ok()) {
          continue;
        }
        if (!fs.WritePage(*v, PagePath({page}),
                          Bytes("s" + std::to_string(server) + "i" + std::to_string(i)))
                 .ok()) {
          (void)fs.Abort(*v);
          continue;
        }
        if (fs.Commit(*v).ok()) {
          ++committed;
          break;
        }
      }
    }
  };
  std::thread t0(worker, 0, 0);
  std::thread t1(worker, 1, 2);
  t0.join();
  t1.join();
  EXPECT_EQ(committed.load(), 10);
  // Both servers agree on the final state.
  for (int server = 0; server < 2; ++server) {
    auto current = cluster.fs(server).GetCurrentVersion(*file);
    ASSERT_TRUE(current.ok());
    EXPECT_EQ(cluster.fs(server).ReadPage(*current, PagePath({0}), false)->data,
              Bytes("s0i4"));
    EXPECT_EQ(cluster.fs(server).ReadPage(*current, PagePath({2}), false)->data,
              Bytes("s1i4"));
  }
}

TEST(MultiServerTest, GcHonoursAllServersUncommittedVersions) {
  FullCluster cluster(2);
  auto file = cluster.fs(0).CreateFile();
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("base")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  // Server 1 holds an open update while server 0's GC runs.
  auto open_version = cluster.fs(1).CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(open_version.ok());
  ASSERT_TRUE(cluster.fs(1).WritePage(*open_version, PagePath::Root(), Bytes("open")).ok());
  for (int i = 0; i < 3; ++i) {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("churn")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  GarbageCollector gc({&cluster.fs(0), &cluster.fs(1)}, GcOptions{.keep_versions = 1});
  ASSERT_TRUE(gc.RunCycle().ok());
  // Server 1's open update still commits (its pages and base chain were roots).
  auto commit = cluster.fs(1).Commit(*open_version);
  EXPECT_TRUE(commit.ok()) << commit.status();
}

TEST(MultiServerTest, ClientTransactionsSpreadAcrossGroup) {
  FullCluster cluster(3);
  FileClient client(&cluster.net(), cluster.FileServerPorts());
  auto file = client.CreateFile();
  ASSERT_TRUE(RunTransaction(&client, *file, [](FileClient& c, const Capability& v) {
                return c.WriteString(v, PagePath::Root(), "0");
              }).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      // Each worker prefers a different server of the group.
      std::vector<Port> ports = cluster.FileServerPorts();
      std::rotate(ports.begin(), ports.begin() + t, ports.end());
      FileClient local(&cluster.net(), ports);
      for (int i = 0; i < 4; ++i) {
        TransactionOptions options;
        options.backoff_seed = t * 31 + i;
        options.max_attempts = 200;
        auto stats = RunTransaction(
            &local, *file,
            [](FileClient& c, const Capability& v) -> Status {
              ASSIGN_OR_RETURN(std::string text, c.ReadString(v, PagePath::Root()));
              return c.WriteString(v, PagePath::Root(), std::to_string(std::stoi(text) + 1));
            },
            options);
        if (!stats.ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  auto current = client.GetCurrentVersion(*file);
  EXPECT_EQ(*client.ReadString(*current, PagePath::Root()), "12");
}

TEST(MultiServerTest, LateAttachingServerSeesExistingFiles) {
  FullCluster cluster(1);
  auto file = cluster.fs(0).CreateFile();
  {
    auto v = cluster.fs(0).CreateVersion(*file, kNullPort, false);
    ASSERT_TRUE(cluster.fs(0).WritePage(*v, PagePath::Root(), Bytes("pre-existing")).ok());
    ASSERT_TRUE(cluster.fs(0).Commit(*v).ok());
  }
  // A brand-new server attaches to the shared store (recovery scan finds the file table).
  auto store = cluster.MakeStableStore();
  FileServer late(&cluster.net(), "late", store.get());
  late.Start();
  ASSERT_TRUE(late.AttachStore().ok());
  auto current = late.GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(late.ReadPage(*current, PagePath::Root(), false)->data, Bytes("pre-existing"));
}

}  // namespace
}  // namespace afs
