// Property-based tests (DESIGN.md §5), parameterised over random seeds:
//   P1 — any concurrent schedule's outcome equals replaying the committed versions in
//        commit-reference order against a sequential model (serialisability).
//   P2 — a storage outage injected at an arbitrary write leaves the file system in a
//        consistent committed state (atomic update; no torn files).
//   P3 — the garbage collector, run at random points of a random workload, never makes
//        committed data unreadable, and reaches a fixpoint reclaiming all garbage.
//   P4 — reads through the validating page cache always return the value most recently
//        committed before the read (no stale cache hits, no unsolicited messages).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "src/base/rng.h"
#include "src/client/cached_client.h"
#include "src/client/file_client.h"
#include "src/core/gc.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}
std::string Text(const std::vector<uint8_t>& b) { return std::string(b.begin(), b.end()); }

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

// --- P1: serialisability -----------------------------------------------------

TEST_P(PropertyTest, P1_ConcurrentSchedulesAreSerialisable) {
  constexpr int kPages = 6;
  constexpr int kThreads = 4;
  constexpr int kTxPerThread = 8;
  FastCluster cluster;
  auto file = cluster.fs().CreateFile();
  {
    auto v = cluster.fs().CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < kPages; ++i) {
      ASSERT_TRUE(cluster.fs().InsertRef(*v, PagePath::Root(), i).ok());
      ASSERT_TRUE(cluster.fs()
                      .WritePage(*v, PagePath({static_cast<uint32_t>(i)}), Bytes("0"))
                      .ok());
    }
    ASSERT_TRUE(cluster.fs().Commit(*v).ok());
  }

  // A transaction reads one page and writes a deterministic function of what it read to
  // another page. The concurrent outcome must match a serial replay in commit order.
  struct TxSpec {
    int id;
    uint32_t read_page;
    uint32_t write_page;
  };
  std::mutex record_mu;
  std::map<BlockNo, TxSpec> committed;  // committed head -> tx

  auto run_thread = [&](int thread_id) {
    Rng rng(GetParam() * 977 + thread_id);
    for (int t = 0; t < kTxPerThread; ++t) {
      TxSpec spec{thread_id * 100 + t, static_cast<uint32_t>(rng.NextBelow(kPages)),
                  static_cast<uint32_t>(rng.NextBelow(kPages))};
      for (int attempt = 0; attempt < 200; ++attempt) {
        auto v = cluster.fs().CreateVersion(*file, kNullPort, false);
        if (!v.ok()) {
          continue;
        }
        auto read = cluster.fs().ReadPage(*v, PagePath({spec.read_page}), false);
        if (!read.ok()) {
          (void)cluster.fs().Abort(*v);
          continue;
        }
        std::string value =
            "tx" + std::to_string(spec.id) + "<" + Text(read->data).substr(0, 24) + ">";
        if (!cluster.fs().WritePage(*v, PagePath({spec.write_page}), Bytes(value)).ok()) {
          (void)cluster.fs().Abort(*v);
          continue;
        }
        auto result = cluster.fs().Commit(*v);
        if (result.ok()) {
          std::lock_guard<std::mutex> lock(record_mu);
          committed[*result] = spec;
          break;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(run_thread, t);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ASSERT_EQ(committed.size(), static_cast<size_t>(kThreads * kTxPerThread));

  // Serial replay in commit-reference order.
  auto chain = cluster.fs().CommittedChain(file->object);
  ASSERT_TRUE(chain.ok());
  std::vector<std::string> model(kPages, "0");
  for (BlockNo head : *chain) {
    auto it = committed.find(head);
    if (it == committed.end()) {
      continue;  // the initial setup versions
    }
    const TxSpec& spec = it->second;
    model[spec.write_page] = "tx" + std::to_string(spec.id) + "<" +
                             model[spec.read_page].substr(0, 24) + ">";
  }
  auto current = cluster.fs().GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  for (int i = 0; i < kPages; ++i) {
    auto read = cluster.fs().ReadPage(*current, PagePath({static_cast<uint32_t>(i)}), false);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(Text(read->data), model[i]) << "page " << i;
  }
}

// --- P2: consistency across storage outages ----------------------------------

TEST_P(PropertyTest, P2_OutageAtArbitraryWriteLeavesConsistentState) {
  // An outage starting at the k-th block write makes every later write fail — like the
  // managing server dying mid-update. Whatever happened, the file must afterwards read
  // completely as SOME committed state, and a redo must succeed.
  Rng rng(GetParam());
  const int fail_after = static_cast<int>(rng.NextBelow(40)) + 1;

  // A wrapper store that starts failing writes after a fuse burns down.
  class FusedStore : public BlockStore {
   public:
    FusedStore(BlockStore* inner, int fuse) : inner_(inner), fuse_(fuse) {}
    Result<BlockNo> AllocWrite(std::span<const uint8_t> p) override {
      if (Burn()) {
        return UnavailableError("outage");
      }
      return inner_->AllocWrite(p);
    }
    Status Write(BlockNo b, std::span<const uint8_t> p) override {
      if (Burn()) {
        return UnavailableError("outage");
      }
      return inner_->Write(b, p);
    }
    Result<std::vector<uint8_t>> Read(BlockNo b) override { return inner_->Read(b); }
    Status Free(BlockNo b) override { return inner_->Free(b); }
    Status Lock(BlockNo b, Port o) override { return inner_->Lock(b, o); }
    Status Unlock(BlockNo b, Port o) override { return inner_->Unlock(b, o); }
    Result<std::vector<BlockNo>> ListBlocks() override { return inner_->ListBlocks(); }
    uint32_t payload_capacity() const override { return inner_->payload_capacity(); }
    void Repair() { fuse_.store(1 << 30); }

   private:
    bool Burn() { return fuse_.fetch_sub(1) <= 0; }
    BlockStore* inner_;
    std::atomic<int> fuse_;
  };

  Network net(GetParam());
  InMemoryBlockStore raw(4068, 1 << 18);
  FusedStore fused(&raw, 1 << 30);
  FileServer fs(&net, "fs", &fused);
  fs.Start();
  ASSERT_TRUE(fs.AttachStore().ok());

  auto file = fs.CreateFile();
  ASSERT_TRUE(file.ok());
  {
    auto v = fs.CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(fs.InsertRef(*v, PagePath::Root(), i).ok());
      ASSERT_TRUE(fs.WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                               Bytes("stable" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(fs.Commit(*v).ok());
  }

  // Light the fuse, then attempt a multi-page update; it may fail at any point.
  FusedStore working(&raw, fail_after);
  FileServer victim(&net, "victim", &working);
  victim.Start();
  ASSERT_TRUE(victim.AttachStore().ok());
  auto doomed = victim.CreateVersion(*file, kNullPort, false);
  if (doomed.ok()) {
    for (int i = 0; i < 3; ++i) {
      if (!victim.WritePage(*doomed, PagePath({static_cast<uint32_t>(i)}), Bytes("torn"))
               .ok()) {
        break;
      }
    }
    (void)victim.Commit(*doomed);
  }
  victim.Crash();

  // Consistency: through a healthy server, the file reads completely, and each page holds
  // either the old or (only if the commit won) the new value — never garbage.
  auto current = fs.GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  for (int i = 0; i < 3; ++i) {
    auto read = fs.ReadPage(*current, PagePath({static_cast<uint32_t>(i)}), false);
    ASSERT_TRUE(read.ok()) << "page " << i << " unreadable after outage";
    std::string text = Text(read->data);
    EXPECT_TRUE(text == "stable" + std::to_string(i) || text == "torn") << text;
  }
  // And the redo path works.
  auto redo = fs.CreateVersion(*file, kNullPort, false);
  ASSERT_TRUE(redo.ok());
  ASSERT_TRUE(fs.WritePage(*redo, PagePath({0}), Bytes("redone")).ok());
  EXPECT_TRUE(fs.Commit(*redo).ok());
}

// --- P3: GC safety -----------------------------------------------------------

TEST_P(PropertyTest, P3_GcNeverBreaksReadersAndReachesFixpoint) {
  Rng rng(GetParam());
  FastCluster cluster;
  GarbageCollector gc({&cluster.fs()}, GcOptions{.keep_versions = 2});

  std::vector<Capability> files;
  std::map<uint64_t, std::map<uint32_t, std::string>> model;
  for (int f = 0; f < 3; ++f) {
    auto file = cluster.fs().CreateFile();
    ASSERT_TRUE(file.ok());
    auto v = cluster.fs().CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(cluster.fs().InsertRef(*v, PagePath::Root(), i).ok());
      std::string value = "f" + std::to_string(f) + "p" + std::to_string(i);
      ASSERT_TRUE(
          cluster.fs().WritePage(*v, PagePath({static_cast<uint32_t>(i)}), Bytes(value)).ok());
      model[file->object][i] = value;
    }
    ASSERT_TRUE(cluster.fs().Commit(*v).ok());
    files.push_back(*file);
  }

  for (int step = 0; step < 60; ++step) {
    int action = static_cast<int>(rng.NextBelow(10));
    const Capability& file = files[rng.NextBelow(files.size())];
    if (action < 6) {
      // Committed write.
      auto v = cluster.fs().CreateVersion(file, kNullPort, false);
      if (!v.ok()) {
        continue;
      }
      uint32_t page = static_cast<uint32_t>(rng.NextBelow(4));
      std::string value = "s" + std::to_string(step);
      if (cluster.fs().WritePage(*v, PagePath({page}), Bytes(value)).ok() &&
          cluster.fs().Commit(*v).ok()) {
        model[file.object][page] = value;
      }
    } else if (action < 8) {
      // Aborted write.
      auto v = cluster.fs().CreateVersion(file, kNullPort, false);
      if (v.ok()) {
        (void)cluster.fs().WritePage(*v, PagePath({0}), Bytes("noise"));
        (void)cluster.fs().Abort(*v);
      }
    } else {
      (void)gc.RunCycle();
    }
    if (step % 10 == 9) {
      // Everything in the model must be readable at any point.
      for (const Capability& check : files) {
        auto current = cluster.fs().GetCurrentVersion(check);
        ASSERT_TRUE(current.ok());
        for (const auto& [page, value] : model[check.object]) {
          auto read = cluster.fs().ReadPage(*current, PagePath({page}), false);
          ASSERT_TRUE(read.ok()) << "step " << step;
          EXPECT_EQ(Text(read->data), value);
        }
      }
    }
  }

  // Fixpoint: one quiescent cycle may still prune history; the next must sweep nothing.
  ASSERT_TRUE(gc.RunCycle().ok());
  uint64_t swept_before = gc.stats().blocks_swept;
  ASSERT_TRUE(gc.RunCycle().ok());
  EXPECT_EQ(gc.stats().blocks_swept, swept_before);
}

// --- P4: cache correctness ---------------------------------------------------

TEST_P(PropertyTest, P4_ValidatingCacheNeverServesStaleData) {
  Rng rng(GetParam());
  FullCluster cluster(1);
  FileClient writer(&cluster.net(), cluster.FileServerPorts());
  CachedFileClient reader(&cluster.net(), cluster.FileServerPorts());

  auto file = writer.CreateFile();
  ASSERT_TRUE(file.ok());
  std::map<uint32_t, std::string> model;
  {
    auto v = writer.CreateVersion(*file);
    ASSERT_TRUE(v.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(writer.InsertRef(*v, PagePath::Root(), i).ok());
      std::string value = "init" + std::to_string(i);
      ASSERT_TRUE(writer.WriteString(*v, PagePath({static_cast<uint32_t>(i)}), value).ok());
      model[i] = value;
    }
    ASSERT_TRUE(writer.Commit(*v).ok());
  }

  for (int step = 0; step < 80; ++step) {
    if (rng.NextBool(0.4)) {
      // Committed write, bypassing the reader's cache entirely.
      auto v = writer.CreateVersion(*file);
      ASSERT_TRUE(v.ok());
      uint32_t page = static_cast<uint32_t>(rng.NextBelow(4));
      std::string value = "w" + std::to_string(step);
      ASSERT_TRUE(writer.WriteString(*v, PagePath({page}), value).ok());
      ASSERT_TRUE(writer.Commit(*v).ok());
      model[page] = value;
    } else {
      uint32_t page = static_cast<uint32_t>(rng.NextBelow(4));
      auto data = reader.Read(*file, PagePath({page}));
      ASSERT_TRUE(data.ok());
      EXPECT_EQ(Text(*data), model[page]) << "stale cache at step " << step;
    }
  }
  EXPECT_GT(reader.cache().hits(), 0u);  // the cache did actually serve reads
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace afs
