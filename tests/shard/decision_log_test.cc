// JournalDecisionLog: durability of commit records across reopen, the durable
// incarnation counter that keeps transaction ids unique across coordinator restarts,
// presumed-abort garbage collection (Forget), and journal compaction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "src/shard/decision_log.h"
#include "src/shard/txn_id.h"

namespace afs {
namespace {

std::string ScratchLogPath() {
  char tmpl[] = "/tmp/afs_decision_log_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir) + "/decision.log";
}

TEST(DecisionLogTest, CommitRecordsSurviveReopen) {
  const std::string path = ScratchLogPath();
  {
    auto log = JournalDecisionLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status();
    ASSERT_TRUE((*log)->LogCommit(501, {0, 1}).ok());
    EXPECT_TRUE((*log)->Committed(501));
    EXPECT_FALSE((*log)->Committed(502));
  }
  auto reopened = JournalDecisionLog::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->Committed(501));
  EXPECT_FALSE((*reopened)->Committed(502));
}

TEST(DecisionLogTest, IncarnationStrictlyIncreasesAcrossReopens) {
  // The chaos-suite kill/restart scenario: every reopen of the same durable log must
  // claim a fresh incarnation, so transaction ids minted against it can never repeat an
  // earlier incarnation's stream (an RNG seeded from a heap address readily can).
  const std::string path = ScratchLogPath();
  uint64_t previous = 0;
  for (int i = 0; i < 3; ++i) {
    auto log = JournalDecisionLog::Open(path);
    ASSERT_TRUE(log.ok()) << log.status();
    EXPECT_GT((*log)->incarnation(), previous);
    previous = (*log)->incarnation();
  }
  // Ids minted under distinct incarnations differ even at equal sequence numbers.
  EXPECT_NE(MakeTxnId(0, 1, 1), MakeTxnId(0, 2, 1));
}

TEST(DecisionLogTest, TxnIdFieldsRoundTrip) {
  const uint64_t id = MakeTxnId(/*owner_shard=*/3, /*incarnation=*/7, /*sequence=*/41);
  EXPECT_EQ(TxnOwnerShard(id), 3u);
  EXPECT_EQ(TxnIncarnation(id), 7u);
  EXPECT_EQ(TxnSequence(id), 41u);
  EXPECT_NE(id, 0u);  // 0 is "no prepare" in the page header; sequences start at 1
}

TEST(DecisionLogTest, ForgetRetiresRecordsDurably) {
  const std::string path = ScratchLogPath();
  {
    auto log = JournalDecisionLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->LogCommit(601, {0, 1}).ok());
    ASSERT_TRUE((*log)->LogCommit(602, {0, 1}).ok());
    ASSERT_TRUE((*log)->Forget(601).ok());
    EXPECT_FALSE((*log)->Committed(601));
    EXPECT_TRUE((*log)->Committed(602));
    EXPECT_EQ((*log)->records(), 1u);
    ASSERT_TRUE((*log)->Forget(601).ok());  // idempotent on unknown/already-retired ids
  }
  auto reopened = JournalDecisionLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->Committed(601));
  EXPECT_TRUE((*reopened)->Committed(602));
}

TEST(DecisionLogTest, CompactionBoundsTheJournal) {
  const std::string path = ScratchLogPath();
  auto log = JournalDecisionLog::Open(path);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->LogCommit(1, {0, 1}).ok());  // stays live throughout
  // Commit-and-retire well past the compaction threshold: without GC this is ~2 journal
  // records per transaction forever; with it the file must shrink back to the live set.
  uint64_t peak = 0;
  for (uint64_t txn = 2; txn <= 300; ++txn) {
    ASSERT_TRUE((*log)->LogCommit(txn, {0, 1}).ok());
    peak = std::max(peak, (*log)->journal_bytes());
    ASSERT_TRUE((*log)->Forget(txn).ok());
  }
  EXPECT_EQ((*log)->records(), 1u);
  EXPECT_LT((*log)->journal_bytes(), peak);
  EXPECT_TRUE((*log)->Committed(1));
  EXPECT_FALSE((*log)->Committed(250));
  // The compacted image is a complete, replayable log.
  log->reset();
  auto reopened = JournalDecisionLog::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->Committed(1));
  EXPECT_FALSE((*reopened)->Committed(250));
  EXPECT_EQ((*reopened)->records(), 1u);
}

}  // namespace
}  // namespace afs
