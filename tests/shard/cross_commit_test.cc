// Cross-shard transactions: the optimistic two-phase variant of the §5.2 commit
// (docs/SHARDING.md). Covers routing/placement, the single-participant fast path, atomic
// two-shard commit and abort, in-doubt invisibility, presumed-abort recovery after both
// coordinator and participant crashes, GC protection of staged tips, and the I8 fsck
// invariant on in-doubt markers.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/client/file_client.h"
#include "src/core/fsck.h"
#include "src/core/gc.h"
#include "src/shard/router.h"
#include "src/shard/shard_fsck.h"
#include "src/shard/txn_id.h"
#include "tests/testing/shard_cluster.h"

namespace afs {
namespace {

// Commits `text` to `file` through the ordinary single-shard path.
Status CommitText(ShardCluster& cluster, const Capability& file, const std::string& text) {
  auto client = cluster.router().ClientForFile(file);
  RETURN_IF_ERROR(client.status());
  ASSIGN_OR_RETURN(Capability v, (*client)->CreateVersion(file));
  RETURN_IF_ERROR((*client)->WriteString(v, PagePath::Root(), text));
  return (*client)->Commit(v).status();
}

Result<std::string> ReadText(ShardCluster& cluster, const Capability& file) {
  auto client = cluster.router().ClientForFile(file);
  RETURN_IF_ERROR(client.status());
  ASSIGN_OR_RETURN(Capability current, (*client)->GetCurrentVersion(file));
  return (*client)->ReadString(current, PagePath::Root());
}

uint64_t Count(FileServer& fs, const char* name) {
  return fs.metrics()->counter(name)->value();
}

TEST(ShardRouterTest, PlacementFollowsTheCongruence) {
  ShardCluster cluster(3);
  for (uint32_t k = 0; k < 3; ++k) {
    auto file = cluster.router().CreateFileOn(k);
    ASSERT_TRUE(file.ok()) << file.status();
    // The shard is computable from the capability alone — no lookup, no extra state.
    EXPECT_EQ(file->object % 3, k);
    EXPECT_EQ(cluster.router().ShardOf(*file), k);
  }
  // Round-robin placement touches every shard.
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 6; ++i) {
    auto file = cluster.router().CreateFile();
    ASSERT_TRUE(file.ok());
    ++hits[cluster.router().ShardOf(*file)];
  }
  EXPECT_EQ(hits, (std::vector<int>{2, 2, 2}));
}

TEST(ShardRouterTest, ReloadDemandsAdvancingEpoch) {
  ShardCluster cluster(2);
  ShardMap stale = cluster.router().map();
  EXPECT_FALSE(cluster.router().Reload(stale).ok());  // same epoch → rejected
  ShardMap fresh = cluster.router().map();
  fresh.epoch += 1;
  EXPECT_TRUE(cluster.router().Reload(fresh).ok());
  EXPECT_EQ(cluster.router().map().epoch, stale.epoch + 1);
}

TEST(CrossCommitTest, SingleParticipantTakesTheFastPath) {
  ShardCluster cluster(2);
  auto file = cluster.router().CreateFileOn(1);
  ASSERT_TRUE(file.ok());

  CrossTransaction xt(&cluster.router());
  auto v = xt.CreateVersion(*file);
  ASSERT_TRUE(v.ok()) << v.status();
  auto client = xt.Client(*file);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->WriteString(*v, PagePath::Root(), "solo").ok());
  auto heads = xt.Commit();
  ASSERT_TRUE(heads.ok()) << heads.status();
  EXPECT_EQ(heads->size(), 1u);
  EXPECT_EQ(*ReadText(cluster, *file), "solo");

  // No coordination happened: the commit was the plain §5.2 path, byte for byte.
  EXPECT_EQ(Count(cluster.fs(0), "shard.prepare"), 0u);
  EXPECT_EQ(Count(cluster.fs(1), "shard.prepare"), 0u);
  EXPECT_EQ(Count(cluster.fs(0), "shard.cross_commit"), 0u);
}

TEST(CrossCommitTest, TwoShardsCommitAtomically) {
  ShardCluster cluster(2);
  auto a = cluster.router().CreateFileOn(0);
  auto b = cluster.router().CreateFileOn(1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(CommitText(cluster, *a, "0").ok());
  ASSERT_TRUE(CommitText(cluster, *b, "0").ok());

  CrossTransaction xt(&cluster.router());
  auto va = xt.CreateVersion(*a);
  auto vb = xt.CreateVersion(*b);
  ASSERT_TRUE(va.ok() && vb.ok());
  ASSERT_TRUE((*xt.Client(*a))->WriteString(*va, PagePath::Root(), "1").ok());
  ASSERT_TRUE((*xt.Client(*b))->WriteString(*vb, PagePath::Root(), "1").ok());
  auto heads = xt.Commit();
  ASSERT_TRUE(heads.ok()) << heads.status();
  EXPECT_EQ(heads->size(), 2u);

  EXPECT_EQ(*ReadText(cluster, *a), "1");
  EXPECT_EQ(*ReadText(cluster, *b), "1");

  // Both participants prepared and committed; the decision went through the coordinator.
  EXPECT_EQ(Count(cluster.fs(0), "shard.prepare"), 1u);
  EXPECT_EQ(Count(cluster.fs(1), "shard.prepare"), 1u);
  EXPECT_EQ(Count(cluster.fs(0), "shard.decide_commit"), 1u);
  EXPECT_EQ(Count(cluster.fs(1), "shard.decide_commit"), 1u);
  EXPECT_EQ(Count(cluster.fs(0), "shard.cross_commit"), 1u);

  // Nothing left in doubt; every shard passes fsck with the strict in-doubt gate.
  for (FileServer* fs : cluster.Servers()) {
    EXPECT_TRUE(fs->ListInDoubt().empty());
    EXPECT_TRUE(RunFsck(fs, {.fail_on_in_doubt = true}).clean);
  }
}

TEST(CrossCommitTest, ConflictOnOneShardAbortsEveryShard) {
  ShardCluster cluster(2);
  auto a = cluster.router().CreateFileOn(0);
  auto b = cluster.router().CreateFileOn(1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(CommitText(cluster, *a, "0").ok());
  ASSERT_TRUE(CommitText(cluster, *b, "0").ok());

  CrossTransaction xt(&cluster.router());
  auto va = xt.CreateVersion(*a);
  auto vb = xt.CreateVersion(*b);
  ASSERT_TRUE(va.ok() && vb.ok());
  // Read before writing: blind writes merge under §5.2 validation, a read-write conflict
  // does not — and the competing commit below must invalidate this read.
  ASSERT_TRUE((*xt.Client(*a))->ReadString(*va, PagePath::Root()).ok());
  ASSERT_TRUE((*xt.Client(*b))->ReadString(*vb, PagePath::Root()).ok());
  ASSERT_TRUE((*xt.Client(*a))->WriteString(*va, PagePath::Root(), "torn").ok());
  ASSERT_TRUE((*xt.Client(*b))->WriteString(*vb, PagePath::Root(), "torn").ok());

  // A competing single-shard commit lands on B first. The cross transaction prepares A
  // (participant order), then fails validation on B — and must abort A too.
  ASSERT_TRUE(CommitText(cluster, *b, "winner").ok());
  auto heads = xt.Commit();
  ASSERT_FALSE(heads.ok());
  EXPECT_EQ(heads.status().code(), ErrorCode::kConflict) << heads.status();

  // All-or-nothing: A is untouched even though its own validation had succeeded.
  EXPECT_EQ(*ReadText(cluster, *a), "0");
  EXPECT_EQ(*ReadText(cluster, *b), "winner");
  EXPECT_EQ(Count(cluster.fs(0), "shard.decide_abort"), 1u);
  EXPECT_EQ(Count(cluster.fs(0), "shard.cross_abort"), 1u);
  EXPECT_EQ(Count(cluster.fs(0), "shard.cross_prepare_fail"), 1u);

  // The abort released A's chain: a fresh single-shard commit goes straight through.
  ASSERT_TRUE(CommitText(cluster, *a, "after").ok());
  EXPECT_EQ(*ReadText(cluster, *a), "after");
  for (FileServer* fs : cluster.Servers()) {
    EXPECT_TRUE(fs->ListInDoubt().empty());
    EXPECT_TRUE(RunFsck(fs, {.fail_on_in_doubt = true}).clean);
  }
}

TEST(CrossCommitTest, InDoubtTipIsInvisibleUntilDecided) {
  ShardCluster cluster(2);
  auto b = cluster.router().CreateFileOn(1);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(CommitText(cluster, *b, "0").ok());
  auto client = cluster.router().ClientForFile(*b);
  ASSERT_TRUE(client.ok());

  auto v = (*client)->CreateVersion(*b);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*client)->WriteString(*v, PagePath::Root(), "staged").ok());
  ASSERT_TRUE(cluster.fs(1).Prepare(*v, /*txn_id=*/77).ok());

  // Readers see the base version; the staged tip never looks committed.
  EXPECT_EQ(*ReadText(cluster, *b), "0");

  // A concurrent commit on the same file hits the marked successor and conflicts.
  EXPECT_EQ(CommitText(cluster, *b, "intruder").code(), ErrorCode::kConflict);

  // fsck: one in-doubt tip, tolerated by default, an error under the strict gate.
  FsckReport relaxed = RunFsck(&cluster.fs(1));
  EXPECT_TRUE(relaxed.clean) << relaxed.ToString();
  EXPECT_EQ(relaxed.in_doubt, 1u);
  EXPECT_FALSE(RunFsck(&cluster.fs(1), {.fail_on_in_doubt = true}).clean);

  // Abort restores the chain; the previously conflicting commit now succeeds.
  ASSERT_TRUE(cluster.fs(1).Decide(77, /*commit=*/false).ok());
  EXPECT_EQ(*ReadText(cluster, *b), "0");
  ASSERT_TRUE(CommitText(cluster, *b, "intruder").ok());
  EXPECT_EQ(*ReadText(cluster, *b), "intruder");

  // And the commit arm: a decided-commit tip becomes the current version.
  auto v2 = (*client)->CreateVersion(*b);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE((*client)->WriteString(*v2, PagePath::Root(), "flipped").ok());
  ASSERT_TRUE(cluster.fs(1).Prepare(*v2, /*txn_id=*/78).ok());
  ASSERT_TRUE(cluster.fs(1).Decide(78, /*commit=*/true).ok());
  EXPECT_EQ(*ReadText(cluster, *b), "flipped");
  EXPECT_TRUE(RunFsck(&cluster.fs(1), {.fail_on_in_doubt = true}).clean);
}

TEST(CrossCommitTest, ParticipantRestartRediscoversInDoubtTips) {
  ShardCluster cluster(2);
  auto b = cluster.router().CreateFileOn(1);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(CommitText(cluster, *b, "0").ok());
  auto client = cluster.router().ClientForFile(*b);
  ASSERT_TRUE(client.ok());

  auto v = (*client)->CreateVersion(*b);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*client)->WriteString(*v, PagePath::Root(), "doomed").ok());
  ASSERT_TRUE(cluster.fs(1).Prepare(*v, /*txn_id=*/99).ok());

  // The participant dies between prepare and decide. Its in-memory prepared table is
  // gone; the on-disk marker is the only record — and recovery must find it.
  cluster.RestartShard(1);
  auto in_doubt = cluster.fs(1).ListInDoubt();
  ASSERT_EQ(in_doubt.size(), 1u);
  EXPECT_EQ(in_doubt[0].txn_id, 99u);

  // The sharded fsck classifies it against the decision log: unlogged → will abort.
  auto servers = cluster.Servers();
  ShardFsckReport report = RunShardFsck(servers, &cluster.log());
  EXPECT_TRUE(report.clean) << report.ToString();
  EXPECT_EQ(report.in_doubt, 1u);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("will abort"), std::string::npos) << report.notes[0];

  auto resolved = ResolveInDoubt(servers, cluster.log());
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_EQ(resolved->aborted, 1u);
  EXPECT_EQ(resolved->committed, 0u);
  EXPECT_EQ(*ReadText(cluster, *b), "0");

  // Commit arm: the decision log holds a record, so the same crash resolves forward.
  auto v2 = (*client)->CreateVersion(*b);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE((*client)->WriteString(*v2, PagePath::Root(), "durable").ok());
  ASSERT_TRUE(cluster.fs(1).Prepare(*v2, /*txn_id=*/100).ok());
  ASSERT_TRUE(cluster.log().LogCommit(100, {1}).ok());
  cluster.RestartShard(1);
  report = RunShardFsck(servers, &cluster.log());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("will commit"), std::string::npos) << report.notes[0];
  resolved = ResolveInDoubt(servers, cluster.log());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->committed, 1u);
  EXPECT_EQ(*ReadText(cluster, *b), "durable");
  EXPECT_TRUE(RunFsck(&cluster.fs(1), {.fail_on_in_doubt = true}).clean);
}

TEST(CrossCommitTest, CoordinatorDeathIsResolvedByPresumedAbort) {
  ShardCluster cluster(2);
  auto a = cluster.router().CreateFileOn(0);
  auto b = cluster.router().CreateFileOn(1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(CommitText(cluster, *a, "0").ok());
  ASSERT_TRUE(CommitText(cluster, *b, "0").ok());
  auto ca = cluster.router().ClientForFile(*a);
  auto cb = cluster.router().ClientForFile(*b);
  ASSERT_TRUE(ca.ok() && cb.ok());

  // Phase 1 completed on both shards, then the coordinator died BEFORE logging: no
  // decision record exists, so recovery must abort both participants.
  auto va = (*ca)->CreateVersion(*a);
  auto vb = (*cb)->CreateVersion(*b);
  ASSERT_TRUE(va.ok() && vb.ok());
  ASSERT_TRUE((*ca)->WriteString(*va, PagePath::Root(), "7").ok());
  ASSERT_TRUE((*cb)->WriteString(*vb, PagePath::Root(), "7").ok());
  ASSERT_TRUE(cluster.fs(0).Prepare(*va, /*txn_id=*/55).ok());
  ASSERT_TRUE(cluster.fs(1).Prepare(*vb, /*txn_id=*/55).ok());

  auto stats = cluster.coord().RecoverInDoubt();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->resolved_abort, 2u);
  EXPECT_EQ(stats->resolved_commit, 0u);
  EXPECT_EQ(*ReadText(cluster, *a), "0");
  EXPECT_EQ(*ReadText(cluster, *b), "0");

  // Died AFTER logging: the record exists, recovery must finish the commit everywhere.
  va = (*ca)->CreateVersion(*a);
  vb = (*cb)->CreateVersion(*b);
  ASSERT_TRUE(va.ok() && vb.ok());
  ASSERT_TRUE((*ca)->WriteString(*va, PagePath::Root(), "8").ok());
  ASSERT_TRUE((*cb)->WriteString(*vb, PagePath::Root(), "8").ok());
  ASSERT_TRUE(cluster.fs(0).Prepare(*va, /*txn_id=*/56).ok());
  ASSERT_TRUE(cluster.fs(1).Prepare(*vb, /*txn_id=*/56).ok());
  ASSERT_TRUE(cluster.log().LogCommit(56, {0, 1}).ok());

  stats = cluster.coord().RecoverInDoubt();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->resolved_commit, 2u);
  EXPECT_EQ(*ReadText(cluster, *a), "8");
  EXPECT_EQ(*ReadText(cluster, *b), "8");
  for (FileServer* fs : cluster.Servers()) {
    EXPECT_TRUE(RunFsck(fs, {.fail_on_in_doubt = true}).clean);
  }
}

TEST(CrossCommitTest, RecoveryLeavesForeignTransactionsAlone) {
  // Every shard in a deployment runs its own recovery sweep against its own decision
  // log. A transaction coordinated by shard 1 must not be presumed aborted by shard 0's
  // coordinator: shard 0's log never saw it, so its silence means nothing.
  ShardCluster cluster(2);
  auto b = cluster.router().CreateFileOn(1);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(CommitText(cluster, *b, "0").ok());
  auto client = cluster.router().ClientForFile(*b);
  ASSERT_TRUE(client.ok());

  // An in-doubt prepare whose txn id names shard 1 as its coordinator — as if shard 1's
  // coordinator durably logged a commit and died before phase 2.
  const uint64_t foreign = MakeTxnId(/*owner_shard=*/1, /*incarnation=*/1, /*sequence=*/9);
  auto v = (*client)->CreateVersion(*b);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*client)->WriteString(*v, PagePath::Root(), "theirs").ok());
  ASSERT_TRUE(cluster.fs(1).Prepare(*v, foreign).ok());

  // The cluster's coordinator serves shard 0: its sweep must skip the foreign prepare,
  // not abort it.
  auto stats = cluster.coord().RecoverInDoubt();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->resolved_abort, 0u);
  EXPECT_EQ(stats->resolved_commit, 0u);
  EXPECT_GE(stats->skipped_foreign, 1u);
  EXPECT_EQ(cluster.fs(1).ListInDoubt().size(), 1u);

  // The coordinator also refuses to answer kResolveTxn for it — only the owner's log
  // can distinguish "committed" from "presumed abort".
  EXPECT_FALSE(cluster.coord().Resolve(foreign).ok());

  // The owner's verdict (here delivered by hand) still lands normally.
  ASSERT_TRUE(cluster.fs(1).Decide(foreign, /*commit=*/false).ok());
  EXPECT_EQ(*ReadText(cluster, *b), "0");
}

TEST(CrossCommitTest, RecoverySkipsTransactionsStillInFlight) {
  // An operator-triggered sweep racing a live CommitCross must not presume-abort a
  // transaction that sits between its prepares and its commit point. The crash hook
  // fires exactly there ("prepared": all participants staged, decision not yet logged) —
  // run a recovery sweep from inside it and the commit must still succeed.
  ShardCluster cluster(2);
  auto a = cluster.router().CreateFileOn(0);
  auto b = cluster.router().CreateFileOn(1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(CommitText(cluster, *a, "0").ok());
  ASSERT_TRUE(CommitText(cluster, *b, "0").ok());

  ShardCoordinator::RecoveryStats mid_flight;
  cluster.coord().set_crash_hook([&](const char* at) {
    if (std::string(at) == "prepared") {
      auto stats = cluster.coord().RecoverInDoubt();
      ASSERT_TRUE(stats.ok()) << stats.status();
      mid_flight = *stats;
    }
  });

  CrossTransaction xt(&cluster.router());
  auto va = xt.CreateVersion(*a);
  auto vb = xt.CreateVersion(*b);
  ASSERT_TRUE(va.ok() && vb.ok());
  ASSERT_TRUE((*xt.Client(*a))->WriteString(*va, PagePath::Root(), "fenced").ok());
  ASSERT_TRUE((*xt.Client(*b))->WriteString(*vb, PagePath::Root(), "fenced").ok());
  auto heads = xt.Commit();
  ASSERT_TRUE(heads.ok()) << heads.status();

  // The sweep saw the staged prepares on both shards and left them alone.
  EXPECT_EQ(mid_flight.resolved_abort, 0u);
  EXPECT_EQ(mid_flight.skipped_live, 2u);
  EXPECT_EQ(*ReadText(cluster, *a), "fenced");
  EXPECT_EQ(*ReadText(cluster, *b), "fenced");
}

TEST(CrossCommitTest, GcDoesNotSweepPreparedTips) {
  ShardCluster cluster(1);
  auto file = cluster.router().CreateFileOn(0);
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(CommitText(cluster, *file, "gen" + std::to_string(i)).ok());
  }
  auto client = cluster.router().ClientForFile(*file);
  ASSERT_TRUE(client.ok());
  auto v = (*client)->CreateVersion(*file);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE((*client)->WriteString(*v, PagePath::Root(), "staged-survivor").ok());
  ASSERT_TRUE(cluster.fs(0).Prepare(*v, /*txn_id=*/60).ok());

  // An aggressive pruning cycle runs while the tip is in doubt: the staged version's
  // pages are part of the GC root set and must survive.
  GarbageCollector gc({&cluster.fs(0)}, GcOptions{.keep_versions = 1});
  ASSERT_TRUE(gc.RunCycle().ok());

  ASSERT_TRUE(cluster.fs(0).Decide(60, /*commit=*/true).ok());
  EXPECT_EQ(*ReadText(cluster, *file), "staged-survivor");
  EXPECT_TRUE(RunFsck(&cluster.fs(0), {.fail_on_in_doubt = true}).clean);
}

}  // namespace
}  // namespace afs
