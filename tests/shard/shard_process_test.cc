// Multi-process sharding: two real afs_server --shard k/2 processes wired into one
// deployment over genuine TCP, driven from this process through DiscoverShardMap +
// ShardRouter + CrossTransaction. Covers the happy cross-shard commit and the two kill -9
// coordinator arms of docs/SHARDING.md §5: SIGKILL between prepare and the decision-log
// write must abort everywhere on recovery; SIGKILL between the log write and phase 2 must
// commit everywhere.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/client/file_client.h"
#include "src/net/tcp_transport.h"
#include "src/shard/discovery.h"
#include "src/shard/router.h"

namespace afs {
namespace {

// One afs_server --shard child. Stdout is line-parsed (LISTENING, SHARDED); stdin stays
// open for the peers line. `crash_point` sets AFS_SHARD_CRASH in the child's environment.
class ShardServerProcess {
 public:
  ShardServerProcess(const std::string& store_dir, uint32_t shard_id, uint32_t num_shards,
                     const std::string& crash_point = "") {
    Launch(store_dir, shard_id, num_shards, crash_point);
  }

  ~ShardServerProcess() { KillHard(); }

  void Launch(const std::string& store_dir, uint32_t shard_id, uint32_t num_shards,
              const std::string& crash_point) {
    const char* bin = std::getenv("AFS_SERVER_BIN");
    if (bin == nullptr) {
      ADD_FAILURE() << "AFS_SERVER_BIN not set (run via ctest)";
      return;
    }
    int out_pipe[2];
    int in_pipe[2];
    ASSERT_EQ(pipe(out_pipe), 0);
    ASSERT_EQ(pipe(in_pipe), 0);
    pid_ = fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      dup2(out_pipe[1], STDOUT_FILENO);
      dup2(in_pipe[0], STDIN_FILENO);
      close(out_pipe[0]);
      close(out_pipe[1]);
      close(in_pipe[0]);
      close(in_pipe[1]);
      if (!crash_point.empty()) {
        setenv("AFS_SHARD_CRASH", crash_point.c_str(), 1);
      } else {
        unsetenv("AFS_SHARD_CRASH");
      }
      std::string shard_arg =
          std::to_string(shard_id) + "/" + std::to_string(num_shards);
      std::vector<std::string> args = {bin,       "--port",  "0",
                                       "--store", store_dir, "--shard",
                                       shard_arg};
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) {
        argv.push_back(a.data());
      }
      argv.push_back(nullptr);
      execv(bin, argv.data());
      _exit(127);
    }
    close(out_pipe[1]);
    close(in_pipe[0]);
    out_fd_ = out_pipe[0];
    in_fd_ = in_pipe[1];
    std::string line = WaitForLine("LISTENING ");
    unsigned port = 0;
    if (std::sscanf(line.c_str(), "LISTENING %u", &port) != 1 || port == 0) {
      ADD_FAILURE() << "no LISTENING line; got: " << line;
    }
    port_ = static_cast<uint16_t>(port);
  }

  uint16_t port() const { return port_; }
  std::string address() const { return "127.0.0.1:" + std::to_string(port_); }

  void SendPeers(const std::string& peers) {
    std::string line = "peers " + peers + "\n";
    ASSERT_EQ(write(in_fd_, line.data(), line.size()),
              static_cast<ssize_t>(line.size()));
  }

  // Blocks until a stdout line starting with `prefix` arrives (or ~20 s pass).
  std::string WaitForLine(const std::string& prefix) {
    for (int spin = 0; spin < 200; ++spin) {
      size_t nl;
      while ((nl = buffer_.find('\n')) != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (line.rfind(prefix, 0) == 0) {
          return line;
        }
      }
      struct pollfd pfd = {out_fd_, POLLIN, 0};
      if (poll(&pfd, 1, 100) <= 0) {
        continue;
      }
      char buf[512];
      ssize_t n = read(out_fd_, buf, sizeof(buf));
      if (n <= 0) {
        break;  // child died
      }
      buffer_.append(buf, static_cast<size_t>(n));
    }
    ADD_FAILURE() << "no '" << prefix << "' line; buffered: " << buffer_;
    return "";
  }

  // Wait for the child to exit on its own (the AFS_SHARD_CRASH _Exit path).
  bool WaitForExit() {
    if (pid_ <= 0) {
      return false;
    }
    int status = 0;
    for (int spin = 0; spin < 200; ++spin) {
      pid_t done = waitpid(pid_, &status, WNOHANG);
      if (done == pid_) {
        pid_ = -1;
        CloseFds();
        return true;
      }
      usleep(100 * 1000);
    }
    return false;
  }

  void KillHard() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    CloseFds();
  }

  void Quit() {
    if (pid_ > 0 && in_fd_ >= 0) {
      (void)!write(in_fd_, "quit\n", 5);
      close(in_fd_);
      in_fd_ = -1;
      waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    CloseFds();
  }

 private:
  void CloseFds() {
    if (out_fd_ >= 0) {
      close(out_fd_);
      out_fd_ = -1;
    }
    if (in_fd_ >= 0) {
      close(in_fd_);
      in_fd_ = -1;
    }
  }

  pid_t pid_ = -1;
  int out_fd_ = -1;
  int in_fd_ = -1;
  uint16_t port_ = 0;
  std::string buffer_;
};

std::string MakeScratchDir() {
  char tmpl[] = "/tmp/afs_shard_process_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

// The client half: one transport per shard (from discovery) and a router over them.
struct ShardedClient {
  Status Connect(const std::vector<std::string>& addresses) {
    ASSIGN_OR_RETURN(ShardMap map, DiscoverShardMap(addresses, &transports));
    ASSIGN_OR_RETURN(router, ShardRouter::Make(std::move(map), [this](const ShardEntry& e) {
                       return static_cast<Transport*>(transports[e.shard_id].get());
                     }));
    return OkStatus();
  }

  std::vector<std::unique_ptr<net::TcpTransport>> transports;
  std::unique_ptr<ShardRouter> router;
};

Result<std::string> ReadText(ShardedClient& c, const Capability& file) {
  ASSIGN_OR_RETURN(auto client, c.router->ClientForFile(file));
  ASSIGN_OR_RETURN(Capability current, client->GetCurrentVersion(file));
  return client->ReadString(current, PagePath::Root());
}

Status CommitText(ShardedClient& c, const Capability& file, const std::string& text) {
  ASSIGN_OR_RETURN(auto client, c.router->ClientForFile(file));
  ASSIGN_OR_RETURN(Capability v, client->CreateVersion(file));
  RETURN_IF_ERROR(client->WriteString(v, PagePath::Root(), text));
  return client->Commit(v).status();
}

// Stages a 2-of-2-shard transaction writing `text` to both files and commits it.
Result<std::vector<BlockNo>> CommitBoth(ShardedClient& c, const Capability& a,
                                        const Capability& b, const std::string& text) {
  CrossTransaction xt(c.router.get());
  ASSIGN_OR_RETURN(Capability va, xt.CreateVersion(a));
  ASSIGN_OR_RETURN(Capability vb, xt.CreateVersion(b));
  ASSIGN_OR_RETURN(auto ca, xt.Client(a));
  ASSIGN_OR_RETURN(auto cb, xt.Client(b));
  RETURN_IF_ERROR(ca->WriteString(va, PagePath::Root(), text));
  RETURN_IF_ERROR(cb->WriteString(vb, PagePath::Root(), text));
  return xt.Commit();
}

void FormDeployment(ShardServerProcess& s0, ShardServerProcess& s1) {
  std::string peers = s0.address() + "," + s1.address();
  s0.SendPeers(peers);
  s1.SendPeers(peers);
  EXPECT_NE(s0.WaitForLine("SHARDED"), "");
  EXPECT_NE(s1.WaitForLine("SHARDED"), "");
}

TEST(ShardProcessTest, CrossShardCommitAcrossRealProcesses) {
  std::string store0 = MakeScratchDir();
  std::string store1 = MakeScratchDir();
  ShardServerProcess s0(store0, 0, 2);
  ShardServerProcess s1(store1, 1, 2);
  ASSERT_NE(s0.port(), 0);
  ASSERT_NE(s1.port(), 0);
  FormDeployment(s0, s1);

  ShardedClient client;
  ASSERT_TRUE(client.Connect({s0.address(), s1.address()}).ok());
  auto a = client.router->CreateFileOn(0);
  auto b = client.router->CreateFileOn(1);
  ASSERT_TRUE(a.ok() && b.ok());
  // The placement congruence holds across processes.
  EXPECT_EQ(a->object % 2, 0u);
  EXPECT_EQ(b->object % 2, 1u);
  ASSERT_TRUE(CommitText(client, *a, "0").ok());
  ASSERT_TRUE(CommitText(client, *b, "0").ok());

  auto heads = CommitBoth(client, *a, *b, "both");
  ASSERT_TRUE(heads.ok()) << heads.status();
  EXPECT_EQ(heads->size(), 2u);
  EXPECT_EQ(*ReadText(client, *a), "both");
  EXPECT_EQ(*ReadText(client, *b), "both");

  s0.Quit();
  s1.Quit();
}

// The crash matrix, one arm per test. `crash_point` is where the coordinator process dies
// (via AFS_SHARD_CRASH → _Exit, i.e. kill -9 semantics: no destructors, no flushes);
// `expect_committed` is what BOTH shards must read after recovery.
void RunCoordinatorCrashArm(const std::string& crash_point, bool expect_committed) {
  std::string store0 = MakeScratchDir();
  std::string store1 = MakeScratchDir();
  auto s0 = std::make_unique<ShardServerProcess>(store0, 0, 2, crash_point);
  ShardServerProcess s1(store1, 1, 2);
  ASSERT_NE(s0->port(), 0);
  ASSERT_NE(s1.port(), 0);
  FormDeployment(*s0, s1);

  ShardedClient client;
  ASSERT_TRUE(client.Connect({s0->address(), s1.address()}).ok());
  auto a = client.router->CreateFileOn(0);
  auto b = client.router->CreateFileOn(1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(CommitText(client, *a, "0").ok());
  ASSERT_TRUE(CommitText(client, *b, "0").ok());

  // The cross commit routes to shard 0's coordinator, which dies at the crash point —
  // after both participants staged their in-doubt versions. The client sees a failure.
  auto heads = CommitBoth(client, *a, *b, "1");
  EXPECT_FALSE(heads.ok());
  ASSERT_TRUE(s0->WaitForExit()) << "coordinator never died at " << crash_point;

  // Restart the coordinator process on the same stores and re-form the deployment; its
  // recovery sweep must resolve the in-doubt prepare on BOTH shards by the presumed-abort
  // rule: no decision record → abort everywhere; durable record → commit everywhere.
  s0 = std::make_unique<ShardServerProcess>(store0, 0, 2);
  ASSERT_NE(s0->port(), 0);
  std::string peers = s0->address() + "," + s1.address();
  s0->SendPeers(peers);
  std::string sharded = s0->WaitForLine("SHARDED");
  unsigned long long commits = 0, aborts = 0;
  ASSERT_EQ(std::sscanf(sharded.c_str(), "SHARDED %llu %llu", &commits, &aborts), 2)
      << sharded;
  if (expect_committed) {
    EXPECT_EQ(commits, 2u) << sharded;
    EXPECT_EQ(aborts, 0u) << sharded;
  } else {
    EXPECT_EQ(commits, 0u) << sharded;
    EXPECT_EQ(aborts, 2u) << sharded;
  }

  ShardedClient after;
  ASSERT_TRUE(after.Connect({s0->address(), s1.address()}).ok());
  const std::string expected = expect_committed ? "1" : "0";
  // All-or-nothing across the crash: both shards agree, whichever arm this is.
  EXPECT_EQ(*ReadText(after, *a), expected);
  EXPECT_EQ(*ReadText(after, *b), expected);

  s0->Quit();
  s1.Quit();
}

TEST(ShardProcessTest, KillNineBeforeDecisionLogAbortsEverywhere) {
  RunCoordinatorCrashArm("prepared", /*expect_committed=*/false);
}

TEST(ShardProcessTest, KillNineAfterDecisionLogCommitsEverywhere) {
  RunCoordinatorCrashArm("logged", /*expect_committed=*/true);
}

}  // namespace
}  // namespace afs
