// ShardMap unit tests: placement arithmetic, structural validation, wire roundtrip.

#include "src/shard/shard_map.h"

#include <gtest/gtest.h>

namespace afs {
namespace {

ShardMap MakeMap(uint32_t n) {
  ShardMap map;
  map.epoch = 3;
  for (uint32_t k = 0; k < n; ++k) {
    ShardEntry entry;
    entry.shard_id = k;
    entry.name = "shard" + std::to_string(k);
    entry.address = "127.0.0.1:" + std::to_string(7000 + k);
    entry.file_servers = {static_cast<Port>(10 + 2 * k), static_cast<Port>(11 + 2 * k)};
    entry.directory = static_cast<Port>(100 + k);
    map.shards.push_back(std::move(entry));
  }
  return map;
}

TEST(ShardMapTest, PlacementCongruence) {
  // One shard owns everything; otherwise the owning shard is file id mod shard count.
  EXPECT_EQ(ShardMap::ShardOfFile(12345, 1), 0u);
  EXPECT_EQ(ShardMap::ShardOfFile(0, 1), 0u);
  for (uint64_t id = 1; id < 100; ++id) {
    EXPECT_EQ(ShardMap::ShardOfFile(id, 4), id % 4);
  }
  ShardMap map = MakeMap(3);
  EXPECT_EQ(map.ShardOfFile(7), 7u % 3u);
}

TEST(ShardMapTest, FindByShardId) {
  ShardMap map = MakeMap(3);
  ASSERT_NE(map.Find(2), nullptr);
  EXPECT_EQ(map.Find(2)->name, "shard2");
  EXPECT_EQ(map.Find(9), nullptr);
}

TEST(ShardMapTest, ValidateAcceptsDenseIds) {
  EXPECT_TRUE(MakeMap(1).Validate().ok());
  EXPECT_TRUE(MakeMap(4).Validate().ok());
  // Order does not matter, only the id set.
  ShardMap shuffled = MakeMap(3);
  std::swap(shuffled.shards[0], shuffled.shards[2]);
  EXPECT_TRUE(shuffled.Validate().ok());
}

TEST(ShardMapTest, ValidateRejectsBrokenMaps) {
  EXPECT_FALSE(ShardMap{}.Validate().ok());  // empty

  ShardMap dup = MakeMap(2);
  dup.shards[1].shard_id = 0;  // duplicate id → id 1 missing
  EXPECT_FALSE(dup.Validate().ok());

  ShardMap sparse = MakeMap(2);
  sparse.shards[1].shard_id = 5;  // ids must be exactly 0..n-1
  EXPECT_FALSE(sparse.Validate().ok());

  ShardMap no_fs = MakeMap(2);
  no_fs.shards[0].file_servers.clear();  // a shard no client can reach
  EXPECT_FALSE(no_fs.Validate().ok());
}

TEST(ShardMapTest, EncodeDecodeRoundtrip) {
  ShardMap map = MakeMap(4);
  auto decoded = ShardMap::Decode(map.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->epoch, map.epoch);
  ASSERT_EQ(decoded->num_shards(), 4u);
  for (uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(decoded->shards[k].shard_id, map.shards[k].shard_id);
    EXPECT_EQ(decoded->shards[k].name, map.shards[k].name);
    EXPECT_EQ(decoded->shards[k].address, map.shards[k].address);
    EXPECT_EQ(decoded->shards[k].file_servers, map.shards[k].file_servers);
    EXPECT_EQ(decoded->shards[k].directory, map.shards[k].directory);
  }
}

TEST(ShardMapTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(ShardMap::Decode({}).ok());

  std::vector<uint8_t> blob = MakeMap(2).Encode();
  std::vector<uint8_t> truncated(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_FALSE(ShardMap::Decode(truncated).ok());

  std::vector<uint8_t> bad_version = blob;
  bad_version[0] = 0xee;  // unknown format tag
  EXPECT_FALSE(ShardMap::Decode(bad_version).ok());
}

}  // namespace
}  // namespace afs
