// Frame-codec hardening: the FrameReader must survive arbitrary chunking of the byte
// stream (partial reads, torn frames) and fail *cleanly* on malformed input — oversized
// frames, zero-length frames, garbage prefixes, truncated fields — never with undefined
// behaviour. This is the satellite test surface of docs/NET.md §1.

#include "src/net/frame.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/base/wire.h"

namespace afs {
namespace net {
namespace {

Message SampleRequest() {
  Message m(0x1234, {1, 2, 3, 4, 5});
  m.client_id = 7;
  m.txn_id = 9;
  m.trace_id = 11;
  m.span_id = 13;
  m.parent_span_id = 15;
  return m;
}

TEST(FrameCodec, RequestRoundTrip) {
  Frame frame = MakeRequestFrame(42, /*target=*/17, SampleRequest(), /*deadline_ms=*/250);
  std::vector<uint8_t> bytes = EncodeFrame(frame);

  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(*got);
  EXPECT_EQ(out.type, FrameType::kRequest);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.target, 17u);
  EXPECT_EQ(out.deadline_ms, 250u);
  EXPECT_EQ(out.message.opcode, 0x1234u);
  EXPECT_EQ(out.message.client_id, 7u);
  EXPECT_EQ(out.message.txn_id, 9u);
  EXPECT_EQ(out.message.trace_id, 11u);
  EXPECT_EQ(out.message.span_id, 13u);
  EXPECT_EQ(out.message.parent_span_id, 15u);
  EXPECT_EQ(out.message.payload, std::vector<uint8_t>({1, 2, 3, 4, 5}));
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodec, ErrorReplyRoundTrip) {
  Frame frame = MakeErrorFrame(8, 0x77, CrashedError("service is down"));
  std::vector<uint8_t> bytes = EncodeFrame(frame);

  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(*got);
  EXPECT_EQ(out.type, FrameType::kReplyError);
  EXPECT_EQ(out.seq, 8u);
  EXPECT_EQ(out.message.opcode, 0x77u);
  EXPECT_EQ(out.error.code(), ErrorCode::kCrashed);
  EXPECT_EQ(out.error.message(), "service is down");
}

// Every possible split point of a valid frame: feeding the prefix must report "need more
// bytes" (not an error), and feeding the rest must complete the frame.
TEST(FrameCodec, TornFramesAtEverySplitPoint) {
  Frame frame = MakeRequestFrame(1, 3, SampleRequest(), 100);
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  for (size_t split = 0; split < bytes.size(); ++split) {
    FrameReader reader;
    reader.Feed(bytes.data(), split);
    Frame out;
    auto first = reader.Next(&out);
    ASSERT_TRUE(first.ok()) << "split at " << split << ": " << first.status();
    EXPECT_FALSE(*first) << "split at " << split;
    reader.Feed(bytes.data() + split, bytes.size() - split);
    auto second = reader.Next(&out);
    ASSERT_TRUE(second.ok()) << "split at " << split << ": " << second.status();
    EXPECT_TRUE(*second) << "split at " << split;
    EXPECT_EQ(out.seq, 1u);
  }
}

// Byte-at-a-time delivery of several back-to-back frames (the worst-case read chunking).
TEST(FrameCodec, ByteAtATimeStream) {
  std::vector<uint8_t> stream;
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    std::vector<uint8_t> bytes = EncodeFrame(MakeRequestFrame(seq, 5, SampleRequest(), 50));
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  FrameReader reader;
  uint64_t next_seq = 1;
  for (uint8_t byte : stream) {
    reader.Feed(&byte, 1);
    Frame out;
    auto got = reader.Next(&out);
    ASSERT_TRUE(got.ok()) << got.status();
    if (*got) {
      EXPECT_EQ(out.seq, next_seq++);
    }
  }
  EXPECT_EQ(next_seq, 4u);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodec, GarbagePrefixFailsCleanly) {
  const uint8_t garbage[] = "GET / HTTP/1.1\r\nHost: not-afs\r\n\r\n";
  FrameReader reader;
  reader.Feed(garbage, sizeof(garbage));
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kInvalidArgument);
}

TEST(FrameCodec, ZeroLengthBodyFailsCleanly) {
  WireEncoder enc;
  enc.PutU32(kFrameMagic);
  enc.PutU32(0);  // body_len = 0: no room for even the fixed fields
  std::vector<uint8_t> bytes = std::move(enc).Take();
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kInvalidArgument);
}

TEST(FrameCodec, UndersizedBodyFailsCleanly) {
  WireEncoder enc;
  enc.PutU32(kFrameMagic);
  enc.PutU32(static_cast<uint32_t>(kMinFrameBody - 1));
  std::vector<uint8_t> bytes = std::move(enc).Take();
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kInvalidArgument);
}

// A length prefix over kMaxFrameBody must be rejected from the header alone — before any
// attempt to buffer the claimed body (a 4 GiB length must not allocate 4 GiB).
TEST(FrameCodec, OversizedFrameRejectedFromHeader) {
  WireEncoder enc;
  enc.PutU32(kFrameMagic);
  enc.PutU32(0xFFFFFFFFu);
  std::vector<uint8_t> bytes = std::move(enc).Take();
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kInvalidArgument);
}

// A payload larger than one transaction message is over-limit even when the frame body
// itself is within framing bounds.
TEST(FrameCodec, OverLimitPayloadRejected) {
  Message big(1, std::vector<uint8_t>(kMaxMessageBytes + 1, 0xAB));
  std::vector<uint8_t> bytes = EncodeFrame(MakeRequestFrame(1, 2, std::move(big), 100));
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kInvalidArgument);
}

TEST(FrameCodec, UnknownFrameTypeFailsCleanly) {
  Frame frame = MakeRequestFrame(1, 2, SampleRequest(), 100);
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes[kFrameHeaderBytes] = 0x7F;  // clobber the type byte
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kInvalidArgument);
}

// An error frame whose status code is out of the ErrorCode range (or claims OK) is
// malformed — a reply-error must carry a real error.
TEST(FrameCodec, ErrorFrameWithBadCodeFailsCleanly) {
  Frame frame = MakeErrorFrame(1, 2, TimeoutError("x"));
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  // The u32 code sits right after the fixed body fields.
  size_t code_offset = kFrameHeaderBytes + kMinFrameBody;
  uint32_t bogus = 0xDEAD;
  std::memcpy(bytes.data() + code_offset, &bogus, sizeof(bogus));
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kInvalidArgument);
}

// A truncated error-frame body (string length prefix promising more bytes than the body
// holds) must fail via the bounds-checked decoder, not read out of bounds.
TEST(FrameCodec, TruncatedErrorStringFailsCleanly) {
  Frame frame = MakeErrorFrame(1, 2, TimeoutError("a long enough message"));
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  // Shrink the frame: chop the last 10 bytes off the body and fix up body_len so the
  // header is self-consistent but the string inside is truncated.
  bytes.resize(bytes.size() - 10);
  uint32_t new_len = static_cast<uint32_t>(bytes.size() - kFrameHeaderBytes);
  std::memcpy(bytes.data() + 4, &new_len, sizeof(new_len));
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  Frame out;
  auto got = reader.Next(&out);
  ASSERT_FALSE(got.ok());
  // The bounds-checked decoder reports truncation as kCorrupt; either way, a clean error.
  EXPECT_TRUE(got.status().code() == ErrorCode::kInvalidArgument ||
              got.status().code() == ErrorCode::kCorrupt)
      << got.status();
}

// After the reader consumes many frames its internal buffer must not grow without bound.
TEST(FrameCodec, BufferCompactsAcrossManyFrames) {
  FrameReader reader;
  std::vector<uint8_t> bytes = EncodeFrame(MakeRequestFrame(1, 2, SampleRequest(), 50));
  for (int i = 0; i < 10000; ++i) {
    reader.Feed(bytes.data(), bytes.size());
    Frame out;
    auto got = reader.Next(&out);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(*got);
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace afs
