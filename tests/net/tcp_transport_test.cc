// TcpTransport against a loopback TcpServer: the real-socket backend must preserve every
// transaction-primitive semantic of the simulated Network — echo round trips, error
// propagation, the §5.3 crash warning (service crash AND whole-process death), at-most-once
// retransmission through the socket fault shim, connection-scoped transaction ports, and
// server-side resource limits (connection cap, idle sweep).

#include "src/net/tcp_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/net/tcp_server.h"
#include "src/obs/span.h"
#include "src/rpc/client.h"
#include "src/rpc/network.h"
#include "src/rpc/service.h"

namespace afs {
namespace {

class EchoService : public Service {
 public:
  EchoService(Network* net, std::string name) : Service(net, std::move(name)) {}

  std::atomic<int> handled{0};

 protected:
  Result<Message> Handle(const Message& request) override {
    ++handled;
    switch (request.opcode) {
      case 1:
        return Message(1, request.payload);
      case 2:
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return Message(2, {});
      case 3:
        return ConflictError("handler says no");
      default:
        return InvalidArgumentError("bad opcode");
    }
  }
};

// One loopback deployment per test: inner Network, one echo service, a TcpServer on an
// ephemeral port, and a TcpTransport dialled at it.
struct Loopback {
  explicit Loopback(net::TcpServer::Options server_options = net::TcpServer::Options(),
                    uint64_t client_seed = 1)
      : inner(7), echo(&inner, "echo"), server(&inner, std::move(server_options)) {
    echo.Start();
    server.Expose(&echo, "echo", net::ServiceKind::kOther);
    Status st = server.Start();
    EXPECT_TRUE(st.ok()) << st;
    net::TcpTransport::Options topt;
    topt.seed = client_seed;
    transport = std::make_unique<net::TcpTransport>("127.0.0.1", server.port(), topt);
  }

  Network inner;
  EchoService echo;
  net::TcpServer server;
  std::unique_ptr<net::TcpTransport> transport;
};

TEST(TcpTransportTest, EchoRoundTrip) {
  Loopback rig;
  auto reply = rig.transport->Call(rig.echo.port(), Message(1, {1, 2, 3}));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(rig.echo.handled.load(), 1);
}

TEST(TcpTransportTest, HandlerErrorPropagatesOverTheWire) {
  Loopback rig;
  auto reply = rig.transport->Call(rig.echo.port(), Message(3, {}));
  EXPECT_EQ(reply.status().code(), ErrorCode::kConflict);
  EXPECT_EQ(reply.status().message(), "handler says no");
}

TEST(TcpTransportTest, UnknownPortIsNotFound) {
  Loopback rig;
  EXPECT_EQ(rig.transport->Call(12345, Message(1, {})).status().code(),
            ErrorCode::kNotFound);
}

TEST(TcpTransportTest, ServiceCrashWarnsImmediately) {
  Loopback rig;
  rig.echo.Crash();
  auto reply = rig.transport->Call(rig.echo.port(), Message(1, {}));
  EXPECT_EQ(reply.status().code(), ErrorCode::kCrashed);
  // Never retransmitted: the crash warning must stay immediate (§5.3).
  EXPECT_EQ(rig.transport->retransmits(), 0u);
}

TEST(TcpTransportTest, DeadServerProcessIsACrashWarning) {
  net::TcpTransport transport("127.0.0.1", 1);  // nobody listens on port 1
  auto reply = transport.Call(5, Message(1, {}));
  EXPECT_EQ(reply.status().code(), ErrorCode::kCrashed);
  EXPECT_EQ(transport.retransmits(), 0u);
}

TEST(TcpTransportTest, ServerStopSurfacesAsCrashOnInFlightCall) {
  auto rig = std::make_unique<Loopback>();
  // Warm a connection so the stop closes it under us.
  ASSERT_TRUE(rig->transport->Call(rig->echo.port(), Message(1, {})).ok());
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    rig->server.Stop();
  });
  CallOptions opts;
  opts.timeout = std::chrono::milliseconds(2000);
  auto reply = rig->transport->Call(rig->echo.port(), Message(2, {}), opts);
  stopper.join();
  EXPECT_EQ(reply.status().code(), ErrorCode::kCrashed);
}

TEST(TcpTransportTest, DroppedRequestsAreRetransmitted) {
  Loopback rig;
  rig.transport->set_fault_injection(FaultInjection{.drop_request = 0.5});
  for (int i = 0; i < 20; ++i) {
    auto reply = rig.transport->Call(rig.echo.port(), Message(1, {42}));
    ASSERT_TRUE(reply.ok()) << reply.status();
  }
  EXPECT_GT(rig.transport->retransmits(), 0u);
  EXPECT_GT(rig.transport->dropped_calls(), 0u);
}

TEST(TcpTransportTest, DroppedReplyIsReplayedFromServerCacheNotReExecuted) {
  Loopback rig;
  // Drop the first reply deterministically-ish: p=1.0 would loop forever, so drop with
  // p=0.5 and rely on the counters to prove at least one replay happened.
  rig.transport->set_fault_injection(FaultInjection{.drop_reply = 0.5});
  const int kCalls = 30;
  for (int i = 0; i < kCalls; ++i) {
    auto reply = rig.transport->Call(rig.echo.port(), Message(1, {7}));
    ASSERT_TRUE(reply.ok()) << reply.status();
  }
  EXPECT_GT(rig.transport->dropped_replies(), 0u);
  // Every logical call executed exactly once: each dropped reply's retransmission was
  // answered from the reply cache, not by re-running the handler.
  EXPECT_EQ(rig.echo.handled.load(), kCalls);
}

TEST(TcpTransportTest, DuplicateDeliveriesAreAbsorbedByReplyCache) {
  Loopback rig;
  rig.transport->set_fault_injection(FaultInjection{.duplicate_request = 0.5});
  const int kCalls = 30;
  for (int i = 0; i < kCalls; ++i) {
    auto reply = rig.transport->Call(rig.echo.port(), Message(1, {9}));
    ASSERT_TRUE(reply.ok()) << reply.status();
  }
  EXPECT_GT(rig.transport->duplicate_deliveries(), 0u);
  EXPECT_EQ(rig.echo.handled.load(), kCalls);
}

TEST(TcpTransportTest, PartitionIsUnavailableAndNeverRetransmitted) {
  Loopback rig;
  rig.transport->SetPartitioned(rig.echo.port(), true);
  auto reply = rig.transport->Call(rig.echo.port(), Message(1, {}));
  EXPECT_EQ(reply.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(rig.transport->retransmits(), 0u);
  rig.transport->SetPartitioned(rig.echo.port(), false);
  EXPECT_TRUE(rig.transport->Call(rig.echo.port(), Message(1, {})).ok());
}

TEST(TcpTransportTest, ClientSpanRecordsTheLogicalCall) {
  Loopback rig;
  obs::SetSpanEnabled(true);
  (void)rig.transport->Call(rig.echo.port(), Message(1, {1}));
  std::string spans = obs::DumpSpansText(100);
  obs::SetSpanEnabled(false);
  // One rpc.call client span, plus the server-side handle span in the same process-wide
  // collector (loopback: both ends share the process).
  EXPECT_NE(spans.find("rpc.call:1"), std::string::npos) << spans;
}

// Remote transaction ports: allocated in the server's Network, visible to other clients,
// and scoped to the allocating client's connection (§5.3 over real sockets).
TEST(TcpTransportTest, RemotePortsAreConnectionScoped) {
  Loopback rig;
  net::TcpTransport::Options topt;
  topt.seed = 2;
  auto observer =
      std::make_unique<net::TcpTransport>("127.0.0.1", rig.server.port(), topt);

  auto owner = std::make_unique<net::TcpTransport>("127.0.0.1", rig.server.port());
  Port port = owner->AllocatePort();
  ASSERT_NE(port, kNullPort);
  EXPECT_TRUE(owner->IsPortAlive(port));
  EXPECT_TRUE(observer->IsPortAlive(port));  // visible across clients
  EXPECT_TRUE(rig.inner.IsPortAlive(port));  // it lives in the server's table

  // Client dies (destructor closes its control connection): the server reaps its ports,
  // so a waiter polling the lock's port sees the holder die.
  owner.reset();
  bool died = false;
  for (int i = 0; i < 100 && !died; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    died = !observer->IsPortAlive(port);
  }
  EXPECT_TRUE(died);
}

TEST(TcpTransportTest, ExplicitClosePortIsImmediate) {
  Loopback rig;
  Port port = rig.transport->AllocatePort();
  ASSERT_NE(port, kNullPort);
  EXPECT_TRUE(rig.transport->IsPortAlive(port));
  rig.transport->ClosePort(port);
  EXPECT_FALSE(rig.transport->IsPortAlive(port));
}

TEST(TcpTransportTest, ConnectionLimitRejectsExtraClients) {
  net::TcpServer::Options sopt;
  sopt.max_connections = 1;
  Loopback rig(sopt);
  // First client takes the single slot with its control connection.
  ASSERT_TRUE(rig.transport->SayHello().ok());
  // A second client's connection is accepted and immediately dropped.
  net::TcpTransport::Options topt;
  topt.seed = 3;
  topt.dial_timeout = std::chrono::milliseconds(200);
  topt.control_timeout = std::chrono::milliseconds(200);
  net::TcpTransport second("127.0.0.1", rig.server.port(), topt);
  EXPECT_FALSE(second.SayHello().ok());
  EXPECT_GT(rig.server.metrics()->counter("net.tcp.conn_limit_rejects")->value(), 0u);
}

TEST(TcpTransportTest, IdleConnectionsAreSweptAndReconnectedTransparently) {
  net::TcpServer::Options sopt;
  sopt.idle_timeout = std::chrono::milliseconds(50);
  Loopback rig(sopt);
  ASSERT_TRUE(rig.transport->Call(rig.echo.port(), Message(1, {})).ok());
  // Let the server's idle sweep close the pooled connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_GT(rig.server.metrics()->counter("net.tcp.idle_closes")->value(), 0u);
  // The pool discards the dead connection and redials; the call must NOT surface kCrashed.
  auto reply = rig.transport->Call(rig.echo.port(), Message(1, {5}));
  EXPECT_TRUE(reply.ok()) << reply.status();
}

TEST(TcpTransportTest, StatsScrapeWorksOverTcp) {
  Loopback rig;
  ASSERT_TRUE(rig.transport->Call(rig.echo.port(), Message(1, {})).ok());
  auto text = ScrapeStats(rig.transport.get(), rig.echo.port());
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("# registry echo"), std::string::npos);
}

TEST(TcpTransportTest, OversizedPayloadRejectedClientSide) {
  Loopback rig;
  Message big(1, std::vector<uint8_t>(kMaxMessageBytes + 1, 0));
  auto reply = rig.transport->Call(rig.echo.port(), std::move(big));
  EXPECT_EQ(reply.status().code(), ErrorCode::kInvalidArgument);
}

// Two transports to one server must stamp DISJOINT at-most-once identities. With
// transport-local counters both would start at client_id 1, and the second client's
// (1, txn 1) would be answered from the first client's reply-cache entry — a cross-client
// replay. The server hands each remote transport its own id namespace (kNetClientId).
TEST(TcpTransportTest, TwoTransportsNeverShareAtMostOnceIdentity) {
  Loopback rig;
  net::TcpTransport::Options topt;
  topt.seed = 99;
  net::TcpTransport second("127.0.0.1", rig.server.port(), topt);

  auto first_reply = rig.transport->Call(rig.echo.port(), Message(1, {0xAA}));
  ASSERT_TRUE(first_reply.ok()) << first_reply.status();
  auto second_reply = second.Call(rig.echo.port(), Message(1, {0xBB}));
  ASSERT_TRUE(second_reply.ok()) << second_reply.status();
  // A collision would replay the first client's cached {0xAA} to the second client.
  EXPECT_EQ(second_reply->payload, std::vector<uint8_t>{0xBB});
  EXPECT_EQ(rig.echo.handled.load(), 2);
}

TEST(TcpTransportTest, ConcurrentCallersShareTheDeployment) {
  Loopback rig;
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        auto reply = rig.transport->Call(
            rig.echo.port(), Message(1, {static_cast<uint8_t>(t), static_cast<uint8_t>(i)}));
        if (!reply.ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rig.echo.handled.load(), kThreads * kCallsPerThread);
}

}  // namespace
}  // namespace afs
