// Migrator tests over a live file service: eligibility classification (version pages and
// hot trees stay magnetic), byte-identical history after migration, the reclamation floor,
// tiered fsck, GC interoperation, and the tier admin RPCs.

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/client/file_client.h"
#include "src/core/gc.h"
#include "src/disk/mem_disk.h"
#include "src/disk/write_once_disk.h"
#include "src/tier/fsck.h"
#include "src/tier/migrator.h"
#include "src/tier/scrubber.h"
#include "src/tier/tiered_store.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// One FileServer on a TieredStore over (InMemoryBlockStore, WriteOnceDisk-on-MemDisk).
// The committed-page cache is off so every read is answered by the store — the tier's
// read-through path, not the server cache, is what serves archived history.
class TierMigrationTest : public ::testing::Test {
 protected:
  TierMigrationTest() : net_(3), magnetic_(4068, 1 << 20), media_(4096, 2048) {
    platter_ = std::make_unique<WriteOnceDisk>(&media_);
    tiered_ = std::make_unique<TieredStore>(&magnetic_, platter_.get());
    EXPECT_TRUE(tiered_->Mount().ok());
    FileServerOptions options;
    options.cache_committed_pages = false;
    fs_ = std::make_unique<FileServer>(&net_, "fs0", tiered_.get(), options);
    fs_->Start();
    EXPECT_TRUE(fs_->AttachStore().ok());
  }

  Capability MakeFile(int pages) {
    auto file = fs_->CreateFile();
    auto v = fs_->CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < pages; ++i) {
      (void)fs_->InsertRef(*v, PagePath::Root(), i);
      (void)fs_->WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                           std::vector<uint8_t>(2000, static_cast<uint8_t>(i)));
    }
    (void)fs_->Commit(*v);
    return *file;
  }

  void CommitGeneration(const Capability& file, int pages, int gen) {
    auto v = fs_->CreateVersion(file, kNullPort, false);
    ASSERT_TRUE(v.ok()) << v.status();
    for (int i = 0; i < pages; ++i) {
      std::vector<uint8_t> data(2000, static_cast<uint8_t>(gen * 16 + i));
      ASSERT_TRUE(fs_->WritePage(*v, PagePath({static_cast<uint32_t>(i)}), data).ok());
    }
    auto commit = fs_->Commit(*v);
    ASSERT_TRUE(commit.ok()) << commit.status();
  }

  // Every block reachable from any committed version of `file`, with its raw payload as
  // served by the tiered store right now.
  std::unordered_map<BlockNo, std::vector<uint8_t>> SnapshotHistory(const Capability& file) {
    std::unordered_map<BlockNo, std::vector<uint8_t>> contents;
    auto chain = fs_->CommittedChain(file.object);
    EXPECT_TRUE(chain.ok());
    std::unordered_set<BlockNo> reachable;
    for (BlockNo head : *chain) {
      EXPECT_TRUE(WalkVersionTree(fs_->page_store(), head, &reachable,
                                  [](const Page&, const std::vector<BlockNo>&) {})
                      .ok());
    }
    for (BlockNo bno : reachable) {
      auto data = tiered_->Read(bno);
      EXPECT_TRUE(data.ok()) << "block " << bno << ": " << data.status();
      if (data.ok()) {
        contents[bno] = std::move(*data);
      }
    }
    return contents;
  }

  Network net_;
  InMemoryBlockStore magnetic_;
  MemDisk media_;
  std::unique_ptr<WriteOnceDisk> platter_;
  std::unique_ptr<TieredStore> tiered_;
  std::unique_ptr<FileServer> fs_;
};

TEST_F(TierMigrationTest, HistoryBytesIdenticalAfterMigration) {
  Capability file = MakeFile(4);
  for (int gen = 0; gen < 8; ++gen) {
    CommitGeneration(file, 4, gen);
  }
  auto before = SnapshotHistory(file);
  ASSERT_FALSE(before.empty());

  Migrator migrator({fs_.get()}, tiered_.get());
  auto migrated = migrator.RunCycle();
  ASSERT_TRUE(migrated.ok()) << migrated.status();
  EXPECT_GT(*migrated, 0u);

  // Every block of every committed version — archived or magnetic — reads back
  // byte-identical through the tier.
  tiered_->DropPromotions();
  auto after = SnapshotHistory(file);
  EXPECT_EQ(before, after);
}

TEST_F(TierMigrationTest, MigrationReclaimsAtLeastHalfTheMagneticBlocks) {
  // The acceptance workload: one file, many generations, every page rewritten each time,
  // so almost all storage is old-version plain pages. keep_hot_versions=1 leaves only the
  // newest tree (plus version pages and the file table) magnetic.
  Capability file = MakeFile(4);
  for (int gen = 0; gen < 12; ++gen) {
    CommitGeneration(file, 4, gen);
  }
  const size_t before = magnetic_.allocated_blocks();
  Migrator migrator({fs_.get()}, tiered_.get());
  auto migrated = migrator.RunCycle();
  ASSERT_TRUE(migrated.ok()) << migrated.status();
  const size_t after = magnetic_.allocated_blocks();
  EXPECT_EQ(before - after, *migrated);  // every archived block's magnetic copy reclaimed
  EXPECT_GE(before - after, (before + 1) / 2)
      << "reclaimed " << (before - after) << " of " << before << " magnetic blocks";
  EXPECT_EQ(tiered_->Stats().magnetic_reclaimed, before - after);
}

TEST_F(TierMigrationTest, VersionPagesAndHotTreeStayMagnetic) {
  Capability file = MakeFile(3);
  for (int gen = 0; gen < 5; ++gen) {
    CommitGeneration(file, 3, gen);
  }
  Migrator migrator({fs_.get()}, tiered_.get());
  ASSERT_TRUE(migrator.RunCycle().ok());

  // Every version page of the chain is still magnetic (they are overwritten in place by
  // commit and GC), and so is the whole newest tree.
  auto chain = fs_->CommittedChain(file.object);
  ASSERT_TRUE(chain.ok());
  for (BlockNo head : *chain) {
    EXPECT_FALSE(tiered_->archived(head)) << "version page " << head << " archived";
  }
  std::unordered_set<BlockNo> newest;
  ASSERT_TRUE(WalkVersionTree(fs_->page_store(), chain->back(), &newest,
                              [](const Page&, const std::vector<BlockNo>&) {})
                  .ok());
  for (BlockNo bno : newest) {
    EXPECT_FALSE(tiered_->archived(bno)) << "hot block " << bno << " archived";
  }
  // And something older genuinely was archived.
  EXPECT_GT(tiered_->archived_blocks(), 0u);
}

TEST_F(TierMigrationTest, UncommittedVersionsAreNeverArchived) {
  Capability file = MakeFile(2);
  CommitGeneration(file, 2, 0);
  // A live uncommitted version based on the current tree.
  auto v = fs_->CreateVersion(file, kNullPort, false);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(fs_->WritePage(*v, PagePath({0}), Bytes("work in progress")).ok());

  Migrator migrator({fs_.get()}, tiered_.get());
  ASSERT_TRUE(migrator.RunCycle().ok());
  for (BlockNo head : fs_->ListUncommitted()) {
    std::unordered_set<BlockNo> tree;
    ASSERT_TRUE(WalkVersionTree(fs_->page_store(), head, &tree,
                                [](const Page&, const std::vector<BlockNo>&) {})
                    .ok());
    for (BlockNo bno : tree) {
      EXPECT_FALSE(tiered_->archived(bno)) << "uncommitted block " << bno << " archived";
    }
  }
  // The version still commits cleanly after the cycle.
  auto commit = fs_->Commit(*v);
  EXPECT_TRUE(commit.ok()) << commit.status();
}

TEST_F(TierMigrationTest, TieredFsckCleanAfterMigration) {
  Capability file = MakeFile(4);
  for (int gen = 0; gen < 6; ++gen) {
    CommitGeneration(file, 4, gen);
  }
  Migrator migrator({fs_.get()}, tiered_.get());
  ASSERT_TRUE(migrator.RunCycle().ok());
  FsckReport report = RunTieredFsck(fs_.get(), tiered_.get());
  EXPECT_TRUE(report.clean) << report.ToString();
  EXPECT_GT(report.blocks_archived, 0u);
  EXPECT_EQ(report.archived_verified, report.blocks_archived);
  EXPECT_EQ(report.archived_corrupt, 0u);
}

TEST_F(TierMigrationTest, GcPruneFreesArchivedBlocksThroughTheTier) {
  Capability file = MakeFile(3);
  for (int gen = 0; gen < 6; ++gen) {
    CommitGeneration(file, 3, gen);
  }
  Migrator migrator({fs_.get()}, tiered_.get());
  ASSERT_TRUE(migrator.RunCycle().ok());
  const size_t archived_before = tiered_->archived_blocks();
  ASSERT_GT(archived_before, 0u);

  // Pruning drops the old versions whose pages were archived; their frees travel through
  // the tier as durable unmap records, so the mappings are gone — and stay gone after a
  // remount of the archive.
  GarbageCollector gc({fs_.get()}, GcOptions{.keep_versions = 1});
  ASSERT_TRUE(gc.RunCycle().ok());
  EXPECT_LT(tiered_->archived_blocks(), archived_before);
  FsckReport report = RunTieredFsck(fs_.get(), tiered_.get());
  EXPECT_TRUE(report.clean) << report.ToString();

  const size_t mapped = tiered_->archived_blocks();
  auto platter2 = std::make_unique<WriteOnceDisk>(&media_);
  TieredStore remounted(&magnetic_, platter2.get());
  ASSERT_TRUE(remounted.Mount().ok());
  EXPECT_EQ(remounted.archived_blocks(), mapped);
}

TEST_F(TierMigrationTest, AdminRpcsDriveMigrationAndScrub) {
  Migrator migrator({fs_.get()}, tiered_.get());
  Scrubber scrubber(tiered_.get());
  fs_->SetTierAdmin({.migrate = [&] { return migrator.RunCycle(); },
                     .scrub = [&] { return scrubber.RunPass(); },
                     .stat = [&] { return tiered_->Stats(); }});
  FileClient client(&net_, {fs_->port()});

  Capability file = MakeFile(3);
  for (int gen = 0; gen < 5; ++gen) {
    CommitGeneration(file, 3, gen);
  }
  auto migrated = client.MigrateNow();
  ASSERT_TRUE(migrated.ok()) << migrated.status();
  EXPECT_GT(*migrated, 0u);

  auto stat = client.TierStat();
  ASSERT_TRUE(stat.ok());
  EXPECT_TRUE(stat->enabled);
  EXPECT_EQ(stat->archived_blocks, tiered_->archived_blocks());
  EXPECT_EQ(stat->migrated_total, *migrated);
  EXPECT_GT(stat->magnetic_reclaimed, 0u);

  auto scrub = client.ScrubNow();
  ASSERT_TRUE(scrub.ok());
  EXPECT_EQ(scrub->checked, tiered_->archived_blocks());
  EXPECT_EQ(scrub->unrecoverable, 0u);
}

TEST_F(TierMigrationTest, AdminRpcsUnavailableWithoutATier) {
  // A server with no tier attached answers migrate/scrub with kUnavailable and stat with
  // enabled=false — clients can probe for the feature.
  FileClient client(&net_, {fs_->port()});
  EXPECT_EQ(client.MigrateNow().status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(client.ScrubNow().status().code(), ErrorCode::kUnavailable);
  auto stat = client.TierStat();
  ASSERT_TRUE(stat.ok());
  EXPECT_FALSE(stat->enabled);
}

}  // namespace
}  // namespace afs
