// Crash-mid-migration suite: for every catalogued TierCrashPoint, cut the power there,
// simulate a restart (fresh WriteOnceDisk + TieredStore + FileServer over the surviving
// media), and assert the migration invariant — every block of every committed version is
// readable, byte-identical, from one tier or the other — then re-run the migration to
// completion. The per-point media states are the crash matrix of docs/TIERING.md.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/gc.h"
#include "src/disk/mem_disk.h"
#include "src/disk/write_once_disk.h"
#include "src/tier/crash_point.h"
#include "src/tier/fsck.h"
#include "src/tier/migrator.h"
#include "src/tier/tiered_store.h"

namespace afs {
namespace {

class TierCrashTest : public ::testing::TestWithParam<TierCrashPoint> {
 protected:
  TierCrashTest() : net_(5), magnetic_(4068, 1 << 20), media_(4096, 2048) { Boot(); }

  // (Re)build the whole stack over the surviving media_ + magnetic_, as a restart would.
  void Boot() {
    if (fs_ != nullptr) {
      fs_->Shutdown();
    }
    fs_.reset();
    tiered_.reset();
    platter_.reset();
    platter_ = std::make_unique<WriteOnceDisk>(&media_);
    tiered_ = std::make_unique<TieredStore>(&magnetic_, platter_.get());
    ASSERT_TRUE(tiered_->Mount().ok());
    FileServerOptions options;
    options.cache_committed_pages = false;  // reads must hit the tier, not a server cache
    fs_ = std::make_unique<FileServer>(&net_, "fs0", tiered_.get(), options);
    fs_->Start();
    ASSERT_TRUE(fs_->AttachStore().ok());
  }

  void BuildWorkload() {
    auto file = fs_->CreateFile();
    ASSERT_TRUE(file.ok());
    file_ = *file;
    auto v0 = fs_->CreateVersion(file_, kNullPort, false);
    ASSERT_TRUE(v0.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(fs_->InsertRef(*v0, PagePath::Root(), i).ok());
      ASSERT_TRUE(fs_->WritePage(*v0, PagePath({static_cast<uint32_t>(i)}),
                                 std::vector<uint8_t>(1500, static_cast<uint8_t>(i)))
                      .ok());
    }
    ASSERT_TRUE(fs_->Commit(*v0).ok());
    for (int gen = 1; gen <= 6; ++gen) {
      auto v = fs_->CreateVersion(file_, kNullPort, false);
      ASSERT_TRUE(v.ok());
      for (int i = 0; i < 4; ++i) {
        std::vector<uint8_t> data(1500, static_cast<uint8_t>(gen * 16 + i));
        ASSERT_TRUE(fs_->WritePage(*v, PagePath({static_cast<uint32_t>(i)}), data).ok());
      }
      ASSERT_TRUE(fs_->Commit(*v).ok());
    }
  }

  // Raw bytes of every block reachable from any committed version, via the tier.
  std::unordered_map<BlockNo, std::vector<uint8_t>> SnapshotHistory() {
    std::unordered_map<BlockNo, std::vector<uint8_t>> contents;
    auto chain = fs_->CommittedChain(file_.object);
    EXPECT_TRUE(chain.ok());
    std::unordered_set<BlockNo> reachable;
    for (BlockNo head : *chain) {
      EXPECT_TRUE(WalkVersionTree(fs_->page_store(), head, &reachable,
                                  [](const Page&, const std::vector<BlockNo>&) {})
                      .ok());
    }
    for (BlockNo bno : reachable) {
      auto data = tiered_->Read(bno);
      EXPECT_TRUE(data.ok()) << "block " << bno << " unreadable: " << data.status();
      if (data.ok()) {
        contents[bno] = std::move(*data);
      }
    }
    return contents;
  }

  Network net_;
  InMemoryBlockStore magnetic_;
  MemDisk media_;
  std::unique_ptr<WriteOnceDisk> platter_;
  std::unique_ptr<TieredStore> tiered_;
  std::unique_ptr<FileServer> fs_;
  Capability file_;
};

TEST_P(TierCrashTest, NoCommittedVersionUnreadableAtAnyCut) {
  BuildWorkload();
  auto before = SnapshotHistory();
  ASSERT_FALSE(before.empty());

  // Cut the power at the parameterised site.
  TierCrashInjector injector;
  tiered_->set_crash_injector(&injector);
  injector.Arm(GetParam());
  Migrator migrator({fs_.get()}, tiered_.get());
  auto cut = migrator.RunCycle();
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), ErrorCode::kUnavailable);
  ASSERT_TRUE(injector.fired()) << "site " << TierCrashPointName(GetParam())
                                << " never reached";

  // Restart over the surviving media. Mount reconciles whatever the cut left behind.
  Boot();

  // The invariant: every committed block reads back byte-identical from some tier.
  auto after = SnapshotHistory();
  EXPECT_EQ(before, after) << "history diverged after cut at "
                           << TierCrashPointName(GetParam());
  FsckReport report = RunTieredFsck(fs_.get(), tiered_.get());
  EXPECT_TRUE(report.clean) << report.ToString();

  // The interrupted cycle is restartable: a fresh run completes, reclaims, and the
  // history still reads back intact.
  Migrator redo({fs_.get()}, tiered_.get());
  auto done = redo.RunCycle();
  ASSERT_TRUE(done.ok()) << done.status();
  tiered_->DropPromotions();
  auto final_state = SnapshotHistory();
  EXPECT_EQ(before, final_state);
  EXPECT_GT(tiered_->archived_blocks(), 0u);
  report = RunTieredFsck(fs_.get(), tiered_.get());
  EXPECT_TRUE(report.clean) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(AllCatalogedPoints, TierCrashTest,
                         ::testing::ValuesIn(kAllTierCrashPoints),
                         [](const ::testing::TestParamInfo<TierCrashPoint>& info) {
                           return TierCrashPointName(info.param);
                         });

// A crash at kMidBurn can strand a burned record whose magnetic twin is freed by a LATER
// completed migration — and a crash between the bitmap persist and the data write leaves a
// dead archive block. Neither may confuse a remount: this drives the mid-burn cut, then a
// full cycle, then verifies a remount rebuilds the same map.
TEST_F(TierCrashTest, RemountAfterMidBurnThenCompletionIsStable) {
  BuildWorkload();
  auto before = SnapshotHistory();

  TierCrashInjector injector;
  tiered_->set_crash_injector(&injector);
  injector.Arm(TierCrashPoint::kMidBurn);
  Migrator migrator({fs_.get()}, tiered_.get());
  ASSERT_FALSE(migrator.RunCycle().ok());
  ASSERT_TRUE(injector.fired());
  auto done = migrator.RunCycle();  // completes: skips already-mapped, burns the rest
  ASSERT_TRUE(done.ok()) << done.status();
  const size_t mapped = tiered_->archived_blocks();
  ASSERT_GT(mapped, 0u);

  Boot();
  EXPECT_EQ(tiered_->archived_blocks(), mapped);
  tiered_->DropPromotions();
  auto after = SnapshotHistory();
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace afs
