// TieredStore / ArchiveTier unit tests: burn-and-read-back, migrate-then-read-through,
// write-once enforcement at the store level, durable unmap on free, promotion caching,
// mount-time map rebuild and reconciliation, and scrub repair of rotted archive blocks.

#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>
#include <vector>

#include "src/disk/mem_disk.h"
#include "src/disk/write_once_disk.h"
#include "src/tier/archive.h"
#include "src/tier/tiered_store.h"

namespace afs {
namespace {

std::vector<uint8_t> Bytes(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return out;
}

// Media + tier that can be "power-cut": the MemDisk outlives the WriteOnceDisk and
// TieredStore wrappers, so a restart is a fresh pair of wrappers over the same media.
class TierStoreTest : public ::testing::Test {
 protected:
  TierStoreTest() { Remount(); }

  // Simulated restart: drop every in-memory structure, re-wrap the surviving media.
  void Remount() {
    tiered_.reset();
    platter_.reset();
    platter_ = std::make_unique<WriteOnceDisk>(&media_);
    tiered_ = std::make_unique<TieredStore>(&magnetic_, platter_.get(), options_);
    ASSERT_TRUE(tiered_->Mount().ok());
  }

  BlockNo Put(const std::vector<uint8_t>& payload) {
    auto bno = tiered_->AllocWrite(payload);
    EXPECT_TRUE(bno.ok()) << bno.status();
    return *bno;
  }

  void MigrateOne(BlockNo bno) {
    uint64_t migrated = 0;
    ASSERT_TRUE(tiered_->MigrateBlocks(std::vector<BlockNo>{bno}, &migrated).ok());
    ASSERT_EQ(migrated, 1u);
  }

  TieredStoreOptions options_;
  InMemoryBlockStore magnetic_{4068, 1 << 20};
  MemDisk media_{4096, 512};
  std::unique_ptr<WriteOnceDisk> platter_;
  std::unique_ptr<TieredStore> tiered_;
};

TEST(ArchiveTierTest, BurnReadRoundtrip) {
  WriteOnceDisk disk(4096, 32);
  ArchiveTier archive(&disk);
  ASSERT_TRUE(archive.Mount([](BlockNo, const ArchiveRecord&) {}).ok());
  EXPECT_EQ(archive.payload_capacity(), 4096u - kArchiveHeaderBytes);

  auto a0 = archive.Burn(ArchiveRecordKind::kData, 17, Bytes("alpha"));
  auto a1 = archive.Burn(ArchiveRecordKind::kData, 99, Bytes("beta"));
  ASSERT_TRUE(a0.ok());
  ASSERT_TRUE(a1.ok());
  EXPECT_NE(*a0, *a1);
  EXPECT_EQ(archive.used_blocks(), 2u);

  auto back = archive.ReadRecord(*a0, 17);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Bytes("alpha"));
  // A mapping that points at someone else's record is a misdirection, not data.
  EXPECT_EQ(archive.ReadRecord(*a1, 17).status().code(), ErrorCode::kCorrupt);
}

TEST(ArchiveTierTest, MountReplaysInBurnOrderAndSkipsDeadBlocks) {
  MemDisk media(4096, 64);
  {
    // A crash between bitmap persist and data landing leaves a burned-per-bitmap block
    // with no valid record in it. Fake one by burning garbage directly.
    WriteOnceDisk disk(&media);
    ASSERT_TRUE(disk.Write(0, std::vector<uint8_t>(4096, 0xEE)).ok());
    ArchiveTier archive(&disk);
    ASSERT_TRUE(archive.Mount([](BlockNo, const ArchiveRecord&) {}).ok());
    EXPECT_EQ(archive.dead_blocks(), 1u);
    ASSERT_TRUE(archive.Burn(ArchiveRecordKind::kData, 5, Bytes("one")).ok());
    ASSERT_TRUE(archive.Burn(ArchiveRecordKind::kData, 6, Bytes("two")).ok());
  }
  // Fresh wrappers over the same media: the scan must skip the dead block, replay the two
  // records in burn order, and position the cursor after the prefix.
  WriteOnceDisk disk(&media);
  ArchiveTier archive(&disk);
  std::vector<BlockNo> sources;
  ASSERT_TRUE(archive
                  .Mount([&](BlockNo, const ArchiveRecord& r) {
                    sources.push_back(r.source);
                  })
                  .ok());
  EXPECT_EQ(sources, (std::vector<BlockNo>{5, 6}));
  EXPECT_EQ(archive.dead_blocks(), 1u);
  auto next = archive.Burn(ArchiveRecordKind::kData, 7, Bytes("three"));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 3u);  // 0 dead, 1-2 replayed, cursor at 3
}

TEST_F(TierStoreTest, MigrateThenReadThrough) {
  std::vector<uint8_t> payload = Pattern(4000, 3);
  BlockNo bno = Put(payload);
  const size_t before = magnetic_.allocated_blocks();
  MigrateOne(bno);
  EXPECT_TRUE(tiered_->archived(bno));
  EXPECT_EQ(magnetic_.allocated_blocks(), before - 1);  // magnetic copy reclaimed
  auto back = tiered_->Read(bno);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);  // byte-identical through the archive
  // Vectored reads resolve archived and magnetic blocks in one call.
  BlockNo plain = Put(Bytes("still-magnetic"));
  auto multi = tiered_->ReadMulti(std::vector<BlockNo>{bno, plain});
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE((*multi)[0].status.ok());
  ASSERT_TRUE((*multi)[1].status.ok());
  EXPECT_EQ((*multi)[0].data, payload);
  EXPECT_EQ((*multi)[1].data, Bytes("still-magnetic"));
}

TEST_F(TierStoreTest, WritesToArchivedBlocksRejected) {
  BlockNo bno = Put(Bytes("immutable"));
  MigrateOne(bno);
  EXPECT_EQ(tiered_->Write(bno, Bytes("rewrite")).code(), ErrorCode::kReadOnly);
  // Batch containing one archived target fails whole and writes nothing.
  BlockNo plain = Put(Bytes("old"));
  std::vector<BlockWrite> batch;
  batch.push_back({plain, Bytes("new")});
  batch.push_back({bno, Bytes("rewrite")});
  EXPECT_EQ(tiered_->WriteBatch(batch).code(), ErrorCode::kReadOnly);
  EXPECT_EQ(*tiered_->Read(plain), Bytes("old"));
  EXPECT_EQ(*tiered_->Read(bno), Bytes("immutable"));
}

TEST_F(TierStoreTest, FreeArchivedBlockPersistsUnmap) {
  BlockNo bno = Put(Bytes("doomed"));
  MigrateOne(bno);
  ASSERT_TRUE(tiered_->Free(bno).ok());
  EXPECT_FALSE(tiered_->archived(bno));
  EXPECT_EQ(tiered_->Read(bno).status().code(), ErrorCode::kNotFound);
  // The unmap record is on the medium: a restart must not resurrect the mapping.
  Remount();
  EXPECT_FALSE(tiered_->archived(bno));
  EXPECT_EQ(tiered_->Read(bno).status().code(), ErrorCode::kNotFound);
}

TEST_F(TierStoreTest, ListBlocksReportsBothTiers) {
  BlockNo archived = Put(Bytes("cold"));
  BlockNo magnetic = Put(Bytes("hot"));
  MigrateOne(archived);
  auto listed = tiered_->ListBlocks();
  ASSERT_TRUE(listed.ok());
  EXPECT_NE(std::find(listed->begin(), listed->end(), archived), listed->end());
  EXPECT_NE(std::find(listed->begin(), listed->end(), magnetic), listed->end());
}

TEST_F(TierStoreTest, PromotionCacheServesRepeatReads) {
  BlockNo bno = Put(Pattern(1000, 9));
  MigrateOne(bno);
  ASSERT_TRUE(tiered_->Read(bno).ok());  // promotes from the medium
  const uint64_t medium_reads = tiered_->Stats().promotions;
  ASSERT_TRUE(tiered_->Read(bno).ok());  // cache hit: no second medium read
  EXPECT_EQ(tiered_->Stats().promotions, medium_reads);
  tiered_->DropPromotions();
  ASSERT_TRUE(tiered_->Read(bno).ok());
  EXPECT_EQ(tiered_->Stats().promotions, medium_reads + 1);
}

TEST_F(TierStoreTest, ColdModeBypassesPromotionCache) {
  options_.promotion_cache_blocks = 0;
  Remount();
  BlockNo bno = Put(Pattern(1000, 5));
  MigrateOne(bno);
  ASSERT_TRUE(tiered_->Read(bno).ok());
  ASSERT_TRUE(tiered_->Read(bno).ok());
  EXPECT_EQ(tiered_->Stats().promotions, 2u);  // every read touches the medium
}

TEST_F(TierStoreTest, MountRebuildsMapAndFinishesInterruptedFree) {
  std::vector<uint8_t> payload = Pattern(2000, 11);
  BlockNo bno = Put(payload);
  // Cut the power after the burn, before the magnetic free: doubly resident.
  TierCrashInjector injector;
  tiered_->set_crash_injector(&injector);
  injector.Arm(TierCrashPoint::kAfterBurn);
  uint64_t migrated = 0;
  EXPECT_EQ(tiered_->MigrateBlocks(std::vector<BlockNo>{bno}, &migrated).code(),
            ErrorCode::kUnavailable);
  ASSERT_TRUE(injector.fired());
  const size_t doubly_resident = magnetic_.allocated_blocks();

  // Restart: the map comes back from the burned prefix alone, and reconciliation
  // completes the interrupted reclamation.
  Remount();
  EXPECT_TRUE(tiered_->archived(bno));
  EXPECT_EQ(magnetic_.allocated_blocks(), doubly_resident - 1);
  auto back = tiered_->Read(bno);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST_F(TierStoreTest, ScrubRepairsRottedArchiveFromMagneticCopy) {
  std::vector<uint8_t> payload = Pattern(2000, 23);
  BlockNo bno = Put(payload);
  // Stop after the burn so the magnetic copy still exists (the repair source).
  TierCrashInjector injector;
  tiered_->set_crash_injector(&injector);
  injector.Arm(TierCrashPoint::kAfterBurn);
  EXPECT_EQ(tiered_->MigrateBlocks(std::vector<BlockNo>{bno}, nullptr).code(),
            ErrorCode::kUnavailable);
  auto mapping = tiered_->MappingSnapshot();
  ASSERT_EQ(mapping.size(), 1u);
  media_.CorruptBlock(platter_->RawBlockFor(mapping[0].second));

  auto summary = tiered_->ScrubPass();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->repaired, 1u);
  EXPECT_EQ(summary->unrecoverable, 0u);
  // The re-burned record serves the data; the magnetic leftover is reclaimed by the pass.
  tiered_->DropPromotions();
  auto back = tiered_->Read(bno);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  EXPECT_TRUE(tiered_->archived(bno));
}

TEST_F(TierStoreTest, ScrubCountsUnrecoverableRot) {
  BlockNo bno = Put(Pattern(500, 40));
  MigrateOne(bno);  // magnetic copy reclaimed — the archive is the only copy
  auto mapping = tiered_->MappingSnapshot();
  ASSERT_EQ(mapping.size(), 1u);
  media_.CorruptBlock(platter_->RawBlockFor(mapping[0].second));
  tiered_->DropPromotions();
  auto summary = tiered_->ScrubPass();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->repaired, 0u);
  EXPECT_EQ(summary->unrecoverable, 1u);
}

}  // namespace
}  // namespace afs
