// Client library tests: RPC stubs, the transaction redo loop (§5.2/§6), and the cached
// client (§5.4) — all over the full RPC cluster.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/client/cached_client.h"
#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : cluster_(2), client_(&cluster_.net(), cluster_.FileServerPorts()) {}

  FullCluster cluster_;
  FileClient client_;
};

TEST_F(ClientTest, EndToEndWriteReadOverRpc) {
  auto file = client_.CreateFile();
  ASSERT_TRUE(file.ok());
  auto v = client_.CreateVersion(*file);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(client_.WriteString(*v, PagePath::Root(), "over the wire").ok());
  ASSERT_TRUE(client_.Commit(*v).ok());
  auto current = client_.GetCurrentVersion(*file);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*client_.ReadString(*current, PagePath::Root()), "over the wire");
}

TEST_F(ClientTest, StructuralOpsOverRpc) {
  auto file = client_.CreateFile();
  auto v = client_.CreateVersion(*file);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(client_.InsertRef(*v, PagePath::Root(), 0).ok());
  ASSERT_TRUE(client_.InsertRef(*v, PagePath::Root(), 1).ok());
  ASSERT_TRUE(client_.WriteString(*v, PagePath({0}), "a").ok());
  ASSERT_TRUE(client_.WriteString(*v, PagePath({1}), "b").ok());
  auto refs = client_.ReadRefs(*v, PagePath::Root());
  ASSERT_TRUE(refs.ok());
  EXPECT_EQ(refs->size(), 2u);
  ASSERT_TRUE(client_.MoveSubtree(*v, PagePath({0}), PagePath({1}), 0).ok());
  ASSERT_TRUE(client_.Commit(*v).ok());
  auto current = client_.GetCurrentVersion(*file);
  EXPECT_EQ(*client_.ReadString(*current, PagePath({0})), "b");
  EXPECT_EQ(*client_.ReadString(*current, PagePath({0, 0})), "a");
}

TEST_F(ClientTest, VersionOpsRouteToManagingServer) {
  auto file = client_.CreateFile();
  // Create a version whose manager is server 1 explicitly.
  FileClient direct(&cluster_.net(), {cluster_.FileServerPorts()[1]});
  auto v = direct.CreateVersion(*file);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->port, cluster_.FileServerPorts()[1]);
  // The shared client (preferring server 0) still reaches the right manager.
  ASSERT_TRUE(client_.WriteString(*v, PagePath::Root(), "routed").ok());
  ASSERT_TRUE(client_.Commit(*v).ok());
}

TEST_F(ClientTest, TransactionCommitsFirstTryWhenUncontended) {
  auto file = client_.CreateFile();
  auto stats = RunTransaction(&client_, *file, [](FileClient& c, const Capability& v) {
    return c.WriteString(v, PagePath::Root(), "tx");
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->attempts, 1);
  EXPECT_EQ(stats->conflicts, 0);
}

TEST_F(ClientTest, TransactionRedoesOnConflict) {
  // Two counter transactions race; the redo loop must make both increments stick.
  auto file = client_.CreateFile();
  {
    auto stats = RunTransaction(&client_, *file, [](FileClient& c, const Capability& v) {
      return c.WriteString(v, PagePath::Root(), "0");
    });
    ASSERT_TRUE(stats.ok());
  }
  auto increment = [this, &file](int id) -> int {
    TransactionOptions options;
    options.backoff_seed = 1000 + id;
    auto stats = RunTransaction(
        &client_, *file,
        [](FileClient& c, const Capability& v) -> Status {
          ASSIGN_OR_RETURN(std::string text, c.ReadString(v, PagePath::Root()));
          int n = std::stoi(text);
          return c.WriteString(v, PagePath::Root(), std::to_string(n + 1));
        },
        options);
    return stats.ok() ? stats->conflicts : -1;
  };
  std::atomic<int> total_conflicts{0};
  std::thread t1([&] { total_conflicts += increment(1); });
  std::thread t2([&] { total_conflicts += increment(2); });
  t1.join();
  t2.join();
  ASSERT_GE(total_conflicts.load(), 0);
  auto current = client_.GetCurrentVersion(*file);
  EXPECT_EQ(*client_.ReadString(*current, PagePath::Root()), "2");  // no lost update
}

TEST_F(ClientTest, ManyConcurrentCountersSerialise) {
  auto file = client_.CreateFile();
  ASSERT_TRUE(RunTransaction(&client_, *file, [](FileClient& c, const Capability& v) {
                return c.WriteString(v, PagePath::Root(), "0");
              }).ok());
  constexpr int kThreads = 6;
  constexpr int kIncrements = 5;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      FileClient local(&cluster_.net(), cluster_.FileServerPorts());
      for (int i = 0; i < kIncrements; ++i) {
        TransactionOptions options;
        options.backoff_seed = t * 100 + i;
        options.max_attempts = 256;
        auto stats = RunTransaction(
            &local, *file,
            [](FileClient& c, const Capability& v) -> Status {
              ASSIGN_OR_RETURN(std::string text, c.ReadString(v, PagePath::Root()));
              return c.WriteString(v, PagePath::Root(), std::to_string(std::stoi(text) + 1));
            },
            options);
        if (!stats.ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  auto current = client_.GetCurrentVersion(*file);
  EXPECT_EQ(*client_.ReadString(*current, PagePath::Root()),
            std::to_string(kThreads * kIncrements));
}

TEST_F(ClientTest, CachedClientServesFromCacheAfterValidation) {
  auto file = client_.CreateFile();
  ASSERT_TRUE(RunTransaction(&client_, *file, [](FileClient& c, const Capability& v) {
                RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), 0));
                return c.WriteString(v, PagePath({0}), "cacheable");
              }).ok());

  CachedFileClient cached(&cluster_.net(), cluster_.FileServerPorts());
  auto first = cached.Read(*file, PagePath({0}));
  ASSERT_TRUE(first.ok());
  uint64_t calls_after_first = cluster_.net().total_calls();
  // Second read: one validation round-trip, zero page transfers.
  auto second = cached.Read(*file, PagePath({0}));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first);
  EXPECT_EQ(cached.cache().hits(), 1u);
  uint64_t calls_after_second = cluster_.net().total_calls();
  EXPECT_LE(calls_after_second - calls_after_first, 2u);  // the validation transaction
}

TEST_F(ClientTest, CachedClientDiscardsStalePagesOnly) {
  auto file = client_.CreateFile();
  ASSERT_TRUE(RunTransaction(&client_, *file, [](FileClient& c, const Capability& v) {
                RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), 0));
                RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), 1));
                RETURN_IF_ERROR(c.WriteString(v, PagePath({0}), "stable"));
                return c.WriteString(v, PagePath({1}), "volatile-v1");
              }).ok());
  CachedFileClient cached(&cluster_.net(), cluster_.FileServerPorts());
  ASSERT_TRUE(cached.Read(*file, PagePath({0})).ok());
  ASSERT_TRUE(cached.Read(*file, PagePath({1})).ok());

  // Another client modifies page 1 only.
  ASSERT_TRUE(RunTransaction(&client_, *file, [](FileClient& c, const Capability& v) {
                return c.WriteString(v, PagePath({1}), "volatile-v2");
              }).ok());

  // Page 0 still served from cache; page 1 refetched with the new contents. No
  // unsolicited message was ever needed.
  auto page1 = cached.Read(*file, PagePath({1}));
  ASSERT_TRUE(page1.ok());
  EXPECT_EQ(std::string(page1->begin(), page1->end()), "volatile-v2");
  uint64_t hits_before = cached.cache().hits();
  ASSERT_TRUE(cached.Read(*file, PagePath({0})).ok());
  EXPECT_EQ(cached.cache().hits(), hits_before + 1);
}

TEST_F(ClientTest, SoftLockedTransactionWaits) {
  auto file = client_.CreateFile();
  Port holder = cluster_.net().AllocatePort();
  auto blocker = client_.CreateVersion(*file, holder, false);
  ASSERT_TRUE(blocker.ok());
  // A soft-lock-respecting update defers until the blocker commits.
  std::atomic<bool> committed{false};
  std::thread deferred([&] {
    TransactionOptions options;
    options.respect_soft_lock = true;
    options.max_attempts = 1000;
    auto stats = RunTransaction(
        &client_, *file,
        [](FileClient& c, const Capability& v) {
          return c.WriteString(v, PagePath::Root(), "deferred");
        },
        options);
    EXPECT_TRUE(stats.ok());
    EXPECT_TRUE(committed.load());  // must not have run before the blocker finished
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  committed = true;
  ASSERT_TRUE(client_.Commit(*blocker).ok());
  cluster_.net().ClosePort(holder);
  deferred.join();
}

}  // namespace
}  // namespace afs
