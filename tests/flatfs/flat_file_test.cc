// Flat-file layer tests (Figure 1's "flat file server"): byte-granular reads and writes,
// holes, truncation, concurrent appends, and a randomised cross-check against an in-memory
// byte-vector model.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/base/rng.h"
#include "src/flatfs/flat_file.h"
#include "tests/testing/cluster.h"

namespace afs {
namespace {

std::span<const uint8_t> Span(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

class FlatFileTest : public ::testing::Test {
 protected:
  FlatFileTest()
      : cluster_(1),
        client_(&cluster_.net(), cluster_.FileServerPorts()),
        flat_(&client_) {}

  FullCluster cluster_;
  FileClient client_;
  FlatFileClient flat_;
};

TEST_F(FlatFileTest, CreateIsEmpty) {
  auto file = flat_.Create();
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(*flat_.Size(*file), 0u);
  EXPECT_TRUE(flat_.ReadAt(*file, 0, 100)->empty());
}

TEST_F(FlatFileTest, WriteReadRoundTrip) {
  auto file = flat_.Create();
  ASSERT_TRUE(flat_.WriteAll(*file, "hello flat world").ok());
  EXPECT_EQ(*flat_.ReadAll(*file), "hello flat world");
  EXPECT_EQ(*flat_.Size(*file), 16u);
}

TEST_F(FlatFileTest, OverwriteMiddle) {
  auto file = flat_.Create();
  ASSERT_TRUE(flat_.WriteAll(*file, "aaaaaaaaaa").ok());
  ASSERT_TRUE(flat_.WriteAt(*file, 3, Span("BBB")).ok());
  EXPECT_EQ(*flat_.ReadAll(*file), "aaaBBBaaaa");
}

TEST_F(FlatFileTest, SparseWriteReadsZerosInGap) {
  auto file = flat_.Create();
  // Write far past the end: the gap is a hole costing no storage, reading as zeros.
  ASSERT_TRUE(flat_.WriteAt(*file, 3 * FlatFileClient::kExtentBytes + 5, Span("tail")).ok());
  EXPECT_EQ(*flat_.Size(*file), 3 * FlatFileClient::kExtentBytes + 9);
  auto gap = flat_.ReadAt(*file, FlatFileClient::kExtentBytes, 16);
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(*gap, std::vector<uint8_t>(16, 0));
  auto tail = flat_.ReadAt(*file, 3 * FlatFileClient::kExtentBytes + 5, 4);
  EXPECT_EQ(std::string(tail->begin(), tail->end()), "tail");
}

TEST_F(FlatFileTest, CrossExtentWrite) {
  auto file = flat_.Create();
  std::string big(FlatFileClient::kExtentBytes * 2 + 777, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  ASSERT_TRUE(flat_.WriteAll(*file, big).ok());
  EXPECT_EQ(*flat_.ReadAll(*file), big);
  // Unaligned read spanning the extent boundary.
  auto mid = flat_.ReadAt(*file, FlatFileClient::kExtentBytes - 10, 20);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(std::string(mid->begin(), mid->end()),
            big.substr(FlatFileClient::kExtentBytes - 10, 20));
}

TEST_F(FlatFileTest, ReadPastEndIsShort) {
  auto file = flat_.Create();
  ASSERT_TRUE(flat_.WriteAll(*file, "short").ok());
  auto read = flat_.ReadAt(*file, 3, 100);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->begin(), read->end()), "rt");
  EXPECT_TRUE(flat_.ReadAt(*file, 99, 10)->empty());
}

TEST_F(FlatFileTest, TruncateShrinkAndReextend) {
  auto file = flat_.Create();
  ASSERT_TRUE(flat_.WriteAll(*file, "0123456789").ok());
  ASSERT_TRUE(flat_.Truncate(*file, 4).ok());
  EXPECT_EQ(*flat_.ReadAll(*file), "0123");
  // Re-extension must NOT resurrect the truncated bytes.
  ASSERT_TRUE(flat_.Truncate(*file, 10).ok());
  std::string back = *flat_.ReadAll(*file);
  EXPECT_EQ(back.substr(0, 4), "0123");
  EXPECT_EQ(back.substr(4), std::string(6, '\0'));
}

TEST_F(FlatFileTest, TruncateAcrossExtents) {
  auto file = flat_.Create();
  std::string big(FlatFileClient::kExtentBytes * 3, 'z');
  ASSERT_TRUE(flat_.WriteAll(*file, big).ok());
  ASSERT_TRUE(flat_.Truncate(*file, FlatFileClient::kExtentBytes + 100).ok());
  EXPECT_EQ(*flat_.Size(*file), FlatFileClient::kExtentBytes + 100);
  EXPECT_EQ(flat_.ReadAll(*file)->size(), FlatFileClient::kExtentBytes + 100);
}

TEST_F(FlatFileTest, AppendReturnsLandingOffset) {
  auto file = flat_.Create();
  auto first = flat_.Append(*file, Span("alpha"));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  auto second = flat_.Append(*file, Span("beta"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 5u);
  EXPECT_EQ(*flat_.ReadAll(*file), "alphabeta");
}

TEST_F(FlatFileTest, ConcurrentAppendsNeverLoseRecords) {
  auto file = flat_.Create();
  constexpr int kThreads = 4;
  constexpr int kAppends = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      FileClient local(&cluster_.net(), cluster_.FileServerPorts());
      FlatFileClient local_flat(&local);
      for (int i = 0; i < kAppends; ++i) {
        std::string record = "[t" + std::to_string(t) + "r" + std::to_string(i) + "]";
        if (!local_flat.Append(*file, Span(record)).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  std::string contents = *flat_.ReadAll(*file);
  // Every record appears exactly once, unmangled (appends serialised atomically).
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kAppends; ++i) {
      std::string record = "[t" + std::to_string(t) + "r" + std::to_string(i) + "]";
      size_t first = contents.find(record);
      ASSERT_NE(first, std::string::npos) << record;
      EXPECT_EQ(contents.find(record, first + 1), std::string::npos) << record;
    }
  }
}

TEST_F(FlatFileTest, DisjointExtentWritersMerge) {
  // The OCC payoff at this layer: writers of different extents commit concurrently.
  auto file = flat_.Create();
  ASSERT_TRUE(flat_.Truncate(*file, FlatFileClient::kExtentBytes * 4).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      FileClient local(&cluster_.net(), cluster_.FileServerPorts());
      FlatFileClient local_flat(&local);
      std::string mark(16, static_cast<char>('A' + t));
      if (!local_flat.WriteAt(*file, t * FlatFileClient::kExtentBytes, Span(mark)).ok()) {
        ++failures;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < 4; ++t) {
    auto read = flat_.ReadAt(*file, t * FlatFileClient::kExtentBytes, 16);
    EXPECT_EQ(std::string(read->begin(), read->end()),
              std::string(16, static_cast<char>('A' + t)));
  }
}

TEST_F(FlatFileTest, NotAFlatFileRejected) {
  auto raw = client_.CreateFile();
  ASSERT_TRUE(raw.ok());
  auto v = client_.CreateVersion(*raw);
  ASSERT_TRUE(client_.WriteString(*v, PagePath::Root(), "random bytes here").ok());
  ASSERT_TRUE(client_.Commit(*v).ok());
  EXPECT_EQ(flat_.Size(*raw).status().code(), ErrorCode::kCorrupt);
}

TEST_F(FlatFileTest, RandomOpsMatchByteVectorModel) {
  auto file = flat_.Create();
  std::vector<uint8_t> model;
  Rng rng(2026);
  for (int step = 0; step < 60; ++step) {
    int action = static_cast<int>(rng.NextBelow(10));
    if (action < 5) {
      // Random write.
      uint64_t offset = rng.NextBelow(3 * FlatFileClient::kExtentBytes);
      size_t len = 1 + rng.NextBelow(5000);
      std::vector<uint8_t> data(len);
      for (auto& byte : data) {
        byte = static_cast<uint8_t>(rng.NextU64());
      }
      ASSERT_TRUE(flat_.WriteAt(*file, offset, data).ok());
      if (model.size() < offset + len) {
        model.resize(offset + len, 0);
      }
      std::copy(data.begin(), data.end(), model.begin() + offset);
    } else if (action < 7) {
      // Append.
      std::vector<uint8_t> data(1 + rng.NextBelow(2000), static_cast<uint8_t>(step));
      ASSERT_TRUE(flat_.Append(*file, data).ok());
      model.insert(model.end(), data.begin(), data.end());
    } else if (action == 7) {
      // Truncate.
      uint64_t new_size = rng.NextBelow(model.size() + 5000);
      ASSERT_TRUE(flat_.Truncate(*file, new_size).ok());
      model.resize(new_size, 0);
    } else {
      // Random read, checked against the model.
      uint64_t offset = rng.NextBelow(model.size() + 1000);
      size_t len = rng.NextBelow(6000);
      auto read = flat_.ReadAt(*file, offset, len);
      ASSERT_TRUE(read.ok());
      size_t expect_len =
          offset >= model.size() ? 0 : std::min<size_t>(len, model.size() - offset);
      ASSERT_EQ(read->size(), expect_len) << "step " << step;
      for (size_t i = 0; i < expect_len; ++i) {
        ASSERT_EQ((*read)[i], model[offset + i]) << "step " << step << " byte " << i;
      }
    }
  }
  EXPECT_EQ(*flat_.Size(*file), model.size());
}

}  // namespace
}  // namespace afs
