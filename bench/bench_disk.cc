// Durable-store costs: what does real durability add over the in-memory device, and how
// much of the fsync tax does group commit claw back?
//
// Expected shape: FileDisk writes are dominated by the journal fsync; with a group-commit
// window and concurrent writers the per-write cost drops steeply (N writers amortise one
// fsync), which the fsync_batches/journal_appends counters make explicit independent of
// wall clock. Reads are cheap in both backends; a journal-hot read adds one index lookup
// over a checkpointed read. MemDisk numbers are the floor: the same API with no
// durability at all.

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/disk/mem_disk.h"
#include "src/store/file_disk.h"

namespace afs {
namespace {

constexpr uint32_t kBlockSize = 4096;
constexpr uint32_t kNumBlocks = 1 << 10;

std::string ScratchDisk(const std::string& name) {
  std::filesystem::path dir = std::filesystem::path("bench_disk_scratch") / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return (dir / "disk.afsdisk").string();
}

std::vector<uint8_t> Payload() {
  std::vector<uint8_t> data(kBlockSize);
  for (uint32_t i = 0; i < kBlockSize; ++i) {
    data[i] = static_cast<uint8_t>(i * 13 + 7);
  }
  return data;
}

void BM_MemDiskWrite(benchmark::State& state) {
  MemDisk disk(kBlockSize, kNumBlocks);
  auto data = Payload();
  uint32_t bno = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.Write(bno, data));
    bno = (bno + 1) % kNumBlocks;
  }
  state.SetBytesProcessed(state.iterations() * kBlockSize);
}
BENCHMARK(BM_MemDiskWrite);

void BM_FileDiskWrite(benchmark::State& state) {
  auto disk = FileDisk::Open(ScratchDisk("write"), {kBlockSize, kNumBlocks});
  if (!disk.ok()) {
    state.SkipWithError("cannot open FileDisk");
    return;
  }
  auto data = Payload();
  uint32_t bno = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*disk)->Write(bno, data));
    bno = (bno + 1) % kNumBlocks;
  }
  state.SetBytesProcessed(state.iterations() * kBlockSize);
  state.counters["fsyncs"] = static_cast<double>((*disk)->fsync_batches());
}
BENCHMARK(BM_FileDiskWrite);

// The group-commit sweep: N writer threads share the journal; the window lets the flusher
// gather their records into one fsync. Arg = window in microseconds. fsyncs_per_write is
// the statistic the sweep is about: 1.0 with no batching, -> 1/N as the window opens.
void BM_FileDiskGroupCommit(benchmark::State& state) {
  constexpr int kThreads = 8;
  constexpr int kWritesPerThread = 32;
  auto data = Payload();
  for (auto _ : state) {
    state.PauseTiming();
    FileDiskOptions options;
    options.block_size = kBlockSize;
    options.num_blocks = kNumBlocks;
    options.group_commit_window = std::chrono::microseconds(state.range(0));
    auto disk_or = FileDisk::Open(ScratchDisk("group_commit"), options);
    if (!disk_or.ok()) {
      state.SkipWithError("cannot open FileDisk");
      return;
    }
    FileDisk* disk = disk_or->get();
    state.ResumeTiming();
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([disk, t, &data] {
        for (int i = 0; i < kWritesPerThread; ++i) {
          (void)disk->Write(static_cast<uint32_t>(t * kWritesPerThread + i), data);
        }
      });
    }
    for (auto& w : writers) {
      w.join();
    }
    state.PauseTiming();
    state.counters["fsyncs_per_write"] =
        static_cast<double>(disk->fsync_batches()) / static_cast<double>(disk->journal_appends());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kThreads * kWritesPerThread);
}
BENCHMARK(BM_FileDiskGroupCommit)->Arg(0)->Arg(100)->Arg(500)->Arg(2000);

void BM_MemDiskRead(benchmark::State& state) {
  MemDisk disk(kBlockSize, kNumBlocks);
  auto data = Payload();
  for (uint32_t bno = 0; bno < kNumBlocks; ++bno) {
    (void)disk.Write(bno, data);
  }
  std::vector<uint8_t> out(kBlockSize);
  uint32_t bno = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.Read(bno, out));
    bno = (bno + 1) % kNumBlocks;
  }
  state.SetBytesProcessed(state.iterations() * kBlockSize);
}
BENCHMARK(BM_MemDiskRead);

// Arg 0: reads served from the journal (index lookup + journal file read + CRC).
// Arg 1: reads served from checkpointed sectors (header decode + CRC).
void BM_FileDiskRead(benchmark::State& state) {
  auto disk = FileDisk::Open(ScratchDisk("read"), {kBlockSize, kNumBlocks});
  if (!disk.ok()) {
    state.SkipWithError("cannot open FileDisk");
    return;
  }
  auto data = Payload();
  for (uint32_t bno = 0; bno < 256; ++bno) {
    (void)(*disk)->Write(bno, data);
  }
  if (state.range(0) == 1) {
    (void)(*disk)->Checkpoint();
  }
  std::vector<uint8_t> out(kBlockSize);
  uint32_t bno = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*disk)->Read(bno, out));
    bno = (bno + 1) % 256;
  }
  state.SetBytesProcessed(state.iterations() * kBlockSize);
  state.SetLabel(state.range(0) == 1 ? "checkpointed" : "journal_hot");
}
BENCHMARK(BM_FileDiskRead)->Arg(0)->Arg(1);

// Mount-time recovery cost as the journal grows: Arg = acknowledged records to replay.
void BM_FileDiskRecovery(benchmark::State& state) {
  const std::string path = ScratchDisk("recovery");
  auto data = Payload();
  const uint32_t records = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".journal");
    {
      CrashPointInjector injector;
      auto disk = FileDisk::Open(path, {kBlockSize, kNumBlocks}, &injector);
      for (uint32_t i = 0; i < records; ++i) {
        (void)(*disk)->Write(i % kNumBlocks, data);
      }
      // Cut the power so the close path cannot checkpoint: the remount must replay.
      injector.Arm(CrashPoint::kAfterJournalFsync);
      (void)(*disk)->Write(records % kNumBlocks, data);
    }
    state.ResumeTiming();
    auto disk = FileDisk::Open(path, {kBlockSize, kNumBlocks});
    benchmark::DoNotOptimize(disk.ok() && (*disk)->recovered_records() >= records);
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_FileDiskRecovery)->Arg(64)->Arg(512);

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN()
