// Claim C4 (paper §5.4): cache validation is "a null operation" for unshared files, and
// for shared files costs time "proportional to the size of the intersection of the set of
// pages of the version in the cache and the union of the sets of pages in the versions
// since then" — never proportional to file size, and never requiring unsolicited messages.
//
// Expected shape: validation latency ~flat for a private file regardless of cache size;
// grows with (cached pages x intervening versions) for a shared file; block reads per
// validation near zero when the flag-bit cache (committed-page cache) is enabled.
// Args vary per benchmark; see each.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace afs {
namespace {

std::vector<PagePath> CachedPaths(int n) {
  std::vector<PagePath> paths;
  for (int i = 0; i < n; ++i) {
    paths.push_back(PagePath({static_cast<uint32_t>(i)}));
  }
  return paths;
}

// Private file: the cached version IS current -> the test degenerates to a stamp compare.
// Args: {cached_pages}.
void BM_ValidatePrivateFile(benchmark::State& state) {
  const int cached_pages = static_cast<int>(state.range(0));
  bench::Rig rig;
  Capability file = rig.MakeFile(cached_pages);
  BlockNo current = static_cast<BlockNo>(rig.fs->GetCurrentVersion(file)->object);
  auto paths = CachedPaths(cached_pages);

  int64_t n = 0;
  for (auto _ : state) {
    auto check = rig.fs->ValidateCache(file, current, paths);
    if (!check.ok() || !check->invalid.empty()) {
      state.SkipWithError("private validation must be a clean null operation");
      return;
    }
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_ValidatePrivateFile)->Arg(1)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

// Shared file: `versions_behind` committed updates (each touching one page) happened since
// the cache entry was made. Args: {cached_pages, versions_behind}.
void RunValidateShared(benchmark::State& state, bool flag_cache) {
  const int cached_pages = static_cast<int>(state.range(0));
  const int versions_behind = static_cast<int>(state.range(1));
  FileServerOptions options;
  options.cache_committed_pages = flag_cache;
  options.reshare_on_commit = true;
  bench::Rig rig(options);
  Capability file = rig.MakeFile(cached_pages);
  BlockNo cached = static_cast<BlockNo>(rig.fs->GetCurrentVersion(file)->object);
  for (int i = 0; i < versions_behind; ++i) {
    auto v = rig.fs->CreateVersion(file, kNullPort, false);
    (void)rig.fs->WritePage(*v, PagePath({static_cast<uint32_t>(i % cached_pages)}),
                            std::vector<uint8_t>(64, 9));
    (void)rig.fs->Commit(*v);
  }
  auto paths = CachedPaths(cached_pages);

  uint64_t reads_before = rig.store.total_reads();
  int64_t n = 0;
  for (auto _ : state) {
    auto check = rig.fs->ValidateCache(file, cached, paths);
    if (!check.ok()) {
      state.SkipWithError("validation failed");
      return;
    }
    benchmark::DoNotOptimize(check->invalid.size());
    ++n;
  }
  state.SetItemsProcessed(n);
  state.counters["block_reads_per_validate"] = benchmark::Counter(
      static_cast<double>(rig.store.total_reads() - reads_before) / std::max<int64_t>(1, n));
}

void BM_ValidateSharedFile(benchmark::State& state) { RunValidateShared(state, true); }
void BM_ValidateSharedNoFlagCache(benchmark::State& state) {
  RunValidateShared(state, false);
}

#define SHARED_ARGS                                                      \
  ->Args({16, 1})->Args({16, 4})->Args({16, 16})->Args({64, 4})->Args({256, 4}) \
      ->Unit(benchmark::kMicrosecond)

BENCHMARK(BM_ValidateSharedFile) SHARED_ARGS;
BENCHMARK(BM_ValidateSharedNoFlagCache) SHARED_ARGS;

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
