// Claim C1 (paper §3.1, §6): "Optimistic concurrency control maximises concurrency and
// works best when updates are small and the likelihood that an item is the subject of two
// simultaneous updates is small. Locking ... is more suitable when updates are large and
// unwieldy and when the probability of an item being subject to more than one update is
// significant."
//
// Workload: `threads` workers each run transactions that update `update_pages` pages of a
// shared file; with probability conflict%/100 a transaction targets one hot page (forcing
// overlap), otherwise it picks private pages. Three systems run the same workload:
//   AFS/OCC        — page-granularity optimistic versions (the paper's design)
//   AFS/OCC+soft   — ablation A1: the §5.3 soft-lock hint defers likely-conflicting updates
//   Locking        — the FELIX/XDFS-style file-level two-phase locking baseline
//   Timestamps     — the SWALLOW-style timestamp-ordering baseline
// Expected shape: OCC wins easily at low conflict (locking serialises the whole file);
// as conflict -> 100% and updates grow, OCC burns redo work and the gap narrows/reverses.
// Args: {conflict_percent, update_pages}.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "src/baseline/locking_server.h"
#include "src/baseline/timestamp_server.h"
#include "src/base/rng.h"

namespace afs {
namespace {

constexpr int kFilePages = 128;
constexpr int kThreads = 8;
constexpr int kTxPerThreadPerIter = 8;
// Client think time between a transaction's read phase and its write phase. This is the
// lever behind the paper's §3.1 trade-off: a locking server holds the file lock across it,
// the optimistic server does not.
constexpr std::chrono::microseconds kThinkTime{1000};
// Simulated per-block-op I/O latency: the paper's servers were disk-bound; sleeping (not
// spinning) lets overlapping I/O parallelise even on one core, which is exactly the
// concurrency the comparison is about (DESIGN.md substitution table).
constexpr std::chrono::microseconds kIoLatency{25};

struct WorkloadStats {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> redone{0};
};

// Pick the pages a transaction touches. Hot transactions hammer page 0.
std::vector<uint32_t> PickPages(Rng* rng, int conflict_percent, int update_pages,
                                int thread_id) {
  std::vector<uint32_t> pages;
  bool hot = rng->NextBool(conflict_percent / 100.0);
  for (int i = 0; i < update_pages; ++i) {
    if (hot) {
      pages.push_back(static_cast<uint32_t>(i % 4));  // contended region
    } else {
      // Private region per thread (disjoint stripes; threads never overlap here).
      pages.push_back(static_cast<uint32_t>(4 + thread_id * 15 + i));
    }
  }
  return pages;
}

void RunOcc(benchmark::State& state, bool soft_locks) {
  const int conflict = static_cast<int>(state.range(0));
  const int update_pages = static_cast<int>(state.range(1));
  bench::Rig rig;
  Capability file = rig.MakeFile(kFilePages);
  rig.store.set_op_latency(kIoLatency);
  WorkloadStats stats;

  for (auto _ : state) {
    std::atomic<int> barrier{kThreads};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        // Start barrier: every worker spins until all are running, so the transactions
        // genuinely overlap (the whole point of the concurrency comparison).
        barrier.fetch_sub(1);
        while (barrier.load() > 0) {
        }
        Rng rng(state.iterations() * 131 + t);
        for (int i = 0; i < kTxPerThreadPerIter; ++i) {
          auto pages = PickPages(&rng, conflict, update_pages, t);
          for (int attempt = 0; attempt < 400; ++attempt) {
            Port owner = rig.net.AllocatePort();
            auto v = rig.fs->CreateVersion(file, owner, soft_locks);
            if (!v.ok()) {
              rig.net.ClosePort(owner);
              stats.redone.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            bool ok = true;
            for (uint32_t page : pages) {
              if (!rig.fs->ReadPage(*v, PagePath({page}), false).ok()) {
                ok = false;
                break;
              }
            }
            std::this_thread::sleep_for(kThinkTime);  // the client computes
            for (uint32_t page : pages) {
              if (!ok ||
                  !rig.fs->WritePage(*v, PagePath({page}), std::vector<uint8_t>(64, 7))
                       .ok()) {
                ok = false;
                break;
              }
            }
            if (ok && rig.fs->Commit(*v).ok()) {
              rig.net.ClosePort(owner);
              stats.committed.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (!ok) {
              (void)rig.fs->Abort(*v);
            }
            rig.net.ClosePort(owner);
            stats.redone.fetch_add(1, std::memory_order_relaxed);
            // Client-side redo backoff, as RunTransaction does.
            std::this_thread::sleep_for(
                std::chrono::microseconds(rng.NextInRange(50, 400)));
          }
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(stats.committed.load()));
  state.counters["redo_rate"] = benchmark::Counter(
      static_cast<double>(stats.redone.load()) /
      std::max<double>(1.0, static_cast<double>(stats.committed.load())));
  state.counters["tx_per_sec"] = benchmark::Counter(
      static_cast<double>(stats.committed.load()), benchmark::Counter::kIsRate);
}

void BM_OccOptimistic(benchmark::State& state) { RunOcc(state, /*soft_locks=*/false); }
void BM_OccSoftLocks(benchmark::State& state) { RunOcc(state, /*soft_locks=*/true); }

void BM_Locking(benchmark::State& state) {
  const int conflict = static_cast<int>(state.range(0));
  const int update_pages = static_cast<int>(state.range(1));
  Network net(2);
  InMemoryBlockStore store(4068, 1 << 20);
  LockingFileServer server(&net, "locking", &store);
  server.Start();
  auto file = server.CreateFile(kFilePages);
  store.set_op_latency(kIoLatency);
  WorkloadStats stats;

  for (auto _ : state) {
    std::atomic<int> barrier{kThreads};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        // Start barrier: every worker spins until all are running, so the transactions
        // genuinely overlap (the whole point of the concurrency comparison).
        barrier.fetch_sub(1);
        while (barrier.load() > 0) {
        }
        Rng rng(state.iterations() * 131 + t);
        for (int i = 0; i < kTxPerThreadPerIter; ++i) {
          auto pages = PickPages(&rng, conflict, update_pages, t);
          for (int attempt = 0; attempt < 400; ++attempt) {
            auto tx = server.Begin(net.AllocatePort());
            if (!tx.ok()) {
              continue;
            }
            // File-level lock: even disjoint pages serialise here.
            if (!server.OpenFile(*tx, *file, true).ok()) {
              (void)server.Abort(*tx);
              stats.redone.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            bool ok = true;
            for (uint32_t page : pages) {
              if (!server.Read(*tx, *file, page).ok()) {
                ok = false;
                break;
              }
            }
            std::this_thread::sleep_for(kThinkTime);  // lock held across the think time
            for (uint32_t page : pages) {
              if (!ok || !server.Write(*tx, *file, page, std::vector<uint8_t>(64, 7)).ok()) {
                ok = false;
                break;
              }
            }
            if (ok && server.Commit(*tx).ok()) {
              stats.committed.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            (void)server.Abort(*tx);
            stats.redone.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(
                std::chrono::microseconds(rng.NextInRange(50, 400)));
          }
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(stats.committed.load()));
  state.counters["redo_rate"] = benchmark::Counter(
      static_cast<double>(stats.redone.load()) /
      std::max<double>(1.0, static_cast<double>(stats.committed.load())));
  state.counters["tx_per_sec"] = benchmark::Counter(
      static_cast<double>(stats.committed.load()), benchmark::Counter::kIsRate);
}

void BM_Timestamps(benchmark::State& state) {
  const int conflict = static_cast<int>(state.range(0));
  const int update_pages = static_cast<int>(state.range(1));
  Network net(3);
  InMemoryBlockStore store(4068, 1 << 20);
  TimestampFileServer server(&net, "ts", &store);
  server.Start();
  auto file = server.CreateFile(kFilePages);
  store.set_op_latency(kIoLatency);
  WorkloadStats stats;

  for (auto _ : state) {
    std::atomic<int> barrier{kThreads};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        // Start barrier: every worker spins until all are running, so the transactions
        // genuinely overlap (the whole point of the concurrency comparison).
        barrier.fetch_sub(1);
        while (barrier.load() > 0) {
        }
        Rng rng(state.iterations() * 131 + t);
        for (int i = 0; i < kTxPerThreadPerIter; ++i) {
          auto pages = PickPages(&rng, conflict, update_pages, t);
          for (int attempt = 0; attempt < 400; ++attempt) {
            auto tx = server.Begin();
            bool ok = tx.ok();
            for (uint32_t page : pages) {
              if (!ok) {
                break;
              }
              ok = server.Read(*tx, *file, page).ok();
            }
            std::this_thread::sleep_for(kThinkTime);
            for (uint32_t page : pages) {
              if (!ok) {
                break;
              }
              ok = server.Write(*tx, *file, page, std::vector<uint8_t>(64, 7)).ok();
            }
            if (ok && server.Commit(*tx).ok()) {
              stats.committed.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            stats.redone.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(
                std::chrono::microseconds(rng.NextInRange(50, 400)));
          }
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(stats.committed.load()));
  state.counters["redo_rate"] = benchmark::Counter(
      static_cast<double>(stats.redone.load()) /
      std::max<double>(1.0, static_cast<double>(stats.committed.load())));
  state.counters["tx_per_sec"] = benchmark::Counter(
      static_cast<double>(stats.committed.load()), benchmark::Counter::kIsRate);
}

// Sweep: conflict 0/50/90 percent x update size 1/8 pages.
#define CONFLICT_ARGS                                      \
  ->Args({0, 1})->Args({50, 1})->Args({90, 1})->Args({0, 8})->Args({50, 8})->Args({90, 8}) \
      ->Unit(benchmark::kMillisecond)->Iterations(2)->UseRealTime()

BENCHMARK(BM_OccOptimistic) CONFLICT_ARGS;
BENCHMARK(BM_OccSoftLocks) CONFLICT_ARGS;
BENCHMARK(BM_Locking) CONFLICT_ARGS;
BENCHMARK(BM_Timestamps) CONFLICT_ARGS;

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
