// Client-visible latency SLOs over either transport backend (ISSUE 7, docs/NET.md):
// the same FileClient workload — single RPC round trip, two-RPC read, full optimistic
// write/commit transaction — driven once over the simulated in-process network (with its
// standard 100us simulated wire latency) and once over real TCP loopback sockets through
// TcpServer/TcpTransport. The in-process numbers have carried the perf story since PR 1;
// this benchmark gives them a kernel-networking baseline, and CI publishes the comparison
// as BENCH_net.json.
//
//   --transport=inproc|tcp|both   which backend variants to register (default both)
//
// SLO targets for the client.* classes are declared here, so --afs_slo_json reports are
// scored (loose bounds: shared CI runners, both transports share one bar).

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/block/block_server.h"
#include "src/block/protocol.h"
#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/core/file_server.h"
#include "src/disk/mem_disk.h"
#include "src/net/tcp_server.h"
#include "src/net/tcp_transport.h"
#include "src/rpc/network.h"

namespace afs {
namespace {

constexpr std::chrono::microseconds kSimulatedWireLatency{100};

// One deployment per benchmark variant: block server + file server on the inner network,
// reached either directly (transport() == the Network, simulated latency on) or through a
// loopback TcpServer/TcpTransport pair (no simulated latency — the kernel provides it).
struct TransportRig {
  explicit TransportRig(bool tcp)
      : network(17), disk(kDefaultBlockSize, 1 << 14),
        server(&network, "bs", &disk, 7) {
    server.Start();
    account = server.CreateAccountDirect();
    block_client = std::make_unique<BlockClient>(&network, server.port(), account,
                                                 server.payload_capacity());
    fs = std::make_unique<FileServer>(&network, "fs", block_client.get());
    fs->Start();
    ok = fs->AttachStore().ok();
    if (tcp) {
      tcp_server = std::make_unique<net::TcpServer>(&network);
      tcp_server->Expose(fs.get(), "fs", net::ServiceKind::kFileServer);
      ok = ok && tcp_server->Start().ok();
      tcp_transport =
          std::make_unique<net::TcpTransport>("127.0.0.1", tcp_server->port());
    } else {
      network.set_latency(kSimulatedWireLatency, kSimulatedWireLatency);
    }
  }

  Transport* transport() {
    return tcp_transport ? tcp_transport.get() : static_cast<Transport*>(&network);
  }

  Network network;
  MemDisk disk;
  BlockServer server;
  Capability account;
  std::unique_ptr<BlockClient> block_client;
  std::unique_ptr<FileServer> fs;
  std::unique_ptr<net::TcpServer> tcp_server;
  std::unique_ptr<net::TcpTransport> tcp_transport;
  bool ok = false;
};

// One RPC round trip (GetCurrentVersion): the floor any transaction pays per message.
void BM_RpcRoundTrip(benchmark::State& state, bool tcp) {
  TransportRig rig(tcp);
  FileClient client(rig.transport(), {rig.fs->port()});
  auto file = rig.ok ? client.CreateFile() : Result<Capability>(InternalError("rig"));
  if (!file.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  int64_t calls = 0;
  for (auto _ : state) {
    auto current = client.GetCurrentVersion(*file);
    if (!current.ok()) {
      state.SkipWithError("call failed");
      return;
    }
    benchmark::DoNotOptimize(current);
    ++calls;
  }
  state.SetItemsProcessed(calls);
}

// Client-visible read: resolve the current version, then read the root page.
void BM_ClientRead(benchmark::State& state, bool tcp) {
  TransportRig rig(tcp);
  FileClient client(rig.transport(), {rig.fs->port()});
  auto file = rig.ok ? client.CreateFile() : Result<Capability>(InternalError("rig"));
  bool ready = file.ok();
  if (ready) {
    ready = RunTransaction(&client, *file, [](FileClient& c, const Capability& v) {
              return c.WriteString(v, PagePath::Root(), std::string(512, 'x'));
            }).ok();
  }
  if (!ready) {
    state.SkipWithError("setup failed");
    return;
  }
  int64_t reads = 0;
  for (auto _ : state) {
    auto current = client.GetCurrentVersion(*file);
    auto text = current.ok() ? client.ReadString(*current, PagePath::Root())
                             : Result<std::string>(current.status());
    if (!text.ok()) {
      state.SkipWithError("read failed");
      return;
    }
    benchmark::DoNotOptimize(text);
    ++reads;
  }
  state.SetItemsProcessed(reads);
}

// The full optimistic transaction: create version, write, commit (client.commit SLO).
void BM_ClientCommit(benchmark::State& state, bool tcp) {
  TransportRig rig(tcp);
  FileClient client(rig.transport(), {rig.fs->port()});
  auto file = rig.ok ? client.CreateFile() : Result<Capability>(InternalError("rig"));
  if (!file.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  int64_t commits = 0;
  for (auto _ : state) {
    auto stats = RunTransaction(&client, *file, [&](FileClient& c, const Capability& v) {
      return c.WriteString(v, PagePath::Root(),
                           std::to_string(commits));
    });
    if (!stats.ok()) {
      state.SkipWithError("commit failed");
      return;
    }
    ++commits;
  }
  state.SetItemsProcessed(commits);
}

}  // namespace
}  // namespace afs

int main(int argc, char** argv) {
  bool want_inproc = true;
  bool want_tcp = true;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport=inproc") == 0) {
      want_tcp = false;
    } else if (std::strcmp(argv[i], "--transport=tcp") == 0) {
      want_inproc = false;
    } else if (std::strcmp(argv[i], "--transport=both") == 0) {
      // the default
    } else {
      args.push_back(argv[i]);
    }
  }

  afs::obs::SloTracker* slo = afs::obs::SloTracker::Global();
  slo->DeclareTarget("client.read", {/*p50=*/100'000'000, /*p99=*/1'000'000'000,
                                     /*p999=*/4'000'000'000});
  slo->DeclareTarget("client.commit", {/*p50=*/500'000'000, /*p99=*/4'000'000'000,
                                       /*p999=*/8'000'000'000});

  struct Variant {
    const char* name;
    bool tcp;
    bool enabled;
  };
  const Variant variants[] = {{"inproc", false, want_inproc}, {"tcp", true, want_tcp}};
  for (const Variant& v : variants) {
    if (!v.enabled) {
      continue;
    }
    benchmark::RegisterBenchmark((std::string("BM_RpcRoundTrip/") + v.name).c_str(),
                                 afs::BM_RpcRoundTrip, v.tcp)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark((std::string("BM_ClientRead/") + v.name).c_str(),
                                 afs::BM_ClientRead, v.tcp)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark((std::string("BM_ClientCommit/") + v.name).c_str(),
                                 afs::BM_ClientCommit, v.tcp)
        ->Unit(benchmark::kMicrosecond);
  }
  return afs::bench::BenchMain(static_cast<int>(args.size()), args.data());
}
