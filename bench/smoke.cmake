# Bench smoke test: run one benchmark binary in --quick mode with stats emission, then
# validate that the emitted JSON parses and has the expected shape.
#
# Invoked by ctest as:
#   cmake -DBENCH=<bench binary> -DVALIDATOR=<validate_stats_json> -DOUT=<json path>
#         -P smoke.cmake

execute_process(
  COMMAND ${BENCH} --quick --afs_stats_json=${OUT}
  RESULT_VARIABLE bench_result
)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "benchmark failed with exit code ${bench_result}")
endif()

execute_process(
  COMMAND ${VALIDATOR} ${OUT}
  RESULT_VARIABLE validate_result
)
if(NOT validate_result EQUAL 0)
  message(FATAL_ERROR "stats JSON validation failed with exit code ${validate_result}")
endif()
