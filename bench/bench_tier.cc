// Tiered storage (src/tier, paper §6): migration throughput onto the write-once archive,
// cold (archived, uncached) vs hot (magnetic) read latency, promotion-cache effect, and
// the hot-path toll of routing every magnetic read through the tier's location map —
// BM_MagneticReadNoTier is the --no_tier baseline the acceptance bound (<5% uncached
// hot-read regression) is measured against. CI publishes the run as BENCH_tier.json.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/disk/write_once_disk.h"
#include "src/tier/migrator.h"
#include "src/tier/tiered_store.h"

namespace afs {
namespace {

// A file service over a TieredStore, plus a churn workload that leaves most storage as
// old-version plain pages (the archive-eligible population).
struct TierRig {
  explicit TierRig(size_t cache_blocks = 1024)
      : net(1), magnetic(4068, 1 << 20), platter(4096, 1 << 15) {
    TieredStoreOptions topt;
    topt.promotion_cache_blocks = cache_blocks;
    tiered = std::make_unique<TieredStore>(&magnetic, &platter, topt);
    if (!tiered->Mount().ok()) {
      std::abort();
    }
    FileServerOptions options;
    options.cache_committed_pages = false;  // reads hit the store, not the server cache
    fs = std::make_unique<FileServer>(&net, "bench-fs", tiered.get(), options);
    fs->Start();
    if (!fs->AttachStore().ok()) {
      std::abort();
    }
  }

  // `gens` generations over `pages` pages, every page rewritten each generation.
  Capability Churn(int pages, int gens, size_t page_bytes = 2000) {
    auto file = fs->CreateFile();
    auto v = fs->CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < pages; ++i) {
      (void)fs->InsertRef(*v, PagePath::Root(), i);
      (void)fs->WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                          std::vector<uint8_t>(page_bytes, static_cast<uint8_t>(i)));
    }
    (void)fs->Commit(*v);
    for (int gen = 0; gen < gens; ++gen) {
      auto u = fs->CreateVersion(*file, kNullPort, false);
      for (int i = 0; i < pages; ++i) {
        (void)fs->WritePage(*u, PagePath({static_cast<uint32_t>(i)}),
                            std::vector<uint8_t>(page_bytes, static_cast<uint8_t>(gen + i)));
      }
      (void)fs->Commit(*u);
    }
    return *file;
  }

  Network net;
  InMemoryBlockStore magnetic;
  WriteOnceDisk platter;
  std::unique_ptr<TieredStore> tiered;
  std::unique_ptr<FileServer> fs;
};

// Migration throughput: blocks archived (and their magnetic copies reclaimed) per second.
void BM_MigrationThroughput(benchmark::State& state) {
  const int gens = static_cast<int>(state.range(0));
  int64_t blocks = 0;
  double reclaimed_fraction = 0;
  int64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TierRig rig;
    (void)rig.Churn(8, gens);
    const size_t before = rig.magnetic.allocated_blocks();
    Migrator migrator({rig.fs.get()}, rig.tiered.get());
    state.ResumeTiming();
    auto migrated = migrator.RunCycle();
    state.PauseTiming();
    if (!migrated.ok()) {
      state.SkipWithError("migration failed");
      return;
    }
    blocks += static_cast<int64_t>(*migrated);
    const size_t after = rig.magnetic.allocated_blocks();
    reclaimed_fraction += before > 0 ? static_cast<double>(before - after) / before : 0;
    ++n;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(blocks);
  state.counters["blocks_reclaimed_fraction"] =
      benchmark::Counter(reclaimed_fraction / std::max<int64_t>(1, n));
}
BENCHMARK(BM_MigrationThroughput)->Arg(6)->Arg(24)->Unit(benchmark::kMillisecond);

// Cold read: archived block, promotion cache off — every read goes to the medium and
// re-verifies the record CRC. The latency gap to BM_MagneticReadNoTier is the price of
// having reclaimed the magnetic copy.
void BM_ColdArchivedRead(benchmark::State& state) {
  TierRig rig(/*cache_blocks=*/0);
  (void)rig.Churn(8, 12);
  Migrator migrator({rig.fs.get()}, rig.tiered.get());
  if (!migrator.RunCycle().ok()) {
    state.SkipWithError("migration failed");
    return;
  }
  auto mapping = rig.tiered->MappingSnapshot();
  if (mapping.empty()) {
    state.SkipWithError("nothing archived");
    return;
  }
  int64_t n = 0;
  for (auto _ : state) {
    auto data = rig.tiered->Read(mapping[n % mapping.size()].first);
    if (!data.ok()) {
      state.SkipWithError("archived read failed");
      return;
    }
    benchmark::DoNotOptimize(data->data());
    ++n;
  }
  state.SetItemsProcessed(n);
  state.counters["archived_blocks"] =
      benchmark::Counter(static_cast<double>(rig.tiered->archived_blocks()));
}
BENCHMARK(BM_ColdArchivedRead)->Unit(benchmark::kMicrosecond);

// Same reads with the promotion cache on: first touch promotes, the rest hit memory.
void BM_PromotedArchivedRead(benchmark::State& state) {
  TierRig rig(/*cache_blocks=*/1 << 14);
  (void)rig.Churn(8, 12);
  Migrator migrator({rig.fs.get()}, rig.tiered.get());
  if (!migrator.RunCycle().ok()) {
    state.SkipWithError("migration failed");
    return;
  }
  auto mapping = rig.tiered->MappingSnapshot();
  if (mapping.empty()) {
    state.SkipWithError("nothing archived");
    return;
  }
  // Prewarm: promote everything once so the timed loop measures cache hits even when the
  // iteration count is smaller than the archived population (--quick mode).
  for (const auto& [bno, abno] : mapping) {
    (void)abno;
    if (!rig.tiered->Read(bno).ok()) {
      state.SkipWithError("prewarm read failed");
      return;
    }
  }
  int64_t n = 0;
  for (auto _ : state) {
    auto data = rig.tiered->Read(mapping[n % mapping.size()].first);
    if (!data.ok()) {
      state.SkipWithError("archived read failed");
      return;
    }
    benchmark::DoNotOptimize(data->data());
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_PromotedArchivedRead)->Unit(benchmark::kMicrosecond);

// Hot path with the tier in place: reading a block that is NOT archived, while the
// location map is populated — one shared-lock map miss, then the magnetic store.
void BM_MagneticReadThroughTier(benchmark::State& state) {
  TierRig rig;
  (void)rig.Churn(8, 12);
  Migrator migrator({rig.fs.get()}, rig.tiered.get());
  if (!migrator.RunCycle().ok()) {
    state.SkipWithError("migration failed");
    return;
  }
  // The newest version's pages stayed magnetic; read those.
  std::vector<BlockNo> hot;
  auto listed = rig.tiered->ListBlocks();
  if (!listed.ok()) {
    state.SkipWithError("list failed");
    return;
  }
  for (BlockNo bno : *listed) {
    if (!rig.tiered->archived(bno)) {
      hot.push_back(bno);
    }
  }
  if (hot.empty()) {
    state.SkipWithError("no magnetic blocks");
    return;
  }
  int64_t n = 0;
  for (auto _ : state) {
    auto data = rig.tiered->Read(hot[n % hot.size()]);
    if (!data.ok()) {
      state.SkipWithError("magnetic read failed");
      return;
    }
    benchmark::DoNotOptimize(data->data());
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_MagneticReadThroughTier)->Unit(benchmark::kMicrosecond);

// The --no_tier baseline: identical reads against the bare magnetic store. The acceptance
// bound is BM_MagneticReadThroughTier ≤ 1.05 × this.
void BM_MagneticReadNoTier(benchmark::State& state) {
  bench::Rig rig;
  (void)rig.MakeFile(8, 2000);
  auto listed = rig.store.ListBlocks();
  if (!listed.ok() || listed->empty()) {
    state.SkipWithError("no blocks");
    return;
  }
  std::vector<BlockNo> blocks = *listed;
  int64_t n = 0;
  for (auto _ : state) {
    auto data = rig.store.Read(blocks[n % blocks.size()]);
    if (!data.ok()) {
      state.SkipWithError("read failed");
      return;
    }
    benchmark::DoNotOptimize(data->data());
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_MagneticReadNoTier)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
