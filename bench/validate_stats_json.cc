// Validates the stats JSON emitted by BenchMain (--afs_stats_json). A minimal
// recursive-descent JSON parser — strict enough to catch malformed output (trailing
// commas, unterminated strings, bad numbers) without pulling in a JSON dependency.
//
// Usage: validate_stats_json FILE
// Exit 0 iff FILE parses as JSON and is an object with a "benchmark" string and a
// "stats" array.

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(nullptr);
      case '[':
        return ParseArray();
      case '"':
        return ParseString(nullptr);
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  // Parses an object; if `keys` is non-null, records the top-level keys seen.
  bool ParseObject(std::vector<std::string>* keys) {
    if (!Expect('{')) return false;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (keys != nullptr) keys->push_back(key);
      SkipWs();
      if (!Expect(':')) return false;
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }

  const std::string& error() const { return error_; }

 private:
  bool ParseArray() {
    if (!Expect('[')) return false;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        ++pos_;  // accept any escaped char (the emitter only escapes " and \)
        continue;
      }
      if (out != nullptr) out->push_back(c);
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("bad number");
    }
    return true;
  }

  bool ParseLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return Fail("bad literal");
    }
    return true;
  }

  bool Expect(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s FILE\n", argv[0]);
    return 2;
  }
  std::FILE* f = std::fopen(argv[1], "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  std::vector<std::string> keys;
  Parser top(text);
  if (!top.ParseObject(&keys) || !top.AtEnd()) {
    std::fprintf(stderr, "invalid JSON: %s\n", top.error().c_str());
    return 1;
  }
  bool has_benchmark = false;
  bool has_stats = false;
  for (const std::string& k : keys) {
    if (k == "benchmark") has_benchmark = true;
    if (k == "stats") has_stats = true;
  }
  if (!has_benchmark || !has_stats) {
    std::fprintf(stderr, "missing required keys (benchmark=%d stats=%d)\n",
                 has_benchmark ? 1 : 0, has_stats ? 1 : 0);
    return 1;
  }
  std::printf("ok: %zu bytes, %zu top-level keys\n", text.size(), keys.size());
  return 0;
}
