// Validates the JSON artifacts emitted by BenchMain and google/benchmark. A minimal
// recursive-descent JSON parser — strict enough to catch malformed output (trailing
// commas, unterminated strings, bad numbers) without pulling in a JSON dependency.
//
// Usage: validate_stats_json [--mode=stats|slo|spans|bench] [bench options] FILE
//   stats (default)  --afs_stats_json output: object with "benchmark" and "stats" keys
//   slo              --afs_slo_json output (BENCH_slo.json): "classes" and "verdict" keys
//   spans            --afs_spans_json output (Chrome trace): a "traceEvents" key
//   bench            google/benchmark --benchmark_out JSON (BENCH_batch.json et al.):
//                    HARD-FAILS unless context.library_build_type == "release", so a
//                    debug binary can never masquerade as a perf baseline again. With
//                    --baseline=FILE it additionally prints a per-row speedup table for
//                    BM_MultiClientCommit (markdown, suitable for $GITHUB_STEP_SUMMARY)
//                    and enforces --min_speedup / --min_rpc_ratio on the most contended
//                    row (highest threads, files=1): items_per_second must be at least
//                    min_speedup x the baseline's, and the baseline's rpcs_per_txn must
//                    be at least min_rpc_ratio x the current run's.
// Exit 0 iff FILE parses as JSON and satisfies the mode's checks.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

// A tiny JSON DOM: only what the bench mode needs (strings, numbers, nesting).
struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  const Value* Find(const char* key) const {
    if (kind != kObject) return nullptr;
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool ParseValue(Value* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = Value::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = Value::kBool;
        out->b = true;
        return ParseLiteral("true");
      case 'f':
        out->kind = Value::kBool;
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out) {
    out->kind = Value::kObject;
    if (!Expect('{')) return false;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Expect(':')) return false;
      Value child;
      if (!ParseValue(&child)) return false;
      out->obj.emplace_back(std::move(key), std::move(child));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }

  const std::string& error() const { return error_; }

 private:
  bool ParseArray(Value* out) {
    out->kind = Value::kArray;
    if (!Expect('[')) return false;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value child;
      if (!ParseValue(&child)) return false;
      out->arr.push_back(std::move(child));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        out->push_back(text_[pos_++]);  // accept any escape (emitters escape " and \)
        continue;
      }
      out->push_back(c);
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("bad number");
    }
    out->kind = Value::kNumber;
    out->num = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return Fail("bad literal");
    }
    return true;
  }

  bool Expect(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

bool LoadJson(const char* path, Value* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  Parser parser(text);
  if (!parser.ParseValue(out) || !parser.AtEnd()) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path, parser.error().c_str());
    return false;
  }
  return true;
}

// One BM_MultiClientCommit row: name suffix after the benchmark name, plus the metrics
// the gates consume.
struct CommitRow {
  double items_per_second = 0.0;
  double rpcs_per_txn = 0.0;
};

// Enforce release provenance and pull the BM_MultiClientCommit rows out of a
// google/benchmark JSON document. Returns false (with a message) on any gate failure.
bool CheckBenchFile(const char* path, const Value& root,
                    std::map<std::string, CommitRow>* rows) {
  // Provenance: `afs_build_type` is stamped by BenchMain from the bench binary's own
  // compile flags (NDEBUG). google/benchmark's `library_build_type` only describes the
  // benchmark LIBRARY's build — on systems with a debug-built libbenchmark it reads
  // "debug" even for a -O3 bench binary — so it is used only as a fallback for artifacts
  // that predate the stamp (those were genuinely debug builds).
  const Value* context = root.Find("context");
  const Value* build_type = context != nullptr ? context->Find("afs_build_type") : nullptr;
  const char* key = "afs_build_type";
  if (build_type == nullptr || build_type->kind != Value::kString) {
    build_type = context != nullptr ? context->Find("library_build_type") : nullptr;
    key = "library_build_type";
  }
  if (build_type == nullptr || build_type->kind != Value::kString) {
    std::fprintf(stderr, "%s: missing context.afs_build_type\n", path);
    return false;
  }
  if (build_type->str != "release") {
    std::fprintf(stderr,
                 "%s: %s is \"%s\", not \"release\" — refusing to treat a "
                 "non-release binary's numbers as a perf artifact\n",
                 path, key, build_type->str.c_str());
    return false;
  }
  const Value* benchmarks = root.Find("benchmarks");
  if (benchmarks == nullptr || benchmarks->kind != Value::kArray) {
    std::fprintf(stderr, "%s: missing benchmarks array\n", path);
    return false;
  }
  for (const Value& b : benchmarks->arr) {
    const Value* name = b.Find("name");
    if (name == nullptr || name->kind != Value::kString ||
        name->str.rfind("BM_MultiClientCommit/", 0) != 0) {
      continue;
    }
    CommitRow row;
    if (const Value* ips = b.Find("items_per_second"); ips != nullptr) {
      row.items_per_second = ips->num;
    }
    if (const Value* rpcs = b.Find("rpcs_per_txn"); rpcs != nullptr) {
      row.rpcs_per_txn = rpcs->num;
    }
    (*rows)[name->str] = row;
  }
  return true;
}

int RunBenchMode(const char* path, const char* baseline_path, double min_speedup,
                 double min_rpc_ratio) {
  Value current_doc;
  std::map<std::string, CommitRow> current;
  if (!LoadJson(path, &current_doc) || !CheckBenchFile(path, current_doc, &current)) {
    return 1;
  }
  if (baseline_path == nullptr) {
    std::printf("ok (bench): %s is a release-build artifact\n", path);
    return 0;
  }

  Value baseline_doc;
  std::map<std::string, CommitRow> baseline;
  if (!LoadJson(baseline_path, &baseline_doc) ||
      !CheckBenchFile(baseline_path, baseline_doc, &baseline)) {
    return 1;
  }

  // Markdown speedup table over every row present in both files; piped into the CI job
  // summary. The gated row is the most contended single-file one (highest thread count
  // with files=1, vectored batch on) — that is where group commit + the version index
  // must earn their keep.
  std::printf("| benchmark | baseline txn/s | current txn/s | speedup | baseline rpcs/txn "
              "| current rpcs/txn | rpc ratio |\n");
  std::printf("|---|---|---|---|---|---|---|\n");
  std::string gated_name;
  long gated_threads = -1;
  for (const auto& [name, cur] : current) {
    auto it = baseline.find(name);
    if (it == baseline.end()) {
      continue;
    }
    const CommitRow& base = it->second;
    double speedup = base.items_per_second > 0 ? cur.items_per_second / base.items_per_second : 0;
    double rpc_ratio = cur.rpcs_per_txn > 0 ? base.rpcs_per_txn / cur.rpcs_per_txn : 0;
    std::printf("| %s | %.1f | %.1f | %.2fx | %.1f | %.1f | %.2fx |\n", name.c_str(),
                base.items_per_second, cur.items_per_second, speedup, base.rpcs_per_txn,
                cur.rpcs_per_txn, rpc_ratio);
    // Row names are BM_MultiClientCommit/<threads>/<files>/<batch>[/...]; gate on the
    // single-file batched row with the highest thread count.
    long threads = 0;
    long files = 0;
    long batch = 0;
    if (std::sscanf(name.c_str(), "BM_MultiClientCommit/%ld/%ld/%ld", &threads, &files,
                    &batch) == 3 &&
        files == 1 && batch == 1 && threads > gated_threads) {
      gated_threads = threads;
      gated_name = name;
    }
  }
  if (gated_name.empty()) {
    std::fprintf(stderr, "no common contended BM_MultiClientCommit row to gate on\n");
    return 1;
  }
  const CommitRow& cur = current[gated_name];
  const CommitRow& base = baseline[gated_name];
  double speedup = base.items_per_second > 0 ? cur.items_per_second / base.items_per_second : 0;
  double rpc_ratio = cur.rpcs_per_txn > 0 ? base.rpcs_per_txn / cur.rpcs_per_txn : 0;
  std::printf("\ngated row %s: speedup %.2fx (floor %.2fx), rpc ratio %.2fx (floor %.2fx)\n",
              gated_name.c_str(), speedup, min_speedup, rpc_ratio, min_rpc_ratio);
  if (speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: %s speedup %.2fx < required %.2fx\n", gated_name.c_str(),
                 speedup, min_speedup);
    return 1;
  }
  if (rpc_ratio < min_rpc_ratio) {
    std::fprintf(stderr, "FAIL: %s rpcs_per_txn ratio %.2fx < required %.2fx\n",
                 gated_name.c_str(), rpc_ratio, min_rpc_ratio);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "stats";
  const char* path = nullptr;
  const char* baseline = nullptr;
  double min_speedup = 0.0;  // informational unless the caller sets a floor
  double min_rpc_ratio = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--min_speedup=", 14) == 0) {
      min_speedup = std::strtod(argv[i] + 14, nullptr);
    } else if (std::strncmp(argv[i], "--min_rpc_ratio=", 16) == 0) {
      min_rpc_ratio = std::strtod(argv[i] + 16, nullptr);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr ||
      (mode != "stats" && mode != "slo" && mode != "spans" && mode != "bench")) {
    std::fprintf(stderr,
                 "usage: %s [--mode=stats|slo|spans|bench] [--baseline=FILE] "
                 "[--min_speedup=X] [--min_rpc_ratio=X] FILE\n",
                 argv[0]);
    return 2;
  }

  if (mode == "bench") {
    return RunBenchMode(path, baseline, min_speedup, min_rpc_ratio);
  }

  Value root;
  if (!LoadJson(path, &root)) {
    return 1;
  }
  if (root.kind != Value::kObject) {
    std::fprintf(stderr, "top-level JSON value is not an object\n");
    return 1;
  }
  std::vector<std::string> required;
  if (mode == "stats") {
    required = {"benchmark", "stats"};
  } else if (mode == "slo") {
    required = {"classes", "verdict"};
  } else {
    required = {"traceEvents"};
  }
  for (const std::string& want : required) {
    if (root.Find(want.c_str()) == nullptr) {
      std::fprintf(stderr, "missing required key \"%s\" (mode=%s)\n", want.c_str(),
                   mode.c_str());
      return 1;
    }
  }
  std::printf("ok (%s): %zu top-level keys\n", mode.c_str(), root.obj.size());
  return 0;
}
