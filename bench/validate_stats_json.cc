// Validates the JSON artifacts emitted by BenchMain. A minimal recursive-descent JSON
// parser — strict enough to catch malformed output (trailing commas, unterminated
// strings, bad numbers) without pulling in a JSON dependency.
//
// Usage: validate_stats_json [--mode=stats|slo|spans] FILE
//   stats (default)  --afs_stats_json output: object with "benchmark" and "stats" keys
//   slo              --afs_slo_json output (BENCH_slo.json): "classes" and "verdict" keys
//   spans            --afs_spans_json output (Chrome trace): a "traceEvents" key
// Exit 0 iff FILE parses as JSON and has the mode's required top-level keys.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(nullptr);
      case '[':
        return ParseArray();
      case '"':
        return ParseString(nullptr);
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  // Parses an object; if `keys` is non-null, records the top-level keys seen.
  bool ParseObject(std::vector<std::string>* keys) {
    if (!Expect('{')) return false;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      if (keys != nullptr) keys->push_back(key);
      SkipWs();
      if (!Expect(':')) return false;
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == text_.size();
  }

  const std::string& error() const { return error_; }

 private:
  bool ParseArray() {
    if (!Expect('[')) return false;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!ParseValue()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        ++pos_;  // accept any escaped char (the emitter only escapes " and \)
        continue;
      }
      if (out != nullptr) out->push_back(c);
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("bad number");
    }
    return true;
  }

  bool ParseLiteral(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return Fail("bad literal");
    }
    return true;
  }

  bool Expect(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool Fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "stats";
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode = argv[i] + 7;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr || (mode != "stats" && mode != "slo" && mode != "spans")) {
    std::fprintf(stderr, "usage: %s [--mode=stats|slo|spans] FILE\n", argv[0]);
    return 2;
  }
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  std::vector<std::string> keys;
  Parser top(text);
  if (!top.ParseObject(&keys) || !top.AtEnd()) {
    std::fprintf(stderr, "invalid JSON: %s\n", top.error().c_str());
    return 1;
  }
  std::vector<std::string> required;
  if (mode == "stats") {
    required = {"benchmark", "stats"};
  } else if (mode == "slo") {
    required = {"classes", "verdict"};
  } else {
    required = {"traceEvents"};
  }
  for (const std::string& want : required) {
    bool found = false;
    for (const std::string& k : keys) {
      if (k == want) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "missing required key \"%s\" (mode=%s)\n", want.c_str(),
                   mode.c_str());
      return 1;
    }
  }
  std::printf("ok (%s): %zu bytes, %zu top-level keys\n", mode.c_str(), text.size(),
              keys.size());
  return 0;
}
