// Claim C8 (paper §5.3): "this locking mechanism gives exclusive access to any subtree of
// the file system ... sub-files, not accessed by an update, are not locked and therefore
// accessible to other updates. Full concurrent update remains possible on small files."
//
// A super-file holds `subfiles` sub-files. We measure small-file (sub-file) update
// throughput (a) with no super-file activity, (b) while super-file updates repeatedly
// touch a DISJOINT sub-file, and (c) while super-file updates touch the SAME sub-file.
// Expected shape: (a) ≈ (b) — unvisited sub-files stay unlocked; (c) collapses — the
// inner lock serialises them.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench/bench_common.h"

namespace afs {
namespace {

struct SuperRig {
  SuperRig() : rig() {
    auto super_file = rig.fs->CreateFile();
    super = *super_file;
    auto v = rig.fs->CreateVersion(super, kNullPort, false);
    for (int i = 0; i < 4; ++i) {
      auto sub = rig.fs->CreateSubFile(*v, PagePath::Root(), i);
      subs.push_back(*sub);
    }
    (void)rig.fs->Commit(*v);
    for (auto& sub : subs) {
      auto sv = rig.fs->CreateVersion(sub, kNullPort, false);
      (void)rig.fs->WritePage(*sv, PagePath::Root(), std::vector<uint8_t>(64, 1));
      (void)rig.fs->Commit(*sv);
    }
  }

  bench::Rig rig;
  Capability super;
  std::vector<Capability> subs;
};

// One small-file update of sub 0, with bounded lock-wait retries.
bool UpdateSub(SuperRig* rig, const Capability& sub) {
  for (int attempt = 0; attempt < 4000; ++attempt) {
    auto v = rig->rig.fs->CreateVersion(sub, kNullPort, false);
    if (!v.ok()) {
      if (v.status().code() == ErrorCode::kLocked) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      return false;
    }
    if (!rig->rig.fs->WritePage(*v, PagePath::Root(), std::vector<uint8_t>(64, 2)).ok()) {
      (void)rig->rig.fs->Abort(*v);
      continue;
    }
    if (rig->rig.fs->Commit(*v).ok()) {
      return true;
    }
  }
  return false;
}

// Background super-file updates writing through sub `target` until stopped.
void SuperUpdater(SuperRig* rig, uint32_t target, std::atomic<bool>* stop,
                  std::atomic<uint64_t>* supers_done) {
  while (!stop->load()) {
    Port owner = rig->rig.net.AllocatePort();
    auto v = rig->rig.fs->CreateVersion(rig->super, owner, false);
    if (!v.ok()) {
      rig->rig.net.ClosePort(owner);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    bool ok =
        rig->rig.fs->WritePage(*v, PagePath({target}), std::vector<uint8_t>(64, 3)).ok();
    if (ok && rig->rig.fs->Commit(*v).ok()) {
      supers_done->fetch_add(1);
    } else {
      (void)rig->rig.fs->Abort(*v);
    }
    rig->rig.net.ClosePort(owner);
  }
}

void BM_SubUpdateNoSuperActivity(benchmark::State& state) {
  SuperRig rig;
  int64_t n = 0;
  for (auto _ : state) {
    if (!UpdateSub(&rig, rig.subs[0])) {
      state.SkipWithError("sub update failed");
      return;
    }
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_SubUpdateNoSuperActivity)->Unit(benchmark::kMicrosecond);

void RunWithSuperUpdates(benchmark::State& state, uint32_t super_target) {
  SuperRig rig;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> supers_done{0};
  std::thread background(SuperUpdater, &rig, super_target, &stop, &supers_done);
  int64_t n = 0;
  for (auto _ : state) {
    if (!UpdateSub(&rig, rig.subs[0])) {
      stop = true;
      background.join();
      state.SkipWithError("sub update failed");
      return;
    }
    ++n;
  }
  stop = true;
  background.join();
  state.SetItemsProcessed(n);
  state.counters["super_commits"] = benchmark::Counter(static_cast<double>(supers_done));
}

// (b) super-file updates touch sub 3; we update sub 0 — disjoint, unaffected.
void BM_SubUpdateWithDisjointSuper(benchmark::State& state) {
  RunWithSuperUpdates(state, /*super_target=*/3);
}
BENCHMARK(BM_SubUpdateWithDisjointSuper)->Unit(benchmark::kMicrosecond);

// (c) super-file updates touch sub 0 too — the inner lock serialises us behind them.
void BM_SubUpdateWithOverlappingSuper(benchmark::State& state) {
  RunWithSuperUpdates(state, /*super_target=*/0);
}
BENCHMARK(BM_SubUpdateWithOverlappingSuper)->Unit(benchmark::kMicrosecond);

// Exclusive super-file updates: back-to-back super commits (each inner-locking one sub).
void BM_SuperFileUpdate(benchmark::State& state) {
  SuperRig rig;
  int64_t n = 0;
  for (auto _ : state) {
    Port owner = rig.rig.net.AllocatePort();
    auto v = rig.rig.fs->CreateVersion(rig.super, owner, false);
    if (!v.ok()) {
      rig.rig.net.ClosePort(owner);
      state.SkipWithError("super version failed");
      return;
    }
    (void)rig.rig.fs->WritePage(*v, PagePath({1}), std::vector<uint8_t>(64, 4));
    if (!rig.rig.fs->Commit(*v).ok()) {
      rig.rig.net.ClosePort(owner);
      state.SkipWithError("super commit failed");
      return;
    }
    rig.rig.net.ClosePort(owner);
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_SuperFileUpdate)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
