// Claim C3 (paper §5.2, §5.4): the serialisability test "can be carried out ... in one
// pass over the page tree. Unvisited branches in either page tree are not descended, which
// makes the serialisability check quite fast when at least one of the concurrent updates
// is small" — its cost tracks the ACCESSED set, not the file size.
//
// Files are two-level trees: `groups` interior pages of 16 leaves each (file size =
// 16 x groups). Two conflict-free concurrent updates each touch `touched` leaves in
// disjoint groups; the second commit runs the test-and-merge. Expected shape: time grows
// with `touched` and stays ~flat in `groups` (untouched groups are never descended).
// Ablation A3: the committed-page cache (§5.4's "serialisability tests without having to
// read the page tree") on vs off, with simulated I/O latency so reads have a price.
// Args: {groups, touched_leaves}.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace afs {
namespace {

constexpr int kFanout = 16;

Capability MakeGroupedFile(bench::Rig* rig, int groups) {
  auto file = rig->fs->CreateFile();
  auto v = rig->fs->CreateVersion(*file, kNullPort, false);
  for (int g = 0; g < groups; ++g) {
    (void)rig->fs->InsertRef(*v, PagePath::Root(), g);
    (void)rig->fs->WritePage(*v, PagePath({static_cast<uint32_t>(g)}),
                             std::vector<uint8_t>(64, 1));
    for (int c = 0; c < kFanout; ++c) {
      (void)rig->fs->InsertRef(*v, PagePath({static_cast<uint32_t>(g)}), c);
      (void)rig->fs->WritePage(
          *v, PagePath({static_cast<uint32_t>(g), static_cast<uint32_t>(c)}),
          std::vector<uint8_t>(64, 2));
    }
  }
  (void)rig->fs->Commit(*v);
  return *file;
}

// Leaf i of update `side` (0 or 1): both sides visit the SAME groups (forcing the merge to
// recurse into them) but touch disjoint leaves within each (even vs odd slots) — the
// contention-free overlap that exercises the one-pass descent.
PagePath LeafFor(int side, int i, int groups) {
  uint32_t group = static_cast<uint32_t>((i / (kFanout / 2)) % groups);
  uint32_t leaf = static_cast<uint32_t>((i % (kFanout / 2)) * 2 + side);
  return PagePath({group, leaf});
}

void RunSerialise(benchmark::State& state, bool flag_cache) {
  const int groups = static_cast<int>(state.range(0));
  const int touched = static_cast<int>(state.range(1));
  FileServerOptions options;
  options.cache_committed_pages = flag_cache;
  bench::Rig rig(options);
  Capability file = MakeGroupedFile(&rig, groups);
  // Reads cost something, as on a real server; the committed-page cache is what §5.4
  // proposes to avoid them during serialisability tests.
  rig.store.set_op_latency(std::chrono::microseconds(5));

  uint64_t tests_before = rig.fs->serialise_tests_run();
  int64_t merges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto vb = rig.fs->CreateVersion(file, kNullPort, false);
    auto vc = rig.fs->CreateVersion(file, kNullPort, false);
    for (int i = 0; i < touched; ++i) {
      (void)rig.fs->WritePage(*vc, LeafFor(0, i, groups), std::vector<uint8_t>(64, 3));
      (void)rig.fs->WritePage(*vb, LeafFor(1, i, groups), std::vector<uint8_t>(64, 4));
    }
    if (!rig.fs->Commit(*vc).ok()) {
      state.SkipWithError("first commit failed");
      return;
    }
    state.ResumeTiming();
    // The timed part: V.b's commit must run the serialisability test + one-pass merge.
    if (!rig.fs->Commit(*vb).ok()) {
      state.SkipWithError("merge commit failed");
      return;
    }
    ++merges;
  }
  state.SetItemsProcessed(merges);
  state.counters["serialise_tests"] =
      benchmark::Counter(static_cast<double>(rig.fs->serialise_tests_run() - tests_before));
}

void BM_SerialiseMerge(benchmark::State& state) { RunSerialise(state, true); }
void BM_SerialiseMergeNoCache(benchmark::State& state) { RunSerialise(state, false); }

// File-size sweep at fixed touched-set (flat expected), then touched-set sweep at fixed
// file size (linear expected). groups: 4 -> 64 leaves, 16 -> 256, 64 -> 1024 leaves.
#define SERIALISE_ARGS                                                      \
  ->Args({4, 4})->Args({16, 4})->Args({64, 4})                              \
  ->Args({64, 1})->Args({64, 16})->Args({64, 48})                          \
      ->Unit(benchmark::kMicrosecond)->Iterations(50)

BENCHMARK(BM_SerialiseMerge) SERIALISE_ARGS;
BENCHMARK(BM_SerialiseMergeNoCache) SERIALISE_ARGS;

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
