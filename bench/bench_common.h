// Shared setup helpers for the benchmark harness (EXPERIMENTS.md maps each binary to the
// paper claim it reproduces).

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/block/block_store.h"
#include "src/client/file_client.h"
#include "src/core/file_server.h"
#include "src/rpc/network.h"

namespace afs {
namespace bench {

// One in-process file service on an in-memory store: isolates the algorithmic costs the
// claims are about (RPC and disk latency are benchmarked separately in C6).
struct Rig {
  explicit Rig(FileServerOptions options = {}, uint32_t blocks = 1 << 20)
      : net(1), store(4068, blocks) {
    fs = std::make_unique<FileServer>(&net, "bench-fs", &store, options);
    fs->Start();
    Status st = fs->AttachStore();
    if (!st.ok()) {
      std::abort();
    }
  }

  // A file with `pages` children under the root, each `page_bytes` of data.
  Capability MakeFile(int pages, size_t page_bytes = 256) {
    auto file = fs->CreateFile();
    auto v = fs->CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < pages; ++i) {
      (void)fs->InsertRef(*v, PagePath::Root(), i);
      (void)fs->WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                          std::vector<uint8_t>(page_bytes, static_cast<uint8_t>(i)));
    }
    (void)fs->Commit(*v);
    return *file;
  }

  // A balanced tree of depth `depth` with `fanout` children per page; returns the file and
  // fills `leaf` with the path of one leaf.
  Capability MakeTree(int depth, int fanout, PagePath* leaf) {
    auto file = fs->CreateFile();
    auto v = fs->CreateVersion(*file, kNullPort, false);
    std::vector<PagePath> level = {PagePath::Root()};
    for (int d = 0; d < depth; ++d) {
      std::vector<PagePath> next;
      for (const PagePath& parent : level) {
        for (int c = 0; c < fanout; ++c) {
          (void)fs->InsertRef(*v, parent, c);
          PagePath child = parent.Child(c);
          (void)fs->WritePage(*v, child, std::vector<uint8_t>(64, 1));
          if (static_cast<int>(next.size()) < 4) {  // keep the tree walk bounded
            next.push_back(child);
          }
        }
      }
      level = next;
    }
    (void)fs->Commit(*v);
    PagePath path = PagePath::Root();
    for (int d = 0; d < depth; ++d) {
      path = path.Child(0);
    }
    *leaf = path;
    return *file;
  }

  Network net;
  InMemoryBlockStore store;
  std::unique_ptr<FileServer> fs;
};

}  // namespace bench
}  // namespace afs

#endif  // BENCH_BENCH_COMMON_H_
