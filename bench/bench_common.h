// Shared setup helpers for the benchmark harness (EXPERIMENTS.md maps each binary to the
// paper claim it reproduces).

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/block/block_store.h"
#include "src/client/file_client.h"
#include "src/core/file_server.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/rpc/network.h"

namespace afs {
namespace bench {

// One in-process file service on an in-memory store: isolates the algorithmic costs the
// claims are about (RPC and disk latency are benchmarked separately in C6).
struct Rig {
  explicit Rig(FileServerOptions options = {}, uint32_t blocks = 1 << 20)
      : net(1), store(4068, blocks) {
    fs = std::make_unique<FileServer>(&net, "bench-fs", &store, options);
    fs->Start();
    Status st = fs->AttachStore();
    if (!st.ok()) {
      std::abort();
    }
  }

  // A file with `pages` children under the root, each `page_bytes` of data.
  Capability MakeFile(int pages, size_t page_bytes = 256) {
    auto file = fs->CreateFile();
    auto v = fs->CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < pages; ++i) {
      (void)fs->InsertRef(*v, PagePath::Root(), i);
      (void)fs->WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                          std::vector<uint8_t>(page_bytes, static_cast<uint8_t>(i)));
    }
    (void)fs->Commit(*v);
    return *file;
  }

  // A balanced tree of depth `depth` with `fanout` children per page; returns the file and
  // fills `leaf` with the path of one leaf.
  Capability MakeTree(int depth, int fanout, PagePath* leaf) {
    auto file = fs->CreateFile();
    auto v = fs->CreateVersion(*file, kNullPort, false);
    std::vector<PagePath> level = {PagePath::Root()};
    for (int d = 0; d < depth; ++d) {
      std::vector<PagePath> next;
      for (const PagePath& parent : level) {
        for (int c = 0; c < fanout; ++c) {
          (void)fs->InsertRef(*v, parent, c);
          PagePath child = parent.Child(c);
          (void)fs->WritePage(*v, child, std::vector<uint8_t>(64, 1));
          if (static_cast<int>(next.size()) < 4) {  // keep the tree walk bounded
            next.push_back(child);
          }
        }
      }
      level = next;
    }
    (void)fs->Commit(*v);
    PagePath path = PagePath::Root();
    for (int d = 0; d < depth; ++d) {
      path = path.Child(0);
    }
    *leaf = path;
    return *file;
  }

  Network net;
  InMemoryBlockStore store;
  std::unique_ptr<FileServer> fs;
};

// Harness entry point shared by every benchmark binary (use via AFS_BENCHMARK_MAIN).
//
// Extra flags, consumed before google/benchmark sees argv:
//   --quick                 run each benchmark for a minimal interval (smoke tests, CI)
//   --afs_stats_json=PATH   after the run, write {"benchmark":..., "stats":[...]} with the
//                           process-wide metrics snapshot to PATH ("-" = stdout). Also
//                           honoured via the AFS_STATS_JSON environment variable.
//   --afs_slo_json=PATH     write the SloTracker report (per-class p50/p99/p999 vs declared
//                           targets + overall verdict) to PATH ("-" = stdout). Env:
//                           AFS_SLO_JSON.
//   --afs_spans_json=PATH   enable span collection for the whole run and export the span
//                           ring as Chrome trace_event JSON to PATH ("-" = stdout) — load
//                           it in chrome://tracing or Perfetto. Env: AFS_SPANS_JSON.
//
// Registries die with the objects that own them (Rigs are destroyed inside each BM_*
// function), so the end-of-run snapshot leans on the retired aggregate that
// DumpAllJson() folds destroyed registries into — see src/obs/metrics.h.
inline int WriteTextFile(const std::string& path, const std::string& out) {
  if (path == "-") {
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return 0;
}

inline int BenchMain(int argc, char** argv) {
  // Provenance stamp from THIS binary's compile flags. google/benchmark's own
  // `library_build_type` only describes how the (system-installed) benchmark library was
  // built; it says nothing about the code under test. validate_stats_json --mode=bench
  // refuses perf artifacts whose afs_build_type is not "release".
#ifdef NDEBUG
  benchmark::AddCustomContext("afs_build_type", "release");
#else
  benchmark::AddCustomContext("afs_build_type", "debug");
#endif
  std::string stats_path;
  std::string slo_path;
  std::string spans_path;
  if (const char* env = std::getenv("AFS_STATS_JSON")) {
    stats_path = env;
  }
  if (const char* env = std::getenv("AFS_SLO_JSON")) {
    slo_path = env;
  }
  if (const char* env = std::getenv("AFS_SPANS_JSON")) {
    spans_path = env;
  }
  std::vector<char*> args;
  std::string min_time_flag = "--benchmark_min_time=0.001";
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.push_back(min_time_flag.data());
    } else if (std::strncmp(argv[i], "--afs_stats_json=", 17) == 0) {
      stats_path = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--afs_slo_json=", 15) == 0) {
      slo_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--afs_spans_json=", 17) == 0) {
      spans_path = argv[i] + 17;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!spans_path.empty()) {
    obs::SetSpanEnabled(true);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!stats_path.empty()) {
    std::string out = "{\"benchmark\":\"";
    out += argv[0];
    out += "\",\"stats\":";
    out += obs::DumpAllJson();
    out += "}\n";
    if (WriteTextFile(stats_path, out) != 0) {
      return 1;
    }
  }
  if (!slo_path.empty()) {
    if (WriteTextFile(slo_path, obs::SloTracker::Global()->DumpJson() + "\n") != 0) {
      return 1;
    }
  }
  if (!spans_path.empty()) {
    if (WriteTextFile(spans_path, obs::DumpSpansChromeJson(obs::kSpanRingCapacity) + "\n") !=
        0) {
      return 1;
    }
  }
  return 0;
}

}  // namespace bench
}  // namespace afs

#define AFS_BENCHMARK_MAIN()                                              \
  int main(int argc, char** argv) { return afs::bench::BenchMain(argc, argv); }

#endif  // BENCH_BENCH_COMMON_H_
