// Claim C7 (paper §5.1): "Every change thus bubbles up from the leaves of the page tree to
// the root page" — the FIRST write of a page in a version copies the whole path (cost
// linear in depth); later writes of the same page go in place (flat).
//
// Expected shape: first-write block allocations/writes grow linearly with tree depth;
// repeat writes cost ~1 block write regardless of depth.
// Args: {depth}.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace afs {
namespace {

void BM_FirstWriteAtDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  bench::Rig rig;
  PagePath leaf;
  Capability file = rig.MakeTree(depth, /*fanout=*/2, &leaf);

  uint64_t writes_before = rig.store.total_writes();
  int64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto v = rig.fs->CreateVersion(file, kNullPort, false);
    if (!v.ok()) {
      state.SkipWithError("create version failed");
      return;
    }
    uint64_t before = rig.store.total_writes();
    state.ResumeTiming();
    // First write: copies the leaf and every page between it and the root.
    if (!rig.fs->WritePage(*v, leaf, std::vector<uint8_t>(64, 1)).ok()) {
      state.SkipWithError("write failed");
      return;
    }
    state.PauseTiming();
    benchmark::DoNotOptimize(before);
    (void)rig.fs->Abort(*v);
    ++n;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(n);
  (void)writes_before;
}
BENCHMARK(BM_FirstWriteAtDepth)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMicrosecond);

void BM_RepeatWriteAtDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  bench::Rig rig;
  PagePath leaf;
  Capability file = rig.MakeTree(depth, /*fanout=*/2, &leaf);
  auto v = rig.fs->CreateVersion(file, kNullPort, false);
  // Materialise the path once; the timed loop measures in-place repeat writes.
  (void)rig.fs->WritePage(*v, leaf, std::vector<uint8_t>(64, 1));

  uint64_t writes_before = rig.store.total_writes();
  int64_t n = 0;
  for (auto _ : state) {
    if (!rig.fs->WritePage(*v, leaf, std::vector<uint8_t>(64, 2)).ok()) {
      state.SkipWithError("write failed");
      return;
    }
    ++n;
  }
  state.SetItemsProcessed(n);
  state.counters["block_writes_per_op"] = benchmark::Counter(
      static_cast<double>(rig.store.total_writes() - writes_before) / std::max<int64_t>(1, n));
}
BENCHMARK(BM_RepeatWriteAtDepth)->Arg(1)->Arg(3)->Arg(6)->Unit(benchmark::kMicrosecond);

// Block-op accounting for the first write, measured exactly (one-shot, no timing noise).
void BM_FirstWriteBlockOps(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  bench::Rig rig;
  PagePath leaf;
  Capability file = rig.MakeTree(depth, /*fanout=*/2, &leaf);
  uint64_t total_allocs = 0;
  int64_t n = 0;
  for (auto _ : state) {
    auto v = rig.fs->CreateVersion(file, kNullPort, false);
    size_t before = rig.store.allocated_blocks();
    (void)rig.fs->WritePage(*v, leaf, std::vector<uint8_t>(64, 1));
    total_allocs += rig.store.allocated_blocks() - before;
    (void)rig.fs->Abort(*v);
    ++n;
  }
  state.SetItemsProcessed(n);
  // Expected: ≈ depth (one private copy per level below the root).
  state.counters["blocks_copied_per_first_write"] =
      benchmark::Counter(static_cast<double>(total_allocs) / std::max<int64_t>(1, n));
}
BENCHMARK(BM_FirstWriteBlockOps)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
