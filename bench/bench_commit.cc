// Claim C2 (paper §5.2): "As long as updates are done one after the other, commit always
// succeeds and requires virtually no processing at all."
//
// Measures the cost of an uncontended update (create version, write one page, commit)
// against files of growing size. Expected shape: both the latency and — decisively — the
// number of block operations per commit stay flat as the file grows from 4 to 1024 pages:
// commit is one test-and-set on the base version page, independent of file size.
// Args: {file_pages}.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace afs {
namespace {

void BM_UncontendedUpdate(benchmark::State& state) {
  const int pages = static_cast<int>(state.range(0));
  bench::Rig rig;
  Capability file = rig.MakeFile(pages);

  uint64_t reads_before = rig.store.total_reads();
  uint64_t writes_before = rig.store.total_writes();
  uint64_t fast_before = rig.fs->commits_fast_path();
  int64_t committed = 0;
  for (auto _ : state) {
    auto v = rig.fs->CreateVersion(file, kNullPort, false);
    benchmark::DoNotOptimize(v);
    (void)rig.fs->WritePage(*v, PagePath({0}), std::vector<uint8_t>(64, 1));
    auto result = rig.fs->Commit(*v);
    if (!result.ok()) {
      state.SkipWithError("uncontended commit failed");
      return;
    }
    ++committed;
  }
  state.SetItemsProcessed(committed);
  state.counters["block_reads_per_tx"] = benchmark::Counter(
      static_cast<double>(rig.store.total_reads() - reads_before) / committed);
  state.counters["block_writes_per_tx"] = benchmark::Counter(
      static_cast<double>(rig.store.total_writes() - writes_before) / committed);
  state.counters["fast_path_commits"] =
      benchmark::Counter(static_cast<double>(rig.fs->commits_fast_path() - fast_before));
  // Every one of these must have taken the no-serialisability-test fast path.
  state.counters["serialise_tests"] =
      benchmark::Counter(static_cast<double>(rig.fs->serialise_tests_run()));
}

BENCHMARK(BM_UncontendedUpdate)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// One-page files (paper §6): "Writing these one-page files is efficient; no concurrency
// control mechanisms slow it down." Compare a full atomic update of a one-page file with
// a raw block write: the overhead is a handful of block ops, not a locking protocol.
void BM_OnePageFileUpdate(benchmark::State& state) {
  bench::Rig rig;
  Capability file = rig.MakeFile(0);  // data lives in the root page itself
  int64_t n = 0;
  for (auto _ : state) {
    auto v = rig.fs->CreateVersion(file, kNullPort, false);
    (void)rig.fs->WritePage(*v, PagePath::Root(), std::vector<uint8_t>(1024, 2));
    if (!rig.fs->Commit(*v).ok()) {
      state.SkipWithError("commit failed");
      return;
    }
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_OnePageFileUpdate)->Unit(benchmark::kMicrosecond);

void BM_RawBlockWrite(benchmark::State& state) {
  InMemoryBlockStore store(4068, 1 << 20);
  auto bno = store.AllocWrite(std::vector<uint8_t>(1024, 1));
  int64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Write(*bno, std::vector<uint8_t>(1024, 2)));
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_RawBlockWrite)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
