// Claim C6 (paper §4): in the stable pair, a write costs one companion round trip plus
// two disk writes ("writes are always carried out on the companion disk first"); reads are
// purely local; collisions are detected before damage is done.
//
// Expected shape: stable write ≈ one extra RPC + 2x the disk writes of a plain write;
// stable read ≈ plain read; fail-over read only marginally slower. Disk-write counters
// make the 2x explicit, independent of wall clock.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/disk/mem_disk.h"
#include "src/rpc/network.h"

namespace afs {
namespace {

struct PairRig {
  PairRig()
      : net(4),
        disk_a(kDefaultBlockSize, 1 << 14),
        disk_b(kDefaultBlockSize, 1 << 14),
        a(&net, "A", &disk_a, 7),
        b(&net, "B", &disk_b, 7) {
    a.Start();
    b.Start();
    a.SetCompanion(b.port());
    b.SetCompanion(a.port());
    account = a.CreateAccountDirect();
    store = std::make_unique<StableStore>(
        std::make_unique<BlockClient>(&net, a.port(), account, a.payload_capacity()),
        std::make_unique<BlockClient>(&net, b.port(), account, b.payload_capacity()),
        11);
  }

  Network net;
  MemDisk disk_a;
  MemDisk disk_b;
  BlockServer a;
  BlockServer b;
  Capability account;
  std::unique_ptr<StableStore> store;
};

struct SoloRig {
  SoloRig() : net(5), disk(kDefaultBlockSize, 1 << 14), server(&net, "solo", &disk, 7) {
    server.Start();
    account = server.CreateAccountDirect();
    client = std::make_unique<BlockClient>(&net, server.port(), account,
                                           server.payload_capacity());
  }
  Network net;
  MemDisk disk;
  BlockServer server;
  Capability account;
  std::unique_ptr<BlockClient> client;
};

const std::vector<uint8_t>& Payload() {
  static const std::vector<uint8_t> payload(1024, 0x5a);
  return payload;
}

void BM_PlainWrite(benchmark::State& state) {
  SoloRig rig;
  auto bno = rig.client->AllocWrite(Payload());
  uint64_t disk_writes_before = rig.disk.writes();
  int64_t n = 0;
  for (auto _ : state) {
    if (!rig.client->Write(*bno, Payload()).ok()) {
      state.SkipWithError("write failed");
      return;
    }
    ++n;
  }
  state.SetItemsProcessed(n);
  state.counters["disk_writes_per_op"] = benchmark::Counter(
      static_cast<double>(rig.disk.writes() - disk_writes_before) / std::max<int64_t>(1, n));
}
BENCHMARK(BM_PlainWrite)->Unit(benchmark::kMicrosecond);

void BM_StablePairWrite(benchmark::State& state) {
  PairRig rig;
  auto bno = rig.store->AllocWrite(Payload());
  uint64_t disk_writes_before = rig.disk_a.writes() + rig.disk_b.writes();
  int64_t n = 0;
  for (auto _ : state) {
    if (!rig.store->Write(*bno, Payload()).ok()) {
      state.SkipWithError("write failed");
      return;
    }
    ++n;
  }
  state.SetItemsProcessed(n);
  state.counters["disk_writes_per_op"] = benchmark::Counter(
      static_cast<double>(rig.disk_a.writes() + rig.disk_b.writes() - disk_writes_before) /
      std::max<int64_t>(1, n));
}
BENCHMARK(BM_StablePairWrite)->Unit(benchmark::kMicrosecond);

void BM_PlainRead(benchmark::State& state) {
  SoloRig rig;
  auto bno = rig.client->AllocWrite(Payload());
  int64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.client->Read(*bno));
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_PlainRead)->Unit(benchmark::kMicrosecond);

void BM_StablePairRead(benchmark::State& state) {
  PairRig rig;
  auto bno = rig.store->AllocWrite(Payload());
  uint64_t b_reads_before = rig.disk_b.reads();
  int64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.store->Read(*bno));
    ++n;
  }
  state.SetItemsProcessed(n);
  // "For reads, the block server need not consult its companion."
  state.counters["companion_disk_reads"] =
      benchmark::Counter(static_cast<double>(rig.disk_b.reads() - b_reads_before));
}
BENCHMARK(BM_StablePairRead)->Unit(benchmark::kMicrosecond);

void BM_FailoverRead(benchmark::State& state) {
  PairRig rig;
  auto bno = rig.store->AllocWrite(Payload());
  rig.a.Crash();  // reads must fail over to the survivor
  int64_t n = 0;
  for (auto _ : state) {
    auto data = rig.store->Read(*bno);
    if (!data.ok()) {
      state.SkipWithError("failover read failed");
      return;
    }
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_FailoverRead)->Unit(benchmark::kMicrosecond);

void BM_CorruptRepairRead(benchmark::State& state) {
  PairRig rig;
  auto bno = rig.store->AllocWrite(Payload());
  if (!bno.ok()) {
    state.SkipWithError("alloc failed");
    return;
  }
  int64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    rig.disk_a.CorruptBlock(*bno);  // re-damage the repaired block each round
    state.ResumeTiming();
    auto data = rig.store->Read(*bno);  // detect + fetch from companion + repair
    if (!data.ok() || *data != Payload()) {
      state.SkipWithError("repair read failed");
      return;
    }
    ++n;
  }
  state.SetItemsProcessed(n);
}
BENCHMARK(BM_CorruptRepairRead)->Unit(benchmark::kMicrosecond);

void BM_AllocWrite(benchmark::State& state) {
  PairRig rig;
  uint64_t collisions_before = rig.a.collisions_detected() + rig.b.collisions_detected();
  int64_t n = 0;
  for (auto _ : state) {
    auto bno = rig.store->AllocWrite(Payload());
    if (!bno.ok()) {
      state.SkipWithError("alloc failed");
      return;
    }
    benchmark::DoNotOptimize(*bno);
    state.PauseTiming();
    (void)rig.store->Free(*bno);  // recycle so calibration cannot exhaust the disk
    state.ResumeTiming();
    ++n;
  }
  state.SetItemsProcessed(n);
  state.counters["collisions"] = benchmark::Counter(static_cast<double>(
      rig.a.collisions_detected() + rig.b.collisions_detected() - collisions_before));
}
BENCHMARK(BM_AllocWrite)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
