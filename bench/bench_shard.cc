// Sharded commit throughput (docs/SHARDING.md §6). Three claims:
//
//   * BM_ShardedCommitUniform/N — a fixed offered load (8 writers) spread uniformly over
//     N shards. At N=1 all of it lands on one file and the §5.2 validation turns most of
//     it into redo; every added shard dissolves a slice of that contention, so aggregate
//     commits/s scales near-linearly. Acceptance: >= 3x at 4 shards vs 1.
//   * BM_ShardedCommitHotShard/N — 2 writers per shard plus 4 extra hammering shard 0:
//     the hot shard conflict-collapses, and the per-shard rate counters show the others
//     keep their uniform-row throughput (acceptance: >= 80%).
//   * BM_CrossShardCommit — the two-phase cross-shard commit's latency premium over a
//     plain single-shard commit of the same write set.
//
// Per-shard rates are exported as shard<k>_commits_per_sec next to the aggregate
// commits_per_sec, so the acceptance ratios are computable from the benchmark JSON alone.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/client/file_client.h"
#include "src/shard/coordinator.h"
#include "src/shard/decision_log.h"
#include "src/shard/router.h"

namespace afs {
namespace {

constexpr int kTotalWorkers = 8;     // uniform row: fixed offered load spread over N shards
constexpr int kHotExtraWorkers = 4;  // hot row: extra writers hammering shard 0
constexpr auto kWindow = std::chrono::milliseconds(150);  // per-iteration measuring window

// N single-server shards on one simulated network, with the router/coordinator wiring of
// examples/afs_server and one contended counter file per shard. The network carries a
// LAN-like per-message latency so transactions are latency-bound, as in the paper's
// deployment — without it every RPC is a function call and the benchmark would measure
// the host's core count instead of the commit pipeline.
struct ShardRig {
  explicit ShardRig(uint32_t num_shards) : net(1) {
    net.set_latency(std::chrono::microseconds(80), std::chrono::microseconds(120));
    for (uint32_t k = 0; k < num_shards; ++k) {
      stores.push_back(std::make_unique<InMemoryBlockStore>(4068, 1 << 20));
      FileServerOptions options;
      options.shard_id = k;
      options.num_shards = num_shards;
      servers.push_back(std::make_unique<FileServer>(
          &net, "bench-shard" + std::to_string(k), stores.back().get(), options));
      servers.back()->Start();
      if (!servers.back()->AttachStore().ok()) {
        std::abort();
      }
    }
    ShardMap map;
    map.epoch = 1;
    for (uint32_t k = 0; k < num_shards; ++k) {
      ShardEntry entry;
      entry.shard_id = k;
      entry.name = "shard" + std::to_string(k);
      entry.file_servers = {servers[k]->port()};
      map.shards.push_back(std::move(entry));
    }
    auto made = ShardRouter::Make(std::move(map), &net);
    if (!made.ok()) {
      std::abort();
    }
    router = std::move(*made);
    log = std::make_unique<MemoryDecisionLog>();
    coord = std::make_unique<ShardCoordinator>(/*self_shard=*/0, router.get(), log.get());
    for (auto& fs : servers) {
      coord->Serve(fs.get());
    }
    for (uint32_t k = 0; k < num_shards; ++k) {
      auto file = router->CreateFileOn(k);
      FileClient client(&net, {servers[k]->port()});
      auto v = client.CreateVersion(*file);
      (void)client.WriteString(*v, PagePath::Root(), "0");
      (void)client.Commit(*v);
      counters.push_back(*file);
    }
  }

  Network net;
  std::vector<std::unique_ptr<InMemoryBlockStore>> stores;
  std::vector<std::unique_ptr<FileServer>> servers;
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<MemoryDecisionLog> log;
  std::unique_ptr<ShardCoordinator> coord;
  std::vector<Capability> counters;
};

// One read-increment-write transaction: the contended workload whose throughput is bounded
// by the file's serial commit chain (blind writes would merge and hide the contention).
bool IncrementOnce(FileClient& client, const Capability& file) {
  auto v = client.CreateVersion(file);
  if (!v.ok()) {
    return false;
  }
  auto text = client.ReadString(*v, PagePath::Root());
  if (!text.ok() ||
      !client.WriteString(*v, PagePath::Root(), std::to_string(std::stoi(*text) + 1))
           .ok()) {
    (void)client.Abort(*v);
    return false;
  }
  return client.Commit(*v).ok();
}

// A worker commits increments against its shard's counter for a fixed wall-clock window
// (time-boxed, so every shard's rate covers the same interval and rows are comparable).
// On conflict it backs off like the §6 redo loop; the backoff grows with consecutive
// failures so a contention-collapsed file parks its writers instead of letting their
// retries consume the machine — that parking is what keeps a hot shard from dragging down
// its neighbours.
void Worker(ShardRig* rig, uint32_t shard, uint64_t seed,
            std::chrono::steady_clock::time_point deadline,
            std::atomic<uint64_t>* shard_commits, std::atomic<int>* barrier) {
  FileClient client(&rig->net, {rig->servers[shard]->port()});
  const Capability file = rig->counters[shard];
  barrier->fetch_sub(1);
  while (barrier->load() > 0) {
  }
  int streak = 0;  // consecutive conflicts
  while (std::chrono::steady_clock::now() < deadline) {
    if (IncrementOnce(client, file)) {
      shard_commits[shard].fetch_add(1, std::memory_order_relaxed);
      streak = 0;
      continue;
    }
    ++streak;
    const int cap = streak < 6 ? (1 << streak) : 64;
    std::this_thread::sleep_for(
        std::chrono::microseconds(100 * (1 + (seed * 131 + streak * 31) % cap)));
  }
}

// `hot` == false: the uniform row — kTotalWorkers spread round-robin over the shards, so
// the offered load is constant and the 1-shard row concentrates all of it on one file
// (the contention the sharding exists to dissolve). `hot` == true: 2 workers per shard
// plus kHotExtraWorkers all hammering shard 0.
void RunShardedCommit(benchmark::State& state, bool hot) {
  const uint32_t num_shards = static_cast<uint32_t>(state.range(0));
  ShardRig rig(num_shards);
  std::vector<std::atomic<uint64_t>> shard_commits(num_shards);
  for (auto& c : shard_commits) {
    c.store(0);
  }

  for (auto _ : state) {
    std::vector<std::pair<uint32_t, uint64_t>> plan;  // (shard, seed)
    if (hot) {
      for (uint32_t k = 0; k < num_shards; ++k) {
        for (int w = 0; w < 2; ++w) {
          plan.emplace_back(k, state.iterations() * 977 + k * 131 + w);
        }
      }
      for (int w = 0; w < kHotExtraWorkers; ++w) {
        plan.emplace_back(0u, state.iterations() * 977 + 9001 + w);
      }
    } else {
      for (int w = 0; w < kTotalWorkers; ++w) {
        plan.emplace_back(static_cast<uint32_t>(w) % num_shards,
                          state.iterations() * 977 + w);
      }
    }
    std::atomic<int> barrier{static_cast<int>(plan.size())};
    const auto deadline = std::chrono::steady_clock::now() + kWindow;
    std::vector<std::thread> workers;
    workers.reserve(plan.size());
    for (const auto& [shard, seed] : plan) {
      workers.emplace_back(Worker, &rig, shard, seed, deadline, shard_commits.data(),
                           &barrier);
    }
    for (auto& w : workers) {
      w.join();
    }
  }

  uint64_t total = 0;
  for (uint32_t k = 0; k < num_shards; ++k) {
    uint64_t n = shard_commits[k].load();
    total += n;
    state.counters["shard" + std::to_string(k) + "_commits_per_sec"] =
        benchmark::Counter(static_cast<double>(n), benchmark::Counter::kIsRate);
  }
  state.counters["commits_per_sec"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<int64_t>(total));
}

void BM_ShardedCommitUniform(benchmark::State& state) {
  RunShardedCommit(state, /*hot=*/false);
}
BENCHMARK(BM_ShardedCommitUniform)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ShardedCommitHotShard(benchmark::State& state) {
  RunShardedCommit(state, /*hot=*/true);
}
BENCHMARK(BM_ShardedCommitHotShard)->Arg(2)->Arg(4)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Latency of one 2-of-2-shard transaction through the coordinator (prepare on both, log,
// decide on both) against the same write pair committed shard-locally, one by one.
void BM_CrossShardCommit(benchmark::State& state) {
  ShardRig rig(2);
  auto a = rig.router->CreateFileOn(0);
  auto b = rig.router->CreateFileOn(1);
  uint64_t committed = 0;
  for (auto _ : state) {
    CrossTransaction xt(rig.router.get());
    auto va = xt.CreateVersion(*a);
    auto vb = xt.CreateVersion(*b);
    auto ca = xt.Client(*a);
    auto cb = xt.Client(*b);
    (void)(*ca)->WriteString(*va, PagePath::Root(), "x");
    (void)(*cb)->WriteString(*vb, PagePath::Root(), "x");
    if (xt.Commit().ok()) {
      ++committed;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
}
BENCHMARK(BM_CrossShardCommit)->Unit(benchmark::kMicrosecond);

void BM_SingleShardPairCommit(benchmark::State& state) {
  ShardRig rig(2);
  auto a = rig.router->CreateFileOn(0);
  auto b = rig.router->CreateFileOn(1);
  auto ca = rig.router->ClientForFile(*a);
  auto cb = rig.router->ClientForFile(*b);
  uint64_t committed = 0;
  for (auto _ : state) {
    auto va = (*ca)->CreateVersion(*a);
    auto vb = (*cb)->CreateVersion(*b);
    (void)(*ca)->WriteString(*va, PagePath::Root(), "x");
    (void)(*cb)->WriteString(*vb, PagePath::Root(), "x");
    if ((*ca)->Commit(*va).ok() && (*cb)->Commit(*vb).ok()) {
      ++committed;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(committed));
}
BENCHMARK(BM_SingleShardPairCommit)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
