// Vectored block I/O benchmarks (docs/PERF.md): how much do batched multi-block RPCs,
// pipelined stable-pair replication and sharded block-server locking buy over the
// one-block-per-transaction baseline?
//
// Every benchmark takes a trailing {batch} argument: 1 = vectored paths, 0 = the same
// binary with batching globally disabled (every vectored entry point degrades to a
// one-block-per-RPC loop). `--no_batch` forces 0 for every variant, so two whole-process
// runs can be compared as well. Expected shape:
//   * tree scans   >= 4x: k pages of depth d cost d vectored RPCs, not k*d single ones
//   * contended multi-client commit >= 2x: the §5.2 merge prefetches both page trees
//     level-by-level, and page-chain writes become AllocMulti + one WriteBatch
//   * sharded locking: concurrent writers on a striped in-process store outrun a single
//     mutex (the same striping guards BlockServer's handler state)
// Args are listed per benchmark below.
//
// All rigs run with a deterministic 100us simulated wire latency per RPC (Network::
// set_latency, a LAN-scale round trip) — an in-process call is otherwise free, which would
// hide exactly the cost vectored I/O removes. The rpcs_per_page / rpcs_per_txn counters
// report the transport-independent truth alongside the timings.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/core/commit_tuning.h"
#include "src/core/file_server.h"
#include "src/core/page_store.h"
#include "src/disk/mem_disk.h"
#include "src/net/tcp_server.h"
#include "src/net/tcp_transport.h"
#include "src/rpc/network.h"

namespace afs {
namespace {

using net::ServiceKind;
using net::TcpServer;
using net::TcpTransport;

// --no_batch: force the baseline even for batch=1 variants (whole-process comparison).
bool g_allow_batch = true;

// --transport=tcp: every RpcRig-based benchmark routes its client traffic through a
// loopback TcpServer/TcpTransport pair instead of the simulated network. The simulated
// wire latency is then OFF — the kernel provides the real thing — so the same run over
// both flags compares simulated-latency numbers against a kernel-networking baseline
// (BENCH_net.json; docs/NET.md). Default inproc keeps the historical numbers comparable.
bool g_tcp_transport = false;

void ApplyBatchMode(int64_t batch_arg) {
  SetBatchingEnabled(batch_arg != 0 && g_allow_batch);
}

constexpr std::chrono::microseconds kWireLatency{100};

// RPC-backed block storage: BlockServer on a MemDisk, talked to through a BlockClient —
// the real transport the file service pays for, minus physical disk latency.
struct RpcRig {
  explicit RpcRig(uint32_t num_shards = 16, int num_workers = 4,
                  std::chrono::microseconds latency = kWireLatency)
      : net(31),
        disk(kDefaultBlockSize, 1 << 16),
        server(&net, "bs", &disk, 7, num_shards, num_workers) {
    server.Start();
    if (g_tcp_transport) {
      tcp_server = std::make_unique<TcpServer>(&net);
      tcp_server->Expose(&server, "bs", ServiceKind::kBlockServer);
      (void)tcp_server->Start();
      tcp = std::make_unique<TcpTransport>("127.0.0.1", tcp_server->port());
      transport = tcp.get();
    } else {
      net.set_latency(latency, latency);
      transport = &net;
    }
    account = server.CreateAccountDirect();
    client = std::make_unique<BlockClient>(transport, server.port(), account,
                                           server.payload_capacity());
    pages = std::make_unique<PageStore>(client.get());
  }

  Network net;
  MemDisk disk;
  BlockServer server;
  std::unique_ptr<TcpServer> tcp_server;
  std::unique_ptr<TcpTransport> tcp;
  Transport* transport = nullptr;
  Capability account;
  std::unique_ptr<BlockClient> client;
  std::unique_ptr<PageStore> pages;
};

// ---------------------------------------------------------------------------
// Tree scan: read k pages through the vectored page reader.
// Args: {npages, chain_depth, batch}
// ---------------------------------------------------------------------------

void BM_TreeScan(benchmark::State& state) {
  const int npages = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  ApplyBatchMode(state.range(2));
  RpcRig rig;
  // `depth` chunks per page forces a chain of that depth (chunk_cap bytes per block).
  const size_t page_bytes =
      depth == 1 ? 64 : (static_cast<size_t>(depth) * (rig.client->payload_capacity() - 6)) - 32;
  std::vector<BlockNo> heads;
  for (int i = 0; i < npages; ++i) {
    Page page;
    page.kind = PageKind::kPlain;
    page.data.assign(page_bytes, static_cast<uint8_t>(i));
    auto head = rig.pages->WritePage(page);
    if (!head.ok()) {
      state.SkipWithError("setup write failed");
      return;
    }
    heads.push_back(*head);
  }

  uint64_t calls_before = rig.transport->total_calls();
  int64_t scanned = 0;
  for (auto _ : state) {
    auto result = rig.pages->ReadPages(heads);
    if (!result.ok()) {
      state.SkipWithError("scan failed");
      return;
    }
    benchmark::DoNotOptimize(result);
    scanned += npages;
  }
  state.SetItemsProcessed(scanned);
  state.counters["rpcs_per_page"] = benchmark::Counter(
      static_cast<double>(rig.transport->total_calls() - calls_before) / scanned);
  SetBatchingEnabled(true);
}

BENCHMARK(BM_TreeScan)
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->Args({16, 5, 0})
    ->Args({16, 5, 1})
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Multi-client commit: T client threads updating F files with large pages. With files=1
// every thread contends on the same file, so almost every commit runs the serialisability
// test + merge against a concurrent winner; files>1 spreads threads round-robin across
// files, exercising the cross-file parallel-validation path inside one commit group.
// The commit-path kill switches (--no_group_commit, --no_version_index,
// --serial_validate) attribute the speedup per mechanism across whole-process runs.
// Args: {threads, files, batch}
// ---------------------------------------------------------------------------

void BM_MultiClientCommit(benchmark::State& state) {
  const int nthreads = static_cast<int>(state.range(0));
  const int nfiles = static_cast<int>(state.range(1));
  ApplyBatchMode(state.range(2));
  constexpr int kPagesPerTxn = 8;
  // Single-block pages: this benchmark measures the COMMIT protocol under contention
  // (validation, merge, flip), so the transaction's data payload is deliberately small —
  // BM_TreeScan and BM_StablePairWriteBatch already measure bulk multi-block bandwidth.
  constexpr size_t kPageBytes = 2 * 1024;
  constexpr int kTxnsPerThread = 2;

  RpcRig rig;
  // Default options: committed-page cache on. Version-side chains (the `b` trees the
  // merge prefetches) are never cached, so batching still does real block I/O.
  FileServer fs(&rig.net, "fs", rig.client.get());
  fs.Start();
  if (!fs.AttachStore().ok()) {
    state.SkipWithError("attach failed");
    return;
  }
  std::vector<Capability> files;
  for (int f = 0; f < nfiles; ++f) {
    auto file = fs.CreateFile();
    if (!file.ok()) {
      state.SkipWithError("create failed");
      return;
    }
    auto v = fs.CreateVersion(*file, kNullPort, false);
    for (int i = 0; i < kPagesPerTxn; ++i) {
      (void)fs.InsertRef(*v, PagePath::Root(), i);
      (void)fs.WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                         std::vector<uint8_t>(kPageBytes, 1));
    }
    if (!v.ok() || !fs.Commit(*v).ok()) {
      state.SkipWithError("setup commit failed");
      return;
    }
    files.push_back(*file);
  }

  std::atomic<int64_t> committed{0};
  std::atomic<int64_t> conflicts{0};
  const uint64_t calls_before = rig.transport->total_calls();
  const uint64_t commit_rpcs_before = fs.commit_rpcs_total();
  for (auto _ : state) {
    std::vector<std::thread> workers;
    for (int t = 0; t < nthreads; ++t) {
      workers.emplace_back([&, t] {
        const Capability file = files[static_cast<size_t>(t) % files.size()];
        for (int txn = 0; txn < kTxnsPerThread; ++txn) {
          // Retry on conflict like a real optimistic client ("redo the update").
          for (int attempt = 0; attempt < 8; ++attempt) {
            auto v = fs.CreateVersion(file, kNullPort, false);
            if (!v.ok()) {
              continue;
            }
            bool wrote = true;
            for (int i = 0; i < kPagesPerTxn && wrote; ++i) {
              wrote = fs.WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                                   std::vector<uint8_t>(kPageBytes,
                                                        static_cast<uint8_t>(t + txn)))
                          .ok();
            }
            if (wrote && fs.Commit(*v).ok()) {
              committed.fetch_add(1);
              break;
            }
            (void)fs.Abort(*v);
            conflicts.fetch_add(1);
          }
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  state.SetItemsProcessed(committed.load());
  const double txns = static_cast<double>(committed.load() > 0 ? committed.load() : 1);
  // The gated number: transport calls issued inside Commit() (the commit.rpcs histogram's
  // sum) per committed transaction. Under group commit a follower's work rides on the
  // leader's thread, so the mean amortises across the whole group.
  state.counters["rpcs_per_txn"] = benchmark::Counter(
      static_cast<double>(fs.commit_rpcs_total() - commit_rpcs_before) / txns);
  // End-to-end context: every transport call in the measurement window (version create,
  // page writes, commit) per committed transaction.
  state.counters["rpcs_per_txn_total"] = benchmark::Counter(
      static_cast<double>(rig.transport->total_calls() - calls_before) / txns);
  state.counters["conflicts"] = benchmark::Counter(static_cast<double>(conflicts.load()));
  state.counters["serialise_tests"] =
      benchmark::Counter(static_cast<double>(fs.serialise_tests_run()));
  state.counters["sig_fast_path"] =
      benchmark::Counter(static_cast<double>(fs.commits_sig_fast_path()));
  SetBatchingEnabled(true);
}

BENCHMARK(BM_MultiClientCommit)
    ->Args({1, 1, 0})
    ->Args({1, 1, 1})
    ->Args({4, 1, 0})
    ->Args({4, 1, 1})
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({16, 1, 1})
    ->Args({32, 1, 1})
    ->Args({64, 1, 1})
    ->Args({8, 4, 1})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Traced contended commit: one commit that must run the full §5.2 machinery — the flip
// fails against a concurrent winner, so the serialisability walk and the merge both
// execute — driven through the RPC FileClient with span collection ON. After the timing
// loop the span ring is analysed: `phase_sum_ratio` is the fraction of the slowest
// server-side "commit" span accounted for by its instrumented direct phases
// (begin/flip/validate/merge/finish); the acceptance bar is >= 0.9 (phases within 10% of
// commit.latency_ns — see docs/OBSERVABILITY.md). Also declares the SLO targets the
// --afs_slo_json report is scored against.
// Args: {batch}
// ---------------------------------------------------------------------------

void BM_TracedCommit(benchmark::State& state) {
  ApplyBatchMode(state.range(0));
  const bool spans_were_on = obs::SpanEnabled();
  obs::SetSpanEnabled(true);
  // Declared SLOs for the classes this benchmark exercises. The bounds are deliberately
  // loose (sanitizer CI, shared runners): they catch order-of-magnitude regressions, not
  // jitter. kWireLatency=100us per RPC puts a contended commit in the low milliseconds.
  obs::SloTracker* slo = obs::SloTracker::Global();
  slo->DeclareTarget("commit", {/*p50=*/250'000'000, /*p99=*/2'000'000'000,
                                /*p999=*/4'000'000'000});
  slo->DeclareTarget("client.commit", {/*p50=*/500'000'000, /*p99=*/4'000'000'000,
                                       /*p999=*/8'000'000'000});

  RpcRig rig;
  FileServer fs(&rig.net, "fs", rig.client.get());
  fs.Start();
  if (!fs.AttachStore().ok()) {
    state.SkipWithError("attach failed");
    return;
  }
  FileClient client(rig.transport, {fs.port()});
  constexpr int kPages = 4;
  constexpr size_t kPageBytes = 8 * 1024;
  auto file = client.CreateFile();
  if (!file.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  {
    auto v = client.CreateVersion(*file);
    for (int i = 0; i < kPages; ++i) {
      (void)client.InsertRef(*v, PagePath::Root(), i);
      (void)client.WritePage(*v, PagePath({static_cast<uint32_t>(i)}),
                             std::vector<uint8_t>(kPageBytes, 1));
    }
    if (!v.ok() || !client.Commit(*v).ok()) {
      state.SkipWithError("setup commit failed");
      return;
    }
  }

  int64_t committed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Both versions branch from the same committed base; the winner commits first so the
    // loser's flip fails and it must validate + merge. They touch disjoint pages, so the
    // serialisability test passes and the contended commit succeeds.
    auto loser = client.CreateVersion(*file);
    auto winner = client.CreateVersion(*file);
    bool setup_ok = loser.ok() && winner.ok() &&
                    client.WritePage(*winner, PagePath({0}),
                                     std::vector<uint8_t>(kPageBytes, 2)).ok() &&
                    client.Commit(*winner).ok() &&
                    client.WritePage(*loser, PagePath({1}),
                                     std::vector<uint8_t>(kPageBytes, 3)).ok();
    state.ResumeTiming();
    if (!setup_ok || !client.Commit(*loser).ok()) {
      state.SkipWithError("contended commit failed");
      return;
    }
    ++committed;
  }
  state.SetItemsProcessed(committed);

  obs::PhaseBreakdown breakdown = obs::AnalyzePhases(obs::SnapshotSpans(), "commit");
  if (breakdown.found && breakdown.total_ns > 0) {
    state.counters["phase_sum_ratio"] = benchmark::Counter(
        static_cast<double>(breakdown.attributed_ns) / static_cast<double>(breakdown.total_ns));
    state.counters["commit_phases"] =
        benchmark::Counter(static_cast<double>(breakdown.phases.size()));
  }
  obs::SetSpanEnabled(spans_were_on);
  SetBatchingEnabled(true);
}

BENCHMARK(BM_TracedCommit)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Batched stable-pair writes: the pipelined companion replication path.
// Args: {batch_blocks, batch}
// ---------------------------------------------------------------------------

void BM_StablePairWriteBatch(benchmark::State& state) {
  const int nblocks = static_cast<int>(state.range(0));
  ApplyBatchMode(state.range(1));
  Network net(32);
  net.set_latency(kWireLatency, kWireLatency);
  MemDisk disk_a(kDefaultBlockSize, 1 << 15);
  MemDisk disk_b(kDefaultBlockSize, 1 << 15);
  BlockServer a(&net, "A", &disk_a, 7);
  BlockServer b(&net, "B", &disk_b, 7);
  a.Start();
  b.Start();
  a.SetCompanion(b.port());
  b.SetCompanion(a.port());
  Capability account = a.CreateAccountDirect();
  StableStore store(
      std::make_unique<BlockClient>(&net, a.port(), account, a.payload_capacity()),
      std::make_unique<BlockClient>(&net, b.port(), account, b.payload_capacity()), 11);

  auto fresh = store.AllocMulti(static_cast<uint32_t>(nblocks));
  if (!fresh.ok()) {
    state.SkipWithError("alloc failed");
    return;
  }
  std::vector<BlockWrite> writes;
  for (size_t i = 0; i < fresh->size(); ++i) {
    writes.push_back({(*fresh)[i], std::vector<uint8_t>(4000, static_cast<uint8_t>(i))});
  }

  int64_t written = 0;
  for (auto _ : state) {
    if (!store.WriteBatch(writes).ok()) {
      state.SkipWithError("batch write failed");
      return;
    }
    written += nblocks;
  }
  state.SetItemsProcessed(written);
  SetBatchingEnabled(true);
}

BENCHMARK(BM_StablePairWriteBatch)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Lock striping: T threads of single-block writes against one sharded block store, driven
// in-process (no RPC queue in the way — the same striping guards BlockServer's handlers,
// but the service submit queue would drown the mutex effect at RPC scale).
// Args: {num_shards, writer_threads}  (batch-independent)
// ---------------------------------------------------------------------------

void BM_ShardedWrites(benchmark::State& state) {
  const uint32_t num_shards = static_cast<uint32_t>(state.range(0));
  const int nthreads = static_cast<int>(state.range(1));
  constexpr int kWritesPerThread = 4096;

  InMemoryBlockStore store(/*payload_capacity=*/4068, /*num_blocks=*/1 << 20, num_shards);
  std::vector<std::vector<BlockNo>> blocks(nthreads);
  for (int c = 0; c < nthreads; ++c) {
    for (int i = 0; i < kWritesPerThread; ++i) {
      auto bno = store.AllocWrite(std::vector<uint8_t>(64, 1));
      if (!bno.ok()) {
        state.SkipWithError("setup alloc failed");
        return;
      }
      blocks[c].push_back(*bno);
    }
  }

  int64_t writes_done = 0;
  for (auto _ : state) {
    std::vector<std::thread> writers;
    for (int c = 0; c < nthreads; ++c) {
      writers.emplace_back([&, c] {
        std::vector<uint8_t> payload(64, static_cast<uint8_t>(c));
        for (BlockNo bno : blocks[c]) {
          (void)store.Write(bno, payload);
        }
      });
    }
    for (auto& t : writers) {
      t.join();
    }
    writes_done += static_cast<int64_t>(nthreads) * kWritesPerThread;
  }
  state.SetItemsProcessed(writes_done);
}

BENCHMARK(BM_ShardedWrites)
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({16, 8})
    ->Args({64, 8})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace afs

int main(int argc, char** argv) {
  // Strip our process-wide flags before the shared harness (and google/benchmark) see
  // argv. The three commit-path switches mirror --no_batch: each disables exactly one
  // mechanism so whole-process A/B runs attribute the speedup per mechanism.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no_batch") == 0) {
      afs::g_allow_batch = false;
      afs::SetBatchingEnabled(false);
    } else if (std::strcmp(argv[i], "--no_group_commit") == 0) {
      afs::SetGroupCommitEnabled(false);
    } else if (std::strcmp(argv[i], "--no_version_index") == 0) {
      afs::SetVersionIndexEnabled(false);
    } else if (std::strcmp(argv[i], "--serial_validate") == 0) {
      afs::SetParallelValidateEnabled(false);
    } else if (std::strcmp(argv[i], "--transport=tcp") == 0) {
      afs::g_tcp_transport = true;
    } else if (std::strcmp(argv[i], "--transport=inproc") == 0) {
      afs::g_tcp_transport = false;
    } else {
      args.push_back(argv[i]);
    }
  }
  return afs::bench::BenchMain(static_cast<int>(args.size()), args.data());
}
