// Claim C5 (paper §3.1, §6): "After a crash, there is no necessity for recovery: no
// rollback is required, no locks have to be cleared, no intentions lists have to be
// carried out" — versus the locking baseline, whose restart must roll back every
// in-flight in-place write from its undo log.
//
// A server crashes with an `inflight_pages`-page update in progress; we measure
// restart-to-service time and count the recovery writes. Expected shape: AFS flat (and
// near zero recovery writes); locking baseline linear in the in-flight update size.
// Args: {inflight_pages}.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/baseline/locking_server.h"

namespace afs {
namespace {

void BM_AfsRestartAfterCrash(benchmark::State& state) {
  const int inflight = static_cast<int>(state.range(0));
  int64_t n = 0;
  uint64_t recovery_writes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    bench::Rig rig;
    Capability file = rig.MakeFile(inflight);
    auto doomed = rig.fs->CreateVersion(file, kNullPort, false);
    for (int i = 0; i < inflight; ++i) {
      (void)rig.fs->WritePage(*doomed, PagePath({static_cast<uint32_t>(i)}),
                              std::vector<uint8_t>(256, 0xdd));
    }
    rig.fs->Crash();
    uint64_t writes_before = rig.store.total_writes();
    state.ResumeTiming();

    rig.fs->Restart();  // "the file system is always in a consistent state": no work

    state.PauseTiming();
    recovery_writes += rig.store.total_writes() - writes_before;
    // Prove service is really up: a read of the committed state succeeds immediately.
    auto current = rig.fs->GetCurrentVersion(file);
    if (!current.ok()) {
      state.SkipWithError("post-restart read failed");
      return;
    }
    ++n;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(n);
  state.counters["recovery_writes_per_restart"] =
      benchmark::Counter(static_cast<double>(recovery_writes) / std::max<int64_t>(1, n));
}
BENCHMARK(BM_AfsRestartAfterCrash)->Arg(4)->Arg(32)->Arg(256)->Unit(benchmark::kMillisecond)
    ->Iterations(5);

void BM_LockingRestartAfterCrash(benchmark::State& state) {
  const int inflight = static_cast<int>(state.range(0));
  int64_t n = 0;
  uint64_t rollbacks = 0;
  uint64_t recovery_writes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Network net(9);
    InMemoryBlockStore store(4068, 1 << 20);
    LockingFileServer server(&net, "locking", &store);
    server.Start();
    auto file = server.CreateFile(inflight);
    {
      auto tx = server.Begin(net.AllocatePort());
      (void)server.OpenFile(*tx, *file, true);
      for (int i = 0; i < inflight; ++i) {
        (void)server.Write(*tx, *file, i, std::vector<uint8_t>(256, 0xcc));
      }
      (void)server.Commit(*tx);
    }
    auto tx = server.Begin(net.AllocatePort());
    (void)server.OpenFile(*tx, *file, true);
    for (int i = 0; i < inflight; ++i) {
      (void)server.Write(*tx, *file, i, std::vector<uint8_t>(256, 0xee));  // in place
    }
    server.Crash();
    uint64_t writes_before = store.total_writes();
    state.ResumeTiming();

    server.Restart();  // must roll back from the undo log before serving

    state.PauseTiming();
    rollbacks += server.last_recovery_rollbacks();
    recovery_writes += store.total_writes() - writes_before;
    ++n;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(n);
  state.counters["rollbacks_per_restart"] =
      benchmark::Counter(static_cast<double>(rollbacks) / std::max<int64_t>(1, n));
  state.counters["recovery_writes_per_restart"] =
      benchmark::Counter(static_cast<double>(recovery_writes) / std::max<int64_t>(1, n));
}
BENCHMARK(BM_LockingRestartAfterCrash)->Arg(4)->Arg(32)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
