// Claim C9 (paper abstract): "A garbage collector that runs independent of, and in
// parallel with, the operation of the system" — foreground commit latency should be
// essentially unchanged by a continuously running collector, and the collector must keep
// space bounded under update churn.
//
// Ablation A2 (paper §5.1): reshare-on-commit on/off — the space amplification of keeping
// copied-but-unmodified pages in committed trees.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/gc.h"

namespace afs {
namespace {

void RunCommitLoop(benchmark::State& state, bool gc_running) {
  bench::Rig rig;
  Capability file = rig.MakeFile(16);
  GarbageCollector gc({rig.fs.get()}, GcOptions{.keep_versions = 2});
  if (gc_running) {
    gc.Start(std::chrono::milliseconds(1));
  }
  int64_t n = 0;
  for (auto _ : state) {
    auto v = rig.fs->CreateVersion(file, kNullPort, false);
    if (!v.ok()) {
      state.SkipWithError("create version failed");
      return;
    }
    (void)rig.fs->WritePage(*v, PagePath({static_cast<uint32_t>(n % 16)}),
                            std::vector<uint8_t>(256, 1));
    if (!rig.fs->Commit(*v).ok()) {
      state.SkipWithError("commit failed");
      return;
    }
    ++n;
  }
  if (gc_running) {
    gc.Stop();
    state.counters["gc_cycles"] = benchmark::Counter(static_cast<double>(gc.stats().cycles));
    state.counters["blocks_swept"] =
        benchmark::Counter(static_cast<double>(gc.stats().blocks_swept));
  }
  state.counters["blocks_resident"] =
      benchmark::Counter(static_cast<double>(rig.store.allocated_blocks()));
  state.SetItemsProcessed(n);
}

// Foreground commit latency without / with a concurrent collector: should be ~equal.
void BM_CommitsGcOff(benchmark::State& state) { RunCommitLoop(state, false); }
void BM_CommitsGcOn(benchmark::State& state) { RunCommitLoop(state, true); }
BENCHMARK(BM_CommitsGcOff)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CommitsGcOn)->Unit(benchmark::kMicrosecond);

// Space under churn: GC keeps the footprint bounded regardless of update count.
void BM_SpaceBoundedUnderChurn(benchmark::State& state) {
  const int updates = static_cast<int>(state.range(0));
  int64_t n = 0;
  double resident = 0;
  for (auto _ : state) {
    bench::Rig rig;
    Capability file = rig.MakeFile(8);
    GarbageCollector gc({rig.fs.get()}, GcOptions{.keep_versions = 2});
    for (int i = 0; i < updates; ++i) {
      auto v = rig.fs->CreateVersion(file, kNullPort, false);
      (void)rig.fs->WritePage(*v, PagePath({static_cast<uint32_t>(i % 8)}),
                              std::vector<uint8_t>(256, 1));
      (void)rig.fs->Commit(*v);
      if (i % 16 == 15) {
        (void)gc.RunCycle();
      }
    }
    (void)gc.RunCycle();
    resident += static_cast<double>(rig.store.allocated_blocks());
    ++n;
  }
  state.SetItemsProcessed(n);
  state.counters["blocks_resident_after"] =
      benchmark::Counter(resident / std::max<int64_t>(1, n));
}
BENCHMARK(BM_SpaceBoundedUnderChurn)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

// Ablation A2: space cost of read-heavy committed versions with and without resharing.
void RunReshareSpace(benchmark::State& state, bool reshare) {
  FileServerOptions options;
  options.reshare_on_commit = reshare;
  int64_t n = 0;
  double resident = 0;
  for (auto _ : state) {
    bench::Rig rig(options);
    Capability file = rig.MakeFile(32, 1024);
    GarbageCollector gc({rig.fs.get()}, GcOptions{.keep_versions = 100});
    // Each update READS 31 pages and writes 1: the read copies are pure overhead unless
    // reshared.
    for (int round = 0; round < 8; ++round) {
      auto v = rig.fs->CreateVersion(file, kNullPort, false);
      for (int i = 0; i < 31; ++i) {
        (void)rig.fs->ReadPage(*v, PagePath({static_cast<uint32_t>(i)}), false);
      }
      (void)rig.fs->WritePage(*v, PagePath({31}), std::vector<uint8_t>(1024, 2));
      (void)rig.fs->Commit(*v);
    }
    (void)gc.RunCycle();  // reclaims the dropped copies (reshare makes them unreachable)
    resident += static_cast<double>(rig.store.allocated_blocks());
    ++n;
  }
  state.SetItemsProcessed(n);
  state.counters["blocks_resident"] = benchmark::Counter(resident / std::max<int64_t>(1, n));
}
void BM_ReshareOn(benchmark::State& state) { RunReshareSpace(state, true); }
void BM_ReshareOff(benchmark::State& state) { RunReshareSpace(state, false); }
BENCHMARK(BM_ReshareOn)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_ReshareOff)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace afs

AFS_BENCHMARK_MAIN();
