file(REMOVE_RECURSE
  "libafs_block.a"
)
