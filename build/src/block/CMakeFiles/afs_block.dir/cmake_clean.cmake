file(REMOVE_RECURSE
  "CMakeFiles/afs_block.dir/block_server.cc.o"
  "CMakeFiles/afs_block.dir/block_server.cc.o.d"
  "CMakeFiles/afs_block.dir/block_store.cc.o"
  "CMakeFiles/afs_block.dir/block_store.cc.o.d"
  "libafs_block.a"
  "libafs_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
