# Empty dependencies file for afs_block.
# This may be replaced when dependencies are built.
