file(REMOVE_RECURSE
  "libafs_namesvc.a"
)
