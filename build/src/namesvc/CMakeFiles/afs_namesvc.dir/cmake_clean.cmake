file(REMOVE_RECURSE
  "CMakeFiles/afs_namesvc.dir/directory_server.cc.o"
  "CMakeFiles/afs_namesvc.dir/directory_server.cc.o.d"
  "libafs_namesvc.a"
  "libafs_namesvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_namesvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
