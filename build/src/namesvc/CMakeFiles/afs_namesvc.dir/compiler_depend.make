# Empty compiler generated dependencies file for afs_namesvc.
# This may be replaced when dependencies are built.
