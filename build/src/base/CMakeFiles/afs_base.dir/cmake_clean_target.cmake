file(REMOVE_RECURSE
  "libafs_base.a"
)
