# Empty compiler generated dependencies file for afs_base.
# This may be replaced when dependencies are built.
