file(REMOVE_RECURSE
  "CMakeFiles/afs_base.dir/capability.cc.o"
  "CMakeFiles/afs_base.dir/capability.cc.o.d"
  "CMakeFiles/afs_base.dir/crc32.cc.o"
  "CMakeFiles/afs_base.dir/crc32.cc.o.d"
  "CMakeFiles/afs_base.dir/rng.cc.o"
  "CMakeFiles/afs_base.dir/rng.cc.o.d"
  "CMakeFiles/afs_base.dir/status.cc.o"
  "CMakeFiles/afs_base.dir/status.cc.o.d"
  "CMakeFiles/afs_base.dir/wire.cc.o"
  "CMakeFiles/afs_base.dir/wire.cc.o.d"
  "libafs_base.a"
  "libafs_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
