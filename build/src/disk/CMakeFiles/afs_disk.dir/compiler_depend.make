# Empty compiler generated dependencies file for afs_disk.
# This may be replaced when dependencies are built.
