file(REMOVE_RECURSE
  "CMakeFiles/afs_disk.dir/mem_disk.cc.o"
  "CMakeFiles/afs_disk.dir/mem_disk.cc.o.d"
  "CMakeFiles/afs_disk.dir/write_once_disk.cc.o"
  "CMakeFiles/afs_disk.dir/write_once_disk.cc.o.d"
  "libafs_disk.a"
  "libafs_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
