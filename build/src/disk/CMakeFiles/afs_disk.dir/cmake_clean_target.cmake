file(REMOVE_RECURSE
  "libafs_disk.a"
)
