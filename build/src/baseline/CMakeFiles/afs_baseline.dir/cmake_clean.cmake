file(REMOVE_RECURSE
  "CMakeFiles/afs_baseline.dir/locking_server.cc.o"
  "CMakeFiles/afs_baseline.dir/locking_server.cc.o.d"
  "CMakeFiles/afs_baseline.dir/timestamp_server.cc.o"
  "CMakeFiles/afs_baseline.dir/timestamp_server.cc.o.d"
  "libafs_baseline.a"
  "libafs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
