file(REMOVE_RECURSE
  "libafs_baseline.a"
)
