# Empty dependencies file for afs_baseline.
# This may be replaced when dependencies are built.
