file(REMOVE_RECURSE
  "libafs_flatfs.a"
)
