file(REMOVE_RECURSE
  "CMakeFiles/afs_flatfs.dir/flat_file.cc.o"
  "CMakeFiles/afs_flatfs.dir/flat_file.cc.o.d"
  "libafs_flatfs.a"
  "libafs_flatfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_flatfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
