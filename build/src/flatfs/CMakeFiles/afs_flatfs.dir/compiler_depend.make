# Empty compiler generated dependencies file for afs_flatfs.
# This may be replaced when dependencies are built.
