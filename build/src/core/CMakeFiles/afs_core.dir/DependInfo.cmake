
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache.cc" "src/core/CMakeFiles/afs_core.dir/cache.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/cache.cc.o.d"
  "/root/repo/src/core/file_server.cc" "src/core/CMakeFiles/afs_core.dir/file_server.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/file_server.cc.o.d"
  "/root/repo/src/core/file_server_commit.cc" "src/core/CMakeFiles/afs_core.dir/file_server_commit.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/file_server_commit.cc.o.d"
  "/root/repo/src/core/file_server_ops.cc" "src/core/CMakeFiles/afs_core.dir/file_server_ops.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/file_server_ops.cc.o.d"
  "/root/repo/src/core/file_server_rpc.cc" "src/core/CMakeFiles/afs_core.dir/file_server_rpc.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/file_server_rpc.cc.o.d"
  "/root/repo/src/core/flags.cc" "src/core/CMakeFiles/afs_core.dir/flags.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/flags.cc.o.d"
  "/root/repo/src/core/fsck.cc" "src/core/CMakeFiles/afs_core.dir/fsck.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/fsck.cc.o.d"
  "/root/repo/src/core/gc.cc" "src/core/CMakeFiles/afs_core.dir/gc.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/gc.cc.o.d"
  "/root/repo/src/core/page.cc" "src/core/CMakeFiles/afs_core.dir/page.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/page.cc.o.d"
  "/root/repo/src/core/page_store.cc" "src/core/CMakeFiles/afs_core.dir/page_store.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/page_store.cc.o.d"
  "/root/repo/src/core/path.cc" "src/core/CMakeFiles/afs_core.dir/path.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/path.cc.o.d"
  "/root/repo/src/core/serialise.cc" "src/core/CMakeFiles/afs_core.dir/serialise.cc.o" "gcc" "src/core/CMakeFiles/afs_core.dir/serialise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/afs_base.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/afs_block.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/afs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/afs_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
