file(REMOVE_RECURSE
  "libafs_core.a"
)
