# Empty compiler generated dependencies file for afs_core.
# This may be replaced when dependencies are built.
