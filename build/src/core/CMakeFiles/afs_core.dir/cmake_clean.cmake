file(REMOVE_RECURSE
  "CMakeFiles/afs_core.dir/cache.cc.o"
  "CMakeFiles/afs_core.dir/cache.cc.o.d"
  "CMakeFiles/afs_core.dir/file_server.cc.o"
  "CMakeFiles/afs_core.dir/file_server.cc.o.d"
  "CMakeFiles/afs_core.dir/file_server_commit.cc.o"
  "CMakeFiles/afs_core.dir/file_server_commit.cc.o.d"
  "CMakeFiles/afs_core.dir/file_server_ops.cc.o"
  "CMakeFiles/afs_core.dir/file_server_ops.cc.o.d"
  "CMakeFiles/afs_core.dir/file_server_rpc.cc.o"
  "CMakeFiles/afs_core.dir/file_server_rpc.cc.o.d"
  "CMakeFiles/afs_core.dir/flags.cc.o"
  "CMakeFiles/afs_core.dir/flags.cc.o.d"
  "CMakeFiles/afs_core.dir/fsck.cc.o"
  "CMakeFiles/afs_core.dir/fsck.cc.o.d"
  "CMakeFiles/afs_core.dir/gc.cc.o"
  "CMakeFiles/afs_core.dir/gc.cc.o.d"
  "CMakeFiles/afs_core.dir/page.cc.o"
  "CMakeFiles/afs_core.dir/page.cc.o.d"
  "CMakeFiles/afs_core.dir/page_store.cc.o"
  "CMakeFiles/afs_core.dir/page_store.cc.o.d"
  "CMakeFiles/afs_core.dir/path.cc.o"
  "CMakeFiles/afs_core.dir/path.cc.o.d"
  "CMakeFiles/afs_core.dir/serialise.cc.o"
  "CMakeFiles/afs_core.dir/serialise.cc.o.d"
  "libafs_core.a"
  "libafs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
