file(REMOVE_RECURSE
  "libafs_rpc.a"
)
