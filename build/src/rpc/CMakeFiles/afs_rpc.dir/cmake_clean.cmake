file(REMOVE_RECURSE
  "CMakeFiles/afs_rpc.dir/client.cc.o"
  "CMakeFiles/afs_rpc.dir/client.cc.o.d"
  "CMakeFiles/afs_rpc.dir/network.cc.o"
  "CMakeFiles/afs_rpc.dir/network.cc.o.d"
  "CMakeFiles/afs_rpc.dir/service.cc.o"
  "CMakeFiles/afs_rpc.dir/service.cc.o.d"
  "libafs_rpc.a"
  "libafs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
