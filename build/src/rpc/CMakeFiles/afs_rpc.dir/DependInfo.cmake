
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/client.cc" "src/rpc/CMakeFiles/afs_rpc.dir/client.cc.o" "gcc" "src/rpc/CMakeFiles/afs_rpc.dir/client.cc.o.d"
  "/root/repo/src/rpc/network.cc" "src/rpc/CMakeFiles/afs_rpc.dir/network.cc.o" "gcc" "src/rpc/CMakeFiles/afs_rpc.dir/network.cc.o.d"
  "/root/repo/src/rpc/service.cc" "src/rpc/CMakeFiles/afs_rpc.dir/service.cc.o" "gcc" "src/rpc/CMakeFiles/afs_rpc.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/afs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
