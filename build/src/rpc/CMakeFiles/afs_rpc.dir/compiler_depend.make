# Empty compiler generated dependencies file for afs_rpc.
# This may be replaced when dependencies are built.
