file(REMOVE_RECURSE
  "CMakeFiles/afs_client.dir/cached_client.cc.o"
  "CMakeFiles/afs_client.dir/cached_client.cc.o.d"
  "CMakeFiles/afs_client.dir/file_client.cc.o"
  "CMakeFiles/afs_client.dir/file_client.cc.o.d"
  "CMakeFiles/afs_client.dir/transaction.cc.o"
  "CMakeFiles/afs_client.dir/transaction.cc.o.d"
  "libafs_client.a"
  "libafs_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
