# Empty compiler generated dependencies file for afs_client.
# This may be replaced when dependencies are built.
