file(REMOVE_RECURSE
  "libafs_client.a"
)
