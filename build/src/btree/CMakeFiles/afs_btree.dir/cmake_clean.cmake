file(REMOVE_RECURSE
  "CMakeFiles/afs_btree.dir/btree.cc.o"
  "CMakeFiles/afs_btree.dir/btree.cc.o.d"
  "libafs_btree.a"
  "libafs_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
