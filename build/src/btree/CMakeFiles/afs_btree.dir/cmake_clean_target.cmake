file(REMOVE_RECURSE
  "libafs_btree.a"
)
