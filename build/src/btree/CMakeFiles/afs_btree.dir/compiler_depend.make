# Empty compiler generated dependencies file for afs_btree.
# This may be replaced when dependencies are built.
