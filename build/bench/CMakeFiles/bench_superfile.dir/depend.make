# Empty dependencies file for bench_superfile.
# This may be replaced when dependencies are built.
