file(REMOVE_RECURSE
  "CMakeFiles/bench_superfile.dir/bench_superfile.cc.o"
  "CMakeFiles/bench_superfile.dir/bench_superfile.cc.o.d"
  "bench_superfile"
  "bench_superfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_superfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
