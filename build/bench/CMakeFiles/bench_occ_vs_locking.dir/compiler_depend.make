# Empty compiler generated dependencies file for bench_occ_vs_locking.
# This may be replaced when dependencies are built.
