file(REMOVE_RECURSE
  "CMakeFiles/bench_occ_vs_locking.dir/bench_occ_vs_locking.cc.o"
  "CMakeFiles/bench_occ_vs_locking.dir/bench_occ_vs_locking.cc.o.d"
  "bench_occ_vs_locking"
  "bench_occ_vs_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_occ_vs_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
