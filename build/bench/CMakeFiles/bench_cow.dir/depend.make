# Empty dependencies file for bench_cow.
# This may be replaced when dependencies are built.
