file(REMOVE_RECURSE
  "CMakeFiles/bench_cow.dir/bench_cow.cc.o"
  "CMakeFiles/bench_cow.dir/bench_cow.cc.o.d"
  "bench_cow"
  "bench_cow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
