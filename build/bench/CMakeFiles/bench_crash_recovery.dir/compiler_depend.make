# Empty compiler generated dependencies file for bench_crash_recovery.
# This may be replaced when dependencies are built.
