file(REMOVE_RECURSE
  "CMakeFiles/bench_block_server.dir/bench_block_server.cc.o"
  "CMakeFiles/bench_block_server.dir/bench_block_server.cc.o.d"
  "bench_block_server"
  "bench_block_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
