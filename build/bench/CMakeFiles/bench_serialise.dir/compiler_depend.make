# Empty compiler generated dependencies file for bench_serialise.
# This may be replaced when dependencies are built.
