file(REMOVE_RECURSE
  "CMakeFiles/bench_serialise.dir/bench_serialise.cc.o"
  "CMakeFiles/bench_serialise.dir/bench_serialise.cc.o.d"
  "bench_serialise"
  "bench_serialise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serialise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
