file(REMOVE_RECURSE
  "CMakeFiles/afs_page_tests.dir/core/page_test.cc.o"
  "CMakeFiles/afs_page_tests.dir/core/page_test.cc.o.d"
  "afs_page_tests"
  "afs_page_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_page_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
