file(REMOVE_RECURSE
  "CMakeFiles/afs_multi_server_tests.dir/integration/multi_server_test.cc.o"
  "CMakeFiles/afs_multi_server_tests.dir/integration/multi_server_test.cc.o.d"
  "afs_multi_server_tests"
  "afs_multi_server_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_multi_server_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
