# Empty compiler generated dependencies file for afs_multi_server_tests.
# This may be replaced when dependencies are built.
