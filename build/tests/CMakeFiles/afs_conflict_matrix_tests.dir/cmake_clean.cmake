file(REMOVE_RECURSE
  "CMakeFiles/afs_conflict_matrix_tests.dir/core/conflict_matrix_test.cc.o"
  "CMakeFiles/afs_conflict_matrix_tests.dir/core/conflict_matrix_test.cc.o.d"
  "afs_conflict_matrix_tests"
  "afs_conflict_matrix_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_conflict_matrix_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
