# Empty dependencies file for afs_conflict_matrix_tests.
# This may be replaced when dependencies are built.
