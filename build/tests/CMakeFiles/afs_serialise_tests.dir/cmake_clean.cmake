file(REMOVE_RECURSE
  "CMakeFiles/afs_serialise_tests.dir/core/serialise_unit_test.cc.o"
  "CMakeFiles/afs_serialise_tests.dir/core/serialise_unit_test.cc.o.d"
  "afs_serialise_tests"
  "afs_serialise_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_serialise_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
