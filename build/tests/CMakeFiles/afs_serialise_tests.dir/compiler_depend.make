# Empty compiler generated dependencies file for afs_serialise_tests.
# This may be replaced when dependencies are built.
