# Empty compiler generated dependencies file for afs_robustness_tests.
# This may be replaced when dependencies are built.
