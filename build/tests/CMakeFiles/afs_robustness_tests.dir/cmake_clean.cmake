file(REMOVE_RECURSE
  "CMakeFiles/afs_robustness_tests.dir/rpc/robustness_test.cc.o"
  "CMakeFiles/afs_robustness_tests.dir/rpc/robustness_test.cc.o.d"
  "afs_robustness_tests"
  "afs_robustness_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_robustness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
