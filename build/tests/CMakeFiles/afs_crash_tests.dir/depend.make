# Empty dependencies file for afs_crash_tests.
# This may be replaced when dependencies are built.
