file(REMOVE_RECURSE
  "CMakeFiles/afs_crash_tests.dir/integration/crash_test.cc.o"
  "CMakeFiles/afs_crash_tests.dir/integration/crash_test.cc.o.d"
  "afs_crash_tests"
  "afs_crash_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_crash_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
