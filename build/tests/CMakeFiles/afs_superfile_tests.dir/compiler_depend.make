# Empty compiler generated dependencies file for afs_superfile_tests.
# This may be replaced when dependencies are built.
