file(REMOVE_RECURSE
  "CMakeFiles/afs_superfile_tests.dir/core/superfile_test.cc.o"
  "CMakeFiles/afs_superfile_tests.dir/core/superfile_test.cc.o.d"
  "afs_superfile_tests"
  "afs_superfile_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_superfile_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
