file(REMOVE_RECURSE
  "CMakeFiles/afs_version_chain_tests.dir/core/version_chain_test.cc.o"
  "CMakeFiles/afs_version_chain_tests.dir/core/version_chain_test.cc.o.d"
  "afs_version_chain_tests"
  "afs_version_chain_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_version_chain_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
