# Empty compiler generated dependencies file for afs_version_chain_tests.
# This may be replaced when dependencies are built.
