# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for afs_version_chain_tests.
