file(REMOVE_RECURSE
  "CMakeFiles/afs_cache_validation_tests.dir/core/cache_validation_test.cc.o"
  "CMakeFiles/afs_cache_validation_tests.dir/core/cache_validation_test.cc.o.d"
  "afs_cache_validation_tests"
  "afs_cache_validation_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_cache_validation_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
