# Empty compiler generated dependencies file for afs_cache_validation_tests.
# This may be replaced when dependencies are built.
