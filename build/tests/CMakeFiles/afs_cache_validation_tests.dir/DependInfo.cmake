
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cache_validation_test.cc" "tests/CMakeFiles/afs_cache_validation_tests.dir/core/cache_validation_test.cc.o" "gcc" "tests/CMakeFiles/afs_cache_validation_tests.dir/core/cache_validation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/btree/CMakeFiles/afs_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/flatfs/CMakeFiles/afs_flatfs.dir/DependInfo.cmake"
  "/root/repo/build/src/namesvc/CMakeFiles/afs_namesvc.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/afs_client.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/afs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/afs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/block/CMakeFiles/afs_block.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/afs_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/afs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/afs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
