file(REMOVE_RECURSE
  "CMakeFiles/afs_flags_tests.dir/core/flags_test.cc.o"
  "CMakeFiles/afs_flags_tests.dir/core/flags_test.cc.o.d"
  "afs_flags_tests"
  "afs_flags_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_flags_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
