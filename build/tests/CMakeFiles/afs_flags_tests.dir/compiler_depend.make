# Empty compiler generated dependencies file for afs_flags_tests.
# This may be replaced when dependencies are built.
