file(REMOVE_RECURSE
  "CMakeFiles/afs_directory_tests.dir/namesvc/directory_test.cc.o"
  "CMakeFiles/afs_directory_tests.dir/namesvc/directory_test.cc.o.d"
  "afs_directory_tests"
  "afs_directory_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_directory_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
