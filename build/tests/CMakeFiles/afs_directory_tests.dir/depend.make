# Empty dependencies file for afs_directory_tests.
# This may be replaced when dependencies are built.
