# Empty dependencies file for afs_split_page_tests.
# This may be replaced when dependencies are built.
