# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for afs_split_page_tests.
