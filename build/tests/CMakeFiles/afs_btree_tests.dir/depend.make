# Empty dependencies file for afs_btree_tests.
# This may be replaced when dependencies are built.
