file(REMOVE_RECURSE
  "CMakeFiles/afs_btree_tests.dir/btree/btree_test.cc.o"
  "CMakeFiles/afs_btree_tests.dir/btree/btree_test.cc.o.d"
  "afs_btree_tests"
  "afs_btree_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_btree_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
