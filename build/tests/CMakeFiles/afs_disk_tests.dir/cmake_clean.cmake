file(REMOVE_RECURSE
  "CMakeFiles/afs_disk_tests.dir/disk/disk_test.cc.o"
  "CMakeFiles/afs_disk_tests.dir/disk/disk_test.cc.o.d"
  "afs_disk_tests"
  "afs_disk_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_disk_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
