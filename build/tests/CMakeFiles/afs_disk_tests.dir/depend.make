# Empty dependencies file for afs_disk_tests.
# This may be replaced when dependencies are built.
