file(REMOVE_RECURSE
  "CMakeFiles/afs_fsck_tests.dir/core/fsck_test.cc.o"
  "CMakeFiles/afs_fsck_tests.dir/core/fsck_test.cc.o.d"
  "afs_fsck_tests"
  "afs_fsck_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_fsck_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
