# Empty compiler generated dependencies file for afs_fsck_tests.
# This may be replaced when dependencies are built.
