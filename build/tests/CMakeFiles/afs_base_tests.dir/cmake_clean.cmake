file(REMOVE_RECURSE
  "CMakeFiles/afs_base_tests.dir/base/base_test.cc.o"
  "CMakeFiles/afs_base_tests.dir/base/base_test.cc.o.d"
  "afs_base_tests"
  "afs_base_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_base_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
