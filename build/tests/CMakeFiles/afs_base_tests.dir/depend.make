# Empty dependencies file for afs_base_tests.
# This may be replaced when dependencies are built.
