# Empty compiler generated dependencies file for afs_page_store_tests.
# This may be replaced when dependencies are built.
