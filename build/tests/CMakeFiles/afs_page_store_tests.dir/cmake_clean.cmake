file(REMOVE_RECURSE
  "CMakeFiles/afs_page_store_tests.dir/core/page_store_test.cc.o"
  "CMakeFiles/afs_page_store_tests.dir/core/page_store_test.cc.o.d"
  "afs_page_store_tests"
  "afs_page_store_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_page_store_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
