file(REMOVE_RECURSE
  "CMakeFiles/afs_commit_tests.dir/core/commit_test.cc.o"
  "CMakeFiles/afs_commit_tests.dir/core/commit_test.cc.o.d"
  "afs_commit_tests"
  "afs_commit_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_commit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
