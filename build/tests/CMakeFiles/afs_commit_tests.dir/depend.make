# Empty dependencies file for afs_commit_tests.
# This may be replaced when dependencies are built.
