file(REMOVE_RECURSE
  "CMakeFiles/afs_client_tests.dir/client/client_test.cc.o"
  "CMakeFiles/afs_client_tests.dir/client/client_test.cc.o.d"
  "afs_client_tests"
  "afs_client_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_client_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
