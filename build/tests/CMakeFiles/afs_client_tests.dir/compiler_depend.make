# Empty compiler generated dependencies file for afs_client_tests.
# This may be replaced when dependencies are built.
