# Empty dependencies file for afs_rpc_tests.
# This may be replaced when dependencies are built.
