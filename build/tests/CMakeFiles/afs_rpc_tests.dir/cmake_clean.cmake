file(REMOVE_RECURSE
  "CMakeFiles/afs_rpc_tests.dir/rpc/rpc_test.cc.o"
  "CMakeFiles/afs_rpc_tests.dir/rpc/rpc_test.cc.o.d"
  "afs_rpc_tests"
  "afs_rpc_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_rpc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
