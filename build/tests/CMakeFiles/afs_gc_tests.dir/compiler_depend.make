# Empty compiler generated dependencies file for afs_gc_tests.
# This may be replaced when dependencies are built.
