file(REMOVE_RECURSE
  "CMakeFiles/afs_gc_tests.dir/core/gc_test.cc.o"
  "CMakeFiles/afs_gc_tests.dir/core/gc_test.cc.o.d"
  "afs_gc_tests"
  "afs_gc_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_gc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
