# Empty compiler generated dependencies file for afs_baseline_tests.
# This may be replaced when dependencies are built.
