file(REMOVE_RECURSE
  "CMakeFiles/afs_baseline_tests.dir/baseline/baseline_test.cc.o"
  "CMakeFiles/afs_baseline_tests.dir/baseline/baseline_test.cc.o.d"
  "afs_baseline_tests"
  "afs_baseline_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
