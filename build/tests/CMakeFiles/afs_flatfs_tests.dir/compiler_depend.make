# Empty compiler generated dependencies file for afs_flatfs_tests.
# This may be replaced when dependencies are built.
