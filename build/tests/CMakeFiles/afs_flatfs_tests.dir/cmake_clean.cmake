file(REMOVE_RECURSE
  "CMakeFiles/afs_flatfs_tests.dir/flatfs/flat_file_test.cc.o"
  "CMakeFiles/afs_flatfs_tests.dir/flatfs/flat_file_test.cc.o.d"
  "afs_flatfs_tests"
  "afs_flatfs_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_flatfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
