# Empty compiler generated dependencies file for afs_property_tests.
# This may be replaced when dependencies are built.
