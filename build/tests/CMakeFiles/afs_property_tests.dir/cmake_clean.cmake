file(REMOVE_RECURSE
  "CMakeFiles/afs_property_tests.dir/integration/property_test.cc.o"
  "CMakeFiles/afs_property_tests.dir/integration/property_test.cc.o.d"
  "afs_property_tests"
  "afs_property_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
