file(REMOVE_RECURSE
  "CMakeFiles/afs_file_server_tests.dir/core/file_server_test.cc.o"
  "CMakeFiles/afs_file_server_tests.dir/core/file_server_test.cc.o.d"
  "afs_file_server_tests"
  "afs_file_server_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_file_server_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
