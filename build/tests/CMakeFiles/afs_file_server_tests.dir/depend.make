# Empty dependencies file for afs_file_server_tests.
# This may be replaced when dependencies are built.
