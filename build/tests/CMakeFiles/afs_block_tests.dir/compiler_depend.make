# Empty compiler generated dependencies file for afs_block_tests.
# This may be replaced when dependencies are built.
