file(REMOVE_RECURSE
  "CMakeFiles/afs_block_tests.dir/block/block_server_test.cc.o"
  "CMakeFiles/afs_block_tests.dir/block/block_server_test.cc.o.d"
  "CMakeFiles/afs_block_tests.dir/block/stable_pair_test.cc.o"
  "CMakeFiles/afs_block_tests.dir/block/stable_pair_test.cc.o.d"
  "afs_block_tests"
  "afs_block_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_block_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
