file(REMOVE_RECURSE
  "CMakeFiles/afs_shell.dir/afs_shell.cpp.o"
  "CMakeFiles/afs_shell.dir/afs_shell.cpp.o.d"
  "afs_shell"
  "afs_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afs_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
