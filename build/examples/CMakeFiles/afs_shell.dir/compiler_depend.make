# Empty compiler generated dependencies file for afs_shell.
# This may be replaced when dependencies are built.
