# Empty compiler generated dependencies file for source_control.
# This may be replaced when dependencies are built.
