file(REMOVE_RECURSE
  "CMakeFiles/source_control.dir/source_control.cpp.o"
  "CMakeFiles/source_control.dir/source_control.cpp.o.d"
  "source_control"
  "source_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
