# Acceptance check for `afs_shell --store`: a file written in one process run must be
# readable in a second, separate run of the shell over the same store directory — and the
# storage tiers must round-trip too: versions migrated onto the write-once archive in run
# one must still be mapped (and their history readable) after the restart in run two.
#
# Invoked by ctest with -DSHELL=<afs_shell binary> -DDIR=<scratch store dir>.

file(REMOVE_RECURSE "${DIR}")
file(MAKE_DIRECTORY "${DIR}")
# Writes go to a plain page under the root: a version's root lives in its version page,
# which is pinned magnetic (it is overwritten in place); only plain pages of old committed
# versions are archive-eligible.
file(WRITE "${DIR}/run1.txt" "create notes\nmkpage notes / 0\nwrite notes /0 hello-from-run-one\nwrite notes /0 hello-again\nwrite notes /0 hello-third\nread notes /0\nmigrate\ntiers\nfsck\nquit\n")
file(WRITE "${DIR}/run2.txt" "ls\nread notes /0\ntiers\nfsck\nquit\n")

execute_process(COMMAND "${SHELL}" --store "${DIR}/store"
  INPUT_FILE "${DIR}/run1.txt" OUTPUT_VARIABLE out1 RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "first shell run failed (rc=${rc1}):\n${out1}")
endif()
if(NOT out1 MATCHES "hello-third")
  message(FATAL_ERROR "first run could not read its own write:\n${out1}")
endif()
if(NOT out1 MATCHES "([1-9][0-9]*) block\\(s\\) archived")
  message(FATAL_ERROR "first run migrated nothing to the archive tier:\n${out1}")
endif()
if(NOT out1 MATCHES "CLEAN:")
  message(FATAL_ERROR "tiered fsck not clean after migration:\n${out1}")
endif()

execute_process(COMMAND "${SHELL}" --store "${DIR}/store"
  INPUT_FILE "${DIR}/run2.txt" OUTPUT_VARIABLE out2 RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "second shell run failed (rc=${rc2}):\n${out2}")
endif()
if(NOT out2 MATCHES "notes")
  message(FATAL_ERROR "directory entry lost across runs:\n${out2}")
endif()
if(NOT out2 MATCHES "hello-third")
  message(FATAL_ERROR "file contents lost across runs:\n${out2}")
endif()
if(NOT out2 MATCHES "mapped:   ([1-9][0-9]*) block\\(s\\) archived")
  message(FATAL_ERROR "archive block-location map lost across runs:\n${out2}")
endif()
if(NOT out2 MATCHES "CLEAN:")
  message(FATAL_ERROR "tiered fsck not clean after remount (archived history unreadable?):\n${out2}")
endif()
message(STATUS "shell --store round trip OK (tiers remounted)")
