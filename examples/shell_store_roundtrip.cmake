# Acceptance check for `afs_shell --store`: a file written in one process run must be
# readable in a second, separate run of the shell over the same store directory.
#
# Invoked by ctest with -DSHELL=<afs_shell binary> -DDIR=<scratch store dir>.

file(REMOVE_RECURSE "${DIR}")
file(MAKE_DIRECTORY "${DIR}")
file(WRITE "${DIR}/run1.txt" "create notes\nwrite notes / hello-from-run-one\nread notes /\nquit\n")
file(WRITE "${DIR}/run2.txt" "ls\nread notes /\nquit\n")

execute_process(COMMAND "${SHELL}" --store "${DIR}/store"
  INPUT_FILE "${DIR}/run1.txt" OUTPUT_VARIABLE out1 RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "first shell run failed (rc=${rc1}):\n${out1}")
endif()
if(NOT out1 MATCHES "hello-from-run-one")
  message(FATAL_ERROR "first run could not read its own write:\n${out1}")
endif()

execute_process(COMMAND "${SHELL}" --store "${DIR}/store"
  INPUT_FILE "${DIR}/run2.txt" OUTPUT_VARIABLE out2 RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "second shell run failed (rc=${rc2}):\n${out2}")
endif()
if(NOT out2 MATCHES "notes")
  message(FATAL_ERROR "directory entry lost across runs:\n${out2}")
endif()
if(NOT out2 MATCHES "hello-from-run-one")
  message(FATAL_ERROR "file contents lost across runs:\n${out2}")
endif()
message(STATUS "shell --store round trip OK")
