// Crash recovery demo — the paper's headline operational claim (§3.1, §6): "With
// optimistic concurrency control, the file system is always in a consistent state. After a
// crash, there is no necessity for recovery: no rollback is required, no locks have to be
// cleared, no intentions lists have to be carried out."
//
// Side by side, the same multi-page update is interrupted by a server crash on
//   (a) the Amoeba File Service        -> restart serves instantly; client redoes update
//   (b) the locking baseline (FELIX/XDFS style, in-place + undo log)
//                                      -> restart must roll back every logged write first
//
//   $ ./crash_recovery_demo

#include <chrono>
#include <cstdio>

#include "src/baseline/locking_server.h"
#include "src/block/block_store.h"
#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/core/file_server.h"
#include "src/rpc/network.h"

using namespace afs;

namespace {

constexpr int kPages = 64;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("== Crash recovery: optimistic versions vs locking with undo logs ==\n\n");
  Network net(3);

  // ---------- (a) Amoeba File Service ----------
  InMemoryBlockStore afs_store(4068, 1 << 20);
  FileServer fs(&net, "afs", &afs_store);
  fs.Start();
  (void)fs.AttachStore();
  FileClient client(&net, {fs.port()});
  auto file = client.CreateFile();
  (void)RunTransaction(&client, *file, [](FileClient& c, const Capability& v) -> Status {
    for (int i = 0; i < kPages; ++i) {
      RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), i));
      RETURN_IF_ERROR(c.WriteString(v, PagePath({static_cast<uint32_t>(i)}), "committed"));
    }
    return OkStatus();
  });

  // A big update is in flight when the server dies.
  auto doomed = client.CreateVersion(*file);
  for (int i = 0; i < kPages; ++i) {
    (void)client.WriteString(*doomed, PagePath({static_cast<uint32_t>(i)}), "in-flight");
  }
  std::printf("[afs] server crashes with a %d-page update in flight...\n", kPages);
  fs.Crash();
  auto afs_start = std::chrono::steady_clock::now();
  fs.Restart();
  double afs_restart_ms = MillisSince(afs_start);
  auto current = client.GetCurrentVersion(*file);
  auto page0 = client.ReadString(*current, PagePath({0}));
  std::printf("[afs] restart-to-service: %.2f ms; page 0 reads \"%s\"\n", afs_restart_ms,
              page0->c_str());
  auto redo = RunTransaction(&client, *file, [](FileClient& c, const Capability& v) -> Status {
    for (int i = 0; i < kPages; ++i) {
      RETURN_IF_ERROR(c.WriteString(v, PagePath({static_cast<uint32_t>(i)}), "redone"));
    }
    return OkStatus();
  });
  std::printf("[afs] client redid the update in %d attempt(s); no rollback happened\n\n",
              redo->attempts);

  // ---------- (b) locking baseline ----------
  InMemoryBlockStore lock_store(4068, 1 << 20);
  LockingFileServer locking(&net, "locking", &lock_store);
  locking.Start();
  auto lfile = locking.CreateFile(kPages);
  {
    auto tx = locking.Begin(net.AllocatePort());
    (void)locking.OpenFile(*tx, *lfile, true);
    for (uint32_t i = 0; i < kPages; ++i) {
      (void)locking.Write(*tx, *lfile, i, std::vector<uint8_t>(9, 'c'));
    }
    (void)locking.Commit(*tx);
  }
  auto tx = locking.Begin(net.AllocatePort());
  (void)locking.OpenFile(*tx, *lfile, true);
  for (uint32_t i = 0; i < kPages; ++i) {
    (void)locking.Write(*tx, *lfile, i, std::vector<uint8_t>(9, 'X'));  // in place!
  }
  std::printf("[lock] server crashes with the same update in flight (in-place writes)...\n");
  locking.Crash();
  auto lock_start = std::chrono::steady_clock::now();
  locking.Restart();  // rolls back from the persisted undo log before serving
  double lock_restart_ms = MillisSince(lock_start);
  std::printf("[lock] restart-to-service: %.2f ms; undo records rolled back: %llu\n",
              lock_restart_ms, (unsigned long long)locking.last_recovery_rollbacks());

  auto reader = locking.Begin(net.AllocatePort());
  (void)locking.OpenFile(*reader, *lfile, false);
  auto data = locking.Read(*reader, *lfile, 0);
  std::printf("[lock] page 0 after rollback: \"%.*s\"\n\n", static_cast<int>(data->size()),
              reinterpret_cast<const char*>(data->data()));

  std::printf("Summary: AFS restart did zero recovery work (%llu rollbacks);\n",
              0ull);
  std::printf("the locking server performed %llu rollback writes before serving.\n",
              (unsigned long long)locking.last_recovery_rollbacks());
  return 0;
}
