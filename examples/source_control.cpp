// Source control demo — the paper's version mechanism as an SCCS-style history store
// (§2 cites Rochkind's Source Code Control System as a target application).
//
// Every commit of the "repository" is an AFS version; the committed chain IS the history.
// Old revisions stay readable (differential files share unchanged pages), diffs fall out
// of cache validation (which pages changed between two versions), and the GC prunes
// history beyond a retention window.
//
//   $ ./source_control

#include <cstdio>
#include <string>
#include <vector>

#include "src/block/block_store.h"
#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/core/gc.h"
#include "src/rpc/network.h"

using namespace afs;

namespace {

struct Revision {
  Capability version;
  std::string message;
};

}  // namespace

int main() {
  std::printf("== A source-control system on the Amoeba File Service ==\n\n");
  Network net(5);
  InMemoryBlockStore store(4068, 1 << 20);
  FileServer fs(&net, "fs", &store);
  fs.Start();
  if (!fs.AttachStore().ok()) {
    return 1;
  }
  FileClient client(&net, {fs.port()});

  // The repository: one file; page i holds source file i.
  const std::vector<std::string> file_names = {"main.c", "util.c", "README"};
  auto repo = client.CreateFile();
  std::vector<Revision> history;

  auto commit = [&](const std::string& message,
                    const std::vector<std::pair<uint32_t, std::string>>& changes) {
    auto v = client.CreateVersion(*repo);
    if (!v.ok()) {
      return;
    }
    for (const auto& [page, contents] : changes) {
      (void)client.WriteString(*v, PagePath({page}), contents);
    }
    if (client.Commit(*v).ok()) {
      history.push_back({*v, message});
      std::printf("r%zu  %-28s (%zu file(s) changed)\n", history.size(), message.c_str(),
                  changes.size());
    }
  };

  // Initial import creates the tree shape.
  {
    auto v = client.CreateVersion(*repo);
    for (uint32_t i = 0; i < file_names.size(); ++i) {
      (void)client.InsertRef(*v, PagePath::Root(), i);
      (void)client.WriteString(*v, PagePath({i}), "// empty " + file_names[i]);
    }
    (void)client.Commit(*v);
    history.push_back({*v, "initial import"});
    std::printf("r1  initial import\n");
  }

  commit("implement main()", {{0, "int main() { return 0; }"}});
  commit("add helper", {{1, "int helper() { return 42; }"}});
  commit("wire helper into main",
         {{0, "int main() { return helper(); }"}, {2, "Uses helper() now."}});
  commit("document", {{2, "A tiny program. Build with cc."}});

  // --- checkout of any old revision: committed versions are immutable snapshots ---
  std::printf("\ncheckout r2 (%s):\n", history[1].message.c_str());
  std::printf("  main.c: %s\n",
              client.ReadString(history[1].version, PagePath({0}))->c_str());
  std::printf("checkout r5 (%s):\n", history[4].message.c_str());
  std::printf("  main.c: %s\n",
              client.ReadString(history[4].version, PagePath({0}))->c_str());

  // --- diff between two revisions via the cache-validation machinery (§5.4) ---
  // "Which pages of r2 are stale by now?" is exactly a cache-entry validation.
  std::vector<PagePath> all_paths;
  for (uint32_t i = 0; i < file_names.size(); ++i) {
    all_paths.push_back(PagePath({i}));
  }
  auto diff = client.ValidateCache(*repo, static_cast<BlockNo>(history[1].version.object),
                                   all_paths);
  std::printf("\nfiles changed since r2:\n");
  for (const PagePath& path : diff->invalid) {
    std::printf("  %s\n", file_names[path.at(0)].c_str());
  }

  // --- space: differential storage and history pruning ---
  std::printf("\nblocks allocated with full history : %zu\n", store.allocated_blocks());
  GarbageCollector gc({&fs}, GcOptions{.keep_versions = 2});
  (void)gc.RunCycle();
  std::printf("blocks after pruning to 2 revisions: %zu (%llu swept)\n",
              store.allocated_blocks(), (unsigned long long)gc.stats().blocks_swept);
  auto current = client.GetCurrentVersion(*repo);
  std::printf("\nHEAD main.c: %s\n", client.ReadString(*current, PagePath({0}))->c_str());
  return 0;
}
