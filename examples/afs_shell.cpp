// afs_shell: an interactive shell over a complete AFS deployment — directory server, two
// file servers on a stable block-server pair, garbage collector, and consistency checker.
// Useful for poking at the system by hand.
//
//   $ ./afs_shell
//   afs> create notes
//   afs> write notes / hello world
//   afs> read notes /
//   afs> history notes
//   afs> crash fs0        # then keep working; redo goes via fs1
//   afs> fsck
//   afs> help
//
// Commands read from stdin; EOF or `quit` exits.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/core/file_server.h"
#include "src/core/fsck.h"
#include "src/core/gc.h"
#include "src/disk/mem_disk.h"
#include "src/namesvc/directory_server.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rpc/client.h"
#include "src/rpc/network.h"

using namespace afs;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  ls                          list named files\n"
      "  create <name>               create and name a file\n"
      "  write <name> <path> <text>  atomic write of a page (path like / or /0/1)\n"
      "  mkpage <name> <path> <idx>  insert a reference slot under <path>\n"
      "  read <name> <path>          read a page of the current version\n"
      "  history <name>              committed version count\n"
      "  rm <name>                   remove the directory entry and delete the file\n"
      "  crash <fs0|fs1|blockA>      crash a server\n"
      "  restart <fs0|fs1|blockA>    restart it\n"
      "  gc                          run one garbage-collection cycle\n"
      "  fsck                        run the consistency checker\n"
      "  stats [fs0|fs1|blockA|blockB]\n"
      "                              process-wide metrics, or scrape one live server's\n"
      "                              registry over RPC (kGetStats)\n"
      "  trace [n]                   most recent n trace events (default 40)\n"
      "  help, quit\n");
}

}  // namespace

int main() {
  Network net(11);
  MemDisk disk_a(kDefaultBlockSize, 8192);
  MemDisk disk_b(kDefaultBlockSize, 8192);
  BlockServer block_a(&net, "block-a", &disk_a, 3);
  BlockServer block_b(&net, "block-b", &disk_b, 3);
  block_a.Start();
  block_b.Start();
  block_a.SetCompanion(block_b.port());
  block_b.SetCompanion(block_a.port());
  Capability account = block_a.CreateAccountDirect();
  auto make_store = [&] {
    return std::make_unique<StableStore>(
        std::make_unique<BlockClient>(&net, block_a.port(), account,
                                      block_a.payload_capacity()),
        std::make_unique<BlockClient>(&net, block_b.port(), account,
                                      block_b.payload_capacity()),
        1);
  };
  auto store0 = make_store();
  auto store1 = make_store();
  FileServer fs0(&net, "fs0", store0.get());
  FileServer fs1(&net, "fs1", store1.get());
  fs0.Start();
  fs1.Start();
  if (!fs0.AttachStore().ok() || !fs1.AttachStore().ok()) {
    std::fprintf(stderr, "attach failed\n");
    return 1;
  }
  DirectoryServer dir(&net, "dir", {fs0.port(), fs1.port()});
  dir.Start();
  if (!dir.Init().ok()) {
    std::fprintf(stderr, "directory init failed\n");
    return 1;
  }
  FileClient client(&net, {fs0.port(), fs1.port()});
  GarbageCollector gc({&fs0, &fs1}, GcOptions{.keep_versions = 4});

  std::printf("Amoeba File Service shell — 'help' for commands\n");
  std::string line;
  while (std::printf("afs> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "ls") {
      auto names = dir.List();
      if (!names.ok()) {
        std::printf("error: %s\n", names.status().ToString().c_str());
        continue;
      }
      for (const std::string& name : *names) {
        std::printf("  %s\n", name.c_str());
      }
    } else if (cmd == "create") {
      std::string name;
      in >> name;
      auto file = client.CreateFile();
      Status st = file.ok() ? dir.Enter(name, *file) : file.status();
      std::printf("%s\n", st.ToString().c_str());
    } else if (cmd == "write" || cmd == "read" || cmd == "mkpage" || cmd == "history" ||
               cmd == "rm") {
      std::string name;
      in >> name;
      auto cap = dir.Lookup(name);
      if (!cap.ok()) {
        std::printf("error: %s\n", cap.status().ToString().c_str());
        continue;
      }
      if (cmd == "history") {
        auto stat = client.FileStat(*cap);
        if (stat.ok()) {
          std::printf("%u committed version(s)%s\n", stat->committed_versions,
                      stat->is_super ? " (super-file)" : "");
        } else {
          std::printf("error: %s\n", stat.status().ToString().c_str());
        }
        continue;
      }
      if (cmd == "rm") {
        Status st = dir.Remove(name);
        if (st.ok()) {
          st = client.DeleteFile(*cap);
        }
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      std::string path_text;
      in >> path_text;
      auto path = PagePath::Parse(path_text);
      if (!path.ok()) {
        std::printf("bad path: %s\n", path.status().ToString().c_str());
        continue;
      }
      if (cmd == "read") {
        auto current = client.GetCurrentVersion(*cap);
        if (!current.ok()) {
          std::printf("error: %s\n", current.status().ToString().c_str());
          continue;
        }
        auto text = client.ReadString(*current, *path);
        if (text.ok()) {
          std::printf("%s\n", text->c_str());
        } else {
          std::printf("error: %s\n", text.status().ToString().c_str());
        }
        continue;
      }
      if (cmd == "mkpage") {
        uint32_t index = 0;
        in >> index;
        auto stats =
            RunTransaction(&client, *cap, [&](FileClient& c, const Capability& v) {
              return c.InsertRef(v, *path, index);
            });
        std::printf("%s\n", stats.status().ToString().c_str());
        continue;
      }
      std::string text;
      std::getline(in, text);
      if (!text.empty() && text[0] == ' ') {
        text.erase(0, 1);
      }
      auto stats = RunTransaction(&client, *cap, [&](FileClient& c, const Capability& v) {
        return c.WriteString(v, *path, text);
      });
      if (stats.ok()) {
        std::printf("committed in %d attempt(s)\n", stats->attempts);
      } else {
        std::printf("error: %s\n", stats.status().ToString().c_str());
      }
    } else if (cmd == "crash" || cmd == "restart") {
      std::string which;
      in >> which;
      Service* target = which == "fs0"      ? static_cast<Service*>(&fs0)
                        : which == "fs1"    ? static_cast<Service*>(&fs1)
                        : which == "blockA" ? static_cast<Service*>(&block_a)
                                            : nullptr;
      if (target == nullptr) {
        std::printf("unknown server '%s'\n", which.c_str());
        continue;
      }
      if (cmd == "crash") {
        target->Crash();
      } else {
        target->Restart();
      }
      std::printf("%s %sed\n", which.c_str(), cmd.c_str());
    } else if (cmd == "stats") {
      std::string which;
      in >> which;
      if (which.empty()) {
        std::printf("%s", obs::DumpAllText().c_str());
        continue;
      }
      Service* target = which == "fs0"      ? static_cast<Service*>(&fs0)
                        : which == "fs1"    ? static_cast<Service*>(&fs1)
                        : which == "blockA" ? static_cast<Service*>(&block_a)
                        : which == "blockB" ? static_cast<Service*>(&block_b)
                                            : nullptr;
      if (target == nullptr) {
        std::printf("unknown server '%s'\n", which.c_str());
        continue;
      }
      auto text = ScrapeStats(&net, target->port());
      if (text.ok()) {
        std::printf("%s", text->c_str());
      } else {
        std::printf("error: %s\n", text.status().ToString().c_str());
      }
    } else if (cmd == "trace") {
      size_t n = 40;
      std::string arg;
      if (in >> arg) {
        n = static_cast<size_t>(std::strtoull(arg.c_str(), nullptr, 10));
      }
      std::printf("%s", obs::DumpTrace(n).c_str());
    } else if (cmd == "gc") {
      Status st = gc.RunCycle();
      std::printf("%s (%llu block(s) swept so far)\n", st.ToString().c_str(),
                  (unsigned long long)gc.stats().blocks_swept);
    } else if (cmd == "fsck") {
      FsckReport report = RunFsck(&fs0);
      std::printf("%s\n", report.ToString().c_str());
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
