// afs_shell: an interactive shell over a complete AFS deployment — directory server, two
// file servers on a stable block-server pair, garbage collector, and consistency checker.
// Useful for poking at the system by hand.
//
//   $ ./afs_shell
//   afs> create notes
//   afs> write notes / hello world
//   afs> read notes /
//   afs> history notes
//   afs> crash fs0        # then keep working; redo goes via fs1
//   afs> fsck
//   afs> help
//
// Commands read from stdin; EOF or `quit` exits.
//
// With `--store <dir>` the block servers run on two durable FileDisks in <dir> instead of
// MemDisks, and the directory capability is kept in <dir>/shell.meta — files created in
// one run are still there in the next:
//
//   $ ./afs_shell --store /tmp/afs
//   afs> create notes
//   afs> write notes / survives-restarts
//   afs> quit
//   $ ./afs_shell --store /tmp/afs
//   afs> read notes /
//   survives-restarts
//
// With `--connect host:port` the shell runs no servers of its own: it dials an afs_server
// process over TCP, discovers the deployment from the hello manifest, and runs the same
// write/commit/read session over real sockets (a reduced command set — the commands that
// poke at in-process objects need the servers in-process):
//
//   $ ./afs_server --port 7450 &
//   LISTENING 7450
//   $ ./afs_shell --connect 127.0.0.1:7450
//   afs> create notes
//   afs> write notes / hello over tcp

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/core/file_server.h"
#include "src/core/fsck.h"
#include "src/core/gc.h"
#include "src/disk/mem_disk.h"
#include "src/disk/write_once_disk.h"
#include "src/namesvc/directory_client.h"
#include "src/namesvc/directory_server.h"
#include "src/shard/shard_map.h"
#include "src/net/socket.h"
#include "src/net/tcp_server.h"
#include "src/net/tcp_transport.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/rpc/client.h"
#include "src/rpc/network.h"
#include "src/store/file_disk.h"
#include "src/tier/fsck.h"
#include "src/tier/migrator.h"
#include "src/tier/scrubber.h"
#include "src/tier/tiered_store.h"

using namespace afs;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  ls                          list named files\n"
      "  create <name>               create and name a file\n"
      "  write <name> <path> <text>  atomic write of a page (path like / or /0/1)\n"
      "  mkpage <name> <path> <idx>  insert a reference slot under <path>\n"
      "  read <name> <path>          read a page of the current version\n"
      "  history <name>              committed version count\n"
      "  rm <name>                   remove the directory entry and delete the file\n"
      "  crash <fs0|fs1|blockA>      crash a server\n"
      "  restart <fs0|fs1|blockA>    restart it\n"
      "  gc                          run one garbage-collection cycle\n"
      "  migrate                     archive old committed versions to the write-once\n"
      "                              tier and reclaim their magnetic blocks\n"
      "  tiers                       storage-tier occupancy and counters\n"
      "  scrub                       CRC-verify every archived block, repair from\n"
      "                              magnetic copies where possible\n"
      "  fsck                        run the consistency checker (both tiers)\n"
      "  shards                      per-file-server commit/2PC shard counters\n"
      "  stats [fs0|fs1|blockA|blockB]\n"
      "                              process-wide metrics, or scrape one live server's\n"
      "                              registry over RPC (kGetStats)\n"
      "  trace [n]                   most recent n trace events (default 40)\n"
      "  spans [n]                   most recent n finished spans (default 40); with a\n"
      "  spans <server> [n]          server name, scrape them over RPC (kGetSpans)\n"
      "  spans tree <trace_id>       indented span tree of one trace\n"
      "  slow [n]                    slow-transaction log: span trees of the slowest\n"
      "                              recent root spans (threshold 20ms)\n"
      "  slo                         per-op-class p50/p99/p999 vs declared targets\n"
      "  checkpoint                  fold the FileDisk journals into the block areas\n"
      "                              (--store mode only; happens automatically on quit)\n"
      "  help, quit\n");
}

// The directory capability is the one piece of state the shell itself must remember
// between runs (everything else is rediscovered from the disks). Four integers in a
// text file.
bool LoadMeta(const std::string& path, Capability* cap) {
  std::ifstream in(path);
  uint64_t port = 0;
  return static_cast<bool>(in >> port >> cap->object >> cap->rights >> cap->check) &&
         (cap->port = static_cast<Port>(port), true);
}

void SaveMeta(const std::string& path, const Capability& cap) {
  std::ofstream out(path);
  out << cap.port << ' ' << cap.object << ' ' << cap.rights << ' ' << cap.check << '\n';
}

// The shard/commit slice of a kGetStats exposition: the lines an operator inspecting the
// two-phase machinery cares about.
void PrintShardStats(const std::string& text) {
  std::istringstream lines(text);
  std::string stat_line;
  while (std::getline(lines, stat_line)) {
    if (stat_line.find("shard.") != std::string::npos ||
        stat_line.find("commit.") != std::string::npos) {
      std::printf("    %s\n", stat_line.c_str());
    }
  }
}

void PrintRemoteHelp() {
  std::printf(
      "remote commands (afs_shell --connect):\n"
      "  ls                          list named files\n"
      "  create <name>               create and name a file\n"
      "  write <name> <path> <text>  atomic write of a page over TCP\n"
      "  mkpage <name> <path> <idx>  insert a reference slot under <path>\n"
      "  read <name> <path>          read a page of the current version\n"
      "  history <name>              committed version count\n"
      "  rm <name>                   remove the directory entry and delete the file\n"
      "  servers                     the server's hello manifest\n"
      "  shards                      the deployment's shard map, with each shard's\n"
      "                              commit/2PC counters scraped over RPC\n"
      "  stats <server>              scrape a remote server's metrics (kGetStats)\n"
      "  spans <server> [n]          scrape a remote server's spans (kGetSpans)\n"
      "  spans [n]                   this process's recent spans\n"
      "  trace [n]                   this process's recent trace events\n"
      "  net                         client transport counters (sends, retransmits...)\n"
      "  help, quit\n");
}

// The --connect mode: everything goes over one TcpTransport; the deployment is discovered
// from the hello manifest. Returns the process exit code.
int RunRemoteShell(const std::string& hostport) {
  auto split = net::SplitHostPort(hostport);
  if (!split.ok()) {
    std::fprintf(stderr, "bad --connect argument: %s\n", split.status().ToString().c_str());
    return 1;
  }
  net::TcpTransport transport(split->first, split->second);
  auto hello = transport.SayHello();
  if (!hello.ok()) {
    std::fprintf(stderr, "cannot reach afs_server at %s: %s\n", hostport.c_str(),
                 hello.status().ToString().c_str());
    return 1;
  }
  std::vector<Port> file_servers;
  std::map<std::string, Port> by_name;
  Port dir_port = kNullPort;
  for (const auto& entry : hello->services) {
    by_name[entry.name] = entry.port;
    if (entry.kind == static_cast<uint8_t>(net::ServiceKind::kFileServer)) {
      file_servers.push_back(entry.port);
    } else if (entry.kind == static_cast<uint8_t>(net::ServiceKind::kDirectoryServer) &&
               dir_port == kNullPort) {
      dir_port = entry.port;
    }
  }
  if (file_servers.empty() || dir_port == kNullPort) {
    std::fprintf(stderr, "server manifest has no file or directory servers\n");
    return 1;
  }
  FileClient client(&transport, file_servers);
  DirectoryClient dir(&transport, dir_port);
  obs::SetSpanEnabled(true);

  std::printf("Amoeba File Service shell — connected to %s (%zu service(s))\n",
              hostport.c_str(), hello->services.size());
  std::string line;
  while (std::printf("afs> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "help") {
      PrintRemoteHelp();
    } else if (cmd == "ls") {
      auto names = dir.List();
      if (!names.ok()) {
        std::printf("error: %s\n", names.status().ToString().c_str());
        continue;
      }
      for (const std::string& name : *names) {
        std::printf("  %s\n", name.c_str());
      }
    } else if (cmd == "servers") {
      for (const auto& entry : hello->services) {
        const char* kind = entry.kind == 1   ? "file server"
                           : entry.kind == 2 ? "block server"
                           : entry.kind == 3 ? "directory server"
                                             : "service";
        std::printf("  %-10s port %llu  (%s)\n", entry.name.c_str(),
                    (unsigned long long)entry.port, kind);
      }
    } else if (cmd == "shards") {
      auto blob = dir.GetShardMap();
      if (!blob.ok()) {
        std::printf("no shard map published (%s) — single-shard deployment\n",
                    blob.status().ToString().c_str());
        for (Port fs_port : file_servers) {
          std::printf("  file server port %llu:\n", (unsigned long long)fs_port);
          auto text = ScrapeStats(&transport, fs_port);
          if (text.ok()) {
            PrintShardStats(*text);
          }
        }
        continue;
      }
      auto map = ShardMap::Decode(*blob);
      if (!map.ok()) {
        std::printf("error: %s\n", map.status().ToString().c_str());
        continue;
      }
      std::printf("%u shard(s), map epoch %u\n", map->num_shards(), map->epoch);
      for (const ShardEntry& entry : map->shards) {
        std::printf("shard %u (%s) at %s — %zu file server(s)\n", entry.shard_id,
                    entry.name.c_str(), entry.address.c_str(),
                    entry.file_servers.size());
        auto split_addr = net::SplitHostPort(entry.address);
        if (!split_addr.ok()) {
          std::printf("  bad address: %s\n", split_addr.status().ToString().c_str());
          continue;
        }
        net::TcpTransport shard_transport(split_addr->first, split_addr->second);
        for (Port fs_port : entry.file_servers) {
          std::printf("  file server port %llu:\n", (unsigned long long)fs_port);
          auto text = ScrapeStats(&shard_transport, fs_port);
          if (text.ok()) {
            PrintShardStats(*text);
          } else {
            std::printf("    unreachable: %s\n", text.status().ToString().c_str());
          }
        }
      }
    } else if (cmd == "create") {
      std::string name;
      in >> name;
      auto file = client.CreateFile();
      Status st = file.ok() ? dir.Enter(name, *file) : file.status();
      std::printf("%s\n", st.ToString().c_str());
    } else if (cmd == "write" || cmd == "read" || cmd == "mkpage" || cmd == "history" ||
               cmd == "rm") {
      std::string name;
      in >> name;
      auto cap = dir.Lookup(name);
      if (!cap.ok()) {
        std::printf("error: %s\n", cap.status().ToString().c_str());
        continue;
      }
      if (cmd == "history") {
        auto stat = client.FileStat(*cap);
        if (stat.ok()) {
          std::printf("%u committed version(s)%s\n", stat->committed_versions,
                      stat->is_super ? " (super-file)" : "");
        } else {
          std::printf("error: %s\n", stat.status().ToString().c_str());
        }
        continue;
      }
      if (cmd == "rm") {
        Status st = dir.Remove(name);
        if (st.ok()) {
          st = client.DeleteFile(*cap);
        }
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      std::string path_text;
      in >> path_text;
      auto path = PagePath::Parse(path_text);
      if (!path.ok()) {
        std::printf("bad path: %s\n", path.status().ToString().c_str());
        continue;
      }
      if (cmd == "read") {
        auto current = client.GetCurrentVersion(*cap);
        if (!current.ok()) {
          std::printf("error: %s\n", current.status().ToString().c_str());
          continue;
        }
        auto text = client.ReadString(*current, *path);
        if (text.ok()) {
          std::printf("%s\n", text->c_str());
        } else {
          std::printf("error: %s\n", text.status().ToString().c_str());
        }
        continue;
      }
      if (cmd == "mkpage") {
        uint32_t index = 0;
        in >> index;
        auto stats =
            RunTransaction(&client, *cap, [&](FileClient& c, const Capability& v) {
              return c.InsertRef(v, *path, index);
            });
        std::printf("%s\n", stats.status().ToString().c_str());
        continue;
      }
      std::string text;
      std::getline(in, text);
      if (!text.empty() && text[0] == ' ') {
        text.erase(0, 1);
      }
      auto stats = RunTransaction(&client, *cap, [&](FileClient& c, const Capability& v) {
        return c.WriteString(v, *path, text);
      });
      if (stats.ok()) {
        std::printf("committed in %d attempt(s)\n", stats->attempts);
      } else {
        std::printf("error: %s\n", stats.status().ToString().c_str());
      }
    } else if (cmd == "stats") {
      std::string which;
      in >> which;
      auto it = by_name.find(which);
      if (it == by_name.end()) {
        std::printf("unknown server '%s' — try 'servers'\n", which.c_str());
        continue;
      }
      auto text = ScrapeStats(&transport, it->second);
      if (text.ok()) {
        std::printf("%s", text->c_str());
      } else {
        std::printf("error: %s\n", text.status().ToString().c_str());
      }
    } else if (cmd == "spans") {
      std::string arg;
      in >> arg;
      auto it = by_name.find(arg);
      if (it != by_name.end()) {
        std::string count;
        in >> count;
        size_t n = count.empty() ? 40 : std::strtoull(count.c_str(), nullptr, 10);
        auto text = ScrapeSpans(&transport, it->second, static_cast<uint32_t>(n),
                                /*chrome_json=*/false);
        if (text.ok()) {
          std::printf("%s", text->c_str());
        } else {
          std::printf("error: %s\n", text.status().ToString().c_str());
        }
      } else {
        size_t n = arg.empty() ? 40 : std::strtoull(arg.c_str(), nullptr, 10);
        std::printf("%s", obs::DumpSpansText(n).c_str());
      }
    } else if (cmd == "trace") {
      size_t n = 40;
      std::string arg;
      if (in >> arg) {
        n = static_cast<size_t>(std::strtoull(arg.c_str(), nullptr, 10));
      }
      std::printf("%s", obs::DumpTrace(n).c_str());
    } else if (cmd == "net") {
      std::string text;
      transport.metrics()->DumpText(&text);
      std::printf("%s", text.c_str());
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (arg.rfind("--store=", 0) == 0) {
      store_dir = arg.substr(8);
    } else if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect = arg.substr(10);
    } else {
      std::fprintf(stderr, "usage: %s [--store <dir>] [--connect host:port]\n", argv[0]);
      return 1;
    }
  }
  if (!connect.empty()) {
    return RunRemoteShell(connect);
  }

  Network net(11);
  // Volatile by default; with --store, three durable FileDisks (the stable pair plus the
  // write-once archive platter) whose contents survive process exit.
  std::unique_ptr<BlockDevice> disk_a;
  std::unique_ptr<BlockDevice> disk_b;
  std::unique_ptr<BlockDevice> disk_archive;
  FileDisk* fdisk_a = nullptr;
  FileDisk* fdisk_b = nullptr;
  FileDisk* fdisk_archive = nullptr;
  if (store_dir.empty()) {
    disk_a = std::make_unique<MemDisk>(kDefaultBlockSize, 8192);
    disk_b = std::make_unique<MemDisk>(kDefaultBlockSize, 8192);
    disk_archive = std::make_unique<MemDisk>(kDefaultBlockSize, 8192);
  } else {
    std::error_code ec;
    std::filesystem::create_directories(store_dir, ec);
    FileDiskOptions options;
    options.block_size = kDefaultBlockSize;
    options.num_blocks = 8192;
    options.group_commit_window = std::chrono::microseconds(200);
    auto a = FileDisk::Open(store_dir + "/a.afsdisk", options);
    auto b = FileDisk::Open(store_dir + "/b.afsdisk", options);
    auto arch = FileDisk::Open(store_dir + "/archive.afsdisk", options);
    if (!a.ok() || !b.ok() || !arch.ok()) {
      std::fprintf(stderr, "cannot open store in %s: %s\n", store_dir.c_str(),
                   (!a.ok()   ? a.status()
                    : !b.ok() ? b.status()
                              : arch.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    fdisk_a = a->get();
    fdisk_b = b->get();
    fdisk_archive = arch->get();
    disk_a = std::move(a).value();
    disk_b = std::move(b).value();
    disk_archive = std::move(arch).value();
    std::printf("persistent store: %s (mount epoch %llu, %llu journal record(s) replayed)\n",
                store_dir.c_str(), (unsigned long long)fdisk_a->epoch(),
                (unsigned long long)(fdisk_a->recovered_records() +
                                     fdisk_b->recovered_records() +
                                     fdisk_archive->recovered_records()));
  }
  BlockServer block_a(&net, "block-a", disk_a.get(), 3);
  BlockServer block_b(&net, "block-b", disk_b.get(), 3);
  block_a.Start();
  block_b.Start();
  block_a.SetCompanion(block_b.port());
  block_b.SetCompanion(block_a.port());
  if (!store_dir.empty()) {
    // Adopt whatever a previous run left on the disks before serving anyone.
    block_a.RecoverFromDisk();
    block_b.RecoverFromDisk();
  }
  Capability account = block_a.CreateAccountDirect();
  auto make_store = [&] {
    return std::make_unique<StableStore>(
        std::make_unique<BlockClient>(&net, block_a.port(), account,
                                      block_a.payload_capacity()),
        std::make_unique<BlockClient>(&net, block_b.port(), account,
                                      block_b.payload_capacity()),
        1);
  };
  // Both file servers share one TieredStore so they see one block-location map: a block
  // fs0 migrated to the platter must resolve through the same map when fs1 reads it.
  auto store = make_store();
  WriteOnceDisk platter(disk_archive.get());
  TieredStore tiered(store.get(), &platter);
  if (Status st = tiered.Mount(); !st.ok()) {
    std::fprintf(stderr, "tier mount failed: %s\n", st.ToString().c_str());
    return 1;
  }
  FileServer fs0(&net, "fs0", &tiered);
  FileServer fs1(&net, "fs1", &tiered);
  fs0.Start();
  fs1.Start();
  if (!fs0.AttachStore().ok() || !fs1.AttachStore().ok()) {
    std::fprintf(stderr, "attach failed\n");
    return 1;
  }
  Migrator migrator({&fs0, &fs1}, &tiered);
  Scrubber scrubber(&tiered);
  FileServer::TierAdminHooks tier_admin{
      .migrate = [&] { return migrator.RunCycle(); },
      .scrub = [&] { return tiered.ScrubPass(); },
      .stat = [&] { return tiered.Stats(); }};
  fs0.SetTierAdmin(tier_admin);
  fs1.SetTierAdmin(tier_admin);
  DirectoryServer dir(&net, "dir", {fs0.port(), fs1.port()});
  dir.Start();
  const std::string meta_path = store_dir.empty() ? "" : store_dir + "/shell.meta";
  Capability dir_cap;
  if (!meta_path.empty() && LoadMeta(meta_path, &dir_cap)) {
    if (!dir.Adopt(dir_cap).ok()) {
      std::fprintf(stderr, "cannot adopt directory from %s\n", meta_path.c_str());
      return 1;
    }
  } else {
    if (!dir.Init().ok()) {
      std::fprintf(stderr, "directory init failed\n");
      return 1;
    }
    if (!meta_path.empty()) {
      SaveMeta(meta_path, dir.directory_file());
    }
  }
  FileClient client(&net, {fs0.port(), fs1.port()});
  GarbageCollector gc({&fs0, &fs1}, GcOptions{.keep_versions = 4});

  // Interactive session: span collection on so `spans`/`slow` have something to show; any
  // transaction slower than 20ms gets its whole span tree captured in the slow log.
  obs::SetSpanEnabled(true);
  obs::SetSlowTraceThresholdNs(20'000'000);

  std::printf("Amoeba File Service shell — 'help' for commands\n");
  std::string line;
  while (std::printf("afs> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "ls") {
      auto names = dir.List();
      if (!names.ok()) {
        std::printf("error: %s\n", names.status().ToString().c_str());
        continue;
      }
      for (const std::string& name : *names) {
        std::printf("  %s\n", name.c_str());
      }
    } else if (cmd == "create") {
      std::string name;
      in >> name;
      auto file = client.CreateFile();
      Status st = file.ok() ? dir.Enter(name, *file) : file.status();
      std::printf("%s\n", st.ToString().c_str());
    } else if (cmd == "write" || cmd == "read" || cmd == "mkpage" || cmd == "history" ||
               cmd == "rm") {
      std::string name;
      in >> name;
      auto cap = dir.Lookup(name);
      if (!cap.ok()) {
        std::printf("error: %s\n", cap.status().ToString().c_str());
        continue;
      }
      if (cmd == "history") {
        auto stat = client.FileStat(*cap);
        if (stat.ok()) {
          std::printf("%u committed version(s)%s\n", stat->committed_versions,
                      stat->is_super ? " (super-file)" : "");
        } else {
          std::printf("error: %s\n", stat.status().ToString().c_str());
        }
        continue;
      }
      if (cmd == "rm") {
        Status st = dir.Remove(name);
        if (st.ok()) {
          st = client.DeleteFile(*cap);
        }
        std::printf("%s\n", st.ToString().c_str());
        continue;
      }
      std::string path_text;
      in >> path_text;
      auto path = PagePath::Parse(path_text);
      if (!path.ok()) {
        std::printf("bad path: %s\n", path.status().ToString().c_str());
        continue;
      }
      if (cmd == "read") {
        auto current = client.GetCurrentVersion(*cap);
        if (!current.ok()) {
          std::printf("error: %s\n", current.status().ToString().c_str());
          continue;
        }
        auto text = client.ReadString(*current, *path);
        if (text.ok()) {
          std::printf("%s\n", text->c_str());
        } else {
          std::printf("error: %s\n", text.status().ToString().c_str());
        }
        continue;
      }
      if (cmd == "mkpage") {
        uint32_t index = 0;
        in >> index;
        auto stats =
            RunTransaction(&client, *cap, [&](FileClient& c, const Capability& v) {
              return c.InsertRef(v, *path, index);
            });
        std::printf("%s\n", stats.status().ToString().c_str());
        continue;
      }
      std::string text;
      std::getline(in, text);
      if (!text.empty() && text[0] == ' ') {
        text.erase(0, 1);
      }
      auto stats = RunTransaction(&client, *cap, [&](FileClient& c, const Capability& v) {
        return c.WriteString(v, *path, text);
      });
      if (stats.ok()) {
        std::printf("committed in %d attempt(s)\n", stats->attempts);
      } else {
        std::printf("error: %s\n", stats.status().ToString().c_str());
      }
    } else if (cmd == "crash" || cmd == "restart") {
      std::string which;
      in >> which;
      Service* target = which == "fs0"      ? static_cast<Service*>(&fs0)
                        : which == "fs1"    ? static_cast<Service*>(&fs1)
                        : which == "blockA" ? static_cast<Service*>(&block_a)
                                            : nullptr;
      if (target == nullptr) {
        std::printf("unknown server '%s'\n", which.c_str());
        continue;
      }
      if (cmd == "crash") {
        target->Crash();
      } else {
        target->Restart();
      }
      std::printf("%s %sed\n", which.c_str(), cmd.c_str());
    } else if (cmd == "stats") {
      std::string which;
      in >> which;
      if (which.empty()) {
        std::printf("%s", obs::DumpAllText().c_str());
        continue;
      }
      Service* target = which == "fs0"      ? static_cast<Service*>(&fs0)
                        : which == "fs1"    ? static_cast<Service*>(&fs1)
                        : which == "blockA" ? static_cast<Service*>(&block_a)
                        : which == "blockB" ? static_cast<Service*>(&block_b)
                                            : nullptr;
      if (target == nullptr) {
        std::printf("unknown server '%s'\n", which.c_str());
        continue;
      }
      auto text = ScrapeStats(&net, target->port());
      if (text.ok()) {
        std::printf("%s", text->c_str());
      } else {
        std::printf("error: %s\n", text.status().ToString().c_str());
      }
    } else if (cmd == "shards") {
      std::printf("local shell runs one shard; per-file-server counters:\n");
      for (Service* fs :
           {static_cast<Service*>(&fs0), static_cast<Service*>(&fs1)}) {
        std::printf("  file server port %llu:\n", (unsigned long long)fs->port());
        auto text = ScrapeStats(&net, fs->port());
        if (text.ok()) {
          PrintShardStats(*text);
        } else {
          std::printf("    error: %s\n", text.status().ToString().c_str());
        }
      }
    } else if (cmd == "trace") {
      size_t n = 40;
      std::string arg;
      if (in >> arg) {
        n = static_cast<size_t>(std::strtoull(arg.c_str(), nullptr, 10));
      }
      std::printf("%s", obs::DumpTrace(n).c_str());
    } else if (cmd == "spans") {
      std::string arg;
      in >> arg;
      if (arg == "tree") {
        std::string id;
        in >> id;
        uint64_t trace_id = std::strtoull(id.c_str(), nullptr, 10);
        std::string tree = obs::FormatSpanTree(trace_id);
        std::printf("%s", tree.empty() ? "no spans for that trace\n" : tree.c_str());
        continue;
      }
      Service* target = arg == "fs0"      ? static_cast<Service*>(&fs0)
                        : arg == "fs1"    ? static_cast<Service*>(&fs1)
                        : arg == "blockA" ? static_cast<Service*>(&block_a)
                        : arg == "blockB" ? static_cast<Service*>(&block_b)
                                          : nullptr;
      std::string count;
      if (target != nullptr) {
        in >> count;
      } else {
        count = arg;
      }
      size_t n = count.empty() ? 40 : std::strtoull(count.c_str(), nullptr, 10);
      if (target != nullptr) {
        auto text = ScrapeSpans(&net, target->port(), static_cast<uint32_t>(n),
                                /*chrome_json=*/false);
        if (text.ok()) {
          std::printf("%s", text->c_str());
        } else {
          std::printf("error: %s\n", text.status().ToString().c_str());
        }
      } else {
        std::printf("%s", obs::DumpSpansText(n).c_str());
      }
    } else if (cmd == "slow") {
      size_t n = 5;
      std::string arg;
      if (in >> arg) {
        n = static_cast<size_t>(std::strtoull(arg.c_str(), nullptr, 10));
      }
      std::vector<std::string> dumps = obs::SlowTraceDumps(n);
      if (dumps.empty()) {
        std::printf("no transactions over %llu ms yet\n",
                    (unsigned long long)(obs::SlowTraceThresholdNs() / 1'000'000));
      }
      for (const std::string& d : dumps) {
        std::printf("%s", d.c_str());
      }
    } else if (cmd == "slo") {
      std::printf("%s", obs::SloTracker::Global()->DumpText().c_str());
    } else if (cmd == "checkpoint") {
      if (fdisk_a == nullptr) {
        std::printf("no persistent store (run with --store <dir>)\n");
        continue;
      }
      Status st = fdisk_a->Checkpoint();
      if (st.ok()) {
        st = fdisk_b->Checkpoint();
      }
      if (st.ok()) {
        st = fdisk_archive->Checkpoint();
      }
      std::printf("%s (%llu checkpoint(s), journals now %llu byte(s))\n",
                  st.ToString().c_str(),
                  (unsigned long long)(fdisk_a->checkpoints() + fdisk_b->checkpoints() +
                                       fdisk_archive->checkpoints()),
                  (unsigned long long)(fdisk_a->journal_bytes() + fdisk_b->journal_bytes() +
                                       fdisk_archive->journal_bytes()));
    } else if (cmd == "gc") {
      Status st = gc.RunCycle();
      std::printf("%s (%llu block(s) swept so far)\n", st.ToString().c_str(),
                  (unsigned long long)gc.stats().blocks_swept);
    } else if (cmd == "migrate") {
      auto migrated = migrator.RunCycle();
      if (migrated.ok()) {
        TierStatInfo t = tiered.Stats();
        std::printf("%llu block(s) archived (%llu magnetic block(s) reclaimed so far)\n",
                    (unsigned long long)*migrated,
                    (unsigned long long)t.magnetic_reclaimed);
      } else {
        std::printf("error: %s\n", migrated.status().ToString().c_str());
      }
    } else if (cmd == "tiers") {
      TierStatInfo t = tiered.Stats();
      std::printf(
          "magnetic: stable pair of 2 block server(s)\n"
          "archive:  %llu/%llu block(s) burned, %llu payload byte(s)\n"
          "mapped:   %llu block(s) archived\n"
          "counters: %llu migrated, %llu reclaimed, %llu promotion(s), %llu repair(s)\n",
          (unsigned long long)t.archive_used_blocks,
          (unsigned long long)t.archive_capacity_blocks,
          (unsigned long long)t.archive_bytes, (unsigned long long)t.archived_blocks,
          (unsigned long long)t.migrated_total, (unsigned long long)t.magnetic_reclaimed,
          (unsigned long long)t.promotions, (unsigned long long)t.scrub_repairs);
    } else if (cmd == "scrub") {
      auto summary = scrubber.RunPass();
      if (summary.ok()) {
        std::printf("%llu checked, %llu repaired, %llu unrecoverable\n",
                    (unsigned long long)summary->checked,
                    (unsigned long long)summary->repaired,
                    (unsigned long long)summary->unrecoverable);
      } else {
        std::printf("error: %s\n", summary.status().ToString().c_str());
      }
    } else if (cmd == "fsck") {
      FsckReport report = RunTieredFsck(&fs0, &tiered);
      std::printf("%s\n", report.ToString().c_str());
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
