// Quickstart: bring up the paper's full deployment — a stable pair of block servers
// (§4), two file servers sharing the store (§5), and a directory server layered on top
// (Figure 1) — then create, name, update and read a file through the public client API.
//
//   $ ./quickstart

#include <cstdio>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/client/file_client.h"
#include "src/core/file_server.h"
#include "src/client/transaction.h"
#include "src/disk/mem_disk.h"
#include "src/namesvc/directory_server.h"
#include "src/rpc/network.h"

using namespace afs;

int main() {
  std::printf("== Amoeba File Service quickstart ==\n\n");

  // --- the network and the stable storage pair (paper §4) --------------------
  Network net(/*seed=*/2024);
  MemDisk disk_a(kDefaultBlockSize, 4096);
  MemDisk disk_b(kDefaultBlockSize, 4096);
  BlockServer block_a(&net, "block-a", &disk_a, /*secret=*/7);
  BlockServer block_b(&net, "block-b", &disk_b, /*secret=*/7);
  block_a.Start();
  block_b.Start();
  block_a.SetCompanion(block_b.port());
  block_b.SetCompanion(block_a.port());
  Capability account = block_a.CreateAccountDirect();
  std::printf("block servers up: ports %llu and %llu (companions)\n",
              (unsigned long long)block_a.port(), (unsigned long long)block_b.port());

  auto make_store = [&] {
    return std::make_unique<StableStore>(
        std::make_unique<BlockClient>(&net, block_a.port(), account,
                                      block_a.payload_capacity()),
        std::make_unique<BlockClient>(&net, block_b.port(), account,
                                      block_b.payload_capacity()),
        /*retry_seed=*/1);
  };

  // --- two file servers sharing the store (paper §5) -------------------------
  auto store0 = make_store();
  auto store1 = make_store();
  FileServer fs0(&net, "fs0", store0.get());
  FileServer fs1(&net, "fs1", store1.get());
  fs0.Start();
  fs1.Start();
  if (!fs0.AttachStore().ok() || !fs1.AttachStore().ok()) {
    std::printf("attach failed\n");
    return 1;
  }
  std::printf("file servers up: ports %llu and %llu (one service group)\n\n",
              (unsigned long long)fs0.port(), (unsigned long long)fs1.port());

  // --- a client creates and updates a file -----------------------------------
  FileClient client(&net, {fs0.port(), fs1.port()});
  auto file = client.CreateFile();
  if (!file.ok()) {
    std::printf("create failed: %s\n", file.status().ToString().c_str());
    return 1;
  }
  std::printf("created file, capability %s\n", file->ToString().c_str());

  // An atomic update: create a version, write pages, commit (§5's bracket).
  auto tx = RunTransaction(&client, *file, [](FileClient& c, const Capability& v) -> Status {
    RETURN_IF_ERROR(c.WriteString(v, PagePath::Root(), "chapter index"));
    RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), 0));
    RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), 1));
    RETURN_IF_ERROR(c.WriteString(v, PagePath({0}), "It was a dark and stormy night."));
    return c.WriteString(v, PagePath({1}), "The server room hummed quietly.");
  });
  std::printf("committed atomic update in %d attempt(s)\n", tx->attempts);

  // Read back through a committed snapshot (no concurrency control needed).
  auto current = client.GetCurrentVersion(*file);
  std::printf("root : %s\n", client.ReadString(*current, PagePath::Root())->c_str());
  std::printf("/0   : %s\n", client.ReadString(*current, PagePath({0}))->c_str());
  std::printf("/1   : %s\n\n", client.ReadString(*current, PagePath({1}))->c_str());

  // --- the directory server on top (Figure 1) --------------------------------
  DirectoryServer dir(&net, "dir", {fs0.port(), fs1.port()});
  dir.Start();
  if (!dir.Init().ok()) {
    std::printf("directory init failed\n");
    return 1;
  }
  (void)dir.Enter("novel.txt", *file);
  auto looked_up = dir.Lookup("novel.txt");
  std::printf("directory lookup 'novel.txt' -> %s (same file: %s)\n",
              looked_up->ToString().c_str(),
              (looked_up->object == file->object) ? "yes" : "no");

  // --- crash resilience demo: kill fs0, keep working --------------------------
  fs0.Crash();
  auto after_crash = RunTransaction(&client, *file, [](FileClient& c, const Capability& v) {
    return c.WriteString(v, PagePath({0}), "Rewritten after the crash, via fs1.");
  });
  std::printf("\nfs0 crashed; update redone through fs1 in %d attempt(s)\n",
              after_crash->attempts);
  current = client.GetCurrentVersion(*file);
  std::printf("/0   : %s\n", client.ReadString(*current, PagePath({0}))->c_str());
  std::printf("\nNo rollback, no lock cleanup, no intentions lists were needed.\n");
  return 0;
}
