// afs_server: a complete AFS deployment served over real TCP sockets.
//
// Hosts the stable block-server pair, two file servers sharing one tiered store, and a
// directory server, and exposes them through a net::TcpServer so separate processes —
// afs_shell --connect, the multi-process integration test — reach them over the wire:
//
//   $ ./afs_server --port 7450 --store /tmp/afs &
//   LISTENING 7450
//   $ ./afs_shell --connect 127.0.0.1:7450
//   afs> create notes
//   afs> write notes / hello over tcp
//
// With --port 0 (the default) the kernel picks a free port; the chosen port is printed as
// "LISTENING <port>" on stdout once the server accepts connections, which is what the
// integration test parses. With --store <dir> the block servers run on durable FileDisks
// and the directory capability is kept in <dir>/server.meta, so a kill -9'd server restarts
// into the same namespace (the §5.3 crash/recovery story, now across real processes).
//
// The process serves until stdin reports "quit" or closes AND --idle-exit is given;
// otherwise it serves until killed.
//
// With --shard k/N the process is shard k of an N-shard deployment (docs/SHARDING.md):
// its file servers mint file ids congruent to k mod N, and once every shard is up the
// launcher writes "peers host:port,host:port,..." (all N addresses, in shard order) to
// each server's stdin. The server then discovers its peers, publishes the shard map
// through its directory server, attaches a cross-shard commit coordinator (durable
// decision log in <store>/decision.log when --store is given), and resolves any prepares
// left in doubt by a previous incarnation. "SHARDED <commits> <aborts>" on stdout
// acknowledges, reporting what recovery resolved. The AFS_SHARD_CRASH environment
// variable ("prepared" or "logged") makes the coordinator die at that point of its next
// cross-shard commit — the chaos suite's coordinator-crash lever.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "src/block/block_server.h"
#include "src/block/block_store.h"
#include "src/block/protocol.h"
#include "src/client/file_client.h"
#include "src/core/file_server.h"
#include "src/disk/mem_disk.h"
#include "src/disk/write_once_disk.h"
#include "src/namesvc/directory_server.h"
#include "src/net/tcp_server.h"
#include "src/obs/span.h"
#include "src/rpc/network.h"
#include "src/shard/coordinator.h"
#include "src/shard/decision_log.h"
#include "src/shard/discovery.h"
#include "src/shard/router.h"
#include "src/store/file_disk.h"
#include "src/tier/tiered_store.h"

using namespace afs;

namespace {

bool LoadMeta(const std::string& path, Capability* cap) {
  std::ifstream in(path);
  uint64_t port = 0;
  return static_cast<bool>(in >> port >> cap->object >> cap->rights >> cap->check) &&
         (cap->port = static_cast<Port>(port), true);
}

void SaveMeta(const std::string& path, const Capability& cap) {
  std::ofstream out(path);
  out << cap.port << ' ' << cap.object << ' ' << cap.rights << ' ' << cap.check << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  std::string host = "127.0.0.1";
  uint16_t listen_port = 0;
  uint64_t seed = 11;
  int idle_timeout_ms = 0;
  int max_conns = 64;
  uint32_t shard_id = 0;
  uint32_t num_shards = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (arg == flag && i + 1 < argc) {
        return argv[++i];
      }
      std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        return arg.c_str() + prefix.size();
      }
      return nullptr;
    };
    if (const char* v = value("--store")) {
      store_dir = v;
    } else if (const char* v = value("--port")) {
      listen_port = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--host")) {
      host = v;
    } else if (const char* v = value("--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--idle-timeout-ms")) {
      idle_timeout_ms = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--max-conns")) {
      max_conns = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--shard")) {
      char* slash = nullptr;
      shard_id = static_cast<uint32_t>(std::strtoul(v, &slash, 10));
      if (slash == nullptr || *slash != '/') {
        std::fprintf(stderr, "--shard wants k/N, got '%s'\n", v);
        return 1;
      }
      num_shards = static_cast<uint32_t>(std::strtoul(slash + 1, nullptr, 10));
      if (num_shards == 0 || shard_id >= num_shards) {
        std::fprintf(stderr, "--shard %u/%u out of range\n", shard_id, num_shards);
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--host H] [--store <dir>] [--seed N]\n"
                   "          [--idle-timeout-ms N] [--max-conns N] [--shard k/N]\n",
                   argv[0]);
      return 1;
    }
  }

  Network net(seed);
  std::unique_ptr<BlockDevice> disk_a;
  std::unique_ptr<BlockDevice> disk_b;
  std::unique_ptr<BlockDevice> disk_archive;
  if (store_dir.empty()) {
    disk_a = std::make_unique<MemDisk>(kDefaultBlockSize, 8192);
    disk_b = std::make_unique<MemDisk>(kDefaultBlockSize, 8192);
    disk_archive = std::make_unique<MemDisk>(kDefaultBlockSize, 8192);
  } else {
    std::error_code ec;
    std::filesystem::create_directories(store_dir, ec);
    FileDiskOptions options;
    options.block_size = kDefaultBlockSize;
    options.num_blocks = 8192;
    options.group_commit_window = std::chrono::microseconds(200);
    auto a = FileDisk::Open(store_dir + "/a.afsdisk", options);
    auto b = FileDisk::Open(store_dir + "/b.afsdisk", options);
    auto arch = FileDisk::Open(store_dir + "/archive.afsdisk", options);
    if (!a.ok() || !b.ok() || !arch.ok()) {
      std::fprintf(stderr, "cannot open store in %s\n", store_dir.c_str());
      return 1;
    }
    disk_a = std::move(a).value();
    disk_b = std::move(b).value();
    disk_archive = std::move(arch).value();
  }
  BlockServer block_a(&net, "block-a", disk_a.get(), 3);
  BlockServer block_b(&net, "block-b", disk_b.get(), 3);
  block_a.Start();
  block_b.Start();
  block_a.SetCompanion(block_b.port());
  block_b.SetCompanion(block_a.port());
  if (!store_dir.empty()) {
    block_a.RecoverFromDisk();
    block_b.RecoverFromDisk();
  }
  Capability account = block_a.CreateAccountDirect();
  StableStore store(std::make_unique<BlockClient>(&net, block_a.port(), account,
                                                  block_a.payload_capacity()),
                    std::make_unique<BlockClient>(&net, block_b.port(), account,
                                                  block_b.payload_capacity()),
                    1);
  WriteOnceDisk platter(disk_archive.get());
  TieredStore tiered(&store, &platter);
  if (Status st = tiered.Mount(); !st.ok()) {
    std::fprintf(stderr, "tier mount failed: %s\n", st.ToString().c_str());
    return 1;
  }
  FileServerOptions fs_options;
  fs_options.shard_id = shard_id;
  fs_options.num_shards = num_shards;
  FileServer fs0(&net, "fs0", &tiered, fs_options);
  FileServer fs1(&net, "fs1", &tiered, fs_options);
  fs0.Start();
  fs1.Start();
  if (!fs0.AttachStore().ok() || !fs1.AttachStore().ok()) {
    std::fprintf(stderr, "attach failed\n");
    return 1;
  }
  DirectoryServer dir(&net, "dir", {fs0.port(), fs1.port()});
  dir.Start();
  const std::string meta_path = store_dir.empty() ? "" : store_dir + "/server.meta";
  Capability dir_cap;
  if (!meta_path.empty() && LoadMeta(meta_path, &dir_cap)) {
    if (!dir.Adopt(dir_cap).ok()) {
      std::fprintf(stderr, "cannot adopt directory from %s\n", meta_path.c_str());
      return 1;
    }
  } else {
    if (!dir.Init().ok()) {
      std::fprintf(stderr, "directory init failed\n");
      return 1;
    }
    if (!meta_path.empty()) {
      SaveMeta(meta_path, dir.directory_file());
    }
  }

  // Span recording on, so remote `spans <server>` scrapes (and the cross-process trace
  // assertions of the integration test) see the server-side span tree.
  obs::SetSpanEnabled(true);

  net::TcpServer::Options options;
  options.host = host;
  options.port = listen_port;
  options.max_connections = max_conns;
  if (idle_timeout_ms > 0) {
    options.idle_timeout = std::chrono::milliseconds(idle_timeout_ms);
  }
  net::TcpServer server(&net, options);
  server.Expose(&fs0, "fs0", net::ServiceKind::kFileServer);
  server.Expose(&fs1, "fs1", net::ServiceKind::kFileServer);
  server.Expose(&block_a, "block-a", net::ServiceKind::kBlockServer);
  server.Expose(&block_b, "block-b", net::ServiceKind::kBlockServer);
  server.Expose(&dir, "dir", net::ServiceKind::kDirectoryServer);
  server.set_root_capability(dir.directory_file());
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "cannot listen on %s:%u: %s\n", host.c_str(), listen_port,
                 st.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  // Shard-mode state, built when the launcher hands us the peer list.
  std::vector<std::unique_ptr<net::TcpTransport>> peer_transports;
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<DecisionLog> decision_log;
  std::unique_ptr<ShardCoordinator> coordinator;

  // Serve until told to quit; a closed stdin (detached run) serves until killed.
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "exit") {
      break;
    }
    if (line.rfind("peers ", 0) == 0) {
      std::vector<std::string> addresses;
      std::string rest = line.substr(6);
      for (size_t pos = 0; pos < rest.size();) {
        size_t comma = rest.find(',', pos);
        if (comma == std::string::npos) {
          comma = rest.size();
        }
        addresses.push_back(rest.substr(pos, comma - pos));
        pos = comma + 1;
      }
      if (addresses.size() != num_shards) {
        std::printf("ERROR peer list has %zu address(es), deployment has %u shard(s)\n",
                    addresses.size(), num_shards);
        std::fflush(stdout);
        continue;
      }
      auto map = DiscoverShardMap(addresses, &peer_transports);
      if (!map.ok()) {
        std::printf("ERROR %s\n", map.status().ToString().c_str());
        std::fflush(stdout);
        continue;
      }
      auto made = ShardRouter::Make(*map, [&](const ShardEntry& entry) -> Transport* {
        return peer_transports[entry.shard_id].get();
      });
      if (!made.ok()) {
        std::printf("ERROR %s\n", made.status().ToString().c_str());
        std::fflush(stdout);
        continue;
      }
      router = std::move(made).value();
      if (store_dir.empty()) {
        decision_log = std::make_unique<MemoryDecisionLog>();
      } else {
        auto log = JournalDecisionLog::Open(store_dir + "/decision.log");
        if (!log.ok()) {
          std::printf("ERROR %s\n", log.status().ToString().c_str());
          std::fflush(stdout);
          continue;
        }
        decision_log = std::move(log).value();
      }
      coordinator = std::make_unique<ShardCoordinator>(shard_id, router.get(),
                                                       decision_log.get(), fs0.metrics());
      if (const char* crash = std::getenv("AFS_SHARD_CRASH");
          crash != nullptr && *crash != '\0') {
        std::string point = crash;
        coordinator->set_crash_hook([point](const char* at) {
          if (point == at) {
            // kill -9 semantics: no destructors, no flushes — the decision log's
            // durability contract is what recovery leans on.
            std::_Exit(137);
          }
        });
      }
      coordinator->Serve(&fs0);
      coordinator->Serve(&fs1);
      dir.SetShardMapBlob(map->Encode());
      // Finish whatever a previous incarnation of this deployment left in doubt.
      auto recovered = coordinator->RecoverInDoubt();
      if (recovered.ok()) {
        std::printf("SHARDED %llu %llu\n", (unsigned long long)recovered->resolved_commit,
                    (unsigned long long)recovered->resolved_abort);
      } else {
        std::printf("SHARDED 0 0\n");
      }
      std::fflush(stdout);
      continue;
    }
    if (line == "recover" && coordinator != nullptr) {
      auto recovered = coordinator->RecoverInDoubt();
      if (recovered.ok()) {
        std::printf("RECOVERED %llu %llu\n", (unsigned long long)recovered->resolved_commit,
                    (unsigned long long)recovered->resolved_abort);
      } else {
        std::printf("ERROR %s\n", recovered.status().ToString().c_str());
      }
      std::fflush(stdout);
      continue;
    }
  }
  if (!std::cin) {
    // stdin closed: park this thread, keep serving.
    while (true) {
      std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
  }
  server.Stop();
  return 0;
}
