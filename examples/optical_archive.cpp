// Optical archive demo — the paper's closing claim (§6): "the Amoeba File Service is
// eminently suitable for a file system on write-once media, such as optical disks ...
// files cannot be overwritten on a write-once device. The version mechanism, coupled with
// a cache in which uncommitted files are kept until just before commit, seems an ideal
// file store for optical disks."
//
// Here a block server runs directly on a WriteOnceDisk. The version mechanism never
// rewrites committed pages — every update allocates fresh blocks — so the only write-once
// violations come from the in-place-overwritten version pages; we place those on a small
// rewritable cache disk, exactly the magnetic-top/optical-bottom split of Figure 2.
//
//   $ ./optical_archive

#include <cstdio>

#include "src/block/block_store.h"
#include "src/client/file_client.h"
#include "src/core/file_server.h"
#include "src/disk/write_once_disk.h"
#include "src/rpc/network.h"

using namespace afs;

int main() {
  std::printf("== Write-once archive on the Amoeba File Service ==\n\n");
  // For this demo the simplest faithful configuration is used: the file service writes
  // version pages in place, so it runs on a hybrid store where in-place-writable state
  // lives on magnetic storage and everything else could live on optical. We demonstrate
  // the key property directly: committed page chains are never overwritten.
  Network net(17);
  InMemoryBlockStore magnetic(4068, 1 << 20);
  FileServer fs(&net, "fs", &magnetic);
  fs.Start();
  if (!fs.AttachStore().ok()) {
    return 1;
  }
  FileClient client(&net, {fs.port()});

  auto file = client.CreateFile();
  uint64_t writes_before = 0;

  // Record every block ever written and verify committed chains are append-only.
  std::vector<size_t> footprint;
  for (int rev = 0; rev < 5; ++rev) {
    auto v = client.CreateVersion(*file);
    if (rev == 0) {
      for (int i = 0; i < 3; ++i) {
        (void)client.InsertRef(*v, PagePath::Root(), i);
      }
    }
    (void)client.WriteString(*v, PagePath({static_cast<uint32_t>(rev % 3)}),
                             "archived revision " + std::to_string(rev));
    (void)client.Commit(*v);
    footprint.push_back(magnetic.allocated_blocks());
  }
  writes_before = magnetic.total_writes();

  std::printf("five archived revisions; storage footprint per revision:\n  ");
  for (size_t f : footprint) {
    std::printf("%zu ", f);
  }
  std::printf("blocks\n\n");

  // The archival property: reading ALL history performs no writes at all, and every
  // historical version is still intact (nothing was overwritten).
  auto stat = client.FileStat(*file);
  std::printf("committed versions on the platter: %u\n", stat->committed_versions);
  auto current = client.GetCurrentVersion(*file);
  for (uint32_t i = 0; i < 3; ++i) {
    auto text = client.ReadString(*current, PagePath({i}));
    std::printf("  page %u: %s\n", i, text->c_str());
  }
  std::printf("\nblock writes during history reads: %llu (write-once friendly: %s)\n",
              (unsigned long long)(magnetic.total_writes() - writes_before),
              magnetic.total_writes() == writes_before ? "yes" : "no");

  // And the raw device behaviour the design rests on:
  WriteOnceDisk platter(512, 16);
  std::vector<uint8_t> sector(512, 0xaa);
  (void)platter.Write(0, sector);
  bool second_rejected = platter.Write(0, sector).code() == ErrorCode::kReadOnly;
  std::printf("raw write-once device rejects overwrite: %s\n",
              second_rejected ? "yes" : "no");
  return 0;
}
