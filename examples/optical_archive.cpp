// Optical archive demo — the paper's closing claim (§6): "the Amoeba File Service is
// eminently suitable for a file system on write-once media, such as optical disks ...
// files cannot be overwritten on a write-once device. The version mechanism, coupled with
// a cache in which uncommitted files are kept until just before commit, seems an ideal
// file store for optical disks."
//
// This runs the real subsystem (src/tier): the file service operates on a TieredStore —
// magnetic tier underneath, a WriteOnceDisk archive tier behind it — and a Migrator walks
// the committed version trees, burns the immutable pages of old versions onto the platter,
// and reclaims their magnetic blocks. Version pages (the one page kind overwritten in
// place) stay magnetic: exactly the magnetic-top/optical-bottom split of Figure 2. All
// history remains readable through the block-location map, served from the platter.
//
//   $ ./optical_archive

#include <cstdio>

#include "src/block/block_store.h"
#include "src/client/file_client.h"
#include "src/core/file_server.h"
#include "src/disk/write_once_disk.h"
#include "src/rpc/network.h"
#include "src/tier/fsck.h"
#include "src/tier/migrator.h"
#include "src/tier/tiered_store.h"

using namespace afs;

int main() {
  std::printf("== Write-once archive on the Amoeba File Service (src/tier) ==\n\n");
  Network net(17);
  InMemoryBlockStore magnetic(4068, 1 << 20);
  WriteOnceDisk platter(4096, 1 << 12);  // 4096 - 28B record header = 4068B payloads
  TieredStore tiered(&magnetic, &platter);
  if (!tiered.Mount().ok()) {
    return 1;
  }
  FileServer fs(&net, "fs", &tiered);
  fs.Start();
  if (!fs.AttachStore().ok()) {
    return 1;
  }
  FileClient client(&net, {fs.port()});
  Migrator migrator({&fs}, &tiered);
  fs.SetTierAdmin({.migrate = [&] { return migrator.RunCycle(); },
                   .scrub = [&] { return tiered.ScrubPass(); },
                   .stat = [&] { return tiered.Stats(); }});

  auto file = client.CreateFile();
  for (int rev = 0; rev < 5; ++rev) {
    auto v = client.CreateVersion(*file);
    if (rev == 0) {
      for (int i = 0; i < 3; ++i) {
        (void)client.InsertRef(*v, PagePath::Root(), i);
      }
    }
    (void)client.WriteString(*v, PagePath({static_cast<uint32_t>(rev % 3)}),
                             "archived revision " + std::to_string(rev));
    (void)client.Commit(*v);
  }

  const size_t magnetic_before = magnetic.allocated_blocks();
  auto migrated = client.MigrateNow();
  if (!migrated.ok()) {
    std::printf("migration failed: %s\n", migrated.status().ToString().c_str());
    return 1;
  }
  auto tstat = client.TierStat();
  std::printf("five committed revisions; migration archived %llu block(s)\n",
              (unsigned long long)*migrated);
  std::printf("magnetic blocks: %zu -> %zu (%llu reclaimed onto the platter)\n",
              magnetic_before, magnetic.allocated_blocks(),
              (unsigned long long)tstat->magnetic_reclaimed);
  std::printf("platter: %llu/%llu block(s) burned, %llu payload byte(s)\n\n",
              (unsigned long long)tstat->archive_used_blocks,
              (unsigned long long)tstat->archive_capacity_blocks,
              (unsigned long long)tstat->archive_bytes);

  // The archival property: all history is still readable — old pages come back from the
  // write-once platter through the block-location map, current state stays magnetic.
  auto stat = client.FileStat(*file);
  std::printf("committed versions retained: %u\n", stat->committed_versions);
  auto current = client.GetCurrentVersion(*file);
  for (uint32_t i = 0; i < 3; ++i) {
    auto text = client.ReadString(*current, PagePath({i}));
    std::printf("  page %u: %s\n", i, text->c_str());
  }

  // A scrub pass CRC-verifies every burned record, and tiered fsck extends the paper's
  // structural invariants across both tiers.
  auto scrub = client.ScrubNow();
  std::printf("\nscrub: %llu checked, %llu repaired, %llu unrecoverable\n",
              (unsigned long long)scrub->checked, (unsigned long long)scrub->repaired,
              (unsigned long long)scrub->unrecoverable);
  FsckReport report = RunTieredFsck(&fs, &tiered);
  std::printf("fsck: %s\n", report.ToString().c_str());

  // And the raw device behaviour the whole design rests on:
  std::vector<uint8_t> sector(4096, 0xaa);
  BlockNo burned = platter.geometry().num_blocks - 1;
  (void)platter.Write(burned, sector);
  bool second_rejected = platter.Write(burned, sector).code() == ErrorCode::kReadOnly;
  std::printf("raw write-once device rejects overwrite: %s\n", second_rejected ? "yes" : "no");
  fs.Shutdown();
  return report.clean && second_rejected ? 0 : 1;
}
