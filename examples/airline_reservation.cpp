// Airline reservation demo — the paper's own motivating example (§6): "changes in an
// airline reservation system for flights from San Francisco to Los Angeles do not conflict
// with changes to reservations on flights from Amsterdam to London."
//
// The whole reservation system is ONE file; each flight is one page. Booking agents run
// concurrent optimistic transactions: bookings on different flights merge, bookings on the
// same flight conflict and are redone — no agent ever sees an oversold seat.
//
//   $ ./airline_reservation

#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "src/block/block_store.h"
#include "src/client/file_client.h"
#include "src/client/transaction.h"
#include "src/core/file_server.h"
#include "src/rpc/network.h"

using namespace afs;

namespace {

constexpr int kFlights = 8;
constexpr int kSeatsPerFlight = 20;
constexpr int kAgents = 6;
constexpr int kBookingsPerAgent = 30;

const char* kRoutes[kFlights] = {"SFO-LAX", "AMS-LON", "JFK-BOS", "NRT-HND",
                                 "CDG-FRA", "SYD-MEL", "GRU-EZE", "DEL-BOM"};

struct Flight {
  int seats_taken = 0;
};

std::string EncodeFlight(const Flight& f) { return std::to_string(f.seats_taken); }
Flight DecodeFlight(const std::string& s) { return Flight{s.empty() ? 0 : std::stoi(s)}; }

}  // namespace

int main() {
  std::printf("== Airline reservations on the Amoeba File Service ==\n\n");
  Network net(99);
  InMemoryBlockStore store(4068, 1 << 20);
  FileServer fs(&net, "fs", &store);
  fs.Start();
  if (!fs.AttachStore().ok()) {
    return 1;
  }
  FileClient client(&net, {fs.port()});

  auto file = client.CreateFile();
  auto init = RunTransaction(&client, *file, [](FileClient& c, const Capability& v) -> Status {
    for (int i = 0; i < kFlights; ++i) {
      RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), i));
      RETURN_IF_ERROR(c.WriteString(v, PagePath({static_cast<uint32_t>(i)}), "0"));
    }
    return OkStatus();
  });
  if (!init.ok()) {
    std::printf("init failed: %s\n", init.status().ToString().c_str());
    return 1;
  }
  std::printf("%d flights, %d seats each; %d agents booking concurrently...\n\n", kFlights,
              kSeatsPerFlight, kAgents);

  std::atomic<int> booked{0};
  std::atomic<int> sold_out{0};
  std::atomic<int> total_conflict_redos{0};
  std::vector<std::thread> agents;
  for (int a = 0; a < kAgents; ++a) {
    agents.emplace_back([&, a] {
      FileClient agent_client(&net, {fs.port()});
      Rng rng(1000 + a);
      for (int b = 0; b < kBookingsPerAgent; ++b) {
        // Hot/cold mix: most bookings hit a few popular routes — the contention knob.
        uint32_t flight = rng.NextBool(0.5) ? static_cast<uint32_t>(rng.NextBelow(2))
                                            : static_cast<uint32_t>(rng.NextBelow(kFlights));
        TransactionOptions options;
        options.backoff_seed = a * 1000 + b;
        options.max_attempts = 200;
        auto stats = RunTransaction(
            &agent_client, *file,
            [&](FileClient& c, const Capability& v) -> Status {
              ASSIGN_OR_RETURN(std::string raw, c.ReadString(v, PagePath({flight})));
              Flight f = DecodeFlight(raw);
              if (f.seats_taken >= kSeatsPerFlight) {
                return NoSpaceError("flight full");
              }
              ++f.seats_taken;
              return c.WriteString(v, PagePath({flight}), EncodeFlight(f));
            },
            options);
        if (stats.ok()) {
          ++booked;
          total_conflict_redos += stats->conflicts;
        } else if (stats.status().code() == ErrorCode::kNoSpace) {
          ++sold_out;
        }
      }
    });
  }
  for (auto& t : agents) {
    t.join();
  }

  // Tally the final state.
  auto current = client.GetCurrentVersion(*file);
  int total_seats = 0;
  std::printf("%-10s %s\n", "route", "seats taken");
  for (int i = 0; i < kFlights; ++i) {
    auto raw = client.ReadString(*current, PagePath({static_cast<uint32_t>(i)}));
    Flight f = DecodeFlight(*raw);
    total_seats += f.seats_taken;
    std::printf("%-10s %d/%d%s\n", kRoutes[i], f.seats_taken, kSeatsPerFlight,
                f.seats_taken >= kSeatsPerFlight ? "  (sold out)" : "");
  }
  std::printf("\nbookings accepted : %d\n", booked.load());
  std::printf("sold-out refusals : %d\n", sold_out.load());
  std::printf("conflict redos    : %d (optimism pays: %d attempted on %d flights)\n",
              total_conflict_redos.load(), kAgents * kBookingsPerAgent, kFlights);
  std::printf("seats on record   : %d (must equal bookings accepted: %s)\n", total_seats,
              total_seats == booked.load() ? "yes" : "NO — LOST UPDATE!");
  return total_seats == booked.load() ? 0 : 1;
}
