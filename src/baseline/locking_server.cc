#include "src/baseline/locking_server.h"

#include <algorithm>
#include <chrono>

#include "src/base/wire.h"
#include "src/rpc/client.h"

namespace afs {
namespace {

// How long a lock request blocks before reporting kLocked. Timeouts stand in for the
// XDFS-style "vulnerable lock + prod" protocol and also resolve deadlocks.
constexpr std::chrono::milliseconds kLockWait{50};

std::vector<uint8_t> EncodeUndo(uint64_t file, uint32_t page,
                                std::span<const uint8_t> old_data) {
  WireEncoder enc;
  enc.PutU64(file);
  enc.PutU32(page);
  enc.PutBytes(old_data);
  return std::move(enc).Take();
}

}  // namespace

LockingFileServer::LockingFileServer(Network* network, std::string name, BlockStore* blocks,
                                     uint64_t seed)
    : Service(network, std::move(name)), blocks_(blocks), rng_(seed) {}

Result<uint64_t> LockingFileServer::CreateFile(uint32_t npages) {
  std::vector<BlockNo> pages;
  pages.reserve(npages);
  for (uint32_t i = 0; i < npages; ++i) {
    ASSIGN_OR_RETURN(BlockNo bno, blocks_->AllocWrite({}));
    pages.push_back(bno);
  }
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  files_[id].pages = std::move(pages);
  return id;
}

Result<uint64_t> LockingFileServer::Begin(Port owner) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  txs_[id].owner = owner;
  return id;
}

Status LockingFileServer::OpenFile(uint64_t tx, uint64_t file, bool write_mode) {
  std::unique_lock<std::mutex> lock(mu_);
  auto tx_it = txs_.find(tx);
  if (tx_it == txs_.end()) {
    return NotFoundError("no such transaction");
  }
  auto file_it = files_.find(file);
  if (file_it == files_.end()) {
    return NotFoundError("no such file");
  }
  FileState& fs = file_it->second;

  auto holds_write = [&] { return fs.writer_tx == tx; };
  auto holds_read = [&] {
    return std::find(fs.reader_txs.begin(), fs.reader_txs.end(), tx) != fs.reader_txs.end();
  };
  if (write_mode && holds_write()) {
    return OkStatus();
  }
  if (!write_mode && (holds_read() || holds_write())) {
    return OkStatus();
  }

  auto grantable = [&] {
    if (write_mode) {
      // Upgrade allowed only if we are the sole reader.
      bool sole_reader = fs.readers == 1 && holds_read();
      return fs.writer_tx == 0 && (fs.readers == 0 || sole_reader);
    }
    return fs.writer_tx == 0;
  };
  if (!grantable()) {
    ++lock_waits_;
    if (!lock_cv_.wait_for(lock, kLockWait, grantable)) {
      return LockedError("file lock not granted");
    }
  }
  if (write_mode) {
    if (holds_read()) {
      fs.reader_txs.erase(std::find(fs.reader_txs.begin(), fs.reader_txs.end(), tx));
      --fs.readers;
      auto& rl = tx_it->second.read_locks;
      rl.erase(std::remove(rl.begin(), rl.end(), file), rl.end());
    }
    fs.writer_tx = tx;
    tx_it->second.write_locks.push_back(file);
  } else {
    ++fs.readers;
    fs.reader_txs.push_back(tx);
    tx_it->second.read_locks.push_back(file);
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> LockingFileServer::Read(uint64_t tx, uint64_t file,
                                                     uint32_t page) {
  BlockNo bno;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto tx_it = txs_.find(tx);
    auto file_it = files_.find(file);
    if (tx_it == txs_.end() || file_it == files_.end()) {
      return NotFoundError("no such transaction or file");
    }
    FileState& fs = file_it->second;
    const bool licensed =
        fs.writer_tx == tx ||
        std::find(fs.reader_txs.begin(), fs.reader_txs.end(), tx) != fs.reader_txs.end();
    if (!licensed) {
      return LockedError("file not opened by this transaction");
    }
    if (page >= fs.pages.size()) {
      return InvalidArgumentError("page index out of range");
    }
    bno = fs.pages[page];
  }
  return blocks_->Read(bno);
}

Status LockingFileServer::Write(uint64_t tx, uint64_t file, uint32_t page,
                                std::span<const uint8_t> data) {
  BlockNo bno;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto tx_it = txs_.find(tx);
    auto file_it = files_.find(file);
    if (tx_it == txs_.end() || file_it == files_.end()) {
      return NotFoundError("no such transaction or file");
    }
    if (file_it->second.writer_tx != tx) {
      return LockedError("file not write-locked by this transaction");
    }
    if (page >= file_it->second.pages.size()) {
      return InvalidArgumentError("page index out of range");
    }
    bno = file_it->second.pages[page];
  }

  // Undo-log the old contents durably, then update in place. The log write is what a crash
  // pays for later (claim C5).
  ASSIGN_OR_RETURN(std::vector<uint8_t> old_data, blocks_->Read(bno));
  ASSIGN_OR_RETURN(BlockNo log_block, blocks_->AllocWrite(EncodeUndo(file, page, old_data)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto tx_it = txs_.find(tx);
    if (tx_it == txs_.end()) {
      (void)blocks_->Free(log_block);
      return NotFoundError("transaction vanished");
    }
    UndoRecord rec;
    rec.file = file;
    rec.page = page;
    rec.old_data = std::move(old_data);
    rec.log_block = log_block;
    tx_it->second.undo.push_back(std::move(rec));
    log_blocks_[log_block] = {file, page};
  }
  return blocks_->Write(bno, data);
}

void LockingFileServer::ReleaseLocksLocked(uint64_t tx_id, TxState* tx) {
  for (uint64_t file : tx->write_locks) {
    auto it = files_.find(file);
    if (it != files_.end() && it->second.writer_tx == tx_id) {
      it->second.writer_tx = 0;
    }
  }
  for (uint64_t file : tx->read_locks) {
    auto it = files_.find(file);
    if (it != files_.end()) {
      auto& readers = it->second.reader_txs;
      auto pos = std::find(readers.begin(), readers.end(), tx_id);
      if (pos != readers.end()) {
        readers.erase(pos);
        --it->second.readers;
      }
    }
  }
  lock_cv_.notify_all();
}

Status LockingFileServer::Commit(uint64_t tx) {
  std::vector<BlockNo> log_blocks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txs_.find(tx);
    if (it == txs_.end()) {
      return NotFoundError("no such transaction");
    }
    for (const UndoRecord& rec : it->second.undo) {
      log_blocks.push_back(rec.log_block);
      log_blocks_.erase(rec.log_block);
    }
    ReleaseLocksLocked(tx, &it->second);
    txs_.erase(it);
  }
  for (BlockNo bno : log_blocks) {
    (void)blocks_->Free(bno);
  }
  return OkStatus();
}

Status LockingFileServer::RollbackLocked(TxState* tx) {
  // Newest record first: in-place writes are undone in reverse order.
  for (auto it = tx->undo.rbegin(); it != tx->undo.rend(); ++it) {
    auto file_it = files_.find(it->file);
    if (file_it == files_.end() || it->page >= file_it->second.pages.size()) {
      continue;
    }
    RETURN_IF_ERROR(blocks_->Write(file_it->second.pages[it->page], it->old_data));
    (void)blocks_->Free(it->log_block);
    log_blocks_.erase(it->log_block);
  }
  tx->undo.clear();
  return OkStatus();
}

Status LockingFileServer::Abort(uint64_t tx) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txs_.find(tx);
  if (it == txs_.end()) {
    return OkStatus();
  }
  Status st = RollbackLocked(&it->second);
  ReleaseLocksLocked(tx, &it->second);
  txs_.erase(it);
  return st;
}

void LockingFileServer::OnRestart() {
  // "A client crash can cause parts of the file system to be inaccessible for some time,
  // for instance, because a rollback operation must be done first" — the same holds for a
  // server crash here: every surviving undo record is rolled back before the port goes
  // live. (The log directory stands in for a superblock read.)
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t rollbacks = 0;
  for (const auto& [log_block, target] : log_blocks_) {
    auto payload = blocks_->Read(log_block);
    if (!payload.ok()) {
      continue;
    }
    WireDecoder dec(*payload);
    auto file = dec.GetU64();
    auto page = dec.GetU32();
    auto old_data = dec.GetBytes();
    if (!file.ok() || !page.ok() || !old_data.ok()) {
      continue;
    }
    auto file_it = files_.find(*file);
    if (file_it == files_.end() || *page >= file_it->second.pages.size()) {
      continue;
    }
    (void)blocks_->Write(file_it->second.pages[*page], *old_data);
    (void)blocks_->Free(log_block);
    ++rollbacks;
  }
  log_blocks_.clear();
  // Locks die with the process; transactions are gone.
  for (auto& [id, fs] : files_) {
    (void)id;
    fs.writer_tx = 0;
    fs.readers = 0;
    fs.reader_txs.clear();
  }
  txs_.clear();
  last_recovery_rollbacks_ = rollbacks;
}

uint64_t LockingFileServer::last_recovery_rollbacks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_recovery_rollbacks_;
}

uint64_t LockingFileServer::lock_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lock_waits_;
}

// ---------------------------------------------------------------------------
// RPC surface
// ---------------------------------------------------------------------------

Result<Message> LockingFileServer::Handle(const Message& m) {
  WireDecoder in(m.payload);
  switch (static_cast<LockOp>(m.opcode)) {
    case LockOp::kCreateFile: {
      ASSIGN_OR_RETURN(uint32_t npages, in.GetU32());
      ASSIGN_OR_RETURN(uint64_t id, CreateFile(npages));
      WireEncoder out;
      out.PutU64(id);
      return OkReply(m.opcode, std::move(out));
    }
    case LockOp::kBegin: {
      ASSIGN_OR_RETURN(Port owner, in.GetU64());
      ASSIGN_OR_RETURN(uint64_t id, Begin(owner));
      WireEncoder out;
      out.PutU64(id);
      return OkReply(m.opcode, std::move(out));
    }
    case LockOp::kOpenFile: {
      ASSIGN_OR_RETURN(uint64_t tx, in.GetU64());
      ASSIGN_OR_RETURN(uint64_t file, in.GetU64());
      ASSIGN_OR_RETURN(uint8_t write_mode, in.GetU8());
      RETURN_IF_ERROR(OpenFile(tx, file, write_mode != 0));
      return OkReply(m.opcode);
    }
    case LockOp::kRead: {
      ASSIGN_OR_RETURN(uint64_t tx, in.GetU64());
      ASSIGN_OR_RETURN(uint64_t file, in.GetU64());
      ASSIGN_OR_RETURN(uint32_t page, in.GetU32());
      ASSIGN_OR_RETURN(std::vector<uint8_t> data, Read(tx, file, page));
      WireEncoder out;
      out.PutBytes(data);
      return OkReply(m.opcode, std::move(out));
    }
    case LockOp::kWrite: {
      ASSIGN_OR_RETURN(uint64_t tx, in.GetU64());
      ASSIGN_OR_RETURN(uint64_t file, in.GetU64());
      ASSIGN_OR_RETURN(uint32_t page, in.GetU32());
      ASSIGN_OR_RETURN(std::vector<uint8_t> data, in.GetBytes());
      RETURN_IF_ERROR(Write(tx, file, page, data));
      return OkReply(m.opcode);
    }
    case LockOp::kCommit: {
      ASSIGN_OR_RETURN(uint64_t tx, in.GetU64());
      RETURN_IF_ERROR(Commit(tx));
      return OkReply(m.opcode);
    }
    case LockOp::kAbort: {
      ASSIGN_OR_RETURN(uint64_t tx, in.GetU64());
      RETURN_IF_ERROR(Abort(tx));
      return OkReply(m.opcode);
    }
  }
  return InvalidArgumentError("unknown locking server opcode");
}

}  // namespace afs
