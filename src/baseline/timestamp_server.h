// TimestampFileServer: SWALLOW-style comparator (paper §3, [Reed78]'s pseudo-time).
//
// Every transaction receives a timestamp at Begin; every page carries the largest read and
// write timestamps that have touched it. Basic timestamp ordering:
//   * Read by T:  rejected (kConflict) if ts(T) < write_ts(page) — T arrived too late;
//     otherwise read_ts(page) = max(read_ts, ts(T)).
//   * Write by T: rejected if ts(T) < read_ts(page) or ts(T) < write_ts(page); writes are
//     buffered until commit (versions in pseudo-time), then applied atomically.
// No locks, no deadlocks, but late transactions abort even without true contention — the
// behaviour the C1 benchmark contrasts against OCC and locking.

#ifndef SRC_BASELINE_TIMESTAMP_SERVER_H_
#define SRC_BASELINE_TIMESTAMP_SERVER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/block/block_store.h"
#include "src/rpc/service.h"

namespace afs {

enum class TsOp : uint32_t {
  kCreateFile = 1,  // (u32 npages) -> (u64 file_id)
  kBegin = 2,       // () -> (u64 tx)
  kRead = 3,        // (u64 tx, u64 file, u32 page) -> (bytes)
  kWrite = 4,       // (u64 tx, u64 file, u32 page, bytes) -> ()
  kCommit = 5,      // (u64 tx) -> ()
  kAbort = 6,       // (u64 tx) -> ()
};

class TimestampFileServer : public Service {
 public:
  TimestampFileServer(Network* network, std::string name, BlockStore* blocks);

  Result<uint64_t> CreateFile(uint32_t npages);
  Result<uint64_t> Begin();
  Result<std::vector<uint8_t>> Read(uint64_t tx, uint64_t file, uint32_t page);
  Status Write(uint64_t tx, uint64_t file, uint32_t page, std::span<const uint8_t> data);
  Status Commit(uint64_t tx);
  Status Abort(uint64_t tx);

  uint64_t timestamp_aborts() const;

 protected:
  Result<Message> Handle(const Message& request) override;

 private:
  struct PageState {
    BlockNo block = kMaxBlockNo;
    uint64_t read_ts = 0;
    uint64_t write_ts = 0;
  };
  struct TxState {
    uint64_t ts = 0;
    // Buffered writes: (file, page) -> data, applied at commit in pseudo-time order.
    std::map<std::pair<uint64_t, uint32_t>, std::vector<uint8_t>> writes;
  };

  BlockStore* blocks_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::vector<PageState>> files_;
  std::unordered_map<uint64_t, TxState> txs_;
  uint64_t next_id_ = 1;
  uint64_t clock_ = 1;
  uint64_t ts_aborts_ = 0;
};

}  // namespace afs

#endif  // SRC_BASELINE_TIMESTAMP_SERVER_H_
