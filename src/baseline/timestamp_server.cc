#include "src/baseline/timestamp_server.h"

#include "src/base/wire.h"
#include "src/rpc/client.h"

namespace afs {

TimestampFileServer::TimestampFileServer(Network* network, std::string name,
                                         BlockStore* blocks)
    : Service(network, std::move(name)), blocks_(blocks) {}

Result<uint64_t> TimestampFileServer::CreateFile(uint32_t npages) {
  std::vector<PageState> pages(npages);
  for (PageState& page : pages) {
    ASSIGN_OR_RETURN(page.block, blocks_->AllocWrite({}));
  }
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  files_[id] = std::move(pages);
  return id;
}

Result<uint64_t> TimestampFileServer::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  txs_[id].ts = clock_++;
  return id;
}

Result<std::vector<uint8_t>> TimestampFileServer::Read(uint64_t tx, uint64_t file,
                                                       uint32_t page) {
  BlockNo bno;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto tx_it = txs_.find(tx);
    auto file_it = files_.find(file);
    if (tx_it == txs_.end() || file_it == files_.end()) {
      return NotFoundError("no such transaction or file");
    }
    if (page >= file_it->second.size()) {
      return InvalidArgumentError("page index out of range");
    }
    // Serve the transaction's own buffered write first (read-your-writes).
    auto own = tx_it->second.writes.find({file, page});
    if (own != tx_it->second.writes.end()) {
      return own->second;
    }
    PageState& ps = file_it->second[page];
    if (tx_it->second.ts < ps.write_ts) {
      ++ts_aborts_;
      txs_.erase(tx_it);
      return ConflictError("read arrived after a later write (timestamp order)");
    }
    ps.read_ts = std::max(ps.read_ts, tx_it->second.ts);
    bno = ps.block;
  }
  return blocks_->Read(bno);
}

Status TimestampFileServer::Write(uint64_t tx, uint64_t file, uint32_t page,
                                  std::span<const uint8_t> data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto tx_it = txs_.find(tx);
  auto file_it = files_.find(file);
  if (tx_it == txs_.end() || file_it == files_.end()) {
    return NotFoundError("no such transaction or file");
  }
  if (page >= file_it->second.size()) {
    return InvalidArgumentError("page index out of range");
  }
  PageState& ps = file_it->second[page];
  if (tx_it->second.ts < ps.read_ts || tx_it->second.ts < ps.write_ts) {
    ++ts_aborts_;
    txs_.erase(tx_it);
    return ConflictError("write arrived too late (timestamp order)");
  }
  tx_it->second.writes[{file, page}] = std::vector<uint8_t>(data.begin(), data.end());
  return OkStatus();
}

Status TimestampFileServer::Commit(uint64_t tx) {
  TxState state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txs_.find(tx);
    if (it == txs_.end()) {
      return ConflictError("transaction was aborted by timestamp order");
    }
    state = std::move(it->second);
    txs_.erase(it);
    // Final validation + stamp under the lock; block writes happen after.
    for (const auto& [key, data] : state.writes) {
      (void)data;
      auto file_it = files_.find(key.first);
      if (file_it == files_.end()) {
        return NotFoundError("file vanished");
      }
      PageState& ps = file_it->second[key.second];
      if (state.ts < ps.read_ts || state.ts < ps.write_ts) {
        ++ts_aborts_;
        return ConflictError("commit-time timestamp conflict");
      }
    }
    for (const auto& [key, data] : state.writes) {
      (void)data;
      files_[key.first][key.second].write_ts = state.ts;
    }
  }
  for (const auto& [key, data] : state.writes) {
    BlockNo bno;
    {
      std::lock_guard<std::mutex> lock(mu_);
      bno = files_[key.first][key.second].block;
    }
    RETURN_IF_ERROR(blocks_->Write(bno, data));
  }
  return OkStatus();
}

Status TimestampFileServer::Abort(uint64_t tx) {
  std::lock_guard<std::mutex> lock(mu_);
  txs_.erase(tx);
  return OkStatus();
}

uint64_t TimestampFileServer::timestamp_aborts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ts_aborts_;
}

Result<Message> TimestampFileServer::Handle(const Message& m) {
  WireDecoder in(m.payload);
  switch (static_cast<TsOp>(m.opcode)) {
    case TsOp::kCreateFile: {
      ASSIGN_OR_RETURN(uint32_t npages, in.GetU32());
      ASSIGN_OR_RETURN(uint64_t id, CreateFile(npages));
      WireEncoder out;
      out.PutU64(id);
      return OkReply(m.opcode, std::move(out));
    }
    case TsOp::kBegin: {
      ASSIGN_OR_RETURN(uint64_t id, Begin());
      WireEncoder out;
      out.PutU64(id);
      return OkReply(m.opcode, std::move(out));
    }
    case TsOp::kRead: {
      ASSIGN_OR_RETURN(uint64_t tx, in.GetU64());
      ASSIGN_OR_RETURN(uint64_t file, in.GetU64());
      ASSIGN_OR_RETURN(uint32_t page, in.GetU32());
      ASSIGN_OR_RETURN(std::vector<uint8_t> data, Read(tx, file, page));
      WireEncoder out;
      out.PutBytes(data);
      return OkReply(m.opcode, std::move(out));
    }
    case TsOp::kWrite: {
      ASSIGN_OR_RETURN(uint64_t tx, in.GetU64());
      ASSIGN_OR_RETURN(uint64_t file, in.GetU64());
      ASSIGN_OR_RETURN(uint32_t page, in.GetU32());
      ASSIGN_OR_RETURN(std::vector<uint8_t> data, in.GetBytes());
      RETURN_IF_ERROR(Write(tx, file, page, data));
      return OkReply(m.opcode);
    }
    case TsOp::kCommit: {
      ASSIGN_OR_RETURN(uint64_t tx, in.GetU64());
      RETURN_IF_ERROR(Commit(tx));
      return OkReply(m.opcode);
    }
    case TsOp::kAbort: {
      ASSIGN_OR_RETURN(uint64_t tx, in.GetU64());
      RETURN_IF_ERROR(Abort(tx));
      return OkReply(m.opcode);
    }
  }
  return InvalidArgumentError("unknown timestamp server opcode");
}

}  // namespace afs
