// LockingFileServer: the comparator the paper positions itself against (§3, §3.1) — a
// FELIX/XDFS-style file server with file-level two-phase locking, in-place updates, and a
// persistent undo log for crash recovery.
//
// Contrast points reproduced:
//   * Concurrency: one writer (or many readers) per file; disjoint updates of the *same*
//     file serialize behind the lock, where AFS's optimistic scheme lets them run (§6's
//     airline example). Claim C1.
//   * Recovery: a crash leaves in-place half-updates; on restart the server must roll back
//     every uncommitted transaction from its persisted undo log and clear locks before
//     serving ("Most systems that use locking need elaborate mechanisms to restore the
//     system after a crash", §5.3). AFS needs none. Claim C5.
//
// Files are flat arrays of pages; each page lives in its own block. Writes are performed
// in place after appending (old page contents) to a durable per-transaction undo log.

#ifndef SRC_BASELINE_LOCKING_SERVER_H_
#define SRC_BASELINE_LOCKING_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/block/block_store.h"
#include "src/rpc/service.h"

namespace afs {

enum class LockOp : uint32_t {
  // CreateFile: (u32 npages) -> (u64 file_id)
  kCreateFile = 1,
  // Begin: (u64 owner_port) -> (u64 tx_id)
  kBegin = 2,
  // OpenFile: (u64 tx, u64 file, u8 write_mode) -> ()   two-phase lock acquisition;
  //   kLocked if the lock cannot be granted within the wait budget.
  kOpenFile = 3,
  // Read: (u64 tx, u64 file, u32 page) -> (bytes)
  kRead = 4,
  // Write: (u64 tx, u64 file, u32 page, bytes) -> ()    undo-logged, then in place
  kWrite = 5,
  // Commit: (u64 tx) -> ()                               truncate log, release locks
  kCommit = 6,
  // Abort: (u64 tx) -> ()                                roll back from log, release locks
  kAbort = 7,
};

class LockingFileServer : public Service {
 public:
  LockingFileServer(Network* network, std::string name, BlockStore* blocks,
                    uint64_t seed = 17);

  // Direct API (same operations as the RPC surface).
  Result<uint64_t> CreateFile(uint32_t npages);
  Result<uint64_t> Begin(Port owner);
  Status OpenFile(uint64_t tx, uint64_t file, bool write_mode);
  Result<std::vector<uint8_t>> Read(uint64_t tx, uint64_t file, uint32_t page);
  Status Write(uint64_t tx, uint64_t file, uint32_t page, std::span<const uint8_t> data);
  Status Commit(uint64_t tx);
  Status Abort(uint64_t tx);

  // Restart cost, for claim C5: undo records rolled back during the last OnRestart().
  uint64_t last_recovery_rollbacks() const;
  uint64_t lock_waits() const;

 protected:
  Result<Message> Handle(const Message& request) override;

  // Crash recovery: scan the persisted undo logs, roll every uncommitted transaction back
  // (newest record first), then clear the logs. The file system is unavailable meanwhile —
  // exactly the weakness §3.1 calls out.
  void OnRestart() override;

 private:
  struct FileState {
    std::vector<BlockNo> pages;
    // File-level reader/writer lock.
    int readers = 0;
    uint64_t writer_tx = 0;
    std::vector<uint64_t> reader_txs;
  };
  struct UndoRecord {
    uint64_t file = 0;
    uint32_t page = 0;
    std::vector<uint8_t> old_data;
    BlockNo log_block = kMaxBlockNo;  // durable copy of this record
  };
  struct TxState {
    Port owner = kNullPort;
    std::vector<uint64_t> read_locks;
    std::vector<uint64_t> write_locks;
    std::vector<UndoRecord> undo;
  };

  Status PersistLogDirectoryLocked();
  Status RollbackLocked(TxState* tx);
  void ReleaseLocksLocked(uint64_t tx_id, TxState* tx);

  BlockStore* blocks_;
  Rng rng_;

  mutable std::mutex mu_;
  std::condition_variable lock_cv_;
  std::map<uint64_t, FileState> files_;
  std::unordered_map<uint64_t, TxState> txs_;
  uint64_t next_id_ = 1;
  // Durable directory of active undo-log blocks: block -> (file, page). Rebuilt into
  // rollback work at restart.
  BlockNo log_dir_block_ = kMaxBlockNo;
  std::map<BlockNo, std::pair<uint64_t, uint32_t>> log_blocks_;
  uint64_t last_recovery_rollbacks_ = 0;
  uint64_t lock_waits_ = 0;
};

}  // namespace afs

#endif  // SRC_BASELINE_LOCKING_SERVER_H_
