#include "src/flatfs/flat_file.h"

#include <algorithm>

#include "src/base/wire.h"
#include "src/client/transaction.h"

namespace afs {
namespace {

constexpr uint64_t kMetaMagic = 0xf1a7f11eull;

uint32_t ExtentOf(uint64_t offset) {
  return static_cast<uint32_t>(offset / FlatFileClient::kExtentBytes);
}

}  // namespace

std::vector<uint8_t> FlatFileClient::EncodeMeta(const Meta& meta) {
  WireEncoder enc;
  enc.PutU64(kMetaMagic);
  enc.PutU64(meta.size);
  return std::move(enc).Take();
}

Result<FlatFileClient::Meta> FlatFileClient::DecodeMeta(std::span<const uint8_t> data) {
  if (data.empty()) {
    return Meta{};  // freshly created: zero length
  }
  WireDecoder dec(data);
  ASSIGN_OR_RETURN(uint64_t magic, dec.GetU64());
  if (magic != kMetaMagic) {
    return CorruptError("not a flat file (metadata magic mismatch)");
  }
  Meta meta;
  ASSIGN_OR_RETURN(meta.size, dec.GetU64());
  return meta;
}

Result<Capability> FlatFileClient::Create() {
  ASSIGN_OR_RETURN(Capability file, files_->CreateFile());
  auto stats = RunTransaction(files_, file, [](FileClient& c, const Capability& v) {
    return c.WritePage(v, PagePath::Root(), EncodeMeta(Meta{}));
  });
  RETURN_IF_ERROR(stats.status());
  return file;
}

Result<uint64_t> FlatFileClient::Size(const Capability& file) {
  ASSIGN_OR_RETURN(Capability current, files_->GetCurrentVersion(file));
  ASSIGN_OR_RETURN(FileClient::ReadResult root, files_->ReadPage(current, PagePath::Root()));
  ASSIGN_OR_RETURN(Meta meta, DecodeMeta(root.data));
  return meta.size;
}

Result<std::vector<uint8_t>> FlatFileClient::ReadAt(const Capability& file, uint64_t offset,
                                                    size_t length) {
  ASSIGN_OR_RETURN(Capability current, files_->GetCurrentVersion(file));
  ASSIGN_OR_RETURN(FileClient::ReadResult root, files_->ReadPage(current, PagePath::Root()));
  ASSIGN_OR_RETURN(Meta meta, DecodeMeta(root.data));
  if (offset >= meta.size) {
    return std::vector<uint8_t>{};
  }
  length = static_cast<size_t>(std::min<uint64_t>(length, meta.size - offset));
  std::vector<uint8_t> out(length, 0);

  uint64_t pos = offset;
  while (pos < offset + length) {
    uint32_t extent = ExtentOf(pos);
    uint64_t extent_start = static_cast<uint64_t>(extent) * kExtentBytes;
    size_t in_page = static_cast<size_t>(pos - extent_start);
    size_t take = std::min<size_t>(kExtentBytes - in_page, offset + length - pos);
    auto page = files_->ReadPage(current, PagePath({extent}));
    if (page.ok()) {
      size_t available = page->data.size() > in_page ? page->data.size() - in_page : 0;
      size_t copy = std::min(take, available);
      std::copy_n(page->data.begin() + in_page, copy, out.begin() + (pos - offset));
    } else if (page.status().code() != ErrorCode::kNotFound) {
      return page.status();  // holes read as zeros; real errors propagate
    }
    pos += take;
  }
  return out;
}

Status FlatFileClient::Mutate(const Capability& file, uint64_t offset,
                              std::span<const uint8_t> data, bool truncate,
                              uint64_t truncate_size) {
  auto stats = RunTransaction(
      files_, file, [&](FileClient& c, const Capability& v) -> Status {
        ASSIGN_OR_RETURN(FileClient::ReadResult root, c.ReadPage(v, PagePath::Root()));
        ASSIGN_OR_RETURN(Meta meta, DecodeMeta(root.data));
        uint32_t nrefs = root.nrefs;

        uint64_t new_size = meta.size;
        if (truncate) {
          new_size = truncate_size;
        } else if (!data.empty()) {
          new_size = std::max<uint64_t>(meta.size, offset + data.size());
        }

        if (truncate && new_size < meta.size) {
          // Shrink: drop whole extents past the new end and zero the tail of the last one,
          // so a later extension cannot resurrect stale bytes.
          uint32_t keep_extents =
              new_size == 0 ? 0 : ExtentOf(new_size - 1) + 1;
          for (uint32_t extent = nrefs; extent-- > keep_extents;) {
            RETURN_IF_ERROR(c.RemoveRef(v, PagePath::Root(), extent));
          }
          nrefs = std::min(nrefs, keep_extents);
          size_t tail = static_cast<size_t>(new_size % kExtentBytes);
          if (tail != 0 && keep_extents > 0 && keep_extents <= nrefs) {
            uint32_t last = keep_extents - 1;
            auto page = c.ReadPage(v, PagePath({last}));
            if (page.ok() && page->data.size() > tail) {
              page->data.resize(tail);
              RETURN_IF_ERROR(c.WritePage(v, PagePath({last}), page->data));
            }
          }
        }

        // Ensure reference slots exist up to the last touched extent (holes, not pages:
        // untouched gaps cost nothing and read as zeros).
        uint64_t last_needed = 0;
        if (!data.empty()) {
          last_needed = offset + data.size() - 1;
        } else if (new_size > 0) {
          last_needed = new_size - 1;
        }
        if (new_size > 0) {
          for (uint32_t extent = nrefs; extent <= ExtentOf(last_needed); ++extent) {
            RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), extent));
          }
        }

        // Write the data, extent by extent. Aligned full-extent writes are blind (no read),
        // which the optimistic machinery rewards; partial writes read-modify-write.
        uint64_t pos = offset;
        while (pos < offset + data.size()) {
          uint32_t extent = ExtentOf(pos);
          uint64_t extent_start = static_cast<uint64_t>(extent) * kExtentBytes;
          size_t in_page = static_cast<size_t>(pos - extent_start);
          size_t take = std::min<size_t>(kExtentBytes - in_page, offset + data.size() - pos);
          std::vector<uint8_t> page_data;
          if (in_page == 0 && take == kExtentBytes) {
            page_data.assign(data.begin() + (pos - offset),
                             data.begin() + (pos - offset) + take);
          } else {
            auto existing = c.ReadPage(v, PagePath({extent}));
            if (existing.ok()) {
              page_data = std::move(existing->data);
            } else if (existing.status().code() != ErrorCode::kNotFound) {
              return existing.status();
            }
            if (page_data.size() < in_page + take) {
              page_data.resize(in_page + take, 0);
            }
            std::copy_n(data.begin() + (pos - offset), take, page_data.begin() + in_page);
          }
          RETURN_IF_ERROR(c.WritePage(v, PagePath({extent}), page_data));
          pos += take;
        }

        if (new_size != meta.size || truncate) {
          RETURN_IF_ERROR(c.WritePage(v, PagePath::Root(), EncodeMeta(Meta{new_size})));
        }
        return OkStatus();
      });
  return stats.status();
}

Status FlatFileClient::WriteAt(const Capability& file, uint64_t offset,
                               std::span<const uint8_t> data) {
  if (data.empty()) {
    return OkStatus();
  }
  return Mutate(file, offset, data, /*truncate=*/false, 0);
}

Result<uint64_t> FlatFileClient::Append(const Capability& file,
                                        std::span<const uint8_t> data) {
  // The size read and the write happen inside ONE transaction, so concurrent appends
  // serialise (each sees the size the previous one committed).
  uint64_t landed = 0;
  auto stats = RunTransaction(
      files_, file, [&](FileClient& c, const Capability& v) -> Status {
        ASSIGN_OR_RETURN(FileClient::ReadResult root, c.ReadPage(v, PagePath::Root()));
        ASSIGN_OR_RETURN(Meta meta, DecodeMeta(root.data));
        landed = meta.size;
        uint64_t end = meta.size + data.size();
        uint32_t nrefs = root.nrefs;
        if (end > 0) {
          for (uint32_t extent = nrefs; extent <= ExtentOf(end - 1); ++extent) {
            RETURN_IF_ERROR(c.InsertRef(v, PagePath::Root(), extent));
          }
        }
        uint64_t pos = meta.size;
        while (pos < end) {
          uint32_t extent = ExtentOf(pos);
          uint64_t extent_start = static_cast<uint64_t>(extent) * kExtentBytes;
          size_t in_page = static_cast<size_t>(pos - extent_start);
          size_t take = std::min<size_t>(kExtentBytes - in_page, end - pos);
          std::vector<uint8_t> page_data;
          if (in_page != 0) {
            auto existing = c.ReadPage(v, PagePath({extent}));
            if (existing.ok()) {
              page_data = std::move(existing->data);
            }
            page_data.resize(in_page, 0);
          }
          page_data.insert(page_data.end(), data.begin() + (pos - meta.size),
                           data.begin() + (pos - meta.size) + take);
          RETURN_IF_ERROR(c.WritePage(v, PagePath({extent}), page_data));
          pos += take;
        }
        return c.WritePage(v, PagePath::Root(), EncodeMeta(Meta{end}));
      });
  RETURN_IF_ERROR(stats.status());
  return landed;
}

Status FlatFileClient::Truncate(const Capability& file, uint64_t new_size) {
  return Mutate(file, 0, {}, /*truncate=*/true, new_size);
}

Status FlatFileClient::WriteAll(const Capability& file, std::string_view contents) {
  RETURN_IF_ERROR(Truncate(file, 0));
  return WriteAt(file, 0,
                 std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(contents.data()),
                                          contents.size()));
}

Result<std::string> FlatFileClient::ReadAll(const Capability& file) {
  ASSIGN_OR_RETURN(uint64_t size, Size(file));
  ASSIGN_OR_RETURN(std::vector<uint8_t> data, ReadAt(file, 0, static_cast<size_t>(size)));
  return std::string(data.begin(), data.end());
}

}  // namespace afs
