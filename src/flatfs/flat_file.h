// FlatFileClient: ordinary linear (byte-stream) files on top of the Amoeba File Service —
// the "flat file server" of the paper's storage hierarchy (Figure 1), and the service the
// §2 compiler user wants: "a temporary file that can be quickly accessed and changed".
//
// A flat file is one AFS file whose root data holds the byte length and whose children are
// fixed-size extent pages: byte offset o lives in page o / kExtentBytes. Reads and writes
// at arbitrary offsets become page reads/writes; every mutation is one atomic AFS
// transaction, so concurrent writers of one flat file are serialised by the optimistic
// machinery underneath (writers of disjoint extents merge; overlapping writers redo).
// This layer demonstrates what §5's client-controlled trees are FOR: it decides the shape
// (a flat array of extents) and the file service neither knows nor cares.

#ifndef SRC_FLATFS_FLAT_FILE_H_
#define SRC_FLATFS_FLAT_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/client/file_client.h"

namespace afs {

class FlatFileClient {
 public:
  // Bytes per extent page. Must leave room in a 32K page; 8 KiB keeps trees shallow while
  // exercising multi-page operations in tests.
  static constexpr size_t kExtentBytes = 8192;

  explicit FlatFileClient(FileClient* files) : files_(files) {}

  // Create an empty flat file; the returned capability is an ordinary AFS file capability.
  Result<Capability> Create();

  // Current length in bytes.
  Result<uint64_t> Size(const Capability& file);

  // Read up to `length` bytes at `offset` from the current committed state. Short reads
  // happen only at end-of-file.
  Result<std::vector<uint8_t>> ReadAt(const Capability& file, uint64_t offset, size_t length);

  // Atomically write `data` at `offset`, extending the file (zero-filling any gap) if the
  // write lies past the end.
  Status WriteAt(const Capability& file, uint64_t offset, std::span<const uint8_t> data);

  // Atomically append; returns the offset the data landed at.
  Result<uint64_t> Append(const Capability& file, std::span<const uint8_t> data);

  // Atomically truncate (or extend with zeros) to `new_size` bytes.
  Status Truncate(const Capability& file, uint64_t new_size);

  // Whole-file convenience helpers.
  Status WriteAll(const Capability& file, std::string_view contents);
  Result<std::string> ReadAll(const Capability& file);

 private:
  struct Meta {
    uint64_t size = 0;
  };
  static std::vector<uint8_t> EncodeMeta(const Meta& meta);
  static Result<Meta> DecodeMeta(std::span<const uint8_t> data);

  // Performs one transactional mutation of [offset, offset+len) plus the size field.
  Status Mutate(const Capability& file, uint64_t offset, std::span<const uint8_t> data,
                bool truncate, uint64_t truncate_size);

  FileClient* files_;
};

}  // namespace afs

#endif  // SRC_FLATFS_FLAT_FILE_H_
