#include "src/obs/span.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace afs {
namespace obs {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// One ring slot. Every field is a relaxed atomic word so concurrent writers/readers are
// race-free at the language level; the seq word (odd while a write is in progress, derived
// from the writer's global index otherwise) lets readers detect torn or in-progress slots.
// Layout: [0]=trace [1]=span [2]=parent [3]=start [4]=end [5]=a [6]=b
//         [7]=kind | status<<8 | thread_id<<32   [8..10]=name bytes
constexpr size_t kSlotWords = 11;

struct Slot {
  std::atomic<uint64_t> seq{0};  // 0 = never written
  std::atomic<uint64_t> f[kSlotWords];
};

struct SlowDump {
  uint64_t duration_ns;
  std::string text;
};
constexpr size_t kSlowLogCapacity = 32;

struct SpanState {
  Slot* ring;  // kSpanRingCapacity slots
  std::atomic<uint64_t> next_slot{0};
  std::atomic<uint64_t> next_trace_id{1};
  std::atomic<uint64_t> next_span_id{1};
  std::atomic<uint32_t> next_thread_id{1};
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> slow_threshold_ns{0};

  std::mutex slow_mu;
  std::deque<SlowDump> slow;  // newest last

  SpanState() { ring = new Slot[kSpanRingCapacity]; }
};

SpanState& State() {
  static SpanState* state = new SpanState;  // leaked: outlives every thread
  return *state;
}

uint32_t LocalThreadId() {
  thread_local uint32_t id = State().next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local SpanContext t_current;

void EncodeSlot(Slot* slot, const Span& span, uint64_t writer_index) {
  // Odd seq marks the write in progress; the final seq is unique per writer index so a
  // reader that raced a wrap-around overwrite sees a changed seq and discards its copy.
  slot->seq.store(writer_index * 2 + 1, std::memory_order_release);
  slot->f[0].store(span.trace_id, std::memory_order_relaxed);
  slot->f[1].store(span.span_id, std::memory_order_relaxed);
  slot->f[2].store(span.parent_span_id, std::memory_order_relaxed);
  slot->f[3].store(span.start_ns, std::memory_order_relaxed);
  slot->f[4].store(span.end_ns, std::memory_order_relaxed);
  slot->f[5].store(span.a, std::memory_order_relaxed);
  slot->f[6].store(span.b, std::memory_order_relaxed);
  slot->f[7].store(static_cast<uint64_t>(span.kind) |
                       (static_cast<uint64_t>(span.status) << 8) |
                       (static_cast<uint64_t>(span.thread_id) << 32),
                   std::memory_order_relaxed);
  uint64_t name_words[3] = {0, 0, 0};
  std::memcpy(name_words, span.name, kSpanNameBytes);
  slot->f[8].store(name_words[0], std::memory_order_relaxed);
  slot->f[9].store(name_words[1], std::memory_order_relaxed);
  slot->f[10].store(name_words[2], std::memory_order_relaxed);
  slot->seq.store(writer_index * 2 + 2, std::memory_order_release);
}

bool DecodeSlot(const Slot& slot, Span* out) {
  const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
  if (seq_before == 0 || (seq_before & 1) != 0) {
    return false;  // empty, or a write is in progress
  }
  Span span;
  span.trace_id = slot.f[0].load(std::memory_order_relaxed);
  span.span_id = slot.f[1].load(std::memory_order_relaxed);
  span.parent_span_id = slot.f[2].load(std::memory_order_relaxed);
  span.start_ns = slot.f[3].load(std::memory_order_relaxed);
  span.end_ns = slot.f[4].load(std::memory_order_relaxed);
  span.a = slot.f[5].load(std::memory_order_relaxed);
  span.b = slot.f[6].load(std::memory_order_relaxed);
  const uint64_t meta = slot.f[7].load(std::memory_order_relaxed);
  span.kind = static_cast<SpanKind>(meta & 0xff);
  span.status = static_cast<uint8_t>((meta >> 8) & 0xff);
  span.thread_id = static_cast<uint32_t>(meta >> 32);
  uint64_t name_words[3];
  name_words[0] = slot.f[8].load(std::memory_order_relaxed);
  name_words[1] = slot.f[9].load(std::memory_order_relaxed);
  name_words[2] = slot.f[10].load(std::memory_order_relaxed);
  std::memcpy(span.name, name_words, kSpanNameBytes);
  span.name[kSpanNameBytes - 1] = '\0';
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != seq_before || span.trace_id == 0) {
    return false;  // torn by a concurrent overwrite
  }
  *out = span;
  return true;
}

void MaybeLogSlowTrace(const Span& root) {
  SpanState& s = State();
  const uint64_t threshold = s.slow_threshold_ns.load(std::memory_order_relaxed);
  if (threshold == 0 || root.parent_span_id != 0 || root.duration_ns() < threshold) {
    return;
  }
  // The root ended last (RAII), so its whole tree is already in the ring; render it now,
  // before later traffic can evict the children.
  std::string text = FormatSpanTree(root.trace_id);
  std::lock_guard<std::mutex> lock(s.slow_mu);
  s.slow.push_back(SlowDump{root.duration_ns(), std::move(text)});
  while (s.slow.size() > kSlowLogCapacity) {
    s.slow.pop_front();
  }
}

void AppendSpanLine(std::string* out, const Span& span) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "trace=%llu span=%llu parent=%llu %s %s start=%llu dur=%llu status=%u "
                "a=%llu b=%llu t%u\n",
                static_cast<unsigned long long>(span.trace_id),
                static_cast<unsigned long long>(span.span_id),
                static_cast<unsigned long long>(span.parent_span_id), SpanKindName(span.kind),
                span.name, static_cast<unsigned long long>(span.start_ns),
                static_cast<unsigned long long>(span.duration_ns()), span.status,
                static_cast<unsigned long long>(span.a),
                static_cast<unsigned long long>(span.b), span.thread_id);
  *out += line;
}

void FormatSubtree(const std::unordered_map<uint64_t, std::vector<const Span*>>& children,
                   const Span& span, int depth, bool orphan, std::string* out) {
  char line[256];
  std::snprintf(line, sizeof(line), "%*s%s%s %.3fms span=%llu status=%u a=%llu b=%llu\n",
                depth * 2, "", orphan ? "~" : "", span.name,
                static_cast<double>(span.duration_ns()) / 1e6,
                static_cast<unsigned long long>(span.span_id), span.status,
                static_cast<unsigned long long>(span.a),
                static_cast<unsigned long long>(span.b));
  *out += line;
  auto it = children.find(span.span_id);
  if (it == children.end()) {
    return;
  }
  for (const Span* child : it->second) {
    FormatSubtree(children, *child, depth + 1, /*orphan=*/false, out);
  }
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kClient:
      return "client";
    case SpanKind::kServer:
      return "server";
    case SpanKind::kPhase:
      return "phase";
    case SpanKind::kStore:
      return "store";
    case SpanKind::kTier:
      return "tier";
    case SpanKind::kInternal:
      return "internal";
  }
  return "unknown";
}

void SetSpanEnabled(bool enabled) {
  State().enabled.store(enabled, std::memory_order_relaxed);
}

bool SpanEnabled() { return State().enabled.load(std::memory_order_relaxed); }

uint64_t NewTraceId() {
  return State().next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

SpanContext CurrentSpanContext() { return t_current; }

SpanContextScope::SpanContextScope(uint64_t trace_id, uint64_t parent_span_id) {
  if (!SpanEnabled() || trace_id == 0) {
    return;
  }
  saved_ = t_current;
  t_current = SpanContext{trace_id, parent_span_id};
  installed_ = true;
}

SpanContextScope::~SpanContextScope() {
  if (installed_) {
    t_current = saved_;
  }
}

ScopedSpan::ScopedSpan(const char* name, SpanKind kind, uint64_t a, uint64_t b) {
  if (!SpanEnabled()) {
    return;
  }
  SpanState& s = State();
  saved_ = t_current;
  span_.trace_id = saved_.trace_id != 0 ? saved_.trace_id : NewTraceId();
  span_.span_id = s.next_span_id.fetch_add(1, std::memory_order_relaxed);
  span_.parent_span_id = saved_.trace_id != 0 ? saved_.span_id : 0;
  span_.start_ns = NowNs();
  span_.a = a;
  span_.b = b;
  span_.kind = kind;
  span_.thread_id = LocalThreadId();
  std::snprintf(span_.name, sizeof(span_.name), "%s", name);
  t_current = SpanContext{span_.trace_id, span_.span_id};
  active_ = true;
}

void ScopedSpan::End() {
  if (!active_) {
    return;
  }
  active_ = false;
  span_.end_ns = NowNs();
  t_current = saved_;
  RecordSpan(span_);
}

ScopedSpan::~ScopedSpan() { End(); }

void RecordSpan(const Span& span) {
  if (span.trace_id == 0) {
    return;
  }
  SpanState& s = State();
  const uint64_t index = s.next_slot.fetch_add(1, std::memory_order_relaxed);
  EncodeSlot(&s.ring[index % kSpanRingCapacity], span, index + 1);
  MaybeLogSlowTrace(span);
}

std::vector<Span> SnapshotSpans() {
  SpanState& s = State();
  std::vector<Span> out;
  out.reserve(kSpanRingCapacity);
  for (size_t i = 0; i < kSpanRingCapacity; ++i) {
    Span span;
    if (DecodeSlot(s.ring[i], &span)) {
      out.push_back(span);
    }
  }
  return out;
}

std::vector<Span> SpansForTrace(uint64_t trace_id) {
  std::vector<Span> spans = SnapshotSpans();
  spans.erase(std::remove_if(spans.begin(), spans.end(),
                             [&](const Span& s) { return s.trace_id != trace_id; }),
              spans.end());
  std::sort(spans.begin(), spans.end(), [](const Span& x, const Span& y) {
    return x.start_ns != y.start_ns ? x.start_ns < y.start_ns : x.span_id < y.span_id;
  });
  return spans;
}

void ClearSpans() {
  SpanState& s = State();
  for (size_t i = 0; i < kSpanRingCapacity; ++i) {
    s.ring[i].seq.store(0, std::memory_order_relaxed);
  }
  s.next_slot.store(0, std::memory_order_relaxed);
  ClearSlowTraces();
}

std::string DumpSpansText(size_t n) {
  std::vector<Span> spans = SnapshotSpans();
  std::sort(spans.begin(), spans.end(), [](const Span& x, const Span& y) {
    return x.end_ns != y.end_ns ? x.end_ns < y.end_ns : x.span_id < y.span_id;
  });
  if (spans.size() > n) {
    spans.erase(spans.begin(), spans.end() - static_cast<ptrdiff_t>(n));
  }
  std::string out;
  for (const Span& span : spans) {
    AppendSpanLine(&out, span);
  }
  return out;
}

std::string DumpSpansChromeJson(size_t max_events) {
  std::vector<Span> spans = SnapshotSpans();
  std::sort(spans.begin(), spans.end(), [](const Span& x, const Span& y) {
    return x.end_ns != y.end_ns ? x.end_ns < y.end_ns : x.span_id < y.span_id;
  });
  if (spans.size() > max_events) {
    spans.erase(spans.begin(), spans.end() - static_cast<ptrdiff_t>(max_events));
  }
  // Chrome's JSON wants events sorted by timestamp; ts/dur are microseconds.
  std::sort(spans.begin(), spans.end(), [](const Span& x, const Span& y) {
    return x.start_ns != y.start_ns ? x.start_ns < y.start_ns : x.span_id < y.span_id;
  });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[512];
  bool first = true;
  for (const Span& span : spans) {
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":%u,\"args\":{\"trace_id\":%llu,\"span_id\":%llu,"
        "\"parent_span_id\":%llu,\"status\":%u,\"a\":%llu,\"b\":%llu}}",
        first ? "" : ",", span.name, SpanKindName(span.kind),
        static_cast<double>(span.start_ns) / 1e3,
        static_cast<double>(span.duration_ns()) / 1e3, span.thread_id,
        static_cast<unsigned long long>(span.trace_id),
        static_cast<unsigned long long>(span.span_id),
        static_cast<unsigned long long>(span.parent_span_id), span.status,
        static_cast<unsigned long long>(span.a), static_cast<unsigned long long>(span.b));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

std::string FormatSpanTree(uint64_t trace_id) {
  std::vector<Span> spans = SpansForTrace(trace_id);
  std::string out;
  char header[64];
  std::snprintf(header, sizeof(header), "[trace %llu] %zu spans\n",
                static_cast<unsigned long long>(trace_id), spans.size());
  out += header;
  std::unordered_map<uint64_t, std::vector<const Span*>> children;
  std::unordered_map<uint64_t, const Span*> by_id;
  for (const Span& span : spans) {
    by_id[span.span_id] = &span;
  }
  for (const Span& span : spans) {
    if (span.parent_span_id != 0 && by_id.count(span.parent_span_id) > 0) {
      children[span.parent_span_id].push_back(&span);
    }
  }
  for (const Span& span : spans) {  // already start-time sorted
    if (span.parent_span_id == 0) {
      FormatSubtree(children, span, 1, /*orphan=*/false, &out);
    } else if (by_id.count(span.parent_span_id) == 0) {
      // Parent evicted from the ring: show the fragment rather than dropping it.
      FormatSubtree(children, span, 1, /*orphan=*/true, &out);
    }
  }
  return out;
}

void SetSlowTraceThresholdNs(uint64_t ns) {
  State().slow_threshold_ns.store(ns, std::memory_order_relaxed);
}

uint64_t SlowTraceThresholdNs() {
  return State().slow_threshold_ns.load(std::memory_order_relaxed);
}

std::vector<std::string> SlowTraceDumps(size_t n) {
  SpanState& s = State();
  std::lock_guard<std::mutex> lock(s.slow_mu);
  std::vector<std::string> out;
  for (auto it = s.slow.rbegin(); it != s.slow.rend() && out.size() < n; ++it) {
    out.push_back(it->text);
  }
  return out;
}

void ClearSlowTraces() {
  SpanState& s = State();
  std::lock_guard<std::mutex> lock(s.slow_mu);
  s.slow.clear();
}

PhaseBreakdown AnalyzePhases(const std::vector<Span>& spans, std::string_view root_name) {
  PhaseBreakdown out;
  const Span* root = nullptr;
  for (const Span& span : spans) {
    if (root_name == span.name &&
        (root == nullptr || span.duration_ns() > root->duration_ns())) {
      root = &span;
    }
  }
  if (root == nullptr) {
    return out;
  }
  out.found = true;
  out.trace_id = root->trace_id;
  out.root_span_id = root->span_id;
  out.total_ns = root->duration_ns();
  std::unordered_map<std::string, PhaseStat> by_name;
  for (const Span& span : spans) {
    if (span.parent_span_id != root->span_id || span.trace_id != root->trace_id) {
      continue;
    }
    PhaseStat& stat = by_name[span.name];
    stat.name = span.name;
    stat.total_ns += span.duration_ns();
    stat.count += 1;
    out.attributed_ns += span.duration_ns();
  }
  for (auto& [name, stat] : by_name) {
    (void)name;
    out.phases.push_back(std::move(stat));
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const PhaseStat& x, const PhaseStat& y) { return x.total_ns > y.total_ns; });
  return out;
}

PhaseBreakdown AnalyzePhases(uint64_t trace_id, std::string_view root_name) {
  return AnalyzePhases(SpansForTrace(trace_id), root_name);
}

std::string FormatBreakdown(const PhaseBreakdown& breakdown) {
  if (!breakdown.found) {
    return "no matching root span\n";
  }
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line), "total %.3fms (trace %llu, span %llu)\n",
                static_cast<double>(breakdown.total_ns) / 1e6,
                static_cast<unsigned long long>(breakdown.trace_id),
                static_cast<unsigned long long>(breakdown.root_span_id));
  out += line;
  const double total = breakdown.total_ns > 0 ? static_cast<double>(breakdown.total_ns) : 1.0;
  for (const PhaseStat& stat : breakdown.phases) {
    std::snprintf(line, sizeof(line), "  %-20s %10.3fms x%-4llu (%4.1f%%)\n",
                  stat.name.c_str(), static_cast<double>(stat.total_ns) / 1e6,
                  static_cast<unsigned long long>(stat.count),
                  100.0 * static_cast<double>(stat.total_ns) / total);
    out += line;
  }
  const uint64_t residue = breakdown.total_ns > breakdown.attributed_ns
                               ? breakdown.total_ns - breakdown.attributed_ns
                               : 0;
  std::snprintf(line, sizeof(line), "  %-20s %10.3fms       (%4.1f%%)\n", "(unattributed)",
                static_cast<double>(residue) / 1e6,
                100.0 * static_cast<double>(residue) / total);
  out += line;
  return out;
}

}  // namespace obs
}  // namespace afs
