#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <vector>

namespace afs {
namespace obs {

namespace {

// Retired aggregate: final values of destroyed registries, keyed by
// "<registry name>/<metric name>". Guarded by the same mutex as the live-registry list.
struct RetiredHistogram {
  uint64_t count = 0;
  uint64_t sum_ns = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
};

struct GlobalState {
  std::mutex mu;
  std::vector<MetricRegistry*> registries;
  std::map<std::string, uint64_t> retired_counters;
  std::map<std::string, int64_t> retired_gauge_max;
  std::map<std::string, RetiredHistogram> retired_histograms;
};

GlobalState& Global() {
  static GlobalState* state = new GlobalState;  // leaked: outlives static registries
  return *state;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

// Minimal JSON string escaping (names are plain identifiers, but be safe).
void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
  *out += '"';
}

}  // namespace

int Histogram::BucketIndex(uint64_t ns) {
  if (ns < 2) {
    return 0;
  }
  int index = std::bit_width(ns) - 1;
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

uint64_t Histogram::BucketLowerBound(int i) { return i == 0 ? 0 : uint64_t{1} << i; }

uint64_t Histogram::ApproxPercentileNs(double p) const {
  uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (rank >= total) {
    rank = total - 1;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) {
      return (uint64_t{1} << (i + 1)) - 1;  // bucket upper bound
    }
  }
  return (uint64_t{1} << kNumBuckets) - 1;
}

MetricRegistry::MetricRegistry(std::string name, bool register_global)
    : name_(std::move(name)), registered_(register_global) {
  if (registered_) {
    GlobalState& g = Global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.registries.push_back(this);
  }
}

void FoldIntoRetired(const MetricRegistry& registry) {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> global_lock(g.mu);
  g.registries.erase(std::remove(g.registries.begin(), g.registries.end(), &registry),
                     g.registries.end());
  std::lock_guard<std::mutex> lock(registry.mu_);
  for (const auto& [metric, counter] : registry.counters_) {
    g.retired_counters[registry.name_ + "/" + metric] += counter->value();
  }
  for (const auto& [metric, gauge] : registry.gauges_) {
    int64_t& slot = g.retired_gauge_max[registry.name_ + "/" + metric];
    slot = std::max(slot, gauge->max());
  }
  for (const auto& [metric, histogram] : registry.histograms_) {
    RetiredHistogram& slot = g.retired_histograms[registry.name_ + "/" + metric];
    slot.count += histogram->count();
    slot.sum_ns += histogram->sum_ns();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      slot.buckets[i] += histogram->bucket(i);
    }
  }
}

MetricRegistry::~MetricRegistry() {
  if (registered_) {
    FoldIntoRetired(*this);
  }
}

Counter* MetricRegistry::counter(std::string_view metric) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(metric);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(metric), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::gauge(std::string_view metric) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(metric);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(metric), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::histogram(std::string_view metric) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(metric);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(metric), std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

void MetricRegistry::DumpText(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out += "# registry " + name_ + "\n";
  for (const auto& [metric, counter] : counters_) {
    *out += "counter " + metric + " ";
    AppendU64(out, counter->value());
    *out += "\n";
  }
  for (const auto& [metric, gauge] : gauges_) {
    *out += "gauge " + metric + " ";
    AppendI64(out, gauge->value());
    *out += " max ";
    AppendI64(out, gauge->max());
    *out += "\n";
  }
  for (const auto& [metric, histogram] : histograms_) {
    *out += "histogram " + metric + " count ";
    AppendU64(out, histogram->count());
    *out += " sum_ns ";
    AppendU64(out, histogram->sum_ns());
    *out += " p50_ns ";
    AppendU64(out, histogram->ApproxPercentileNs(0.5));
    *out += " p99_ns ";
    AppendU64(out, histogram->ApproxPercentileNs(0.99));
    *out += " buckets ";
    bool first = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t n = histogram->bucket(i);
      if (n == 0) {
        continue;
      }
      if (!first) {
        *out += ",";
      }
      first = false;
      AppendU64(out, static_cast<uint64_t>(i));
      *out += ":";
      AppendU64(out, n);
    }
    if (first) {
      *out += "-";
    }
    *out += "\n";
  }
}

void MetricRegistry::DumpJson(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out += "{\"name\":";
  AppendJsonString(out, name_);
  *out += ",\"counters\":{";
  bool first = true;
  for (const auto& [metric, counter] : counters_) {
    if (!first) *out += ",";
    first = false;
    AppendJsonString(out, metric);
    *out += ":";
    AppendU64(out, counter->value());
  }
  *out += "},\"gauges\":{";
  first = true;
  for (const auto& [metric, gauge] : gauges_) {
    if (!first) *out += ",";
    first = false;
    AppendJsonString(out, metric);
    *out += ":{\"value\":";
    AppendI64(out, gauge->value());
    *out += ",\"max\":";
    AppendI64(out, gauge->max());
    *out += "}";
  }
  *out += "},\"histograms\":{";
  first = true;
  for (const auto& [metric, histogram] : histograms_) {
    if (!first) *out += ",";
    first = false;
    AppendJsonString(out, metric);
    *out += ":{\"count\":";
    AppendU64(out, histogram->count());
    *out += ",\"sum_ns\":";
    AppendU64(out, histogram->sum_ns());
    *out += ",\"buckets\":{";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t n = histogram->bucket(i);
      if (n == 0) {
        continue;
      }
      if (!first_bucket) *out += ",";
      first_bucket = false;
      AppendJsonString(out, std::to_string(i));
      *out += ":";
      AppendU64(out, n);
    }
    *out += "}}";
  }
  *out += "}}";
}

std::string DumpAllText() {
  // The global lock is held across the whole dump so no registry can be destroyed
  // mid-iteration; destruction takes the same global-then-registry lock order.
  GlobalState& g = Global();
  std::string out;
  std::lock_guard<std::mutex> lock(g.mu);
  for (MetricRegistry* registry : g.registries) {
    registry->DumpText(&out);
  }
  if (!g.retired_counters.empty() || !g.retired_gauge_max.empty() ||
      !g.retired_histograms.empty()) {
    out += "# registry retired\n";
    for (const auto& [key, value] : g.retired_counters) {
      out += "counter " + key + " ";
      AppendU64(&out, value);
      out += "\n";
    }
    for (const auto& [key, value] : g.retired_gauge_max) {
      out += "gauge " + key + " max ";
      AppendI64(&out, value);
      out += "\n";
    }
    for (const auto& [key, h] : g.retired_histograms) {
      out += "histogram " + key + " count ";
      AppendU64(&out, h.count);
      out += " sum_ns ";
      AppendU64(&out, h.sum_ns);
      out += "\n";
    }
  }
  return out;
}

std::string DumpAllJson() {
  GlobalState& g = Global();
  std::string out = "[";
  std::lock_guard<std::mutex> lock(g.mu);
  bool first = true;
  for (MetricRegistry* registry : g.registries) {
    if (!first) out += ",";
    first = false;
    registry->DumpJson(&out);
  }
  if (!first) out += ",";
  out += "{\"name\":\"retired\",\"counters\":{";
  first = true;
  for (const auto& [key, value] : g.retired_counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, key);
    out += ":";
    AppendU64(&out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, value] : g.retired_gauge_max) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, key);
    out += ":{\"max\":";
    AppendI64(&out, value);
    out += "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : g.retired_histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, key);
    out += ":{\"count\":";
    AppendU64(&out, h.count);
    out += ",\"sum_ns\":";
    AppendU64(&out, h.sum_ns);
    out += "}";
  }
  out += "}}]";
  return out;
}

void ResetRetired() {
  GlobalState& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  g.retired_counters.clear();
  g.retired_gauge_max.clear();
  g.retired_histograms.clear();
}

}  // namespace obs
}  // namespace afs
