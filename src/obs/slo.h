// SLO accounting: score measured p50/p99/p999 latencies per operation class against
// declared targets, and emit a machine-readable pass/fail verdict (BENCH_slo.json).
//
// An "op class" is a coarse, client-meaningful operation name ("commit", "client.read",
// ...), not an RPC opcode: the classes are what a service-level objective is written
// against. Recording is one Histogram::Record (three relaxed atomic adds) through a
// pointer resolved once — same discipline as every other hot-path instrument. Classes
// without a declared target are reported but never fail the verdict; a class with a
// target but no samples fails it (an SLO nobody measured is not being met).

#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"

namespace afs {
namespace obs {

// Latency ceilings in ns; 0 = no bound at that percentile.
struct SloTarget {
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
};

class SloTracker {
 public:
  // The process-wide tracker every component records into (like DumpAllText for metrics).
  static SloTracker* Global();

  SloTracker() = default;
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  // Declare (or replace) the target for one op class. Creates the class if needed.
  void DeclareTarget(const std::string& op_class, SloTarget target);

  // The class's latency histogram, created on first use. The pointer stays valid for the
  // tracker's lifetime — resolve once at construction, record through the raw pointer.
  Histogram* ClassHistogram(const std::string& op_class);

  // Convenience for cold paths (mutex-protected name lookup per call).
  void Record(const std::string& op_class, uint64_t ns) { ClassHistogram(op_class)->Record(ns); }

  // {"classes":[{"class":...,"count":...,"p50_ns":...,"p99_ns":...,"p999_ns":...,
  //   "target_p50_ns":...,"target_p99_ns":...,"target_p999_ns":...,"pass":...},...],
  //  "verdict":"pass"|"fail"}
  // Percentiles are the containing bucket's upper bound (see Histogram); classes sorted
  // by name for deterministic output.
  std::string DumpJson() const;

  // Human-oriented table, one class per line.
  std::string DumpText() const;

  // False iff some class with a declared target misses it (or has no samples).
  bool AllPass() const;

  // Drop every class and target (test isolation). Invalidates ClassHistogram pointers.
  void Reset();

 private:
  struct Entry {
    std::unique_ptr<Histogram> hist = std::make_unique<Histogram>();
    SloTarget target;
    bool has_target = false;
  };
  struct ClassReport {
    std::string name;
    uint64_t count, p50, p99, p999;
    SloTarget target;
    bool has_target;
    bool pass;
  };
  std::vector<ClassReport> Snapshot() const;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

// RAII latency sample: records the elapsed time into `hist` on destruction (and, when
// tracing is enabled, callers typically pair it with a ScopedSpan). Null hist = no-op.
class SloTimer {
 public:
  explicit SloTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~SloTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                              std::chrono::steady_clock::now() - start_)
                                              .count()));
    }
  }

  SloTimer(const SloTimer&) = delete;
  SloTimer& operator=(const SloTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace afs

#endif  // SRC_OBS_SLO_H_
