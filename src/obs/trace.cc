#include "src/obs/trace.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <vector>

namespace afs {
namespace obs {

namespace {

struct TraceRecord {
  uint64_t seq = 0;  // 0 = empty slot
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t thread_id = 0;
  TraceEvent event = TraceEvent::kRpcSend;
};

// Retired (dead-thread) events kept for post-mortems.
constexpr size_t kRetiredCapacity = 4 * kTraceRingCapacity;

struct ThreadRing;

struct TraceState {
  std::mutex mu;
  std::vector<ThreadRing*> rings;
  std::deque<TraceRecord> retired;
  std::atomic<uint64_t> next_seq{1};
  // ClearTrace() raises the floor instead of touching other threads' rings: events with
  // seq below the floor are ignored by DumpTrace. This keeps writers entirely lock-free.
  std::atomic<uint64_t> seq_floor{1};
  std::atomic<uint32_t> next_thread_id{1};
  std::atomic<bool> enabled{true};
};

TraceState& State() {
  static TraceState* state = new TraceState;  // leaked: outlives thread-local rings
  return *state;
}

struct ThreadRing {
  std::array<TraceRecord, kTraceRingCapacity> records{};
  std::atomic<size_t> next{0};
  uint32_t thread_id;

  ThreadRing() {
    TraceState& s = State();
    thread_id = s.next_thread_id.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.mu);
    s.rings.push_back(this);
  }

  ~ThreadRing() {
    TraceState& s = State();
    std::lock_guard<std::mutex> lock(s.mu);
    s.rings.erase(std::remove(s.rings.begin(), s.rings.end(), this), s.rings.end());
    for (const TraceRecord& record : records) {
      if (record.seq != 0) {
        s.retired.push_back(record);
      }
    }
    while (s.retired.size() > kRetiredCapacity) {
      s.retired.pop_front();
    }
  }
};

ThreadRing& LocalRing() {
  thread_local ThreadRing ring;
  return ring;
}

}  // namespace

const char* TraceEventName(TraceEvent event) {
  switch (event) {
    case TraceEvent::kRpcSend:
      return "rpc.send";
    case TraceEvent::kRpcHandle:
      return "rpc.handle";
    case TraceEvent::kRpcTimeout:
      return "rpc.timeout";
    case TraceEvent::kRpcCrashFail:
      return "rpc.crash_fail";
    case TraceEvent::kCommitBegin:
      return "commit.begin";
    case TraceEvent::kCommitFastPath:
      return "commit.fast_path";
    case TraceEvent::kCommitSerialise:
      return "commit.serialise";
    case TraceEvent::kCommitMerge:
      return "commit.merge";
    case TraceEvent::kCommitAbort:
      return "commit.abort";
    case TraceEvent::kCommitConflict:
      return "commit.conflict";
    case TraceEvent::kCacheHit:
      return "cache.hit";
    case TraceEvent::kCacheMiss:
      return "cache.miss";
    case TraceEvent::kCacheEvict:
      return "cache.evict";
    case TraceEvent::kDiskRead:
      return "disk.read";
    case TraceEvent::kDiskWrite:
      return "disk.write";
    case TraceEvent::kRpcRetransmit:
      return "rpc.retransmit";
    case TraceEvent::kRpcDupReplay:
      return "rpc.dup_replay";
    case TraceEvent::kStableFailover:
      return "stable.failover";
    case TraceEvent::kTierMigrate:
      return "tier.migrate";
    case TraceEvent::kTierPromote:
      return "tier.promote";
    case TraceEvent::kTierScrubRepair:
      return "tier.scrub_repair";
  }
  return "unknown";
}

void SetTraceEnabled(bool enabled) {
  State().enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceEnabled() { return State().enabled.load(std::memory_order_relaxed); }

void Trace(TraceEvent event, uint64_t a, uint64_t b) {
  TraceState& s = State();
  if (!s.enabled.load(std::memory_order_relaxed)) {
    return;
  }
  ThreadRing& ring = LocalRing();
  size_t slot = ring.next.load(std::memory_order_relaxed);
  ring.next.store((slot + 1) % kTraceRingCapacity, std::memory_order_relaxed);
  TraceRecord& record = ring.records[slot];
  record.thread_id = ring.thread_id;
  record.event = event;
  record.a = a;
  record.b = b;
  record.seq = s.next_seq.fetch_add(1, std::memory_order_relaxed);
}

std::string DumpTrace(size_t n) {
  TraceState& s = State();
  uint64_t floor = s.seq_floor.load(std::memory_order_relaxed);
  std::vector<TraceRecord> all;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const ThreadRing* ring : s.rings) {
      for (const TraceRecord& record : ring->records) {
        if (record.seq >= floor) {
          all.push_back(record);
        }
      }
    }
    for (const TraceRecord& record : s.retired) {
      if (record.seq >= floor) {
        all.push_back(record);
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceRecord& x, const TraceRecord& y) { return x.seq < y.seq; });
  if (all.size() > n) {
    all.erase(all.begin(), all.end() - static_cast<ptrdiff_t>(n));
  }
  std::string out;
  char line[160];
  for (const TraceRecord& record : all) {
    std::snprintf(line, sizeof(line), "%llu t%u %s a=%llu b=%llu\n",
                  static_cast<unsigned long long>(record.seq), record.thread_id,
                  TraceEventName(record.event), static_cast<unsigned long long>(record.a),
                  static_cast<unsigned long long>(record.b));
    out += line;
  }
  return out;
}

void ClearTrace() {
  TraceState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.seq_floor.store(s.next_seq.load(std::memory_order_relaxed), std::memory_order_relaxed);
  s.retired.clear();
}

}  // namespace obs
}  // namespace afs
