// Causal distributed tracing: structured spans with a propagated (trace_id, span_id,
// parent_span_id) context, collected in a bounded lock-free ring.
//
// A span is one timed region of one thread — an RPC as seen by the client, a Handle() as
// seen by the server, one commit phase, one journal fsync. Spans form a tree: each span's
// parent is whatever span was current on the thread when it started, and the context rides
// across the wire in the Message envelope so a server-side span hangs under the client-side
// RPC span that caused it. One transaction therefore yields one connected tree even when it
// fans out across file servers, block servers and the journal, and even across
// retransmissions: a retransmitted request carries the ORIGINAL context, and a reply played
// back from the reply cache creates no span at all, so duplicates never fork the tree.
//
// Recording discipline matches src/obs/metrics.h: the disabled path is a single relaxed
// atomic load (tracing is OFF by default; benches and the shell opt in), and recording a
// finished span is a handful of relaxed atomic stores into a fixed global ring — no locks,
// no allocation, safe on the commit hot path. Readers (scrapes, dumps) are racy by design:
// a per-slot sequence number detects torn reads, and a span being overwritten mid-read is
// simply skipped, which is acceptable for a post-mortem/profiling aid.

#ifndef SRC_OBS_SPAN_H_
#define SRC_OBS_SPAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace afs {
namespace obs {

enum class SpanKind : uint8_t {
  kClient = 0,    // client side of an RPC (Network::Call) or a client-library op
  kServer = 1,    // server side of an RPC (Service::Handle)
  kPhase = 2,     // one phase of a larger operation (commit.validate, commit.flip, ...)
  kStore = 3,     // storage work: journal append/fsync, stable-pair batch I/O
  kTier = 4,      // background tier migration / scrubbing
  kInternal = 5,  // anything else
};

const char* SpanKindName(SpanKind kind);

// Spans kept process-wide; the ring overwrites its oldest entry when full.
inline constexpr size_t kSpanRingCapacity = 16384;
// Fixed name storage per span (longer names are truncated, always NUL-terminated).
inline constexpr size_t kSpanNameBytes = 24;

// The propagated causal identity. trace_id groups one logical transaction's spans;
// span_id names one span within it. Zero means "no trace".
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

// One finished span, as stored in (and snapshotted from) the ring.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root of its trace
  uint64_t start_ns = 0;        // steady-clock, process-relative
  uint64_t end_ns = 0;
  uint64_t a = 0;  // two free annotation words, meaning depends on the span name
  uint64_t b = 0;
  uint32_t thread_id = 0;
  SpanKind kind = SpanKind::kInternal;
  uint8_t status = 0;  // ErrorCode numeric value; 0 = ok

  char name[kSpanNameBytes] = {};

  uint64_t duration_ns() const { return end_ns > start_ns ? end_ns - start_ns : 0; }
};

// Span recording defaults to OFF; the disabled path everywhere is one relaxed atomic load.
void SetSpanEnabled(bool enabled);
bool SpanEnabled();

// Allocate a fresh trace id (never 0). ScopedSpan does this implicitly when it starts with
// no current context; exposed for tests and synthetic span construction.
uint64_t NewTraceId();

// The calling thread's current context (what a new ScopedSpan would use as its parent).
SpanContext CurrentSpanContext();

// RAII: adopt a remote parent context for the current thread — the server side of an RPC
// installs the request's (trace_id, span_id) so its Handle() span joins the caller's tree.
// Restores the previous context on destruction. No-op when tracing is disabled.
class SpanContextScope {
 public:
  SpanContextScope(uint64_t trace_id, uint64_t parent_span_id);
  ~SpanContextScope();

  SpanContextScope(const SpanContextScope&) = delete;
  SpanContextScope& operator=(const SpanContextScope&) = delete;

 private:
  SpanContext saved_;
  bool installed_ = false;
};

// RAII span: starts on construction (allocating a span_id and becoming the thread's
// current context), records itself into the ring on End()/destruction and restores the
// previous context. When tracing is disabled the constructor is one relaxed load and
// everything else is a no-op.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, SpanKind kind = SpanKind::kInternal, uint64_t a = 0,
                      uint64_t b = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Finish the span early (idempotent): records it and pops it off the thread's context
  // stack, so a sibling span opened afterwards shares this span's parent.
  void End();

  bool active() const { return active_; }
  uint64_t trace_id() const { return span_.trace_id; }
  uint64_t span_id() const { return span_.span_id; }
  uint64_t parent_span_id() const { return span_.parent_span_id; }
  SpanContext context() const { return SpanContext{span_.trace_id, span_.span_id}; }

  void set_status(uint8_t code) { span_.status = code; }
  void set_args(uint64_t a, uint64_t b) {
    span_.a = a;
    span_.b = b;
  }

 private:
  Span span_;
  SpanContext saved_;
  bool active_ = false;
};

// Record a finished span directly (ScopedSpan's backend; exposed for tests and for
// replaying externally-built spans). Ignores spans with trace_id 0.
void RecordSpan(const Span& span);

// Racy snapshot of every live slot, unordered. Torn or empty slots are skipped.
std::vector<Span> SnapshotSpans();

// Every snapshot span belonging to `trace_id`, sorted by start time.
std::vector<Span> SpansForTrace(uint64_t trace_id);

// Reset the ring and the slow-trace log (test isolation; callers must quiesce writers).
void ClearSpans();

// The most recent `n` finished spans, oldest first, one per line:
//   "trace=<t> span=<s> parent=<p> <kind> <name> start=<ns> dur=<ns> status=<c> a=<a> b=<b>"
std::string DumpSpansText(size_t n);

// Chrome trace_event JSON ({"traceEvents":[{"ph":"X",...},...]}): load the output in
// chrome://tracing or Perfetto. At most `max_events` most-recent spans are exported.
std::string DumpSpansChromeJson(size_t max_events);

// Indented text rendering of one trace's span tree (children sorted by start time; spans
// whose parent fell out of the ring are shown at top level, marked "~").
std::string FormatSpanTree(uint64_t trace_id);

// -- Slow-transaction log ---------------------------------------------------
// When a ROOT span (parent_span_id == 0) finishes slower than the threshold, its whole
// span tree is rendered and kept in a small bounded log. 0 disables (the default).
void SetSlowTraceThresholdNs(uint64_t ns);
uint64_t SlowTraceThresholdNs();
// Most recent slow-trace dumps, newest first, at most `n`.
std::vector<std::string> SlowTraceDumps(size_t n);
void ClearSlowTraces();

// -- Critical-path analysis -------------------------------------------------
// Attribute a root operation's latency to its direct child phases, grouped by span name.
// Built for the commit path ("where do the ~26ms of a contended commit go?") but generic:
// pick the slowest span named `root_name` in the trace and sum its direct children.
struct PhaseStat {
  std::string name;
  uint64_t total_ns = 0;
  uint64_t count = 0;
};
struct PhaseBreakdown {
  bool found = false;
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;
  uint64_t total_ns = 0;       // the root span's own duration
  uint64_t attributed_ns = 0;  // sum over phases (the rest is uninstrumented glue)
  std::vector<PhaseStat> phases;  // sorted by total_ns, largest first
};
PhaseBreakdown AnalyzePhases(const std::vector<Span>& spans, std::string_view root_name);
PhaseBreakdown AnalyzePhases(uint64_t trace_id, std::string_view root_name);
// "commit 26.312ms = validate 12.100ms (46%) + ..." — one line per phase plus the residue.
std::string FormatBreakdown(const PhaseBreakdown& breakdown);

}  // namespace obs
}  // namespace afs

#endif  // SRC_OBS_SPAN_H_
