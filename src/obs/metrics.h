// Unified metrics for every AFS component (the observability layer the paper's claims are
// judged by: commit outcomes, cache effectiveness, RPC and disk traffic).
//
// Design rules:
//   * Increments on hot paths (Commit, LoadPage, block I/O) are single relaxed atomic
//     adds — no mutexes, no allocation. Metric pointers are resolved once, at component
//     construction, and cached as raw pointers.
//   * A MetricRegistry groups the metrics of one component (one server, one store, one
//     disk) under a name. Registries self-register in a process-wide list; DumpAllText /
//     DumpAllJson produce a merged snapshot of every live component.
//   * A registry that is destroyed folds its final values into a process-wide "retired"
//     aggregate, so end-of-run snapshots (benchmark JSON output) still account for
//     components that died mid-run.
//   * Latency histograms use fixed power-of-two buckets over nanoseconds: bucket i counts
//     samples in [2^i, 2^(i+1)) ns, covering 1 ns up to ~2 s (the last bucket absorbs
//     everything slower).

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace afs {
namespace obs {

// Monotonic event count. Increment is one relaxed atomic add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (queue depth, open versions) with a high-watermark.
class Gauge {
 public:
  void Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (now > seen && !max_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Fixed-bucket latency histogram. Record() is two relaxed atomic adds plus one relaxed
// add into the sample's bucket — lock-free and allocation-free.
class Histogram {
 public:
  static constexpr int kNumBuckets = 32;

  // Bucket index for a sample: 0 for [0,2) ns, i for [2^i, 2^(i+1)) ns, capped at the last
  // bucket (~2.1 s and beyond).
  static int BucketIndex(uint64_t ns);
  // Inclusive lower bound of bucket i in ns (0 for bucket 0).
  static uint64_t BucketLowerBound(int i);

  void Record(uint64_t ns) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_ns() const { return sum_ns_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

  // Upper bound of the bucket containing the p-th percentile sample (p in [0,1]);
  // 0 if the histogram is empty.
  uint64_t ApproxPercentileNs(double p) const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

// The named metrics of one component. counter()/gauge()/histogram() lazily create on
// first lookup (mutex-protected; call once at construction, cache the pointer) and return
// pointers that stay valid for the registry's lifetime.
class MetricRegistry {
 public:
  // `register_global` adds the registry to the process-wide snapshot; tests that need an
  // isolated registry pass false.
  explicit MetricRegistry(std::string name, bool register_global = true);
  ~MetricRegistry();

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  const std::string& name() const { return name_; }

  Counter* counter(std::string_view metric);
  Gauge* gauge(std::string_view metric);
  Histogram* histogram(std::string_view metric);

  // Text exposition, deterministic (metrics sorted by name):
  //   # registry <name>
  //   counter <metric> <value>
  //   gauge <metric> <value> max <max>
  //   histogram <metric> count <n> sum_ns <s> p50_ns <p> p99_ns <p> buckets <i>:<n>,...
  void DumpText(std::string* out) const;

  // JSON object: {"name":...,"counters":{...},"gauges":{...},"histograms":{...}}
  void DumpJson(std::string* out) const;

 private:
  friend void FoldIntoRetired(const MetricRegistry& registry);

  const std::string name_;
  const bool registered_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Merged process-wide snapshot: every live registry plus the retired aggregate.
std::string DumpAllText();
// JSON array of registry objects (retired aggregate last, named "retired").
std::string DumpAllJson();

// Drop the retired aggregate (test isolation).
void ResetRetired();

}  // namespace obs
}  // namespace afs

#endif  // SRC_OBS_METRICS_H_
