#include "src/obs/slo.h"

#include <cstdio>
#include <vector>

namespace afs {
namespace obs {

namespace {

bool MeetsTarget(uint64_t measured, uint64_t target) {
  return target == 0 || measured <= target;
}

}  // namespace

SloTracker* SloTracker::Global() {
  static SloTracker* tracker = new SloTracker;  // leaked: recorded into from any thread
  return tracker;
}

void SloTracker::DeclareTarget(const std::string& op_class, SloTarget target) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[op_class];
  entry.target = target;
  entry.has_target = true;
}

Histogram* SloTracker::ClassHistogram(const std::string& op_class) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_[op_class].hist.get();
}

std::vector<SloTracker::ClassReport> SloTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ClassReport> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    ClassReport r;
    r.name = name;
    r.count = entry.hist->count();
    r.p50 = entry.hist->ApproxPercentileNs(0.50);
    r.p99 = entry.hist->ApproxPercentileNs(0.99);
    r.p999 = entry.hist->ApproxPercentileNs(0.999);
    r.target = entry.target;
    r.has_target = entry.has_target;
    // A declared target with zero samples fails: an unmeasured SLO is not a met SLO.
    r.pass = !entry.has_target ||
             (r.count > 0 && MeetsTarget(r.p50, entry.target.p50_ns) &&
              MeetsTarget(r.p99, entry.target.p99_ns) &&
              MeetsTarget(r.p999, entry.target.p999_ns));
    out.push_back(std::move(r));
  }
  return out;
}

std::string SloTracker::DumpJson() const {
  std::vector<ClassReport> classes = Snapshot();
  std::string out = "{\"classes\":[";
  char buf[512];
  bool all_pass = true;
  for (size_t i = 0; i < classes.size(); ++i) {
    const ClassReport& r = classes[i];
    all_pass = all_pass && r.pass;
    std::snprintf(buf, sizeof(buf),
                  "%s{\"class\":\"%s\",\"count\":%llu,\"p50_ns\":%llu,\"p99_ns\":%llu,"
                  "\"p999_ns\":%llu,\"target_p50_ns\":%llu,\"target_p99_ns\":%llu,"
                  "\"target_p999_ns\":%llu,\"has_target\":%s,\"pass\":%s}",
                  i == 0 ? "" : ",", r.name.c_str(), static_cast<unsigned long long>(r.count),
                  static_cast<unsigned long long>(r.p50),
                  static_cast<unsigned long long>(r.p99),
                  static_cast<unsigned long long>(r.p999),
                  static_cast<unsigned long long>(r.target.p50_ns),
                  static_cast<unsigned long long>(r.target.p99_ns),
                  static_cast<unsigned long long>(r.target.p999_ns),
                  r.has_target ? "true" : "false", r.pass ? "true" : "false");
    out += buf;
  }
  out += "],\"verdict\":\"";
  out += all_pass ? "pass" : "fail";
  out += "\"}";
  return out;
}

std::string SloTracker::DumpText() const {
  std::string out;
  char buf[256];
  for (const ClassReport& r : Snapshot()) {
    std::snprintf(buf, sizeof(buf),
                  "%-24s count %-8llu p50 %.3fms p99 %.3fms p999 %.3fms %s\n", r.name.c_str(),
                  static_cast<unsigned long long>(r.count), static_cast<double>(r.p50) / 1e6,
                  static_cast<double>(r.p99) / 1e6, static_cast<double>(r.p999) / 1e6,
                  !r.has_target ? "(no target)" : (r.pass ? "PASS" : "FAIL"));
    out += buf;
  }
  return out;
}

bool SloTracker::AllPass() const {
  for (const ClassReport& r : Snapshot()) {
    if (!r.pass) {
      return false;
    }
  }
  return true;
}

void SloTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace obs
}  // namespace afs
