// Bounded per-thread ring-buffer trace of structured events, for post-mortem debugging of
// failed tests and stuck workloads.
//
// Every interesting transition in the system (RPC send/receive, commit begin / fast-path /
// serialise / merge / abort, cache hit/miss, disk read/write) records one fixed-size event
// into the calling thread's private ring. Recording is wait-free after the thread's first
// event: a relaxed global sequence-number fetch_add plus plain stores into thread-local
// storage — no locks, safe on the commit hot path. When a thread exits, its ring is folded
// into a bounded "retired" buffer so a crashed worker's last actions stay visible.
//
// DumpTrace(n) merges all rings and formats the most recent n events in global order. The
// merge is racy by design (writers never stall for readers); an event being written while
// the dump runs may be missed or torn, which is acceptable for a post-mortem aid.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace afs {
namespace obs {

enum class TraceEvent : uint8_t {
  kRpcSend = 0,        // a = target port, b = opcode
  kRpcHandle = 1,      // a = opcode, b = handle latency ns
  kRpcTimeout = 2,     // a = target port
  kRpcCrashFail = 3,   // a = number of calls failed by the crash
  kCommitBegin = 4,    // a = version head
  kCommitFastPath = 5, // a = version head
  kCommitSerialise = 6,// a = version head, b = committed successor head
  kCommitMerge = 7,    // a = version head, b = new base head
  kCommitAbort = 8,    // a = version head
  kCommitConflict = 9, // a = version head
  kCacheHit = 10,      // a = block number
  kCacheMiss = 11,     // a = block number
  kCacheEvict = 12,    // a = block number
  kDiskRead = 13,      // a = block number
  kDiskWrite = 14,     // a = block number
  kRpcRetransmit = 15, // a = target port, b = opcode
  kRpcDupReplay = 16,  // a = client id, b = txn id
  kStableFailover = 17,// a = member index abandoned, b = error code observed
  kTierMigrate = 18,   // a = magnetic block archived, b = archive block burned
  kTierPromote = 19,   // a = magnetic block number served (and cached) from the archive
  kTierScrubRepair = 20,// a = magnetic block number, b = replacement archive block
};

const char* TraceEventName(TraceEvent event);

// Events kept per thread; the ring overwrites its oldest entry when full.
inline constexpr size_t kTraceRingCapacity = 1024;

// Tracing defaults to on (recording is a few nanoseconds); the disabled path is a single
// relaxed atomic load.
void SetTraceEnabled(bool enabled);
bool TraceEnabled();

// Record one event with up to two argument words. No-op when tracing is disabled.
void Trace(TraceEvent event, uint64_t a = 0, uint64_t b = 0);

// Format the most recent `n` events across all threads (and retired threads), oldest
// first, one per line: "<seq> t<thread> <event-name> a=<a> b=<b>".
std::string DumpTrace(size_t n);

// Discard all recorded events (test isolation).
void ClearTrace();

}  // namespace obs
}  // namespace afs

#endif  // SRC_OBS_TRACE_H_
