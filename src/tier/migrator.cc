#include "src/tier/migrator.h"

#include <algorithm>
#include <unordered_set>

namespace afs {

Migrator::Migrator(std::vector<FileServer*> servers, TieredStore* tiered, MigratorOptions options)
    : servers_(std::move(servers)), tiered_(tiered), options_(options) {
  if (options_.keep_hot_versions == 0) {
    options_.keep_hot_versions = 1;
  }
}

Migrator::~Migrator() { Stop(); }

Result<std::vector<BlockNo>> Migrator::CollectEligible() {
  FileServer* fs = servers_[0];
  PageStore* pages = fs->page_store();

  std::unordered_set<BlockNo> hot;
  std::unordered_set<BlockNo> walked;      // dedup across the old-version walks
  std::unordered_set<BlockNo> candidates;  // plain page chains of old versions
  auto keep_hot = [&hot](const Page&, const std::vector<BlockNo>& chain) {
    for (BlockNo bno : chain) {
      hot.insert(bno);
    }
  };
  auto classify = [&](const Page& page, const std::vector<BlockNo>& chain) {
    if (page.IsVersionPage()) {
      // Version pages (file roots and nested sub-file roots alike) are overwritten in
      // place by commit's test-and-set and by GC pruning: rewritable media only.
      return;
    }
    for (BlockNo bno : chain) {
      candidates.insert(bno);
    }
  };

  // The file table chain is rewritten on every create/delete/prune.
  ASSIGN_OR_RETURN(std::vector<BlockNo> table_blocks, fs->FileTableBlocks());
  hot.insert(table_blocks.begin(), table_blocks.end());

  // Uncommitted trees, snapshotted before the chain walks (GC's root-set ordering: a
  // version committing mid-cycle is in its file's re-read chain or in this snapshot —
  // never in neither).
  for (FileServer* server : servers_) {
    if (!server->running()) {
      continue;
    }
    for (BlockNo head : server->ListUncommitted()) {
      Status st = WalkVersionTree(pages, head, &hot, keep_hot);
      if (!st.ok() && st.code() != ErrorCode::kNotFound) {
        return st;  // kNotFound: committed/aborted under us — covered by its chain
      }
    }
  }

  for (const FileServer::FileEntry& entry : fs->SnapshotFileTable()) {
    ASSIGN_OR_RETURN(std::vector<BlockNo> chain, fs->CommittedChain(entry.file_id));
    const size_t keep = std::min<size_t>(chain.size(), options_.keep_hot_versions);
    for (size_t i = chain.size() - keep; i < chain.size(); ++i) {
      RETURN_IF_ERROR(WalkVersionTree(pages, chain[i], &hot, keep_hot));
    }
    for (size_t i = 0; i + keep < chain.size(); ++i) {
      RETURN_IF_ERROR(WalkVersionTree(pages, chain[i], &walked, classify));
    }
  }

  // Copy-on-write shares unmodified subtrees between old and newer versions, so the cold
  // walk sees hot blocks too; subtract. MigrateBlocks itself skips already-archived ones.
  std::vector<BlockNo> eligible;
  eligible.reserve(candidates.size());
  for (BlockNo bno : candidates) {
    if (hot.count(bno) == 0) {
      eligible.push_back(bno);
    }
  }
  std::sort(eligible.begin(), eligible.end());
  return eligible;
}

Result<uint64_t> Migrator::RunCycle() {
  auto eligible = CollectEligible();
  if (!eligible.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cycles_aborted;
    return eligible.status();
  }
  uint64_t migrated = 0;
  Status st = tiered_->MigrateBlocks(*eligible, &migrated);
  std::lock_guard<std::mutex> lock(mu_);
  stats_.blocks_migrated += migrated;
  if (!st.ok()) {
    ++stats_.cycles_aborted;
    return st;
  }
  ++stats_.cycles;
  return migrated;
}

void Migrator::Start(std::chrono::milliseconds interval) {
  Stop();
  stop_.store(false);
  background_ = std::thread([this, interval] {
    while (!stop_.load()) {
      (void)RunCycle();
      for (int i = 0; i < 100 && !stop_.load(); ++i) {
        std::this_thread::sleep_for(interval / 100);
      }
    }
  });
}

void Migrator::Stop() {
  stop_.store(true);
  if (background_.joinable()) {
    background_.join();
  }
}

MigratorStats Migrator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace afs
