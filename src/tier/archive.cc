#include "src/tier/archive.h"

#include <cstring>

#include "src/base/crc32.h"

namespace afs {

namespace {

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Parse one raw archive block. Returns false for dead blocks (bad magic/kind/CRC).
bool ParseRecord(const std::vector<uint8_t>& block, uint32_t block_size, ArchiveRecord* out) {
  if (GetU32(block.data()) != kArchiveMagic) {
    return false;
  }
  const uint8_t kind = block[4];
  if (kind != static_cast<uint8_t>(ArchiveRecordKind::kData) &&
      kind != static_cast<uint8_t>(ArchiveRecordKind::kUnmap)) {
    return false;
  }
  const uint32_t payload_len = GetU32(block.data() + 20);
  if (payload_len > block_size - kArchiveHeaderBytes) {
    return false;
  }
  if (GetU32(block.data() + 24) != Crc32c(block.data() + kArchiveHeaderBytes, payload_len)) {
    return false;
  }
  out->kind = static_cast<ArchiveRecordKind>(kind);
  out->source = GetU32(block.data() + 8);
  out->seq = GetU64(block.data() + 12);
  out->payload.assign(block.begin() + kArchiveHeaderBytes,
                      block.begin() + kArchiveHeaderBytes + payload_len);
  return true;
}

}  // namespace

ArchiveTier::ArchiveTier(WriteOnceDisk* disk)
    : disk_(disk), block_size_(disk->geometry().block_size) {}

Status ArchiveTier::Mount(
    const std::function<void(BlockNo abno, const ArchiveRecord& record)>& replay) {
  std::lock_guard<std::mutex> lock(mu_);
  cursor_ = 0;
  next_seq_ = 1;
  dead_ = 0;
  bytes_ = 0;
  const uint32_t capacity = disk_->geometry().num_blocks;
  std::vector<uint8_t> block(block_size_);
  // Burns are strictly sequential, so the burned region is a prefix; scan it in order. A
  // dead block (burned bit set by mark-then-burn, data lost to the crash) is skipped.
  while (cursor_ < capacity && disk_->IsBurned(cursor_)) {
    ArchiveRecord record;
    if (disk_->Read(cursor_, block).ok() && ParseRecord(block, block_size_, &record)) {
      if (record.seq >= next_seq_) {
        next_seq_ = record.seq + 1;
      }
      bytes_ += record.payload.size();
      replay(cursor_, record);
    } else {
      ++dead_;
    }
    ++cursor_;
  }
  return OkStatus();
}

Result<BlockNo> ArchiveTier::Burn(ArchiveRecordKind kind, BlockNo source,
                                  std::span<const uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (payload.size() > block_size_ - kArchiveHeaderBytes) {
    return InvalidArgumentError("archive record payload too large");
  }
  if (cursor_ >= disk_->geometry().num_blocks) {
    return NoSpaceError("archive medium full");
  }
  std::vector<uint8_t> block(block_size_, 0);
  PutU32(block.data(), kArchiveMagic);
  block[4] = static_cast<uint8_t>(kind);
  PutU32(block.data() + 8, source);
  PutU64(block.data() + 12, next_seq_);
  PutU32(block.data() + 20, static_cast<uint32_t>(payload.size()));
  if (!payload.empty()) {
    std::memcpy(block.data() + kArchiveHeaderBytes, payload.data(), payload.size());
  }
  PutU32(block.data() + 24, Crc32c(block.data() + kArchiveHeaderBytes, payload.size()));
  const BlockNo abno = cursor_;
  Status st = disk_->Write(abno, block);
  if (!st.ok()) {
    if (disk_->IsBurned(abno)) {
      // The bit persisted but the data did not: the block is dead. Skip past it — write-once
      // media never retry in place.
      ++cursor_;
      ++dead_;
    }
    return st;
  }
  ++cursor_;
  ++next_seq_;
  bytes_ += payload.size();
  return abno;
}

Result<std::vector<uint8_t>> ArchiveTier::ReadRecord(BlockNo abno, BlockNo expect_source) {
  std::vector<uint8_t> block(block_size_);
  RETURN_IF_ERROR(disk_->Read(abno, block));
  ArchiveRecord record;
  if (!ParseRecord(block, block_size_, &record)) {
    return CorruptError("archive record failed CRC");
  }
  if (record.kind != ArchiveRecordKind::kData || record.source != expect_source) {
    return CorruptError("archive record names a different source block");
  }
  return std::move(record.payload);
}

uint64_t ArchiveTier::used_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cursor_;
}

uint64_t ArchiveTier::dead_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

uint64_t ArchiveTier::bytes_burned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace afs
