// ArchiveTier: the write-once record log under the tiered store.
//
// The archive is a WriteOnceDisk burned sequentially from block 0. Every burned block is a
// self-describing record: a CRC-guarded header naming the magnetic block it archives (or,
// for unmap records, the mappings it retracts) plus the payload. That makes the medium its
// own persistent block-location map — mounting is one sequential scan of the burned prefix,
// replaying records in burn order, with no separate map structure that could diverge from
// the data it indexes. (This is the optical analogue of FileDisk's self-describing journal.)
//
// Record kinds:
//   * kData  — payload is the archived copy of magnetic block `source`. A later kData for
//              the same source supersedes the earlier one (scrub repair re-burns).
//   * kUnmap — payload is a list of magnetic block numbers whose mappings are retracted
//              (the block was freed, or its number was reallocated on the magnetic tier).
//
// Burn ordering (mark-then-burn, see WriteOnceDisk) means a crash can leave dead blocks:
// burned per the bitmap but never written, or written torn on real media. The mount scan
// tolerates them — a block whose header fails magic/CRC is skipped, costing one archive
// block and nothing else.

#ifndef SRC_TIER_ARCHIVE_H_
#define SRC_TIER_ARCHIVE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "src/disk/write_once_disk.h"

namespace afs {

enum class ArchiveRecordKind : uint8_t {
  kData = 1,
  kUnmap = 2,
};

// Record header: u32 magic | u8 kind | u8[3] zero | u32 source | u64 seq | u32 payload_len
// | u32 payload_crc. 28 bytes — the same as the block server's header, so an archive with
// 4096-byte blocks holds the magnetic tier's 4068-byte payloads exactly.
inline constexpr uint32_t kArchiveHeaderBytes = 28;
inline constexpr uint32_t kArchiveMagic = 0x41524348;  // "ARCH"

struct ArchiveRecord {
  ArchiveRecordKind kind = ArchiveRecordKind::kData;
  BlockNo source = 0;           // kData: the archived magnetic block; kUnmap: 0
  uint64_t seq = 0;             // burn sequence number, strictly increasing
  std::vector<uint8_t> payload;
};

class ArchiveTier {
 public:
  explicit ArchiveTier(WriteOnceDisk* disk);

  // Payload bytes one record holds.
  uint32_t payload_capacity() const { return block_size_ - kArchiveHeaderBytes; }

  // Scan the burned prefix in block order, invoking `replay` for every valid record (dead
  // blocks are skipped and counted). Positions the burn cursor after the scanned prefix.
  // Must be called before Burn()/ReadRecord(); calling it again rescans from zero.
  Status Mount(const std::function<void(BlockNo abno, const ArchiveRecord& record)>& replay);

  // Burn one record at the cursor; returns the archive block it landed on.
  // kNoSpace when the medium is full, kInvalidArgument when the payload does not fit.
  Result<BlockNo> Burn(ArchiveRecordKind kind, BlockNo source, std::span<const uint8_t> payload);

  // Read and verify the record at `abno`. kCorrupt if the header or payload CRC fails or
  // the record's source is not `expect_source` (a misdirected mapping).
  Result<std::vector<uint8_t>> ReadRecord(BlockNo abno, BlockNo expect_source);

  uint64_t used_blocks() const;
  uint64_t capacity_blocks() const { return disk_->geometry().num_blocks; }
  uint64_t dead_blocks() const;   // burned but unreadable (crash leftovers)
  uint64_t bytes_burned() const;  // payload bytes of valid records burned or replayed

 private:
  WriteOnceDisk* disk_;
  uint32_t block_size_;
  mutable std::mutex mu_;
  BlockNo cursor_ = 0;    // next block to burn
  uint64_t next_seq_ = 1;
  uint64_t dead_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace afs

#endif  // SRC_TIER_ARCHIVE_H_
