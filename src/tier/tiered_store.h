// TieredStore: a BlockStore composing the magnetic tier (any BlockStore — a StableStore
// pair in deployments, InMemoryBlockStore in tests) with a write-once archive tier
// (paper §6: committed versions are immutable, so cold history can burn onto optical media
// while only mutable state stays magnetic).
//
// Placement is tracked by a block-location map: magnetic block number → archive block
// number. The map's persistent form IS the archive itself — every burned record names its
// source block, and unmap records retract mappings — so Mount() rebuilds it with one
// sequential scan and there is no separate structure that could diverge (see archive.h).
//
// Migration protocol (MigrateBlocks), in crash-safe order:
//   1. read the magnetic copies (vectored ReadMulti);
//   2. per block: burn a data record — the burn is simultaneously the copy and the durable
//      location-map update — then adopt the mapping in memory;
//   3. only after every burn: free the magnetic copies (vectored, direct to the inner
//      store, bypassing this class's unmap logic).
// A crash before a block's burn leaves it purely magnetic; after the burn, the archive copy
// is durable and the magnetic copy is at worst an orphan that Mount()/ScrubPass() reconcile
// (free again, idempotently). At no instant is a committed block on neither tier. The
// TierCrashPoint catalogue names every distinct intermediate state.
//
// Reads resolve through the map: archived blocks are served from a bounded promotion cache
// or read (and promoted) from the archive; everything else passes to the magnetic tier.
// Writes to archived blocks are rejected with kReadOnly — only immutable committed pages
// are ever migrated (the Migrator guarantees version pages stay magnetic), so a write to an
// archived block is a caller bug by construction.
//
// Allocation guard: the magnetic allocator hands out block numbers cursor-wise and CAN
// reuse a freed number after the 2^28 cursor wraps. Before an allocation that collides
// with a live mapping is returned, the stale mapping is durably unmapped — otherwise a
// reader of the fresh block would be served the dead block's archived bytes.

#ifndef SRC_TIER_TIERED_STORE_H_
#define SRC_TIER_TIERED_STORE_H_

#include <list>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/block/block_store.h"
#include "src/core/protocol.h"
#include "src/tier/archive.h"
#include "src/tier/crash_point.h"

namespace afs {

struct TieredStoreOptions {
  // Archived blocks kept hot in the promotion cache (0 disables promotion; every archived
  // read then goes to the medium — the bench's cold-read mode).
  size_t promotion_cache_blocks = 1024;
};

class TieredStore : public BlockStore {
 public:
  // `magnetic` and `archive_disk` must outlive this object. Call Mount() before use.
  TieredStore(BlockStore* magnetic, WriteOnceDisk* archive_disk, TieredStoreOptions options = {});

  // Rebuild the location map from the archive's burned prefix, then reconcile: a magnetic
  // block that is both mapped and still allocated is an interrupted migration's leftover
  // copy — finish the free. Idempotent; call at every (re)start.
  Status Mount();

  // --- BlockStore ----------------------------------------------------------
  Result<BlockNo> AllocWrite(std::span<const uint8_t> payload) override;
  Status Write(BlockNo bno, std::span<const uint8_t> payload) override;
  Result<std::vector<uint8_t>> Read(BlockNo bno) override;
  Status Free(BlockNo bno) override;
  Result<std::vector<BlockReadResult>> ReadMulti(std::span<const BlockNo> bnos) override;
  Status WriteBatch(std::span<const BlockWrite> writes) override;
  Status FreeMulti(std::span<const BlockNo> bnos) override;
  Result<std::vector<BlockNo>> AllocMulti(uint32_t n) override;
  Status Lock(BlockNo bno, Port owner) override;
  Status Unlock(BlockNo bno, Port owner) override;
  // Union of the magnetic tier's blocks and the archived ones — GC and fsck see archived
  // blocks as owned and reachable, so migration is transparent to both.
  Result<std::vector<BlockNo>> ListBlocks() override;
  uint32_t payload_capacity() const override { return inner_->payload_capacity(); }

  // --- Tier operations -----------------------------------------------------

  // Archive the given magnetic blocks (already-archived ones are skipped) and free their
  // magnetic copies. `migrated` (optional) receives the number of blocks newly archived.
  // On error (including a fired crash point) the tiers are consistent but the cycle is
  // incomplete — rerunning completes it.
  Status MigrateBlocks(std::span<const BlockNo> bnos, uint64_t* migrated);

  // One scrub pass: CRC-verify every mapping's archive record; a corrupt record whose
  // magnetic copy still exists is repaired by re-burning (the inverse of stable-pair
  // companion repair works both ways: Read() repairs lost magnetic blocks from the archive,
  // this repairs a rotted archive from magnetic leftovers). Also completes interrupted
  // migrations' frees, like Mount().
  Result<TierScrubSummary> ScrubPass();

  bool archived(BlockNo bno) const;
  size_t archived_blocks() const;
  // Snapshot of the location map, (magnetic bno, archive bno) pairs. Fsck and tests.
  std::vector<std::pair<BlockNo, BlockNo>> MappingSnapshot() const;
  TierStatInfo Stats() const;
  ArchiveTier* archive() { return &archive_; }
  BlockStore* magnetic() { return inner_; }

  // Test hook: migration visits the armed site and aborts the cycle there.
  void set_crash_injector(TierCrashInjector* injector) { injector_ = injector; }

  // Drop the promotion cache (bench cold-read reset).
  void DropPromotions();

 private:
  // Serve an archived block from the promotion cache or the medium (promoting on miss).
  Result<std::vector<uint8_t>> ReadArchived(BlockNo bno, BlockNo abno);
  // Durably retract mappings for `bnos` (burn an unmap record) and erase them from the map
  // and the promotion cache. No-op for unmapped entries.
  Status UnmapPersistently(std::span<const BlockNo> bnos);
  void CacheInsert(BlockNo bno, std::vector<uint8_t> data);
  void CacheErase(BlockNo bno);
  void RefreshGauges();
  // Fires `point` if armed; returns true when the migration must abandon the cycle.
  bool CrashCut(TierCrashPoint point);

  BlockStore* inner_;
  ArchiveTier archive_;
  TieredStoreOptions options_;
  TierCrashInjector* injector_ = nullptr;

  mutable std::shared_mutex map_mu_;
  std::unordered_map<BlockNo, BlockNo> map_;  // magnetic bno -> archive bno

  std::mutex migrate_mu_;  // one migration/scrub at a time

  // Promotion cache: archived blocks recently read, LRU-evicted.
  mutable std::mutex cache_mu_;
  std::list<BlockNo> cache_lru_;  // front = most recent
  struct CacheEntry {
    std::vector<uint8_t> data;
    std::list<BlockNo>::iterator lru_it;
  };
  std::unordered_map<BlockNo, CacheEntry> cache_;

  obs::MetricRegistry metrics_{"tier"};
  obs::Counter* migrated_ = metrics_.counter("tier.migrated_blocks");
  obs::Counter* reclaimed_ = metrics_.counter("tier.reclaimed_magnetic");
  obs::Counter* reclaim_redo_ = metrics_.counter("tier.reclaim_redo");
  obs::Counter* promotions_ = metrics_.counter("tier.promotions");
  obs::Counter* promo_hits_ = metrics_.counter("tier.promo_hits");
  obs::Counter* archive_reads_ = metrics_.counter("tier.archive_reads");
  obs::Counter* write_rejected_ = metrics_.counter("tier.write_archived_rejected");
  obs::Counter* realloc_unmaps_ = metrics_.counter("tier.realloc_unmaps");
  obs::Counter* scrub_repairs_ = metrics_.counter("tier.scrub_repairs");
  obs::Counter* scrub_unrecoverable_ = metrics_.counter("tier.scrub_unrecoverable");
  obs::Counter* magnetic_fallbacks_ = metrics_.counter("tier.magnetic_fallbacks");
  obs::Gauge* archived_gauge_ = metrics_.gauge("tier.archived_blocks");
  obs::Gauge* archive_bytes_ = metrics_.gauge("tier.archive_bytes");
};

}  // namespace afs

#endif  // SRC_TIER_TIERED_STORE_H_
