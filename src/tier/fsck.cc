#include "src/tier/fsck.h"

#include <string>
#include <unordered_set>

namespace afs {

FsckReport RunTieredFsck(FileServer* server, TieredStore* tiered, const FsckOptions& options) {
  FsckReport report = RunFsck(server, options);

  std::unordered_set<BlockNo> magnetic;
  auto allocated = tiered->magnetic()->ListBlocks();
  if (allocated.ok()) {
    magnetic.insert(allocated->begin(), allocated->end());
  } else {
    report.clean = false;
    report.errors.push_back("tier: magnetic block list unreadable: " +
                            allocated.status().ToString());
  }

  for (const auto& [bno, abno] : tiered->MappingSnapshot()) {
    ++report.blocks_archived;
    const bool doubly_resident = magnetic.count(bno) > 0;
    if (tiered->archive()->ReadRecord(abno, bno).ok()) {
      ++report.archived_verified;
    } else {
      ++report.archived_corrupt;
      if (doubly_resident) {
        // T1: repairable — the magnetic copy survives, a scrub pass re-burns it.
        report.warnings.push_back("tier: archive record for block " + std::to_string(bno) +
                                  " at archive block " + std::to_string(abno) +
                                  " failed verification (magnetic copy present; scrub repairs)");
      } else {
        report.clean = false;
        report.errors.push_back("tier: block " + std::to_string(bno) +
                                " unreadable on BOTH tiers (archive block " +
                                std::to_string(abno) + " corrupt, magnetic copy freed)");
      }
    }
    if (doubly_resident) {
      // T2: the legal burn-to-free crash window; Mount()/ScrubPass() reconcile it.
      report.warnings.push_back("tier: block " + std::to_string(bno) +
                                " doubly resident (archived and still magnetic)");
    }
  }
  return report;
}

}  // namespace afs
