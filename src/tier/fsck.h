// RunTieredFsck: the core fsck invariants plus the archival ones.
//
//   T1  Every entry of the block-location map points at an archive record that parses,
//       CRC-verifies, and names that magnetic block as its source. A violation is an error
//       only when the magnetic tier no longer holds a copy either — then a committed block
//       is on neither tier; repairable rot is a warning (ScrubPass fixes it).
//   T2  Double residence (a block both mapped and still magnetically allocated) is a
//       warning: it is the legal crash window between burn and free, and Mount()/ScrubPass
//       reconcile it.
//
// The core invariants (I1..I6) run unchanged over the TieredStore: ListBlocks reports the
// union of both tiers and reads resolve through the location map, so reachability and
// accounting see archived blocks exactly as they saw magnetic ones.

#ifndef SRC_TIER_FSCK_H_
#define SRC_TIER_FSCK_H_

#include "src/core/fsck.h"
#include "src/tier/tiered_store.h"

namespace afs {

FsckReport RunTieredFsck(FileServer* server, TieredStore* tiered, const FsckOptions& options = {});

}  // namespace afs

#endif  // SRC_TIER_FSCK_H_
