// Scrubber: periodic archive integrity pass over a TieredStore.
//
// Write-once media rot silently; the paper's stable-pair answer — "consult the companion
// when the block ... is corrupted" — has an archival inverse here: each pass CRC-verifies
// every archived block's record, re-burns records whose magnetic source still exists
// (interrupted migrations leave one), and completes interrupted magnetic reclamations.
// See TieredStore::ScrubPass for the per-mapping rules.

#ifndef SRC_TIER_SCRUBBER_H_
#define SRC_TIER_SCRUBBER_H_

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "src/tier/tiered_store.h"

namespace afs {

struct ScrubberStats {
  uint64_t passes = 0;
  uint64_t checked = 0;
  uint64_t repaired = 0;
  uint64_t unrecoverable = 0;
  uint64_t reclaimed_redo = 0;
};

class Scrubber {
 public:
  explicit Scrubber(TieredStore* tiered) : tiered_(tiered) {}
  ~Scrubber() { Stop(); }

  // One synchronous pass.
  Result<TierScrubSummary> RunPass();

  // Background operation.
  void Start(std::chrono::milliseconds interval);
  void Stop();

  ScrubberStats stats() const;

 private:
  TieredStore* tiered_;

  mutable std::mutex mu_;
  ScrubberStats stats_;

  std::atomic<bool> stop_{false};
  std::thread background_;
};

}  // namespace afs

#endif  // SRC_TIER_SCRUBBER_H_
