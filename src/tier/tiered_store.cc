#include "src/tier/tiered_store.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace afs {

namespace {

// Unmap record payload: u32 count | count * u32 magnetic block number.
std::vector<uint8_t> EncodeUnmap(std::span<const BlockNo> bnos) {
  std::vector<uint8_t> payload(4 + 4 * bnos.size());
  const uint32_t n = static_cast<uint32_t>(bnos.size());
  std::memcpy(payload.data(), &n, 4);
  for (size_t i = 0; i < bnos.size(); ++i) {
    const uint32_t b = bnos[i];
    std::memcpy(payload.data() + 4 + 4 * i, &b, 4);
  }
  return payload;
}

std::vector<BlockNo> DecodeUnmap(const std::vector<uint8_t>& payload) {
  std::vector<BlockNo> bnos;
  if (payload.size() < 4) {
    return bnos;
  }
  uint32_t n;
  std::memcpy(&n, payload.data(), 4);
  if (payload.size() < 4 + 4ull * n) {
    return bnos;
  }
  bnos.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t b;
    std::memcpy(&b, payload.data() + 4 + 4ull * i, 4);
    bnos.push_back(b);
  }
  return bnos;
}

}  // namespace

TieredStore::TieredStore(BlockStore* magnetic, WriteOnceDisk* archive_disk,
                         TieredStoreOptions options)
    : inner_(magnetic), archive_(archive_disk), options_(options) {}

Status TieredStore::Mount() {
  if (inner_->payload_capacity() > archive_.payload_capacity()) {
    return InvalidArgumentError("archive blocks too small for the magnetic tier's payloads");
  }
  {
    std::unique_lock<std::shared_mutex> lock(map_mu_);
    map_.clear();
    RETURN_IF_ERROR(archive_.Mount([this](BlockNo abno, const ArchiveRecord& record) {
      // Replay in burn order: later records supersede earlier ones.
      if (record.kind == ArchiveRecordKind::kData) {
        map_[record.source] = abno;
      } else {
        for (BlockNo bno : DecodeUnmap(record.payload)) {
          map_.erase(bno);
        }
      }
    }));
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_.clear();
    cache_lru_.clear();
  }
  // Reconcile: a block both mapped and still allocated magnetically is an interrupted
  // migration (crash after burn, before free). The archive copy is authoritative — finish
  // the free.
  ASSIGN_OR_RETURN(std::vector<BlockNo> allocated, inner_->ListBlocks());
  std::vector<BlockNo> leftovers;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    for (BlockNo bno : allocated) {
      if (map_.count(bno) > 0) {
        leftovers.push_back(bno);
      }
    }
  }
  if (!leftovers.empty()) {
    RETURN_IF_ERROR(inner_->FreeMulti(leftovers));
    reclaim_redo_->Inc(leftovers.size());
    reclaimed_->Inc(leftovers.size());
  }
  RefreshGauges();
  return OkStatus();
}

// --- Read path --------------------------------------------------------------

Result<std::vector<uint8_t>> TieredStore::ReadArchived(BlockNo bno, BlockNo abno) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(bno);
    if (it != cache_.end()) {
      promo_hits_->Inc();
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
      return it->second.data;
    }
  }
  auto payload = archive_.ReadRecord(abno, bno);
  if (payload.ok()) {
    archive_reads_->Inc();
    obs::Trace(obs::TraceEvent::kTierPromote, bno, abno);
    CacheInsert(bno, *payload);
    return std::move(*payload);
  }
  // Archive rot: fall back to a magnetic leftover (double-residence window, or a scrub has
  // not yet repaired the record). "One tier or the other" applies to reads too.
  auto magnetic = inner_->Read(bno);
  if (magnetic.ok()) {
    magnetic_fallbacks_->Inc();
    return magnetic;
  }
  return payload.status();
}

Result<std::vector<uint8_t>> TieredStore::Read(BlockNo bno) {
  BlockNo abno = 0;
  bool mapped = false;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = map_.find(bno);
    if (it != map_.end()) {
      mapped = true;
      abno = it->second;
    }
  }
  if (mapped) {
    return ReadArchived(bno, abno);
  }
  return inner_->Read(bno);
}

Result<std::vector<BlockReadResult>> TieredStore::ReadMulti(std::span<const BlockNo> bnos) {
  // Partition: archived entries are served here, the rest go to the magnetic tier in one
  // vectored call, and the results are scattered back into request order.
  std::vector<size_t> magnetic_idx;
  std::vector<BlockNo> magnetic_bnos;
  std::vector<std::pair<size_t, BlockNo>> archived_idx;  // (result index, archive block)
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    if (map_.empty()) {
      lock.unlock();
      return inner_->ReadMulti(bnos);
    }
    for (size_t i = 0; i < bnos.size(); ++i) {
      auto it = map_.find(bnos[i]);
      if (it != map_.end()) {
        archived_idx.emplace_back(i, it->second);
      } else {
        magnetic_idx.push_back(i);
        magnetic_bnos.push_back(bnos[i]);
      }
    }
  }
  if (archived_idx.empty()) {
    return inner_->ReadMulti(bnos);
  }
  std::vector<BlockReadResult> results(bnos.size());
  if (!magnetic_bnos.empty()) {
    ASSIGN_OR_RETURN(std::vector<BlockReadResult> magnetic, inner_->ReadMulti(magnetic_bnos));
    for (size_t i = 0; i < magnetic_idx.size(); ++i) {
      results[magnetic_idx[i]] = std::move(magnetic[i]);
    }
  }
  for (const auto& [i, abno] : archived_idx) {
    auto payload = ReadArchived(bnos[i], abno);
    if (payload.ok()) {
      results[i].status = OkStatus();
      results[i].data = std::move(*payload);
    } else {
      results[i].status = payload.status();
    }
  }
  return results;
}

// --- Write path -------------------------------------------------------------

Status TieredStore::Write(BlockNo bno, std::span<const uint8_t> payload) {
  if (archived(bno)) {
    write_rejected_->Inc();
    return ReadOnlyError("block is archived on write-once media");
  }
  return inner_->Write(bno, payload);
}

Status TieredStore::WriteBatch(std::span<const BlockWrite> writes) {
  // Validate before anything lands: a batch naming any archived block fails whole, so the
  // per-chunk atomicity story of the inner store is not weakened by a mid-batch rejection.
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    if (!map_.empty()) {
      for (const BlockWrite& w : writes) {
        if (map_.count(w.bno) > 0) {
          write_rejected_->Inc();
          return ReadOnlyError("batch writes an archived block");
        }
      }
    }
  }
  return inner_->WriteBatch(writes);
}

// --- Allocation guard -------------------------------------------------------

Result<BlockNo> TieredStore::AllocWrite(std::span<const uint8_t> payload) {
  ASSIGN_OR_RETURN(BlockNo bno, inner_->AllocWrite(payload));
  if (archived(bno)) {
    // The magnetic allocator reused an archived block's number (cursor wraparound). The
    // stale mapping must be durably retracted before the number is handed out, or readers
    // of the new block would be served the dead block's archived bytes.
    BlockNo one[] = {bno};
    Status st = UnmapPersistently(one);
    if (!st.ok()) {
      (void)inner_->Free(bno);
      return st;
    }
    realloc_unmaps_->Inc();
  }
  return bno;
}

Result<std::vector<BlockNo>> TieredStore::AllocMulti(uint32_t n) {
  ASSIGN_OR_RETURN(std::vector<BlockNo> bnos, inner_->AllocMulti(n));
  std::vector<BlockNo> collisions;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    if (!map_.empty()) {
      for (BlockNo bno : bnos) {
        if (map_.count(bno) > 0) {
          collisions.push_back(bno);
        }
      }
    }
  }
  if (!collisions.empty()) {
    Status st = UnmapPersistently(collisions);
    if (!st.ok()) {
      (void)inner_->FreeMulti(bnos);
      return st;
    }
    realloc_unmaps_->Inc(collisions.size());
  }
  return bnos;
}

// --- Free path --------------------------------------------------------------

Status TieredStore::Free(BlockNo bno) {
  BlockNo one[] = {bno};
  RETURN_IF_ERROR(UnmapPersistently(one));
  return inner_->Free(bno);
}

Status TieredStore::FreeMulti(std::span<const BlockNo> bnos) {
  RETURN_IF_ERROR(UnmapPersistently(bnos));
  return inner_->FreeMulti(bnos);
}

Status TieredStore::UnmapPersistently(std::span<const BlockNo> bnos) {
  std::vector<BlockNo> mapped;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    if (map_.empty()) {
      return OkStatus();
    }
    for (BlockNo bno : bnos) {
      if (map_.count(bno) > 0) {
        mapped.push_back(bno);
      }
    }
  }
  if (mapped.empty()) {
    return OkStatus();
  }
  // Burn the retraction BEFORE forgetting the mapping: a crash in between leaves a live
  // mapping to a freed block, which is only a read of stale-but-valid bytes until the
  // number is reallocated — and reallocation runs this same guard first.
  const size_t per_record = (archive_.payload_capacity() - 4) / 4;
  for (size_t off = 0; off < mapped.size(); off += per_record) {
    const size_t len = std::min(per_record, mapped.size() - off);
    std::vector<uint8_t> payload =
        EncodeUnmap(std::span<const BlockNo>(mapped.data() + off, len));
    auto abno = archive_.Burn(ArchiveRecordKind::kUnmap, 0, payload);
    RETURN_IF_ERROR(abno.status());
  }
  {
    std::unique_lock<std::shared_mutex> lock(map_mu_);
    for (BlockNo bno : mapped) {
      map_.erase(bno);
    }
  }
  for (BlockNo bno : mapped) {
    CacheErase(bno);
  }
  RefreshGauges();
  return OkStatus();
}

// --- Locks / listing --------------------------------------------------------

Status TieredStore::Lock(BlockNo bno, Port owner) { return inner_->Lock(bno, owner); }

Status TieredStore::Unlock(BlockNo bno, Port owner) { return inner_->Unlock(bno, owner); }

Result<std::vector<BlockNo>> TieredStore::ListBlocks() {
  ASSIGN_OR_RETURN(std::vector<BlockNo> blocks, inner_->ListBlocks());
  std::unordered_set<BlockNo> seen(blocks.begin(), blocks.end());
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  for (const auto& [bno, abno] : map_) {
    if (seen.insert(bno).second) {
      blocks.push_back(bno);
    }
  }
  return blocks;
}

// --- Migration --------------------------------------------------------------

bool TieredStore::CrashCut(TierCrashPoint point) {
  return injector_ != nullptr && injector_->Fire(point);
}

Status TieredStore::MigrateBlocks(std::span<const BlockNo> bnos, uint64_t* migrated) {
  std::lock_guard<std::mutex> lock(migrate_mu_);
  obs::ScopedSpan span("tier.migrate", obs::SpanKind::kTier, bnos.size());
  if (migrated != nullptr) {
    *migrated = 0;
  }
  std::vector<BlockNo> todo;
  {
    std::unordered_set<BlockNo> seen;
    std::shared_lock<std::shared_mutex> map_lock(map_mu_);
    for (BlockNo bno : bnos) {
      if (map_.count(bno) == 0 && seen.insert(bno).second) {
        todo.push_back(bno);
      }
    }
  }
  if (todo.empty()) {
    return OkStatus();
  }
  if (CrashCut(TierCrashPoint::kBeforeBurn)) {
    return UnavailableError("simulated power cut before burn");
  }
  ASSIGN_OR_RETURN(std::vector<BlockReadResult> copies, inner_->ReadMulti(todo));

  // Phase 1: burn. Each burn is simultaneously the archive copy and the durable
  // location-map update; the in-memory mapping is adopted immediately after, so reads
  // switch to the archive while the magnetic copy still exists (double residence).
  std::vector<BlockNo> burned;
  Status burn_status = OkStatus();
  for (size_t i = 0; i < todo.size(); ++i) {
    if (!copies[i].status.ok()) {
      continue;  // freed under us (GC races migration by design) — nothing to archive
    }
    if (i > 0 && i == todo.size() / 2 && CrashCut(TierCrashPoint::kMidBurn)) {
      return UnavailableError("simulated power cut mid-burn");
    }
    auto abno = archive_.Burn(ArchiveRecordKind::kData, todo[i], copies[i].data);
    if (!abno.ok()) {
      burn_status = abno.status();  // e.g. archive full: keep what burned, free only that
      break;
    }
    {
      std::unique_lock<std::shared_mutex> map_lock(map_mu_);
      map_[todo[i]] = *abno;
    }
    obs::Trace(obs::TraceEvent::kTierMigrate, todo[i], *abno);
    burned.push_back(todo[i]);
  }
  if (CrashCut(TierCrashPoint::kAfterBurn)) {
    return UnavailableError("simulated power cut after burn, before free");
  }

  // Phase 2: reclaim the magnetic copies, only now that every location is durable.
  size_t free_upto = burned.size();
  const bool cut_mid_free = CrashCut(TierCrashPoint::kMidFree);
  if (cut_mid_free) {
    free_upto = burned.size() / 2;
  }
  if (free_upto > 0) {
    Status st = inner_->FreeMulti(std::span<const BlockNo>(burned.data(), free_upto));
    if (st.ok()) {
      reclaimed_->Inc(free_upto);
    }
    // On failure the copies linger doubly resident; Mount()/ScrubPass() finish the job.
  }
  if (cut_mid_free) {
    return UnavailableError("simulated power cut mid-free");
  }
  migrated_->Inc(burned.size());
  RefreshGauges();
  if (migrated != nullptr) {
    *migrated = burned.size();
  }
  if (CrashCut(TierCrashPoint::kAfterFree)) {
    return UnavailableError("simulated power cut after free");
  }
  return burn_status;
}

// --- Scrub ------------------------------------------------------------------

Result<TierScrubSummary> TieredStore::ScrubPass() {
  std::lock_guard<std::mutex> lock(migrate_mu_);
  obs::ScopedSpan span("tier.scrub", obs::SpanKind::kTier);
  TierScrubSummary summary;
  std::vector<std::pair<BlockNo, BlockNo>> snapshot;
  {
    std::shared_lock<std::shared_mutex> map_lock(map_mu_);
    snapshot.assign(map_.begin(), map_.end());
  }
  for (const auto& [bno, abno] : snapshot) {
    if (archive_.ReadRecord(abno, bno).ok()) {
      ++summary.checked;
      continue;
    }
    // Archive rot. If a magnetic copy survives (interrupted migration left one, or the
    // record was corrupted before its free), re-burn it — the repaired record supersedes
    // the rotten one on the next mount.
    auto magnetic = inner_->Read(bno);
    if (!magnetic.ok()) {
      ++summary.unrecoverable;
      scrub_unrecoverable_->Inc();
      continue;
    }
    ASSIGN_OR_RETURN(BlockNo new_abno,
                     archive_.Burn(ArchiveRecordKind::kData, bno, *magnetic));
    {
      std::unique_lock<std::shared_mutex> map_lock(map_mu_);
      map_[bno] = new_abno;
    }
    obs::Trace(obs::TraceEvent::kTierScrubRepair, bno, new_abno);
    ++summary.repaired;
    scrub_repairs_->Inc();
  }
  // Finish interrupted reclamations, as Mount() does.
  ASSIGN_OR_RETURN(std::vector<BlockNo> allocated, inner_->ListBlocks());
  std::vector<BlockNo> leftovers;
  {
    std::shared_lock<std::shared_mutex> map_lock(map_mu_);
    for (BlockNo bno : allocated) {
      if (map_.count(bno) > 0) {
        leftovers.push_back(bno);
      }
    }
  }
  // A just-repaired record's magnetic source is a leftover too: it was only still readable
  // because its free never completed. Freeing it here is the same reconcile rule.
  if (!leftovers.empty()) {
    RETURN_IF_ERROR(inner_->FreeMulti(leftovers));
    summary.reclaimed_redo = leftovers.size();
    reclaim_redo_->Inc(leftovers.size());
    reclaimed_->Inc(leftovers.size());
  }
  RefreshGauges();
  return summary;
}

// --- Introspection ----------------------------------------------------------

bool TieredStore::archived(BlockNo bno) const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  return map_.count(bno) > 0;
}

size_t TieredStore::archived_blocks() const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  return map_.size();
}

std::vector<std::pair<BlockNo, BlockNo>> TieredStore::MappingSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  return {map_.begin(), map_.end()};
}

TierStatInfo TieredStore::Stats() const {
  TierStatInfo info;
  info.enabled = true;
  info.archived_blocks = archived_blocks();
  info.archive_used_blocks = archive_.used_blocks();
  info.archive_capacity_blocks = archive_.capacity_blocks();
  info.archive_bytes = archive_.bytes_burned();
  info.migrated_total = migrated_->value();
  info.promotions = archive_reads_->value();
  info.scrub_repairs = scrub_repairs_->value();
  info.magnetic_reclaimed = reclaimed_->value();
  return info;
}

// --- Promotion cache --------------------------------------------------------

void TieredStore::CacheInsert(BlockNo bno, std::vector<uint8_t> data) {
  if (options_.promotion_cache_blocks == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(bno);
  if (it != cache_.end()) {
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.lru_it);
    it->second.data = std::move(data);
    return;
  }
  while (cache_.size() >= options_.promotion_cache_blocks && !cache_lru_.empty()) {
    cache_.erase(cache_lru_.back());
    cache_lru_.pop_back();
  }
  cache_lru_.push_front(bno);
  cache_.emplace(bno, CacheEntry{std::move(data), cache_lru_.begin()});
  promotions_->Inc();
}

void TieredStore::CacheErase(BlockNo bno) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(bno);
  if (it != cache_.end()) {
    cache_lru_.erase(it->second.lru_it);
    cache_.erase(it);
  }
}

void TieredStore::DropPromotions() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
  cache_lru_.clear();
}

void TieredStore::RefreshGauges() {
  archived_gauge_->Set(static_cast<int64_t>(archived_blocks()));
  archive_bytes_->Set(static_cast<int64_t>(archive_.bytes_burned()));
}

}  // namespace afs
