// Migrator: the background archival policy over a TieredStore (paper §6: "the version
// mechanism ... seems an ideal file store for optical disks").
//
// Each cycle walks the committed version trees of every file — the same level-synchronous
// vectored traversal the GC mark phase uses (WalkVersionTree) — and partitions blocks:
//
//   hot (never archived):
//     * the file table page chain (rewritten on every create/delete/prune);
//     * every version PAGE chain, current or old — version pages are the one page kind
//       overwritten in place (commit's test-and-set, GC pruning, sub-file version pages
//       nested in super-file trees), so they must stay on rewritable media;
//     * the full tree of each file's newest `keep_hot_versions` committed versions (the
//       working set clients read and base updates on);
//     * every live uncommitted version's tree (snapshotted before the chain walks, the
//       GC's root-set ordering argument).
//   eligible (archive + reclaim):
//     * plain page chains of older committed versions — immutable by the version
//       mechanism's construction — minus anything also reachable hot (copy-on-write means
//       old and current trees share unmodified subtrees).
//
// Eligible blocks are handed to TieredStore::MigrateBlocks, whose burn → record-location →
// free-magnetic ordering keeps every committed version readable at any crash point.
// Safety against concurrent commits mirrors the GC: a version that commits mid-cycle is
// either in the re-read chain (walked hot) or was uncommitted at the snapshot (walked
// hot); blocks it allocated are in neither walk and are never candidates. A failed page
// read aborts the cycle conservatively — cold data survives to the next cycle.

#ifndef SRC_TIER_MIGRATOR_H_
#define SRC_TIER_MIGRATOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/gc.h"
#include "src/tier/tiered_store.h"

namespace afs {

struct MigratorOptions {
  // Newest committed versions per file whose whole tree stays magnetic (>= 1; the current
  // version is always hot).
  uint32_t keep_hot_versions = 1;
};

struct MigratorStats {
  uint64_t cycles = 0;
  uint64_t blocks_migrated = 0;
  uint64_t cycles_aborted = 0;
};

class Migrator {
 public:
  // `servers` are the live file servers of the deployment (the first one's file table and
  // page store drive the walk; all share `tiered` as their block store).
  Migrator(std::vector<FileServer*> servers, TieredStore* tiered, MigratorOptions options = {});
  ~Migrator();

  // One full cycle: classify, then migrate. Returns the number of blocks newly archived.
  // Safe to run while the system serves requests and while the GC runs.
  Result<uint64_t> RunCycle();

  // Background operation.
  void Start(std::chrono::milliseconds interval);
  void Stop();

  MigratorStats stats() const;

 private:
  // Classify every committed block; returns the eligible (cold, unarchived) set.
  Result<std::vector<BlockNo>> CollectEligible();

  std::vector<FileServer*> servers_;
  TieredStore* tiered_;
  MigratorOptions options_;

  mutable std::mutex mu_;
  MigratorStats stats_;

  std::atomic<bool> stop_{false};
  std::thread background_;
};

}  // namespace afs

#endif  // SRC_TIER_MIGRATOR_H_
