#include "src/tier/scrubber.h"

namespace afs {

Result<TierScrubSummary> Scrubber::RunPass() {
  ASSIGN_OR_RETURN(TierScrubSummary summary, tiered_->ScrubPass());
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.passes;
  stats_.checked += summary.checked;
  stats_.repaired += summary.repaired;
  stats_.unrecoverable += summary.unrecoverable;
  stats_.reclaimed_redo += summary.reclaimed_redo;
  return summary;
}

void Scrubber::Start(std::chrono::milliseconds interval) {
  Stop();
  stop_.store(false);
  background_ = std::thread([this, interval] {
    while (!stop_.load()) {
      (void)RunPass();
      for (int i = 0; i < 100 && !stop_.load(); ++i) {
        std::this_thread::sleep_for(interval / 100);
      }
    }
  });
}

void Scrubber::Stop() {
  stop_.store(true);
  if (background_.joinable()) {
    background_.join();
  }
}

ScrubberStats Scrubber::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace afs
