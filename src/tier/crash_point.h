// TierCrashPoint: fault-injection sites inside the migrate → record-location →
// free-magnetic sequence of TieredStore::MigrateBlocks.
//
// Each point names one instant at which a power cut would leave the two tiers in a distinct
// intermediate state. The migration protocol's invariant — every committed version stays
// readable from one tier or the other — must hold at every point; tests arm an injector,
// drive a migration until it fires, simulate a restart (fresh WriteOnceDisk + TieredStore
// over the same media), and assert every committed version still reads back byte-identical.
// The per-point media states are catalogued in docs/TIERING.md's crash matrix.

#ifndef SRC_TIER_CRASH_POINT_H_
#define SRC_TIER_CRASH_POINT_H_

#include <mutex>
#include <optional>

namespace afs {

enum class TierCrashPoint : int {
  kBeforeBurn = 0,  // batch read from magnetic done, nothing burned: pure magnetic state
  kMidBurn,         // some blocks burned (location recorded), the rest still magnetic-only
  kAfterBurn,       // every block burned + location durable, magnetic copies all still live
  kMidFree,         // half the magnetic copies freed, the rest doubly resident
  kAfterFree,       // frees complete; the cut lands before stats are finalised
};

inline constexpr TierCrashPoint kAllTierCrashPoints[] = {
    TierCrashPoint::kBeforeBurn, TierCrashPoint::kMidBurn, TierCrashPoint::kAfterBurn,
    TierCrashPoint::kMidFree,    TierCrashPoint::kAfterFree,
};

// "before_burn" etc., for parameterised test names and logs.
inline const char* TierCrashPointName(TierCrashPoint point) {
  switch (point) {
    case TierCrashPoint::kBeforeBurn:
      return "before_burn";
    case TierCrashPoint::kMidBurn:
      return "mid_burn";
    case TierCrashPoint::kAfterBurn:
      return "after_burn";
    case TierCrashPoint::kMidFree:
      return "mid_free";
    case TierCrashPoint::kAfterFree:
      return "after_free";
  }
  return "unknown";
}

// Arms at most one crash point; the first migration visit to that site fires it (exactly
// once) and MigrateBlocks abandons the cycle as if the power had been cut. Same shape as
// CrashPointInjector so the two catalogues read alike.
class TierCrashInjector {
 public:
  void Arm(TierCrashPoint point) {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = point;
    fired_ = false;
  }

  // True exactly once, when `point` is the armed site. Consumes the arming.
  bool Fire(TierCrashPoint point) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.has_value() || *armed_ != point) {
      return false;
    }
    armed_.reset();
    fired_ = true;
    return true;
  }

  bool fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

 private:
  mutable std::mutex mu_;
  std::optional<TierCrashPoint> armed_;
  bool fired_ = false;
};

}  // namespace afs

#endif  // SRC_TIER_CRASH_POINT_H_
