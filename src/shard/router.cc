#include "src/shard/router.h"

#include <utility>

#include "src/base/wire.h"
#include "src/core/protocol.h"
#include "src/obs/span.h"
#include "src/rpc/client.h"

namespace afs {

ShardRouter::ShardRouter(ShardMap map,
                         std::function<Transport*(const ShardEntry&)> transport_for)
    : transport_for_(std::move(transport_for)), map_(std::move(map)) {}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Make(
    ShardMap map, std::function<Transport*(const ShardEntry&)> transport_for) {
  RETURN_IF_ERROR(map.Validate());
  std::unique_ptr<ShardRouter> router(
      new ShardRouter(std::move(map), std::move(transport_for)));
  std::unique_lock<std::shared_mutex> lock(router->mu_);
  RETURN_IF_ERROR(router->RebuildLocked());
  lock.unlock();
  return router;
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Make(ShardMap map, Transport* shared) {
  return Make(std::move(map), [shared](const ShardEntry&) { return shared; });
}

Status ShardRouter::RebuildLocked() {
  std::vector<std::shared_ptr<FileClient>> clients(map_.shards.size());
  for (const ShardEntry& entry : map_.shards) {
    Transport* transport = transport_for_(entry);
    if (transport == nullptr) {
      return UnavailableError("no transport for shard " + std::to_string(entry.shard_id));
    }
    clients[entry.shard_id] = std::make_shared<FileClient>(transport, entry.file_servers);
  }
  clients_ = std::move(clients);
  return OkStatus();
}

uint32_t ShardRouter::num_shards() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.num_shards();
}

ShardMap ShardRouter::map() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_;
}

Status ShardRouter::Reload(ShardMap map) {
  RETURN_IF_ERROR(map.Validate());
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (map.epoch <= map_.epoch) {
    return InvalidArgumentError("stale shard map (epoch " + std::to_string(map.epoch) +
                                " <= " + std::to_string(map_.epoch) + ")");
  }
  ShardMap previous = std::move(map_);
  map_ = std::move(map);
  Status st = RebuildLocked();
  if (!st.ok()) {
    map_ = std::move(previous);  // clients_ for the old map are still intact
    return st;
  }
  reloads_->Inc();
  return OkStatus();
}

uint32_t ShardRouter::ShardOf(const Capability& file) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return map_.ShardOfFile(file.object);
}

Result<std::shared_ptr<FileClient>> ShardRouter::ClientFor(uint32_t shard_id) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (shard_id >= clients_.size() || clients_[shard_id] == nullptr) {
    route_errors_->Inc();
    return NotFoundError("no shard " + std::to_string(shard_id) + " in the map");
  }
  routes_->Inc();
  return clients_[shard_id];
}

Result<std::shared_ptr<FileClient>> ShardRouter::ClientForFile(const Capability& file) {
  uint32_t shard = ShardOf(file);
  obs::ScopedSpan span("shard.route", obs::SpanKind::kClient, file.object, shard);
  return ClientFor(shard);
}

Result<Capability> ShardRouter::CreateFileOn(uint32_t shard_id) {
  ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client, ClientFor(shard_id));
  return client->CreateFile();
}

Result<Capability> ShardRouter::CreateFile() {
  uint64_t next = next_placement_.fetch_add(1, std::memory_order_relaxed);
  return CreateFileOn(static_cast<uint32_t>(next % num_shards()));
}

// ----- CrossTransaction ---------------------------------------------------------------

Result<Capability> CrossTransaction::CreateVersion(const Capability& file) {
  Participant p;
  p.shard = router_->ShardOf(file);
  p.file = file;
  ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client, router_->ClientFor(p.shard));
  ASSIGN_OR_RETURN(p.version, client->CreateVersion(file));
  Capability version = p.version;
  participants_.push_back(std::move(p));
  return version;
}

Result<std::shared_ptr<FileClient>> CrossTransaction::Client(const Capability& file) {
  return router_->ClientForFile(file);
}

Result<std::vector<BlockNo>> CrossTransaction::Commit() {
  if (participants_.empty()) {
    return InvalidArgumentError("transaction has no participants");
  }
  if (participants_.size() == 1) {
    // Single-shard fast path: the ordinary optimistic commit, untouched.
    const Participant& p = participants_.front();
    ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client, router_->ClientFor(p.shard));
    ASSIGN_OR_RETURN(BlockNo head, client->Commit(p.version));
    return std::vector<BlockNo>{head};
  }
  // Two-phase path, coordinated by the first participant's shard.
  obs::ScopedSpan span("shard.cross_commit", obs::SpanKind::kClient,
                       participants_.size(), participants_.front().shard);
  ASSIGN_OR_RETURN(std::shared_ptr<FileClient> coord,
                   router_->ClientFor(participants_.front().shard));
  WireEncoder req;
  req.PutU32(static_cast<uint32_t>(participants_.size()));
  for (const Participant& p : participants_) {
    req.PutU32(p.shard);
    req.PutCapability(p.version);
  }
  Status last = UnavailableError("no file servers configured");
  for (Port server : coord->servers()) {
    auto reply = CallAndCheck(coord->transport(), server,
                              static_cast<uint32_t>(FileOp::kCrossCommit), std::move(req));
    if (reply.ok()) {
      ASSIGN_OR_RETURN(uint32_t n, reply->GetU32());
      std::vector<BlockNo> heads;
      heads.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(BlockNo head, reply->GetU32());
        heads.push_back(head);
      }
      return heads;
    }
    last = reply.status();
    if (last.code() != ErrorCode::kCrashed && last.code() != ErrorCode::kTimeout &&
        last.code() != ErrorCode::kUnavailable) {
      break;  // a real verdict (conflict, invalid), not connectivity — do not fail over
    }
    // Re-encode for the next server: CallAndCheck consumed the encoder.
    req = WireEncoder();
    req.PutU32(static_cast<uint32_t>(participants_.size()));
    for (const Participant& p : participants_) {
      req.PutU32(p.shard);
      req.PutCapability(p.version);
    }
  }
  span.set_status(static_cast<uint8_t>(last.code()));
  return last;
}

Status CrossTransaction::Abort() {
  Status first = OkStatus();
  for (const Participant& p : participants_) {
    auto client = router_->ClientFor(p.shard);
    Status st = client.ok() ? (*client)->Abort(p.version) : client.status();
    if (!st.ok() && first.ok()) {
      first = st;
    }
  }
  participants_.clear();
  return first;
}

}  // namespace afs
