// ShardCoordinator: the optimistic two-phase commit driver (docs/SHARDING.md §3).
//
// Phase 1 sends kPrepare to every participant's managing server: each runs the full §5.2
// Kung–Robinson validation and, on success, stages its version at the end of the chain
// behind an on-disk in-doubt marker. Phase 2 sends the verdict: commit iff every
// participant prepared. Between the phases the coordinator durably logs the commit
// decision (DecisionLog, presumed abort) — the classic 2PC commit point, here guarding an
// optimistically validated transaction rather than a lock-based one.
//
// Every coordinator has an identity: the shard it serves, embedded (with the decision
// log's incarnation) in each transaction id it mints (src/shard/txn_id.h). Recovery is
// scoped by that identity — RecoverInDoubt decides only transactions this coordinator
// owns, because only the owner's decision log can distinguish "committed" from "presumed
// abort"; everyone else's in-doubt prepares are left for their own coordinators.
//
// Crash accounting (the chaos suite drives each arm):
//   - die before the log record:  no participant may commit; recovery presumes abort.
//   - die after the log record:   every participant must commit; recovery finishes phase 2.
// RecoverInDoubt scrapes every shard's in-doubt list (kListInDoubt) and applies exactly
// that rule to owned transactions, skipping ones still in flight in this process (a
// concurrent operator-triggered sweep must not presume-abort a transaction that is
// between its prepares and its commit point).

#ifndef SRC_SHARD_COORDINATOR_H_
#define SRC_SHARD_COORDINATOR_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/file_server.h"
#include "src/obs/metrics.h"
#include "src/shard/decision_log.h"
#include "src/shard/router.h"

namespace afs {

class ShardCoordinator {
 public:
  // `self_shard` is the shard this coordinator serves — the owner stamped into every
  // transaction id it mints. `router` and `log` must outlive the coordinator. `metrics`
  // (optional) hosts the coordinator's instruments — pass the serving file server's
  // registry so remote stats scrapes see them; defaults to a private registry.
  ShardCoordinator(uint32_t self_shard, ShardRouter* router, DecisionLog* log,
                   obs::MetricRegistry* metrics = nullptr);

  // Expose this coordinator through `server`'s RPC surface (kCrossCommit, kResolveTxn).
  void Serve(FileServer* server);

  // The two-phase commit. Participants must be on pairwise distinct shards (one staged
  // version per transaction per shard — the in-doubt marker names one transaction).
  // Returns committed heads in participant order.
  Result<std::vector<BlockNo>> CommitCross(
      const std::vector<std::pair<uint32_t, Capability>>& participants);

  // Presumed-abort resolution: the logged verdict for `txn_id`. Refuses transactions
  // owned by another shard's coordinator — this log's silence says nothing about them.
  Result<bool> Resolve(uint64_t txn_id) const;

  struct RecoveryStats {
    uint64_t resolved_commit = 0;
    uint64_t resolved_abort = 0;
    // In-doubt entries left alone: owned by another shard's coordinator, or still in
    // flight in this process. (Counted per listing server, like the resolutions are
    // counted per shard.)
    uint64_t skipped_foreign = 0;
    uint64_t skipped_live = 0;
  };
  // Finish every in-doubt transaction THIS coordinator owns, on any shard in the map.
  // Idempotent; run after a coordinator restart, or by an operator via afs_shell. A
  // server that is down or answers garbage is skipped — the sweep keeps going and the
  // next run picks the stragglers up.
  Result<RecoveryStats> RecoverInDoubt();

  uint32_t self_shard() const { return self_shard_; }

  // Test hook: called at the named point inside CommitCross ("prepared" = all participants
  // staged, decision not yet logged; "logged" = decision durable, phase 2 not yet sent).
  // afs_server wires this to the AFS_SHARD_CRASH kill switch for the chaos suite.
  void set_crash_hook(std::function<void(const char*)> hook) {
    crash_hook_ = std::move(hook);
  }

 private:
  Result<BlockNo> CallPrepare(uint32_t shard, const Capability& version, uint64_t txn_id);
  Status CallDecide(uint32_t shard, Port server, uint64_t txn_id, bool commit);
  bool InFlight(uint64_t txn_id) const;

  const uint32_t self_shard_;
  ShardRouter* router_;
  DecisionLog* log_;
  std::function<void(const char*)> crash_hook_;

  std::atomic<uint32_t> next_sequence_{0};
  // Transactions between id mint and CommitCross return: the fence that keeps a
  // concurrent RecoverInDoubt from presume-aborting a prepare whose commit point is
  // still ahead.
  mutable std::mutex in_flight_mu_;
  std::unordered_set<uint64_t> in_flight_;

  obs::MetricRegistry own_metrics_{"shard.coord"};
  obs::Counter* cross_commits_;
  obs::Counter* cross_aborts_;
  obs::Counter* cross_prepare_fails_;
  obs::Counter* recovered_commits_;
  obs::Counter* recovered_aborts_;
  obs::Histogram* cross_latency_ns_;
};

}  // namespace afs

#endif  // SRC_SHARD_COORDINATOR_H_
