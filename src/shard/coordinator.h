// ShardCoordinator: the optimistic two-phase commit driver (docs/SHARDING.md §3).
//
// Phase 1 sends kPrepare to every participant's managing server: each runs the full §5.2
// Kung–Robinson validation and, on success, stages its version at the end of the chain
// behind an on-disk in-doubt marker. Phase 2 sends the verdict: commit iff every
// participant prepared. Between the phases the coordinator durably logs the commit
// decision (DecisionLog, presumed abort) — the classic 2PC commit point, here guarding an
// optimistically validated transaction rather than a lock-based one.
//
// Crash accounting (the chaos suite drives each arm):
//   - die before the log record:  no participant may commit; recovery presumes abort.
//   - die after the log record:   every participant must commit; recovery finishes phase 2.
// RecoverInDoubt scrapes every shard's in-doubt list (kListInDoubt) and applies exactly
// that rule.

#ifndef SRC_SHARD_COORDINATOR_H_
#define SRC_SHARD_COORDINATOR_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/core/file_server.h"
#include "src/obs/metrics.h"
#include "src/shard/decision_log.h"
#include "src/shard/router.h"

namespace afs {

class ShardCoordinator {
 public:
  // `router` and `log` must outlive the coordinator. `metrics` (optional) hosts the
  // coordinator's instruments — pass the serving file server's registry so remote stats
  // scrapes see them; defaults to a private registry.
  ShardCoordinator(ShardRouter* router, DecisionLog* log,
                   obs::MetricRegistry* metrics = nullptr);

  // Expose this coordinator through `server`'s RPC surface (kCrossCommit, kResolveTxn).
  void Serve(FileServer* server);

  // The two-phase commit. Participants must be on pairwise distinct shards (one staged
  // version per transaction per shard — the in-doubt marker names one transaction).
  // Returns committed heads in participant order.
  Result<std::vector<BlockNo>> CommitCross(
      const std::vector<std::pair<uint32_t, Capability>>& participants);

  // Presumed-abort resolution: the logged verdict for `txn_id`.
  Result<bool> Resolve(uint64_t txn_id) const;

  struct RecoveryStats {
    uint64_t resolved_commit = 0;
    uint64_t resolved_abort = 0;
  };
  // Finish every in-doubt transaction visible on any shard. Idempotent; run after a
  // coordinator restart, or by an operator via afs_shell.
  Result<RecoveryStats> RecoverInDoubt();

  // Test hook: called at the named point inside CommitCross ("prepared" = all participants
  // staged, decision not yet logged; "logged" = decision durable, phase 2 not yet sent).
  // afs_server wires this to the AFS_SHARD_CRASH kill switch for the chaos suite.
  void set_crash_hook(std::function<void(const char*)> hook) {
    crash_hook_ = std::move(hook);
  }

 private:
  Result<BlockNo> CallPrepare(uint32_t shard, const Capability& version, uint64_t txn_id);
  Status CallDecide(uint32_t shard, Port server, uint64_t txn_id, bool commit);

  ShardRouter* router_;
  DecisionLog* log_;
  std::function<void(const char*)> crash_hook_;

  std::mutex rng_mu_;
  Rng rng_;

  obs::MetricRegistry own_metrics_{"shard.coord"};
  obs::Counter* cross_commits_;
  obs::Counter* cross_aborts_;
  obs::Counter* cross_prepare_fails_;
  obs::Counter* recovered_commits_;
  obs::Counter* recovered_aborts_;
  obs::Histogram* cross_latency_ns_;
};

}  // namespace afs

#endif  // SRC_SHARD_COORDINATOR_H_
