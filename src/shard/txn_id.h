// Cross-shard transaction id layout (docs/SHARDING.md §3).
//
// A transaction id names its coordinator, not just the transaction:
//
//   bits 63..48  owner shard id          — the shard whose coordinator minted the id
//   bits 47..32  coordinator incarnation — from the durable decision log, bumped per open
//   bits 31..0   sequence                — per-incarnation counter, starting at 1
//
// Ownership is what makes in-doubt resolution safe when EVERY shard runs a recovery
// sweep: presumed abort reads an *absence* from a decision log, and an absence only means
// "aborted" in the one log the commit record would have been written to — the owner's.
// A recovering shard therefore resolves only transactions it owns and leaves the rest to
// their coordinators. The incarnation makes ids unique across coordinator restarts, so a
// committed id from a dead incarnation can never collide with a fresh prepare and be
// mistaken for already-committed. (The 16-bit incarnation wraps after 65,535 restarts of
// one shard; a collision additionally needs the same 32-bit sequence and a commit record
// that survived that many compactions — accepted.)

#ifndef SRC_SHARD_TXN_ID_H_
#define SRC_SHARD_TXN_ID_H_

#include <cstdint>

namespace afs {

inline constexpr uint64_t MakeTxnId(uint32_t owner_shard, uint64_t incarnation,
                                    uint32_t sequence) {
  return (static_cast<uint64_t>(owner_shard & 0xffff) << 48) |
         ((incarnation & 0xffff) << 32) | sequence;
}

inline constexpr uint32_t TxnOwnerShard(uint64_t txn_id) {
  return static_cast<uint32_t>(txn_id >> 48);
}

inline constexpr uint64_t TxnIncarnation(uint64_t txn_id) { return (txn_id >> 32) & 0xffff; }

inline constexpr uint32_t TxnSequence(uint64_t txn_id) {
  return static_cast<uint32_t>(txn_id);
}

}  // namespace afs

#endif  // SRC_SHARD_TXN_ID_H_
