#include "src/shard/discovery.h"

#include "src/net/socket.h"
#include "src/net/tcp_server.h"

namespace afs {

Result<ShardMap> DiscoverShardMap(
    const std::vector<std::string>& addresses,
    std::vector<std::unique_ptr<net::TcpTransport>>* transports) {
  ShardMap map;
  map.epoch = 1;
  transports->clear();
  for (size_t i = 0; i < addresses.size(); ++i) {
    ASSIGN_OR_RETURN(auto hostport, net::SplitHostPort(addresses[i]));
    auto transport =
        std::make_unique<net::TcpTransport>(hostport.first, hostport.second);
    ASSIGN_OR_RETURN(net::TcpTransport::HelloInfo hello, transport->SayHello());
    ShardEntry entry;
    entry.shard_id = static_cast<uint32_t>(i);
    entry.name = "shard" + std::to_string(i);
    entry.address = addresses[i];
    for (const net::TcpTransport::HelloEntry& svc : hello.services) {
      if (svc.kind == static_cast<uint8_t>(net::ServiceKind::kFileServer)) {
        entry.file_servers.push_back(svc.port);
      } else if (svc.kind == static_cast<uint8_t>(net::ServiceKind::kDirectoryServer) &&
                 entry.directory == kNullPort) {
        entry.directory = svc.port;
      }
    }
    map.shards.push_back(std::move(entry));
    transports->push_back(std::move(transport));
  }
  RETURN_IF_ERROR(map.Validate());
  return map;
}

}  // namespace afs
