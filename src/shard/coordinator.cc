#include "src/shard/coordinator.h"

#include <chrono>
#include <unordered_set>

#include "src/base/wire.h"
#include "src/core/protocol.h"
#include "src/obs/span.h"
#include "src/rpc/client.h"

namespace afs {

ShardCoordinator::ShardCoordinator(ShardRouter* router, DecisionLog* log,
                                   obs::MetricRegistry* metrics)
    : router_(router),
      log_(log),
      // Transaction ids must not collide across coordinator incarnations: seed from the
      // object identity, then never reuse (NextU64 stream).
      rng_(Mix64(reinterpret_cast<uint64_t>(this)) | 1) {
  obs::MetricRegistry* reg = metrics != nullptr ? metrics : &own_metrics_;
  cross_commits_ = reg->counter("shard.cross_commit");
  cross_aborts_ = reg->counter("shard.cross_abort");
  cross_prepare_fails_ = reg->counter("shard.cross_prepare_fail");
  recovered_commits_ = reg->counter("shard.cross_recovered_commit");
  recovered_aborts_ = reg->counter("shard.cross_recovered_abort");
  cross_latency_ns_ = reg->histogram("shard.cross_latency_ns");
}

void ShardCoordinator::Serve(FileServer* server) {
  FileServer::ShardAdminHooks hooks;
  hooks.cross_commit =
      [this](const std::vector<std::pair<uint32_t, Capability>>& participants) {
        return CommitCross(participants);
      };
  hooks.resolve = [this](uint64_t txn_id) { return Resolve(txn_id); };
  server->SetShardAdmin(std::move(hooks));
}

Result<BlockNo> ShardCoordinator::CallPrepare(uint32_t shard, const Capability& version,
                                              uint64_t txn_id) {
  ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client, router_->ClientFor(shard));
  WireEncoder req;
  req.PutCapability(version);
  req.PutU64(txn_id);
  // Version operations go to the version's managing server, like every FileClient op.
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(client->transport(), version.port,
                                static_cast<uint32_t>(FileOp::kPrepare), std::move(req)));
  return reply.GetU32();
}

Status ShardCoordinator::CallDecide(uint32_t shard, Port server, uint64_t txn_id,
                                    bool commit) {
  ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client, router_->ClientFor(shard));
  WireEncoder req;
  req.PutU64(txn_id);
  req.PutU8(commit ? 1 : 0);
  return CallAndCheck(client->transport(), server,
                      static_cast<uint32_t>(FileOp::kDecide), std::move(req))
      .status();
}

Result<std::vector<BlockNo>> ShardCoordinator::CommitCross(
    const std::vector<std::pair<uint32_t, Capability>>& participants) {
  if (participants.empty()) {
    return InvalidArgumentError("cross-shard commit has no participants");
  }
  if (participants.size() == 1) {
    // Degenerate transaction: the plain single-shard commit, no staging.
    ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client,
                     router_->ClientFor(participants.front().first));
    ASSIGN_OR_RETURN(BlockNo head, client->Commit(participants.front().second));
    return std::vector<BlockNo>{head};
  }
  std::unordered_set<uint32_t> distinct;
  for (const auto& [shard, version] : participants) {
    if (!distinct.insert(shard).second) {
      return InvalidArgumentError(
          "cross-shard commit needs one participant per shard (shard " +
          std::to_string(shard) + " appears twice)");
    }
  }

  uint64_t txn_id;
  {
    std::lock_guard<std::mutex> lock(rng_mu_);
    txn_id = rng_.NextU64() | 1;
  }
  const auto start = std::chrono::steady_clock::now();
  obs::ScopedSpan span("shard.coordinate", obs::SpanKind::kPhase, txn_id,
                       participants.size());

  // Phase 1: every participant validates and stages. First failure aborts the whole
  // transaction — participants already staged get the abort verdict immediately.
  std::vector<BlockNo> heads;
  heads.reserve(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    const auto& [shard, version] = participants[i];
    Result<BlockNo> head = CallPrepare(shard, version, txn_id);
    if (!head.ok()) {
      cross_prepare_fails_->Inc();
      for (size_t j = 0; j < i; ++j) {
        (void)CallDecide(participants[j].first, participants[j].second.port, txn_id,
                         /*commit=*/false);
      }
      cross_aborts_->Inc();
      span.set_status(static_cast<uint8_t>(head.status().code()));
      return head.status();
    }
    heads.push_back(*head);
  }
  if (crash_hook_) {
    crash_hook_("prepared");
  }

  // The commit point: durable before any participant may flip.
  if (Status st = log_->LogCommit(txn_id, [&] {
        std::vector<uint32_t> shards;
        shards.reserve(participants.size());
        for (const auto& [shard, version] : participants) {
          shards.push_back(shard);
        }
        return shards;
      }());
      !st.ok()) {
    for (const auto& [shard, version] : participants) {
      (void)CallDecide(shard, version.port, txn_id, /*commit=*/false);
    }
    cross_aborts_->Inc();
    span.set_status(static_cast<uint8_t>(st.code()));
    return st;
  }
  if (crash_hook_) {
    crash_hook_("logged");
  }

  // Phase 2: the verdict. A participant that misses it (crash, partition) stays in doubt
  // and is finished by RecoverInDoubt — the decision is already durable.
  for (const auto& [shard, version] : participants) {
    (void)CallDecide(shard, version.port, txn_id, /*commit=*/true);
  }
  cross_commits_->Inc();
  cross_latency_ns_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count()));
  return heads;
}

Result<bool> ShardCoordinator::Resolve(uint64_t txn_id) const {
  return log_->Committed(txn_id);
}

Result<ShardCoordinator::RecoveryStats> ShardCoordinator::RecoverInDoubt() {
  RecoveryStats stats;
  ShardMap map = router_->map();
  for (const ShardEntry& entry : map.shards) {
    ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client, router_->ClientFor(entry.shard_id));
    // Servers of one group share a store, so after a restart several may list the same
    // rediscovered tip: the verdict goes to each of them (each holds its own in-memory
    // prepared entry), but the transaction counts once per shard.
    std::unordered_set<uint64_t> counted;
    for (Port server : entry.file_servers) {
      auto reply = CallAndCheck(client->transport(), server,
                                static_cast<uint32_t>(FileOp::kListInDoubt), WireEncoder());
      if (!reply.ok()) {
        continue;  // a down server recovers its own tips on restart; nothing to do now
      }
      ASSIGN_OR_RETURN(uint32_t n, reply->GetU32());
      for (uint32_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(BlockNo head, reply->GetU32());
        (void)head;
        ASSIGN_OR_RETURN(uint64_t txn_id, reply->GetU64());
        const bool commit = log_->Committed(txn_id);
        if (CallDecide(entry.shard_id, server, txn_id, commit).ok() &&
            counted.insert(txn_id).second) {
          (commit ? stats.resolved_commit : stats.resolved_abort) += 1;
          (commit ? recovered_commits_ : recovered_aborts_)->Inc();
        }
      }
    }
  }
  return stats;
}

}  // namespace afs
