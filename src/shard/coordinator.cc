#include "src/shard/coordinator.h"

#include <chrono>
#include <unordered_set>

#include "src/base/wire.h"
#include "src/core/protocol.h"
#include "src/obs/span.h"
#include "src/rpc/client.h"
#include "src/shard/txn_id.h"

namespace afs {
namespace {

// Removes a transaction from the in-flight set on every exit from CommitCross.
class InFlightGuard {
 public:
  InFlightGuard(std::mutex* mu, std::unordered_set<uint64_t>* set, uint64_t txn_id)
      : mu_(mu), set_(set), txn_id_(txn_id) {
    std::lock_guard<std::mutex> lock(*mu_);
    set_->insert(txn_id_);
  }
  ~InFlightGuard() {
    std::lock_guard<std::mutex> lock(*mu_);
    set_->erase(txn_id_);
  }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::mutex* mu_;
  std::unordered_set<uint64_t>* set_;
  uint64_t txn_id_;
};

}  // namespace

ShardCoordinator::ShardCoordinator(uint32_t self_shard, ShardRouter* router,
                                   DecisionLog* log, obs::MetricRegistry* metrics)
    : self_shard_(self_shard), router_(router), log_(log) {
  obs::MetricRegistry* reg = metrics != nullptr ? metrics : &own_metrics_;
  cross_commits_ = reg->counter("shard.cross_commit");
  cross_aborts_ = reg->counter("shard.cross_abort");
  cross_prepare_fails_ = reg->counter("shard.cross_prepare_fail");
  recovered_commits_ = reg->counter("shard.cross_recovered_commit");
  recovered_aborts_ = reg->counter("shard.cross_recovered_abort");
  cross_latency_ns_ = reg->histogram("shard.cross_latency_ns");
}

void ShardCoordinator::Serve(FileServer* server) {
  FileServer::ShardAdminHooks hooks;
  hooks.cross_commit =
      [this](const std::vector<std::pair<uint32_t, Capability>>& participants) {
        return CommitCross(participants);
      };
  hooks.resolve = [this](uint64_t txn_id) { return Resolve(txn_id); };
  server->SetShardAdmin(std::move(hooks));
}

Result<BlockNo> ShardCoordinator::CallPrepare(uint32_t shard, const Capability& version,
                                              uint64_t txn_id) {
  ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client, router_->ClientFor(shard));
  WireEncoder req;
  req.PutCapability(version);
  req.PutU64(txn_id);
  // Version operations go to the version's managing server, like every FileClient op.
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(client->transport(), version.port,
                                static_cast<uint32_t>(FileOp::kPrepare), std::move(req)));
  return reply.GetU32();
}

Status ShardCoordinator::CallDecide(uint32_t shard, Port server, uint64_t txn_id,
                                    bool commit) {
  ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client, router_->ClientFor(shard));
  WireEncoder req;
  req.PutU64(txn_id);
  req.PutU8(commit ? 1 : 0);
  return CallAndCheck(client->transport(), server,
                      static_cast<uint32_t>(FileOp::kDecide), std::move(req))
      .status();
}

bool ShardCoordinator::InFlight(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(in_flight_mu_);
  return in_flight_.count(txn_id) > 0;
}

Result<std::vector<BlockNo>> ShardCoordinator::CommitCross(
    const std::vector<std::pair<uint32_t, Capability>>& participants) {
  if (participants.empty()) {
    return InvalidArgumentError("cross-shard commit has no participants");
  }
  if (participants.size() == 1) {
    // Degenerate transaction: the plain single-shard commit, no staging.
    ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client,
                     router_->ClientFor(participants.front().first));
    ASSIGN_OR_RETURN(BlockNo head, client->Commit(participants.front().second));
    return std::vector<BlockNo>{head};
  }
  std::unordered_set<uint32_t> distinct;
  for (const auto& [shard, version] : participants) {
    if (!distinct.insert(shard).second) {
      return InvalidArgumentError(
          "cross-shard commit needs one participant per shard (shard " +
          std::to_string(shard) + " appears twice)");
    }
  }

  // The id names this coordinator (owner shard) and this incarnation of its decision
  // log, so it can never collide with an id from a previous incarnation — and recovery
  // sweeps elsewhere can tell at a glance the transaction is not theirs to resolve.
  const uint64_t txn_id =
      MakeTxnId(self_shard_, log_->incarnation(), next_sequence_.fetch_add(1) + 1);
  InFlightGuard in_flight(&in_flight_mu_, &in_flight_, txn_id);
  const auto start = std::chrono::steady_clock::now();
  obs::ScopedSpan span("shard.coordinate", obs::SpanKind::kPhase, txn_id,
                       participants.size());

  // Phase 1: every participant validates and stages. First failure aborts the whole
  // transaction — participants already staged get the abort verdict immediately.
  std::vector<BlockNo> heads;
  heads.reserve(participants.size());
  for (size_t i = 0; i < participants.size(); ++i) {
    const auto& [shard, version] = participants[i];
    Result<BlockNo> head = CallPrepare(shard, version, txn_id);
    if (!head.ok()) {
      cross_prepare_fails_->Inc();
      for (size_t j = 0; j < i; ++j) {
        (void)CallDecide(participants[j].first, participants[j].second.port, txn_id,
                         /*commit=*/false);
      }
      cross_aborts_->Inc();
      span.set_status(static_cast<uint8_t>(head.status().code()));
      return head.status();
    }
    heads.push_back(*head);
  }
  if (crash_hook_) {
    crash_hook_("prepared");
  }

  // The commit point: durable before any participant may flip.
  if (Status st = log_->LogCommit(txn_id, [&] {
        std::vector<uint32_t> shards;
        shards.reserve(participants.size());
        for (const auto& [shard, version] : participants) {
          shards.push_back(shard);
        }
        return shards;
      }());
      !st.ok()) {
    for (const auto& [shard, version] : participants) {
      (void)CallDecide(shard, version.port, txn_id, /*commit=*/false);
    }
    cross_aborts_->Inc();
    span.set_status(static_cast<uint8_t>(st.code()));
    return st;
  }
  if (crash_hook_) {
    crash_hook_("logged");
  }

  // Phase 2: the verdict. A participant that misses it (crash, partition) stays in doubt
  // and is finished by RecoverInDoubt — the decision is already durable.
  size_t acked = 0;
  for (const auto& [shard, version] : participants) {
    if (CallDecide(shard, version.port, txn_id, /*commit=*/true).ok()) {
      ++acked;
    }
  }
  if (acked == participants.size()) {
    // Everyone has the verdict: the commit record can never be asked about again, so
    // retire it (presumed-abort GC keeps the decision log from growing forever).
    (void)log_->Forget(txn_id);
  }
  cross_commits_->Inc();
  cross_latency_ns_->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count()));
  return heads;
}

Result<bool> ShardCoordinator::Resolve(uint64_t txn_id) const {
  if (TxnOwnerShard(txn_id) != self_shard_) {
    return InvalidArgumentError("transaction " + std::to_string(txn_id) +
                                " is owned by shard " +
                                std::to_string(TxnOwnerShard(txn_id)) +
                                "; ask that shard's coordinator");
  }
  return log_->Committed(txn_id);
}

Result<ShardCoordinator::RecoveryStats> ShardCoordinator::RecoverInDoubt() {
  RecoveryStats stats;
  ShardMap map = router_->map();
  for (const ShardEntry& entry : map.shards) {
    ASSIGN_OR_RETURN(std::shared_ptr<FileClient> client, router_->ClientFor(entry.shard_id));
    // Servers of one group share a store, so after a restart several may list the same
    // rediscovered tip: the verdict goes to each of them (each holds its own in-memory
    // prepared entry), but the transaction counts once per shard.
    std::unordered_set<uint64_t> counted;
    for (Port server : entry.file_servers) {
      auto reply = CallAndCheck(client->transport(), server,
                                static_cast<uint32_t>(FileOp::kListInDoubt), WireEncoder());
      if (!reply.ok()) {
        continue;  // a down server recovers its own tips on restart; nothing to do now
      }
      // A malformed or truncated reply is treated like an unreachable server: skip it
      // and keep sweeping — one bad answer must not strand every other shard's in-doubt
      // transactions until the next run.
      Result<uint32_t> n = reply->GetU32();
      if (!n.ok()) {
        continue;
      }
      for (uint32_t i = 0; i < *n; ++i) {
        Result<BlockNo> head = reply->GetU32();
        if (!head.ok()) {
          break;  // truncated mid-list: abandon this server's reply, not the sweep
        }
        Result<uint64_t> txn_id = reply->GetU64();
        if (!txn_id.ok()) {
          break;
        }
        if (TxnOwnerShard(*txn_id) != self_shard_) {
          // Not ours: only the owning coordinator's decision log can say how this
          // transaction ended. Presuming abort from OUR log's silence would tear a
          // transaction the owner durably committed.
          stats.skipped_foreign += 1;
          continue;
        }
        const bool commit = log_->Committed(*txn_id);
        if (!commit && InFlight(*txn_id)) {
          // Between its prepares and its commit point in this very process (an operator
          // sweep raced a live CommitCross): not decided yet, so not ours to abort.
          stats.skipped_live += 1;
          continue;
        }
        if (CallDecide(entry.shard_id, server, *txn_id, commit).ok() &&
            counted.insert(*txn_id).second) {
          (commit ? stats.resolved_commit : stats.resolved_abort) += 1;
          (commit ? recovered_commits_ : recovered_aborts_)->Inc();
        }
      }
    }
  }
  return stats;
}

}  // namespace afs
