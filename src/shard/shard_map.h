// ShardMap: the routing table of a sharded AFS deployment (docs/SHARDING.md).
//
// A deployment of N shards runs N independent file-service groups, each with its own block
// servers and store. Placement is by file id: every server of shard k mints file ids
// congruent to k modulo N (FileServerOptions::shard_id/num_shards), so the owning shard of
// any file capability is computable from the capability alone — no lookup service on the
// read or commit path. The map itself carries the per-shard connection details (service
// ports, and the TCP address for multi-process deployments) plus an epoch so a reloaded
// map can be told apart from a stale one. The name service publishes the encoded map
// (DirOp::kGetShardMap), which is how remote clients bootstrap a ShardRouter.

#ifndef SRC_SHARD_SHARD_MAP_H_
#define SRC_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/base/capability.h"
#include "src/base/status.h"

namespace afs {

struct ShardEntry {
  uint32_t shard_id = 0;
  std::string name;        // display name, e.g. "shard0"
  std::string address;     // "host:port" of the shard's TcpServer; empty for in-process
  std::vector<Port> file_servers;  // the shard's file-service group
  Port directory = kNullPort;      // the shard's directory server, if it runs one
};

struct ShardMap {
  uint32_t epoch = 0;
  std::vector<ShardEntry> shards;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards.size()); }

  // The owning shard of a file id, by the placement congruence.
  static uint32_t ShardOfFile(uint64_t file_id, uint32_t num_shards) {
    return num_shards <= 1 ? 0 : static_cast<uint32_t>(file_id % num_shards);
  }
  uint32_t ShardOfFile(uint64_t file_id) const { return ShardOfFile(file_id, num_shards()); }

  const ShardEntry* Find(uint32_t shard_id) const;

  // Structural validity: shard ids are exactly 0..n-1 (any order), each with at least one
  // file server. A map that fails this would silently misroute, so routers reject it.
  Status Validate() const;

  std::vector<uint8_t> Encode() const;
  static Result<ShardMap> Decode(std::span<const uint8_t> blob);
};

}  // namespace afs

#endif  // SRC_SHARD_SHARD_MAP_H_
