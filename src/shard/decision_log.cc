#include "src/shard/decision_log.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <utility>

#include "src/base/wire.h"

namespace afs {
namespace {

// Record payload: u64 txn_id | u32 n | n * u32 shard id. Bounded so Recover can cap reads.
constexpr uint32_t kMaxDecisionPayload = 4 * 1024;

// Record kinds, carried in the journal record's bno field. Logs written before forget
// records existed hold only kind-0 records, which replay unchanged.
constexpr BlockNo kCommitRecord = 0;       // u64 txn_id | u32 n | n * u32 shard
constexpr BlockNo kIncarnationRecord = 1;  // u64 incarnation
constexpr BlockNo kForgetRecord = 2;       // u64 txn_id

// Compact once this many retired records sit in the journal. Small enough that the file
// stays within a few hundred records of its live set, large enough that compaction cost
// (one rewrite) amortises over many commits.
constexpr uint64_t kCompactAfterRetired = 128;

std::vector<uint8_t> EncodeDecision(uint64_t txn_id, const std::vector<uint32_t>& shards) {
  WireEncoder enc;
  enc.PutU64(txn_id);
  enc.PutU32(static_cast<uint32_t>(shards.size()));
  for (uint32_t shard : shards) {
    enc.PutU32(shard);
  }
  return std::move(enc).Take();
}

std::vector<uint8_t> EncodeU64(uint64_t v) {
  WireEncoder enc;
  enc.PutU64(v);
  return std::move(enc).Take();
}

}  // namespace

MemoryDecisionLog::MemoryDecisionLog()
    : incarnation_([] {
        static std::atomic<uint64_t> next{0};
        return next.fetch_add(1) + 1;
      }()) {}

Status MemoryDecisionLog::LogCommit(uint64_t txn_id, const std::vector<uint32_t>& shards) {
  std::lock_guard<std::mutex> lock(mu_);
  committed_.emplace(txn_id, shards);
  return OkStatus();
}

bool MemoryDecisionLog::Committed(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.count(txn_id) > 0;
}

Status MemoryDecisionLog::Forget(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  committed_.erase(txn_id);
  return OkStatus();
}

Result<std::unique_ptr<JournalDecisionLog>> JournalDecisionLog::Open(
    const std::string& path) {
  std::unique_ptr<JournalDecisionLog> log(new JournalDecisionLog());
  log->path_ = path;
  ASSIGN_OR_RETURN(log->file_, StableFile::Open(path));
  log->journal_ = std::make_unique<Journal>(log->file_.get(), JournalOptions{},
                                            &log->metrics_, nullptr);
  uint64_t torn_bytes = 0;
  ASSIGN_OR_RETURN(std::vector<Journal::ReplayedRecord> records,
                   log->journal_->Recover(kMaxDecisionPayload, &torn_bytes));
  uint64_t max_incarnation = 0;
  for (const Journal::ReplayedRecord& rec : records) {
    std::vector<uint8_t> payload(rec.payload_len);
    RETURN_IF_ERROR(log->file_->ReadAt(rec.payload_offset, payload));
    WireDecoder dec(payload);
    switch (rec.bno) {
      case kCommitRecord: {
        ASSIGN_OR_RETURN(uint64_t txn_id, dec.GetU64());
        ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
        std::vector<uint32_t> shards;
        shards.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
          ASSIGN_OR_RETURN(uint32_t shard, dec.GetU32());
          shards.push_back(shard);
        }
        log->committed_[txn_id] = std::move(shards);
        break;
      }
      case kIncarnationRecord: {
        ASSIGN_OR_RETURN(uint64_t incarnation, dec.GetU64());
        max_incarnation = std::max(max_incarnation, incarnation);
        break;
      }
      case kForgetRecord: {
        ASSIGN_OR_RETURN(uint64_t txn_id, dec.GetU64());
        log->committed_.erase(txn_id);
        log->retired_ += 1;
        break;
      }
      default:
        return CorruptError("decision log holds a record of unknown kind " +
                            std::to_string(rec.bno));
    }
  }
  log->journal_->Start();
  // Claim the next incarnation durably before any id is minted against this instance.
  log->incarnation_ = max_incarnation + 1;
  RETURN_IF_ERROR(
      log->journal_->Append(kIncarnationRecord, EncodeU64(log->incarnation_)).status());
  if (log->retired_ >= kCompactAfterRetired) {
    RETURN_IF_ERROR(log->Compact());
  }
  return log;
}

JournalDecisionLog::~JournalDecisionLog() {
  if (journal_ != nullptr) {
    journal_->Stop();
  }
}

Status JournalDecisionLog::LogCommit(uint64_t txn_id,
                                     const std::vector<uint32_t>& shards) {
  {
    std::shared_lock<std::shared_mutex> journal_lock(journal_mu_);
    RETURN_IF_ERROR(journal_->Append(kCommitRecord, EncodeDecision(txn_id, shards)).status());
  }
  std::lock_guard<std::mutex> lock(mu_);
  committed_.emplace(txn_id, shards);
  return OkStatus();
}

bool JournalDecisionLog::Committed(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.count(txn_id) > 0;
}

Status JournalDecisionLog::Forget(uint64_t txn_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (committed_.erase(txn_id) == 0) {
      return OkStatus();
    }
  }
  // Crash between the erase and this append re-surfaces the commit record on replay —
  // harmless: re-delivering a commit verdict is idempotent on every participant.
  {
    std::shared_lock<std::shared_mutex> journal_lock(journal_mu_);
    RETURN_IF_ERROR(journal_->Append(kForgetRecord, EncodeU64(txn_id)).status());
  }
  bool compact = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired_ += 1;
    compact = retired_ >= kCompactAfterRetired;
  }
  return compact ? Compact() : OkStatus();
}

uint64_t JournalDecisionLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.size();
}

uint64_t JournalDecisionLog::journal_bytes() const {
  std::shared_lock<std::shared_mutex> journal_lock(journal_mu_);
  return journal_->tail_bytes();
}

Status JournalDecisionLog::Compact() {
  std::unique_lock<std::shared_mutex> journal_lock(journal_mu_);
  // Build the compacted image beside the live log. Appends are excluded for the duration;
  // compaction is rare (every kCompactAfterRetired retirements) and the live set small.
  const std::string scratch_path = path_ + ".compact";
  ASSIGN_OR_RETURN(std::unique_ptr<StableFile> scratch, StableFile::Open(scratch_path));
  RETURN_IF_ERROR(scratch->Truncate(0));
  auto rewritten =
      std::make_unique<Journal>(scratch.get(), JournalOptions{}, &metrics_, nullptr);
  uint64_t torn_bytes = 0;
  RETURN_IF_ERROR(rewritten->Recover(kMaxDecisionPayload, &torn_bytes).status());
  rewritten->Start();
  RETURN_IF_ERROR(rewritten->Append(kIncarnationRecord, EncodeU64(incarnation_)).status());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [txn_id, shards] : committed_) {
      RETURN_IF_ERROR(rewritten->Append(kCommitRecord, EncodeDecision(txn_id, shards))
                          .status());
    }
  }
  // The swap: rename is atomic, so a crash leaves either the old complete log or the new
  // one — never a torn mixture. The open descriptors follow the inodes, not the names.
  std::error_code ec;
  std::filesystem::rename(scratch_path, path_, ec);
  if (ec) {
    rewritten->Stop();
    return UnavailableError("decision log compaction rename failed: " + ec.message());
  }
  journal_->Stop();
  journal_ = std::move(rewritten);  // destroys the old journal first...
  file_ = std::move(scratch);       // ...then the old (now unlinked) file
  std::lock_guard<std::mutex> lock(mu_);
  retired_ = 0;
  return OkStatus();
}

}  // namespace afs
