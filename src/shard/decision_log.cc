#include "src/shard/decision_log.h"

#include "src/base/wire.h"

namespace afs {
namespace {

// Record payload: u64 txn_id | u32 n | n * u32 shard id. Bounded so Recover can cap reads.
constexpr uint32_t kMaxDecisionPayload = 4 * 1024;

std::vector<uint8_t> EncodeDecision(uint64_t txn_id, const std::vector<uint32_t>& shards) {
  WireEncoder enc;
  enc.PutU64(txn_id);
  enc.PutU32(static_cast<uint32_t>(shards.size()));
  for (uint32_t shard : shards) {
    enc.PutU32(shard);
  }
  return std::move(enc).Take();
}

}  // namespace

Status MemoryDecisionLog::LogCommit(uint64_t txn_id, const std::vector<uint32_t>& shards) {
  (void)shards;
  std::lock_guard<std::mutex> lock(mu_);
  committed_.insert(txn_id);
  return OkStatus();
}

bool MemoryDecisionLog::Committed(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.count(txn_id) > 0;
}

Result<std::unique_ptr<JournalDecisionLog>> JournalDecisionLog::Open(
    const std::string& path) {
  std::unique_ptr<JournalDecisionLog> log(new JournalDecisionLog());
  ASSIGN_OR_RETURN(log->file_, StableFile::Open(path));
  log->journal_ = std::make_unique<Journal>(log->file_.get(), JournalOptions{},
                                            &log->metrics_, nullptr);
  uint64_t torn_bytes = 0;
  ASSIGN_OR_RETURN(std::vector<Journal::ReplayedRecord> records,
                   log->journal_->Recover(kMaxDecisionPayload, &torn_bytes));
  for (const Journal::ReplayedRecord& rec : records) {
    std::vector<uint8_t> payload(rec.payload_len);
    RETURN_IF_ERROR(log->file_->ReadAt(rec.payload_offset, payload));
    WireDecoder dec(payload);
    ASSIGN_OR_RETURN(uint64_t txn_id, dec.GetU64());
    log->committed_.insert(txn_id);
  }
  log->journal_->Start();
  return log;
}

JournalDecisionLog::~JournalDecisionLog() {
  if (journal_ != nullptr) {
    journal_->Stop();
  }
}

Status JournalDecisionLog::LogCommit(uint64_t txn_id,
                                     const std::vector<uint32_t>& shards) {
  RETURN_IF_ERROR(journal_->Append(0, EncodeDecision(txn_id, shards)).status());
  std::lock_guard<std::mutex> lock(mu_);
  committed_.insert(txn_id);
  return OkStatus();
}

bool JournalDecisionLog::Committed(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.count(txn_id) > 0;
}

uint64_t JournalDecisionLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_.size();
}

}  // namespace afs
