#include "src/shard/shard_fsck.h"

#include <sstream>

namespace afs {

std::string ShardFsckReport::ToString() const {
  std::ostringstream os;
  os << (clean ? "CLEAN" : "CORRUPT") << ": " << shards.size() << " shard(s), " << in_doubt
     << " in-doubt transaction(s)";
  for (size_t i = 0; i < shards.size(); ++i) {
    os << "\nshard " << i << ": " << shards[i].ToString();
  }
  for (const std::string& note : notes) {
    os << "\n  note: " << note;
  }
  for (const std::string& error : errors) {
    os << "\n  ERROR: " << error;
  }
  return os.str();
}

ShardFsckReport RunShardFsck(std::span<FileServer* const> shards, const DecisionLog* log,
                             const FsckOptions& options) {
  ShardFsckReport report;
  report.shards.reserve(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    FsckReport shard_report = RunFsck(shards[i], options);
    report.clean = report.clean && shard_report.clean;
    report.in_doubt += shard_report.in_doubt;
    report.shards.push_back(std::move(shard_report));

    // Cross-shard invariant: every in-doubt prepare names a transaction the decision log
    // can classify. An unresolvable record is fine (presumed abort), but classify it so
    // the report says which way recovery will go.
    if (log != nullptr) {
      for (const FileServer::InDoubtEntry& e : shards[i]->ListInDoubt()) {
        report.notes.push_back("shard " + std::to_string(i) + ": txn " +
                                std::to_string(e.txn_id) + " in doubt at head " +
                                std::to_string(e.head) + " -> " +
                                (log->Committed(e.txn_id) ? "will commit" : "will abort"));
      }
    }
  }
  return report;
}

Result<ResolveStats> ResolveInDoubt(std::span<FileServer* const> shards,
                                    const DecisionLog& log) {
  ResolveStats stats;
  for (FileServer* server : shards) {
    for (const FileServer::InDoubtEntry& e : server->ListInDoubt()) {
      const bool commit = log.Committed(e.txn_id);
      RETURN_IF_ERROR(server->Decide(e.txn_id, commit));
      (commit ? stats.committed : stats.aborted) += 1;
    }
  }
  return stats;
}

}  // namespace afs
