// ShardRouter: client-side resolution of capabilities to shards, plus CrossTransaction,
// the multi-shard analogue of the client redo loop.
//
// The router holds a ShardMap and one FileClient per shard. Resolution is pure arithmetic
// (file id modulo shard count — see shard_map.h), so routing adds no RPCs; the map is
// reloadable (epoch-guarded) for deployments that republish it through the name service.
// Transports are supplied by the caller: an in-process deployment passes one shared
// Transport for every shard, a multi-process one passes each shard's TcpTransport.
//
// A CrossTransaction tracks the versions a client opened across shards. Committing one
// participant takes the ordinary §5.2 single-shard commit — byte-for-byte the PR 8 fast
// path, no coordination; committing several routes a kCrossCommit through the first
// participant's shard, whose coordinator runs the optimistic two-phase protocol of
// docs/SHARDING.md.

#ifndef SRC_SHARD_ROUTER_H_
#define SRC_SHARD_ROUTER_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/client/file_client.h"
#include "src/obs/metrics.h"
#include "src/shard/shard_map.h"

namespace afs {

class ShardRouter {
 public:
  // `transport_for` maps a shard entry to the Transport its FileClient should use; the
  // transports must outlive the router. Fails if the map does not validate.
  static Result<std::unique_ptr<ShardRouter>> Make(
      ShardMap map, std::function<Transport*(const ShardEntry&)> transport_for);
  // Every shard reachable through one shared transport (in-process deployments).
  static Result<std::unique_ptr<ShardRouter>> Make(ShardMap map, Transport* shared);

  uint32_t num_shards() const;
  ShardMap map() const;

  // Swap in a newer map (epoch must advance); clients are rebuilt. In-flight operations
  // on the old clients finish on them — they are shared_ptr-held until the last user goes.
  Status Reload(ShardMap map);

  // The owning shard of a FILE capability (version capabilities do not carry the file id;
  // track their shard from the file they were opened on).
  uint32_t ShardOf(const Capability& file) const;

  Result<std::shared_ptr<FileClient>> ClientFor(uint32_t shard_id);
  Result<std::shared_ptr<FileClient>> ClientForFile(const Capability& file);

  // Placement: create a file on an explicit shard, or round-robin across shards.
  Result<Capability> CreateFileOn(uint32_t shard_id);
  Result<Capability> CreateFile();

  obs::MetricRegistry* metrics() { return &metrics_; }

 private:
  ShardRouter(ShardMap map, std::function<Transport*(const ShardEntry&)> transport_for);
  Status RebuildLocked();

  std::function<Transport*(const ShardEntry&)> transport_for_;

  mutable std::shared_mutex mu_;
  ShardMap map_;
  std::vector<std::shared_ptr<FileClient>> clients_;  // indexed by shard id

  std::atomic<uint64_t> next_placement_{0};

  obs::MetricRegistry metrics_{"shard.router"};
  obs::Counter* routes_ = metrics_.counter("shard.route");
  obs::Counter* route_errors_ = metrics_.counter("shard.route_error");
  obs::Counter* reloads_ = metrics_.counter("shard.map_reload");
};

// One multi-shard transaction attempt. Not a retry loop: on kConflict the caller discards
// the object and redoes the whole update, exactly like the single-shard RunTransaction
// discipline (§6 "redoing an operation now and then is acceptable").
class CrossTransaction {
 public:
  explicit CrossTransaction(ShardRouter* router) : router_(router) {}

  // Open a version of `file` on its owning shard and track it as a participant.
  Result<Capability> CreateVersion(const Capability& file);
  // The client to use for page I/O on `file` (and the version opened on it).
  Result<std::shared_ptr<FileClient>> Client(const Capability& file);

  // Commit all participants atomically. One participant: the plain single-shard commit.
  // Several: the two-phase kCrossCommit through the first participant's shard. Returns
  // committed heads in participant order.
  Result<std::vector<BlockNo>> Commit();
  // Abort every participant (best effort; in-doubt cleanup is the coordinator's job).
  Status Abort();

  size_t num_participants() const { return participants_.size(); }

 private:
  struct Participant {
    uint32_t shard = 0;
    Capability file;
    Capability version;
  };
  ShardRouter* router_;
  std::vector<Participant> participants_;
};

}  // namespace afs

#endif  // SRC_SHARD_ROUTER_H_
