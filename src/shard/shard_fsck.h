// Sharded fsck: the single-store checker of src/core/fsck.h, run per shard, plus the
// cross-shard invariant — every in-doubt prepare must be resolvable against the
// coordinator's decision log, and a logged-committed transaction must not have been
// aborted anywhere (nor vice versa, which the per-shard I8 checks make structural).

#ifndef SRC_SHARD_SHARD_FSCK_H_
#define SRC_SHARD_SHARD_FSCK_H_

#include <span>
#include <string>
#include <vector>

#include "src/core/fsck.h"
#include "src/shard/decision_log.h"

namespace afs {

struct ShardFsckReport {
  bool clean = true;
  std::vector<FsckReport> shards;  // indexed like the input span
  // In-doubt transactions found across all shards, after the per-shard walks.
  uint64_t in_doubt = 0;
  // Per-transaction classification against the decision log ("will commit"/"will abort").
  std::vector<std::string> notes;
  std::vector<std::string> errors;

  std::string ToString() const;
};

// Run RunFsck on every shard's server and evaluate the cross-shard invariant. With a
// decision log, each in-doubt transaction is classified (will-commit / will-abort); without
// one, in-doubt tips are reported but not classified.
ShardFsckReport RunShardFsck(std::span<FileServer* const> shards, const DecisionLog* log,
                             const FsckOptions& options = {});

struct ResolveStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
};
// Offline in-doubt resolution, directly against the servers (no coordinator RPC): apply
// the presumed-abort rule to every in-doubt prepare. Used by recovery paths that hold the
// stores locally — the multi-process deployments resolve through
// ShardCoordinator::RecoverInDoubt instead.
Result<ResolveStats> ResolveInDoubt(std::span<FileServer* const> shards,
                                    const DecisionLog& log);

}  // namespace afs

#endif  // SRC_SHARD_SHARD_FSCK_H_
