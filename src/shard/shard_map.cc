#include "src/shard/shard_map.h"

#include "src/base/wire.h"

namespace afs {

namespace {
// Encoded-map version tag, so a future layout change can coexist with old blobs.
constexpr uint32_t kShardMapVersion = 1;
}  // namespace

const ShardEntry* ShardMap::Find(uint32_t shard_id) const {
  for (const ShardEntry& entry : shards) {
    if (entry.shard_id == shard_id) {
      return &entry;
    }
  }
  return nullptr;
}

Status ShardMap::Validate() const {
  if (shards.empty()) {
    return InvalidArgumentError("shard map has no shards");
  }
  std::vector<bool> seen(shards.size(), false);
  for (const ShardEntry& entry : shards) {
    if (entry.shard_id >= shards.size()) {
      return InvalidArgumentError("shard id " + std::to_string(entry.shard_id) +
                                  " out of range for " + std::to_string(shards.size()) +
                                  " shard(s)");
    }
    if (seen[entry.shard_id]) {
      return InvalidArgumentError("duplicate shard id " + std::to_string(entry.shard_id));
    }
    seen[entry.shard_id] = true;
    if (entry.file_servers.empty()) {
      return InvalidArgumentError("shard " + std::to_string(entry.shard_id) +
                                  " has no file servers");
    }
  }
  return OkStatus();
}

std::vector<uint8_t> ShardMap::Encode() const {
  WireEncoder enc;
  enc.PutU32(kShardMapVersion);
  enc.PutU32(epoch);
  enc.PutU32(num_shards());
  for (const ShardEntry& entry : shards) {
    enc.PutU32(entry.shard_id);
    enc.PutString(entry.name);
    enc.PutString(entry.address);
    enc.PutU32(static_cast<uint32_t>(entry.file_servers.size()));
    for (Port port : entry.file_servers) {
      enc.PutU64(port);
    }
    enc.PutU64(entry.directory);
  }
  return std::move(enc).Take();
}

Result<ShardMap> ShardMap::Decode(std::span<const uint8_t> blob) {
  WireDecoder dec(blob);
  ASSIGN_OR_RETURN(uint32_t version, dec.GetU32());
  if (version != kShardMapVersion) {
    return CorruptError("unknown shard map version " + std::to_string(version));
  }
  ShardMap map;
  ASSIGN_OR_RETURN(map.epoch, dec.GetU32());
  ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  // Each shard entry is at least its id plus two string counts and two counts/ports.
  if (n > dec.remaining() / 8) {
    return CorruptError("shard count exceeds blob size");
  }
  map.shards.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ShardEntry entry;
    ASSIGN_OR_RETURN(entry.shard_id, dec.GetU32());
    ASSIGN_OR_RETURN(entry.name, dec.GetString());
    ASSIGN_OR_RETURN(entry.address, dec.GetString());
    ASSIGN_OR_RETURN(uint32_t nports, dec.GetU32());
    if (nports > dec.remaining() / 8) {
      return CorruptError("file server count exceeds blob size");
    }
    entry.file_servers.reserve(nports);
    for (uint32_t p = 0; p < nports; ++p) {
      ASSIGN_OR_RETURN(Port port, dec.GetU64());
      entry.file_servers.push_back(port);
    }
    ASSIGN_OR_RETURN(entry.directory, dec.GetU64());
    map.shards.push_back(std::move(entry));
  }
  RETURN_IF_ERROR(map.Validate());
  return map;
}

}  // namespace afs
