// Multi-process shard bootstrap: dial every shard's afs_server, read its hello manifest,
// and assemble the ShardMap + per-shard transports a ShardRouter needs. Shard ids are
// positional — address i is shard i, matching the --shard i/N each server was started with.

#ifndef SRC_SHARD_DISCOVERY_H_
#define SRC_SHARD_DISCOVERY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/tcp_transport.h"
#include "src/shard/shard_map.h"

namespace afs {

// On success, transports->at(i) is the dialled transport for shard i; the caller owns
// them and must keep them alive for the lifetime of any router built over the map.
Result<ShardMap> DiscoverShardMap(
    const std::vector<std::string>& addresses,
    std::vector<std::unique_ptr<net::TcpTransport>>* transports);

}  // namespace afs

#endif  // SRC_SHARD_DISCOVERY_H_
