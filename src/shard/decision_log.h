// DecisionLog: the coordinator's durable commit record for cross-shard transactions.
//
// The protocol is presumed-abort: the ONLY durable state the coordinator keeps is a commit
// record, written (and fsynced, via the src/store journal's group commit) after every
// participant prepared and before any participant is told to commit. Resolution of an
// in-doubt prepare is then a lookup: a logged transaction committed; an unlogged one —
// including every transaction the coordinator died inside before logging — aborted.

#ifndef SRC_SHARD_DECISION_LOG_H_
#define SRC_SHARD_DECISION_LOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/obs/metrics.h"
#include "src/store/journal.h"
#include "src/store/stable_file.h"

namespace afs {

class DecisionLog {
 public:
  virtual ~DecisionLog() = default;
  // Durably record that `txn_id` committed on `shards`. Must not return until the record
  // is across the durability boundary (the phase-2 sends ride on this guarantee).
  virtual Status LogCommit(uint64_t txn_id, const std::vector<uint32_t>& shards) = 0;
  // Presumed abort: true iff a commit record for `txn_id` exists.
  virtual bool Committed(uint64_t txn_id) const = 0;
};

// In-memory log for in-process deployments and tests that do not model coordinator loss.
class MemoryDecisionLog : public DecisionLog {
 public:
  Status LogCommit(uint64_t txn_id, const std::vector<uint32_t>& shards) override;
  bool Committed(uint64_t txn_id) const override;

 private:
  mutable std::mutex mu_;
  std::unordered_set<uint64_t> committed_;
};

// Durable log over a src/store Journal on a StableFile: records survive kill -9 of the
// coordinator process, which is what makes recovery able to finish a logged transaction.
class JournalDecisionLog : public DecisionLog {
 public:
  // Opens (or creates) the log at `path`, replays existing records, starts the flusher.
  static Result<std::unique_ptr<JournalDecisionLog>> Open(const std::string& path);
  ~JournalDecisionLog() override;

  Status LogCommit(uint64_t txn_id, const std::vector<uint32_t>& shards) override;
  bool Committed(uint64_t txn_id) const override;

  uint64_t records() const;

 private:
  JournalDecisionLog() = default;

  std::unique_ptr<StableFile> file_;
  obs::MetricRegistry metrics_{"shard.dlog"};
  std::unique_ptr<Journal> journal_;

  mutable std::mutex mu_;
  std::unordered_set<uint64_t> committed_;
};

}  // namespace afs

#endif  // SRC_SHARD_DECISION_LOG_H_
