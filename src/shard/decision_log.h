// DecisionLog: the coordinator's durable commit record for cross-shard transactions.
//
// The protocol is presumed-abort: the ONLY durable state the coordinator keeps is a commit
// record, written (and fsynced, via the src/store journal's group commit) after every
// participant prepared and before any participant is told to commit. Resolution of an
// in-doubt prepare is then a lookup: a logged transaction committed; an unlogged one —
// including every transaction the coordinator died inside before logging — aborted.
//
// Two more duties ride on the log:
//   - Incarnations. Each open of a durable log draws a fresh, durably recorded
//     incarnation number; the coordinator folds it into every transaction id
//     (src/shard/txn_id.h), so ids provably never repeat across restarts — a reused id
//     whose previous life was logged committed would make resolution flip an undecided
//     prepare.
//   - Garbage collection. Once every participant has acknowledged a commit verdict the
//     record can never be asked about again; Forget() retires it (the classic
//     presumed-abort GC of commit records). Retired records are dropped from memory at
//     once and compacted out of the journal when enough of them accumulate, so neither
//     the in-memory set nor the on-disk file grows with the lifetime commit count.

#ifndef SRC_SHARD_DECISION_LOG_H_
#define SRC_SHARD_DECISION_LOG_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/obs/metrics.h"
#include "src/store/journal.h"
#include "src/store/stable_file.h"

namespace afs {

class DecisionLog {
 public:
  virtual ~DecisionLog() = default;
  // Durably record that `txn_id` committed on `shards`. Must not return until the record
  // is across the durability boundary (the phase-2 sends ride on this guarantee).
  virtual Status LogCommit(uint64_t txn_id, const std::vector<uint32_t>& shards) = 0;
  // Presumed abort: true iff a commit record for `txn_id` exists.
  virtual bool Committed(uint64_t txn_id) const = 0;
  // Retire `txn_id`'s commit record: every participant has acknowledged the verdict, so
  // no resolution will ever ask about it again. No-op for unknown ids.
  virtual Status Forget(uint64_t txn_id) = 0;
  // This log instance's incarnation, folded into minted transaction ids. Strictly
  // increases across reopenings of the same durable log; never zero.
  virtual uint64_t incarnation() const = 0;
};

// In-memory log for in-process deployments and tests that do not model coordinator loss.
// Incarnations are drawn from a process-wide counter: unique per log instance, which is
// as much as a non-durable log can promise.
class MemoryDecisionLog : public DecisionLog {
 public:
  MemoryDecisionLog();

  Status LogCommit(uint64_t txn_id, const std::vector<uint32_t>& shards) override;
  bool Committed(uint64_t txn_id) const override;
  Status Forget(uint64_t txn_id) override;
  uint64_t incarnation() const override { return incarnation_; }

 private:
  const uint64_t incarnation_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> committed_;
};

// Durable log over a src/store Journal on a StableFile: records survive kill -9 of the
// coordinator process, which is what makes recovery able to finish a logged transaction.
class JournalDecisionLog : public DecisionLog {
 public:
  // Opens (or creates) the log at `path`, replays existing records, durably claims the
  // next incarnation, compacts if retirements dominate, and starts the flusher.
  static Result<std::unique_ptr<JournalDecisionLog>> Open(const std::string& path);
  ~JournalDecisionLog() override;

  Status LogCommit(uint64_t txn_id, const std::vector<uint32_t>& shards) override;
  bool Committed(uint64_t txn_id) const override;
  Status Forget(uint64_t txn_id) override;
  uint64_t incarnation() const override { return incarnation_; }

  // Live (unretired) commit records.
  uint64_t records() const;
  // Current journal length, for tests asserting compaction actually shrinks the file.
  uint64_t journal_bytes() const;

 private:
  JournalDecisionLog() = default;

  // Rewrites the journal with only the incarnation record and live commit records: the
  // compacted image is built in a sibling file and atomically renamed over the old one,
  // so a crash at any instant leaves either the old or the new complete log.
  Status Compact();

  std::string path_;
  uint64_t incarnation_ = 0;
  obs::MetricRegistry metrics_{"shard.dlog"};

  // journal_mu_ guards the journal/file *objects* across compaction swaps: appends hold
  // it shared (the Journal itself is thread-safe and group-commits concurrent appends),
  // Compact holds it exclusive while it replaces them.
  mutable std::shared_mutex journal_mu_;
  std::unique_ptr<StableFile> file_;
  std::unique_ptr<Journal> journal_;

  mutable std::mutex mu_;  // guards committed_ and retired_
  std::unordered_map<uint64_t, std::vector<uint32_t>> committed_;
  uint64_t retired_ = 0;  // forget records in the journal since the last compaction
};

}  // namespace afs

#endif  // SRC_SHARD_DECISION_LOG_H_
