// Service: base class for every AFS server process (block servers, file servers, directory
// servers, baselines).
//
// A Service owns a pool of worker threads that pop requests from a queue and run the
// subclass's Handle(). Crash() models a server-process crash: workers stop, every queued and
// in-flight transaction fails with kCrashed (the paper: "the outstanding transactions with
// the server crash as well"), and the port goes dead until Restart(). Restart() reuses the
// same port — an Amoeba service port survives server replacement — and runs the subclass's
// OnRestart() recovery hook before accepting requests.
//
// At-most-once: requests stamped with a (client_id, txn_id) identity are remembered in a
// bounded per-client reply cache. A retransmission of a completed call replays the cached
// reply without re-executing Handle(); one arriving while the original is still executing
// attaches to the in-flight call and waits (coalescing). A handler that completes after its
// waiter timed out feeds its reply into the cache instead of dropping it, so the eventual
// retransmission is answered from the cache. The cache lives in server memory only: it is
// cleared by Crash()/Shutdown(), exactly like a real server losing its RAM, so a retry that
// spans a crash may re-execute — callers still rely on the kCrashed warning (§5.3).

#ifndef SRC_RPC_SERVICE_H_
#define SRC_RPC_SERVICE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/obs/metrics.h"
#include "src/rpc/message.h"
#include "src/rpc/network.h"

namespace afs {

namespace net {
class TcpServer;
}  // namespace net

class Service {
 public:
  // Reserved opcode intercepted by the Service base itself, never forwarded to Handle():
  // replies with the text exposition (obs::MetricRegistry::DumpText) of this server's
  // metrics, so any client can scrape any live server.
  static constexpr uint32_t kGetStats = 0xAF500001;
  // Reserved opcode: scrape recent spans (request: u32 max_spans, u8 format 0=text
  // 1=chrome-json; reply: string, truncated to fit one transaction message). The span
  // collector is process-wide, so any live server answers for the whole deployment.
  static constexpr uint32_t kGetSpans = 0xAF500002;

  // `num_workers` > 1 lets a file server run serialisability tests in parallel with other
  // commits, as §5.2 requires; subclass Handle() implementations must be thread-safe.
  Service(Network* network, std::string name, int num_workers = 4);
  virtual ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Bind a port (first call) and begin serving. Idempotent while running.
  void Start();

  // Model a crash: stop serving, fail queued and in-flight calls with kCrashed, drop the
  // port's liveness. State in the subclass is NOT cleaned up — exactly like a real crash.
  void Crash();

  // Graceful stop (drains nothing; like Crash but without the pejorative semantics for
  // callers — pending calls fail with kUnavailable instead of kCrashed).
  void Shutdown();

  // Bring a crashed service back on its old port. Runs OnRestart() before serving.
  void Restart();

  Port port() const { return port_; }
  const std::string& name() const { return name_; }
  Network* network() const { return network_; }
  bool running() const;

  // This server's metric registry (named after the service). Subclasses register their
  // own counters/histograms here so one kGetStats scrape covers the whole server.
  obs::MetricRegistry* metrics() { return &metrics_; }

 protected:
  // Serve one request. Returning a non-ok Status produces an error reply at the caller.
  virtual Result<Message> Handle(const Message& request) = 0;

  // Crash-recovery hook, run on Restart() before the port goes live (e.g. a block server
  // "compares notes with its companion, and restores its disk before accepting any
  // requests", §4).
  virtual void OnRestart() {}

 private:
  friend class Network;
  // The TCP server core delivers remote requests through the same Submit() entry, so the
  // reply cache, duplicate coalescing, and crash semantics are identical over sockets.
  friend class net::TcpServer;

  struct CallState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;       // result is valid (worker finished, or failed by StopWorkers)
    bool abandoned = false;  // every waiter gave up; completion counts rpc.late_replies
    Result<Message> result = Status(ErrorCode::kInternal);
  };

  // Network-side entry: enqueue and wait. For stamped requests the CallState doubles as
  // the reply-cache entry, so retransmissions find either the in-flight call or its reply.
  Result<Message> Submit(Message request, std::chrono::milliseconds timeout);

  // -- At-most-once reply cache ---------------------------------------------

  // One remembered client: its recent calls by txn_id, in arrival order.
  struct ClientWindow {
    std::unordered_map<uint64_t, std::shared_ptr<CallState>> by_txn;
    std::deque<uint64_t> order;  // oldest first
    uint64_t last_used = 0;      // cache_tick_ at last lookup (client LRU)
  };
  // Per-client replies remembered. A client thread has at most one call outstanding, so a
  // small window outlives any realistic retransmission race.
  static constexpr size_t kReplyWindowPerClient = 4;
  static constexpr size_t kReplyCacheMaxClients = 256;

  // Returns the cache entry for (request.client_id, request.txn_id), creating it when this
  // is the first delivery (*fresh = true) or returning the existing one for a duplicate.
  std::shared_ptr<CallState> RegisterCall(const Message& request, bool* fresh);
  // Drops a just-registered entry that was never enqueued (service found stopped).
  void ForgetCall(uint64_t client_id, uint64_t txn_id);
  // Evicts the least-recently-used client whose calls have all completed (never `keep`).
  void EvictIdlestClientLocked(uint64_t keep);
  // Duplicate delivery path: replay a completed reply or wait on the in-flight original.
  Result<Message> AwaitExisting(const std::shared_ptr<CallState>& state,
                                const Message& request, std::chrono::milliseconds timeout);

  void WorkerLoop();
  // Stop serving without waiting for in-flight handlers (a crash does not politely join its
  // threads). Stopped workers become zombies, reaped on Restart()/destruction.
  void StopWorkers(bool mark_crashed);
  void ReapZombies();

  Result<Message> HandleGetStats();
  Result<Message> HandleGetSpans(const Message& request);
  // Per-request-type instruments, created lazily on the first request of each type.
  struct OpStats {
    obs::Counter* count = nullptr;
    obs::Histogram* handle_ns = nullptr;
  };
  OpStats* StatsForOp(uint32_t opcode);

  Network* network_;
  std::string name_;
  int num_workers_;
  Port port_ = kNullPort;

  obs::MetricRegistry metrics_;
  obs::Histogram* handle_ns_;     // latency of every Handle(), all request types merged
  obs::Gauge* queue_depth_;       // requests queued but not yet picked up by a worker
  obs::Counter* crash_failed_;    // calls failed with kCrashed by Crash()/Shutdown()
  obs::Counter* dup_replayed_;    // duplicate answered from the reply cache, no re-execution
  obs::Counter* dup_coalesced_;   // duplicate attached to the in-flight original
  obs::Counter* late_replies_;    // handler completed after every waiter timed out
  obs::Gauge* reply_cache_clients_;
  std::mutex op_stats_mu_;
  std::unordered_map<uint32_t, OpStats> op_stats_;

  // Reply cache. Lock order: cache_mu_ before any CallState::mu; never with mu_ held.
  std::mutex cache_mu_;
  std::unordered_map<uint64_t, ClientWindow> reply_cache_;
  uint64_t cache_tick_ = 0;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<std::pair<Message, std::shared_ptr<CallState>>> queue_;
  std::vector<std::shared_ptr<CallState>> in_flight_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> zombies_;
  bool running_ = false;
  bool stopping_ = false;
};

}  // namespace afs

#endif  // SRC_RPC_SERVICE_H_
