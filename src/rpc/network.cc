#include "src/rpc/network.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/obs/span.h"
#include "src/obs/trace.h"
#include "src/rpc/service.h"

namespace afs {

namespace {
std::atomic<uint64_t> g_network_uid{1};
}  // namespace

Network::Network(uint64_t seed)
    : rng_(seed), uid_(g_network_uid.fetch_add(1, std::memory_order_relaxed)) {}

Network::~Network() = default;

uint64_t Network::ThreadClientId() {
  struct Binding {
    uint64_t net_uid;
    uint64_t client_id;
  };
  thread_local std::vector<Binding> bindings;
  for (const Binding& b : bindings) {
    if (b.net_uid == uid_) {
      return b.client_id;
    }
  }
  uint64_t id = next_client_id_.fetch_add(1, std::memory_order_relaxed);
  bindings.push_back({uid_, id});
  return id;
}

Port Network::AllocatePort(Port parent) {
  std::lock_guard<std::mutex> lock(mu_);
  Port port = next_port_++;
  transaction_ports_[port] = parent;
  return port;
}

void Network::ClosePort(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  transaction_ports_.erase(port);
}

bool Network::IsPortAlive(Port port) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_service_ports_.count(port) > 0) {
    return true;
  }
  auto it = transaction_ports_.find(port);
  if (it == transaction_ports_.end()) {
    return false;
  }
  // A parent-linked port dies with its parent service (one level of linking only).
  return it->second == kNullPort || live_service_ports_.count(it->second) > 0 ||
         transaction_ports_.count(it->second) > 0;
}

Port Network::BindService(Service* service) {
  std::lock_guard<std::mutex> lock(mu_);
  Port port = next_port_++;
  services_[port] = service;
  live_service_ports_.insert(port);
  return port;
}

void Network::RebindService(Service* service, Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  services_[port] = service;
  live_service_ports_.insert(port);
}

void Network::UnbindService(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  services_.erase(port);
  live_service_ports_.erase(port);
}

void Network::SetServiceAlive(Port port, bool alive) {
  std::lock_guard<std::mutex> lock(mu_);
  if (alive) {
    live_service_ports_.insert(port);
  } else {
    live_service_ports_.erase(port);
  }
}

void Network::set_drop_probability(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.drop_request = p;
}

void Network::set_fault_injection(const FaultInjection& faults) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = faults;
}

FaultInjection Network::fault_injection() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

bool Network::RollFault(double p) {
  if (p <= 0.0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextBool(p);
}

uint64_t Network::JitterBelow(uint64_t lo, uint64_t hi) {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextInRange(lo, hi);
}

void Network::set_latency(std::chrono::microseconds min, std::chrono::microseconds max) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_min_ = min;
  latency_max_ = max;
}

void Network::SetPartitioned(Port port, bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned) {
    partitioned_.insert(port);
  } else {
    partitioned_.erase(port);
  }
}

Result<Service*> Network::LookupForCall(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(port);
  if (it == services_.end()) {
    return NotFoundError("no service bound to port");
  }
  if (partitioned_.count(port) > 0) {
    partition_drops_->Inc();
    return UnavailableError("port partitioned");
  }
  if (live_service_ports_.count(port) == 0) {
    crashed_calls_->Inc();
    return CrashedError("service is down");
  }
  if (faults_.drop_request > 0.0 && rng_.NextBool(faults_.drop_request)) {
    timeouts_->Inc();
    obs::Trace(obs::TraceEvent::kRpcTimeout, port);
    return TimeoutError("request dropped");
  }
  return it->second;
}

std::chrono::microseconds Network::PickLatency() {
  std::lock_guard<std::mutex> lock(mu_);
  if (latency_max_.count() == 0) {
    return std::chrono::microseconds(0);
  }
  auto span = static_cast<uint64_t>((latency_max_ - latency_min_).count());
  auto extra = span == 0 ? 0 : rng_.NextBelow(span + 1);
  return latency_min_ + std::chrono::microseconds(extra);
}

Result<Message> Network::Call(Port target, Message request, const CallOptions& options) {
  if (request.payload.size() > kMaxMessageBytes) {
    return InvalidArgumentError("message exceeds 32K transaction limit");
  }
  if (options.at_most_once && request.client_id == 0) {
    request.client_id = ThreadClientId();
    request.txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // One client span per LOGICAL call: retransmissions stay inside it (counted in its `b`
  // annotation), and the request carries this span's context on every attempt so the
  // server's handle span — original or replayed — hangs under one node.
  char span_name[obs::kSpanNameBytes] = "rpc.call";
  if (obs::SpanEnabled()) {
    std::snprintf(span_name, sizeof(span_name), "rpc.call:%u", request.opcode);
  }
  obs::ScopedSpan rpc_span(span_name, obs::SpanKind::kClient, target, 0);
  if (rpc_span.active()) {
    request.trace_id = rpc_span.trace_id();
    request.span_id = rpc_span.span_id();
    request.parent_span_id = rpc_span.parent_span_id();
  }
  const int attempts = options.at_most_once ? 1 + std::max(0, options.max_retransmits) : 1;
  const auto deadline = std::chrono::steady_clock::now() +
                        options.timeout * std::max(1, options.retransmit_deadline_factor);
  Result<Message> result = TimeoutError("not attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retransmits_->Inc();
      obs::Trace(obs::TraceEvent::kRpcRetransmit, target, request.opcode);
      uint64_t hi = static_cast<uint64_t>(options.backoff_base.count())
                    << std::min(attempt - 1, 20);
      hi = std::min(hi, static_cast<uint64_t>(options.backoff_cap.count()));
      if (hi > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(JitterBelow(hi / 2, hi)));
      }
    }
    result = CallOnce(target, request, options);
    // Only kTimeout is ambiguous (request or reply lost, or handler slow) and safe to
    // retry under the same identity. kCrashed/kUnavailable are definite and must surface
    // immediately — the §5.3 automatic crash warning depends on it.
    if (result.ok() || result.status().code() != ErrorCode::kTimeout) {
      if (rpc_span.active()) {
        rpc_span.set_args(target, static_cast<uint64_t>(attempt));  // b = retransmits used
        if (!result.ok()) {
          rpc_span.set_status(static_cast<uint8_t>(result.status().code()));
        }
      }
      return result;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      break;
    }
  }
  if (attempts > 1) {
    retransmit_exhausted_->Inc();
  }
  if (rpc_span.active()) {
    rpc_span.set_args(target, static_cast<uint64_t>(attempts - 1));
    if (!result.ok()) {
      rpc_span.set_status(static_cast<uint8_t>(result.status().code()));
    }
  }
  return result;
}

Result<Message> Network::CallOnce(Port target, const Message& request,
                                  const CallOptions& options) {
  sends_->Inc();
  obs::Trace(obs::TraceEvent::kRpcSend, target, request.opcode);
  const FaultInjection faults = fault_injection();
  auto latency = PickLatency();
  if (latency.count() > 0) {
    std::this_thread::sleep_for(latency);
  }
  if (RollFault(faults.reorder_delay)) {
    // Bounded reordering: this delivery is held back while later sends from other threads
    // overtake it. With blocking per-thread calls this is the full extent of reordering the
    // model can express (see docs/FAULTS.md).
    reorder_delays_->Inc();
    uint64_t max_us = static_cast<uint64_t>(faults.reorder_max.count());
    if (max_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(JitterBelow(0, max_us)));
    }
  }
  ASSIGN_OR_RETURN(Service * service, LookupForCall(target));
  if (request.client_id != 0 && RollFault(faults.duplicate_request)) {
    // Duplicate delivery: the same stamped request reaches the server twice. The extra
    // delivery's reply is lost; the reply cache must make the re-execution invisible.
    dup_deliveries_->Inc();
    (void)service->Submit(Message(request), options.timeout);
  }
  Result<Message> reply = service->Submit(Message(request), options.timeout);
  if (reply.ok() && RollFault(faults.drop_reply)) {
    reply_drops_->Inc();
    obs::Trace(obs::TraceEvent::kRpcTimeout, target, request.opcode);
    return TimeoutError("reply dropped");
  }
  return reply;
}

}  // namespace afs
