#include "src/rpc/network.h"

#include <thread>

#include "src/obs/trace.h"
#include "src/rpc/service.h"

namespace afs {

Network::Network(uint64_t seed) : rng_(seed) {}

Network::~Network() = default;

Port Network::AllocatePort(Port parent) {
  std::lock_guard<std::mutex> lock(mu_);
  Port port = next_port_++;
  transaction_ports_[port] = parent;
  return port;
}

void Network::ClosePort(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  transaction_ports_.erase(port);
}

bool Network::IsPortAlive(Port port) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_service_ports_.count(port) > 0) {
    return true;
  }
  auto it = transaction_ports_.find(port);
  if (it == transaction_ports_.end()) {
    return false;
  }
  // A parent-linked port dies with its parent service (one level of linking only).
  return it->second == kNullPort || live_service_ports_.count(it->second) > 0 ||
         transaction_ports_.count(it->second) > 0;
}

Port Network::BindService(Service* service) {
  std::lock_guard<std::mutex> lock(mu_);
  Port port = next_port_++;
  services_[port] = service;
  live_service_ports_.insert(port);
  return port;
}

void Network::RebindService(Service* service, Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  services_[port] = service;
  live_service_ports_.insert(port);
}

void Network::UnbindService(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  services_.erase(port);
  live_service_ports_.erase(port);
}

void Network::SetServiceAlive(Port port, bool alive) {
  std::lock_guard<std::mutex> lock(mu_);
  if (alive) {
    live_service_ports_.insert(port);
  } else {
    live_service_ports_.erase(port);
  }
}

void Network::set_drop_probability(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_probability_ = p;
}

void Network::set_latency(std::chrono::microseconds min, std::chrono::microseconds max) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_min_ = min;
  latency_max_ = max;
}

void Network::SetPartitioned(Port port, bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned) {
    partitioned_.insert(port);
  } else {
    partitioned_.erase(port);
  }
}

Result<Service*> Network::LookupForCall(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(port);
  if (it == services_.end()) {
    return NotFoundError("no service bound to port");
  }
  if (partitioned_.count(port) > 0) {
    partition_drops_->Inc();
    return UnavailableError("port partitioned");
  }
  if (live_service_ports_.count(port) == 0) {
    crashed_calls_->Inc();
    return CrashedError("service is down");
  }
  if (drop_probability_ > 0.0 && rng_.NextBool(drop_probability_)) {
    timeouts_->Inc();
    obs::Trace(obs::TraceEvent::kRpcTimeout, port);
    return TimeoutError("message dropped");
  }
  return it->second;
}

std::chrono::microseconds Network::PickLatency() {
  std::lock_guard<std::mutex> lock(mu_);
  if (latency_max_.count() == 0) {
    return std::chrono::microseconds(0);
  }
  auto span = static_cast<uint64_t>((latency_max_ - latency_min_).count());
  auto extra = span == 0 ? 0 : rng_.NextBelow(span + 1);
  return latency_min_ + std::chrono::microseconds(extra);
}

Result<Message> Network::Call(Port target, Message request, const CallOptions& options) {
  sends_->Inc();
  obs::Trace(obs::TraceEvent::kRpcSend, target, request.opcode);
  if (request.payload.size() > kMaxMessageBytes) {
    return InvalidArgumentError("message exceeds 32K transaction limit");
  }
  auto latency = PickLatency();
  if (latency.count() > 0) {
    std::this_thread::sleep_for(latency);
  }
  ASSIGN_OR_RETURN(Service * service, LookupForCall(target));
  return service->Submit(std::move(request), options.timeout);
}

}  // namespace afs
