#include "src/rpc/network.h"

#include <thread>

#include "src/obs/trace.h"
#include "src/rpc/service.h"

namespace afs {

Network::Network(uint64_t seed) : Transport("net"), rng_(seed) {}

Network::~Network() = default;

Port Network::AllocatePort(Port parent) {
  std::lock_guard<std::mutex> lock(mu_);
  Port port = next_port_++;
  transaction_ports_[port] = parent;
  return port;
}

void Network::ClosePort(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  transaction_ports_.erase(port);
}

bool Network::IsPortAlive(Port port) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_service_ports_.count(port) > 0) {
    return true;
  }
  auto it = transaction_ports_.find(port);
  if (it == transaction_ports_.end()) {
    return false;
  }
  // A parent-linked port dies with its parent service (one level of linking only).
  return it->second == kNullPort || live_service_ports_.count(it->second) > 0 ||
         transaction_ports_.count(it->second) > 0;
}

Port Network::BindService(Service* service) {
  std::lock_guard<std::mutex> lock(mu_);
  Port port = next_port_++;
  services_[port] = service;
  live_service_ports_.insert(port);
  return port;
}

void Network::RebindService(Service* service, Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  services_[port] = service;
  live_service_ports_.insert(port);
}

void Network::UnbindService(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  services_.erase(port);
  live_service_ports_.erase(port);
}

void Network::SetServiceAlive(Port port, bool alive) {
  std::lock_guard<std::mutex> lock(mu_);
  if (alive) {
    live_service_ports_.insert(port);
  } else {
    live_service_ports_.erase(port);
  }
}

void Network::set_fault_injection(const FaultInjection& faults) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = faults;
}

FaultInjection Network::fault_injection() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

bool Network::RollFault(double p) {
  if (p <= 0.0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextBool(p);
}

uint64_t Network::JitterBelow(uint64_t lo, uint64_t hi) {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextInRange(lo, hi);
}

void Network::set_latency(std::chrono::microseconds min, std::chrono::microseconds max) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_min_ = min;
  latency_max_ = max;
}

void Network::SetPartitioned(Port port, bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned) {
    partitioned_.insert(port);
  } else {
    partitioned_.erase(port);
  }
}

Result<Service*> Network::LookupForCall(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(port);
  if (it == services_.end()) {
    return NotFoundError("no service bound to port");
  }
  if (partitioned_.count(port) > 0) {
    partition_drops_->Inc();
    return UnavailableError("port partitioned");
  }
  if (live_service_ports_.count(port) == 0) {
    crashed_calls_->Inc();
    return CrashedError("service is down");
  }
  if (faults_.drop_request > 0.0 && rng_.NextBool(faults_.drop_request)) {
    timeouts_->Inc();
    obs::Trace(obs::TraceEvent::kRpcTimeout, port);
    return TimeoutError("request dropped");
  }
  return it->second;
}

std::chrono::microseconds Network::PickLatency() {
  std::lock_guard<std::mutex> lock(mu_);
  if (latency_max_.count() == 0) {
    return std::chrono::microseconds(0);
  }
  auto span = static_cast<uint64_t>((latency_max_ - latency_min_).count());
  auto extra = span == 0 ? 0 : rng_.NextBelow(span + 1);
  return latency_min_ + std::chrono::microseconds(extra);
}

Result<Message> Network::CallOnce(Port target, const Message& request,
                                  const CallOptions& options) {
  sends_->Inc();
  obs::Trace(obs::TraceEvent::kRpcSend, target, request.opcode);
  const FaultInjection faults = fault_injection();
  auto latency = PickLatency();
  if (latency.count() > 0) {
    std::this_thread::sleep_for(latency);
  }
  if (RollFault(faults.reorder_delay)) {
    // Bounded reordering: this delivery is held back while later sends from other threads
    // overtake it. With blocking per-thread calls this is the full extent of reordering the
    // model can express (see docs/FAULTS.md).
    reorder_delays_->Inc();
    uint64_t max_us = static_cast<uint64_t>(faults.reorder_max.count());
    if (max_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(JitterBelow(0, max_us)));
    }
  }
  ASSIGN_OR_RETURN(Service * service, LookupForCall(target));
  if (request.client_id != 0 && RollFault(faults.duplicate_request)) {
    // Duplicate delivery: the same stamped request reaches the server twice. The extra
    // delivery's reply is lost; the reply cache must make the re-execution invisible.
    dup_deliveries_->Inc();
    (void)service->Submit(Message(request), options.timeout);
  }
  Result<Message> reply = service->Submit(Message(request), options.timeout);
  if (reply.ok() && RollFault(faults.drop_reply)) {
    reply_drops_->Inc();
    obs::Trace(obs::TraceEvent::kRpcTimeout, target, request.opcode);
    return TimeoutError("reply dropped");
  }
  return reply;
}

}  // namespace afs
