#include "src/rpc/client.h"

#include "src/rpc/service.h"

namespace afs {

Message OkReply(uint32_t opcode, WireEncoder payload) {
  WireEncoder out;
  out.PutU32(static_cast<uint32_t>(ErrorCode::kOk));
  out.PutString("");
  out.PutRaw(payload.buffer());
  return Message(opcode, std::move(out).Take());
}

Message OkReply(uint32_t opcode) { return OkReply(opcode, WireEncoder()); }

Message ErrorReply(uint32_t opcode, const Status& status) {
  WireEncoder out;
  out.PutU32(static_cast<uint32_t>(status.code()));
  out.PutString(status.message());
  return Message(opcode, std::move(out).Take());
}

Result<WireDecoder> CallAndCheck(Transport* transport, Port target, uint32_t opcode,
                                 WireEncoder request, const CallOptions& options) {
  Message req(opcode, std::move(request).Take());
  ASSIGN_OR_RETURN(Message reply, transport->Call(target, std::move(req), options));
  WireDecoder dec(std::move(reply.payload));
  ASSIGN_OR_RETURN(uint32_t code, dec.GetU32());
  ASSIGN_OR_RETURN(std::string message, dec.GetString());
  if (code != static_cast<uint32_t>(ErrorCode::kOk)) {
    return Status(static_cast<ErrorCode>(code), std::move(message));
  }
  return dec;
}

Result<std::string> ScrapeStats(Transport* transport, Port target, const CallOptions& options) {
  ASSIGN_OR_RETURN(WireDecoder reply,
                   CallAndCheck(transport, target, Service::kGetStats, WireEncoder(), options));
  return reply.GetString();
}

Result<std::string> ScrapeSpans(Transport* transport, Port target, uint32_t max_spans,
                                bool chrome_json, const CallOptions& options) {
  WireEncoder req;
  req.PutU32(max_spans);
  req.PutU8(chrome_json ? 1 : 0);
  ASSIGN_OR_RETURN(WireDecoder reply, CallAndCheck(transport, target, Service::kGetSpans,
                                                   std::move(req), options));
  return reply.GetString();
}

}  // namespace afs
