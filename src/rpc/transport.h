// Transport: the seam between AFS client stubs and whatever carries their transactions.
//
// The paper's file service is reached through the Amoeba kernel's transaction primitive; a
// reproduction wants to run both ways — in one process for deterministic tests, and as real
// server processes over kernel sockets for everything else. Transport is the interface both
// share:
//
//   * Call() — one request/reply transaction, with the full at-most-once construction of
//     PR 4 implemented ONCE here in the base class: (client_id, txn_id) stamping, timeout
//     retransmission under the same identity with capped exponential jittered backoff, the
//     elapsed-deadline bound, and the rule that kCrashed/kUnavailable are never retried so
//     the §5.3 crash warning stays immediate. Backends supply one network attempt
//     (CallOnce) and the seeded jitter source; the simulated network and the TCP sockets
//     get byte-identical retry behaviour.
//   * Port plumbing — AllocatePort/ClosePort/IsPortAlive. Transaction ports name a client
//     update in lock fields (§5.3); their liveness is what lock waiters poll. The simulated
//     backend keeps them in a table; the TCP backend allocates them in the SERVER's table,
//     scoped to the client's control connection, so a client that dies takes its ports (and
//     therefore its locks) with it — over real sockets too.
//   * Fault injection — one FaultInjection struct configures both the simulated network and
//     the socket-path fault shim (docs/FAULTS.md, docs/NET.md), so the chaos harness runs
//     the same seeded schedules over either.
//
// Concrete backends: Network (src/rpc/network.h, in-process queues) and net::TcpTransport
// (src/net/tcp_transport.h, real TCP sockets).

#ifndef SRC_RPC_TRANSPORT_H_
#define SRC_RPC_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "src/base/capability.h"
#include "src/base/status.h"
#include "src/obs/metrics.h"
#include "src/rpc/message.h"

namespace afs {

struct CallOptions {
  std::chrono::milliseconds timeout{1000};
  // At-most-once retransmission (Birrell & Nelson, PAPERS.md). When true, Call() stamps the
  // request with a fresh (client_id, txn_id) and retries kTimeout failures under the same
  // identity, so the server can tell a retransmission from a new request. Injected drops
  // fail fast, so a retransmission burst costs microseconds, not multiples of `timeout`;
  // genuine handler timeouts are additionally bounded by `retransmit_deadline_factor`.
  bool at_most_once = true;
  int max_retransmits = 16;
  // Backoff between retransmissions: jittered exponential, backoff_base << attempt, capped.
  std::chrono::microseconds backoff_base{100};
  std::chrono::microseconds backoff_cap{2000};
  // Stop retransmitting once total elapsed time exceeds timeout * this factor (guards the
  // slow-handler case, where every attempt burns a full `timeout`).
  int retransmit_deadline_factor = 3;
};

// Independent message-level fault probabilities, rolled per attempt from the backend's
// seeded Rng. One struct serves both backends: the simulated Network applies these to its
// in-process deliveries, the TCP fault shim to real socket sends (docs/NET.md §faults).
// The legacy Network::set_drop_probability(p) knob is gone — write
// set_fault_injection(FaultInjection{.drop_request = p}) instead; the fields map 1:1.
struct FaultInjection {
  double drop_request = 0.0;    // lost before the server sees it -> kTimeout
  double drop_reply = 0.0;      // handler executed, reply lost -> kTimeout
  double duplicate_request = 0.0;  // request delivered twice (extra delivery's reply lost)
  double reorder_delay = 0.0;      // delivery delayed by up to reorder_max (bounded reorder)
  std::chrono::microseconds reorder_max{500};
};

class Transport {
 public:
  // `metrics_name` names the backend's registry (both backends use the shared net.* metric
  // names below, so dashboards read the same either way).
  explicit Transport(std::string metrics_name);
  virtual ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // -- Transactions ---------------------------------------------------------

  // Perform one request/reply transaction against `target`, with at-most-once
  // retransmission per `options`. Failure modes: kNotFound (no such port ever), kCrashed
  // (service down or crashed mid-call), kTimeout (message dropped or handler exceeded the
  // timeout), kUnavailable (partitioned).
  Result<Message> Call(Port target, Message request, const CallOptions& options = {});

  // -- Port management ------------------------------------------------------

  // Allocate a fresh port not bound to a service (a transaction port), optionally
  // parent-linked so it dies with a service port. Locks in version pages store these
  // (§5.3); IsPortAlive is what lock waiters poll to detect crashed holders.
  virtual Port AllocatePort(Port parent = kNullPort) = 0;
  virtual void ClosePort(Port port) = 0;
  virtual bool IsPortAlive(Port port) const = 0;

  // -- Fault injection ------------------------------------------------------

  virtual void set_fault_injection(const FaultInjection& faults) = 0;
  virtual FaultInjection fault_injection() const = 0;
  // While partitioned, calls to `port` fail with kUnavailable.
  virtual void SetPartitioned(Port port, bool partitioned) = 0;

  // -- Introspection --------------------------------------------------------

  uint64_t total_calls() const { return sends_->value(); }
  // Logical Call()s issued by the CURRENT THREAD across all transports, monotonically
  // increasing. Delta around a code region = that region's RPC cost on this thread (used
  // by the commit path's commit.rpcs histogram). Counts logical calls, not retransmits.
  static uint64_t ThreadCalls();
  // Fold `n` calls performed on this thread's behalf elsewhere (e.g. by a joined worker
  // thread) into the current thread's ThreadCalls() count, so delta-based samplers keep
  // seeing the full cost of work a caller fanned out.
  static void AddThreadCalls(uint64_t n);
  uint64_t dropped_calls() const { return timeouts_->value(); }
  uint64_t dropped_replies() const { return reply_drops_->value(); }
  uint64_t retransmits() const { return retransmits_->value(); }
  uint64_t duplicate_deliveries() const { return dup_deliveries_->value(); }
  obs::MetricRegistry* metrics() { return &metrics_; }

 protected:
  // One network attempt of Call(): deliver the request, return the reply. Retransmission,
  // stamping, and the client span live above, in Call().
  virtual Result<Message> CallOnce(Port target, const Message& request,
                                   const CallOptions& options) = 0;

  // Jittered value in [lo, hi] from the backend's seeded rng — the backoff randomness, kept
  // behind the backend so one seed drives every random event of a schedule.
  virtual uint64_t JitterBelow(uint64_t lo, uint64_t hi) = 0;

  // Stable per-(transport, thread) client identity for at-most-once stamping. One client
  // thread performs one blocking transaction at a time, so the server's per-client reply
  // window can stay tiny.
  uint64_t ThreadClientId();

  // Mint the identity behind a new (transport, thread) binding. The default hands out
  // transport-local ids, which are unique exactly because one process shares one simulated
  // Network. A backend whose server faces many client PROCESSES must override this with
  // ids unique across all of them — two clients that both pick client_id 1 would share one
  // reply-cache window, and one could be answered with the other's cached reply. The TCP
  // backend fetches a server-allocated id base (kNetClientId) for this reason.
  virtual uint64_t NewClientId() {
    return next_client_id_.fetch_add(1, std::memory_order_relaxed);
  }

  obs::MetricRegistry metrics_;
  obs::Counter* sends_ = metrics_.counter("net.sends");
  obs::Counter* timeouts_ = metrics_.counter("net.timeouts");  // injected request drops
  obs::Counter* reply_drops_ = metrics_.counter("net.reply_drops");
  obs::Counter* dup_deliveries_ = metrics_.counter("net.dup_deliveries");
  obs::Counter* reorder_delays_ = metrics_.counter("net.reorder_delays");
  obs::Counter* retransmits_ = metrics_.counter("net.retransmits");
  obs::Counter* retransmit_exhausted_ = metrics_.counter("net.retransmit_exhausted");
  obs::Counter* partition_drops_ = metrics_.counter("net.partition_drops");
  obs::Counter* crashed_calls_ = metrics_.counter("net.crashed_calls");

 private:
  // Process-unique incarnation id, so thread-local client-id bindings can never leak from
  // a destroyed transport into a new one allocated at the same address.
  const uint64_t uid_;
  std::atomic<uint64_t> next_client_id_{1};
  std::atomic<uint64_t> next_txn_id_{1};
};

}  // namespace afs

#endif  // SRC_RPC_TRANSPORT_H_
