#include "src/rpc/transport.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/obs/span.h"
#include "src/obs/trace.h"

namespace afs {

namespace {
std::atomic<uint64_t> g_transport_uid{1};
thread_local uint64_t t_thread_calls = 0;
}  // namespace

uint64_t Transport::ThreadCalls() { return t_thread_calls; }

void Transport::AddThreadCalls(uint64_t n) { t_thread_calls += n; }

Transport::Transport(std::string metrics_name)
    : metrics_(std::move(metrics_name)),
      uid_(g_transport_uid.fetch_add(1, std::memory_order_relaxed)) {}

Transport::~Transport() = default;

uint64_t Transport::ThreadClientId() {
  struct Binding {
    uint64_t transport_uid;
    uint64_t client_id;
  };
  thread_local std::vector<Binding> bindings;
  for (const Binding& b : bindings) {
    if (b.transport_uid == uid_) {
      return b.client_id;
    }
  }
  uint64_t id = NewClientId();
  bindings.push_back({uid_, id});
  return id;
}

Result<Message> Transport::Call(Port target, Message request, const CallOptions& options) {
  ++t_thread_calls;
  if (request.payload.size() > kMaxMessageBytes) {
    return InvalidArgumentError("message exceeds 32K transaction limit");
  }
  if (options.at_most_once && request.client_id == 0) {
    request.client_id = ThreadClientId();
    request.txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // One client span per LOGICAL call: retransmissions stay inside it (counted in its `b`
  // annotation), and the request carries this span's context on every attempt so the
  // server's handle span — original or replayed — hangs under one node.
  char span_name[obs::kSpanNameBytes] = "rpc.call";
  if (obs::SpanEnabled()) {
    std::snprintf(span_name, sizeof(span_name), "rpc.call:%u", request.opcode);
  }
  obs::ScopedSpan rpc_span(span_name, obs::SpanKind::kClient, target, 0);
  if (rpc_span.active()) {
    request.trace_id = rpc_span.trace_id();
    request.span_id = rpc_span.span_id();
    request.parent_span_id = rpc_span.parent_span_id();
  }
  const int attempts = options.at_most_once ? 1 + std::max(0, options.max_retransmits) : 1;
  const auto deadline = std::chrono::steady_clock::now() +
                        options.timeout * std::max(1, options.retransmit_deadline_factor);
  Result<Message> result = TimeoutError("not attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retransmits_->Inc();
      obs::Trace(obs::TraceEvent::kRpcRetransmit, target, request.opcode);
      uint64_t hi = static_cast<uint64_t>(options.backoff_base.count())
                    << std::min(attempt - 1, 20);
      hi = std::min(hi, static_cast<uint64_t>(options.backoff_cap.count()));
      if (hi > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(JitterBelow(hi / 2, hi)));
      }
    }
    result = CallOnce(target, request, options);
    // Only kTimeout is ambiguous (request or reply lost, or handler slow) and safe to
    // retry under the same identity. kCrashed/kUnavailable are definite and must surface
    // immediately — the §5.3 automatic crash warning depends on it.
    if (result.ok() || result.status().code() != ErrorCode::kTimeout) {
      if (rpc_span.active()) {
        rpc_span.set_args(target, static_cast<uint64_t>(attempt));  // b = retransmits used
        if (!result.ok()) {
          rpc_span.set_status(static_cast<uint8_t>(result.status().code()));
        }
      }
      return result;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      break;
    }
  }
  if (attempts > 1) {
    retransmit_exhausted_->Inc();
  }
  if (rpc_span.active()) {
    rpc_span.set_args(target, static_cast<uint64_t>(attempts - 1));
    if (!result.ok()) {
      rpc_span.set_status(static_cast<uint8_t>(result.status().code()));
    }
  }
  return result;
}

}  // namespace afs
