// The simulated network: a registry of ports and the request/reply transaction primitive.
//
// This stands in for the Amoeba kernel's transaction layer (DESIGN.md substitution table);
// it is the in-process Transport backend — see src/rpc/transport.h for the interface and
// src/net/tcp_transport.h for the real-socket sibling. Semantics preserved from the paper:
//   * A client sends a request to a port and blocks for the reply (one transaction).
//   * If the server crashes while a transaction is outstanding, the transaction fails
//     immediately with kCrashed — this is the "automatic warning mechanism" that lock
//     waiters rely on in §5.3.
//   * Ports are unforgeable names. Besides service ports, clients allocate *transaction
//     ports* whose liveness other parties can observe; locks store such ports.
//   * A request/reply pair "either completes or fails detectably" (at most once, §2):
//     Transport::Call stamps each request with a (client_id, txn_id) identity and
//     retransmits on timeout with capped exponential jittered backoff; the Service reply
//     cache suppresses re-execution of a retransmitted request whose original already ran.
//     kCrashed and kUnavailable are never retransmitted — the crash warning stays immediate.
// Fault injection (all independent, all drawn from the seeded Rng, see docs/FAULTS.md):
// request drop and reply drop (each surfaces as kTimeout), duplicate delivery, bounded
// reorder delay, per-message latency bounds, and per-port partitions (kUnavailable).

#ifndef SRC_RPC_NETWORK_H_
#define SRC_RPC_NETWORK_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/rpc/message.h"
#include "src/rpc/transport.h"

namespace afs {

class Service;

namespace net {
class TcpServer;
}  // namespace net

class Network : public Transport {
 public:
  explicit Network(uint64_t seed = 1);
  ~Network() override;

  // -- Port management ------------------------------------------------------

  // Allocate a fresh port not bound to a service (a transaction port). It is alive until
  // ClosePort() is called. Locks in version pages store these (§5.3). A port may be
  // parent-linked to a service port: it is then only alive while the parent is — the
  // mechanism a server uses to mint per-operation lock identities that die with it, so
  // waiters can steal the locks of a crashed server.
  Port AllocatePort(Port parent = kNullPort) override;
  void ClosePort(Port port) override;

  // True if the port currently accepts transactions: either a running service's port or an
  // open transaction port. Lock waiters poll this to detect crashed lock holders.
  bool IsPortAlive(Port port) const override;

  // -- Fault injection ------------------------------------------------------

  void set_fault_injection(const FaultInjection& faults) override;
  FaultInjection fault_injection() const override;
  void set_latency(std::chrono::microseconds min, std::chrono::microseconds max);
  void SetPartitioned(Port port, bool partitioned) override;

 protected:
  Result<Message> CallOnce(Port target, const Message& request,
                           const CallOptions& options) override;
  uint64_t JitterBelow(uint64_t lo, uint64_t hi) override;

 private:
  friend class Service;
  // The TCP server core resolves remote targets through LookupForCall, so inner
  // crash/partition state surfaces to remote callers exactly as it does in-process.
  friend class net::TcpServer;

  // Called by Service::Start / Service::Shutdown.
  Port BindService(Service* service);
  void RebindService(Service* service, Port port);
  void UnbindService(Port port);
  // Crash/stop flips liveness without unbinding, so the port number is preserved across
  // Restart() (an Amoeba service keeps its port when a new server process takes over).
  void SetServiceAlive(Port port, bool alive);

  Result<Service*> LookupForCall(Port port);
  std::chrono::microseconds PickLatency();
  // True with probability p, drawn from the seeded rng_ (under mu_).
  bool RollFault(double p);

  mutable std::mutex mu_;
  uint64_t next_port_ = 1;
  std::unordered_map<Port, Service*> services_;
  std::unordered_set<Port> live_service_ports_;
  std::unordered_map<Port, Port> transaction_ports_;  // port -> parent (or kNullPort)
  std::unordered_set<Port> partitioned_;
  FaultInjection faults_;
  std::chrono::microseconds latency_min_{0};
  std::chrono::microseconds latency_max_{0};
  Rng rng_;
};

}  // namespace afs

#endif  // SRC_RPC_NETWORK_H_
