// The simulated network: a registry of ports and the request/reply transaction primitive.
//
// This stands in for the Amoeba kernel's transaction layer (DESIGN.md substitution table).
// Semantics preserved from the paper:
//   * A client sends a request to a port and blocks for the reply (one transaction).
//   * If the server crashes while a transaction is outstanding, the transaction fails
//     immediately with kCrashed — this is the "automatic warning mechanism" that lock
//     waiters rely on in §5.3.
//   * Ports are unforgeable names. Besides service ports, clients allocate *transaction
//     ports* whose liveness other parties can observe; locks store such ports.
// Fault injection: per-network message drop probability (surfaces as kTimeout), per-message
// latency bounds, and per-port partitions (kUnavailable).

#ifndef SRC_RPC_NETWORK_H_
#define SRC_RPC_NETWORK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/obs/metrics.h"
#include "src/rpc/message.h"

namespace afs {

class Service;

struct CallOptions {
  std::chrono::milliseconds timeout{1000};
};

class Network {
 public:
  explicit Network(uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // -- Port management ------------------------------------------------------

  // Allocate a fresh port not bound to a service (a transaction port). It is alive until
  // ClosePort() is called. Locks in version pages store these (§5.3). A port may be
  // parent-linked to a service port: it is then only alive while the parent is — the
  // mechanism a server uses to mint per-operation lock identities that die with it, so
  // waiters can steal the locks of a crashed server.
  Port AllocatePort(Port parent = kNullPort);
  void ClosePort(Port port);

  // True if the port currently accepts transactions: either a running service's port or an
  // open transaction port. Lock waiters poll this to detect crashed lock holders.
  bool IsPortAlive(Port port) const;

  // -- Transactions ---------------------------------------------------------

  // Perform one request/reply transaction against `target`.
  // Failure modes: kNotFound (no such port ever), kCrashed (service down or crashed
  // mid-call), kTimeout (message dropped or handler exceeded the timeout),
  // kUnavailable (partitioned).
  Result<Message> Call(Port target, Message request, const CallOptions& options = {});

  // -- Fault injection ------------------------------------------------------

  void set_drop_probability(double p);
  void set_latency(std::chrono::microseconds min, std::chrono::microseconds max);
  // While partitioned, calls to `port` fail with kUnavailable.
  void SetPartitioned(Port port, bool partitioned);

  // -- Introspection --------------------------------------------------------

  uint64_t total_calls() const { return sends_->value(); }
  uint64_t dropped_calls() const { return timeouts_->value(); }
  obs::MetricRegistry* metrics() { return &metrics_; }

 private:
  friend class Service;

  // Called by Service::Start / Service::Shutdown.
  Port BindService(Service* service);
  void RebindService(Service* service, Port port);
  void UnbindService(Port port);
  // Crash/stop flips liveness without unbinding, so the port number is preserved across
  // Restart() (an Amoeba service keeps its port when a new server process takes over).
  void SetServiceAlive(Port port, bool alive);

  Result<Service*> LookupForCall(Port port);
  std::chrono::microseconds PickLatency();

  mutable std::mutex mu_;
  uint64_t next_port_ = 1;
  std::unordered_map<Port, Service*> services_;
  std::unordered_set<Port> live_service_ports_;
  std::unordered_map<Port, Port> transaction_ports_;  // port -> parent (or kNullPort)
  std::unordered_set<Port> partitioned_;
  double drop_probability_ = 0.0;
  std::chrono::microseconds latency_min_{0};
  std::chrono::microseconds latency_max_{0};
  Rng rng_;

  obs::MetricRegistry metrics_{"net"};
  obs::Counter* sends_ = metrics_.counter("net.sends");
  obs::Counter* timeouts_ = metrics_.counter("net.timeouts");         // injected drops
  obs::Counter* partition_drops_ = metrics_.counter("net.partition_drops");
  obs::Counter* crashed_calls_ = metrics_.counter("net.crashed_calls");
};

}  // namespace afs

#endif  // SRC_RPC_NETWORK_H_
