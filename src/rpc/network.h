// The simulated network: a registry of ports and the request/reply transaction primitive.
//
// This stands in for the Amoeba kernel's transaction layer (DESIGN.md substitution table).
// Semantics preserved from the paper:
//   * A client sends a request to a port and blocks for the reply (one transaction).
//   * If the server crashes while a transaction is outstanding, the transaction fails
//     immediately with kCrashed — this is the "automatic warning mechanism" that lock
//     waiters rely on in §5.3.
//   * Ports are unforgeable names. Besides service ports, clients allocate *transaction
//     ports* whose liveness other parties can observe; locks store such ports.
//   * A request/reply pair "either completes or fails detectably" (at most once, §2):
//     Call() stamps each request with a (client_id, txn_id) identity and retransmits on
//     timeout with capped exponential jittered backoff; the Service reply cache suppresses
//     re-execution of a retransmitted request whose original already ran. kCrashed and
//     kUnavailable are never retransmitted — the crash warning stays immediate.
// Fault injection (all independent, all drawn from the seeded Rng, see docs/FAULTS.md):
// request drop and reply drop (each surfaces as kTimeout), duplicate delivery, bounded
// reorder delay, per-message latency bounds, and per-port partitions (kUnavailable).

#ifndef SRC_RPC_NETWORK_H_
#define SRC_RPC_NETWORK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/base/capability.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/obs/metrics.h"
#include "src/rpc/message.h"

namespace afs {

class Service;

struct CallOptions {
  std::chrono::milliseconds timeout{1000};
  // At-most-once retransmission (Birrell & Nelson, PAPERS.md). When true, Call() stamps the
  // request with a fresh (client_id, txn_id) and retries kTimeout failures under the same
  // identity, so the server can tell a retransmission from a new request. Injected drops
  // fail fast, so a retransmission burst costs microseconds, not multiples of `timeout`;
  // genuine handler timeouts are additionally bounded by `retransmit_deadline_factor`.
  bool at_most_once = true;
  int max_retransmits = 16;
  // Backoff between retransmissions: jittered exponential, backoff_base << attempt, capped.
  std::chrono::microseconds backoff_base{100};
  std::chrono::microseconds backoff_cap{2000};
  // Stop retransmitting once total elapsed time exceeds timeout * this factor (guards the
  // slow-handler case, where every attempt burns a full `timeout`).
  int retransmit_deadline_factor = 3;
};

// Independent message-level fault probabilities, rolled per attempt from the network's
// seeded Rng. The legacy set_drop_probability(p) sets drop_request only.
struct FaultInjection {
  double drop_request = 0.0;    // lost before the server sees it -> kTimeout
  double drop_reply = 0.0;      // handler executed, reply lost -> kTimeout
  double duplicate_request = 0.0;  // request delivered twice (extra delivery's reply lost)
  double reorder_delay = 0.0;      // delivery delayed by up to reorder_max (bounded reorder)
  std::chrono::microseconds reorder_max{500};
};

class Network {
 public:
  explicit Network(uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // -- Port management ------------------------------------------------------

  // Allocate a fresh port not bound to a service (a transaction port). It is alive until
  // ClosePort() is called. Locks in version pages store these (§5.3). A port may be
  // parent-linked to a service port: it is then only alive while the parent is — the
  // mechanism a server uses to mint per-operation lock identities that die with it, so
  // waiters can steal the locks of a crashed server.
  Port AllocatePort(Port parent = kNullPort);
  void ClosePort(Port port);

  // True if the port currently accepts transactions: either a running service's port or an
  // open transaction port. Lock waiters poll this to detect crashed lock holders.
  bool IsPortAlive(Port port) const;

  // -- Transactions ---------------------------------------------------------

  // Perform one request/reply transaction against `target`.
  // Failure modes: kNotFound (no such port ever), kCrashed (service down or crashed
  // mid-call), kTimeout (message dropped or handler exceeded the timeout),
  // kUnavailable (partitioned).
  Result<Message> Call(Port target, Message request, const CallOptions& options = {});

  // -- Fault injection ------------------------------------------------------

  // Legacy knob: whole-request drop only (equivalent to FaultInjection{.drop_request = p}).
  void set_drop_probability(double p);
  void set_fault_injection(const FaultInjection& faults);
  FaultInjection fault_injection() const;
  void set_latency(std::chrono::microseconds min, std::chrono::microseconds max);
  // While partitioned, calls to `port` fail with kUnavailable.
  void SetPartitioned(Port port, bool partitioned);

  // -- Introspection --------------------------------------------------------

  uint64_t total_calls() const { return sends_->value(); }
  uint64_t dropped_calls() const { return timeouts_->value(); }
  uint64_t dropped_replies() const { return reply_drops_->value(); }
  uint64_t retransmits() const { return retransmits_->value(); }
  uint64_t duplicate_deliveries() const { return dup_deliveries_->value(); }
  obs::MetricRegistry* metrics() { return &metrics_; }

 private:
  friend class Service;

  // Called by Service::Start / Service::Shutdown.
  Port BindService(Service* service);
  void RebindService(Service* service, Port port);
  void UnbindService(Port port);
  // Crash/stop flips liveness without unbinding, so the port number is preserved across
  // Restart() (an Amoeba service keeps its port when a new server process takes over).
  void SetServiceAlive(Port port, bool alive);

  Result<Service*> LookupForCall(Port port);
  std::chrono::microseconds PickLatency();
  // One network attempt of Call(): latency + faults + Submit. Retransmission lives above.
  Result<Message> CallOnce(Port target, const Message& request, const CallOptions& options);
  // True with probability p, drawn from the seeded rng_ (under mu_).
  bool RollFault(double p);
  // Jittered value in [lo, hi], drawn from the seeded rng_ (under mu_).
  uint64_t JitterBelow(uint64_t lo, uint64_t hi);
  // Stable per-(network, thread) client identity for at-most-once stamping. One client
  // thread performs one blocking transaction at a time, so the server's per-client reply
  // window can stay tiny.
  uint64_t ThreadClientId();

  mutable std::mutex mu_;
  uint64_t next_port_ = 1;
  std::unordered_map<Port, Service*> services_;
  std::unordered_set<Port> live_service_ports_;
  std::unordered_map<Port, Port> transaction_ports_;  // port -> parent (or kNullPort)
  std::unordered_set<Port> partitioned_;
  FaultInjection faults_;
  std::chrono::microseconds latency_min_{0};
  std::chrono::microseconds latency_max_{0};
  Rng rng_;

  // Process-unique incarnation id, so thread-local client-id bindings can never leak from
  // a destroyed Network into a new one allocated at the same address.
  const uint64_t uid_;
  std::atomic<uint64_t> next_client_id_{1};
  std::atomic<uint64_t> next_txn_id_{1};

  obs::MetricRegistry metrics_{"net"};
  obs::Counter* sends_ = metrics_.counter("net.sends");
  obs::Counter* timeouts_ = metrics_.counter("net.timeouts");  // injected request drops
  obs::Counter* reply_drops_ = metrics_.counter("net.reply_drops");
  obs::Counter* dup_deliveries_ = metrics_.counter("net.dup_deliveries");
  obs::Counter* reorder_delays_ = metrics_.counter("net.reorder_delays");
  obs::Counter* retransmits_ = metrics_.counter("net.retransmits");
  obs::Counter* retransmit_exhausted_ = metrics_.counter("net.retransmit_exhausted");
  obs::Counter* partition_drops_ = metrics_.counter("net.partition_drops");
  obs::Counter* crashed_calls_ = metrics_.counter("net.crashed_calls");
};

}  // namespace afs

#endif  // SRC_RPC_NETWORK_H_
