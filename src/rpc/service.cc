#include "src/rpc/service.h"

#include <algorithm>

namespace afs {

Service::Service(Network* network, std::string name, int num_workers)
    : network_(network), name_(std::move(name)), num_workers_(std::max(1, num_workers)) {}

Service::~Service() {
  Shutdown();
  ReapZombies();
  if (port_ != kNullPort) {
    network_->UnbindService(port_);
  }
}

void Service::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return;
    }
  }
  if (port_ == kNullPort) {
    port_ = network_->BindService(this);
  } else {
    network_->RebindService(this, port_);
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = true;
  stopping_ = false;
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool Service::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void Service::StopWorkers(bool mark_crashed) {
  std::vector<std::shared_ptr<CallState>> to_fail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    running_ = false;
    stopping_ = true;
    // Fail everything queued and everything a worker is currently handling. The client
    // unblocks immediately with kCrashed — the paper's crash-notification property.
    for (auto& [req, state] : queue_) {
      (void)req;
      to_fail.push_back(state);
    }
    queue_.clear();
    for (auto& state : in_flight_) {
      to_fail.push_back(state);
    }
    // Workers are not joined here: a crash must not wait for in-flight handlers. They
    // drain into zombies_ and are reaped on Restart() or destruction.
    for (auto& w : workers_) {
      zombies_.push_back(std::move(w));
    }
    workers_.clear();
  }
  queue_cv_.notify_all();
  for (auto& state : to_fail) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->done) {
      state->done = true;
      state->result = mark_crashed ? CrashedError(name_ + " crashed")
                                   : UnavailableError(name_ + " shut down");
      state->cv.notify_all();
    }
  }
  if (port_ != kNullPort) {
    network_->SetServiceAlive(port_, false);
  }
}

void Service::ReapZombies() {
  std::vector<std::thread> zombies;
  {
    std::lock_guard<std::mutex> lock(mu_);
    zombies.swap(zombies_);
  }
  for (auto& z : zombies) {
    if (z.joinable()) {
      z.join();
    }
  }
}

void Service::Crash() { StopWorkers(/*mark_crashed=*/true); }

void Service::Shutdown() { StopWorkers(/*mark_crashed=*/false); }

void Service::Restart() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return;
    }
  }
  ReapZombies();
  OnRestart();
  Start();
}

Result<Message> Service::Submit(Message request, std::chrono::milliseconds timeout) {
  auto state = std::make_shared<CallState>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return CrashedError(name_ + " is down");
    }
    queue_.emplace_back(std::move(request), state);
  }
  queue_cv_.notify_one();

  std::unique_lock<std::mutex> lock(state->mu);
  if (!state->cv.wait_for(lock, timeout, [&] { return state->done; })) {
    state->done = true;  // worker reply, if it ever arrives, is discarded
    return TimeoutError(name_ + " transaction timed out");
  }
  return std::move(state->result);
}

void Service::WorkerLoop() {
  for (;;) {
    Message request;
    std::shared_ptr<CallState> state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) {
        return;
      }
      request = std::move(queue_.front().first);
      state = std::move(queue_.front().second);
      queue_.pop_front();
      in_flight_.push_back(state);
    }

    Result<Message> result = Handle(request);

    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_.erase(std::remove(in_flight_.begin(), in_flight_.end(), state),
                       in_flight_.end());
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->done) {
        state->done = true;
        state->result = std::move(result);
        state->cv.notify_all();
      }
    }
  }
}

}  // namespace afs
